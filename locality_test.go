package locality_test

import (
	"testing"

	"locality"
)

// TestFacadeQuickstart exercises the public API end to end: generate, run
// both model variants, verify, and check the round accounting matches the
// predicted budgets.
func TestFacadeQuickstart(t *testing.T) {
	const (
		n     = 512
		delta = 8
	)
	r := locality.NewRand(9)
	g := locality.RandomTree(n, delta, r)

	randRes, err := locality.Run(g,
		locality.RunConfig{Randomized: true, Seed: 5, MaxRounds: 1 << 22},
		locality.NewTheorem11Factory(locality.Theorem11Options{Delta: delta}))
	if err != nil {
		t.Fatal(err)
	}
	colors := locality.ColoringOutputs(randRes.Outputs)
	if err := locality.ValidateColoring(g, delta, colors); err != nil {
		t.Fatalf("randomized coloring invalid: %v", err)
	}
	if want := locality.Theorem11Rounds(n, locality.Theorem11Options{Delta: delta}); randRes.Rounds != want {
		t.Errorf("rand rounds %d, predicted %d", randRes.Rounds, want)
	}

	detRes, err := locality.Run(g,
		locality.RunConfig{IDs: locality.ShuffledIDs(n, r), MaxRounds: 1 << 22},
		locality.NewTreeColoringFactory(locality.TreeColoringOptions{Q: delta}))
	if err != nil {
		t.Fatal(err)
	}
	detColors := make([]int, n)
	for v, o := range detRes.Outputs {
		detColors[v] = o.(int)
	}
	if err := locality.ValidateColoring(g, delta, detColors); err != nil {
		t.Fatalf("deterministic coloring invalid: %v", err)
	}
}

// TestFacadeLowerBoundEngine exercises the neighborhood-graph surface.
func TestFacadeLowerBoundEngine(t *testing.T) {
	res := locality.RingAlgorithmExists(0, 4, 3, 1<<20)
	if !res.Decided || res.Colorable {
		t.Error("0-round 3-coloring with 4 IDs must be proved impossible")
	}
	ng := locality.BuildNeighborhoodGraph(0, 4)
	if ng.G.N() != 4 || ng.G.M() != 6 {
		t.Errorf("B_0(4) malformed: n=%d m=%d", ng.G.N(), ng.G.M())
	}
}

// TestFacadeMISAndVerify exercises MIS + distributed verification.
func TestFacadeMISAndVerify(t *testing.T) {
	r := locality.NewRand(11)
	g := locality.RandomBoundedDegree(200, 400, 6, r)
	res, err := locality.Run(g, locality.RunConfig{Randomized: true, Seed: 3},
		locality.NewLubyMISFactory(locality.LubyMISOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	inSet := make([]bool, g.N())
	for v, o := range res.Outputs {
		inSet[v] = o.(bool)
	}
	if err := locality.ValidateMIS(g, inSet); err != nil {
		t.Fatal(err)
	}
	labels := make([]any, g.N())
	for v, b := range inSet {
		labels[v] = b
	}
	ok, rounds, err := locality.VerifyDistributed(locality.MISProblem(), locality.LCLInstance{G: g}, labels)
	if !ok || rounds != 1 {
		t.Errorf("distributed MIS verification: ok=%v rounds=%d err=%v", ok, rounds, err)
	}
}

// TestFacadeExperimentLookup checks the harness surface.
func TestFacadeExperimentLookup(t *testing.T) {
	driver, ok := locality.ExperimentByID("E4")
	if !ok {
		t.Fatal("E4 not found")
	}
	tbl := driver(locality.ExperimentConfig{Quick: true, Seed: 1})
	if tbl.ID != "E4" || len(tbl.Rows) == 0 {
		t.Errorf("E4 table malformed: %+v", tbl)
	}
}
