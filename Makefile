GO ?= go

.PHONY: all build test vet lint lint-fast lint-sarif race race-kernel race-supervision cluster fuzz-smoke obs bench experiments load store trace

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Static gate (CI, tier 1): standard go vet plus localvet, the in-repo
# multichecker that enforces the LOCAL-model determinism & purity contract
# (see DESIGN.md, "Model purity & static enforcement" and §11). Runs against
# the committed baseline: grandfathered findings are tolerated while they
# burn down, anything new exits non-zero.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/localvet -baseline .localvet-baseline.json ./...

# Changed-package lint for the edit loop: runs localvet only on packages
# whose files differ from origin's main (falling back to HEAD for a detached
# or just-cloned tree). The module-wide call graph is still built from the
# targets' dependency cone, so interprocedural chains stay visible.
lint-fast:
	@base=$$(git merge-base HEAD origin/main 2>/dev/null || git rev-parse HEAD); \
	dirs=$$(git diff --name-only $$base -- '*.go' | xargs -r -n1 dirname | sort -u \
	        | while read d; do [ -d "$$d" ] && echo "./$$d"; done); \
	if [ -z "$$dirs" ]; then echo "lint-fast: no changed Go packages"; \
	else echo "lint-fast: $$dirs"; $(GO) run ./cmd/localvet -baseline .localvet-baseline.json $$dirs; fi

# SARIF artifact for CI code-scanning upload and PR annotation.
lint-sarif:
	$(GO) run ./cmd/localvet -baseline .localvet-baseline.json -format sarif ./... > localvet.sarif; \
	code=$$?; [ $$code -le 1 ] && exit 0 || exit $$code

# Full-module race gate: every package under the race detector. The
# goroutine-per-node kernel packages are the likeliest offenders, but
# harness/experiment drivers spawn runs too, so CI sweeps everything.
race:
	$(GO) test -race ./...

# Narrower historical gate kept for fast local iteration on the kernel.
race-kernel:
	$(GO) vet ./...
	$(GO) test -race ./internal/sim/... ./internal/fault/...

# Supervision-layer race gate: the job pool and the localityd service are
# the most concurrent non-kernel code (worker teardown, drain deadlines,
# request limits), so CI races them explicitly in addition to the full
# sweep above.
race-supervision:
	$(GO) test -race -count=1 ./internal/jobs ./cmd/localityd

# Cluster gate (CI): the fault-tolerant sharded mode under the race
# detector — coordinator merge/failover units, the in-process front-end
# wire test, and the multi-process kill-a-shard e2e that SIGKILLs one
# worker localityd mid-sweep and asserts the merged table is byte-identical
# with zero batches lost (DESIGN.md §10). CLUSTER_RUNREPORT, when set,
# receives the coordinator's run report for the killed sweep.
cluster:
	$(GO) test -race -count=1 ./internal/cluster ./internal/fault
	$(GO) test -race -count=1 -run 'TestCluster' -v ./cmd/localityd

# Short fuzz sweep (CI smoke, not a soak): each target runs for a few
# seconds. `go test -fuzz` accepts one target per invocation, hence one run
# per target.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzGenerateTree -fuzztime=5s ./internal/graph
	$(GO) test -run='^$$' -fuzz=FuzzLCLCheck -fuzztime=5s ./internal/lcl
	$(GO) test -run='^$$' -fuzz=FuzzFaultPlan -fuzztime=5s ./internal/fault
	$(GO) test -run='^$$' -fuzz=FuzzIdentityKey -fuzztime=5s ./internal/jobs
	$(GO) test -run='^$$' -fuzz=FuzzStoreRecord -fuzztime=5s ./internal/store

# Observability gate (CI, tier 1): the telemetry layer's inertness contract
# (DESIGN.md §9). localvet's obsinert analyzer proves hot paths never consume
# observability results; the -race test sweep covers the metric types, the
# run-report sink, the telemetry-on/off byte-identity differentials, the
# exposition goldens, and the /metrics + pprof endpoints.
obs:
	$(GO) run ./cmd/localvet -only obsinert,nowallclock ./...
	$(GO) test -race -count=1 ./internal/obs ./internal/sim ./internal/harness ./cmd/localityd ./cmd/localbench

# Perf trajectory: run the Go benchmarks with allocation reporting, then
# time every experiment at quick scale and write BENCH_<stamp>.json next to
# the checked-in baseline (failing on a >25% ns/op regression when one
# exists; tune with -bench-regress — see cmd/localbench/bench.go), and
# finally emit RUNREPORT.jsonl, the quick-scale round/batch telemetry
# artifact (see internal/obs).
bench:
	$(GO) test -bench=. -benchtime=1x -benchmem ./...
	$(GO) run ./cmd/localbench -bench-json
	$(GO) run ./cmd/localbench -quick -run-report RUNREPORT.jsonl > /dev/null

# Multi-tenant load gate (CI): the fairness e2e under the race detector,
# then the full out-of-process workload — build a localityd, spawn it with
# a two-tenant quota file, run the seeded localload phases (solo, contended,
# duplicate, stream, SIGTERM chaos-drain), gate the fairness ratio and the
# bucket-quantized p99s against the lexically latest LOAD_*.json baseline
# in loadbaseline/, and write this run's artifact next to it (DESIGN.md §12).
load:
	$(GO) test -race -count=1 -run 'TestMultiTenantFairnessE2E' -v ./cmd/localityd
	$(GO) build -o /tmp/localityd-load ./cmd/localityd
	$(GO) run ./cmd/localload -spawn -localityd-bin /tmp/localityd-load -artifact-dir loadbaseline

# Result-store gate (CI): the content-addressed cache under the race
# detector — segment encode/decode, torn-tail and corruption recovery,
# eviction, concurrent access — plus the pool/daemon integration tests:
# the byte-identity differential (incl. kill-and-reopen), cache-hit SSE
# replay, retention eviction, and the across-restart HTTP serving test
# (DESIGN.md §13).
store:
	$(GO) test -race -count=1 ./internal/store
	$(GO) test -race -count=1 -run 'TestStore|TestRetention' ./internal/jobs ./cmd/localityd

# Trace gate (CI): end-to-end deterministic tracing (DESIGN.md §14). The
# obsinert + nowallclock analyzers prove the tracer stays inert and its
# wall-clock reads confined to the sanctioned leaf; the trace package and
# localtrace CLI tests run under the race detector; then the tracing
# differentials and the multi-process kill-a-shard trace e2e run — every
# process appends spans to one shared directory, and the causal tree must
# assemble with zero orphaned spans. With TRACE_ARTIFACT_DIR set, the e2e
# exports the merged per-process artifacts there and localtrace re-validates
# them from the command line — the same binary a human would point at a
# production trace directory is the final arbiter of the gate.
trace:
	$(GO) run ./cmd/localvet -only obsinert,nowallclock ./...
	$(GO) test -race -count=1 ./internal/obs/trace ./cmd/localtrace
	$(GO) test -race -count=1 -run 'TestTracerByteIdentity|TestReportMaxFilesPrunes|TestTraceHeaderConstantsAgree|TestRouteLatencyCoversEventsAndCheckpoint|TestSubmitExemplarLinksTrace|TestClusterTraceE2E' -v ./internal/jobs ./cmd/localityd
	@if [ -n "$$TRACE_ARTIFACT_DIR" ]; then $(GO) run ./cmd/localtrace "$$TRACE_ARTIFACT_DIR"; fi

# Regenerate the full-scale EXPERIMENTS.md tables (takes minutes).
experiments:
	$(GO) run ./cmd/localbench
