GO ?= go

.PHONY: all build test vet race-kernel bench experiments

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Robustness gate (CI): vet the whole module, then run the simulator kernel
# and fault-injection suites under the race detector — these are the packages
# that exercise goroutine-per-node execution, cancellation and abort paths.
race-kernel:
	$(GO) vet ./...
	$(GO) test -race ./internal/sim/... ./internal/fault/...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Regenerate the full-scale EXPERIMENTS.md tables (takes minutes).
experiments:
	$(GO) run ./cmd/localbench
