// Package locality is a LOCAL-model laboratory: a reproduction of
//
//	Chang, Kopelowitz, Pettie: "An Exponential Separation Between
//	Randomized and Deterministic Complexity in the LOCAL Model"
//	(PODC/FOCS 2016)
//
// as a runnable Go library. It bundles a synchronous message-passing
// simulator for Linial's LOCAL model (DetLOCAL and RandLOCAL variants), the
// paper's two randomized Δ-coloring-trees algorithms, the classical toolbox
// they build on (Linial's coloring, Cole–Vishkin, Luby's MIS,
// Barenboim–Elkin forest coloring, maximal matching), the constructive
// transforms of Theorems 3, 5 and 6, the sinkless orientation/coloring
// problem pair of Brandt et al., a neighborhood-graph lower-bound engine,
// and an experiment harness that regenerates every quantitative claim as a
// table (see EXPERIMENTS.md).
//
// This package is the curated facade: it re-exports the library's main
// types and constructors so downstream users import a single path. The
// subsystems live in internal/ packages whose documentation carries the
// full details; everything exported here is an alias or thin wrapper.
//
// # Quick start
//
//	g := locality.RandomTree(1024, 8, locality.NewRand(1))
//	res, err := locality.Run(g, locality.RunConfig{Randomized: true, Seed: 42},
//	    locality.NewTheorem11Factory(locality.Theorem11Options{Delta: 8}))
//	// res.Rounds is the LOCAL complexity; verify with locality.ValidateColoring.
//
// See examples/ for complete programs.
package locality

import (
	"locality/internal/core"
	"locality/internal/fault"
	"locality/internal/forest"
	"locality/internal/graph"
	"locality/internal/harness"
	"locality/internal/ids"
	"locality/internal/lcl"
	"locality/internal/linial"
	"locality/internal/matching"
	"locality/internal/mis"
	"locality/internal/nbrgraph"
	"locality/internal/ringcolor"
	"locality/internal/rng"
	"locality/internal/sim"
	"locality/internal/sinkless"
	"locality/internal/speedup"
)

// ---- Graphs ----

// Graph is an immutable simple undirected graph with port numbering; it is
// both the instance type and the simulator topology.
type Graph = graph.Graph

// EdgeColoredGraph bundles a graph with a proper edge coloring (the input
// of the sinkless problems).
type EdgeColoredGraph = graph.EdgeColoredGraph

// GraphBuilder accumulates edges and validates them into a Graph.
type GraphBuilder = graph.Builder

// NewGraphBuilder returns a builder for a graph on n vertices.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// Generators for every instance family the paper's results run on.
var (
	Path                   = graph.Path
	Ring                   = graph.Ring
	Star                   = graph.Star
	Grid                   = graph.Grid
	CompleteKAry           = graph.CompleteKAry
	Caterpillar            = graph.Caterpillar
	RandomTree             = graph.RandomTree
	UniformTree            = graph.UniformTree
	RandomBoundedDegree    = graph.RandomBoundedDegree
	RandomRegularBipartite = graph.RandomRegularBipartite
	HighGirthRegular       = graph.HighGirthRegular
)

// ---- Randomness and identifiers ----

// Rand is a deterministic splittable random stream (xoshiro256**).
type Rand = rng.Source

// NewRand returns a stream seeded with seed.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// IDAssignment is a vertex-indexed table of DetLOCAL identifiers.
type IDAssignment = ids.Assignment

var (
	// SequentialIDs assigns vertex v the ID v+1.
	SequentialIDs = ids.Sequential
	// ShuffledIDs assigns a random permutation of 1..n.
	ShuffledIDs = ids.Shuffled
	// RandomBitIDs draws independent b-bit IDs with no uniqueness
	// guarantee (the Theorem 5 regime).
	RandomBitIDs = ids.RandomBits
)

// ---- The simulator ----

// Machine is the per-node state machine interface of the LOCAL kernel.
type Machine = sim.Machine

// MachineFactory creates a fresh machine per node.
type MachineFactory = sim.Factory

// NodeEnv is a node's initial knowledge (degree, n, Δ, ID, random stream).
type NodeEnv = sim.Env

// Message is an arbitrary value sent along an edge in one round.
type Message = sim.Message

// RunConfig selects the model variant and run parameters.
type RunConfig = sim.Config

// Arena is reusable scratch memory for back-to-back runs: pass one in
// RunConfig.Arena and the kernel reuses machine/inbox buffers across runs.
type Arena = sim.Arena

// RunResult reports rounds, outputs and instrumentation.
type RunResult = sim.Result

// Engine selects the executor.
type Engine = sim.Engine

// Engine choices: a deterministic sequential executor, and one goroutine
// per node with a channel per directed edge.
const (
	EngineSequential = sim.EngineSequential
	EngineConcurrent = sim.EngineConcurrent
)

// Run executes a distributed algorithm on g.
func Run(g *Graph, cfg RunConfig, f MachineFactory) (*RunResult, error) {
	return sim.Run(g, cfg, f)
}

// RunContext is Run with cooperative cancellation: the run aborts cleanly
// (all goroutines reaped) when ctx is cancelled or RunConfig.Deadline
// expires.
var RunContext = sim.RunContext

// NodeError locates a misbehaving machine: which node, which round, what it
// did. Returned (wrapped in one of the sentinels below) instead of crashing
// the process when a machine panics or over-sends.
type NodeError = sim.NodeError

// Kernel error sentinels, testable with errors.Is.
var (
	// ErrNodePanic wraps a recovered machine panic.
	ErrNodePanic = sim.ErrNodePanic
	// ErrOverSend marks a machine that sent on more ports than its degree.
	ErrOverSend = sim.ErrOverSend
	// ErrMaxRounds marks a run that exhausted its round budget.
	ErrMaxRounds = sim.ErrMaxRounds
	// ErrDeadline marks a run aborted by the wall-clock watchdog.
	ErrDeadline = sim.ErrDeadline
)

// ---- Fault injection (off-model instrumentation) ----

// FaultPlan is a deterministic seeded fault-injection schedule (crash-stop
// nodes, message drops, duplication) that wraps any factory via its Wrap
// method. It is instrumentation for robustness experiments, not part of the
// paper's LOCAL model.
type FaultPlan = fault.Plan

// ---- LCL problems and verification ----

// LCLProblem is a locally checkable labeling problem (radius-1 check).
type LCLProblem = lcl.Problem

// LCLInstance is a graph plus optional input labeling.
type LCLInstance = lcl.Instance

var (
	// ColoringProblem is the k-COLORING LCL.
	ColoringProblem = lcl.Coloring
	// MISProblem is the MAXIMAL INDEPENDENT SET LCL.
	MISProblem = lcl.MIS
	// MaximalMatchingProblem is the MAXIMAL MATCHING LCL.
	MaximalMatchingProblem = lcl.MaximalMatching
	// SinklessOrientationProblem and SinklessColoringProblem are the
	// Brandt et al. problems behind Theorem 4.
	SinklessOrientationProblem = lcl.SinklessOrientation
	SinklessColoringProblem    = lcl.SinklessColoring
	// VerifyDistributed runs the 1-round distributed verifier.
	VerifyDistributed = lcl.VerifyDistributed
)

// ValidateColoring judges a 1-based coloring against the k-coloring LCL.
func ValidateColoring(g *Graph, k int, colors []int) error {
	return lcl.Coloring(k).Validate(lcl.Instance{G: g}, lcl.IntLabels(colors))
}

// ValidateMIS judges a membership vector against the MIS LCL.
func ValidateMIS(g *Graph, inSet []bool) error {
	return lcl.MIS().Validate(lcl.Instance{G: g}, lcl.BoolLabels(inSet))
}

// LCLReport is the counted result of LCLProblem.Violations: how many
// per-vertex constraints a (possibly partial or damaged) labeling satisfies,
// and the worst offender. It is the graceful-degradation companion to the
// all-or-nothing Validate.
type LCLReport = lcl.Report

// ---- The paper's algorithms (Section VI) ----

// Theorem11Options configures the Δ >= 55 randomized tree coloring.
type Theorem11Options = core.T11Options

// Theorem10Options configures the large-Δ ColorBidding coloring.
type Theorem10Options = core.T10Options

var (
	// NewTheorem11Factory is the three-phase RandLOCAL Δ-coloring of trees
	// (Theorem 11): O(log_Δ log n + log* n) rounds.
	NewTheorem11Factory = core.NewT11Factory
	// NewTheorem10Factory is the ColorBidding RandLOCAL Δ-coloring of
	// trees (Theorem 10).
	NewTheorem10Factory = core.NewT10Factory
	// ColoringOutputs extracts the color labels from a run's outputs.
	ColoringOutputs = core.Colors
	// Theorem11Rounds / Theorem10Rounds predict the round budgets.
	Theorem11Rounds = core.T11Rounds
	Theorem10Rounds = core.T10Rounds
)

// ---- The deterministic toolbox ----

// TreeColoringOptions configures the Theorem 9 style deterministic forest
// q-coloring.
type TreeColoringOptions = forest.Options

// LinialOptions configures Linial's iterated color reduction.
type LinialOptions = linial.Options

var (
	// NewTreeColoringFactory is the DetLOCAL q-coloring of forests
	// (Barenboim–Elkin / Theorem 9 role): O(log_A n · A + log* n) rounds.
	NewTreeColoringFactory = forest.NewFactory
	// NewLinialFactory is Theorem 2 (+ optional sweep / Kuhn–Wattenhofer
	// reduction) as a machine.
	NewLinialFactory = linial.NewFactory
	// LinialSchedule / LinialFixedPoint expose the palette trajectory.
	LinialSchedule   = linial.Schedule
	LinialFixedPoint = linial.FixedPoint
	// NewColeVishkinFactory 3-colors oriented rings in O(log* n).
	NewColeVishkinFactory = ringcolor.NewColeVishkinFactory
	// RingOrientation builds the oriented-ring promise input.
	RingOrientation = ringcolor.RingOrientation
)

// ---- Symmetry breaking ----

var (
	// NewLubyMISFactory is Luby's RandLOCAL MIS.
	NewLubyMISFactory = mis.NewLubyFactory
	// NewDetMISFactory is the DetLOCAL MIS via Linial + class sweep.
	NewDetMISFactory = mis.NewDetFactory
	// NewRandMatchingFactory / NewDetMatchingFactory are the maximal
	// matching pair.
	NewRandMatchingFactory = matching.NewRandFactory
	NewDetMatchingFactory  = matching.NewDetFactory
)

// LubyMISOptions configures Luby's MIS (subgraph restriction, seeding).
type LubyMISOptions = mis.LubyOptions

// ---- Sinkless orientation / coloring (Theorem 4's problems) ----

var (
	// NewSinklessOrientationFactory is the RandLOCAL sinkless orientation.
	NewSinklessOrientationFactory = sinkless.NewOrientFactory
	// NewColoringFromOrientationFactory / NewOrientFromColoringFactory are
	// the executable Lemma 1/2 reductions.
	NewColoringFromOrientationFactory = sinkless.NewColoringFromOrientationFactory
	NewOrientFromColoringFactory      = sinkless.NewOrientFromColoringFactory
	// ZeroRoundMinimax / ZeroRoundLowerBound expose the Theorem 4 base
	// case exactly.
	ZeroRoundMinimax    = sinkless.ZeroRoundMinimax
	ZeroRoundLowerBound = sinkless.ZeroRoundLowerBound
)

// ---- Meta-transforms (Theorems 3, 5, 6) ----

var (
	// NewTheorem5Factory turns a DetLOCAL algorithm into a RandLOCAL one
	// via random IDs + one power-graph Linial step.
	NewTheorem5Factory = speedup.NewTheorem5Factory
	// NewTheorem6Plan / NewTheorem6Factory implement the ID-shortening
	// speedup transform.
	NewTheorem6Plan     = speedup.NewTheorem6Plan
	NewTheorem6Factory  = speedup.NewTheorem6Factory
	Theorem5PaletteSize = speedup.Theorem5Palette
)

// ---- Lower-bound engines ----

var (
	// BuildNeighborhoodGraph constructs Linial's B_t(m) for directed rings.
	BuildNeighborhoodGraph = nbrgraph.Build
	// RingAlgorithmExists decides t-round k-colorability of rings with ID
	// space m by exhaustive search — machine-checked lower bounds.
	RingAlgorithmExists = nbrgraph.AlgorithmExists
)

// ---- Experiments ----

// ExperimentConfig scales the experiment suite.
type ExperimentConfig = harness.Config

// ExperimentTable is a rendered experiment result.
type ExperimentTable = harness.Table

var (
	// RunAllExperiments regenerates every table of EXPERIMENTS.md.
	RunAllExperiments = harness.All
	// ExperimentByID looks up a single driver ("E1".."E11").
	ExperimentByID = harness.ByID
)

// RetryResult records a Retry run: attempts consumed and whether one
// succeeded.
type RetryResult = harness.RetryResult

// Retry re-runs a Monte-Carlo algorithm under a failure budget; the callback
// derives fresh seeds from the attempt number.
var Retry = harness.Retry
