package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"locality/internal/obs/trace"
)

// writeArtifact builds a trace artifact with deterministic timestamps via
// Emit, so the CLI's rendered durations are stable across runs.
func writeArtifact(t *testing.T, dir, proc string, f func(tr *trace.Tracer)) {
	t.Helper()
	tr, err := trace.Open(trace.Options{Dir: dir, Proc: proc})
	if err != nil {
		t.Fatal(err)
	}
	f(tr)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRunRendersCompleteTrace(t *testing.T) {
	dir := t.TempDir()
	root := trace.SpanContext{Trace: "t1", Span: "w1-1"}
	writeArtifact(t, dir, "w1", func(tr *trace.Tracer) {
		tr.Emit(trace.SpanContext{Trace: "t1"}, "http.submit", 1000, 9000)
		tr.Emit(root, "pool.admit", 1500, 2500, "outcome", "enqueued")
		tr.Emit(root, "job.run", 3000, 8000)
	})

	var out, errb bytes.Buffer
	code := run([]string{dir}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	for _, want := range []string{
		"trace t1", "http.submit", "pool.admit", "job.run",
		"critical path", "top span types", "1 file(s), 3 span(s), 1 trace(s)",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	// http.submit spans 8µs; job.run ends latest, so it is on the critical
	// path below the root.
	if !strings.Contains(out.String(), "8µs") {
		t.Errorf("expected 8µs root duration:\n%s", out.String())
	}
}

func TestRunFailsOnOrphan(t *testing.T) {
	dir := t.TempDir()
	writeArtifact(t, dir, "w1", func(tr *trace.Tracer) {
		tr.Emit(trace.SpanContext{Trace: "t1"}, "http.submit", 1000, 9000)
		tr.Emit(trace.SpanContext{Trace: "t1", Span: "missing-99"}, "pool.admit", 1500, 2500)
	})

	var out, errb bytes.Buffer
	if code := run([]string{dir}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "orphaned span") {
		t.Errorf("stderr missing orphan report:\n%s", errb.String())
	}
}

func TestRunFailsOnCorruptArtifact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.trace.jsonl")
	content := `{"type":"meta","schema":"locality-trace/v1"}
{"type":"span","trace":"t1","span":"a-1","name":"x","start_unix_nanos":
{"type":"span","trace":"t1","span":"a-2","name":"y","start_unix_nanos":1,"duration_nanos":1}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{dir}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "not a torn tail") {
		t.Errorf("stderr missing corruption report:\n%s", errb.String())
	}
}

func TestRunTraceFilter(t *testing.T) {
	dir := t.TempDir()
	writeArtifact(t, dir, "w1", func(tr *trace.Tracer) {
		tr.Emit(trace.SpanContext{Trace: "t1"}, "alpha", 1000, 2000)
		tr.Emit(trace.SpanContext{Trace: "t2"}, "beta", 3000, 4000)
	})

	var out, errb bytes.Buffer
	if code := run([]string{"-trace", "t2", dir}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	if strings.Contains(out.String(), "alpha") || !strings.Contains(out.String(), "beta") {
		t.Errorf("filter failed:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-trace", "nope", dir}, &out, &errb); code != 1 {
		t.Fatalf("missing trace: exit %d, want 1", code)
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"-version"}, &out, &errb); code != 0 {
		t.Fatalf("-version: exit %d, want 0", code)
	}
	if !strings.Contains(out.String(), "localtrace") {
		t.Errorf("-version output: %q", out.String())
	}
}
