// Command localtrace reads locality-trace/v1 JSONL artifacts — from one
// process or a directory full of them — reassembles the causal span tree,
// and prints a waterfall timeline, the critical path, and a top-k summary
// of span types by exclusive time.
//
//	localtrace /var/run/locality/traces           # every trace in the dir
//	localtrace -trace 0a1b2c3d4e5f6071 dir        # one trace
//	localtrace -top 5 a.trace.jsonl b.trace.jsonl # merge specific files
//
// localtrace is also the CI trace gate: it exits nonzero when any
// artifact is malformed or the assembled forest has orphaned spans or
// duplicate span IDs — a broken causal chain means a header that never
// propagated or a process that never flushed, and the build should say
// so. A torn final line is tolerated (a SIGKILLed process loses at most
// the span it was mid-writing); torn lines anywhere else are corruption.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"locality/internal/obs"
	"locality/internal/obs/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("localtrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	top := fs.Int("top", 10, "span types shown in the exclusive-time summary")
	traceID := fs.String("trace", "", "render only this trace ID")
	width := fs.Int("width", 48, "waterfall timeline width in columns")
	version := fs.Bool("version", false, "print build version and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintf(stdout, "localtrace %s %s %s/%s\n", obs.Version(), runtime.Version(), runtime.GOOS, runtime.GOARCH)
		return 0
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: localtrace [flags] <artifact file or dir>...")
		return 2
	}

	res, err := trace.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "localtrace: %v\n", err)
		return 1
	}
	forest := trace.Assemble(res.Spans)

	shown := 0
	for _, t := range forest.Traces {
		if *traceID != "" && t.ID != *traceID {
			continue
		}
		shown++
		renderTree(stdout, t, *width, *top)
	}
	if *traceID != "" && shown == 0 {
		fmt.Fprintf(stderr, "localtrace: trace %s not found\n", *traceID)
		return 1
	}
	fmt.Fprintf(stdout, "%d file(s), %d span(s), %d trace(s)", res.Files, len(res.Spans), len(forest.Traces))
	if res.Truncated > 0 {
		fmt.Fprintf(stdout, ", %d torn tail(s) tolerated", res.Truncated)
	}
	fmt.Fprintln(stdout)

	if err := forest.Err(); err != nil {
		fmt.Fprintf(stderr, "localtrace: %v\n", err)
		return 1
	}
	return 0
}

// renderTree prints one trace: header, waterfall, critical path, top-k.
func renderTree(w io.Writer, t *trace.Tree, width, top int) {
	start, end := t.Start(), t.EndNanos()
	total := end - start
	fmt.Fprintf(w, "trace %s  (%d spans, %s)\n", t.ID, t.Spans, fmtDur(total))

	var walk func(n *trace.Node, depth int)
	walk = func(n *trace.Node, depth int) {
		label := strings.Repeat("  ", depth) + n.Name
		fmt.Fprintf(w, "  %-34s %-14s %9s  |%s|\n",
			clip(label, 34), clip(n.Proc, 14), fmtDur(n.Dur), bar(n.Start, n.End(), start, total, width))
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range t.Roots {
		walk(r, 0)
	}

	fmt.Fprintf(w, "  critical path (%s):\n", fmtDur(total))
	for _, n := range t.CriticalPath() {
		fmt.Fprintf(w, "    %-32s %-14s %9s  (%s exclusive)\n",
			clip(n.Name, 32), clip(n.Proc, 14), fmtDur(n.Dur), fmtDur(trace.ExclusiveNanos(n)))
	}

	fmt.Fprintf(w, "  top span types by exclusive time:\n")
	stats := t.ExclusiveByName()
	if top > 0 && len(stats) > top {
		stats = stats[:top]
	}
	for _, st := range stats {
		fmt.Fprintf(w, "    %-32s %4d× %10s\n", clip(st.Name, 32), st.Count, fmtDur(st.Exclusive))
	}
	fmt.Fprintln(w)
}

// bar renders a span's interval as a fixed-width timeline strip.
func bar(s, e, origin, total int64, width int) string {
	if width < 8 {
		width = 8
	}
	if total <= 0 {
		return strings.Repeat("#", width)
	}
	a := int((s - origin) * int64(width) / total)
	b := int((e - origin) * int64(width) / total)
	if a < 0 {
		a = 0
	}
	if a >= width {
		a = width - 1
	}
	if b <= a {
		b = a + 1
	}
	if b > width {
		b = width
	}
	return strings.Repeat(" ", a) + strings.Repeat("#", b-a) + strings.Repeat(" ", width-b)
}

// fmtDur renders nanoseconds compactly and deterministically.
func fmtDur(n int64) string {
	return time.Duration(n).String()
}

// clip bounds a label to the column width (ASCII truncation keeps the
// waterfall columns aligned).
func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	if n <= 3 {
		return s[:n]
	}
	return s[:n-3] + "..."
}
