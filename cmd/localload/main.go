// Command localload drives the deterministic multi-tenant load workload
// (internal/load) against a localityd and gates the result: the fairness
// verdict (an abusive tenant must not degrade a well-behaved tenant's p99
// beyond the configured ratio, with zero well-behaved sheds), the phase
// invariants (idempotent dedup, clean SSE termination), and — when an
// artifact directory holds a prior run — a p99 regression gate against the
// lexically latest LOAD_*.json baseline.
//
// Two modes:
//
//	-url      point at an already-running daemon (no chaos phase: localload
//	          will not signal a process it does not own).
//	-spawn    build-your-own target: exec a localityd binary
//	          (-localityd-bin) on an ephemeral port with a generated
//	          two-tenant quota file, run the full workload including the
//	          SIGTERM chaos-drain phase, and require the daemon to exit
//	          cleanly after draining.
//
// Exit status 0 iff every gate passed.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"locality/internal/load"
	"locality/internal/obs"
	"locality/internal/tenant"
)

func main() {
	var (
		url          = flag.String("url", "", "base URL of a running localityd (mutually exclusive with -spawn)")
		spawn        = flag.Bool("spawn", false, "spawn a localityd (-localityd-bin) and run the full workload incl. SIGTERM chaos phase")
		bin          = flag.String("localityd-bin", "", "localityd binary for -spawn mode")
		seed         = flag.Uint64("seed", 1, "workload seed: every job spec derives from it")
		goodKey      = flag.String("good-key", "load-good-key", "well-behaved tenant API key")
		abuseKey     = flag.String("abuse-key", "load-abuse-key", "abusive tenant API key")
		jobsN        = flag.Int("jobs", 6, "well-behaved jobs per measured phase (solo and contended)")
		abusers      = flag.Int("abusers", 4, "concurrent abusive clients during the contended phase")
		streams      = flag.Int("streams", 3, "concurrent SSE streams in the stream phase")
		dups         = flag.Int("dups", 8, "concurrent identical submits in the duplicate phase")
		experiment   = flag.String("experiment", "E2", "experiment the measured workload submits (quick mode; E2 runs long enough that scheduler noise stays small relative to it)")
		abuseExp     = flag.String("abuse-experiment", "E8", "experiment the abusive flood submits (short by default: admission pressure, not CPU occupation)")
		fairRatio    = flag.Float64("fairness-ratio", 2, "max contended/solo p99 ratio for the fairness verdict")
		floodPause   = flag.Duration("flood-pause", 10*time.Millisecond, "pace between each abusive client's submits (lower = harsher flood)")
		artifactDir  = flag.String("artifact-dir", "", "directory for LOAD_<stamp>.json artifacts and the baseline gate (empty = no artifact)")
		baseRatio    = flag.Float64("baseline-ratio", load.DefaultBaselineRatio, "max bucket-quantized p99 ratio vs the latest baseline artifact (0 = skip the gate)")
		spawnWorkers = flag.Int("spawn-workers", 4, "worker count for the spawned daemon")
		version      = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("localload: ")

	if *version {
		fmt.Printf("localload %s %s %s/%s\n", obs.Version(), runtime.Version(), runtime.GOOS, runtime.GOARCH)
		return
	}

	if (*url == "") == !*spawn {
		log.Fatal("exactly one of -url or -spawn is required")
	}

	ctx := context.Background()
	opts := load.Options{
		Seed:             *seed,
		GoodKey:          *goodKey,
		AbuseKey:         *abuseKey,
		Experiment:       *experiment,
		AbuseExperiment:  *abuseExp,
		SoloJobs:         *jobsN,
		ContendedJobs:    *jobsN,
		AbuseClients:     *abusers,
		Streams:          *streams,
		DuplicateSubmits: *dups,
		MaxFairnessRatio: *fairRatio,
		FloodPause:       *floodPause,
		Logf:             log.Printf,
	}

	var daemon *spawned
	if *spawn {
		if *bin == "" {
			log.Fatal("-spawn requires -localityd-bin")
		}
		var err error
		daemon, err = spawnDaemon(ctx, *bin, *spawnWorkers, *goodKey, *abuseKey)
		if err != nil {
			log.Fatalf("spawning localityd: %v", err)
		}
		defer daemon.kill()
		opts.BaseURL = daemon.url
		opts.Chaos = daemon.sigterm
	} else {
		opts.BaseURL = *url
	}

	res, err := load.Run(ctx, opts)
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	res.Stamp = load.StampNow()

	ok := res.Passed()
	if daemon != nil {
		if err := daemon.wait(10 * time.Second); err != nil {
			log.Printf("GATE FAIL: daemon did not drain cleanly after SIGTERM: %v", err)
			ok = false
		}
	}

	if *artifactDir != "" {
		basePath, base, err := load.Latest(*artifactDir)
		if err != nil {
			log.Fatalf("reading baseline: %v", err)
		}
		if *baseRatio > 0 {
			if err := load.CompareBaseline(res, base, *baseRatio); err != nil {
				log.Printf("GATE FAIL vs %s: %v", basePath, err)
				ok = false
			} else if base != nil {
				log.Printf("baseline gate OK vs %s", filepath.Base(basePath))
			}
		}
		path, err := load.Write(*artifactDir, res)
		if err != nil {
			log.Fatalf("writing artifact: %v", err)
		}
		log.Printf("artifact: %s", path)
	}

	summary, _ := json.MarshalIndent(res, "", "  ")
	fmt.Println(string(summary))
	for _, f := range res.Failures {
		log.Printf("GATE FAIL: %s", f)
	}
	if !ok {
		os.Exit(1)
	}
	log.Printf("all gates passed (fairness ratio %.2f ≤ %.2f, %d abusive sheds absorbed)",
		res.FairnessRatio, res.MaxFairnessRatio, res.AbuseSheds)
}

// spawned is a localload-owned localityd process.
type spawned struct {
	cmd *exec.Cmd
	url string
}

// spawnDaemon execs the daemon on an ephemeral port with a generated
// two-tenant quota file: the well-behaved tenant gets weight but no caps,
// the abusive one gets tight rate/queue/in-flight quotas — the contended
// phase is only a fairness test if the server can actually tell the
// tenants apart. The listen address is parsed from the daemon's own
// "listening on" log line, so there is no port-picking race.
func spawnDaemon(ctx context.Context, bin string, workers int, goodKey, abuseKey string) (*spawned, error) {
	dir, err := os.MkdirTemp("", "localload-*")
	if err != nil {
		return nil, err
	}
	// The abusive quota is tight on purpose: at most one abusive job may
	// occupy a worker and the token bucket admits ~2/s, so the flood is
	// absorbed on the cheap structured-shed path. Loose quotas here would
	// turn the contended phase into a raw CPU-share measurement — on a
	// small machine the client swarm, the daemon and the abusive jobs all
	// multiplex the same cores.
	cfg := tenant.Config{
		Pinned: []tenant.Pinned{
			{Name: "good", Key: goodKey, Limits: tenant.Limits{Weight: 4, MaxStreams: 64}},
			{Name: "abuse", Key: abuseKey, Limits: tenant.Limits{
				MaxInFlight: 1, MaxQueued: 2, Rate: 2, Burst: 1, MaxStreams: 4}},
		},
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		return nil, err
	}
	tenantsFile := filepath.Join(dir, "tenants.json")
	if err := os.WriteFile(tenantsFile, data, 0o644); err != nil {
		return nil, err
	}

	cmd := exec.CommandContext(ctx, bin,
		"-addr", "127.0.0.1:0",
		"-workers", fmt.Sprint(workers),
		"-queue", "64",
		"-tenants-file", tenantsFile,
		"-drain-timeout", "10s",
		// The persistent result store under the run's temp dir gives the
		// cache phase its second answer tier (store hits behind the dedup
		// map) and exercises the write-through path under load.
		"-store-dir", filepath.Join(dir, "store"),
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stdout = io.Discard
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	s := &spawned{cmd: cmd}

	// The daemon announces "localityd listening on 127.0.0.1:PORT" on
	// stderr; scan until it does, then keep the pipe drained.
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			s.url = "http://" + strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if s.url == "" {
		s.kill()
		return nil, fmt.Errorf("daemon never announced its listen address")
	}
	go io.Copy(io.Discard, stderr) // reaped when the process exits

	if err := waitReady(ctx, s.url); err != nil {
		s.kill()
		return nil, err
	}
	return s, nil
}

// waitReady polls /readyz until the daemon answers 200.
func waitReady(ctx context.Context, base string) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/readyz", nil)
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("daemon at %s not ready within 10s", base)
}

// sigterm is the engine's chaos hook.
func (s *spawned) sigterm() error {
	return s.cmd.Process.Signal(syscall.SIGTERM)
}

// wait requires the signalled daemon to drain and exit 0 within the grace
// period — the process-level half of the chaos-drain gate.
func (s *spawned) wait(grace time.Duration) error {
	done := make(chan error, 1)
	go func() { done <- s.cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(grace):
		s.kill()
		return fmt.Errorf("still running %s after SIGTERM", grace)
	}
}

func (s *spawned) kill() {
	_ = s.cmd.Process.Kill()
	_, _ = s.cmd.Process.Wait()
}
