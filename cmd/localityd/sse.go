// Server-Sent Events: GET /v1/jobs/{id}/events streams a job's lifecycle —
// an orienting snapshot, one progress event per committed row batch, and a
// guaranteed terminal event — over the pool's subscription hooks
// (jobs.Pool.Subscribe). The route deliberately lives OUTSIDE the limiter:
// a stream is long-lived by design, so the per-request timeout would sever
// it and the inflight cap would let streams starve the API. Per-tenant
// MaxStreams quotas bound it instead, and a drain closes every stream
// cleanly after its terminal event (the drain-race guarantee the e2e tests
// pin down).
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"locality/internal/jobs"
	"locality/internal/tenant"
)

// sseBuffer is the per-subscription event buffer. Progress events are
// droppable (the Seq field exposes gaps), so a slow client loses
// intermediate progress, never the terminal event.
const sseBuffer = 32

func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sub, err := s.pool.Subscribe(r.Header.Get(tenant.Header), id, sseBuffer)
	if err != nil {
		if errors.Is(err, jobs.ErrUnknownJob) {
			writeJSON(w, http.StatusNotFound, errorResponse{
				Error: "unknown job", Reason: "not_found"})
			return
		}
		// Stream-cap and tenant rejections carry the same structured body
		// and Retry-After discipline as submit sheds.
		status := shedStatus(err)
		if retryableStatus(status) {
			writeRetryable(w, status, err, shedResponse(err))
			return
		}
		writeJSON(w, status, shedResponse(err))
		return
	}
	defer s.pool.Unsubscribe(sub)

	// ResponseController reaches Flush through the instrumentation wrapper
	// (statusWriter.Unwrap). A non-streaming writer fails the first flush.
	rc := http.NewResponseController(w)
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	// The opening snapshot orients the client: late subscribers see the
	// current state without replaying history.
	if j, ok := s.pool.Get(id); ok {
		s.joinJobTrace(r, j)
		writeSSE(w, "snapshot", j)
	}
	if err := rc.Flush(); err != nil {
		return
	}

	for {
		select {
		case ev := <-sub.Events():
			writeSSE(w, sseEventName(ev), ev)
			if err := rc.Flush(); err != nil {
				return
			}
		case <-sub.Done():
			// Termination signalled; drain any events buffered behind it so
			// the terminal event always reaches the wire, then close.
			for {
				select {
				case ev := <-sub.Events():
					writeSSE(w, sseEventName(ev), ev)
				default:
					_ = rc.Flush()
					return
				}
			}
		case <-r.Context().Done():
			return // client went away
		}
	}
}

func sseEventName(ev jobs.Event) string {
	if ev.Terminal {
		return "terminal"
	}
	return "progress"
}

// writeSSE frames one event. The payloads are JSON-encoded structs with no
// string fields containing newlines, so the single data: line framing is
// safe.
func writeSSE(w io.Writer, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}
