package main

// Trace acceptance e2e: three real worker localityd processes and a
// coordinator front-end all append spans to ONE shared artifact
// directory (distinct proc names), one worker is SIGKILLed mid-sweep,
// and the merged artifacts still assemble into a complete causal tree —
// zero orphaned spans — with the failover and every serving layer
// visible under the job's identity-derived trace ID.
//
// Zero orphans under SIGKILL is a designed property, not luck: span
// records are written only at End, so every long-lived span parents to
// a context that was durably on disk before it started (see job.root in
// internal/jobs). The killed worker loses at most its in-flight job.run
// record and a torn final line, both of which the loader tolerates.
//
// When TRACE_ARTIFACT_DIR names a directory, the merged artifacts are
// copied there — CI uploads them and runs localtrace over the copy as
// the trace gate.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"slices"
	"strings"
	"syscall"
	"testing"
	"time"

	"locality/internal/fault"
	"locality/internal/jobs"
	"locality/internal/obs"
	"locality/internal/obs/trace"
)

func TestClusterTraceE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}

	const shards = 3
	plan := fault.ProcPlan{Seed: 7, Victims: 1}
	victims := plan.VictimIndices(shards)
	if len(victims) != 1 {
		t.Fatalf("plan selected %v", victims)
	}
	victim := victims[0]
	t.Logf("fault plan: %s -> shard%d", plan, victim)

	traceDir := t.TempDir()
	procs := make([]*exec.Cmd, shards)
	urls := make([]string, shards)
	for i := 0; i < shards; i++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			"LOCALITYD_E2E_WORKER=1",
			"LOCALITYD_E2E_PACE_MS=40",
			"LOCALITYD_E2E_CKDIR="+t.TempDir(),
			"LOCALITYD_E2E_TRACEDIR="+traceDir,
			fmt.Sprintf("LOCALITYD_E2E_TRACEPROC=worker%d", i),
		)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = io.Discard
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		procs[i] = cmd
		t.Cleanup(func() {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		})
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if u, ok := strings.CutPrefix(sc.Text(), "LISTENING "); ok {
				urls[i] = u
				break
			}
		}
		if urls[i] == "" {
			t.Fatalf("worker %d never announced its address", i)
		}
		go io.Copy(io.Discard, stdout)
	}
	for _, u := range urls {
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := http.Get(u + "/readyz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker %s never became ready", u)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// The coordinator front-end traces as proc "coord" into the same dir.
	coordTr, err := trace.Open(trace.Options{Dir: traceDir, Proc: "coord", Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	cs, front := testClusterFrontend(t, t.TempDir(), coordTr, urls...)

	resp := submit(t, front.URL, `{"experiment":"E4","quick":true,"seed":7}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	var acc struct {
		ID string `json:"id"`
	}
	decode(t, resp, &acc)

	killed := make(chan error, 1)
	go func() {
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get(urls[victim] + "/v1/jobs")
			if err != nil {
				killed <- fmt.Errorf("victim unreachable before kill: %v", err)
				return
			}
			var list struct {
				Jobs []jobs.Job `json:"jobs"`
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			_ = json.Unmarshal(body, &list)
			for _, j := range list.Jobs {
				if j.BatchesDone >= plan.KillAfter() {
					killed <- procs[victim].Process.Signal(syscall.SIGKILL)
					return
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
		killed <- fmt.Errorf("victim never committed %d batches", plan.KillAfter())
	}()
	if err := <-killed; err != nil {
		t.Fatal(err)
	}
	_, _ = procs[victim].Process.Wait()
	t.Logf("killed shard%d mid-sweep", victim)

	cj := pollClusterJob(t, front.URL, acc.ID)
	if cj.State != jobs.StateSucceeded {
		t.Fatalf("cluster job after kill: %s (%s)", cj.State, cj.Error)
	}
	if want := directRun(t, "E4", 7); cj.Output != want {
		t.Errorf("post-kill output differs from single-process run (tracing must not change bytes)")
	}

	// Drain so runOne has returned and the cluster.sweep span record — the
	// parent of every shard-side root — is on disk. Worker tracers are never
	// closed (two are about to be SIGKILLed by cleanup anyway); unbuffered
	// appends mean everything a worker finished is already durable.
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := cs.drain(drainCtx); err != nil {
		t.Fatal(err)
	}

	res, err := trace.Load(traceDir)
	if err != nil {
		t.Fatalf("loading merged artifacts: %v", err)
	}
	forest := trace.Assemble(res.Spans)
	if err := forest.Err(); err != nil {
		t.Fatalf("causal tree incomplete after kill: %v", err)
	}
	t.Logf("assembled %d spans from %d files (%d torn tails) into %d traces",
		len(res.Spans), res.Files, res.Truncated, len(forest.Traces))

	// The sweep's trace ID is derived from the spec identity — find it
	// without knowing anything about the run.
	spec := jobs.Spec{Experiment: "E4", Quick: true, Seed: 7}
	id := trace.IDFromIdentity(spec.IdentityKey())
	var tree *trace.Tree
	for _, tr := range forest.Traces {
		if tr.ID == id {
			tree = tr
		}
	}
	if tree == nil {
		t.Fatalf("no trace %s (identity-derived) among %d traces", id, len(forest.Traces))
	}

	// Every serving layer must appear in the one causal tree: coordinator
	// HTTP + sweep + dispatch + failover, worker HTTP + admission + queue +
	// execution + batch commits, and the deterministic endgame replay.
	names := tree.Names()
	for _, want := range []string{
		"http.submit", "cluster.sweep", "shard.dispatch", "cluster.failover",
		"cluster.endgame", "pool.admit", "queue.wait", "job.run", "batch.commit",
	} {
		if !slices.Contains(names, want) {
			t.Errorf("trace %s missing span type %q (have %v)", id, want, names)
		}
	}
	// Spans from all surviving procs plus the victim's pre-kill work.
	procsSeen := make(map[string]bool)
	var walk func(n *trace.Node)
	walk = func(n *trace.Node) {
		procsSeen[n.Proc] = true
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range tree.Roots {
		walk(r)
	}
	if !procsSeen["coord"] || len(procsSeen) < 3 {
		t.Errorf("trace spans cover procs %v, want coord plus at least two workers", procsSeen)
	}
	if cp := tree.CriticalPath(); len(cp) == 0 {
		t.Error("empty critical path")
	}

	if dst := os.Getenv("TRACE_ARTIFACT_DIR"); dst != "" {
		if err := os.MkdirAll(dst, 0o755); err != nil {
			t.Fatal(err)
		}
		files, _ := filepath.Glob(filepath.Join(traceDir, "*.trace.jsonl"))
		for _, f := range files {
			b, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dst, filepath.Base(f)), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}
