package main

// Route-level observability pins: every API route — the SSE stream and
// the checkpoint fetch included — reports into the shared latency and
// count families, the submit histogram carries an identity-derived trace
// exemplar when tracing is on, and the wire header constant the cluster
// client sets is the same one the trace package parses.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"locality/internal/cluster"
	"locality/internal/jobs"
	"locality/internal/obs"
	"locality/internal/obs/trace"
)

// TestTraceHeaderConstantsAgree pins the propagation contract: the
// cluster client (which cannot import the trace package — it is an
// obs-inert hot path) must spell the header exactly as the trace
// package defines it, or context would silently stop flowing.
func TestTraceHeaderConstantsAgree(t *testing.T) {
	if cluster.TraceHeader != trace.Header {
		t.Fatalf("cluster.TraceHeader %q != trace.Header %q", cluster.TraceHeader, trace.Header)
	}
}

// TestRouteLatencyCoversEventsAndCheckpoint pins that the SSE events
// route and the checkpoint route report into the same latency/count
// families as every other route — neither bypasses instrumentation.
func TestRouteLatencyCoversEventsAndCheckpoint(t *testing.T) {
	_, ts := testServer(t, jobs.Options{Workers: 1})

	resp := submit(t, ts.URL, `{"experiment":"E4","quick":true,"seed":7}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	var acc struct {
		ID string `json:"id"`
	}
	decode(t, resp, &acc)
	if j := pollJob(t, ts.URL, acc.ID); j.State != jobs.StateSucceeded {
		t.Fatalf("job: %s", j.State)
	}

	// A terminal job's event stream closes after snapshot+terminal, so a
	// plain GET completes; the checkpoint fetch is an ordinary request.
	for _, path := range []string{
		"/v1/jobs/" + acc.ID + "/events",
		"/v1/jobs/" + acc.ID + "/checkpoint",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	promBytes, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	prom := string(promBytes)
	for _, route := range []string{"events", "checkpoint", "submit", "get"} {
		for _, series := range []string{
			fmt.Sprintf(`locality_http_request_seconds_count{route=%q}`, route),
			fmt.Sprintf(`locality_http_requests_total{route=%q,code="200"}`, route),
		} {
			// The submit route answers 202, not 200.
			if route == "submit" && strings.Contains(series, "requests_total") {
				series = `locality_http_requests_total{route="submit",code="202"}`
			}
			if !strings.Contains(prom, series) {
				t.Errorf("/metrics missing series %s", series)
			}
		}
	}
}

// TestSubmitExemplarLinksTrace pins the metrics→trace link: with tracing
// on, the submit route's latency histogram exposes an EXEMPLAR comment
// carrying the job's identity-derived trace ID.
func TestSubmitExemplarLinksTrace(t *testing.T) {
	reg := obs.NewRegistry()
	tr, err := trace.Open(trace.Options{Dir: t.TempDir(), Proc: "api"})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	pool := jobs.New(jobs.Options{Workers: 1, Metrics: reg, Tracer: tr})
	s := newServer(pool, 64, 10*time.Second, reg, tr)
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)

	spec := jobs.Spec{Experiment: "E4", Quick: true, Seed: 7}
	resp := submit(t, ts.URL, `{"experiment":"E4","quick":true,"seed":7}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	var acc struct {
		ID string `json:"id"`
	}
	decode(t, resp, &acc)
	pollJob(t, ts.URL, acc.ID)

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	promBytes, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	want := fmt.Sprintf(`# EXEMPLAR locality_http_request_seconds{route="submit"} trace=%q`,
		trace.IDFromIdentity(spec.IdentityKey()))
	if !strings.Contains(string(promBytes), want) {
		t.Errorf("/metrics missing exemplar %s in:\n%s", want, promBytes)
	}
}
