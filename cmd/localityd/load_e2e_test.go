package main

// The multi-tenant fairness acceptance test: the exact workload the
// release gate runs (internal/load, the engine behind cmd/localload),
// driven in-process under the race detector. An abusive tenant floods
// submissions while a well-behaved tenant runs its measured workload; the
// quota + weighted-fair-share admission layer must hold the well-behaved
// tenant's p99 within the fairness ratio of its solo baseline, shed ZERO
// well-behaved requests, and absorb the flood as structured 429s.

import (
	"context"
	"testing"
	"time"

	"locality/internal/harness"
	"locality/internal/jobs"
	"locality/internal/load"
	"locality/internal/tenant"
)

func TestMultiTenantFairnessE2E(t *testing.T) {
	_, ts := testServer(t, jobs.Options{
		Workers:    4,
		QueueDepth: 64,
		Idempotent: true,
		// A fixed per-batch pause makes job duration sleep-dominated:
		// sleeping workers do not compete for the (possibly single) CPU,
		// so the contended/solo ratio measures admission fairness rather
		// than raw scheduler share between race-instrumented goroutines.
		// The pause is generous on purpose — scheduling noise on a busy
		// single-core -race run is tens of ms per job, and a longer job
		// makes that noise small relative to the p99s being compared.
		BatchHook: func(string, *harness.Checkpoint) { time.Sleep(25 * time.Millisecond) },
		// The abusive quota is deliberately tight: at most one abusive job
		// runs at a time and the token bucket admits ~1/s, so the flood is
		// absorbed on the cheap shed path instead of occupying workers —
		// which is exactly the protection the fairness verdict asserts.
		Tenancy: &tenant.Config{
			Pinned: []tenant.Pinned{
				{Name: "good", Key: "good-key", Limits: tenant.Limits{Weight: 4, MaxStreams: 16}},
				{Name: "abuse", Key: "abuse-key", Limits: tenant.Limits{
					MaxInFlight: 1, MaxQueued: 2, Rate: 1, Burst: 1, MaxStreams: 4}},
			},
		},
	})

	res, err := load.Run(context.Background(), load.Options{
		BaseURL:          ts.URL,
		Seed:             7,
		GoodKey:          "good-key",
		AbuseKey:         "abuse-key",
		SoloJobs:         4,
		ContendedJobs:    4,
		AbuseClients:     2,
		DuplicateSubmits: 6,
		Streams:          2,
		MaxFairnessRatio: 2,
		// On a shared single core the flood's own HTTP handling is CPU
		// the measured workload needs; a 10ms pace keeps tens of sheds
		// per run while leaving the admission layer as the bottleneck
		// under test.
		FloodPause: 10 * time.Millisecond,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatalf("load.Run: %v", err)
	}

	for _, f := range res.Failures {
		t.Errorf("gate failure: %s", f)
	}
	if !res.Fair {
		t.Errorf("fairness verdict false: contended p99 %.1fms vs solo %.1fms (ratio %.2f), %d good sheds",
			res.GoodContendedP99, res.GoodSoloP99, res.FairnessRatio, res.GoodSheds)
	}
	if res.GoodSheds != 0 {
		t.Errorf("well-behaved tenant shed %d times, want 0", res.GoodSheds)
	}
	if res.AbuseSheds == 0 {
		t.Error("abusive flood was never shed — the quota layer did nothing")
	}
	// Every phase ran: solo, contended, abuse, duplicate, stream, cache (no
	// chaos in-process — there is no child to signal).
	want := map[string]bool{"solo": false, "contended": false, "abuse": false, "duplicate": false, "stream": false, "cache": false}
	for _, ph := range res.Phases {
		if _, ok := want[ph.Name]; ok {
			want[ph.Name] = true
		}
		// This server has no result store, so every warm cache-phase answer
		// must come from the idempotent dedup tier.
		if ph.Name == "cache" && ph.Deduped == 0 {
			t.Errorf("cache phase: no deduped warm hits (result: %+v)", ph)
		}
	}
	for _, name := range []string{"solo", "contended", "abuse", "duplicate", "stream", "cache"} {
		if !want[name] {
			t.Errorf("phase %s missing from result", name)
		}
	}
	if !res.Passed() {
		t.Error("Result.Passed() = false")
	}
}
