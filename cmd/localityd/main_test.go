package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"locality/internal/harness"
	"locality/internal/jobs"
	"locality/internal/obs"
)

// testServer wraps a handler-level instance for white-box endpoint tests.
func testServer(t *testing.T, opts jobs.Options) (*server, *httptest.Server) {
	t.Helper()
	reg := obs.NewRegistry()
	opts.Metrics = reg
	pool := jobs.New(opts)
	s := newServer(pool, 64, 10*time.Second, reg, nil)
	ts := httptest.NewServer(s.handler())
	t.Cleanup(func() {
		ts.Close()
		drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.drain(drainCtx)
	})
	return s, ts
}

func decode(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
}

func submit(t *testing.T, base string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func pollJob(t *testing.T, base, id string) jobs.Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var j jobs.Job
		decode(t, resp, &j)
		if j.State.Terminal() {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s not terminal after 30s", id)
	return jobs.Job{}
}

func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func TestEndToEnd(t *testing.T) {
	_, ts := testServer(t, jobs.Options{Workers: 2})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	resp = submit(t, ts.URL, `{"experiment":"E8","quick":true,"seed":7}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/jobs/") {
		t.Errorf("Location header %q", loc)
	}
	var accepted struct {
		ID string `json:"id"`
	}
	decode(t, resp, &accepted)

	j := pollJob(t, ts.URL, accepted.ID)
	if j.State != jobs.StateSucceeded {
		t.Fatalf("job state %s, error %q", j.State, j.Error)
	}
	if !strings.Contains(j.Output, "== E8") {
		t.Errorf("output missing table header:\n%s", j.Output)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []jobs.Job `json:"jobs"`
	}
	decode(t, resp, &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != accepted.ID {
		t.Errorf("list: %+v", list.Jobs)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := testServer(t, jobs.Options{Workers: 1})
	resp := submit(t, ts.URL, `{not json`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp = submit(t, ts.URL, `{"experiment":"E99"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown experiment: status %d", resp.StatusCode)
	}
	var er errorResponse
	decode(t, resp, &er)
	if er.Reason != "unknown_experiment" {
		t.Errorf("reason %q", er.Reason)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/job-404")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestQueueFullShed429: a full submission queue sheds with HTTP 429 and a
// structured body stating the reason and queue occupancy.
func TestQueueFullShed429(t *testing.T) {
	hold := make(chan struct{})
	held := make(chan struct{}, 16)
	_, ts := testServer(t, jobs.Options{Workers: 1, QueueDepth: 1,
		BatchHook: func(id string, ck *harness.Checkpoint) {
			if len(ck.Batches) == 1 {
				held <- struct{}{}
				<-hold
			}
		}})
	defer close(hold)

	resp := submit(t, ts.URL, `{"experiment":"E8","quick":true,"seed":1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit A: %d", resp.StatusCode)
	}
	resp.Body.Close()
	<-held
	resp = submit(t, ts.URL, `{"experiment":"E8","quick":true,"seed":2}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit B: %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp = submit(t, ts.URL, `{"experiment":"E8","quick":true,"seed":3}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429", resp.StatusCode)
	}
	var er errorResponse
	decode(t, resp, &er)
	if er.Reason != "queue_full" || er.QueueLen != 1 || er.QueueCap != 1 {
		t.Errorf("shed body %+v", er)
	}
}

// TestConcurrencyLimit: the in-flight semaphore rejects excess requests
// with 503 instead of queueing them invisibly.
func TestConcurrencyLimit(t *testing.T) {
	pool := jobs.New(jobs.Options{Workers: 1})
	s := newServer(pool, 1, time.Second, obs.NewRegistry(), nil)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.drain(ctx)
	}()

	s.lim.inflight <- struct{}{} // occupy the only slot
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated server answered %d, want 503", resp.StatusCode)
	}
	var er errorResponse
	decode(t, resp, &er)
	if er.Reason != "overloaded" {
		t.Errorf("reason %q", er.Reason)
	}
	<-s.lim.inflight
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("freed server: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
}

func TestCancelEndpoint(t *testing.T) {
	hold := make(chan struct{})
	held := make(chan struct{}, 16)
	_, ts := testServer(t, jobs.Options{Workers: 1, QueueDepth: 4,
		BatchHook: func(id string, ck *harness.Checkpoint) {
			if id == "job-0" && len(ck.Batches) == 1 {
				held <- struct{}{}
				<-hold
			}
		}})
	resp := submit(t, ts.URL, `{"experiment":"E8","quick":true,"seed":1}`)
	resp.Body.Close()
	<-held
	resp = submit(t, ts.URL, `{"experiment":"E8","quick":true,"seed":2}`)
	var accepted struct {
		ID string `json:"id"`
	}
	decode(t, resp, &accepted)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+accepted.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/job-404", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	close(hold)
	if j := pollJob(t, ts.URL, accepted.ID); j.State != jobs.StateCancelled {
		t.Errorf("cancelled job state %s", j.State)
	}
}

// TestSIGTERMDrain is the full lifecycle acceptance: a real listener, a
// running job, SIGTERM delivered to the process. /readyz must flip to 503
// while draining, the drain deadline must force-cancel the job (progress
// checkpointed by the pool), and serve must return with zero leaked
// goroutines.
func TestSIGTERMDrain(t *testing.T) {
	before := runtime.NumGoroutine()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	started := make(chan struct{}, 64)
	opts := jobs.Options{Workers: 1,
		BatchHook: func(id string, ck *harness.Checkpoint) {
			if len(ck.Batches) == 1 {
				started <- struct{}{}
			}
			time.Sleep(30 * time.Millisecond)
		}}
	done := make(chan error, 1)
	go func() { done <- serve(ln, opts, storeConfig{}, traceConfig{}, 150*time.Millisecond, 5*time.Second, 64, "") }()

	waitHTTP(t, base+"/healthz", http.StatusOK, 10*time.Second)
	resp := submit(t, base, `{"experiment":"E12","quick":true,"seed":5}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	resp.Body.Close()
	<-started

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// While the pool drains, the listener still answers probes — and
	// reports not-ready.
	waitHTTP(t, base+"/readyz", http.StatusServiceUnavailable, 5*time.Second)

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not return after SIGTERM")
	}
	checkGoroutines(t, before)
}

// waitHTTP polls a URL until it answers with the wanted status.
func waitHTTP(t *testing.T, url string, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last string
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == want {
				return
			}
			last = fmt.Sprintf("%d: %s", resp.StatusCode, buf.String())
		} else {
			last = err.Error()
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s never answered %d (last: %s)", url, want, last)
}

// TestMetricsEndpoint: after a served job, /metrics exposes the shared
// registry in Prometheus text format — jobs-pool families and the HTTP
// request histogram both appear, so one scrape covers the whole daemon.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t, jobs.Options{Workers: 1})
	resp := submit(t, ts.URL, `{"experiment":"E8","quick":true,"seed":7}`)
	var accepted struct {
		ID string `json:"id"`
	}
	decode(t, resp, &accepted)
	pollJob(t, ts.URL, accepted.ID)

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	if mr.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", mr.StatusCode)
	}
	if ct := mr.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus 0.0.4 text format", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(mr.Body)
	body := buf.String()
	for _, want := range []string{
		"locality_jobs_submitted_total 1",
		`locality_jobs_completed_total{state="succeeded"} 1`,
		"# TYPE locality_http_request_seconds histogram",
		`locality_http_requests_total{route="submit",code="202"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
}

// TestJobReportArtifact: with ReportDir set, each job leaves a
// <id>.report.jsonl run report whose first record is the meta line.
func TestJobReportArtifact(t *testing.T) {
	dir := t.TempDir()
	_, ts := testServer(t, jobs.Options{Workers: 1, ReportDir: dir})
	resp := submit(t, ts.URL, `{"experiment":"E2","quick":true,"seed":7}`)
	var accepted struct {
		ID string `json:"id"`
	}
	decode(t, resp, &accepted)
	j := pollJob(t, ts.URL, accepted.ID)
	if j.State != jobs.StateSucceeded {
		t.Fatalf("job state %s, error %q", j.State, j.Error)
	}

	raw, err := os.ReadFile(filepath.Join(dir, accepted.ID+".report.jsonl"))
	if err != nil {
		t.Fatalf("run report artifact: %v", err)
	}
	lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("report has %d lines, want >= 3 (meta, records, summary)", len(lines))
	}
	var meta map[string]any
	if err := json.Unmarshal(lines[0], &meta); err != nil {
		t.Fatalf("meta line: %v", err)
	}
	if meta["type"] != "meta" || meta["experiment"] != "E2" || meta["schema"] != obs.ReportSchema {
		t.Errorf("meta record = %v", meta)
	}
	var sum map[string]any
	if err := json.Unmarshal(lines[len(lines)-1], &sum); err != nil {
		t.Fatalf("summary line: %v", err)
	}
	if sum["type"] != "summary" || sum["total_batches"] == float64(0) {
		t.Errorf("summary record = %v", sum)
	}
}

// TestPprofOptIn: the profiling mux answers only when explicitly enabled —
// the main handler never routes /debug/pprof/.
func TestPprofOptIn(t *testing.T) {
	_, ts := testServer(t, jobs.Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("main handler serves /debug/pprof/; profiling must be opt-in via -pprof-addr")
	}

	ps := httptest.NewServer(pprofHandler())
	defer ps.Close()
	pr, err := http.Get(ps.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Body.Close()
	if pr.StatusCode != http.StatusOK {
		t.Errorf("pprof index status %d, want 200", pr.StatusCode)
	}
	var buf bytes.Buffer
	buf.ReadFrom(pr.Body)
	if !strings.Contains(buf.String(), "goroutine") {
		t.Errorf("pprof index does not list profiles:\n%s", buf.String())
	}
}
