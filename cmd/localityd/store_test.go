package main

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"locality/internal/jobs"
	"locality/internal/obs"
)

// storeServer is testServer plus a persistent result cache on dir — one
// "daemon generation" the restart test can tear down and rebuild.
func storeServer(t *testing.T, dir string, opts jobs.Options) (*httptest.Server, func() string, func()) {
	t.Helper()
	reg := obs.NewRegistry()
	st, err := storeConfig{dir: dir}.open(reg)
	if err != nil {
		t.Fatalf("storeConfig.open: %v", err)
	}
	opts.Metrics = reg
	opts.Store = st
	pool := jobs.New(opts)
	s := newServer(pool, 64, 10*time.Second, reg, nil)
	ts := httptest.NewServer(s.handler())
	shutdown := func() {
		ts.Close()
		drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.drain(drainCtx)
		st.Close()
	}
	metrics := func() string {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatalf("metrics: %v", err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("metrics body: %v", err)
		}
		return string(data)
	}
	return ts, metrics, shutdown
}

// TestStoreServesAcrossRestart is the daemon-level acceptance scenario: a
// localityd computes a sweep, dies, and its successor on the same
// -store-dir serves the identical submit from the persistent cache — hit
// visible on /metrics, no batch recomputed, table byte-identical.
func TestStoreServesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	const body = `{"experiment":"E8","quick":true,"seed":21}`

	// Generation 1 computes and writes through.
	ts1, metrics1, shutdown1 := storeServer(t, dir, jobs.Options{Workers: 2})
	var res jobs.SubmitResult
	resp := submit(t, ts1.URL, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("gen1 submit: %d", resp.StatusCode)
	}
	decode(t, resp, &res)
	if res.Cached {
		t.Fatalf("gen1 cold submit reported cached")
	}
	cold := pollJob(t, ts1.URL, res.ID)
	if cold.State != jobs.StateSucceeded || cold.Output == "" {
		t.Fatalf("gen1 job: state %s, error %q", cold.State, cold.Error)
	}
	if m := metrics1(); !strings.Contains(m, "locality_store_misses_total 1") {
		t.Errorf("gen1 metrics missing the cold miss:\n%s", grepStoreLines(m))
	}
	shutdown1()

	// Generation 2, same directory: the identical submit is already
	// terminal in the 202 response — it never re-entered the worker pool.
	ts2, metrics2, shutdown2 := storeServer(t, dir, jobs.Options{Workers: 2})
	defer shutdown2()
	resp = submit(t, ts2.URL, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("gen2 submit: %d", resp.StatusCode)
	}
	var warmRes jobs.SubmitResult
	decode(t, resp, &warmRes)
	if !warmRes.Cached {
		t.Fatalf("gen2 submit missed the store: %+v", warmRes)
	}
	warm, ok := jobGet(t, ts2.URL, warmRes.ID)
	if !ok || warm.State != jobs.StateSucceeded {
		t.Fatalf("gen2 cached job not immediately terminal: %+v", warm)
	}
	if warm.Output != cold.Output {
		t.Fatalf("cached table differs from computed table")
	}
	if warm.BatchesDone != cold.BatchesDone {
		t.Errorf("cached BatchesDone = %d, computed %d", warm.BatchesDone, cold.BatchesDone)
	}
	m := metrics2()
	if !strings.Contains(m, "locality_store_hits_total 1") {
		t.Errorf("store hit not visible on /metrics:\n%s", grepStoreLines(m))
	}
	// No worker ran: the pool recorded zero row batches this generation.
	if strings.Contains(m, "locality_jobs_batches_total") &&
		!strings.Contains(m, "locality_jobs_batches_total 0") {
		t.Errorf("gen2 recomputed batches for a cached submit:\n%s", grepStoreLines(m))
	}
}

// jobGet fetches one snapshot without polling — the cached path must be
// terminal on the very first read.
func jobGet(t *testing.T, base, id string) (jobs.Job, bool) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return jobs.Job{}, false
	}
	var j jobs.Job
	decode(t, resp, &j)
	return j, true
}

// grepStoreLines trims a /metrics dump to the store- and batch-relevant
// lines so failures stay readable.
func grepStoreLines(m string) string {
	var keep []string
	for _, line := range strings.Split(m, "\n") {
		if strings.Contains(line, "locality_store_") || strings.Contains(line, "locality_jobs_batches_total") {
			keep = append(keep, line)
		}
	}
	return strings.Join(keep, "\n")
}
