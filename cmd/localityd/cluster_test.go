package main

// Cluster e2e: the coordinator front-end over real worker handlers, and —
// the tentpole acceptance test — a multi-process run where one worker
// localityd is SIGKILLed mid-sweep and the merged table still comes out
// byte-identical to a single-process run with zero batches lost.
//
// The kill test re-execs this test binary as the worker daemon (TestMain's
// LOCALITYD_E2E_WORKER guard), so the processes under test run the real
// serve path, not a stub. When CLUSTER_RUNREPORT names a path, the
// coordinator's run report for the killed sweep is copied there — CI
// uploads it as the cluster job's artifact.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"locality/internal/cluster"
	"locality/internal/fault"
	"locality/internal/harness"
	"locality/internal/jobs"
	"locality/internal/obs"
	"locality/internal/obs/trace"
)

func TestMain(m *testing.M) {
	if os.Getenv("LOCALITYD_E2E_WORKER") == "1" {
		runE2EWorker()
		return
	}
	os.Exit(m.Run())
}

// runE2EWorker is the re-exec'd worker daemon: a real worker server on an
// ephemeral port, address announced on stdout, batches paced so a parent
// can land a SIGKILL mid-sweep. It never exits on its own — SIGKILL is the
// test's teardown.
func runE2EWorker() {
	pace := 20 * time.Millisecond
	if ms, err := strconv.Atoi(os.Getenv("LOCALITYD_E2E_PACE_MS")); err == nil && ms > 0 {
		pace = time.Duration(ms) * time.Millisecond
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("e2e worker: listen: %v", err)
	}
	fmt.Printf("LISTENING http://%s\n", ln.Addr())
	os.Stdout.Sync()
	reg := obs.NewRegistry()
	// LOCALITYD_E2E_TRACEDIR turns the worker into a trace-emitting shard:
	// the multi-process trace e2e points every process at one shared
	// artifact directory with distinct proc names.
	var tr *trace.Tracer
	if dir := os.Getenv("LOCALITYD_E2E_TRACEDIR"); dir != "" {
		proc := os.Getenv("LOCALITYD_E2E_TRACEPROC")
		if proc == "" {
			proc = fmt.Sprintf("worker-%d", os.Getpid())
		}
		var err error
		tr, err = trace.Open(trace.Options{Dir: dir, Proc: proc, Metrics: reg})
		if err != nil {
			log.Fatalf("e2e worker: trace: %v", err)
		}
	}
	pool := jobs.New(jobs.Options{
		Workers:       1,
		Metrics:       reg,
		Tracer:        tr,
		CheckpointDir: os.Getenv("LOCALITYD_E2E_CKDIR"),
		BatchHook:     func(string, *harness.Checkpoint) { time.Sleep(pace) },
	})
	s := newServer(pool, 64, 10*time.Second, reg, tr)
	srv := &http.Server{Handler: s.handler(), ReadHeaderTimeout: 5 * time.Second}
	log.Fatal(srv.Serve(ln))
}

// directRun renders the single-process ground truth (Workers=1).
func directRun(t *testing.T, experiment string, seed uint64) string {
	t.Helper()
	driver, ok := harness.ByID(experiment)
	if !ok {
		t.Fatalf("unknown experiment %s", experiment)
	}
	var buf bytes.Buffer
	driver(harness.Config{Quick: true, Seed: seed}).Render(&buf)
	return buf.String()
}

// testClusterFrontend stands up a coordinator front-end over the given
// worker URLs and serves its API from an httptest server. With tr
// non-nil the front-end traces: coordinator SpanEvents bridge through
// onSpan exactly as serveCluster wires them.
func testClusterFrontend(t *testing.T, reportDir string, tr *trace.Tracer, workerURLs ...string) (*clusterServer, *httptest.Server) {
	t.Helper()
	shards := make([]cluster.Shard, len(workerURLs))
	for i, u := range workerURLs {
		shards[i] = cluster.Shard{Name: fmt.Sprintf("shard%d", i), URL: u}
	}
	reg := obs.NewRegistry()
	var holder atomic.Pointer[clusterServer]
	coord, err := cluster.New(cluster.Options{
		Shards:         shards,
		RequestTimeout: 2 * time.Second,
		Retries:        2,
		Backoff:        harness.Backoff{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond, Seed: 1},
		PollInterval:   15 * time.Millisecond,
		ProbeInterval:  15 * time.Millisecond,
		ProbeThreshold: 2,
		Metrics:        reg,
		Logf:           t.Logf,
		OnSpan: func(e cluster.SpanEvent) {
			if cs := holder.Load(); cs != nil {
				cs.onSpan(e)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cs := newClusterServer(coord, 16, reg, tr, reportDir, 0, nil)
	holder.Store(cs)
	ts := httptest.NewServer(cs.handler(10*time.Second, 64))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = cs.drain(ctx)
	})
	return cs, ts
}

func pollClusterJob(t *testing.T, base, id string) clusterJob {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var cj clusterJob
		decode(t, resp, &cj)
		if cj.State.Terminal() {
			return cj
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("cluster job %s not terminal after 60s", id)
	return clusterJob{}
}

// metricValue extracts an unlabeled metric's value from Prometheus text.
func metricValue(t *testing.T, prom, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(prom, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parsing %s value %q: %v", name, rest, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in exposition:\n%s", name, prom)
	return 0
}

// TestClusterFrontendInProcess pins the full wire path — coordinator API →
// cluster client → real worker handlers → checkpoint harvest → merged
// render — with every shard healthy.
func TestClusterFrontendInProcess(t *testing.T) {
	var workers []string
	for i := 0; i < 3; i++ {
		_, ts := testServer(t, jobs.Options{Workers: 1})
		workers = append(workers, ts.URL)
	}
	_, front := testClusterFrontend(t, "", nil, workers...)

	resp := submit(t, front.URL, `{"experiment":"E4","quick":true,"seed":7}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	var acc struct {
		ID string `json:"id"`
	}
	decode(t, resp, &acc)

	cj := pollClusterJob(t, front.URL, acc.ID)
	if cj.State != jobs.StateSucceeded {
		t.Fatalf("cluster job %s: %s (%s)", acc.ID, cj.State, cj.Error)
	}
	if want := directRun(t, "E4", 7); cj.Output != want {
		t.Errorf("cluster output differs from single-process run:\n--- want ---\n%s--- got ---\n%s", want, cj.Output)
	}
	if cj.Result == nil || cj.Result.Lost != 0 {
		t.Errorf("result %+v, want Lost==0", cj.Result)
	}

	// Rows are coordinator-owned on the front-end.
	resp = submit(t, front.URL, `{"experiment":"E4","quick":true,"seed":7,"rows":{"mod":2,"keep":0}}`)
	var er errorResponse
	decode(t, resp, &er)
	if resp.StatusCode != http.StatusBadRequest || er.Reason != "invalid_rows" {
		t.Errorf("rows submission: %d %q, want 400 invalid_rows", resp.StatusCode, er.Reason)
	}
}

// TestClusterKillShardE2E is the acceptance run: three real worker
// localityd processes, one SIGKILLed mid-sweep (victim chosen by a seeded
// fault.ProcPlan), and the coordinator still produces the byte-identical
// table with zero batches lost — with the failover visible on /metrics.
func TestClusterKillShardE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}

	const shards = 3
	plan := fault.ProcPlan{Seed: 7, Victims: 1}
	victims := plan.VictimIndices(shards)
	if len(victims) != 1 {
		t.Fatalf("plan selected %v", victims)
	}
	victim := victims[0]
	t.Logf("fault plan: %s -> shard%d", plan, victim)

	procs := make([]*exec.Cmd, shards)
	urls := make([]string, shards)
	for i := 0; i < shards; i++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			"LOCALITYD_E2E_WORKER=1",
			"LOCALITYD_E2E_PACE_MS=40",
			"LOCALITYD_E2E_CKDIR="+t.TempDir(),
		)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = io.Discard
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		procs[i] = cmd
		t.Cleanup(func() {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		})
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if u, ok := strings.CutPrefix(sc.Text(), "LISTENING "); ok {
				urls[i] = u
				break
			}
		}
		if urls[i] == "" {
			t.Fatalf("worker %d never announced its address", i)
		}
		go io.Copy(io.Discard, stdout) // keep the pipe drained
	}
	waitReady := func(u string) {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get(u + "/readyz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("worker %s never became ready", u)
	}
	for _, u := range urls {
		waitReady(u)
	}

	reportDir := t.TempDir()
	_, front := testClusterFrontend(t, reportDir, nil, urls...)

	resp := submit(t, front.URL, `{"experiment":"E4","quick":true,"seed":7}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	var acc struct {
		ID string `json:"id"`
	}
	decode(t, resp, &acc)

	// SIGKILL the victim once it has committed KillAfter batches — the
	// death lands mid-sweep, with real uncommitted work left to fail over.
	killed := make(chan error, 1)
	go func() {
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get(urls[victim] + "/v1/jobs")
			if err != nil {
				killed <- fmt.Errorf("victim unreachable before kill: %v", err)
				return
			}
			var list struct {
				Jobs []jobs.Job `json:"jobs"`
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			_ = json.Unmarshal(body, &list)
			for _, j := range list.Jobs {
				if j.BatchesDone >= plan.KillAfter() {
					killed <- procs[victim].Process.Signal(syscall.SIGKILL)
					return
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
		killed <- fmt.Errorf("victim never committed %d batches", plan.KillAfter())
	}()
	if err := <-killed; err != nil {
		t.Fatal(err)
	}
	_, _ = procs[victim].Process.Wait()
	t.Logf("killed shard%d mid-sweep", victim)

	cj := pollClusterJob(t, front.URL, acc.ID)
	if cj.State != jobs.StateSucceeded {
		t.Fatalf("cluster job after kill: %s (%s)", cj.State, cj.Error)
	}
	if want := directRun(t, "E4", 7); cj.Output != want {
		t.Errorf("post-kill output differs from single-process run:\n--- want ---\n%s--- got ---\n%s", want, cj.Output)
	}
	if cj.Result == nil {
		t.Fatal("no result on succeeded cluster job")
	}
	if cj.Result.Lost != 0 {
		t.Errorf("lost %d batches", cj.Result.Lost)
	}

	// The coordinator's /metrics must show the failover: the shard marked
	// unhealthy, rows retried or recomputed, and zero rows lost.
	resp, err = http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	promBytes, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	prom := string(promBytes)
	if v := metricValue(t, prom, "locality_cluster_rows_lost"); v != 0 {
		t.Errorf("rows_lost metric = %v", v)
	}
	if v := metricValue(t, prom, "locality_cluster_failovers_total"); v < 1 {
		t.Errorf("failovers_total = %v, want >= 1", v)
	}
	victimGauge := fmt.Sprintf(`locality_cluster_shard_healthy{shard="shard%d"} 0`, victim)
	if !strings.Contains(prom, victimGauge) {
		t.Errorf("metrics missing %q:\n%s", victimGauge, prom)
	}
	retried := metricValue(t, prom, "locality_cluster_batches_retried_total")
	recomputed := metricValue(t, prom, "locality_cluster_batches_recomputed_total")
	if retried+recomputed < 1 {
		t.Errorf("retried %v + recomputed %v batches; the victim's work went somewhere", retried, recomputed)
	}

	// The run report is the CI artifact: export it when CI asks.
	report, err := os.ReadFile(filepath.Join(reportDir, acc.ID+".report.jsonl"))
	if err != nil {
		t.Fatalf("run report: %v", err)
	}
	if !bytes.Contains(report, []byte(`"failover"`)) || !bytes.Contains(report, []byte(`"summary"`)) {
		t.Errorf("run report lacks failover/summary lines:\n%s", report)
	}
	if dst := os.Getenv("CLUSTER_RUNREPORT"); dst != "" {
		if err := os.WriteFile(dst, report, 0o644); err != nil {
			t.Fatalf("exporting run report artifact: %v", err)
		}
	}
}
