// Command localityd serves the experiment suite as a long-running job
// service: submissions land in a supervised bounded-queue worker pool
// (internal/jobs), progress is checkpointed batch by batch, and SIGTERM
// drains gracefully — readiness flips to 503, in-flight jobs run to the
// drain deadline, the rest are cancelled with their progress persisted for
// a resumed run to pick up byte-identically.
//
//	POST   /v1/jobs                 submit a job; 202 with the job ID, 429/503 when shed
//	GET    /v1/jobs                 list all jobs
//	GET    /v1/jobs/{id}            job snapshot (state, progress, result table)
//	GET    /v1/jobs/{id}/events     Server-Sent Events progress stream (see sse.go)
//	GET    /v1/jobs/{id}/checkpoint job state + latest checkpoint snapshot
//	DELETE /v1/jobs/{id}            request cancellation
//	GET    /healthz                 liveness (200 while the process serves)
//	GET    /readyz                  readiness (503 once draining)
//	GET    /metrics                 Prometheus text exposition (pool + HTTP + tenant metrics)
//
// Callers identify as tenants via the X-API-Key header (anonymous when
// absent). With -tenants-file, each tenant is admitted under its own quotas
// — submit rate, queued and in-flight caps, stream cap — and dispatched by
// weighted round-robin fair share, so one flooding tenant cannot starve the
// rest. With -idempotent (the default), duplicate submissions of the same
// determinism identity return the existing job instead of recomputing.
//
// Every retryable rejection (429 rate/quota/queue, 503 draining or
// overloaded) carries a Retry-After header derived from what the server
// knows — token-bucket refill deficit, queue drain estimate — and a
// structured JSON body, so clients (the cluster coordinator included) can
// back off with intent instead of guessing. See retry.go.
//
// With -coordinator the same binary becomes a cluster front-end instead:
// submissions are sharded across a static membership of worker localityd
// instances (-shards / -membership-file), merged in row order, and served
// back byte-identical to a single-process run. See cluster.go.
//
// Profiling is opt-in: -pprof-addr spawns net/http/pprof on a separate
// listener, never on the API port.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"locality/internal/cluster"
	"locality/internal/harness"
	"locality/internal/jobs"
	"locality/internal/obs"
	"locality/internal/obs/trace"
	"locality/internal/store"
	"locality/internal/tenant"
)

// submitRequest is the POST /v1/jobs body.
type submitRequest struct {
	Experiment string `json:"experiment"`
	Quick      bool   `json:"quick,omitempty"`
	Seed       uint64 `json:"seed"`
	// TimeoutMS bounds the job's running time in milliseconds (0 = none).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Workers computes the sweep's rows in parallel (same bytes, less wall
	// clock; see jobs.Spec.Workers).
	Workers int `json:"workers,omitempty"`
	// Rows, when non-nil, runs the job as one shard of a cluster sweep
	// (see jobs.Spec.Rows). Coordinators set it; humans rarely should.
	Rows *jobs.RowSpec `json:"rows,omitempty"`
}

// errorResponse is every non-2xx JSON body.
type errorResponse struct {
	Error string `json:"error"`
	// Reason is the stable classification ("queue_full", "rate_limited",
	// "draining", "unknown_experiment", ...), when one applies.
	Reason string `json:"reason,omitempty"`
	// Tenant is the rejected tenant's public ID on per-tenant sheds (never
	// the raw API key).
	Tenant string `json:"tenant,omitempty"`
	// QueueLen/QueueCap report shed-time queue occupancy.
	QueueLen int `json:"queue_len,omitempty"`
	QueueCap int `json:"queue_cap,omitempty"`
}

// server wires the job pool to HTTP. It is constructed by newServer and
// torn down by drain, both exercised directly by the tests.
type server struct {
	pool *jobs.Pool
	// draining flips readiness before the pool drain begins, so /readyz
	// reports 503 for the whole shutdown window.
	draining atomic.Bool
	// lim enforces the request concurrency cap and per-request timeout.
	lim *limiter
	// reg backs /metrics; the pool shares it. Nil disables instrumentation
	// (every obs call below is nil-safe).
	reg *obs.Registry
	// tr emits request spans (and parents the pool's job spans). Nil
	// disables tracing; every trace call below is nil-safe.
	tr *trace.Tracer
}

func newServer(pool *jobs.Pool, maxInflight int, requestTimeout time.Duration, reg *obs.Registry, tr *trace.Tracer) *server {
	return &server{
		pool: pool,
		lim:  newLimiter(maxInflight, requestTimeout, reg),
		reg:  reg,
		tr:   tr,
	}
}

// handler builds the routed, instrumented, limited, deadline-bounded HTTP
// handler.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.instrument("submit", s.handleSubmit))
	mux.HandleFunc("GET /v1/jobs", s.instrument("list", s.handleList))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("get", s.handleGet))
	mux.HandleFunc("GET /v1/jobs/{id}/checkpoint", s.instrument("checkpoint", s.handleCheckpoint))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.instrument("cancel", s.handleCancel))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}))
	mux.HandleFunc("GET /readyz", s.instrument("readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() || s.pool.Draining() {
			writeRetryable(w, http.StatusServiceUnavailable, jobs.ErrDraining,
				errorResponse{Error: "draining", Reason: "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}))
	mux.HandleFunc("GET /metrics", s.handleMetrics)

	// The events stream mounts outside the limiter (see sse.go): the outer
	// mux's more-specific pattern wins over the catch-all that fronts every
	// other route with the concurrency cap and per-request deadline.
	outer := http.NewServeMux()
	outer.HandleFunc("GET /v1/jobs/{id}/events", s.instrument("events", s.handleEvents))
	outer.Handle("/", s.lim.wrap(mux))
	return outer
}

// statusWriter captures the response status for the request counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.ResponseController reach the underlying writer's
// optional interfaces (the SSE handler needs Flush) through this wrapper.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps one route with a latency histogram and a per-status
// request counter. Routes are named explicitly (not from the request path)
// so the label space stays bounded.
func (s *server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return instrumented(s.reg, s.tr, route, h)
}

// instrumented is the route instrumentation shared by the worker and
// coordinator handlers: a latency histogram, a per-status counter, and —
// with a tracer attached — one span per request, continuing the caller's
// trace when the Locality-Trace header carries one and exposing the
// request's trace ID as the histogram's exemplar.
func instrumented(reg *obs.Registry, tr *trace.Tracer, route string, h http.HandlerFunc) http.HandlerFunc {
	hist := reg.Histogram("locality_http_request_seconds",
		"HTTP request latency by route.", obs.DefTimeBuckets, "route", route)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		parent, _ := trace.Parse(r.Header.Get(trace.Header))
		sp := tr.Start(parent, "http."+route, "method", r.Method)
		if sp != nil {
			r = r.WithContext(trace.ContextWithSpan(r.Context(), sp))
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		sp.SetAttr("status", strconv.Itoa(sw.status))
		sp.End()
		secs := time.Since(start).Seconds()
		if id := sp.TraceID(); id != "" {
			hist.ObserveExemplar(secs, id)
		} else {
			hist.Observe(secs)
		}
		reg.Counter("locality_http_requests_total",
			"HTTP requests by route and status code.",
			"route", route, "code", strconv.Itoa(sw.status)).Inc()
	}
}

// handleMetrics serves the Prometheus text exposition. It is deliberately
// outside instrument: scrapes should not perturb the latency histograms
// they read.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WriteProm(w)
}

// limiter is the backpressure middleware shared by both serving modes: at
// most cap(inflight) concurrent requests, each bounded by the per-request
// timeout. Excess requests are rejected immediately with 503 + Retry-After
// — the service sheds, it never queues invisibly.
type limiter struct {
	inflight chan struct{}
	timeout  time.Duration
	rejected *obs.Counter
}

// errOverloaded is the limiter's rejection reason. It matches no queue or
// tenant sentinel, so its Retry-After falls to the 1s floor: concurrency
// slots turn over per request, much faster than the job queue drains.
var errOverloaded = errors.New("too many concurrent requests")

func newLimiter(maxInflight int, requestTimeout time.Duration, reg *obs.Registry) *limiter {
	if maxInflight <= 0 {
		maxInflight = 64
	}
	return &limiter{
		inflight: make(chan struct{}, maxInflight),
		timeout:  requestTimeout,
		rejected: reg.Counter("locality_http_rejected_total", "Requests shed by the concurrency limiter."),
	}
}

func (l *limiter) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case l.inflight <- struct{}{}:
			defer func() { <-l.inflight }()
		default:
			l.rejected.Inc()
			writeRetryable(w, http.StatusServiceUnavailable, errOverloaded,
				errorResponse{Error: errOverloaded.Error(), Reason: "overloaded"})
			return
		}
		if l.timeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), l.timeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		next.ServeHTTP(w, r)
	})
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("decoding request: %v", err), Reason: "bad_request"})
		return
	}
	spec := jobs.Spec{
		Experiment: req.Experiment,
		Quick:      req.Quick,
		Seed:       req.Seed,
		Timeout:    time.Duration(req.TimeoutMS) * time.Millisecond,
		Workers:    req.Workers,
		Rows:       req.Rows,
	}
	// A request with no inbound trace adopts the spec's identity-derived
	// trace ID, so resubmitting the same spec lands in the same trace on
	// every process that touches it (DESIGN.md §14).
	sp := trace.SpanFromContext(r.Context())
	sp.JoinTrace(trace.IDFromIdentity(spec.IdentityKey()))
	res, err := s.pool.SubmitTenantSpan(sp.Context(), r.Header.Get(tenant.Header), spec)
	if err != nil {
		status := shedStatus(err)
		if retryableStatus(status) {
			writeRetryable(w, status, err, shedResponse(err))
			return
		}
		writeJSON(w, status, shedResponse(err))
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+res.ID)
	writeJSON(w, http.StatusAccepted, res)
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.pool.List()})
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.pool.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{
			Error: "unknown job", Reason: "not_found"})
		return
	}
	s.joinJobTrace(r, j)
	writeJSON(w, http.StatusOK, j)
}

// joinJobTrace lands a poll's request span in the polled job's trace: a
// traceless request (a bare curl, a coordinator without the header)
// adopts the job's identity-derived trace ID, so every touch of a job —
// from any process — assembles into one tree.
func (s *server) joinJobTrace(r *http.Request, j jobs.Job) {
	trace.SpanFromContext(r.Context()).JoinTrace(trace.IDFromIdentity(j.Spec.IdentityKey()))
}

// handleCheckpoint serves the job's state together with its latest
// checkpoint snapshot in one response. The cluster coordinator polls this
// endpoint: a single fetch both tracks progress and harvests partial work,
// so a shard that dies a moment later has already surrendered everything it
// committed.
func (s *server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.pool.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{
			Error: "unknown job", Reason: "not_found"})
		return
	}
	s.joinJobTrace(r, j)
	ck, _ := s.pool.Checkpoint(id)
	writeJSON(w, http.StatusOK, map[string]any{"state": j.State, "checkpoint": ck})
}

func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if err := s.pool.Cancel(r.PathValue("id")); err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{
			Error: err.Error(), Reason: "not_found"})
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "cancelling"})
}

// drain is the graceful-shutdown sequence: readiness flips first (load
// balancers stop routing while the listener still answers probes), then the
// pool drains to the deadline — cancelling and checkpointing whatever
// remains. The returned error reports a forced (deadline-hit) drain.
func (s *server) drain(ctx context.Context) error {
	s.draining.Store(true)
	return s.pool.Close(ctx)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func main() {
	var (
		addr           = flag.String("addr", ":8177", "listen address")
		coordinator    = flag.Bool("coordinator", false, "run as a cluster front-end sharding sweeps across worker instances")
		shardsFlag     = flag.String("shards", "", "comma-separated worker membership: name=url or url (coordinator mode)")
		membershipFile = flag.String("membership-file", "", "file with one worker per line: name=url or url, # comments (coordinator mode)")
		shardTimeout   = flag.Duration("shard-timeout", 5*time.Second, "per-attempt HTTP timeout against a worker shard")
		shardRetries   = flag.Int("shard-retries", 3, "attempt budget per shard API call")
		pollInterval   = flag.Duration("poll-interval", 100*time.Millisecond, "coordinator dispatch/merge cadence")
		probeInterval  = flag.Duration("probe-interval", 500*time.Millisecond, "shard health probe cadence")
		probeThreshold = flag.Int("probe-threshold", 3, "consecutive probe failures that mark a shard unhealthy")
		shardWorkers   = flag.Int("shard-workers", 0, "parallel row workers per shard job (0 = sequential)")
		workers        = flag.Int("workers", 2, "concurrent experiment runners")
		queueDepth     = flag.Int("queue", 16, "submission queue bound (excess is shed)")
		checkpointDir  = flag.String("checkpoint-dir", "", "directory for job checkpoints (empty = in-memory only)")
		storeDir       = flag.String("store-dir", "", "directory for the persistent content-addressed result cache (empty = disabled)")
		storeMaxBytes  = flag.Int64("store-max-bytes", store.DefaultMaxBytes, "result-cache byte budget; oldest segments are evicted past it")
		retention      = flag.Int("retention", 4096, "terminal jobs kept pollable; the oldest (and their dedup entries) are evicted past it (0 = unlimited)")
		retryBudget    = flag.Int("retry", 1, "attempts per job for transient failures")
		retryBase      = flag.Duration("retry-base", 100*time.Millisecond, "base backoff between retry attempts")
		retryMax       = flag.Duration("retry-max", 5*time.Second, "backoff cap")
		backoffSeed    = flag.Uint64("backoff-seed", 1, "seed for the deterministic backoff jitter")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight jobs on shutdown")
		requestTimeout = flag.Duration("request-timeout", 10*time.Second, "per-request handler deadline")
		maxInflight    = flag.Int("max-inflight", 64, "concurrent request limit (excess rejected 503)")
		pprofAddr      = flag.String("pprof-addr", "", "opt-in net/http/pprof listen address (empty = disabled)")
		reportDir      = flag.String("report-dir", "", "directory for per-job JSONL run reports (empty = disabled)")
		reportMaxFiles = flag.Int("report-max-files", 0, "report files kept in -report-dir; the oldest are removed past it (0 = unlimited)")
		traceDir       = flag.String("trace-dir", "", "directory for JSONL span trace artifacts (empty = tracing disabled)")
		traceProc      = flag.String("trace-proc", "", "process name stamped on this instance's spans (default localityd-<pid>)")
		tenantsFile    = flag.String("tenants-file", "", "JSON tenant config: default quotas, pinned tenants keyed by API key (empty = permissive)")
		idempotent     = flag.Bool("idempotent", true, "dedup submissions by determinism identity (duplicates return the existing job)")
		version        = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Printf("localityd %s %s %s/%s\n", obs.Version(), runtime.Version(), runtime.GOOS, runtime.GOARCH)
		return
	}
	if *coordinator {
		shards, err := membership(*shardsFlag, *membershipFile)
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			log.Fatalf("localityd: listen: %v", err)
		}
		cfg := clusterConfig{
			opts: cluster.Options{
				Shards:         shards,
				RequestTimeout: *shardTimeout,
				Retries:        *shardRetries,
				Backoff:        harness.Backoff{Base: *retryBase, Max: *retryMax, Seed: *backoffSeed},
				PollInterval:   *pollInterval,
				ProbeInterval:  *probeInterval,
				ProbeThreshold: *probeThreshold,
				ShardWorkers:   *shardWorkers,
			},
			queueDepth:     *queueDepth,
			reportDir:      *reportDir,
			reportMaxFiles: *reportMaxFiles,
			store:          storeConfig{dir: *storeDir, maxBytes: *storeMaxBytes},
			trace:          traceConfig{dir: *traceDir, proc: *traceProc},
		}
		if err := serveCluster(ln, cfg, *drainTimeout, *requestTimeout, *maxInflight, *pprofAddr); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *shardsFlag != "" || *membershipFile != "" {
		log.Fatal("localityd: -shards/-membership-file require -coordinator")
	}
	tcfg, err := loadTenants(*tenantsFile)
	if err != nil {
		log.Fatal(err)
	}
	if err := run(*addr, jobs.Options{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		CheckpointDir:  *checkpointDir,
		RetryBudget:    *retryBudget,
		Backoff:        harness.Backoff{Base: *retryBase, Max: *retryMax, Seed: *backoffSeed},
		ReportDir:      *reportDir,
		ReportMaxFiles: *reportMaxFiles,
		Tenancy:        tcfg,
		Idempotent:     *idempotent,
		Retention:      *retention,
	}, storeConfig{dir: *storeDir, maxBytes: *storeMaxBytes},
		traceConfig{dir: *traceDir, proc: *traceProc},
		*drainTimeout, *requestTimeout, *maxInflight, *pprofAddr); err != nil {
		log.Fatal(err)
	}
}

// storeConfig carries the -store-dir flag set; the zero value disables the
// persistent result cache.
type storeConfig struct {
	dir      string
	maxBytes int64
}

// open builds the result store, registering its metrics on reg. A nil
// store (empty dir) is legal everywhere downstream.
func (c storeConfig) open(reg *obs.Registry) (*store.Store, error) {
	if c.dir == "" {
		return nil, nil
	}
	return store.Open(store.Options{Dir: c.dir, MaxBytes: c.maxBytes, Metrics: reg})
}

// traceConfig carries the -trace-dir/-trace-proc flag set; the zero value
// disables tracing.
type traceConfig struct {
	dir  string
	proc string
}

// open builds the span tracer, registering its span counter on reg. A nil
// tracer (empty dir) is legal everywhere downstream.
func (c traceConfig) open(reg *obs.Registry) (*trace.Tracer, error) {
	if c.dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return nil, fmt.Errorf("localityd: trace dir: %w", err)
	}
	proc := c.proc
	if proc == "" {
		proc = fmt.Sprintf("localityd-%d", os.Getpid())
	}
	return trace.Open(trace.Options{Dir: c.dir, Proc: proc, Metrics: reg})
}

// loadTenants reads the -tenants-file JSON (a tenant.Config: default
// limits, optional max_tenants, pinned tenants with per-tenant quotas).
// Empty path means permissive defaults — every caller admitted subject only
// to the global queue bound.
func loadTenants(path string) (*tenant.Config, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("localityd: tenants file: %w", err)
	}
	var cfg tenant.Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("localityd: tenants file %s: %w", path, err)
	}
	return &cfg, nil
}

// run resolves the listen address; serve owns the lifecycle.
func run(addr string, poolOpts jobs.Options, sc storeConfig, tc traceConfig, drainTimeout, requestTimeout time.Duration, maxInflight int, pprofAddr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("localityd: listen: %w", err)
	}
	return serve(ln, poolOpts, sc, tc, drainTimeout, requestTimeout, maxInflight, pprofAddr)
}

// pprofHandler routes the net/http/pprof endpoints. It backs the opt-in
// -pprof-addr listener only — profiling never shares the API port, so a
// scrape-armed deployment exposes nothing extra by default.
func pprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serve runs the worker service on an existing listener until
// SIGTERM/SIGINT, then drains: readiness flips, the pool runs down to the
// drain deadline (checkpointing whatever it must cancel), and every
// goroutine is reaped before serve returns.
func serve(ln net.Listener, poolOpts jobs.Options, sc storeConfig, tc traceConfig, drainTimeout, requestTimeout time.Duration, maxInflight int, pprofAddr string) error {
	reg := obs.NewRegistry()
	obs.RegisterBuildInfo(reg)
	poolOpts.Metrics = reg
	st, err := sc.open(reg)
	if err != nil {
		return err
	}
	if st != nil {
		defer st.Close()
		poolOpts.Store = st
	}
	tr, err := tc.open(reg)
	if err != nil {
		return err
	}
	if tr != nil {
		defer tr.Close()
		poolOpts.Tracer = tr
	}
	pool := jobs.New(poolOpts)
	s := newServer(pool, maxInflight, requestTimeout, reg, tr)
	return serveUntilSignal(ln, s.handler(), pprofAddr, "localityd", drainTimeout, s.drain)
}

// serveUntilSignal is the serving lifecycle shared by the worker and
// coordinator modes: serve the handler until SIGTERM/SIGINT (or a listener
// error), then run the mode's drain under the deadline and shut the
// listener down.
func serveUntilSignal(ln net.Listener, h http.Handler, pprofAddr, name string, drainTimeout time.Duration, drain func(context.Context) error) error {
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
	}
	if pprofAddr != "" {
		pln, err := net.Listen("tcp", pprofAddr)
		if err != nil {
			return fmt.Errorf("%s: pprof listen: %w", name, err)
		}
		psrv := &http.Server{Handler: pprofHandler(), ReadHeaderTimeout: 5 * time.Second}
		defer psrv.Close()
		go func() {
			log.Printf("%s pprof listening on %s", name, pln.Addr())
			if err := psrv.Serve(pln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("%s: pprof serve: %v", name, err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("%s listening on %s", name, ln.Addr())
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return fmt.Errorf("%s: serve: %w", name, err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("%s: draining (deadline %v)", name, drainTimeout)

	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := drain(drainCtx); err != nil {
		log.Printf("%s: %v (remaining progress checkpointed)", name, err)
	}
	// A deadline-hit drain consumes the whole budget force-cancelling jobs —
	// which is what releases long-lived handlers (the SSE streams) to finish
	// their final writes. Connection teardown then needs its own brief grace,
	// or an exhausted drain context turns every forced drain into a spurious
	// shutdown error.
	shutCtx := drainCtx
	if drainCtx.Err() != nil {
		var shutCancel context.CancelFunc
		shutCtx, shutCancel = context.WithTimeout(context.Background(), 2*time.Second)
		defer shutCancel()
	}
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("%s: shutdown: %w", name, err)
	}
	log.Printf("%s: drained", name)
	return nil
}
