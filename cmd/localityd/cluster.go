// Coordinator mode: -coordinator turns this binary into a cluster
// front-end. It serves the same /v1/jobs API shape as a worker, but each
// submission becomes a sharded sweep across the static worker membership
// (internal/cluster): row batches are fanned out by residue class, partial
// checkpoints are harvested every poll, dead shards fail over to survivors,
// and the final table is rendered by one deterministic local replay of the
// merged checkpoint — byte-identical to a single-process run, whatever
// subset of the cluster survived.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"locality/internal/cluster"
	"locality/internal/jobs"
	"locality/internal/obs"
	"locality/internal/obs/trace"
	"locality/internal/store"
	"locality/internal/tenant"
)

// clusterJob is one cluster sweep's lifecycle record. Snapshots returned
// from the API are value copies taken under the server mutex.
type clusterJob struct {
	ID    string     `json:"id"`
	Spec  jobs.Spec  `json:"spec"`
	State jobs.State `json:"state"`
	// Error and ErrorKind mirror the worker job schema. ErrorKind is
	// "cluster" for coordinator-detected failures.
	Error     string `json:"error,omitempty"`
	ErrorKind string `json:"error_kind,omitempty"`
	// Output is the merged rendered table; set only on success.
	Output string `json:"output,omitempty"`
	// Cached reports that Output came from the persistent result store:
	// no shard was dispatched for this sweep.
	Cached bool `json:"cached,omitempty"`
	// Result carries the failover audit trail and batch accounting.
	Result *cluster.Result `json:"result,omitempty"`

	// tenantKey is the submitting caller's raw API key, forwarded to the
	// worker shards (cluster.WithTenant) so per-tenant quotas and metrics
	// follow the job across the cluster. Unexported: the raw key must never
	// appear in API snapshots or reports.
	tenantKey string
	// span is the submit-time trace position (the HTTP route span, joined
	// to the spec's identity-derived trace); the sweep span parents to it.
	span trace.SpanContext
}

// clusterServer fronts one Coordinator. A Coordinator runs one sweep at a
// time, so cluster jobs flow through a bounded queue into a single runner
// goroutine — the same shed-don't-buffer discipline as the worker pool:
// a full queue is a 429 with Retry-After, never invisible latency.
type clusterServer struct {
	coord *cluster.Coordinator
	reg   *obs.Registry
	// tr emits the front-end's spans; the coordinator itself carries no
	// tracer (obsinert) and reports timing through its OnSpan hook, which
	// serveCluster bridges to onSpan below.
	tr             *trace.Tracer
	reportDir      string
	reportMaxFiles int
	// results, when non-nil, is the persistent result cache: consulted
	// before a sweep is dispatched to the shards (the whole fan-out is
	// skipped on a hit), written through when a sweep's merged table
	// lands. Coordinator specs never carry Rows — sharding is the
	// coordinator's own business — so the cached identity is exactly the
	// single-process identity and hits are byte-identical by the same
	// argument as the worker path.
	results *store.Store

	mu       sync.Mutex
	jobs     map[string]*clusterJob
	order    []string // submission order; List is deterministic
	seq      int
	draining bool
	current  context.CancelFunc // cancels the in-flight sweep, nil if idle
	sweep    *trace.Span        // the in-flight sweep's span; coordinator SpanEvents parent to it

	queue      chan *clusterJob
	runnerDone chan struct{}
}

func newClusterServer(coord *cluster.Coordinator, queueDepth int, reg *obs.Registry, tr *trace.Tracer, reportDir string, reportMaxFiles int, results *store.Store) *clusterServer {
	if queueDepth <= 0 {
		queueDepth = 16
	}
	s := &clusterServer{
		coord:          coord,
		reg:            reg,
		tr:             tr,
		reportDir:      reportDir,
		reportMaxFiles: reportMaxFiles,
		results:        results,
		jobs:           make(map[string]*clusterJob),
		queue:          make(chan *clusterJob, queueDepth),
		runnerDone:     make(chan struct{}),
	}
	go s.runner()
	return s
}

// onSpan turns a coordinator SpanEvent into a real span under the
// in-flight sweep's span. It is the target of cluster.Options.OnSpan
// (wired through an atomic holder in serveCluster, and directly by
// tests); with no sweep in flight the event becomes its own
// single-span trace rather than being dropped.
func (s *clusterServer) onSpan(e cluster.SpanEvent) {
	s.mu.Lock()
	parent := s.sweep.Context()
	s.mu.Unlock()
	attrs := e.Attrs
	if e.Shard != "" {
		attrs = append([]string{"shard", e.Shard}, attrs...)
	}
	s.tr.Emit(parent, e.Name, e.StartUnixNanos, e.EndUnixNanos, attrs...)
}

// handler builds the coordinator API. Same routes and status discipline as
// the worker handler, so callers cannot tell (and need not care) whether
// they reached a worker or a front-end — except that the coordinator owns
// sharding, so client-supplied Rows are rejected.
func (s *clusterServer) handler(requestTimeout time.Duration, maxInflight int) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", instrumented(s.reg, s.tr, "submit", s.handleSubmit))
	mux.HandleFunc("GET /v1/jobs", instrumented(s.reg, s.tr, "list", s.handleList))
	mux.HandleFunc("GET /v1/jobs/{id}", instrumented(s.reg, s.tr, "get", s.handleGet))
	mux.HandleFunc("DELETE /v1/jobs/{id}", instrumented(s.reg, s.tr, "cancel", s.handleCancel))
	mux.HandleFunc("GET /healthz", instrumented(s.reg, s.tr, "healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}))
	mux.HandleFunc("GET /readyz", instrumented(s.reg, s.tr, "readyz", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			writeRetryable(w, http.StatusServiceUnavailable, jobs.ErrDraining,
				errorResponse{Error: "draining", Reason: "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}))
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.reg.WriteProm(w)
	})
	return newLimiter(maxInflight, requestTimeout, s.reg).wrap(mux)
}

func (s *clusterServer) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("decoding request: %v", err), Reason: "bad_request"})
		return
	}
	if req.Rows != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: "rows are coordinator-owned in cluster mode", Reason: "invalid_rows"})
		return
	}
	spec := jobs.Spec{
		Experiment: req.Experiment,
		Quick:      req.Quick,
		Seed:       req.Seed,
		Timeout:    time.Duration(req.TimeoutMS) * time.Millisecond,
		Workers:    req.Workers,
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeRetryable(w, http.StatusServiceUnavailable, jobs.ErrDraining,
			errorResponse{Error: "coordinator draining", Reason: "draining"})
		return
	}
	sp := trace.SpanFromContext(r.Context())
	sp.JoinTrace(trace.IDFromIdentity(spec.IdentityKey()))
	cj := &clusterJob{
		ID:        fmt.Sprintf("cjob-%d", s.seq),
		Spec:      spec,
		State:     jobs.StateQueued,
		tenantKey: r.Header.Get(tenant.Header),
		span:      sp.Context(),
	}
	select {
	case s.queue <- cj:
		s.seq++
		s.jobs[cj.ID] = cj
		s.order = append(s.order, cj.ID)
		s.mu.Unlock()
	default:
		qlen, qcap := len(s.queue), cap(s.queue)
		s.mu.Unlock()
		// The coordinator runs sweeps one at a time: Workers 1 makes the
		// occupancy-derived Retry-After read "qlen sweeps ahead of you".
		shedErr := &jobs.ShedError{Reason: jobs.ErrQueueFull, QueueLen: qlen, QueueCap: qcap, Workers: 1}
		writeRetryable(w, http.StatusTooManyRequests, shedErr,
			errorResponse{Error: "cluster queue full", Reason: "queue_full", QueueLen: qlen, QueueCap: qcap})
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+cj.ID)
	writeJSON(w, http.StatusAccepted, map[string]string{"id": cj.ID})
}

func (s *clusterServer) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	list := make([]clusterJob, 0, len(s.order))
	for _, id := range s.order {
		list = append(list, *s.jobs[id])
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": list})
}

func (s *clusterServer) handleGet(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	cj, ok := s.jobs[r.PathValue("id")]
	var snap clusterJob
	if ok {
		snap = *cj
	}
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{
			Error: "unknown job", Reason: "not_found"})
		return
	}
	trace.SpanFromContext(r.Context()).JoinTrace(trace.IDFromIdentity(snap.Spec.IdentityKey()))
	writeJSON(w, http.StatusOK, snap)
}

func (s *clusterServer) handleCancel(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	cj, ok := s.jobs[r.PathValue("id")]
	if ok {
		switch cj.State {
		case jobs.StateQueued:
			// The runner skips cancelled entries when they surface.
			cj.State = jobs.StateCancelled
			cj.ErrorKind = "cancelled"
		case jobs.StateRunning:
			if s.current != nil {
				s.current()
			}
		}
	}
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{
			Error: "unknown job", Reason: "not_found"})
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "cancelling"})
}

// runner executes cluster jobs one at a time (a Coordinator is not safe
// for concurrent Runs). It exits when the queue closes at drain.
func (s *clusterServer) runner() {
	defer close(s.runnerDone)
	for cj := range s.queue {
		s.runOne(cj)
	}
}

func (s *clusterServer) runOne(cj *clusterJob) {
	// The sweep span parents everything this job does cluster-wide: the
	// coordinator's SpanEvents (via onSpan) and — through the trace
	// header riding the dispatch context — every shard-side route and
	// job span, so one multi-process tree assembles per sweep.
	sp := s.tr.Start(cj.span, "cluster.sweep", "experiment", cj.Spec.Experiment, "job", cj.ID)
	defer sp.End()
	// The submitter's API key rides the context into every shard call, so
	// workers account the sweep's row batches to the right tenant.
	base := cluster.WithTenant(context.Background(), cj.tenantKey)
	base = cluster.WithTraceHeader(base, sp.Context().String())
	ctx, cancel := context.WithCancel(base)
	defer cancel()
	s.mu.Lock()
	if cj.State != jobs.StateQueued { // cancelled while queued, or draining
		s.mu.Unlock()
		sp.SetAttr("outcome", "skipped")
		return
	}
	cj.State = jobs.StateRunning
	s.current = cancel
	s.sweep = sp
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.sweep = nil
		s.mu.Unlock()
	}()
	if cj.Spec.Timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, cj.Spec.Timeout)
		defer tcancel()
	}

	// Result-store consult: a cached sweep completes here and no shard
	// sees any of its rows. The synthesized Result carries the accounting
	// a replay implies — every batch present, nothing adopted, retried,
	// recomputed or lost.
	if s.results != nil {
		gs := s.tr.Start(sp.Context(), "store.get")
		hit, ok := s.results.Get(cj.Spec.IdentityKey())
		if ok {
			gs.SetAttr("outcome", "hit")
		} else {
			gs.SetAttr("outcome", "miss")
		}
		gs.End()
		if ok {
			s.mu.Lock()
			s.current = nil
			cj.State = jobs.StateSucceeded
			cj.Output = hit.Output
			cj.Cached = true
			cj.Result = &cluster.Result{Output: hit.Output, TotalBatches: hit.Batches}
			snap := *cj
			s.mu.Unlock()
			sp.SetAttr("outcome", "cached")
			s.writeReport(snap)
			return
		}
	}

	res, err := s.coord.Run(ctx, cj.Spec)

	s.mu.Lock()
	s.current = nil
	cj.Result = res
	if err != nil {
		cj.State = jobs.StateFailed
		cj.Error = err.Error()
		cj.ErrorKind = "cluster"
		if ctx.Err() != nil {
			cj.State = jobs.StateCancelled
			cj.ErrorKind = "cancelled"
		}
	} else {
		cj.State = jobs.StateSucceeded
		cj.Output = res.Output
	}
	snap := *cj
	s.mu.Unlock()
	sp.SetAttr("state", string(snap.State))
	// Write the merged table through so the next identical submit — to
	// this coordinator or any process sharing the store directory — skips
	// the whole fan-out.
	if snap.State == jobs.StateSucceeded && s.results != nil {
		ps := s.tr.Start(sp.Context(), "store.put")
		s.results.Put(snap.Spec.IdentityKey(), store.Result{Output: res.Output, Batches: res.TotalBatches})
		ps.End()
	}
	s.writeReport(snap)
}

// writeReport persists the sweep's audit trail as <id>.report.jsonl: one
// line per failover event, then a summary line with the batch accounting.
// Like worker run reports, report I/O failures never fail the job.
func (s *clusterServer) writeReport(cj clusterJob) {
	if s.reportDir == "" || cj.Result == nil {
		return
	}
	f, err := os.Create(filepath.Join(s.reportDir, cj.ID+".report.jsonl"))
	if err != nil {
		log.Printf("localityd: cluster report: %v", err)
		return
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	for _, e := range cj.Result.Events {
		_ = enc.Encode(map[string]any{"kind": "event", "event": e})
	}
	_ = enc.Encode(map[string]any{
		"kind":          "summary",
		"id":            cj.ID,
		"experiment":    cj.Spec.Experiment,
		"state":         cj.State,
		"error":         cj.Error,
		"total_batches": cj.Result.TotalBatches,
		"adopted":       cj.Result.Adopted,
		"retried":       cj.Result.Retried,
		"recomputed":    cj.Result.Recomputed,
		"lost":          cj.Result.Lost,
	})
	obs.PruneDir(s.reportDir, "*.report.jsonl", s.reportMaxFiles)
}

// drain mirrors the worker drain: readiness flips, queued jobs are
// cancelled, the in-flight sweep runs to the deadline and is then
// cancelled (shard-side checkpoints survive for a resumed run).
func (s *clusterServer) drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
		for _, id := range s.order {
			if cj := s.jobs[id]; cj.State == jobs.StateQueued {
				cj.State = jobs.StateCancelled
				cj.ErrorKind = "cancelled"
			}
		}
	}
	s.mu.Unlock()
	select {
	case <-s.runnerDone:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		if s.current != nil {
			s.current()
		}
		s.mu.Unlock()
		<-s.runnerDone
		return fmt.Errorf("cluster drain deadline hit; in-flight sweep cancelled")
	}
}

// clusterConfig carries the -coordinator flag set into serveCluster.
type clusterConfig struct {
	opts           cluster.Options
	queueDepth     int
	reportDir      string
	reportMaxFiles int
	store          storeConfig
	trace          traceConfig
}

// membership resolves the static worker set from -shards / -membership-file
// (exactly one must be given).
func membership(shardsFlag, membershipFile string) ([]cluster.Shard, error) {
	switch {
	case shardsFlag != "" && membershipFile != "":
		return nil, fmt.Errorf("localityd: -shards and -membership-file are mutually exclusive")
	case shardsFlag != "":
		return cluster.ParseShards(shardsFlag)
	case membershipFile != "":
		return cluster.LoadShards(membershipFile)
	default:
		return nil, fmt.Errorf("localityd: -coordinator requires -shards or -membership-file")
	}
}

// serveCluster is the coordinator-mode lifecycle: same signal handling and
// drain discipline as the worker serve, fronting a Coordinator instead of
// a local pool.
func serveCluster(ln net.Listener, cfg clusterConfig, drainTimeout, requestTimeout time.Duration, maxInflight int, pprofAddr string) error {
	reg := obs.NewRegistry()
	obs.RegisterBuildInfo(reg)
	cfg.opts.Metrics = reg
	cfg.opts.Logf = log.Printf
	// The coordinator's OnSpan hook is wired before cluster.New copies
	// the options, but the clusterServer it targets exists only after New
	// — the atomic holder bridges the cycle race-free (events before the
	// Store are impossible: the listener is not serving yet).
	var holder atomic.Pointer[clusterServer]
	cfg.opts.OnSpan = func(e cluster.SpanEvent) {
		if cs := holder.Load(); cs != nil {
			cs.onSpan(e)
		}
	}
	coord, err := cluster.New(cfg.opts)
	if err != nil {
		return err
	}
	st, err := cfg.store.open(reg)
	if err != nil {
		return err
	}
	if st != nil {
		defer st.Close()
	}
	tr, err := cfg.trace.open(reg)
	if err != nil {
		return err
	}
	if tr != nil {
		defer tr.Close()
	}
	s := newClusterServer(coord, cfg.queueDepth, reg, tr, cfg.reportDir, cfg.reportMaxFiles, st)
	holder.Store(s)
	for _, sh := range coord.Shards() {
		log.Printf("localityd: cluster member %s = %s", sh.Name, sh.URL)
	}
	return serveUntilSignal(ln, s.handler(requestTimeout, maxInflight), pprofAddr,
		"localityd (coordinator)", drainTimeout, s.drain)
}
