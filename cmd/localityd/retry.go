package main

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"locality/internal/jobs"
	"locality/internal/tenant"
)

// Retry-After derivation. Every retryable rejection (429/503) flows through
// writeRetryable, so the header is never hand-rolled at a call site and the
// hint always reflects what the server actually knows:
//
//   - A rate-limited tenant is told exactly when its token bucket refills
//     (the registry computes the deterministic deficit).
//   - A full queue is told its estimated drain time: queued jobs divided by
//     the worker count, at the conservative floor of one job-second per
//     worker. A queue of 12 over 4 workers clears no sooner than ~3s, so
//     "Retry-After: 1" would just bounce the client off the same full queue.
//   - A draining instance needs a redeploy; clients should route elsewhere
//     and wait longer (5s) before probing it again.
//
// Hints clamp to [1s, 30s] — matching the cap cluster.Client enforces when
// it honors them.

const (
	minRetrySeconds      = 1
	maxRetrySeconds      = 30
	drainingRetrySeconds = 5
)

// retryAfterSeconds derives the delay-seconds hint for a retryable
// rejection, in precedence order: an explicit tenant refill deadline, the
// draining sentinel, queue-occupancy drain estimate, then the 1s floor.
func retryAfterSeconds(err error) int {
	var le *tenant.LimitError
	if errors.As(err, &le) && le.RetryAfterNanos > 0 {
		nanos := le.RetryAfterNanos
		return clampRetry(int((nanos + int64(time.Second) - 1) / int64(time.Second)))
	}
	if errors.Is(err, jobs.ErrDraining) {
		return drainingRetrySeconds
	}
	var shed *jobs.ShedError
	if errors.As(err, &shed) && shed.Workers > 0 {
		return clampRetry((shed.QueueLen + shed.Workers - 1) / shed.Workers)
	}
	return minRetrySeconds
}

func clampRetry(s int) int {
	if s < minRetrySeconds {
		return minRetrySeconds
	}
	if s > maxRetrySeconds {
		return maxRetrySeconds
	}
	return s
}

// writeRetryable writes a retryable rejection: the Retry-After header
// derived from err, then the structured JSON body. It is the single exit
// for every 429/503 the daemon emits, in both serving modes.
func writeRetryable(w http.ResponseWriter, status int, err error, resp errorResponse) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(err)))
	writeJSON(w, status, resp)
}

// shedStatus maps a rejection to its HTTP status: client errors are 400,
// per-tenant and global backpressure is 429 (the same client may retry
// later), and an unavailable pool — draining, or out of tenant slots — is
// 503 (route elsewhere).
func shedStatus(err error) int {
	switch {
	case errors.Is(err, jobs.ErrUnknownExperiment),
		errors.Is(err, jobs.ErrInvalidRowSpec):
		return http.StatusBadRequest
	case errors.Is(err, jobs.ErrQueueFull),
		errors.Is(err, tenant.ErrRateLimited),
		errors.Is(err, tenant.ErrQueueFull),
		errors.Is(err, tenant.ErrInFlightLimit),
		errors.Is(err, tenant.ErrStreamLimit):
		return http.StatusTooManyRequests
	case errors.Is(err, jobs.ErrDraining),
		errors.Is(err, tenant.ErrExhausted):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// retryableStatus reports whether a status carries a Retry-After hint.
func retryableStatus(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// shedResponse renders the structured rejection body.
func shedResponse(err error) errorResponse {
	resp := errorResponse{Error: err.Error()}
	switch {
	case errors.Is(err, jobs.ErrUnknownExperiment):
		resp.Reason = "unknown_experiment"
	case errors.Is(err, jobs.ErrInvalidRowSpec):
		resp.Reason = "invalid_rows"
	case errors.Is(err, tenant.ErrRateLimited):
		resp.Reason = "rate_limited"
	case errors.Is(err, tenant.ErrQueueFull):
		resp.Reason = "tenant_queue_full"
	case errors.Is(err, tenant.ErrInFlightLimit):
		resp.Reason = "in_flight_limit"
	case errors.Is(err, tenant.ErrStreamLimit):
		resp.Reason = "stream_limit"
	case errors.Is(err, tenant.ErrExhausted):
		resp.Reason = "tenant_exhausted"
	case errors.Is(err, jobs.ErrQueueFull):
		resp.Reason = "queue_full"
	case errors.Is(err, jobs.ErrDraining):
		resp.Reason = "draining"
	}
	var le *tenant.LimitError
	if errors.As(err, &le) {
		resp.Tenant = le.Tenant
	}
	var shed *jobs.ShedError
	if errors.As(err, &shed) {
		resp.QueueLen, resp.QueueCap = shed.QueueLen, shed.QueueCap
	}
	return resp
}
