package main

// Multi-tenant daemon tests: Retry-After derivation, per-tenant quota
// rejections over HTTP, idempotent submission, SSE streaming (including the
// drain race under a real SIGTERM), and the per-tenant /metrics series.

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"locality/internal/harness"
	"locality/internal/jobs"
	"locality/internal/tenant"
)

// submitKey posts a submission under a tenant API key ("" = anonymous).
func submitKey(t *testing.T, base, key, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set(tenant.Header, key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestRetryAfterDerivation is the occupancy-derivation table: the hint must
// follow the tenant's refill deadline when one exists, the draining policy,
// or the queue's estimated drain time — clamped to [1, 30].
func TestRetryAfterDerivation(t *testing.T) {
	rateShed := func(nanos int64) error {
		return &jobs.ShedError{
			Reason: &tenant.LimitError{
				Tenant: "alpha", Reason: tenant.ErrRateLimited, RetryAfterNanos: nanos,
			},
			QueueLen: 3, QueueCap: 16, Workers: 2,
		}
	}
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"rate limit refill deficit rounds up", rateShed(int64(1500 * time.Millisecond)), 2},
		{"rate limit exact second", rateShed(int64(time.Second)), 1},
		{"rate limit sub-second floors to 1", rateShed(int64(10 * time.Millisecond)), 1},
		// Sub-second boundary sweep: a wait of even 1ns must never render
		// Retry-After: 0 — that reads as "retry now" and invites a tight
		// client retry loop against a bucket that cannot have refilled.
		{"rate limit 1ns renders 1", rateShed(1), 1},
		{"rate limit 999999999ns renders 1", rateShed(int64(time.Second) - 1), 1},
		{"rate limit just over a second rounds to 2", rateShed(int64(time.Second) + 1), 2},
		{"rate limit exactly 30s stays 30", rateShed(int64(30 * time.Second)), 30},
		{"rate limit just under clamp rounds into it", rateShed(int64(30*time.Second) - 1), 30},
		{"rate limit clamps to 30", rateShed(int64(10 * time.Minute)), 30},
		// A zero RetryAfterNanos means "no bucket hint" (the tenant bucket
		// always emits >= 1ns): derivation falls back to queue occupancy.
		{"rate limit absent hint falls back to occupancy", rateShed(0), 2},
		{"draining", jobs.ErrDraining, 5},
		{"draining wrapped in shed", &jobs.ShedError{Reason: jobs.ErrDraining, QueueLen: 9, QueueCap: 16, Workers: 1}, 5},
		{"queue occupancy over workers", &jobs.ShedError{Reason: jobs.ErrQueueFull, QueueLen: 10, QueueCap: 16, Workers: 2}, 5},
		{"occupancy rounds up", &jobs.ShedError{Reason: jobs.ErrQueueFull, QueueLen: 5, QueueCap: 16, Workers: 2}, 3},
		{"occupancy clamps to 30", &jobs.ShedError{Reason: jobs.ErrQueueFull, QueueLen: 512, QueueCap: 512, Workers: 2}, 30},
		{"empty queue floors to 1", &jobs.ShedError{Reason: jobs.ErrQueueFull, QueueLen: 0, QueueCap: 1, Workers: 4}, 1},
		{"tenant queue cap falls back to occupancy", &jobs.ShedError{
			Reason:   &tenant.LimitError{Tenant: "beta", Reason: tenant.ErrQueueFull},
			QueueLen: 6, QueueCap: 16, Workers: 2,
		}, 3},
		{"limiter overload floors to 1", errOverloaded, 1},
		{"unclassified floors to 1", errors.New("mystery"), 1},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.err); got != c.want {
			t.Errorf("%s: retryAfterSeconds = %d, want %d", c.name, got, c.want)
		}
	}

	// And the helper actually stamps the header it derived.
	rec := httptest.NewRecorder()
	writeRetryable(rec, http.StatusTooManyRequests, rateShed(int64(1500*time.Millisecond)),
		shedResponse(rateShed(int64(1500*time.Millisecond))))
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After header = %q, want 2", got)
	}
	var er errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if er.Reason != "rate_limited" || er.Tenant != "alpha" || er.QueueLen != 3 {
		t.Errorf("rejection body %+v", er)
	}
}

// TestTenantQuotaHTTP: per-tenant rate quotas reject over the wire with
// 429, a derived Retry-After, the tenant's public ID — and never the key.
func TestTenantQuotaHTTP(t *testing.T) {
	_, ts := testServer(t, jobs.Options{Workers: 1, Tenancy: &tenant.Config{
		Defaults: tenant.Limits{Rate: 1, Burst: 1},
		Pinned: []tenant.Pinned{{
			Name: "alpha", Key: "alpha-secret-key",
			Limits: tenant.Limits{Rate: 1, Burst: 1},
		}},
	}})

	resp := submitKey(t, ts.URL, "alpha-secret-key", `{"experiment":"E8","quick":true,"seed":1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	var ok jobs.SubmitResult
	decode(t, resp, &ok)
	if ok.Tenant != "alpha" || ok.Deduped {
		t.Errorf("accept body %+v", ok)
	}

	resp = submitKey(t, ts.URL, "alpha-secret-key", `{"experiment":"E8","quick":true,"seed":2}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("burst exceeded: %d, want 429", resp.StatusCode)
	}
	if after := resp.Header.Get("Retry-After"); after != "1" {
		t.Errorf("Retry-After %q, want 1 (rate 1/s deficit)", after)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var er errorResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatal(err)
	}
	if er.Reason != "rate_limited" || er.Tenant != "alpha" {
		t.Errorf("shed body %+v", er)
	}
	if strings.Contains(string(raw), "alpha-secret-key") {
		t.Errorf("rejection leaks the raw API key: %s", raw)
	}

	// Another tenant's bucket is untouched.
	resp = submitKey(t, ts.URL, "other-key", `{"experiment":"E8","quick":true,"seed":3}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("independent tenant: %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestIdempotentSubmitHTTP is the satellite e2e: concurrent duplicate
// submissions collapse to one job, the duplicate responses are
// byte-identical, and the terminal snapshot is stable.
func TestIdempotentSubmitHTTP(t *testing.T) {
	_, ts := testServer(t, jobs.Options{Workers: 2, Idempotent: true})
	const n = 8
	body := `{"experiment":"E8","quick":true,"seed":11}`

	type result struct {
		status int
		raw    []byte
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			results[i] = result{resp.StatusCode, raw}
		}(i)
	}
	wg.Wait()

	id, fresh := "", 0
	var dupBody []byte
	for i, r := range results {
		if r.status != http.StatusAccepted {
			t.Fatalf("submit %d: status %d (%s)", i, r.status, r.raw)
		}
		var sr jobs.SubmitResult
		if err := json.Unmarshal(r.raw, &sr); err != nil {
			t.Fatal(err)
		}
		if id == "" {
			id = sr.ID
		}
		if sr.ID != id {
			t.Fatalf("two IDs for one identity: %s, %s", id, sr.ID)
		}
		if !sr.Deduped {
			fresh++
			continue
		}
		if dupBody == nil {
			dupBody = r.raw
		} else if string(dupBody) != string(r.raw) {
			t.Errorf("duplicate bodies differ:\n%s\n%s", dupBody, r.raw)
		}
	}
	if fresh != 1 {
		t.Errorf("%d fresh acceptances, want exactly 1", fresh)
	}

	if j := pollJob(t, ts.URL, id); j.State != jobs.StateSucceeded {
		t.Fatalf("job state %s: %s", j.State, j.Error)
	}
	// The terminal snapshot is byte-stable — the duplicate callers all poll
	// the same job and read the same bytes.
	get := func() []byte {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return raw
	}
	if a, b := get(), get(); string(a) != string(b) {
		t.Error("terminal snapshots differ between reads")
	}
}

// sseEvent is one parsed frame off an SSE stream.
type sseEvent struct {
	name string
	ev   jobs.Event
}

// readSSE consumes an event stream to EOF. The snapshot frame (a jobs.Job
// payload) is returned by name with a zero event body. Failures use Errorf,
// not Fatalf, so the helper is safe off the test goroutine; a scanner error
// means the server severed the stream instead of closing it cleanly.
func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var events []sseEvent
	var name string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var ev jobs.Event
			if name != "snapshot" {
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
					t.Errorf("bad event payload %q: %v", line, err)
					continue
				}
			}
			events = append(events, sseEvent{name: name, ev: ev})
		case line == "":
		default:
			t.Errorf("unexpected SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Errorf("stream not closed cleanly: %v", err)
	}
	return events
}

// openStream issues the events request and asserts the streaming handshake.
func openStream(t *testing.T, base, key, id string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set(tenant.Header, key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestSSEStream: the events endpoint streams snapshot, batch progress, and
// a final terminal frame, then closes.
func TestSSEStream(t *testing.T) {
	subscribed := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(subscribed) }) }
	defer release() // a failed assertion must still unblock the pool drain
	_, ts := testServer(t, jobs.Options{Workers: 1,
		BatchHook: func(string, *harness.Checkpoint) { <-subscribed }})

	resp := submit(t, ts.URL, `{"experiment":"E12","quick":true,"seed":5}`)
	var accepted jobs.SubmitResult
	decode(t, resp, &accepted)

	stream := openStream(t, ts.URL, "", accepted.ID)
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(stream.Body)
		t.Fatalf("stream status %d: %s", stream.StatusCode, raw)
	}
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	release()

	events := readSSE(t, stream.Body)
	if len(events) < 2 {
		t.Fatalf("only %d frames", len(events))
	}
	if events[0].name != "snapshot" {
		t.Errorf("first frame %q, want snapshot", events[0].name)
	}
	progress := 0
	var lastSeq uint64
	for _, e := range events[1:] {
		if e.ev.Seq <= lastSeq {
			t.Fatalf("sequence not increasing: %d after %d", e.ev.Seq, lastSeq)
		}
		lastSeq = e.ev.Seq
		if e.name == "progress" && e.ev.BatchesDone > 0 {
			progress++
		}
	}
	if progress == 0 {
		t.Error("no batch progress frames")
	}
	last := events[len(events)-1]
	if last.name != "terminal" || !last.ev.Terminal || last.ev.State != jobs.StateSucceeded {
		t.Errorf("final frame %q %+v", last.name, last.ev)
	}
}

// TestSSEStreamCapHTTP is the stream-cap satellite: the per-tenant cap
// rejects the second stream with 429, Retry-After, and the structured body.
func TestSSEStreamCapHTTP(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(gate) })
	_, ts := testServer(t, jobs.Options{Workers: 1,
		Tenancy:   &tenant.Config{Defaults: tenant.Limits{MaxStreams: 1}},
		BatchHook: func(string, *harness.Checkpoint) { <-gate }})

	resp := submitKey(t, ts.URL, "k", `{"experiment":"E12","quick":true,"seed":1}`)
	var accepted jobs.SubmitResult
	decode(t, resp, &accepted)

	first := openStream(t, ts.URL, "k", accepted.ID)
	defer first.Body.Close()
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first stream: %d", first.StatusCode)
	}

	second := openStream(t, ts.URL, "k", accepted.ID)
	if second.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("capped stream: %d, want 429", second.StatusCode)
	}
	if second.Header.Get("Retry-After") == "" {
		t.Error("capped stream missing Retry-After")
	}
	var er errorResponse
	decode(t, second, &er)
	if er.Reason != "stream_limit" || er.Tenant == "k" || er.Tenant == "" {
		t.Errorf("cap body %+v", er)
	}

	// Another tenant streams fine.
	other := openStream(t, ts.URL, "k2", accepted.ID)
	if other.StatusCode != http.StatusOK {
		t.Fatalf("other tenant: %d", other.StatusCode)
	}
	other.Body.Close()

	// Unknown jobs 404 before any quota charge.
	missing := openStream(t, ts.URL, "k3", "job-404")
	if missing.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job stream: %d", missing.StatusCode)
	}
	missing.Body.Close()
}

// TestSSEDrainOnSIGTERM is the drain-race satellite, full stack: a real
// listener, a live stream, SIGTERM mid-job. The stream must deliver a
// terminal frame and close cleanly — no severed connection, no hang — and
// serve must return with no leaked goroutines.
func TestSSEDrainOnSIGTERM(t *testing.T) {
	before := runtime.NumGoroutine()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	started := make(chan struct{}, 64)
	opts := jobs.Options{Workers: 1,
		BatchHook: func(id string, ck *harness.Checkpoint) {
			if len(ck.Batches) == 1 {
				started <- struct{}{}
			}
			time.Sleep(20 * time.Millisecond) // keep the job alive past SIGTERM
		}}
	done := make(chan error, 1)
	go func() { done <- serve(ln, opts, storeConfig{}, traceConfig{}, 150*time.Millisecond, 5*time.Second, 64, "") }()

	waitHTTP(t, base+"/healthz", http.StatusOK, 10*time.Second)
	resp := submit(t, base, `{"experiment":"E12","quick":true,"seed":9}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	var accepted jobs.SubmitResult
	decode(t, resp, &accepted)
	<-started

	stream := openStream(t, base, "", accepted.ID)
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", stream.StatusCode)
	}

	frames := make(chan []sseEvent, 1)
	go func() { frames <- readSSE(t, stream.Body) }()

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	select {
	case events := <-frames:
		if len(events) == 0 {
			t.Fatal("stream closed without frames")
		}
		last := events[len(events)-1]
		if last.name != "terminal" || !last.ev.Terminal {
			t.Errorf("drained stream's final frame %q %+v, want terminal", last.name, last.ev)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stream did not terminate after SIGTERM")
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not return after SIGTERM")
	}
	checkGoroutines(t, before)
}

// TestMetricsPerTenant: /metrics exposes the bounded per-tenant admission
// series — pinned tenants by name, never by key.
func TestMetricsPerTenant(t *testing.T) {
	_, ts := testServer(t, jobs.Options{Workers: 1, Tenancy: &tenant.Config{
		Pinned: []tenant.Pinned{{
			Name: "alpha", Key: "alpha-secret-key",
			Limits: tenant.Limits{Rate: 1, Burst: 1},
		}},
	}})

	resp := submitKey(t, ts.URL, "alpha-secret-key", `{"experiment":"E8","quick":true,"seed":1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	var accepted jobs.SubmitResult
	decode(t, resp, &accepted)
	resp = submitKey(t, ts.URL, "alpha-secret-key", `{"experiment":"E8","quick":true,"seed":2}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("rate shed: %d", resp.StatusCode)
	}
	resp.Body.Close()
	pollJob(t, ts.URL, accepted.ID)
	stream := openStream(t, ts.URL, "alpha-secret-key", accepted.ID)
	readSSE(t, stream.Body) // terminal job: snapshot then immediate close
	stream.Body.Close()

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	raw, _ := io.ReadAll(mr.Body)
	body := string(raw)
	for _, want := range []string{
		`locality_tenant_admitted_total{tenant="alpha"} 1`,
		`locality_tenant_shed_total{tenant="alpha",reason="rate_limited"} 1`,
		`locality_tenant_streams_total{tenant="alpha"} 1`,
		`locality_http_requests_total{route="events",code="200"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if strings.Contains(body, "alpha-secret-key") {
		t.Error("/metrics leaks a raw API key")
	}
}
