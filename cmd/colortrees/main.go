// Command colortrees runs one Δ-coloring algorithm on one generated tree
// and reports rounds plus verification — a minimal way to poke at the
// paper's algorithms.
//
// Usage:
//
//	colortrees [-algo t10|t11|det] [-n 4096] [-delta 16] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"locality"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("colortrees", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		algo  = fs.String("algo", "t11", "algorithm: t11 (Theorem 11), t10 (ColorBidding), det (Theorem 9 baseline)")
		n     = fs.Int("n", 4096, "number of vertices")
		delta = fs.Int("delta", 16, "maximum degree / palette size")
		seed  = fs.Uint64("seed", 7, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	r := locality.NewRand(*seed)
	g := locality.RandomTree(*n, *delta, r)
	fmt.Fprintf(stdout, "tree: n=%d Δ=%d (max degree generated: %d)\n", g.N(), *delta, g.MaxDegree())

	var (
		res *locality.RunResult
		err error
	)
	switch *algo {
	case "t11":
		res, err = locality.Run(g, locality.RunConfig{Randomized: true, Seed: *seed, MaxRounds: 1 << 22},
			locality.NewTheorem11Factory(locality.Theorem11Options{Delta: *delta}))
	case "t10":
		res, err = locality.Run(g, locality.RunConfig{Randomized: true, Seed: *seed, MaxRounds: 1 << 22},
			locality.NewTheorem10Factory(locality.Theorem10Options{Delta: *delta}))
	case "det":
		res, err = locality.Run(g, locality.RunConfig{IDs: locality.ShuffledIDs(*n, r), MaxRounds: 1 << 22},
			locality.NewTreeColoringFactory(locality.TreeColoringOptions{Q: *delta}))
	default:
		fmt.Fprintf(stderr, "colortrees: unknown algorithm %q\n", *algo)
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "colortrees: run failed: %v\n", err)
		return 1
	}

	var colors []int
	if *algo == "det" {
		colors = make([]int, len(res.Outputs))
		for v, o := range res.Outputs {
			colors[v] = o.(int)
		}
	} else {
		colors = locality.ColoringOutputs(res.Outputs)
	}
	fmt.Fprintf(stdout, "rounds: %d\n", res.Rounds)
	if err := locality.ValidateColoring(g, *delta, colors); err != nil {
		fmt.Fprintf(stdout, "verification: FAILED: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "verification: valid %d-coloring\n", *delta)
	return 0
}
