package main

import (
	"strings"
	"testing"
)

// TestRunSmoke runs each algorithm end to end on a tree small enough for a
// unit test and checks the run verifies as a valid coloring.
func TestRunSmoke(t *testing.T) {
	cases := []struct {
		algo  string
		delta string // ColorBidding (t10) needs Δ >= 9; the others are fine small
	}{{"t11", "4"}, {"t10", "9"}, {"det", "4"}}
	for _, tc := range cases {
		t.Run(tc.algo, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := run([]string{"-algo", tc.algo, "-n", "64", "-delta", tc.delta, "-seed", "1"}, &stdout, &stderr)
			if code != 0 {
				t.Fatalf("run exited %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
			}
			if !strings.Contains(stdout.String(), "verification: valid") {
				t.Fatalf("expected a verified coloring, got:\n%s", stdout.String())
			}
		})
	}
}

// TestRunUnknownAlgo checks the usage-error path.
func TestRunUnknownAlgo(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-algo", "nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run exited %d for an unknown algorithm, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown algorithm") {
		t.Fatalf("expected an unknown-algorithm message, got: %s", stderr.String())
	}
}
