// Command localvet is the multichecker for the repository's LOCAL-model
// determinism & purity contract (DESIGN.md, "Model purity & static
// enforcement" and §11). It type-checks every package of the module from
// source (stdlib only — no external tooling), builds the module-wide call
// graph, and runs the internal/analysis suite:
//
//	norawrand     randomness only via internal/rng (Env.Rand)
//	nowallclock   no wall-clock reads outside exempted leaf functions
//	nomapiter     map iteration order must not reach messages or outputs
//	errsentinel   kernel failures matched with errors.Is, never error text
//	phasedisc     Machine receiver/Env.Node shape discipline
//	obsinert      hot paths never consume observability results
//	nondetflow    no transitive path from domain code to a nondeterminism
//	              source; reports carry full call-chain provenance
//	goroutinedisc go statements only at sanctioned pool/reaper sites
//	mutexhold     no blocking operations while holding a mutex
//	ctxflow       context first, never re-rooted, threaded to blocking callees
//
// Usage:
//
//	localvet [-only a,b] [-format text|json|sarif] [-baseline file [-write-baseline]] [package-pattern]
//
// The only supported patterns are "./..." (the whole module, the default)
// and module-relative directories like ./internal/mis. Exit status: 0 clean
// (or every finding grandfathered by the baseline), 1 new findings, 2
// operational error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"locality/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// leafExemptions is the complete table of sanctioned nondeterminism leaks —
// the function-level replacement for the old package/file carve-outs. Each
// entry is machine-verified by nondetflow: the function must exist and
// directly contain a source of the exempted kind, so the table cannot
// outlive the code it sanctions. nowallclock consumes the wallclock rows as
// its AllowFuncs, keeping the intraprocedural leaf check and the
// interprocedural reachability check in exact agreement.
var leafExemptions = []analysis.FuncExemption{
	{Func: "locality/internal/sim.runSequential", Kind: "wallclock",
		Reason: "Config.Deadline watchdog: the wall clock bounds whether a run finishes, never what it computes"},
	{Func: "locality/internal/sim.runConcurrent", Kind: "wallclock",
		Reason: "deadline timer and abort grace period for reaping runaway concurrent runs"},
	{Func: "locality/internal/sim.runConcurrent", Kind: "goroutine",
		Reason: "the concurrent engine itself: per-node workers, joined at every phase barrier"},
	{Func: "locality/internal/harness.waitAttempt", Kind: "wallclock",
		Reason: "the single sanctioned backoff timer; the backoff schedule stays pure seeded arithmetic"},
	{Func: "locality/internal/harness.(*rowScheduler).start", Kind: "goroutine",
		Reason: "sweep worker pool, reaped by rowScheduler.finish"},
	{Func: "locality/internal/obs.now", Kind: "wallclock",
		Reason: "run-report timing is wall-clock telemetry by design; confined to clock.go's two helpers"},
	{Func: "locality/internal/obs.since", Kind: "wallclock",
		Reason: "run-report timing is wall-clock telemetry by design; confined to clock.go's two helpers"},
	{Func: "locality/internal/store.nowNanos", Kind: "wallclock",
		Reason: "result-store records carry a stored-at stamp for operators; write-only telemetry, never read back into cache decisions"},
	{Func: "locality/internal/obs/trace.now", Kind: "wallclock",
		Reason: "span timing is wall-clock telemetry by design; confined to clock.go's two helpers, never read back into span identity (DESIGN.md §14)"},
	{Func: "locality/internal/obs/trace.since", Kind: "wallclock",
		Reason: "span timing is wall-clock telemetry by design; confined to clock.go's two helpers, never read back into span identity (DESIGN.md §14)"},
}

// wallclockAllowFuncs projects the wallclock rows of leafExemptions for
// nowallclock.
func wallclockAllowFuncs() []string {
	var out []string
	for _, ex := range leafExemptions {
		if ex.Kind == "wallclock" {
			out = append(out, ex.Func)
		}
	}
	return out
}

// contractAnalyzers builds the suite with the repository's sanctioned
// exceptions. These exceptions ARE the contract, so they live here, not in
// per-package config files:
//
//   - leafExemptions (above) holds every function that may touch a
//     nondeterminism source; everything reachable above those leaves is
//     machine-checked clean by nondetflow.
//   - internal/jobs, internal/cluster, internal/load, cmd/localityd,
//     cmd/localbench and cmd/localload may read the clock: the supervision
//     layer's job deadlines, drain grace periods, request timeouts, bench
//     timings and load-test latency observations are wall-clock by nature.
//     Experiment results stay deterministic — the clock only bounds
//     *whether* a sweep finishes, never what it computes. (The load
//     engine's *workload* is still seed-deterministic; only its measured
//     latencies are clock reads, confined to internal/load/leaves.go.)
//   - the same supervision tier (plus internal/obs and the analysis
//     framework itself) is outside nondetflow's domain: its clock reads and
//     goroutines are its whole job, and taint crossing its boundary is
//     absorbed rather than relayed into domain reports.
//   - goroutinedisc sanctions exactly the reaped spawn sites: the jobs
//     worker pool, the cluster probers, the harness row scheduler, the
//     concurrent engine, and the daemon's serve/runner loops. Every
//     allowance is verified to still witness a go statement.
//   - internal/fault machines may observe Env.Node: the fault shim maps
//     itself to a host vertex to look up its entry in the fault plan —
//     instrumentation by design, documented in fault.go.
//   - internal/sim and internal/harness are the obsinert hot paths, and
//     internal/cluster joins them: calls into internal/obs there must be
//     fire-and-forget statements, so telemetry can never influence a run —
//     for the coordinator, so failover decisions never consume their own
//     metrics (DESIGN.md §9–10).
func contractAnalyzers() []*analysis.Analyzer {
	supervision := []string{
		"locality/internal/jobs",
		"locality/internal/cluster",
		"locality/internal/load",
		"locality/cmd/localityd",
		"locality/cmd/localbench",
		"locality/cmd/localload",
	}
	return []*analysis.Analyzer{
		analysis.NewNoRawRand(analysis.NoRawRandOptions{}),
		analysis.NewNoWallClock(analysis.NoWallClockOptions{
			AllowPackages: supervision,
			AllowFuncs:    wallclockAllowFuncs(),
		}),
		analysis.NewNoMapIter(analysis.NoMapIterOptions{}),
		analysis.NewErrSentinel(analysis.ErrSentinelOptions{}),
		analysis.NewPhaseDisc(analysis.PhaseDiscOptions{
			AllowNodePackages: []string{"locality/internal/fault"},
		}),
		analysis.NewObsInert(analysis.ObsInertOptions{
			ObsPackages: []string{
				"locality/internal/obs",
				"locality/internal/obs/trace",
			},
			HotPackages: []string{
				"locality/internal/sim",
				"locality/internal/harness",
				"locality/internal/cluster",
			},
		}),
		analysis.NewNonDetFlow(analysis.NonDetFlowOptions{
			ExemptPackages: []string{
				"locality/internal/jobs",
				"locality/internal/cluster",
				"locality/internal/obs",
				"locality/internal/analysis",
				"locality/internal/load",
				"locality/cmd/localityd",
				"locality/cmd/localbench",
				"locality/cmd/localload",
				"locality/cmd/localvet",
			},
			Exemptions: leafExemptions,
		}),
		analysis.NewGoroutineDisc(analysis.GoroutineDiscOptions{
			Allow: []analysis.GoAllowance{
				{Package: "locality/internal/jobs",
					Reason: "worker pool and drain reaper; spawns joined by Pool.Close"},
				{Package: "locality/internal/cluster",
					Reason: "shard probers and request fan-out, reaped via WaitGroup in Coordinator.Run"},
				{File: "internal/harness/parallel.go",
					Reason: "sweep row scheduler workers, joined by rowScheduler.finish"},
				{File: "internal/sim/concurrent.go",
					Reason: "the concurrent engine's per-node workers, joined at every phase barrier"},
				{File: "cmd/localityd/main.go",
					Reason: "HTTP serve loop and signal watcher, reaped on shutdown"},
				{File: "cmd/localityd/cluster.go",
					Reason: "cluster runner goroutine, reaped via runnerDone on drain"},
				{File: "internal/load/leaves.go",
					Reason: "the load engine's only spawn site, joined unconditionally by spawnClients"},
				{File: "cmd/localload/main.go",
					Reason: "spawned-daemon stderr drain (reaped at process exit) and Wait watcher (reaped by select)"},
			},
		}),
		analysis.NewMutexHold(analysis.MutexHoldOptions{}),
		analysis.NewCtxFlow(analysis.CtxFlowOptions{
			Exemptions: ctxExemptions,
		}),
	}
}

// ctxExemptions are the sanctioned context-discipline deviations, verified
// live by ctxflow.
var ctxExemptions = []analysis.FuncExemption{}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("localvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	format := fs.String("format", "text", "output format: text, json or sarif")
	baselinePath := fs.String("baseline", "", "baseline file: suppress grandfathered findings, fail only on new ones")
	writeBL := fs.Bool("write-baseline", false, "write current findings to the -baseline file and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := contractAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-13s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "localvet: unknown format %q (valid: text, json, sarif)\n", *format)
		return 2
	}
	if *writeBL && *baselinePath == "" {
		fmt.Fprintf(stderr, "localvet: -write-baseline requires -baseline FILE\n")
		return 2
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		if len(keep) > 0 {
			var unknown, valid []string
			for name := range keep {
				unknown = append(unknown, fmt.Sprintf("%q", name))
			}
			sort.Strings(unknown)
			for _, a := range contractAnalyzers() {
				valid = append(valid, a.Name)
			}
			fmt.Fprintf(stderr, "localvet: unknown analyzer %s (valid: %s)\n",
				strings.Join(unknown, ", "), strings.Join(valid, ", "))
			return 2
		}
		analyzers = filtered
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "localvet: %v\n", err)
		return 2
	}
	moduleDir, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "localvet: %v\n", err)
		return 2
	}
	const modulePath = "locality"

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := resolvePatterns(patterns, modulePath, moduleDir, cwd)
	if err != nil {
		fmt.Fprintf(stderr, "localvet: %v\n", err)
		return 2
	}

	// Load every target first, then build the call graph over everything the
	// loader saw (targets plus their module-local dependencies), so the
	// interprocedural analyzers can follow cross-package chains even on a
	// partial -only/-pattern run.
	loader := analysis.NewLoader(modulePath, moduleDir)
	loader.IncludeTests = true
	failed := false
	var pkgs []*analysis.Package
	for _, path := range paths {
		p, err := loader.Load(path)
		if err != nil {
			fmt.Fprintf(stderr, "localvet: %v\n", err)
			failed = true
			continue
		}
		pkgs = append(pkgs, p)
	}
	prog := analysis.BuildProgram(loader.Loaded())

	var findings []Finding
	for _, p := range pkgs {
		for _, a := range analyzers {
			name := a.Name
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      p.Fset,
				Files:     p.Files,
				Pkg:       p.Types,
				TypesInfo: p.Info,
				Prog:      prog,
				Report: func(d analysis.Diagnostic) {
					pos := p.Fset.Position(d.Pos)
					file := pos.Filename
					if rel, err := filepath.Rel(moduleDir, file); err == nil && !strings.HasPrefix(rel, "..") {
						file = filepath.ToSlash(rel)
					}
					findings = append(findings, Finding{
						Analyzer: name,
						File:     file,
						Line:     pos.Line,
						Column:   pos.Column,
						Message:  d.Message,
					})
				},
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(stderr, "localvet: %s on %s: %v\n", a.Name, p.Path, err)
				failed = true
			}
		}
	}
	sortFindings(findings)

	if *writeBL {
		if failed {
			fmt.Fprintf(stderr, "localvet: refusing to write baseline after load/run errors\n")
			return 2
		}
		if err := writeBaseline(*baselinePath, findings); err != nil {
			fmt.Fprintf(stderr, "localvet: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "localvet: wrote %d finding(s) to %s\n", len(findings), *baselinePath)
		return 0
	}

	suppressed := 0
	if *baselinePath != "" {
		counts, err := loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "localvet: %v\n", err)
			return 2
		}
		var stale []baselineEntry
		findings, suppressed, stale = applyBaseline(findings, counts)
		for _, e := range stale {
			fmt.Fprintf(stderr, "localvet: stale baseline entry (fixed? shrink the baseline): %s: %s: %s (x%d)\n",
				e.File, e.Analyzer, e.Message, e.Count)
		}
	}

	var werr error
	switch *format {
	case "text":
		werr = writeText(stdout, findings)
	case "json":
		werr = writeJSON(stdout, findings)
	case "sarif":
		werr = writeSARIF(stdout, analyzers, findings)
	}
	if werr != nil {
		fmt.Fprintf(stderr, "localvet: %v\n", werr)
		return 2
	}
	switch {
	case failed:
		return 2
	case len(findings) > 0:
		if suppressed > 0 {
			fmt.Fprintf(stderr, "localvet: %d new finding(s), %d grandfathered\n", len(findings), suppressed)
		} else {
			fmt.Fprintf(stderr, "localvet: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// resolvePatterns expands package patterns to module import paths.
func resolvePatterns(patterns []string, modulePath, moduleDir, cwd string) ([]string, error) {
	var paths []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			all, err := analysis.ModulePackages(modulePath, moduleDir)
			if err != nil {
				return nil, err
			}
			for _, p := range all {
				if !seen[p] {
					seen[p] = true
					paths = append(paths, p)
				}
			}
		default:
			dir := pat
			if !filepath.IsAbs(dir) {
				dir = filepath.Join(cwd, dir)
			}
			rel, err := filepath.Rel(moduleDir, dir)
			if err != nil || strings.HasPrefix(rel, "..") {
				return nil, fmt.Errorf("pattern %q is outside the module", pat)
			}
			p := modulePath
			if rel != "." {
				p = modulePath + "/" + filepath.ToSlash(rel)
			}
			if !seen[p] {
				seen[p] = true
				paths = append(paths, p)
			}
		}
	}
	return paths, nil
}
