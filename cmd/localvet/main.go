// Command localvet is the multichecker for the repository's LOCAL-model
// determinism & purity contract (DESIGN.md, "Model purity & static
// enforcement"). It type-checks every package of the module from source
// (stdlib only — no external tooling) and runs the internal/analysis suite:
//
//	norawrand    randomness only via internal/rng (Env.Rand)
//	nowallclock  no wall-clock reads outside the sim deadline machinery
//	nomapiter    map iteration order must not reach messages or outputs
//	errsentinel  kernel failures matched with errors.Is, never error text
//	phasedisc    Machine receiver/Env.Node shape discipline
//	obsinert     hot paths never consume observability results
//
// Usage:
//
//	localvet [-only a,b] [package-pattern]
//
// The only supported patterns are "./..." (the whole module, the default)
// and module-relative directories like ./internal/mis. Exit status: 0 clean,
// 1 findings, 2 operational error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"locality/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// contractAnalyzers builds the suite with the repository's sanctioned
// exceptions. These exceptions ARE the contract, so they live here, not in
// per-package config files:
//
//   - internal/sim may read the clock: Config.Deadline is the watchdog that
//     reaps runaway concurrent runs, and the wall clock is its whole point.
//   - internal/jobs and cmd/localityd may read the clock: the supervision
//     layer's job deadlines, drain grace periods and request timeouts are
//     wall-clock by nature. Experiment results stay deterministic — the
//     clock only bounds *whether* a sweep finishes, never what it computes.
//   - cmd/localbench may read the clock: its -bench-json mode measures
//     wall-clock ns/op by definition. The measured experiments themselves
//     remain clock-free.
//   - internal/harness/retry.go (and only that file of the harness) may
//     read the clock: waitAttempt is the backoff wait between retry
//     attempts. The backoff *schedule* is pure seeded arithmetic; the wait
//     itself is the file's single sanctioned timer.
//   - internal/obs/clock.go (and only that file of the obs package) may
//     read the clock: run-report timing is wall-clock telemetry by design,
//     and confining the reads to one file keeps the rest of the package —
//     the metric types the hot paths' hooks feed — provably clock-free.
//   - internal/cluster may read the clock: the coordinator's request
//     timeouts, poll cadence and health-probe intervals are wall-clock
//     supervision, like internal/jobs. The sweep results it merges stay
//     deterministic — timing decides which shard computes a batch, never
//     the batch's bytes (DESIGN.md §10).
//   - internal/fault machines may observe Env.Node: the fault shim maps
//     itself to a host vertex to look up its entry in the fault plan —
//     instrumentation by design, documented in fault.go.
//   - internal/sim and internal/harness are the obsinert hot paths, and
//     internal/cluster joins them: calls into internal/obs there must be
//     fire-and-forget statements, so telemetry can never influence a run —
//     for the coordinator, so failover decisions never consume their own
//     metrics (DESIGN.md §9–10).
func contractAnalyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		analysis.NewNoRawRand(analysis.NoRawRandOptions{}),
		analysis.NewNoWallClock(analysis.NoWallClockOptions{
			AllowPackages: []string{
				"locality/internal/sim",
				"locality/internal/jobs",
				"locality/internal/cluster",
				"locality/cmd/localityd",
				"locality/cmd/localbench",
			},
			AllowFiles: []string{
				"internal/harness/retry.go",
				"internal/obs/clock.go",
			},
		}),
		analysis.NewNoMapIter(analysis.NoMapIterOptions{}),
		analysis.NewErrSentinel(analysis.ErrSentinelOptions{}),
		analysis.NewPhaseDisc(analysis.PhaseDiscOptions{
			AllowNodePackages: []string{"locality/internal/fault"},
		}),
		analysis.NewObsInert(analysis.ObsInertOptions{
			ObsPackages: []string{"locality/internal/obs"},
			HotPackages: []string{
				"locality/internal/sim",
				"locality/internal/harness",
				"locality/internal/cluster",
			},
		}),
	}
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("localvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := contractAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(stderr, "localvet: unknown analyzer %q\n", name)
			return 2
		}
		analyzers = filtered
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "localvet: %v\n", err)
		return 2
	}
	moduleDir, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "localvet: %v\n", err)
		return 2
	}
	const modulePath = "locality"

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := resolvePatterns(patterns, modulePath, moduleDir, cwd)
	if err != nil {
		fmt.Fprintf(stderr, "localvet: %v\n", err)
		return 2
	}

	loader := analysis.NewLoader(modulePath, moduleDir)
	loader.IncludeTests = true
	findings := 0
	failed := false
	for _, path := range paths {
		p, err := loader.Load(path)
		if err != nil {
			fmt.Fprintf(stderr, "localvet: %v\n", err)
			failed = true
			continue
		}
		var diags []diag
		for _, a := range analyzers {
			name := a.Name
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      p.Fset,
				Files:     p.Files,
				Pkg:       p.Types,
				TypesInfo: p.Info,
				Report: func(d analysis.Diagnostic) {
					diags = append(diags, diag{analyzer: name, d: d})
				},
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(stderr, "localvet: %s on %s: %v\n", a.Name, path, err)
				failed = true
			}
		}
		sort.Slice(diags, func(i, j int) bool { return diags[i].d.Pos < diags[j].d.Pos })
		for _, d := range diags {
			pos := p.Fset.Position(d.d.Pos)
			file := pos.Filename
			if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", file, pos.Line, pos.Column, d.analyzer, d.d.Message)
			findings++
		}
	}
	switch {
	case failed:
		return 2
	case findings > 0:
		fmt.Fprintf(stderr, "localvet: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// diag pairs a diagnostic with the analyzer that produced it.
type diag struct {
	analyzer string
	d        analysis.Diagnostic
}

// resolvePatterns expands package patterns to module import paths.
func resolvePatterns(patterns []string, modulePath, moduleDir, cwd string) ([]string, error) {
	var paths []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			all, err := analysis.ModulePackages(modulePath, moduleDir)
			if err != nil {
				return nil, err
			}
			for _, p := range all {
				if !seen[p] {
					seen[p] = true
					paths = append(paths, p)
				}
			}
		default:
			dir := pat
			if !filepath.IsAbs(dir) {
				dir = filepath.Join(cwd, dir)
			}
			rel, err := filepath.Rel(moduleDir, dir)
			if err != nil || strings.HasPrefix(rel, "..") {
				return nil, fmt.Errorf("pattern %q is outside the module", pat)
			}
			p := modulePath
			if rel != "." {
				p = modulePath + "/" + filepath.ToSlash(rel)
			}
			if !seen[p] {
				seen[p] = true
				paths = append(paths, p)
			}
		}
	}
	return paths, nil
}
