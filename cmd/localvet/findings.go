package main

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"locality/internal/analysis"
)

// A Finding is one diagnostic in driver form: analyzer, module-relative
// file, position and message. File is slash-separated and relative to the
// module root so findings — and the baseline keys built from them — are
// stable across checkouts and working directories.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// sortFindings orders findings for output and diffing: file, line, column,
// analyzer, message.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// writeText renders findings in the classic vet line format.
func writeText(w io.Writer, fs []Finding) error {
	for _, f := range fs {
		if _, err := fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Column, f.Analyzer, f.Message); err != nil {
			return err
		}
	}
	return nil
}

// writeJSON renders findings as a JSON array (possibly empty, never null).
func writeJSON(w io.Writer, fs []Finding) error {
	if fs == nil {
		fs = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fs)
}

// SARIF 2.1.0 skeleton — the minimal subset GitHub code scanning and SARIF
// viewers consume: one run, one rule per analyzer, one result per finding.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// writeSARIF renders findings as a SARIF 2.1.0 log. Every configured
// analyzer appears as a rule even when clean, so burndown dashboards can
// distinguish "checked and clean" from "not checked".
func writeSARIF(w io.Writer, analyzers []*analysis.Analyzer, fs []Finding) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(fs))
	for _, f := range fs {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Column},
				},
			}},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "localvet", Rules: rules}},
			Results: results,
		}},
	})
}
