package main

import (
	"bytes"
	"testing"
)

// TestModuleSelfClean runs the full localvet suite — all analyzers, whole
// module, committed baseline — inside go test, so `go test ./...` fails the
// moment a contract violation or a stale exemption lands, without waiting
// for the dedicated lint step. This is the acceptance gate for the
// determinism contract: the baseline is empty, so the module must be clean.
func TestModuleSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is a few seconds; skipped with -short")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-baseline", "../../.localvet-baseline.json", "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("localvet over the module = exit %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
}
