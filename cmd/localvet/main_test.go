package main

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunClean runs the gate on a package that honors the contract.
func TestRunClean(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"../../internal/rng"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

// TestRunFindings points the gate at the norawrand test fixture, which
// deliberately imports math/rand, and expects exit code 1 with a
// file:line:col diagnostic.
func TestRunFindings(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-only", "norawrand", "../../internal/analysis/testdata/src/norawrand"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run exited %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "norawrand: import of \"math/rand\"") {
		t.Fatalf("expected a norawrand diagnostic, got:\n%s", stdout.String())
	}
}

// TestRunList checks the -list inventory includes every analyzer.
func TestRunList(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run -list exited %d", code)
	}
	for _, name := range []string{
		"norawrand", "nowallclock", "nomapiter", "errsentinel", "phasedisc",
		"obsinert", "nondetflow", "goroutinedisc", "mutexhold", "ctxflow",
	} {
		if !strings.Contains(stdout.String(), name) {
			t.Fatalf("-list output missing %q:\n%s", name, stdout.String())
		}
	}
}

// TestRunUnknownAnalyzer checks the usage-error path: exit 2, every unknown
// name reported, and the valid names listed so the caller need not run
// -list separately.
func TestRunUnknownAnalyzer(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-only", "nope,alsonope,mutexhold"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run exited %d for unknown analyzers, want 2", code)
	}
	for _, want := range []string{`"nope"`, `"alsonope"`, "valid:", "nondetflow", "ctxflow"} {
		if !strings.Contains(stderr.String(), want) {
			t.Fatalf("unknown-analyzer error missing %q:\n%s", want, stderr.String())
		}
	}
}

// TestRunBadFormat checks -format validation.
func TestRunBadFormat(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-format", "xml"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run exited %d for unknown format, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown format") {
		t.Fatalf("expected a format error, got:\n%s", stderr.String())
	}
}

// TestRunJSON checks the machine-readable output: a JSON array of findings
// with analyzer, module-relative file, position and message.
func TestRunJSON(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-only", "norawrand", "-format", "json",
		"../../internal/analysis/testdata/src/norawrand"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run exited %d, want 1\nstderr: %s", code, stderr.String())
	}
	var fs []Finding
	if err := json.Unmarshal([]byte(stdout.String()), &fs); err != nil {
		t.Fatalf("output is not a JSON finding array: %v\n%s", err, stdout.String())
	}
	if len(fs) == 0 {
		t.Fatal("expected findings in JSON output")
	}
	f := fs[0]
	if f.Analyzer != "norawrand" || f.Line == 0 ||
		!strings.HasPrefix(f.File, "internal/analysis/testdata/src/norawrand/") {
		t.Fatalf("unexpected finding shape: %+v", f)
	}
}

// TestRunSARIF checks the SARIF envelope: version 2.1.0, a rule per
// configured analyzer, one result per finding.
func TestRunSARIF(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-only", "norawrand", "-format", "sarif",
		"../../internal/analysis/testdata/src/norawrand"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run exited %d, want 1\nstderr: %s", code, stderr.String())
	}
	var log sarifLog
	if err := json.Unmarshal([]byte(stdout.String()), &log); err != nil {
		t.Fatalf("output is not SARIF JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected SARIF envelope: version=%q runs=%d", log.Version, len(log.Runs))
	}
	run0 := log.Runs[0]
	if run0.Tool.Driver.Name != "localvet" || len(run0.Tool.Driver.Rules) != 1 {
		t.Fatalf("unexpected SARIF tool: %+v", run0.Tool.Driver)
	}
	if len(run0.Results) == 0 || run0.Results[0].RuleID != "norawrand" {
		t.Fatalf("unexpected SARIF results: %+v", run0.Results)
	}
}

// TestRunBaseline exercises the grandfathering round-trip: -write-baseline
// captures the fixture's findings, a second run against that baseline is
// clean (exit 0), and a baseline entry matching nothing is reported stale.
func TestRunBaseline(t *testing.T) {
	dir := t.TempDir()
	bl := filepath.Join(dir, "baseline.json")
	fixture := "../../internal/analysis/testdata/src/norawrand"

	var stdout, stderr strings.Builder
	if code := run([]string{"-only", "norawrand", "-baseline", bl, "-write-baseline", fixture}, &stdout, &stderr); code != 0 {
		t.Fatalf("-write-baseline exited %d\nstderr: %s", code, stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-only", "norawrand", "-baseline", bl, fixture}, &stdout, &stderr); code != 0 {
		t.Fatalf("baselined run exited %d, want 0\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
	if stdout.String() != "" {
		t.Fatalf("grandfathered findings still printed:\n%s", stdout.String())
	}

	// A clean package against the same baseline: nothing matches, so every
	// entry is stale — reported, but not a failure.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-only", "norawrand", "-baseline", bl, "../../internal/rng"}, &stdout, &stderr); code != 0 {
		t.Fatalf("stale-baseline run exited %d, want 0\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "stale baseline entry") {
		t.Fatalf("expected stale-entry warnings, got:\n%s", stderr.String())
	}
}

// TestWriteBaselineRequiresPath checks the flag dependency.
func TestWriteBaselineRequiresPath(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-write-baseline"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run exited %d, want 2", code)
	}
}
