package main

import (
	"strings"
	"testing"
)

// TestRunClean runs the gate on a package that honors the contract.
func TestRunClean(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"../../internal/rng"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

// TestRunFindings points the gate at the norawrand test fixture, which
// deliberately imports math/rand, and expects exit code 1 with a
// file:line:col diagnostic.
func TestRunFindings(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-only", "norawrand", "../../internal/analysis/testdata/src/norawrand"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run exited %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "norawrand: import of \"math/rand\"") {
		t.Fatalf("expected a norawrand diagnostic, got:\n%s", stdout.String())
	}
}

// TestRunList checks the -list inventory includes every analyzer.
func TestRunList(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run -list exited %d", code)
	}
	for _, name := range []string{"norawrand", "nowallclock", "nomapiter", "errsentinel", "phasedisc"} {
		if !strings.Contains(stdout.String(), name) {
			t.Fatalf("-list output missing %q:\n%s", name, stdout.String())
		}
	}
}

// TestRunUnknownAnalyzer checks the usage-error path.
func TestRunUnknownAnalyzer(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-only", "nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run exited %d for an unknown analyzer, want 2", code)
	}
}
