package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// The baseline is the grandfathering mechanism: a committed multiset of
// known findings that CI tolerates while they are burned down. Keys are
// (analyzer, file, message) — deliberately excluding line numbers, so
// unrelated edits that shift a grandfathered finding do not break the
// build, while any *new* finding (or a new duplicate of an old one) fails
// immediately. Entries that no longer match anything are reported as stale
// so the file only ever shrinks.
type baselineFile struct {
	Version  int             `json:"version"`
	Findings []baselineEntry `json:"findings"`
}

type baselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

// baselineKey is the identity grandfathering matches on.
type baselineKey struct {
	Analyzer, File, Message string
}

// loadBaseline reads and validates a baseline file.
func loadBaseline(path string) (map[baselineKey]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	if bf.Version != 1 {
		return nil, fmt.Errorf("baseline %s: unsupported version %d", path, bf.Version)
	}
	counts := make(map[baselineKey]int, len(bf.Findings))
	for _, e := range bf.Findings {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		counts[baselineKey{e.Analyzer, e.File, e.Message}] += n
	}
	return counts, nil
}

// writeBaseline persists the findings as a fresh baseline multiset.
func writeBaseline(path string, fs []Finding) error {
	counts := map[baselineKey]int{}
	for _, f := range fs {
		counts[baselineKey{f.Analyzer, f.File, f.Message}]++
	}
	entries := make([]baselineEntry, 0, len(counts))
	for k, n := range counts {
		entries = append(entries, baselineEntry{Analyzer: k.Analyzer, File: k.File, Message: k.Message, Count: n})
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	data, err := json.MarshalIndent(baselineFile{Version: 1, Findings: entries}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// applyBaseline splits findings into new (kept) and grandfathered
// (suppressed), and returns the stale baseline entries nothing matched.
func applyBaseline(fs []Finding, counts map[baselineKey]int) (fresh []Finding, suppressed int, stale []baselineEntry) {
	remaining := make(map[baselineKey]int, len(counts))
	for k, n := range counts {
		remaining[k] = n
	}
	for _, f := range fs {
		k := baselineKey{f.Analyzer, f.File, f.Message}
		if remaining[k] > 0 {
			remaining[k]--
			suppressed++
			continue
		}
		fresh = append(fresh, f)
	}
	for k, n := range remaining {
		if n > 0 {
			stale = append(stale, baselineEntry{Analyzer: k.Analyzer, File: k.File, Message: k.Message, Count: n})
		}
	}
	sort.Slice(stale, func(i, j int) bool {
		a, b := stale[i], stale[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return fresh, suppressed, stale
}
