package main

// The -bench-json mode: the perf trajectory of the experiment suite, one
// JSON artifact per invocation. Each experiment is timed at quick scale (the
// same scale the tests run, so CI numbers are comparable across machines of
// one class), and the artifact records ns/op, allocs/op and rows/s per
// experiment. When the output directory already holds an earlier artifact,
// the run compares against the lexically latest one — the stamp format makes
// lexical order chronological — and fails on a >-threshold ns/op regression,
// which is what lets CI catch a perf cliff in review instead of after merge.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"locality/internal/artifact"
	"locality/internal/harness"
)

// benchExperiments is the fixed measurement order (never a map iteration:
// the artifact must be byte-stable given identical measurements).
var benchExperiments = []string{
	"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11",
	"E12", "E13", "A1", "A2", "A3",
}

// benchSchema versions the artifact layout.
const benchSchema = "locality-bench/v1"

// benchStampFormat makes lexical order chronological.
const benchStampFormat = "20060102T150405Z"

type benchEntry struct {
	Experiment  string  `json:"experiment"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Rows        int     `json:"rows"`
	RowsPerSec  float64 `json:"rows_per_sec"`
	Iters       int     `json:"iters"`
}

// benchFile is the artifact header plus entries. The header records the
// measurement environment's provenance — Go version, GOOS/GOARCH,
// GOMAXPROCS, worker count — so a baseline comparison that crosses machines
// or toolchains is visible in the artifacts it compared.
type benchFile struct {
	Schema     string       `json:"schema"`
	Stamp      string       `json:"stamp"`
	Go         string       `json:"go"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Quick      bool         `json:"quick"`
	Seed       uint64       `json:"seed"`
	Workers    int          `json:"workers"`
	Entries    []benchEntry `json:"entries"`
}

// newBenchFile stamps an artifact header with the measurement environment's
// provenance.
func newBenchFile(seed uint64, workers int) benchFile {
	return benchFile{
		Schema:     benchSchema,
		Stamp:      time.Now().UTC().Format(benchStampFormat),
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      true,
		Seed:       seed,
		Workers:    workers,
	}
}

// benchOne measures one experiment at quick scale: a warmup run, then timed
// iterations until minTime (or minIters) is reached.
func benchOne(id string, cfg harness.Config, minTime time.Duration, minIters int) (benchEntry, error) {
	driver, ok := harness.ByID(id)
	if !ok {
		driver, ok = harness.ByIDSupplementary(id)
	}
	if !ok {
		return benchEntry{}, fmt.Errorf("unknown experiment %q", id)
	}
	tbl := driver(cfg) // warmup: faults surface here, steady-state after
	rows := len(tbl.Rows)

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	allocs0 := ms.Mallocs
	start := time.Now()
	iters := 0
	for elapsed := time.Duration(0); elapsed < minTime || iters < minIters; {
		driver(cfg)
		iters++
		elapsed = time.Since(start)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms)

	e := benchEntry{
		Experiment:  id,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerOp: float64(ms.Mallocs-allocs0) / float64(iters),
		Rows:        rows,
		Iters:       iters,
	}
	if elapsed > 0 {
		e.RowsPerSec = float64(rows*iters) / elapsed.Seconds()
	}
	return e, nil
}

// latestBaseline returns the lexically latest usable BENCH_*.json in dir
// (zero-length debris skipped — see internal/artifact), or "" when none
// exists.
func latestBaseline(dir string) (string, error) {
	return artifact.Latest(dir, "BENCH")
}

// regression describes one experiment exceeding the ns/op threshold.
type regression struct {
	experiment       string
	baseline, now    float64
	pctChange        float64
}

// compareBaseline flags entries whose ns/op regressed by more than pct
// percent against the baseline. Entries absent from the baseline, and
// baseline entries faster than minNs (too noisy to gate on), are skipped.
func compareBaseline(baseline, current []benchEntry, pct, minNs float64) []regression {
	base := make(map[string]benchEntry, len(baseline))
	for _, e := range baseline {
		base[e.Experiment] = e
	}
	var regs []regression
	for _, e := range current {
		b, ok := base[e.Experiment]
		if !ok || b.NsPerOp < minNs {
			continue
		}
		change := (e.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		if change > pct {
			regs = append(regs, regression{e.Experiment, b.NsPerOp, e.NsPerOp, change})
		}
	}
	return regs
}

// runBenchJSON is the -bench-json entry point. It writes
// dir/BENCH_<stamp>.json and returns the process exit code: 0 on success, 1
// when a baseline exists and any experiment regressed past regressPct
// (<= 0 disables the gate).
func runBenchJSON(dir string, seed uint64, workers int, regressPct float64) int {
	cfg := harness.Config{Quick: true, Seed: seed, Workers: workers}
	out := newBenchFile(seed, workers)
	for _, id := range benchExperiments {
		e, err := benchOne(id, cfg, 200*time.Millisecond, 2)
		if err != nil {
			fmt.Fprintf(os.Stderr, "localbench: bench %s: %v\n", id, err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "bench %-4s %12.0f ns/op %12.0f allocs/op %10.0f rows/s (%d iters)\n",
			e.Experiment, e.NsPerOp, e.AllocsPerOp, e.RowsPerSec, e.Iters)
		out.Entries = append(out.Entries, e)
	}

	baselinePath, err := latestBaseline(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "localbench: scanning for baseline: %v\n", err)
		return 2
	}

	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "localbench: encoding: %v\n", err)
		return 2
	}
	path := filepath.Join(dir, "BENCH_"+out.Stamp+".json")
	if err := os.WriteFile(path, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "localbench: writing %s: %v\n", path, err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "localbench: wrote %s\n", path)

	if baselinePath == "" || regressPct <= 0 {
		return 0
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "localbench: reading baseline %s: %v\n", baselinePath, err)
		return 2
	}
	var baseline benchFile
	if err := json.Unmarshal(raw, &baseline); err != nil {
		fmt.Fprintf(os.Stderr, "localbench: parsing baseline %s: %v\n", baselinePath, err)
		return 2
	}
	// Gate only on experiments slow enough (>= 1ms) for timing noise to
	// stay below the threshold.
	regs := compareBaseline(baseline.Entries, out.Entries, regressPct, 1e6)
	if len(regs) == 0 {
		fmt.Fprintf(os.Stderr, "localbench: no >%g%% ns/op regression vs %s\n", regressPct, baselinePath)
		return 0
	}
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "localbench: REGRESSION %s: %.0f -> %.0f ns/op (+%.1f%% > %g%%) vs %s\n",
			r.experiment, r.baseline, r.now, r.pctChange, regressPct, baselinePath)
	}
	return 1
}
