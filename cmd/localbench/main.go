// Command localbench regenerates the experiment tables of EXPERIMENTS.md:
// one table per quantitative claim of the paper (see DESIGN.md's experiment
// index E1–E11).
//
// Usage:
//
//	localbench [-experiment=E1|...|E13|all] [-quick] [-seed N] [-workers N] [-format text|csv|markdown] [-run-report PATH]
//	localbench -bench-json [-bench-dir DIR] [-bench-regress PCT] [-seed N] [-workers N]
//
// Full mode (the default) matches the EXPERIMENTS.md record and takes a few
// minutes; -quick shrinks every sweep to run in seconds. -workers computes
// sweep rows in parallel without changing a byte of output. -run-report
// writes a JSONL telemetry artifact (per-round simulator counters, per-batch
// sweep timing; see internal/obs) alongside the tables — the tables
// themselves are byte-identical with or without it. -bench-json times every
// experiment at quick scale, writes BENCH_<stamp>.json, and — when an
// earlier artifact exists in -bench-dir — exits nonzero on a
// >-bench-regress% ns/op regression (see bench.go).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"locality/internal/harness"
	"locality/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		experiment = flag.String("experiment", "all", "experiment id (E1..E13, A1..A3) or 'all'")
		quick      = flag.Bool("quick", false, "shrink sweeps to run in seconds")
		seed       = flag.Uint64("seed", 2016, "random seed for all experiments")
		workers    = flag.Int("workers", 1, "parallel row workers per sweep (output is identical at any count)")
		format     = flag.String("format", "text", "output format: text, csv or markdown")
		runReport  = flag.String("run-report", "", "write a JSONL run report (round/batch telemetry) to this path")

		benchJSON    = flag.Bool("bench-json", false, "benchmark every experiment at quick scale and write BENCH_<stamp>.json")
		benchDir     = flag.String("bench-dir", ".", "directory for BENCH_*.json artifacts (and where the baseline is looked up)")
		benchRegress = flag.Float64("bench-regress", 25, "fail on ns/op regressions above this percentage vs the latest baseline (0 disables)")
		version      = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Printf("localbench %s %s %s/%s\n", obs.Version(), runtime.Version(), runtime.GOOS, runtime.GOARCH)
		return 0
	}

	if *benchJSON {
		return runBenchJSON(*benchDir, *seed, *workers, *benchRegress)
	}

	cfg := harness.Config{Quick: *quick, Seed: *seed, Workers: *workers}
	if *runReport != "" {
		f, err := os.Create(*runReport)
		if err != nil {
			fmt.Fprintf(os.Stderr, "localbench: creating run report: %v\n", err)
			return 2
		}
		rep := obs.NewRunReport(f, obs.ReportMeta{
			Experiment: *experiment, Seed: *seed, Quick: *quick, Workers: *workers,
		})
		cfg.Obs = rep
		defer func() {
			if err := rep.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "localbench: writing run report: %v\n", err)
			}
			f.Close()
		}()
	}
	var tables []*harness.Table
	switch {
	case strings.EqualFold(*experiment, "all"):
		tables = append(harness.All(cfg), harness.AllSupplementary(cfg)...)
	default:
		driver, ok := harness.ByID(*experiment)
		if !ok {
			driver, ok = harness.ByIDSupplementary(strings.ToUpper(*experiment))
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "localbench: unknown experiment %q (want E1..E13, A1..A3 or all)\n", *experiment)
			return 2
		}
		tables = []*harness.Table{driver(cfg)}
	}

	for _, t := range tables {
		switch *format {
		case "text":
			t.Render(os.Stdout)
		case "csv":
			t.CSV(os.Stdout)
		case "markdown":
			t.Markdown(os.Stdout)
		default:
			fmt.Fprintf(os.Stderr, "localbench: unknown format %q\n", *format)
			return 2
		}
	}
	return 0
}
