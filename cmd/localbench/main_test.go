package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"locality/internal/harness"
)

// TestBenchOneMeasures smokes the per-experiment measurement on a cheap
// experiment: the entry must report positive time, the true row count, and
// at least the minimum iteration count.
func TestBenchOneMeasures(t *testing.T) {
	cfg := harness.Config{Quick: true, Seed: 7}
	e, err := benchOne("E4", cfg, time.Millisecond, 2)
	if err != nil {
		t.Fatalf("benchOne: %v", err)
	}
	tbl, _ := harness.ByID("E4")
	wantRows := len(tbl(cfg).Rows)
	if e.Experiment != "E4" || e.Rows != wantRows || e.Iters < 2 {
		t.Errorf("entry %+v: want experiment E4, rows %d, iters >= 2", e, wantRows)
	}
	if e.NsPerOp <= 0 || e.RowsPerSec <= 0 {
		t.Errorf("entry %+v: non-positive rates", e)
	}
}

func TestBenchOneUnknownExperiment(t *testing.T) {
	if _, err := benchOne("E99", harness.Config{Quick: true}, time.Millisecond, 1); err == nil {
		t.Fatal("benchOne accepted an unknown experiment")
	}
}

// TestBenchExperimentsResolve pins the measurement list to the registries:
// every ID must resolve, so the artifact always covers the full suite.
func TestBenchExperimentsResolve(t *testing.T) {
	for _, id := range benchExperiments {
		if _, ok := harness.ByID(id); ok {
			continue
		}
		if _, ok := harness.ByIDSupplementary(id); !ok {
			t.Errorf("benchExperiments lists %s, which no registry resolves", id)
		}
	}
}

func TestLatestBaseline(t *testing.T) {
	dir := t.TempDir()
	if got, err := latestBaseline(dir); err != nil || got != "" {
		t.Fatalf("empty dir: got (%q, %v), want no baseline", got, err)
	}
	for _, name := range []string{"BENCH_20260101T000000Z.json", "BENCH_20250601T120000Z.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := latestBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "BENCH_20260101T000000Z.json"); got != want {
		t.Errorf("latestBaseline = %q, want %q (lexically latest stamp)", got, want)
	}
}

func TestCompareBaseline(t *testing.T) {
	baseline := []benchEntry{
		{Experiment: "E1", NsPerOp: 10e6},
		{Experiment: "E2", NsPerOp: 10e6},
		{Experiment: "E3", NsPerOp: 1e3}, // below the 1ms noise floor
	}
	current := []benchEntry{
		{Experiment: "E1", NsPerOp: 14e6}, // +40%: regression
		{Experiment: "E2", NsPerOp: 11e6}, // +10%: within threshold
		{Experiment: "E3", NsPerOp: 1e6},  // huge relative jump, but noise-floored
		{Experiment: "E4", NsPerOp: 99e6}, // no baseline entry
	}
	regs := compareBaseline(baseline, current, 25, 1e6)
	if len(regs) != 1 || regs[0].experiment != "E1" {
		t.Fatalf("regressions %+v, want exactly E1", regs)
	}
	if regs[0].pctChange < 39 || regs[0].pctChange > 41 {
		t.Errorf("E1 pct change %.1f, want ~40", regs[0].pctChange)
	}
}

// TestBenchFileRoundTrip pins the artifact schema through JSON.
func TestBenchFileRoundTrip(t *testing.T) {
	in := benchFile{
		Schema: benchSchema, Stamp: "20260806T000000Z", Go: "go1.24",
		Quick: true, Seed: 7, Workers: 4,
		Entries: []benchEntry{{Experiment: "E4", NsPerOp: 1.5e6, AllocsPerOp: 12, Rows: 4, RowsPerSec: 2666, Iters: 3}},
	}
	enc, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out benchFile
	if err := json.Unmarshal(enc, &out); err != nil {
		t.Fatal(err)
	}
	if out.Schema != in.Schema || len(out.Entries) != 1 || out.Entries[0] != in.Entries[0] {
		t.Errorf("round trip mismatch: %+v vs %+v", out, in)
	}
}
