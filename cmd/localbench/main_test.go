package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"locality/internal/harness"
	"locality/internal/obs"
)

// TestBenchOneMeasures smokes the per-experiment measurement on a cheap
// experiment: the entry must report positive time, the true row count, and
// at least the minimum iteration count.
func TestBenchOneMeasures(t *testing.T) {
	cfg := harness.Config{Quick: true, Seed: 7}
	e, err := benchOne("E4", cfg, time.Millisecond, 2)
	if err != nil {
		t.Fatalf("benchOne: %v", err)
	}
	tbl, _ := harness.ByID("E4")
	wantRows := len(tbl(cfg).Rows)
	if e.Experiment != "E4" || e.Rows != wantRows || e.Iters < 2 {
		t.Errorf("entry %+v: want experiment E4, rows %d, iters >= 2", e, wantRows)
	}
	if e.NsPerOp <= 0 || e.RowsPerSec <= 0 {
		t.Errorf("entry %+v: non-positive rates", e)
	}
}

func TestBenchOneUnknownExperiment(t *testing.T) {
	if _, err := benchOne("E99", harness.Config{Quick: true}, time.Millisecond, 1); err == nil {
		t.Fatal("benchOne accepted an unknown experiment")
	}
}

// TestBenchExperimentsResolve pins the measurement list to the registries:
// every ID must resolve, so the artifact always covers the full suite.
func TestBenchExperimentsResolve(t *testing.T) {
	for _, id := range benchExperiments {
		if _, ok := harness.ByID(id); ok {
			continue
		}
		if _, ok := harness.ByIDSupplementary(id); !ok {
			t.Errorf("benchExperiments lists %s, which no registry resolves", id)
		}
	}
}

func TestLatestBaseline(t *testing.T) {
	dir := t.TempDir()
	if got, err := latestBaseline(dir); err != nil || got != "" {
		t.Fatalf("empty dir: got (%q, %v), want no baseline", got, err)
	}
	for _, name := range []string{"BENCH_20260101T000000Z.json", "BENCH_20250601T120000Z.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := latestBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "BENCH_20260101T000000Z.json"); got != want {
		t.Errorf("latestBaseline = %q, want %q (lexically latest stamp)", got, want)
	}
}

func TestCompareBaseline(t *testing.T) {
	baseline := []benchEntry{
		{Experiment: "E1", NsPerOp: 10e6},
		{Experiment: "E2", NsPerOp: 10e6},
		{Experiment: "E3", NsPerOp: 1e3}, // below the 1ms noise floor
	}
	current := []benchEntry{
		{Experiment: "E1", NsPerOp: 14e6}, // +40%: regression
		{Experiment: "E2", NsPerOp: 11e6}, // +10%: within threshold
		{Experiment: "E3", NsPerOp: 1e6},  // huge relative jump, but noise-floored
		{Experiment: "E4", NsPerOp: 99e6}, // no baseline entry
	}
	regs := compareBaseline(baseline, current, 25, 1e6)
	if len(regs) != 1 || regs[0].experiment != "E1" {
		t.Fatalf("regressions %+v, want exactly E1", regs)
	}
	if regs[0].pctChange < 39 || regs[0].pctChange > 41 {
		t.Errorf("E1 pct change %.1f, want ~40", regs[0].pctChange)
	}
}

// TestBenchFileRoundTrip pins the artifact schema through JSON.
func TestBenchFileRoundTrip(t *testing.T) {
	in := benchFile{
		Schema: benchSchema, Stamp: "20260806T000000Z", Go: "go1.24",
		Quick: true, Seed: 7, Workers: 4,
		Entries: []benchEntry{{Experiment: "E4", NsPerOp: 1.5e6, AllocsPerOp: 12, Rows: 4, RowsPerSec: 2666, Iters: 3}},
	}
	enc, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out benchFile
	if err := json.Unmarshal(enc, &out); err != nil {
		t.Fatal(err)
	}
	if out.Schema != in.Schema || len(out.Entries) != 1 || out.Entries[0] != in.Entries[0] {
		t.Errorf("round trip mismatch: %+v vs %+v", out, in)
	}
}

// TestBenchFileProvenance: the artifact header records the measurement
// environment, so cross-machine or cross-toolchain baseline comparisons are
// visible in the artifacts themselves.
func TestBenchFileProvenance(t *testing.T) {
	f := newBenchFile(7, 4)
	if f.Schema != benchSchema || !f.Quick || f.Seed != 7 || f.Workers != 4 {
		t.Errorf("header identity = %+v", f)
	}
	if f.Go != runtime.Version() || f.GOOS != runtime.GOOS || f.GOARCH != runtime.GOARCH {
		t.Errorf("provenance = %s/%s/%s, want %s/%s/%s",
			f.Go, f.GOOS, f.GOARCH, runtime.Version(), runtime.GOOS, runtime.GOARCH)
	}
	if f.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		t.Errorf("GOMAXPROCS = %d, want %d", f.GOMAXPROCS, runtime.GOMAXPROCS(0))
	}
	if _, err := time.Parse(benchStampFormat, f.Stamp); err != nil {
		t.Errorf("stamp %q does not parse as %s: %v", f.Stamp, benchStampFormat, err)
	}
	enc, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"goos"`, `"goarch"`, `"gomaxprocs"`} {
		if !strings.Contains(string(enc), key) {
			t.Errorf("artifact JSON missing %s: %s", key, enc)
		}
	}
}

// TestRunReportArtifact drives an experiment the way -run-report does —
// RunReport as the harness Observer — and checks the JSONL artifact brackets
// telemetry records with meta and summary while the table stays byte-
// identical to an unobserved run.
func TestRunReportArtifact(t *testing.T) {
	driver, ok := harness.ByID("E2")
	if !ok {
		t.Fatal("E2 missing from registry")
	}
	base := harness.Config{Quick: true, Seed: 7}
	var want bytes.Buffer
	driver(base).Render(&want)

	path := filepath.Join(t.TempDir(), "report.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rep := obs.NewRunReport(f, obs.ReportMeta{Experiment: "E2", Seed: 7, Quick: true, Workers: 1})
	cfg := base
	cfg.Obs = rep
	var got bytes.Buffer
	driver(cfg).Render(&got)
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("run report changed the rendered table")
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("report has %d lines, want >= 3", len(lines))
	}
	var meta, sum map[string]any
	if err := json.Unmarshal(lines[0], &meta); err != nil {
		t.Fatalf("meta line: %v", err)
	}
	if meta["type"] != "meta" || meta["schema"] != obs.ReportSchema || meta["experiment"] != "E2" {
		t.Errorf("meta record = %v", meta)
	}
	if err := json.Unmarshal(lines[len(lines)-1], &sum); err != nil {
		t.Fatalf("summary line: %v", err)
	}
	if sum["type"] != "summary" || sum["total_rounds"] == float64(0) {
		t.Errorf("summary record = %v", sum)
	}
}
