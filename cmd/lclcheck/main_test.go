package main

import (
	"strings"
	"testing"
)

// TestRunSmoke exercises the full main path on instances small enough for a
// unit test. t=0, m=4, k=3 is Linial's base case: three colors are not
// enough for 0 rounds, so the engine must report a proof of impossibility.
func TestRunSmoke(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-t", "0", "-m", "4", "-k", "3"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "PROVED") {
		t.Fatalf("expected an impossibility proof, got:\n%s", stdout.String())
	}
}

// TestRunSmokeExists checks the positive branch: with a large enough
// palette a 0-round algorithm trivially exists (color = ID).
func TestRunSmokeExists(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-t", "0", "-m", "4", "-k", "4"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "EXISTS") {
		t.Fatalf("expected an existence witness, got:\n%s", stdout.String())
	}
}

// TestRunBadFlag checks that flag errors surface as exit code 2 on stderr.
func TestRunBadFlag(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run exited %d for an unknown flag, want 2", code)
	}
}
