// Command lclcheck runs the neighborhood-graph lower-bound engine: it
// decides, by exhaustive search, whether a t-round deterministic k-coloring
// algorithm exists on directed rings with ID space {1..m} — Linial's
// technique as a decision procedure.
//
// Usage:
//
//	lclcheck [-t 1] [-m 5] [-k 3] [-budget 16777216]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"locality"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lclcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		t      = fs.Int("t", 1, "number of rounds")
		m      = fs.Int("m", 5, "ID space size")
		k      = fs.Int("k", 3, "number of colors")
		budget = fs.Int("budget", 1<<24, "search-tree node budget")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ng := locality.BuildNeighborhoodGraph(*t, *m)
	fmt.Fprintf(stdout, "neighborhood graph B_%d(%d): %d views, %d constraint edges\n",
		*t, *m, ng.G.N(), ng.G.M())
	res := locality.RingAlgorithmExists(*t, *m, *k, *budget)
	if !res.Decided {
		fmt.Fprintf(stdout, "UNDECIDED after %d search nodes (raise -budget)\n", res.Nodes)
		return 1
	}
	if res.Colorable {
		fmt.Fprintf(stdout, "a %d-round %d-coloring algorithm EXISTS for rings with IDs from 1..%d "+
			"(witness coloring found in %d search nodes)\n", *t, *k, *m, res.Nodes)
	} else {
		fmt.Fprintf(stdout, "PROVED: no %d-round %d-coloring algorithm exists for rings with IDs from "+
			"1..%d (%d search nodes)\n", *t, *k, *m, res.Nodes)
	}
	return 0
}
