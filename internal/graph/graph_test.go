package graph

import (
	"testing"
	"testing/quick"

	"locality/internal/rng"
)

func TestBuilderValidation(t *testing.T) {
	tests := []struct {
		name  string
		n     int
		edges [][2]int
		ok    bool
	}{
		{"empty", 0, nil, true},
		{"single edge", 2, [][2]int{{0, 1}}, true},
		{"triangle", 3, [][2]int{{0, 1}, {1, 2}, {2, 0}}, true},
		{"self loop", 2, [][2]int{{0, 0}}, false},
		{"out of range", 2, [][2]int{{0, 2}}, false},
		{"negative", 2, [][2]int{{-1, 0}}, false},
		{"parallel", 3, [][2]int{{0, 1}, {1, 0}}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := NewBuilder(tt.n)
			for _, e := range tt.edges {
				b.AddEdge(e[0], e[1])
			}
			_, err := b.Build()
			if (err == nil) != tt.ok {
				t.Errorf("Build() error = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestPortsAndRev(t *testing.T) {
	g := NewBuilder(4).AddEdge(0, 1).AddEdge(0, 2).AddEdge(0, 3).AddEdge(1, 2).MustBuild()
	if g.N() != 4 || g.M() != 4 || g.MaxDegree() != 3 {
		t.Fatalf("basic counts wrong: n=%d m=%d Δ=%d", g.N(), g.M(), g.MaxDegree())
	}
	// Every half-edge's Rev must point back to itself.
	for v := 0; v < g.N(); v++ {
		for p, h := range g.Ports(v) {
			back := g.Ports(h.To)[h.Rev]
			if back.To != v || back.Rev != p || back.Edge != h.Edge {
				t.Errorf("Rev inconsistent at v=%d port=%d: %+v -> %+v", v, p, h, back)
			}
		}
	}
}

func TestRevConsistencyProperty(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		n := int(rawN%50) + 2
		r := rng.New(seed)
		g := UniformTree(n, r)
		for v := 0; v < g.N(); v++ {
			for p, h := range g.Ports(v) {
				back := g.Ports(h.To)[h.Rev]
				if back.To != v || back.Rev != p {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEdgeEndpoints(t *testing.T) {
	g := NewBuilder(3).AddEdge(2, 0).AddEdge(1, 2).MustBuild()
	u, v := g.EdgeEndpoints(0)
	if u != 0 || v != 2 {
		t.Errorf("edge 0 endpoints = (%d,%d), want (0,2)", u, v)
	}
	u, v = g.EdgeEndpoints(1)
	if u != 1 || v != 2 {
		t.Errorf("edge 1 endpoints = (%d,%d), want (1,2)", u, v)
	}
}

func TestBFS(t *testing.T) {
	g := Path(5)
	dist := g.BFS(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if dist[i] != want {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want)
		}
	}
	// Disconnected piece unreachable.
	g2 := NewBuilder(3).AddEdge(0, 1).MustBuild()
	if d := g2.BFS(0); d[2] != -1 {
		t.Errorf("unreachable vertex distance = %d, want -1", d[2])
	}
}

func TestComponents(t *testing.T) {
	g := NewBuilder(6).AddEdge(0, 1).AddEdge(2, 3).AddEdge(3, 4).MustBuild()
	comp, k := g.Components()
	if k != 3 {
		t.Fatalf("k = %d, want 3", k)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[3] != comp[4] {
		t.Errorf("components grouped wrong: %v", comp)
	}
	if comp[0] == comp[2] || comp[0] == comp[5] || comp[2] == comp[5] {
		t.Errorf("distinct components merged: %v", comp)
	}
}

func TestTreeForestPredicates(t *testing.T) {
	if !Path(7).IsTree() || !Path(7).IsForest() {
		t.Error("path should be a tree and a forest")
	}
	if Ring(5).IsTree() || Ring(5).IsForest() {
		t.Error("ring is not a tree/forest")
	}
	twoTrees := NewBuilder(4).AddEdge(0, 1).AddEdge(2, 3).MustBuild()
	if twoTrees.IsTree() {
		t.Error("disconnected forest is not a tree")
	}
	if !twoTrees.IsForest() {
		t.Error("two trees form a forest")
	}
}

func TestGirth(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{"triangle", Ring(3), 3},
		{"C5", Ring(5), 5},
		{"C10", Ring(10), 10},
		{"tree", Path(8), -1},
		{"grid", Grid(3, 3), 4},
		{"K4", NewBuilder(4).AddEdge(0, 1).AddEdge(0, 2).AddEdge(0, 3).
			AddEdge(1, 2).AddEdge(1, 3).AddEdge(2, 3).MustBuild(), 3},
		{"theta", NewBuilder(6).
			// Two vertices joined by paths of lengths 2, 3, 2: girth 2+2=4.
			AddEdge(0, 2).AddEdge(2, 1).
			AddEdge(0, 3).AddEdge(3, 4).AddEdge(4, 1).
			AddEdge(0, 5).AddEdge(5, 1).MustBuild(), 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.Girth(0); got != tt.want {
				t.Errorf("Girth = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestGirthLimit(t *testing.T) {
	// With a limit, either the true small girth is reported, or a value
	// >= limit (meaning "at least limit").
	g := Ring(20)
	if got := g.Girth(5); got < 5 {
		t.Errorf("Girth(limit=5) on C20 = %d, want >= 5", got)
	}
	tri := Ring(3)
	if got := tri.Girth(10); got != 3 {
		t.Errorf("Girth(limit=10) on C3 = %d, want 3", got)
	}
}

func TestPeelLayers(t *testing.T) {
	// A path peels completely in ceil-log-ish layers with threshold >= 2;
	// with threshold 1 only leaves peel each round: n/2 rounds on a path.
	g := Path(8)
	layer, rounds := g.PeelLayers(2)
	if rounds != 1 {
		t.Errorf("path with threshold 2 should peel in 1 round, got %d", rounds)
	}
	for v, l := range layer {
		if l != 1 {
			t.Errorf("layer[%d] = %d, want 1", v, l)
		}
	}
	_, rounds1 := g.PeelLayers(1)
	if rounds1 != 4 {
		t.Errorf("path of 8 with threshold 1 peels in %d rounds, want 4", rounds1)
	}
}

func TestPeelLayersStalls(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PeelLayers on C5 with threshold 1 should panic (stall)")
		}
	}()
	Ring(5).PeelLayers(1)
}

func TestPeelLayersForestLogarithmic(t *testing.T) {
	r := rng.New(11)
	g := UniformTree(4096, r)
	_, rounds := g.PeelLayers(2)
	if rounds > 30 {
		t.Errorf("peeling a 4096-vertex tree took %d rounds, expected O(log n)", rounds)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Ring(6)
	keep := []bool{true, true, true, false, true, true}
	sub, o2n, n2o := g.InducedSubgraph(keep)
	if sub.N() != 5 {
		t.Fatalf("sub.N() = %d, want 5", sub.N())
	}
	if sub.M() != 4 { // ring minus vertex 3 removes edges {2,3},{3,4}
		t.Errorf("sub.M() = %d, want 4", sub.M())
	}
	if o2n[3] != -1 {
		t.Errorf("dropped vertex mapped to %d, want -1", o2n[3])
	}
	for newV, oldV := range n2o {
		if o2n[oldV] != newV {
			t.Errorf("mapping mismatch: n2o[%d]=%d but o2n[%d]=%d", newV, oldV, oldV, o2n[oldV])
		}
	}
}

func TestComponentSizes(t *testing.T) {
	g := Path(10)
	keep := make([]bool, 10)
	for _, v := range []int{0, 1, 2, 5, 6, 9} {
		keep[v] = true
	}
	sizes := g.ComponentSizes(keep)
	counts := map[int]int{}
	for _, s := range sizes {
		counts[s]++
	}
	if counts[3] != 1 || counts[2] != 1 || counts[1] != 1 || len(sizes) != 3 {
		t.Errorf("ComponentSizes = %v, want one each of 3,2,1", sizes)
	}
}

func TestPowerGraph(t *testing.T) {
	g := Path(5)
	p2 := g.PowerGraph(2)
	wantEdges := map[[2]int]bool{
		{0, 1}: true, {1, 2}: true, {2, 3}: true, {3, 4}: true,
		{0, 2}: true, {1, 3}: true, {2, 4}: true,
	}
	if p2.M() != len(wantEdges) {
		t.Fatalf("P5^2 has %d edges, want %d", p2.M(), len(wantEdges))
	}
	for _, e := range p2.Edges() {
		if !wantEdges[e] {
			t.Errorf("unexpected edge %v in P5^2", e)
		}
	}
}

func TestBallVertices(t *testing.T) {
	g := Path(9)
	ball := g.BallVertices(4, 2)
	want := map[int]bool{2: true, 3: true, 4: true, 5: true, 6: true}
	if len(ball) != len(want) {
		t.Fatalf("ball size = %d, want %d", len(ball), len(want))
	}
	for _, v := range ball {
		if !want[v] {
			t.Errorf("unexpected ball vertex %d", v)
		}
	}
	if ball[0] != 4 {
		t.Errorf("ball[0] = %d, want the center 4", ball[0])
	}
}

func TestShufflePorts(t *testing.T) {
	r := rng.New(31)
	g := UniformTree(80, r)
	sg := g.ShufflePorts(r)
	if sg.N() != g.N() || sg.M() != g.M() || sg.MaxDegree() != g.MaxDegree() {
		t.Fatal("ShufflePorts changed basic counts")
	}
	// Same edge multiset.
	want := map[[2]int]bool{}
	for _, e := range g.Edges() {
		want[e] = true
	}
	for _, e := range sg.Edges() {
		if !want[e] {
			t.Fatalf("shuffled graph has new edge %v", e)
		}
	}
	// Rev invariants hold after shuffling.
	for v := 0; v < sg.N(); v++ {
		for p, h := range sg.Ports(v) {
			back := sg.Ports(h.To)[h.Rev]
			if back.To != v || back.Rev != p || back.Edge != h.Edge {
				t.Fatalf("Rev broken after shuffle at v=%d p=%d", v, p)
			}
		}
	}
	// Original untouched (immutability).
	for v := 0; v < g.N(); v++ {
		for p, h := range g.Ports(v) {
			back := g.Ports(h.To)[h.Rev]
			if back.To != v || back.Rev != p {
				t.Fatalf("original graph mutated at v=%d p=%d", v, p)
			}
		}
	}
}

// bruteForceGirth enumerates all simple cycles via DFS — exponential, only
// for cross-checking Girth on tiny graphs.
func bruteForceGirth(g *Graph) int {
	best := -1
	n := g.N()
	var path []int
	onPath := make([]bool, n)
	var dfs func(v int)
	dfs = func(v int) {
		for _, h := range g.Ports(v) {
			w := h.To
			if len(path) >= 3 && w == path[0] {
				if best < 0 || len(path) < best {
					best = len(path)
				}
				continue
			}
			if onPath[w] || w < path[0] { // canonical: cycles start at min vertex
				continue
			}
			onPath[w] = true
			path = append(path, w)
			dfs(w)
			path = path[:len(path)-1]
			onPath[w] = false
		}
	}
	for s := 0; s < n; s++ {
		path = append(path[:0], s)
		onPath[s] = true
		dfs(s)
		onPath[s] = false
	}
	return best
}

func TestGirthMatchesBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(9) + 3
		maxM := n * (n - 1) / 2
		m := r.Intn(maxM + 1)
		// Sample a random simple graph with m edges.
		var pairs [][2]int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				pairs = append(pairs, [2]int{u, v})
			}
		}
		r.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
		b := NewBuilder(n)
		for _, e := range pairs[:m] {
			b.AddEdge(e[0], e[1])
		}
		g := b.MustBuild()
		return g.Girth(0) == bruteForceGirth(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
