package graph

import (
	"fmt"

	"locality/internal/rng"
)

// This file implements the instance generators. Every family a proof in the
// paper runs on has a generator here:
//
//   - trees (random bounded-degree, uniform Prüfer, complete q-ary, paths,
//     stars, caterpillars) for the Δ-coloring results (§IV, §VI);
//   - rings for the Δ=2 dichotomy (Theorem 7) and Linial's log* bounds;
//   - Δ-regular bipartite graphs with a built-in proper Δ-edge coloring and
//     certified girth, the hard instances of Theorems 4 and 5;
//   - sparse bounded-degree random graphs for the toolbox experiments.
//
// Colors are 1-based throughout the library (0 means "uncolored").

// Path returns the path on n >= 1 vertices 0-1-2-...-(n-1).
func Path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.MustBuild()
}

// Ring returns the cycle on n >= 3 vertices.
func Ring(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: Ring needs n >= 3, got %d", n))
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.MustBuild()
}

// Star returns the star with one center (vertex 0) and n-1 leaves.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	return b.MustBuild()
}

// CompleteKAry returns the complete k-ary tree of the given depth
// (depth 0 = a single root). Interior vertices have degree k+1, so
// Δ = k+1 for depth >= 2.
func CompleteKAry(k, depth int) *Graph {
	if k < 1 || depth < 0 {
		panic(fmt.Sprintf("graph: CompleteKAry(k=%d, depth=%d) invalid", k, depth))
	}
	// Count vertices: 1 + k + k^2 + ... + k^depth.
	n := 1
	width := 1
	for d := 0; d < depth; d++ {
		width *= k
		n += width
	}
	b := NewBuilder(n)
	next := 1
	// BFS order construction: vertices 0..n-1 level by level.
	for v := 0; v < n && next < n; v++ {
		for c := 0; c < k && next < n; c++ {
			b.AddEdge(v, next)
			next++
		}
	}
	return b.MustBuild()
}

// Caterpillar returns a caterpillar tree: a spine path of length spine with
// legs leaves attached to every spine vertex. Δ = legs + 2 on interior
// spine vertices.
func Caterpillar(spine, legs int) *Graph {
	if spine < 1 || legs < 0 {
		panic(fmt.Sprintf("graph: Caterpillar(spine=%d, legs=%d) invalid", spine, legs))
	}
	n := spine + spine*legs
	b := NewBuilder(n)
	for i := 0; i+1 < spine; i++ {
		b.AddEdge(i, i+1)
	}
	next := spine
	for i := 0; i < spine; i++ {
		for l := 0; l < legs; l++ {
			b.AddEdge(i, next)
			next++
		}
	}
	return b.MustBuild()
}

// RandomTree returns a random tree on n vertices with maximum degree at most
// maxDeg, built by preferential-free random attachment: vertex i attaches to
// a uniformly random earlier vertex that still has residual degree. This is
// the workhorse instance family of the Δ-coloring experiments: for
// maxDeg = Δ it produces trees that actually exercise the Δ palette.
func RandomTree(n, maxDeg int, r *rng.Source) *Graph {
	if n < 1 {
		panic("graph: RandomTree needs n >= 1")
	}
	if n >= 2 && maxDeg < 2 {
		panic("graph: RandomTree needs maxDeg >= 2 for n >= 2")
	}
	b := NewBuilder(n)
	deg := make([]int, n)
	// Candidates with residual capacity; compacted lazily.
	candidates := make([]int, 0, n)
	if n > 0 {
		candidates = append(candidates, 0)
	}
	for v := 1; v < n; v++ {
		// Pick a uniformly random candidate with residual capacity.
		for {
			i := r.Intn(len(candidates))
			u := candidates[i]
			if deg[u] >= maxDeg {
				// Swap-remove exhausted candidate and retry.
				candidates[i] = candidates[len(candidates)-1]
				candidates = candidates[:len(candidates)-1]
				continue
			}
			b.AddEdge(u, v)
			deg[u]++
			deg[v]++
			if deg[u] >= maxDeg {
				candidates[i] = candidates[len(candidates)-1]
				candidates = candidates[:len(candidates)-1]
			}
			break
		}
		if deg[v] < maxDeg {
			candidates = append(candidates, v)
		}
	}
	return b.MustBuild()
}

// UniformTree returns a uniformly random labeled tree on n >= 1 vertices via
// Prüfer sequence decoding. Expected maximum degree is Θ(log n / log log n).
func UniformTree(n int, r *rng.Source) *Graph {
	if n < 1 {
		panic("graph: UniformTree needs n >= 1")
	}
	b := NewBuilder(n)
	if n == 1 {
		return b.MustBuild()
	}
	if n == 2 {
		return b.AddEdge(0, 1).MustBuild()
	}
	seq := make([]int, n-2)
	for i := range seq {
		seq[i] = r.Intn(n)
	}
	deg := make([]int, n)
	for i := range deg {
		deg[i] = 1
	}
	for _, s := range seq {
		deg[s]++
	}
	// Standard O(n log n)-free decode with a moving pointer over leaves.
	ptr := 0
	for deg[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for _, s := range seq {
		b.AddEdge(leaf, s)
		deg[s]--
		if deg[s] == 1 && s < ptr {
			leaf = s
		} else {
			ptr++
			for deg[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	// Join the last two leaves; one of them is vertex n-1.
	b.AddEdge(leaf, n-1)
	return b.MustBuild()
}

// EdgeColoredGraph bundles a graph with a proper edge coloring: Colors[e] in
// 1..NumColors for every edge id e, and no two edges sharing an endpoint
// have equal colors. This is the input format of the sinkless problems.
type EdgeColoredGraph struct {
	*Graph
	Colors    []int
	NumColors int
}

// ColorAtPort returns the color of the edge at the given port of v.
func (g *EdgeColoredGraph) ColorAtPort(v, port int) int {
	return g.Colors[g.Ports(v)[port].Edge]
}

// VerifyEdgeColoring checks the properness invariant; generators call it and
// tests call it on mutated inputs.
func (g *EdgeColoredGraph) VerifyEdgeColoring() error {
	if len(g.Colors) != g.M() {
		return fmt.Errorf("graph: edge color table has %d entries for %d edges", len(g.Colors), g.M())
	}
	for v := 0; v < g.N(); v++ {
		seen := make(map[int]int)
		for _, h := range g.Ports(v) {
			c := g.Colors[h.Edge]
			if c < 1 || c > g.NumColors {
				return fmt.Errorf("graph: edge %d has color %d outside 1..%d", h.Edge, c, g.NumColors)
			}
			if other, dup := seen[c]; dup {
				return fmt.Errorf("graph: vertex %d has two incident edges (%d, %d) with color %d", v, other, h.Edge, c)
			}
			seen[c] = h.Edge
		}
	}
	return nil
}

// RandomRegularBipartite returns a d-regular bipartite graph on 2*half
// vertices (left part 0..half-1, right part half..2*half-1) sampled from the
// permutation model: the union of d uniformly random perfect matchings, with
// matching index c giving edge color c+1 — a proper d-edge coloring for
// free, exactly as the lower-bound instances of Theorem 4 require.
// Permutation d-tuples creating parallel edges are rejected and resampled.
func RandomRegularBipartite(half, d int, r *rng.Source) *EdgeColoredGraph {
	if half < 1 || d < 1 || d > half {
		panic(fmt.Sprintf("graph: RandomRegularBipartite(half=%d, d=%d) invalid", half, d))
	}
	// Sample the d matchings sequentially; each starts as a uniform random
	// permutation whose conflicts with already-placed edges are repaired by
	// random transpositions (whole-tuple rejection would succeed with
	// probability only about e^{-d(d-1)/2}).
	used := make([]map[int]struct{}, half)
	for i := range used {
		used[i] = make(map[int]struct{}, d)
	}
	perms := make([][]int, d)
	for c := 0; c < d; c++ {
		perm := r.Perm(half)
		for attempt := 0; ; attempt++ {
			if attempt > 1000*(half+d) {
				panic("graph: RandomRegularBipartite matching repair stalled")
			}
			conflict := -1
			for i := 0; i < half; i++ {
				if _, dup := used[i][perm[i]]; dup {
					conflict = i
					break
				}
			}
			if conflict < 0 {
				break
			}
			j := r.Intn(half)
			perm[conflict], perm[j] = perm[j], perm[conflict]
		}
		for i := 0; i < half; i++ {
			used[i][perm[i]] = struct{}{}
		}
		perms[c] = perm
	}
	b := NewBuilder(2 * half)
	colors := make([]int, 0, d*half)
	for c := 0; c < d; c++ {
		for i := 0; i < half; i++ {
			b.AddEdge(i, half+perms[c][i])
			colors = append(colors, c+1)
		}
	}
	g := &EdgeColoredGraph{Graph: b.MustBuild(), Colors: colors, NumColors: d}
	if err := g.VerifyEdgeColoring(); err != nil {
		panic(fmt.Sprintf("graph: permutation model produced improper coloring: %v", err))
	}
	return g
}

// HighGirthRegular samples d-regular bipartite edge-colored graphs from the
// permutation model until one with girth >= minGirth is found (or attempts
// are exhausted, in which case it returns an error). The permutation model
// has girth Θ(log_d n) with constant probability once minGirth is below that
// bound, so callers should request girths they can afford.
func HighGirthRegular(half, d, minGirth, attempts int, r *rng.Source) (*EdgeColoredGraph, error) {
	for i := 0; i < attempts; i++ {
		g := RandomRegularBipartite(half, d, r)
		girth := g.Girth(minGirth)
		if girth < 0 || girth >= minGirth {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: no girth-%d %d-regular graph on %d+%d vertices found in %d attempts",
		minGirth, d, half, half, attempts)
}

// RandomBoundedDegree returns a random simple graph on n vertices with m
// edges and maximum degree at most maxDeg, by rejection sampling of edges.
// It panics if the target is infeasible (m > n*maxDeg/2).
func RandomBoundedDegree(n, m, maxDeg int, r *rng.Source) *Graph {
	if m > n*maxDeg/2 {
		panic(fmt.Sprintf("graph: RandomBoundedDegree infeasible: m=%d > n*maxDeg/2=%d", m, n*maxDeg/2))
	}
	deg := make([]int, n)
	seen := make(map[[2]int]struct{}, m)
	b := NewBuilder(n)
	added := 0
	stall := 0
	for added < m {
		u, v := r.Intn(n), r.Intn(n)
		if u == v || deg[u] >= maxDeg || deg[v] >= maxDeg {
			stall++
			if stall > 1000*(m+1) {
				panic("graph: RandomBoundedDegree stalled; parameters too tight")
			}
			continue
		}
		key := [2]int{u, v}
		if u > v {
			key = [2]int{v, u}
		}
		if _, dup := seen[key]; dup {
			stall++
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(u, v)
		deg[u]++
		deg[v]++
		added++
		stall = 0
	}
	return b.MustBuild()
}

// Grid returns the w x h grid graph (Δ <= 4).
func Grid(w, h int) *Graph {
	if w < 1 || h < 1 {
		panic(fmt.Sprintf("graph: Grid(%d,%d) invalid", w, h))
	}
	b := NewBuilder(w * h)
	at := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddEdge(at(x, y), at(x+1, y))
			}
			if y+1 < h {
				b.AddEdge(at(x, y), at(x, y+1))
			}
		}
	}
	return b.MustBuild()
}
