package graph

// This file contains the structural algorithms the proofs and experiments
// need: BFS, connected components, exact girth (used to certify the
// high-girth lower-bound instances), and degree-threshold peeling (the
// H-partition engine behind Barenboim–Elkin tree coloring).

// BFS returns the distance from src to every vertex (-1 if unreachable).
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, h := range g.adj[v] {
			if dist[h.To] < 0 {
				dist[h.To] = dist[v] + 1
				queue = append(queue, h.To)
			}
		}
	}
	return dist
}

// Components labels each vertex with a component id in [0, k) and returns
// the labels and the component count k.
func (g *Graph) Components() ([]int, int) {
	comp := make([]int, g.N())
	for i := range comp {
		comp[i] = -1
	}
	k := 0
	var stack []int
	for s := 0; s < g.N(); s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = k
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, h := range g.adj[v] {
				if comp[h.To] < 0 {
					comp[h.To] = k
					stack = append(stack, h.To)
				}
			}
		}
		k++
	}
	return comp, k
}

// IsConnected reports whether the graph is connected (true for n <= 1).
func (g *Graph) IsConnected() bool {
	if g.N() <= 1 {
		return true
	}
	_, k := g.Components()
	return k == 1
}

// IsTree reports whether the graph is a tree: connected with m = n-1.
func (g *Graph) IsTree() bool {
	return g.N() >= 1 && g.M() == g.N()-1 && g.IsConnected()
}

// IsForest reports whether the graph is acyclic.
func (g *Graph) IsForest() bool {
	_, k := g.Components()
	return g.M() == g.N()-k
}

// Girth returns the length of a shortest cycle, or -1 if the graph is
// acyclic. If limit > 0 the search stops early: any return value >= limit
// means only "girth at least limit" (the exact value is not determined).
// This is how the generators certify "girth >= 2t+2" cheaply.
//
// Method: from every vertex, BFS that detects the first non-tree edge
// closing a cycle; the shortest cycle through the BFS root found this way,
// minimized over roots, is the girth. O(n·m) worst case.
func (g *Graph) Girth(limit int) int {
	best := -1
	dist := make([]int, g.N())
	parentEdge := make([]int, g.N())
	for src := 0; src < g.N(); src++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		parentEdge[src] = -1
		queue := []int{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if best > 0 && 2*dist[v] >= best {
				break // no shorter cycle through src can be found deeper
			}
			for _, h := range g.adj[v] {
				if h.Edge == parentEdge[v] {
					continue
				}
				if dist[h.To] < 0 {
					dist[h.To] = dist[v] + 1
					parentEdge[h.To] = h.Edge
					queue = append(queue, h.To)
					continue
				}
				// Non-tree edge: cycle through src of length
				// dist[v] + dist[h.To] + 1 (upper bound; exact when the
				// meeting is on shortest paths, which BFS guarantees for
				// the first detection at each level).
				c := dist[v] + dist[h.To] + 1
				if best < 0 || c < best {
					best = c
				}
			}
		}
		if limit > 0 && best > 0 && best < limit {
			// Early exit: caller only needs to know the girth is below limit.
			return best
		}
	}
	return best
}

// PeelLayers partitions the vertices into layers by repeatedly removing all
// vertices whose remaining degree is at most threshold. layer[v] is the
// 1-based round at which v was removed; the second result is the number of
// layers. For forests and threshold >= 2 every vertex is eventually removed,
// with O(log n) layers; the function panics if peeling stalls (threshold too
// small for this graph), since callers pass thresholds their theory
// guarantees.
//
// This is the centralized reference implementation; the distributed one in
// package forest runs inside the simulator and is tested against this.
func (g *Graph) PeelLayers(threshold int) ([]int, int) {
	layer := make([]int, g.N())
	deg := make([]int, g.N())
	for v := range deg {
		deg[v] = g.Degree(v)
	}
	remaining := g.N()
	round := 0
	for remaining > 0 {
		round++
		var removed []int
		for v := 0; v < g.N(); v++ {
			if layer[v] == 0 && deg[v] <= threshold {
				removed = append(removed, v)
			}
		}
		if len(removed) == 0 {
			panic("graph: PeelLayers stalled; threshold too small for this graph")
		}
		for _, v := range removed {
			layer[v] = round
		}
		for _, v := range removed {
			for _, h := range g.adj[v] {
				deg[h.To]--
			}
			remaining--
		}
	}
	return layer, round
}

// InducedSubgraph returns the subgraph induced by keep (vertices with
// keep[v] true), together with the mapping old->new vertex index (-1 for
// dropped vertices) and new->old.
func (g *Graph) InducedSubgraph(keep []bool) (*Graph, []int, []int) {
	if len(keep) != g.N() {
		panic("graph: InducedSubgraph keep length mismatch")
	}
	oldToNew := make([]int, g.N())
	var newToOld []int
	for v := range oldToNew {
		if keep[v] {
			oldToNew[v] = len(newToOld)
			newToOld = append(newToOld, v)
		} else {
			oldToNew[v] = -1
		}
	}
	b := NewBuilder(len(newToOld))
	for _, e := range g.edges {
		if keep[e[0]] && keep[e[1]] {
			b.AddEdge(oldToNew[e[0]], oldToNew[e[1]])
		}
	}
	return b.MustBuild(), oldToNew, newToOld
}

// ComponentSizes returns the multiset of connected-component sizes of the
// subgraph induced by keep. It is the measurement primitive behind the
// graph-shattering experiments.
func (g *Graph) ComponentSizes(keep []bool) []int {
	sub, _, _ := g.InducedSubgraph(keep)
	comp, k := sub.Components()
	sizes := make([]int, k)
	for _, c := range comp {
		sizes[c]++
	}
	return sizes
}

// PowerGraph returns G^k: same vertex set, an edge {u,v} whenever
// 1 <= dist_G(u,v) <= k. Used by the speedup transforms (Theorems 6 and 8)
// and the Theorem 5 construction, which run Linial's algorithm on a power
// graph. Cost O(n · ball), so callers keep instances modest.
func (g *Graph) PowerGraph(k int) *Graph {
	if k < 1 {
		panic("graph: PowerGraph radius must be >= 1")
	}
	b := NewBuilder(g.N())
	dist := make([]int, g.N())
	for src := 0; src < g.N(); src++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if dist[v] == k {
				continue
			}
			for _, h := range g.adj[v] {
				if dist[h.To] < 0 {
					dist[h.To] = dist[v] + 1
					queue = append(queue, h.To)
					if h.To > src {
						b.AddEdge(src, h.To)
					}
				}
			}
		}
		// Distance-1..k vertices discovered above include only those first
		// seen from src; all are at true distance <= k, and every vertex at
		// distance <= k is discovered by BFS, so the edge set is exact.
	}
	return b.MustBuild()
}

// BallVertices returns the vertices at distance <= t from v, in BFS order.
func (g *Graph) BallVertices(v, t int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[v] = 0
	out := []int{v}
	for qi := 0; qi < len(out); qi++ {
		u := out[qi]
		if dist[u] == t {
			continue
		}
		for _, h := range g.adj[u] {
			if dist[h.To] < 0 {
				dist[h.To] = dist[u] + 1
				out = append(out, h.To)
			}
		}
	}
	return out
}
