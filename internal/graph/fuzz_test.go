package graph

import (
	"testing"

	"locality/internal/rng"
)

// FuzzGenerateTree drives RandomTree across the (seed, n, maxDeg) input
// space and checks the structural invariants the experiments rely on: the
// result is a tree on exactly n vertices (n-1 edges, connected, acyclic)
// respecting the degree cap, and the construction is deterministic in the
// seed.
func FuzzGenerateTree(f *testing.F) {
	f.Add(uint64(1), 1, 2)
	f.Add(uint64(7), 2, 2)
	f.Add(uint64(42), 64, 3)
	f.Add(uint64(0), 200, 16)
	f.Fuzz(func(t *testing.T, seed uint64, n, maxDeg int) {
		// Clamp into the documented domain; out-of-domain inputs panic by
		// contract and are not interesting to fuzz.
		n = 1 + mod(n, 256)
		maxDeg = 2 + mod(maxDeg, 15)

		g := RandomTree(n, maxDeg, rng.New(seed))
		if g.N() != n {
			t.Fatalf("RandomTree(%d, %d): got %d vertices", n, maxDeg, g.N())
		}
		if g.M() != n-1 {
			t.Fatalf("RandomTree(%d, %d): got %d edges, want %d", n, maxDeg, g.M(), n-1)
		}
		if !g.IsTree() {
			t.Fatalf("RandomTree(%d, %d) seed=%d: result is not a tree", n, maxDeg, seed)
		}
		for v := 0; v < n; v++ {
			if d := g.Degree(v); d > maxDeg {
				t.Fatalf("RandomTree(%d, %d): vertex %d has degree %d", n, maxDeg, v, d)
			}
		}

		// Same seed, same tree: compare the full port structure.
		h := RandomTree(n, maxDeg, rng.New(seed))
		for v := 0; v < n; v++ {
			gp, hp := g.Ports(v), h.Ports(v)
			if len(gp) != len(hp) {
				t.Fatalf("seed %d not reproducible: vertex %d degree %d vs %d", seed, v, len(gp), len(hp))
			}
			for i := range gp {
				if gp[i] != hp[i] {
					t.Fatalf("seed %d not reproducible: vertex %d port %d: %v vs %v", seed, v, i, gp[i], hp[i])
				}
			}
		}
	})
}

// mod maps x into [0, m) for any int, unlike the % operator on negatives.
func mod(x, m int) int {
	r := x % m
	if r < 0 {
		r += m
	}
	return r
}
