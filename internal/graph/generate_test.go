package graph

import (
	"testing"
	"testing/quick"

	"locality/internal/rng"
)

func TestPathRingStar(t *testing.T) {
	p := Path(6)
	if p.N() != 6 || p.M() != 5 || p.MaxDegree() != 2 || !p.IsTree() {
		t.Errorf("Path(6) malformed: n=%d m=%d Δ=%d", p.N(), p.M(), p.MaxDegree())
	}
	r := Ring(6)
	if r.N() != 6 || r.M() != 6 || r.MaxDegree() != 2 || r.Girth(0) != 6 {
		t.Errorf("Ring(6) malformed")
	}
	s := Star(6)
	if s.N() != 6 || s.M() != 5 || s.MaxDegree() != 5 || s.Degree(0) != 5 || !s.IsTree() {
		t.Errorf("Star(6) malformed")
	}
}

func TestCompleteKAry(t *testing.T) {
	tests := []struct {
		k, depth   int
		wantN      int
		wantMaxDeg int
	}{
		{2, 0, 1, 0},
		{2, 1, 3, 2},
		{2, 3, 15, 3},
		{3, 2, 13, 4},
	}
	for _, tt := range tests {
		g := CompleteKAry(tt.k, tt.depth)
		if g.N() != tt.wantN {
			t.Errorf("CompleteKAry(%d,%d).N() = %d, want %d", tt.k, tt.depth, g.N(), tt.wantN)
		}
		if g.MaxDegree() != tt.wantMaxDeg {
			t.Errorf("CompleteKAry(%d,%d).MaxDegree() = %d, want %d", tt.k, tt.depth, g.MaxDegree(), tt.wantMaxDeg)
		}
		if !g.IsTree() {
			t.Errorf("CompleteKAry(%d,%d) not a tree", tt.k, tt.depth)
		}
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(5, 3)
	if g.N() != 20 || !g.IsTree() {
		t.Fatalf("Caterpillar(5,3): n=%d tree=%v", g.N(), g.IsTree())
	}
	if g.MaxDegree() != 5 { // interior spine vertex: 2 spine + 3 legs
		t.Errorf("Caterpillar(5,3) Δ = %d, want 5", g.MaxDegree())
	}
}

func TestRandomTreeProperties(t *testing.T) {
	f := func(seed uint64, rawN uint16, rawD uint8) bool {
		n := int(rawN%500) + 1
		maxDeg := int(rawD%8) + 2
		g := RandomTree(n, maxDeg, rng.New(seed))
		return g.N() == n && g.IsTree() && g.MaxDegree() <= maxDeg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRandomTreeUsesDegreeBudget(t *testing.T) {
	// With maxDeg=3 and enough vertices, some vertex should actually reach
	// degree 3, otherwise the generator is too timid to exercise Δ palettes.
	g := RandomTree(200, 3, rng.New(5))
	if g.MaxDegree() != 3 {
		t.Errorf("RandomTree(200,3) max degree = %d, want 3", g.MaxDegree())
	}
}

func TestUniformTreeProperties(t *testing.T) {
	f := func(seed uint64, rawN uint16) bool {
		n := int(rawN%300) + 1
		g := UniformTree(n, rng.New(seed))
		return g.N() == n && g.IsTree()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUniformTreeDistribution(t *testing.T) {
	// There are 3 labeled trees on 3 vertices (the three choices of the
	// middle vertex). Each should appear about 1/3 of the time.
	counts := map[int]int{}
	r := rng.New(77)
	const draws = 3000
	for i := 0; i < draws; i++ {
		g := UniformTree(3, r)
		for v := 0; v < 3; v++ {
			if g.Degree(v) == 2 {
				counts[v]++
			}
		}
	}
	for v := 0; v < 3; v++ {
		if counts[v] < draws/3-200 || counts[v] > draws/3+200 {
			t.Errorf("middle vertex %d occurred %d/%d times, want about 1/3", v, counts[v], draws)
		}
	}
}

func TestRandomRegularBipartite(t *testing.T) {
	r := rng.New(9)
	for _, tc := range []struct{ half, d int }{{4, 3}, {16, 3}, {32, 5}, {10, 2}} {
		g := RandomRegularBipartite(tc.half, tc.d, r)
		if g.N() != 2*tc.half || g.M() != tc.d*tc.half {
			t.Fatalf("half=%d d=%d: n=%d m=%d", tc.half, tc.d, g.N(), g.M())
		}
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != tc.d {
				t.Fatalf("vertex %d degree = %d, want %d", v, g.Degree(v), tc.d)
			}
		}
		if err := g.VerifyEdgeColoring(); err != nil {
			t.Fatalf("edge coloring invalid: %v", err)
		}
		// Bipartite: all edges cross the parts.
		for _, e := range g.Edges() {
			if (e[0] < tc.half) == (e[1] < tc.half) {
				t.Fatalf("edge %v does not cross parts", e)
			}
		}
	}
}

func TestVerifyEdgeColoringCatchesMutations(t *testing.T) {
	g := RandomRegularBipartite(8, 3, rng.New(4))
	// Corrupt: give two edges at vertex 0 the same color.
	ports := g.Ports(0)
	g.Colors[ports[0].Edge] = g.Colors[ports[1].Edge]
	if err := g.VerifyEdgeColoring(); err == nil {
		t.Error("verifier accepted an improper edge coloring")
	}
	g2 := RandomRegularBipartite(8, 3, rng.New(4))
	g2.Colors[0] = 99
	if err := g2.VerifyEdgeColoring(); err == nil {
		t.Error("verifier accepted an out-of-palette color")
	}
}

func TestHighGirthRegular(t *testing.T) {
	r := rng.New(21)
	g, err := HighGirthRegular(64, 3, 6, 200, r)
	if err != nil {
		t.Fatalf("HighGirthRegular: %v", err)
	}
	if girth := g.Girth(0); girth != -1 && girth < 6 {
		t.Errorf("certified graph has girth %d < 6", girth)
	}
}

func TestHighGirthRegularInfeasible(t *testing.T) {
	// Girth 1000 on a tiny graph is impossible: must return an error, not hang.
	_, err := HighGirthRegular(4, 3, 1000, 5, rng.New(1))
	if err == nil {
		t.Error("expected error for infeasible girth request")
	}
}

func TestRandomBoundedDegree(t *testing.T) {
	g := RandomBoundedDegree(100, 150, 5, rng.New(31))
	if g.N() != 100 || g.M() != 150 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if g.MaxDegree() > 5 {
		t.Errorf("max degree %d exceeds bound 5", g.MaxDegree())
	}
}

func TestGrid(t *testing.T) {
	g := Grid(4, 3)
	if g.N() != 12 || g.M() != 3*3+2*4 {
		t.Fatalf("Grid(4,3): n=%d m=%d", g.N(), g.M())
	}
	if g.MaxDegree() != 4 && g.N() > 9 {
		t.Errorf("Grid(4,3) Δ = %d, want 4", g.MaxDegree())
	}
}

func TestDegreeSequence(t *testing.T) {
	g := Star(5)
	ds := g.DegreeSequence()
	want := []int{4, 1, 1, 1, 1}
	for i := range want {
		if ds[i] != want[i] {
			t.Fatalf("DegreeSequence = %v, want %v", ds, want)
		}
	}
}
