// Package graph provides the graph substrate of the library: an immutable
// undirected multigraph-free graph type with port numbering, and the instance
// generators and structural algorithms the paper's proofs rely on (trees,
// rings, Δ-regular bipartite high-girth graphs with proper edge colorings,
// girth computation, components, peeling).
//
// Vertices are 0..N()-1. Every edge has a dense identifier 0..M()-1. The
// neighbors of a vertex are exposed through ports 0..Degree(v)-1; the port
// order is the LOCAL model's port numbering and is what the simulator routes
// messages along.
package graph

import (
	"fmt"
	"sort"
)

// Half is one endpoint's view of an incident edge: the opposite endpoint,
// the global edge identifier, and the port index of this same edge at the
// opposite endpoint (needed to route a message to the right inbox slot).
type Half struct {
	To   int // opposite endpoint
	Edge int // global edge id
	Rev  int // port of this edge at To
}

// Graph is an immutable simple undirected graph.
// Construct with a Builder or one of the generators.
type Graph struct {
	adj    [][]Half
	edges  [][2]int // edges[e] = {u, v} with u < v
	m      int
	maxDeg int
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// MaxDegree returns Δ(G), the maximum vertex degree (0 for an empty graph).
func (g *Graph) MaxDegree() int { return g.maxDeg }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Ports returns the incident half-edges of v in port order.
// The returned slice is shared; callers must not modify it.
func (g *Graph) Ports(v int) []Half { return g.adj[v] }

// Neighbor returns the half-edge at the given port of v.
func (g *Graph) Neighbor(v, port int) Half { return g.adj[v][port] }

// EdgeEndpoints returns the two endpoints of edge id e (u < v).
// It costs O(1) via the endpoint table built at construction.
func (g *Graph) EdgeEndpoints(e int) (int, int) {
	return g.edges[e][0], g.edges[e][1]
}

// HasEdge reports whether vertices u and v are adjacent, in O(deg(u)).
func (g *Graph) HasEdge(u, v int) bool {
	for _, h := range g.adj[u] {
		if h.To == v {
			return true
		}
	}
	return false
}

// Builder accumulates edges and produces a validated Graph.
type Builder struct {
	n     int
	pairs [][2]int
}

// NewBuilder returns a Builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Builder{n: n}
}

// AddEdge records the undirected edge {u, v}.
func (b *Builder) AddEdge(u, v int) *Builder {
	b.pairs = append(b.pairs, [2]int{u, v})
	return b
}

// Build validates the accumulated edges (endpoint range, no self-loops,
// no parallel edges) and returns the Graph.
func (b *Builder) Build() (*Graph, error) {
	g := &Graph{adj: make([][]Half, b.n)}
	seen := make(map[[2]int]struct{}, len(b.pairs))
	g.edges = make([][2]int, 0, len(b.pairs))
	for _, p := range b.pairs {
		u, v := p[0], p[1]
		if u < 0 || u >= b.n || v < 0 || v >= b.n {
			return nil, fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n)
		}
		if u == v {
			return nil, fmt.Errorf("graph: self-loop at vertex %d", u)
		}
		key := [2]int{u, v}
		if u > v {
			key = [2]int{v, u}
		}
		if _, dup := seen[key]; dup {
			return nil, fmt.Errorf("graph: parallel edge {%d,%d}", u, v)
		}
		seen[key] = struct{}{}
		e := g.m
		g.adj[u] = append(g.adj[u], Half{To: v, Edge: e})
		g.adj[v] = append(g.adj[v], Half{To: u, Edge: e})
		g.edges = append(g.edges, key)
		g.m++
	}
	g.fillRev()
	for v := range g.adj {
		if d := len(g.adj[v]); d > g.maxDeg {
			g.maxDeg = d
		}
	}
	return g, nil
}

// MustBuild is Build that panics on error; used by generators whose
// construction is correct by design and by tests.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// fillRev computes, for every half-edge, the port index of its twin.
func (g *Graph) fillRev() {
	// portOf[e] remembers the first-seen (vertex, port) of each edge; when the
	// second half is visited both Rev fields are set. O(n + m).
	type vp struct{ v, p int }
	portOf := make([]vp, g.m)
	for i := range portOf {
		portOf[i] = vp{-1, -1}
	}
	for v := range g.adj {
		for p := range g.adj[v] {
			e := g.adj[v][p].Edge
			if portOf[e].v < 0 {
				portOf[e] = vp{v, p}
				continue
			}
			w, q := portOf[e].v, portOf[e].p
			g.adj[v][p].Rev = q
			g.adj[w][q].Rev = p
		}
	}
}

// DegreeSequence returns the sorted (descending) degree sequence.
func (g *Graph) DegreeSequence() []int {
	ds := make([]int, g.N())
	for v := range ds {
		ds[v] = g.Degree(v)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ds)))
	return ds
}

// Edges returns a copy of the edge endpoint table: Edges()[e] = {u,v}, u < v.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, g.m)
	copy(out, g.edges)
	return out
}

// NeighborPort returns, for the edge at port p of v, the opposite endpoint
// and the port of that edge at the opposite endpoint. It is the routing
// primitive of the simulator kernel (it satisfies sim.Topology).
func (g *Graph) NeighborPort(v, p int) (int, int) {
	h := g.adj[v][p]
	return h.To, h.Rev
}

// ShufflePorts returns a copy of g whose adjacency lists (port orders) are
// independently permuted at every vertex. LOCAL algorithms must not depend
// on a friendly port numbering; the robustness tests run every algorithm
// under shuffled ports and require identical correctness.
func (g *Graph) ShufflePorts(r interface{ Shuffle(int, func(int, int)) }) *Graph {
	ng := &Graph{
		adj:    make([][]Half, g.N()),
		edges:  append([][2]int(nil), g.edges...),
		m:      g.m,
		maxDeg: g.maxDeg,
	}
	for v := range ng.adj {
		ng.adj[v] = append([]Half(nil), g.adj[v]...)
		r.Shuffle(len(ng.adj[v]), func(i, j int) {
			ng.adj[v][i], ng.adj[v][j] = ng.adj[v][j], ng.adj[v][i]
		})
	}
	ng.fillRev()
	return ng
}
