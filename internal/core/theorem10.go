package core

import (
	"fmt"
	"math"

	"locality/internal/forest"
	"locality/internal/mathx"
	"locality/internal/sim"
)

// T10Options configures the Theorem 10 (ColorBidding) machine.
type T10Options struct {
	// Delta is the palette size and degree bound; the analysis wants it
	// large, and the machine requires Delta >= 9 so the reserved palette
	// √Δ >= 3 can drive the Phase 2 forest coloring.
	Delta int
	// SizeBound caps the bad components Phase 2 must color; 0 means
	// max(32, 8·ceil(log2 n)) (the paper proves Δ⁴·log n; measured
	// components are far smaller, see experiment E3).
	SizeBound int
	// IDBits is the length of Phase 2's random identifiers; 0 means 40.
	IDBits int
	// PaletteSlack is the Filtering(1) threshold divisor: a vertex is bad
	// after round 1 if |Ψ₂|-|N'₂| < Δ/PaletteSlack. The paper uses 200 in
	// the analysis; the default 8 is the practical choice documented in
	// DESIGN.md.
	PaletteSlack int
}

func (o T10Options) withDefaults(n int) T10Options {
	if o.SizeBound == 0 {
		o.SizeBound = mathx.Max(32, 8*mathx.CeilLog2(n+1))
	}
	if o.IDBits == 0 {
		o.IDBits = 40
	}
	if o.PaletteSlack == 0 {
		o.PaletteSlack = 8
	}
	return o
}

// T10Result is the per-vertex output of the Theorem 10 machine.
type T10Result struct {
	// Color is the final color in 1..Delta, or 0 on failure.
	Color int
	// Phase is 1 (ColorBidding) or 2 (shattered finish); 0 on failure.
	Phase int
	// Bad reports whether the vertex was marked bad (E3 diagnostics).
	Bad bool
}

// CSequence returns the paper's c_i growth sequence with the practical
// growth rule c_{i+1} = min(√Δ, c_i·e^{c_i/6}) (the paper's e^200 divisor
// makes t astronomically large; DESIGN.md documents the substitution —
// the sequence still grows as a tower, so t = O(log* Δ)).
func CSequence(delta int) []float64 {
	limit := math.Sqrt(float64(delta))
	cs := []float64{1}
	for cs[len(cs)-1] < limit {
		c := cs[len(cs)-1]
		next := math.Min(limit, c*math.Exp(c/6))
		cs = append(cs, next)
		if len(cs) > 60 {
			panic("core: c-sequence failed to converge (internal bug)")
		}
	}
	return cs
}

// t10Plan is the shared schedule.
type t10Plan struct {
	opt       T10Options
	reserve   int // √Δ reserved colors
	cs        []float64
	iters     int // t = len(cs)
	fplan     forest.Plan
	p1End     int // last phase-1 step
	markBad   int // step marking the uncolored as bad
	forestEnd int
	total     int
}

func newT10Plan(n int, opt T10Options) t10Plan {
	p := t10Plan{opt: opt}
	p.reserve = int(math.Ceil(math.Sqrt(float64(opt.Delta))))
	p.cs = CSequence(opt.Delta)
	p.iters = len(p.cs)
	// Step layout: step 1 hello; iterations i = 1..t occupy steps 2i, 2i+1.
	p.p1End = 1 + 2*p.iters
	p.markBad = p.p1End + 1
	fopt := forest.Options{
		Q:         p.reserve,
		SizeBound: opt.SizeBound,
		IDSpace:   1 << opt.IDBits,
	}
	p.fplan = forest.NewPlan(fopt.Resolve(n))
	p.forestEnd = p.markBad + p.fplan.Rounds() + 1
	p.total = p.forestEnd + 2 // harvest step, then halt
	return p
}

// T10Rounds returns the total communication rounds of the Theorem 10
// machine for the given graph size.
func T10Rounds(n int, opt T10Options) int {
	opt = opt.withDefaults(n)
	return newT10Plan(n, opt).total - 1
}

// t10Status is the phase-1 broadcast.
type t10Status struct {
	Participating bool
	Color         int
	Bid           []int
}

type t10 struct {
	opt  T10Options
	plan t10Plan
	env  sim.Env

	id      uint64
	color   int
	phase   int
	bad     bool
	palette map[int]struct{} // Ψ
	bid     []int

	inner  sim.Machine
	innerD bool
	failed bool

	nbr   []t10Status
	heard []bool
	fresh []bool
}

var _ sim.Machine = (*t10)(nil)

// NewT10Factory returns the Theorem 10 ColorBidding machine.
func NewT10Factory(opt T10Options) sim.Factory {
	if opt.Delta < 9 {
		panic(fmt.Sprintf("core: Theorem 10 needs Delta >= 9 (√Δ >= 3), got %d", opt.Delta))
	}
	return func() sim.Machine { return &t10{opt: opt} }
}

func (m *t10) Init(env sim.Env) {
	if env.Rand == nil {
		panic("core: Theorem 10 is a RandLOCAL algorithm; Config.Randomized required")
	}
	m.env = env
	m.opt = m.opt.withDefaults(env.N)
	m.plan = newT10Plan(env.N, m.opt)
	m.id = env.Rand.Uint64()%(1<<m.opt.IDBits) + 1
	m.palette = make(map[int]struct{}, m.opt.Delta-m.plan.reserve)
	for c := 1; c <= m.opt.Delta-m.plan.reserve; c++ {
		m.palette[c] = struct{}{}
	}
	m.nbr = make([]t10Status, env.Degree)
	m.heard = make([]bool, env.Degree)
	m.fresh = make([]bool, env.Degree)
}

func (m *t10) statusNow() t10Status {
	return t10Status{
		Participating: m.color == 0 && !m.bad,
		Color:         m.color,
		Bid:           m.bid,
	}
}

func (m *t10) absorb(recv []sim.Message) {
	for p, msg := range recv {
		m.fresh[p] = false
		if msg == nil {
			continue
		}
		st, ok := msg.(t10Status)
		if !ok {
			panic(fmt.Sprintf("core: unexpected message %T", msg))
		}
		m.nbr[p] = st
		m.heard[p] = true
		m.fresh[p] = true
	}
}

func (m *t10) Step(step int, recv []sim.Message) ([]sim.Message, bool) {
	if m.failed {
		return nil, true
	}
	pl := &m.plan
	if step > pl.markBad && step <= pl.forestEnd {
		return m.forestStep(step, recv)
	}
	m.absorb(recv)
	switch {
	case step == 1:
		// Hello.
	case step <= pl.p1End:
		local := step - 1 // 1-based within phase 1
		iter := (local + 1) / 2
		if local%2 == 1 {
			m.bidStep(iter)
		} else {
			m.resolveStep()
		}
	case step == pl.markBad:
		m.updatePaletteAndNeighbors()
		if m.color == 0 {
			m.bad = true // Filtering(t): every survivor is bad
		}
		m.startForest()
	case step == pl.forestEnd+1:
		m.harvestForest()
	default:
		return nil, true
	}
	if m.failed {
		return nil, true
	}
	return sim.Broadcast(m.env.Degree, m.statusNow()), false
}

// bidStep is sub-step A of iteration iter: apply the previous iteration's
// filtering, refresh the palette, then draw the bid S_v.
func (m *t10) bidStep(iter int) {
	m.updatePaletteAndNeighbors()
	if iter >= 2 {
		m.filter(iter - 1)
	}
	m.bid = nil
	if m.color != 0 || m.bad {
		return
	}
	// Deterministic palette order: map iteration order must never reach
	// the RNG, or runs stop being reproducible across engines.
	psi := make([]int, 0, len(m.palette))
	for c := 1; c <= m.opt.Delta-m.plan.reserve; c++ {
		if _, ok := m.palette[c]; ok {
			psi = append(psi, c)
		}
	}
	if len(psi) == 0 {
		m.bad = true
		return
	}
	ci := m.plan.cs[iter-1]
	if iter == 1 {
		m.bid = []int{psi[m.env.Rand.Intn(len(psi))]}
		return
	}
	prob := ci / float64(len(psi))
	for _, c := range psi {
		if m.env.Rand.Bernoulli(prob) {
			m.bid = append(m.bid, c)
		}
	}
}

// resolveStep is sub-step B: color the vertex if some bid color is not bid
// by any participating neighbor.
func (m *t10) resolveStep() {
	if m.color != 0 || m.bad || len(m.bid) == 0 {
		return
	}
	taken := make(map[int]struct{})
	for p := range m.nbr {
		if !m.fresh[p] || !m.nbr[p].Participating {
			continue
		}
		for _, c := range m.nbr[p].Bid {
			taken[c] = struct{}{}
		}
	}
	best := 0
	for _, c := range m.bid {
		if _, clash := taken[c]; !clash {
			if best == 0 || c < best {
				best = c
			}
		}
	}
	if best != 0 {
		m.color = best
		m.phase = 1
	}
	m.bid = nil
}

// updatePaletteAndNeighbors removes the colors permanently taken by
// neighbors from Ψ.
func (m *t10) updatePaletteAndNeighbors() {
	for p := range m.nbr {
		if m.heard[p] && m.nbr[p].Color != 0 {
			delete(m.palette, m.nbr[p].Color)
		}
	}
}

// filter applies Filtering(i) using the post-iteration-i state.
func (m *t10) filter(i int) {
	if m.color != 0 || m.bad {
		return
	}
	// N'_{i+1}: participating uncolored neighbors after iteration i.
	survivors := 0
	for p := range m.nbr {
		if m.fresh[p] && m.nbr[p].Participating {
			survivors++
		}
	}
	d := float64(m.opt.Delta)
	if i == 1 {
		if float64(len(m.palette))-float64(survivors) < d/float64(m.opt.PaletteSlack) {
			m.bad = true
		}
		return
	}
	if i+1 <= len(m.plan.cs) {
		if float64(survivors) > d/m.plan.cs[i] {
			// c_{i+1} in the paper's 1-based indexing is cs[i] here.
			m.bad = true
		}
	}
}

// startForest builds the embedded Phase 2 machine over the bad vertices.
func (m *t10) startForest() {
	fopt := forest.Options{
		Q:           m.plan.reserve,
		SizeBound:   m.opt.SizeBound,
		IDSpace:     1 << m.opt.IDBits,
		ColorOffset: m.opt.Delta - m.plan.reserve,
		IDOf:        func(sim.Env) uint64 { return m.id },
		Active:      func(sim.Env) bool { return m.bad },
	}
	m.inner = forest.NewFactory(fopt)()
	m.inner.Init(m.env)
}

func (m *t10) forestStep(step int, recv []sim.Message) ([]sim.Message, bool) {
	local := step - m.plan.markBad
	if m.innerD {
		return nil, false
	}
	if local == 1 {
		recv = make([]sim.Message, m.env.Degree)
	}
	send, done := m.inner.Step(local, recv)
	if done {
		m.innerD = true
	}
	return send, false
}

func (m *t10) harvestForest() {
	if m.bad {
		c := m.inner.Output().(int)
		if c == 0 {
			m.failed = true
			return
		}
		m.color = c
		m.phase = 2
	}
	m.inner = nil
}

func (m *t10) Output() any {
	if m.failed || m.color == 0 {
		return T10Result{Bad: m.bad}
	}
	return T10Result{Color: m.color, Phase: m.phase, Bad: m.bad}
}
