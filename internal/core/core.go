package core
