package core_test

import (
	"testing"

	"locality/internal/core"
	"locality/internal/graph"
	"locality/internal/lcl"
	"locality/internal/rng"
	"locality/internal/sim"
)

// runT11 executes the Theorem 11 machine and returns colors + rounds.
func runT11(t *testing.T, g *graph.Graph, delta int, seed uint64) ([]int, int) {
	t.Helper()
	res, err := sim.Run(g, sim.Config{Randomized: true, Seed: seed, MaxRounds: 1 << 20},
		core.NewT11Factory(core.T11Options{Delta: delta}))
	if err != nil {
		t.Fatalf("T11 run failed: %v", err)
	}
	return core.Colors(res.Outputs), res.Rounds
}

func TestT11ColorsTrees(t *testing.T) {
	r := rng.New(1)
	tests := []struct {
		name  string
		g     *graph.Graph
		delta int
	}{
		{"random tree Δ=8", graph.RandomTree(400, 8, r), 8},
		{"random tree Δ=12", graph.RandomTree(600, 12, r), 12},
		{"path Δ=8", graph.Path(200), 8},
		{"complete 7-ary Δ=8", graph.CompleteKAry(7, 3), 8},
		{"star Δ=40", graph.Star(41), 40},
		{"caterpillar Δ=10", graph.Caterpillar(40, 8), 10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			colors, _ := runT11(t, tt.g, tt.delta, 7)
			if err := lcl.Coloring(tt.delta).Validate(lcl.Instance{G: tt.g}, lcl.IntLabels(colors)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestT11SuccessRateModerateDelta(t *testing.T) {
	// The algorithm is proved for Δ >= 55 but mechanically works for much
	// smaller Δ; at Δ=10 on 500-vertex trees it should succeed in the
	// overwhelming majority of seeds.
	r := rng.New(3)
	failures := 0
	const trials = 10
	for i := 0; i < trials; i++ {
		g := graph.RandomTree(500, 10, r)
		colors, _ := runT11(t, g, 10, uint64(100+i))
		if err := lcl.Coloring(10).Validate(lcl.Instance{G: g}, lcl.IntLabels(colors)); err != nil {
			failures++
		}
	}
	if failures > 1 {
		t.Errorf("%d/%d failures; expected near-perfect success", failures, trials)
	}
}

func TestT11RoundsMatchPlanAndScaleLogLog(t *testing.T) {
	r := rng.New(5)
	var rounds []int
	for _, n := range []int{256, 4096, 65536} {
		g := graph.RandomTree(n, 8, r)
		colors, got := runT11(t, g, 8, 11)
		if err := lcl.Coloring(8).Validate(lcl.Instance{G: g}, lcl.IntLabels(colors)); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := core.T11Rounds(n, core.T11Options{Delta: 8})
		if got != want {
			t.Errorf("n=%d: rounds %d, plan %d", n, got, want)
		}
		rounds = append(rounds, got)
	}
	// O(log_Δ log n + log* n): across a 256x increase in n the rounds may
	// grow only via the log log n Phase-2 budget — additively, slowly.
	if rounds[2]-rounds[0] > 40 {
		t.Errorf("round growth too fast for log log n: %v", rounds)
	}
}

func TestT11EngineEquivalence(t *testing.T) {
	r := rng.New(9)
	g := graph.RandomTree(200, 8, r)
	var prev []int
	for _, engine := range []sim.Engine{sim.EngineSequential, sim.EngineConcurrent} {
		res, err := sim.Run(g, sim.Config{Randomized: true, Seed: 13, Engine: engine, MaxRounds: 1 << 20},
			core.NewT11Factory(core.T11Options{Delta: 8}))
		if err != nil {
			t.Fatal(err)
		}
		cur := core.Colors(res.Outputs)
		if prev != nil {
			for v := range cur {
				if cur[v] != prev[v] {
					t.Fatalf("engines disagree at vertex %d: %d vs %d", v, prev[v], cur[v])
				}
			}
		}
		prev = cur
	}
}

func TestT11PhaseAttribution(t *testing.T) {
	r := rng.New(15)
	g := graph.RandomTree(800, 10, r)
	res, err := sim.Run(g, sim.Config{Randomized: true, Seed: 17, MaxRounds: 1 << 20},
		core.NewT11Factory(core.T11Options{Delta: 10}))
	if err != nil {
		t.Fatal(err)
	}
	phases := map[int]int{}
	for _, o := range res.Outputs {
		phases[o.(core.T11Result).Phase]++
	}
	// Phase 1 should color the overwhelming majority.
	if phases[1] < g.N()*3/4 {
		t.Errorf("phase 1 colored only %d/%d vertices", phases[1], g.N())
	}
	if phases[0] > 0 {
		t.Errorf("%d vertices failed", phases[0])
	}
	t.Logf("phase attribution: %v", phases)
}

func runT10(t *testing.T, g *graph.Graph, delta int, seed uint64) ([]int, int) {
	t.Helper()
	res, err := sim.Run(g, sim.Config{Randomized: true, Seed: seed, MaxRounds: 1 << 20},
		core.NewT10Factory(core.T10Options{Delta: delta}))
	if err != nil {
		t.Fatalf("T10 run failed: %v", err)
	}
	return core.Colors(res.Outputs), res.Rounds
}

func TestT10ColorsTrees(t *testing.T) {
	r := rng.New(21)
	tests := []struct {
		name  string
		g     *graph.Graph
		delta int
	}{
		{"random tree Δ=16", graph.RandomTree(500, 16, r), 16},
		{"random tree Δ=32", graph.RandomTree(800, 32, r), 32},
		{"complete 15-ary Δ=16", graph.CompleteKAry(15, 2), 16},
		{"path Δ=16", graph.Path(300), 16},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			colors, _ := runT10(t, tt.g, tt.delta, 23)
			if err := lcl.Coloring(tt.delta).Validate(lcl.Instance{G: tt.g}, lcl.IntLabels(colors)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestT10RoundsMatchPlan(t *testing.T) {
	r := rng.New(25)
	for _, n := range []int{256, 4096} {
		g := graph.RandomTree(n, 16, r)
		colors, got := runT10(t, g, 16, 29)
		if err := lcl.Coloring(16).Validate(lcl.Instance{G: g}, lcl.IntLabels(colors)); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := core.T10Rounds(n, core.T10Options{Delta: 16})
		if got != want {
			t.Errorf("n=%d: rounds %d, plan %d", n, got, want)
		}
	}
}

func TestT10MostVerticesColoredInPhase1(t *testing.T) {
	r := rng.New(31)
	g := graph.RandomTree(2000, 32, r)
	res, err := sim.Run(g, sim.Config{Randomized: true, Seed: 33, MaxRounds: 1 << 20},
		core.NewT10Factory(core.T10Options{Delta: 32}))
	if err != nil {
		t.Fatal(err)
	}
	phase1, bad, failed := 0, 0, 0
	for _, o := range res.Outputs {
		tr := o.(core.T10Result)
		if tr.Phase == 1 {
			phase1++
		}
		if tr.Bad {
			bad++
		}
		if tr.Color == 0 {
			failed++
		}
	}
	if failed > 0 {
		t.Errorf("%d vertices failed", failed)
	}
	if phase1 < g.N()/2 {
		t.Errorf("ColorBidding colored only %d/%d vertices", phase1, g.N())
	}
	t.Logf("phase1=%d bad=%d of n=%d", phase1, bad, g.N())
}

func TestCSequenceTowerGrowth(t *testing.T) {
	cs := core.CSequence(10000)
	if len(cs) > 25 {
		t.Errorf("c-sequence has %d entries for Δ=10000; expected tower (log*-ish) growth", len(cs))
	}
	for i := 1; i < len(cs); i++ {
		if cs[i] <= cs[i-1] && cs[i] != 100 { // √10000 = 100 cap
			t.Errorf("c-sequence not increasing at %d: %v", i, cs)
		}
	}
	if cs[len(cs)-1] != 100 {
		t.Errorf("c-sequence does not end at √Δ: %v", cs[len(cs)-1])
	}
}

func TestT11BadSeedStillDetectable(t *testing.T) {
	// Whatever the seed, the output must be either a valid Δ-coloring or
	// contain visible failures (0 colors) — never a silently wrong
	// coloring with all labels in range but improper... the verifier is
	// the judge either way; run many seeds and require: every failure is
	// a 0-label failure, not an improper-edge failure.
	r := rng.New(41)
	for i := 0; i < 5; i++ {
		g := graph.RandomTree(300, 8, r)
		colors, _ := runT11(t, g, 8, uint64(i))
		err := lcl.Coloring(8).Validate(lcl.Instance{G: g}, lcl.IntLabels(colors))
		if err == nil {
			continue
		}
		// A failure must be attributable to a 0 label.
		hasZero := false
		for _, c := range colors {
			if c == 0 {
				hasZero = true
				break
			}
		}
		if !hasZero {
			t.Fatalf("seed %d: improper coloring without failure marks: %v", i, err)
		}
	}
}
