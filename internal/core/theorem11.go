package core

import (
	"fmt"

	"locality/internal/forest"
	"locality/internal/linial"
	"locality/internal/mathx"
	"locality/internal/sim"
)

// T11Options configures the Theorem 11 machine.
type T11Options struct {
	// Delta is the palette size and degree bound. The paper proves the
	// algorithm for Delta >= 55; the machine runs for any Delta >= 4 and
	// the experiments measure where it actually starts succeeding.
	Delta int
	// SizeBound caps the shattered components Phase 2 must color; 0 means
	// max(32, 8·ceil(log2 n)), matching the O(log n) whp bound.
	SizeBound int
	// IDBits is the length of the random identifiers (collision
	// probability n²/2^IDBits); 0 means 40.
	IDBits int
}

func (o T11Options) withDefaults(n int) T11Options {
	if o.SizeBound == 0 {
		o.SizeBound = mathx.Max(32, 8*mathx.CeilLog2(n+1))
	}
	if o.IDBits == 0 {
		o.IDBits = 40
	}
	return o
}

// T11Result is the per-vertex output of the Theorem 11 machine.
type T11Result struct {
	// Color is the final color in 1..Delta, or 0 on failure.
	Color int
	// Phase records where the color was assigned: 1 (MIS peeling),
	// 2 (shattered-component coloring) or 3 (final recoloring); 0 on
	// failure.
	Phase int
	// InS reports membership in the shattered set S (diagnostics for the
	// E3 experiment).
	InS bool
}

// Colors extracts the color labels from a run's outputs.
func Colors(outputs []any) []int {
	colors := make([]int, len(outputs))
	for v, o := range outputs {
		switch r := o.(type) {
		case T11Result:
			colors[v] = r.Color
		case T10Result:
			colors[v] = r.Color
		default:
			panic(fmt.Sprintf("core: output %d is %T, not a coloring result", v, o))
		}
	}
	return colors
}

// t11Plan is the globally shared round schedule.
type t11Plan struct {
	opt T11Options
	// Bootstrap (random IDs -> base Δ+1 coloring).
	sched []linial.Family
	kw    linial.KWPlan
	kwAt  [][2]int
	// Phase 1: iterations of length Δ+3 steps each.
	iters int
	// Phase 2: inner forest plan.
	fplan forest.Plan
	// Step boundaries (inclusive starts).
	bootEnd   int // last bootstrap step
	p1End     int // last phase-1 step (including trailing finalize)
	sDetect   int // step at which S membership is computed
	forestEnd int // last inner-forest step
	p3Start   int
	total     int // halting step
}

func newT11Plan(n int, opt T11Options) t11Plan {
	p := t11Plan{opt: opt}
	idSpace := 1 << opt.IDBits
	p.sched = linial.Schedule(idSpace, opt.Delta)
	fp := linial.FixedPoint(idSpace, opt.Delta)
	if fp > opt.Delta+1 {
		p.kw = linial.NewKWPlan(fp, opt.Delta+1)
		for i := range p.kw.Palettes {
			for j := 0; j < p.kw.PassLen(i); j++ {
				p.kwAt = append(p.kwAt, [2]int{i, j})
			}
		}
	}
	p.iters = mathx.Max(0, opt.Delta-3) // colors Δ down to 4
	// Step layout:
	//   1:                      draw ID, broadcast
	//   2..1+S:                 Linial reductions
	//   2+S..1+S+K:             KW passes
	p.bootEnd = 1 + len(p.sched) + len(p.kwAt)
	//   each phase-1 iteration: Δ+3 steps; one trailing finalize step.
	p.p1End = p.bootEnd + p.iters*(opt.Delta+3) + 1
	//   S detection consumes the finalize broadcasts.
	p.sDetect = p.p1End + 1
	fopt := forest.Options{
		Q:         3,
		SizeBound: opt.SizeBound,
		IDSpace:   1 << opt.IDBits,
	}
	p.fplan = forest.NewPlan(fopt.Resolve(n))
	p.forestEnd = p.sDetect + p.fplan.Rounds() + 1
	// One harvest step after the forest window, then Phase 3.
	p.p3Start = p.forestEnd + 2
	// Phase 3 locals: 1 settle + (Δ+1) M1 sweep + (Δ+1) M2 sweep + 3
	// recolor steps; the machine halts at step total.
	p.total = p.p3Start + 2*opt.Delta + 7
	return p
}

// T11Rounds returns the total communication rounds of the Theorem 11
// machine for the given graph size.
func T11Rounds(n int, opt T11Options) int {
	opt = opt.withDefaults(n)
	return newT11Plan(n, opt).total - 1
}

// t11Status is the every-step broadcast.
type t11Status struct {
	ID     uint64
	Base   int     // bootstrap color (0-based); -1 before start
	Color  int     // final color, 0 = none
	InU    bool    // still uncolored and participating
	X      float64 // this iteration's random value
	HasX   bool
	InI    bool // joined this iteration's independent set
	Class3 int  // phase-3 class (1..3), 0 = none
}

type t11 struct {
	opt  T11Options
	plan t11Plan
	env  sim.Env

	id     uint64
	base   int
	color  int
	phase  int
	inU    bool
	failed bool

	x    float64
	hasX bool
	inI  bool

	inS    bool
	inner  sim.Machine // phase-2 forest machine
	innerD bool        // inner done

	class3 int

	nbr   []t11Status
	heard []bool
	fresh []bool
}

var _ sim.Machine = (*t11)(nil)

// NewT11Factory returns the Theorem 11 Δ-coloring machine.
func NewT11Factory(opt T11Options) sim.Factory {
	if opt.Delta < 4 {
		panic(fmt.Sprintf("core: Theorem 11 needs Delta >= 4, got %d", opt.Delta))
	}
	return func() sim.Machine { return &t11{opt: opt} }
}

func (m *t11) Init(env sim.Env) {
	if env.Rand == nil {
		panic("core: Theorem 11 is a RandLOCAL algorithm; Config.Randomized required")
	}
	m.env = env
	m.opt = m.opt.withDefaults(env.N)
	m.plan = newT11Plan(env.N, m.opt)
	m.id = env.Rand.Uint64()%(1<<m.opt.IDBits) + 1
	m.base = int(m.id) - 1
	m.inU = true
	m.nbr = make([]t11Status, env.Degree)
	m.heard = make([]bool, env.Degree)
	m.fresh = make([]bool, env.Degree)
}

func (m *t11) statusNow() t11Status {
	return t11Status{
		ID: m.id, Base: m.base, Color: m.color, InU: m.inU,
		X: m.x, HasX: m.hasX, InI: m.inI, Class3: m.class3,
	}
}

func (m *t11) absorb(recv []sim.Message) {
	for p, msg := range recv {
		m.fresh[p] = false
		if msg == nil {
			continue
		}
		st, ok := msg.(t11Status)
		if !ok {
			panic(fmt.Sprintf("core: unexpected message %T", msg))
		}
		m.nbr[p] = st
		m.heard[p] = true
		m.fresh[p] = true
	}
}

func (m *t11) Step(step int, recv []sim.Message) ([]sim.Message, bool) {
	if m.failed {
		return nil, true
	}
	pl := &m.plan
	// Phase 2's inner forest machine owns the message channel during its
	// window; everything else speaks t11Status.
	if step > pl.sDetect && step <= pl.forestEnd {
		return m.forestStep(step, recv)
	}
	m.absorb(recv)
	switch {
	case step <= pl.bootEnd:
		m.bootstrapStep(step)
	case step <= pl.p1End:
		m.phase1Step(step - pl.bootEnd)
	case step == pl.sDetect:
		m.detectS()
		m.startForest()
	case step < pl.p3Start:
		// Buffer step after the forest window: collect phase-2 colors.
		m.harvestForest()
	case step < pl.total:
		m.phase3Step(step - pl.p3Start + 1)
	default:
		return nil, true
	}
	if m.failed {
		return nil, true
	}
	return sim.Broadcast(m.env.Degree, m.statusNow()), false
}

// bootstrapStep runs random-ID Linial + KW to a (Δ+1)-coloring.
func (m *t11) bootstrapStep(step int) {
	if step == 1 {
		return // just broadcast the initial ID-derived color
	}
	nbrs := make([]int, 0, m.env.Degree)
	for p := range m.nbr {
		if !m.fresh[p] {
			continue
		}
		if m.nbr[p].Base == m.base {
			m.failed = true // random-ID collision
			return
		}
		nbrs = append(nbrs, m.nbr[p].Base)
	}
	s := len(m.plan.sched)
	if step <= 1+s {
		m.base = m.plan.sched[step-2].Reduce(m.base, nbrs)
		return
	}
	idx := step - 2 - s
	pass, sub := m.plan.kwAt[idx][0], m.plan.kwAt[idx][1]
	m.base = m.plan.kw.Recolor(pass, sub, m.base, nbrs)
}

// phase1Step runs the seeded-MIS peeling. Iterations have Δ+3 sub-steps:
//
//	sub 1:        finalize previous iteration's I (color i_prev), draw x
//	sub 2:        local minima join I
//	sub 3..Δ+3:   base-color class sweep completing the MIS
//
// One trailing step (local index iters*(Δ+3)+1) finalizes the last
// iteration.
func (m *t11) phase1Step(local int) {
	d := m.opt.Delta
	iter := (local - 1) / (d + 3) // 0-based iteration
	sub := (local-1)%(d+3) + 1    // 1-based sub-step
	if iter >= m.plan.iters {
		m.finalizeIteration(m.plan.iters - 1)
		return
	}
	switch {
	case sub == 1:
		m.finalizeIteration(iter - 1)
		if m.inU {
			m.x = m.env.Rand.Float64()
			m.hasX = true
		}
	case sub == 2:
		if m.inU && m.hasX {
			isMin := true
			for p := range m.nbr {
				if m.fresh[p] && m.nbr[p].InU && m.nbr[p].HasX && m.nbr[p].X <= m.x {
					isMin = false
					break
				}
			}
			if isMin {
				m.inI = true
			}
		}
	default:
		class := sub - 3 // base-color class 0..Δ
		if m.inU && !m.inI && m.base == class && !m.anyNbrInI() {
			m.inI = true
		}
	}
}

func (m *t11) anyNbrInI() bool {
	for p := range m.nbr {
		if m.heard[p] && m.nbr[p].InU && m.nbr[p].InI {
			return true
		}
	}
	return false
}

// finalizeIteration colors iteration iter's independent set with color
// Δ-iter and resets the per-iteration state.
func (m *t11) finalizeIteration(iter int) {
	if iter < 0 {
		return
	}
	if m.inI {
		m.color = m.opt.Delta - iter
		m.phase = 1
		m.inU = false
		m.inI = false
	}
	m.hasX = false
}

// detectS computes S = {v in U : |N(v) ∩ U| == 3}.
func (m *t11) detectS() {
	if !m.inU {
		return
	}
	uNbrs := 0
	for p := range m.nbr {
		if m.heard[p] && m.nbr[p].InU {
			uNbrs++
		}
	}
	if uNbrs > 3 {
		// Phase 1 invariant broken: the MIS peeling did not reduce the
		// uncolored degree to <= 3, which can only happen if some MIS was
		// not maximal (e.g. after an ID collision in the bootstrap).
		m.failed = true
		return
	}
	if uNbrs == 3 {
		m.inS = true
	}
}

// startForest builds the embedded Phase 2 machine.
func (m *t11) startForest() {
	fopt := forest.Options{
		Q:         3,
		SizeBound: m.opt.SizeBound,
		IDSpace:   1 << m.opt.IDBits,
		IDOf:      func(sim.Env) uint64 { return m.id },
		Active:    func(sim.Env) bool { return m.inS },
	}
	m.inner = forest.NewFactory(fopt)()
	m.inner.Init(m.env)
}

// forestStep drives the embedded forest machine during its window.
func (m *t11) forestStep(step int, recv []sim.Message) ([]sim.Message, bool) {
	local := step - m.plan.sDetect
	if m.innerD {
		return nil, false
	}
	if local == 1 {
		// The messages in flight are t11 statuses from the detection step;
		// the inner machine's first step consumes nothing.
		recv = make([]sim.Message, m.env.Degree)
	}
	send, done := m.inner.Step(local, recv)
	if done {
		m.innerD = true
	}
	return send, false
}

// harvestForest reads Phase 2's output.
func (m *t11) harvestForest() {
	if m.inner == nil {
		return
	}
	if m.inS {
		c := m.inner.Output().(int)
		if c == 0 {
			m.failed = true // component exceeded the size bound
			return
		}
		m.color = c // 1..3
		m.phase = 2
		m.inU = false
	}
	m.inner = nil
}

// phase3Step 3-classes the leftover U (degree <= 2) via two base-color MIS
// sweeps, then greedily recolors class by class.
func (m *t11) phase3Step(local int) {
	d := m.opt.Delta
	switch {
	case local == 1:
		// Settle: fresh statuses after the forest window.
	case local <= 1+(d+1):
		class := local - 2
		if m.inU && m.class3 == 0 && m.base == class && !m.anyNbrClass3(1) {
			m.class3 = 1
		}
	case local <= 1+2*(d+1):
		class := local - 2 - (d + 1)
		if m.inU && m.class3 == 0 && m.base == class && !m.anyNbrClass3(2) {
			m.class3 = 2
		}
	case local == 2+2*(d+1):
		if m.inU && m.class3 == 0 {
			m.class3 = 3
		}
		m.recolorIfClass(1)
	case local == 3+2*(d+1):
		m.recolorIfClass(2)
	case local == 4+2*(d+1):
		m.recolorIfClass(3)
	}
}

func (m *t11) anyNbrClass3(class int) bool {
	for p := range m.nbr {
		if m.heard[p] && m.nbr[p].InU && m.nbr[p].Class3 == class {
			return true
		}
	}
	return false
}

// recolorIfClass gives class-j vertices an available color: any color in
// 1..Δ not used by a colored neighbor. Phase 1 maximality guarantees
// availability exceeds the number of uncolored neighbors (see the paper's
// Phase 3 argument), so earlier-class recolorings cannot exhaust it.
func (m *t11) recolorIfClass(j int) {
	if !m.inU || m.class3 != j {
		return
	}
	used := make([]bool, m.opt.Delta+1)
	for p := range m.nbr {
		if m.heard[p] {
			if c := m.nbr[p].Color; c >= 1 && c <= m.opt.Delta {
				used[c] = true
			}
		}
	}
	for c := 1; c <= m.opt.Delta; c++ {
		if !used[c] {
			m.color = c
			m.phase = 3
			m.inU = false
			return
		}
	}
	m.failed = true // no available color: Phase 1/2 invariants broke
}

func (m *t11) Output() any {
	if m.failed || m.color == 0 {
		return T11Result{InS: m.inS}
	}
	return T11Result{Color: m.color, Phase: m.phase, InS: m.inS}
}
