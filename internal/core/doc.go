// Package core implements the paper's primary contribution (Section VI):
// two RandLOCAL algorithms that Δ-color a tree of maximum degree Δ in
// O(log_Δ log n + log* n) rounds, exponentially faster in n than the
// Ω(log_Δ n) DetLOCAL lower bound of Theorem 5.
//
//   - Theorem 11 (theorem11.go): the three-phase algorithm for constant
//     Δ >= 55 — iterated seeded-MIS peeling with colors Δ..4, a
//     Barenboim–Elkin 3-coloring of the O(log n)-size shattered components
//     S, and a final greedy recoloring of the leftover degree-<=2 forest.
//   - Theorem 10 (theorem10.go): the ColorBidding/Filtering algorithm for
//     large Δ — O(log* Δ) rounds of randomized color bidding that leave
//     only "bad" vertices in poly(Δ)·log n-size components, finished by a
//     deterministic √Δ-coloring with the reserved palette.
//
// Both machines are pure RandLOCAL: vertices have no IDs and bootstrap all
// symmetry breaking from private random bits, exactly as the model
// prescribes. All probabilistic failure modes (random-ID collisions,
// shattered components exceeding their size bound, a missing free color)
// surface as output 0, which the Δ-coloring LCL verifier rejects — so the
// measured failure rate of the implementation is directly comparable to
// the paper's 1/poly(n) guarantee.
//
// Every phase has a round budget that is a function of (n, Δ) only, so the
// algorithms are uniform and the total round count matches the plan
// exactly; the experiment harness compares the measured totals against the
// O(log_Δ log n + log* n) claim.
package core
