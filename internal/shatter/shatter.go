// Package shatter provides the measurement side of the graph-shattering
// arguments in Section VI: component statistics of "bad" vertex sets (the
// inputs to the Phase-2 deterministic finishes of Theorems 10 and 11), and
// the distance-k set machinery of Lemma 3, whose counting bound
// 4^t · n · Δ^{k(t-1)} turns per-vertex failure probabilities into
// whp-O(log n) component bounds.
package shatter

import (
	"fmt"
	"sort"

	"locality/internal/graph"
	"locality/internal/mathx"
)

// Components summarizes the connected components of the subgraph induced by
// the marked vertices.
type Components struct {
	Count int
	Max   int
	Total int // marked vertices
	Sizes []int
	Stats mathx.Stats
}

// Analyze measures the components induced by marked.
func Analyze(g *graph.Graph, marked []bool) Components {
	sizes := g.ComponentSizes(marked)
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	c := Components{Count: len(sizes), Sizes: sizes, Stats: mathx.SummarizeInts(sizes)}
	for _, s := range sizes {
		c.Total += s
		if s > c.Max {
			c.Max = s
		}
	}
	return c
}

// DistanceKSets enumerates the distance-k sets of size t of g, as defined
// before Lemma 3: pairwise distances at least k, and connected in the
// auxiliary graph whose edges join vertices at distance exactly k.
// It panics when the enumeration exceeds budget sets (the bound itself
// grows as 4^t·n·Δ^{k(t-1)}).
func DistanceKSets(g *graph.Graph, k, t, budget int) [][]int {
	if k < 1 || t < 1 {
		panic(fmt.Sprintf("shatter: DistanceKSets(k=%d, t=%d) invalid", k, t))
	}
	n := g.N()
	// Pairwise distances (bounded to k by early BFS cut would help; exact
	// BFS per vertex is fine at the intended scales).
	dist := make([][]int, n)
	for v := 0; v < n; v++ {
		dist[v] = g.BFS(v)
	}
	seen := make(map[string]struct{})
	var out [][]int
	var cur []int
	var rec func()
	rec = func() {
		if len(cur) == t {
			key := canonical(cur)
			if _, dup := seen[key]; dup {
				return
			}
			seen[key] = struct{}{}
			out = append(out, append([]int(nil), cur...))
			if len(out) > budget {
				panic(fmt.Sprintf("shatter: over %d distance-%d sets of size %d", budget, k, t))
			}
			return
		}
		// Extend by any vertex at distance exactly k from some member and
		// at least k from all members.
		cands := make(map[int]struct{})
		for _, u := range cur {
			for w := 0; w < n; w++ {
				if dist[u][w] == k {
					cands[w] = struct{}{}
				}
			}
		}
		sorted := make([]int, 0, len(cands))
		for w := range cands {
			sorted = append(sorted, w)
		}
		sort.Ints(sorted)
		for _, w := range sorted {
			ok := true
			for _, u := range cur {
				if d := dist[u][w]; d >= 0 && d < k {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			cur = append(cur, w)
			rec()
			cur = cur[:len(cur)-1]
		}
	}
	for v := 0; v < n; v++ {
		cur = append(cur[:0], v)
		if t == 1 {
			out = append(out, []int{v})
			continue
		}
		rec()
	}
	return out
}

// canonical returns a sorted key for a vertex set.
func canonical(set []int) string {
	s := append([]int(nil), set...)
	sort.Ints(s)
	b := make([]byte, 0, 4*len(s))
	for _, v := range s {
		b = append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	return string(b)
}

// Lemma3Bound returns the paper's counting bound 4^t · n · Δ^{k(t-1)},
// saturating at MaxInt64.
func Lemma3Bound(n, maxDeg, k, t int) int {
	bound := mathx.PowInt(4, t)
	bound = satMul(bound, n)
	bound = satMul(bound, mathx.PowInt(mathx.Max(1, maxDeg), k*(t-1)))
	return bound
}

func satMul(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	if a > (1<<62)/b {
		return 1 << 62
	}
	return a * b
}

// CoversComponent reports whether every connected set of marked vertices of
// size >= threshold contains a distance-k set of size t — the deduction
// step the shattering analyses use (a big bad component implies a big
// distance-5 set of bad vertices). It is used by tests on small graphs to
// validate the reasoning pattern rather than in production paths.
func CoversComponent(g *graph.Graph, marked []bool, k, t int) bool {
	comp := Analyze(g, marked)
	if comp.Max < (t-1)*k+1 {
		return false
	}
	// A component with at least (t-1)k+1 vertices contains a path of
	// length (t-1)k in the induced subgraph... not necessarily a path, but
	// greedy extraction works: repeatedly take a vertex, drop N^{k-1},
	// staying inside one component; connectivity in G^k follows from
	// taking them along a BFS tree. This function checks the conclusion
	// directly by searching for a witness.
	sets := DistanceKSets(g, k, t, 1<<20)
	for _, s := range sets {
		all := true
		for _, v := range s {
			if !marked[v] {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}
