package shatter_test

import (
	"testing"

	"locality/internal/graph"
	"locality/internal/rng"
	"locality/internal/shatter"
)

func TestAnalyze(t *testing.T) {
	g := graph.Path(10)
	marked := make([]bool, 10)
	for _, v := range []int{0, 1, 4, 5, 6, 9} {
		marked[v] = true
	}
	c := shatter.Analyze(g, marked)
	if c.Count != 3 || c.Max != 3 || c.Total != 6 {
		t.Errorf("Analyze = %+v, want 3 components, max 3, total 6", c)
	}
	if c.Sizes[0] != 3 || c.Sizes[1] != 2 || c.Sizes[2] != 1 {
		t.Errorf("Sizes = %v, want [3 2 1]", c.Sizes)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	g := graph.Ring(5)
	c := shatter.Analyze(g, make([]bool, 5))
	if c.Count != 0 || c.Max != 0 || c.Total != 0 {
		t.Errorf("empty Analyze = %+v", c)
	}
}

func TestDistanceKSetsOnPath(t *testing.T) {
	// Path 0..6, k=2, t=2: sets {i, i+2} (distance exactly 2, connected in
	// the distance-2 graph): pairs (0,2),(1,3),(2,4),(3,5),(4,6) = 5.
	g := graph.Path(7)
	sets := shatter.DistanceKSets(g, 2, 2, 1<<20)
	if len(sets) != 5 {
		t.Fatalf("got %d distance-2 sets of size 2, want 5: %v", len(sets), sets)
	}
	for _, s := range sets {
		d := g.BFS(s[0])
		if d[s[1]] != 2 {
			t.Errorf("set %v not at distance exactly 2", s)
		}
	}
}

func TestDistanceKSetsSizeOne(t *testing.T) {
	g := graph.Ring(6)
	sets := shatter.DistanceKSets(g, 3, 1, 1<<20)
	if len(sets) != 6 {
		t.Errorf("size-1 sets = %d, want n = 6", len(sets))
	}
}

func TestDistanceKSetsRespectLemma3Bound(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 5; trial++ {
		g := graph.RandomTree(60, 4, r)
		for _, tc := range []struct{ k, t int }{{2, 2}, {2, 3}, {3, 2}, {5, 2}} {
			sets := shatter.DistanceKSets(g, tc.k, tc.t, 1<<22)
			bound := shatter.Lemma3Bound(g.N(), g.MaxDegree(), tc.k, tc.t)
			if len(sets) > bound {
				t.Errorf("trial %d k=%d t=%d: %d sets exceed Lemma 3 bound %d",
					trial, tc.k, tc.t, len(sets), bound)
			}
		}
	}
}

func TestDistanceKSetsPairwiseFar(t *testing.T) {
	r := rng.New(9)
	g := graph.RandomTree(50, 3, r)
	sets := shatter.DistanceKSets(g, 3, 3, 1<<22)
	for _, s := range sets {
		for i := 0; i < len(s); i++ {
			d := g.BFS(s[i])
			for j := i + 1; j < len(s); j++ {
				if d[s[j]] >= 0 && d[s[j]] < 3 {
					t.Fatalf("set %v has pair at distance %d < 3", s, d[s[j]])
				}
			}
		}
	}
}

func TestCoversComponent(t *testing.T) {
	// A long marked path contains a distance-2 pair; a single marked
	// vertex does not.
	g := graph.Path(12)
	marked := make([]bool, 12)
	for v := 3; v <= 8; v++ {
		marked[v] = true
	}
	if !shatter.CoversComponent(g, marked, 2, 2) {
		t.Error("6-vertex marked path should contain a distance-2 pair")
	}
	single := make([]bool, 12)
	single[4] = true
	if shatter.CoversComponent(g, single, 2, 2) {
		t.Error("single marked vertex cannot contain a size-2 set")
	}
}

func TestLemma3BoundSaturates(t *testing.T) {
	if got := shatter.Lemma3Bound(1<<40, 100, 5, 10); got != 1<<62 {
		t.Errorf("bound should saturate at 2^62, got %d", got)
	}
	if got := shatter.Lemma3Bound(10, 3, 2, 2); got != 16*10*9 {
		t.Errorf("bound = %d, want %d", got, 16*10*9)
	}
}
