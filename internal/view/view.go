// Package view implements radius-t view collection and exact local
// re-execution — the executable form of the indistinguishability principle
// that drives the paper's meta-results.
//
// A t-round LOCAL algorithm's output at a vertex is a function of the
// vertex's radius-t view. This package makes both directions concrete:
//
//   - Collector is a (sub-)machine that gathers the radius-t ball of every
//     vertex in exactly t communication rounds, using names (IDs) to stitch
//     flooded records together.
//   - Ball.SimulateCenter re-executes an arbitrary Machine on a collected
//     ball and reproduces the center's t-round output exactly. This is what
//     lets the speedup transforms (Theorems 6 and 8) and the Theorem 5
//     construction "run algorithm A pretending the graph is different",
//     and what the derandomizer uses to evaluate candidate bit functions.
//
// Exactness argument (mirrored in the tests): the center's state after step
// t+1 depends on the step-(t+1-k) states of vertices at distance k, down to
// the step-1 states of vertices at distance t, which are functions of their
// initial environment alone. The collector therefore records full port
// wiring for vertices at distance <= t-1 and, for boundary vertices at
// distance exactly t, their environment plus the ports facing inward
// (learned from the step-1 messages, which carry the sender's port index).
// That is precisely enough to replay every message that can causally reach
// the center within t rounds.
package view

import (
	"fmt"
	"sort"

	"locality/internal/rng"
	"locality/internal/sim"
)

// PortLink describes one port of an enriched record: the neighbor's name and
// the port index of the same edge on the neighbor's side.
type PortLink struct {
	Name uint64
	Back int
}

// Record is a vertex's self-description as flooded during collection.
// Ports is nil for a "bare" record (boundary vertex whose wiring was not yet
// learned).
type Record struct {
	Name   uint64
	Degree int
	Input  any
	Ports  []PortLink
}

// enriched reports whether the record carries port wiring.
func (r Record) enriched() bool { return r.Ports != nil }

// stepOneMsg is the first-round payload: the bare record plus the sender's
// port index for this edge, which is what lets receivers reconstruct
// boundary wiring.
type stepOneMsg struct {
	Rec        Record
	SenderPort int
}

// floodMsg is the payload of all later rounds: everything the sender knows.
type floodMsg struct {
	Recs []Record
}

// Collector gathers the radius-T ball of one vertex. It is written as an
// embeddable phase: composite machines call Step and, when it reports done,
// read Ball. Use AsMachine for a standalone run.
//
// The collector occupies steps 1..T+1 of its machine's life (T communication
// rounds; the final step only absorbs the last messages).
type Collector struct {
	t     int
	env   sim.Env
	name  uint64
	known map[uint64]Record
}

// NewCollector returns a collector for radius t at a vertex whose unique
// name is name. In DetLOCAL, name is the ID; RandLOCAL callers generate
// names from random bits first (as Theorem 5 prescribes).
func NewCollector(t int, name uint64, env sim.Env) *Collector {
	if t < 0 {
		panic(fmt.Sprintf("view: negative radius %d", t))
	}
	c := &Collector{t: t, env: env, name: name, known: make(map[uint64]Record)}
	c.known[name] = Record{Name: name, Degree: env.Degree, Input: env.Input}
	return c
}

// Step advances the collection by one simulator step. The step argument must
// be 1 on the first call and increase by one per call; composite machines
// embedding a collector mid-life pass their own normalized phase step.
func (c *Collector) Step(step int, recv []sim.Message) (send []sim.Message, done bool) {
	c.absorb(step, recv)
	if step > c.t {
		return nil, true
	}
	if step == 1 {
		send = make([]sim.Message, c.env.Degree)
		self := c.known[c.name]
		for p := range send {
			send[p] = stepOneMsg{Rec: Record{Name: self.Name, Degree: self.Degree, Input: self.Input}, SenderPort: p}
		}
		return send, false
	}
	// Flood everything known, in deterministic order (map iteration order
	// must not leak into messages: the engines are compared byte-for-byte).
	recs := make([]Record, 0, len(c.known))
	for _, r := range c.known {
		recs = append(recs, r)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Name < recs[j].Name })
	msg := floodMsg{Recs: recs}
	send = make([]sim.Message, c.env.Degree)
	for p := range send {
		send[p] = msg
	}
	return send, false
}

// absorb merges received records; step-1 messages additionally wire up the
// collector's own port links.
func (c *Collector) absorb(step int, recv []sim.Message) {
	if step == 2 {
		// The step-1 messages (consumed now) define our own port wiring.
		self := c.known[c.name]
		self.Ports = make([]PortLink, c.env.Degree)
		for p, m := range recv {
			som, ok := m.(stepOneMsg)
			if !ok {
				panic(fmt.Sprintf("view: expected stepOneMsg on port %d, got %T", p, m))
			}
			self.Ports[p] = PortLink{Name: som.Rec.Name, Back: som.SenderPort}
			c.merge(som.Rec)
		}
		c.known[c.name] = self
		return
	}
	for _, m := range recv {
		if m == nil {
			continue
		}
		fm, ok := m.(floodMsg)
		if !ok {
			panic(fmt.Sprintf("view: expected floodMsg, got %T", m))
		}
		for _, r := range fm.Recs {
			c.merge(r)
		}
	}
}

// merge keeps the most informative record per name.
func (c *Collector) merge(r Record) {
	old, exists := c.known[r.Name]
	if !exists || (!old.enriched() && r.enriched()) {
		c.known[r.Name] = r
	}
}

// Ball assembles the radius-T ball once collection is done.
func (c *Collector) Ball() *Ball {
	return buildBall(c.t, c.name, c.known)
}

// Rounds returns the number of communication rounds the collection costs.
func (c *Collector) Rounds() int { return c.t }

// collectMachine wraps a Collector as a standalone Machine whose output is
// the *Ball.
type collectMachine struct {
	t    int
	name func(env sim.Env) uint64
	c    *Collector
}

// NewCollectMachineFactory returns a Factory for standalone radius-t
// collection; name extracts each vertex's unique name from its Env (the
// default, when nil, uses Env.ID).
func NewCollectMachineFactory(t int, name func(env sim.Env) uint64) sim.Factory {
	if name == nil {
		name = func(env sim.Env) uint64 { return env.ID }
	}
	return func() sim.Machine {
		return &collectMachine{t: t, name: name}
	}
}

var _ sim.Machine = (*collectMachine)(nil)

func (m *collectMachine) Init(env sim.Env) {
	m.c = NewCollector(m.t, m.name(env), env)
}

func (m *collectMachine) Step(step int, recv []sim.Message) ([]sim.Message, bool) {
	return m.c.Step(step, recv)
}

func (m *collectMachine) Output() any { return m.c.Ball() }

// Ball is a collected radius-T view. Local vertex 0 is the center. Records
// of vertices at distance <= T-1 are enriched (full port wiring); records at
// distance exactly T may be bare except for the inward ports learned from
// their step-1 messages.
type Ball struct {
	T    int
	Dist []int
	Recs []Record
	// adj[u][p] = local index of u's port-p neighbor, or -1 when that
	// neighbor is outside the ball or unknown. Entries exist only for ports
	// with known wiring; adj[u] is nil for vertices with no known wiring.
	adj [][]int
	// index maps names to local indices.
	index map[uint64]int
}

// N returns the number of vertices in the ball.
func (b *Ball) N() int { return len(b.Recs) }

// LocalIndex returns the local index of the vertex with the given name,
// or -1 if it is not in the ball.
func (b *Ball) LocalIndex(name uint64) int {
	if i, ok := b.index[name]; ok {
		return i
	}
	return -1
}

// buildBall BFS-explores the known records from the center, keeping vertices
// within distance t, and wires local adjacency.
func buildBall(t int, center uint64, known map[uint64]Record) *Ball {
	b := &Ball{T: t, index: make(map[uint64]int)}
	// BFS over names.
	type item struct {
		name uint64
		dist int
	}
	queue := []item{{center, 0}}
	b.index[center] = 0
	b.Recs = append(b.Recs, known[center])
	b.Dist = append(b.Dist, 0)
	for qi := 0; qi < len(queue); qi++ {
		it := queue[qi]
		rec := known[it.name]
		if it.dist >= t || !rec.enriched() {
			continue
		}
		for _, pl := range rec.Ports {
			if _, seen := b.index[pl.Name]; seen {
				continue
			}
			nrec, ok := known[pl.Name]
			if !ok {
				// Known name but no record: can happen only beyond the
				// collection horizon; skip (outside ball).
				continue
			}
			b.index[pl.Name] = len(b.Recs)
			b.Recs = append(b.Recs, nrec)
			b.Dist = append(b.Dist, it.dist+1)
			queue = append(queue, item{pl.Name, it.dist + 1})
		}
	}
	// Wire adjacency from enriched records; bare boundary records get their
	// inward ports wired from the neighbor side (using Back indices).
	b.adj = make([][]int, len(b.Recs))
	for u := range b.Recs {
		rec := b.Recs[u]
		if !rec.enriched() {
			continue
		}
		b.adj[u] = make([]int, len(rec.Ports))
		for p, pl := range rec.Ports {
			if w, ok := b.index[pl.Name]; ok {
				b.adj[u][p] = w
			} else {
				b.adj[u][p] = -1
			}
		}
	}
	for u := range b.Recs {
		rec := b.Recs[u]
		if !rec.enriched() {
			continue
		}
		for _, pl := range rec.Ports {
			w, ok := b.index[pl.Name]
			if !ok {
				continue
			}
			if b.adj[w] == nil {
				b.adj[w] = makeFilled(b.Recs[w].Degree, -1)
			}
			if pl.Back >= 0 && pl.Back < len(b.adj[w]) {
				b.adj[w][pl.Back] = u
			}
		}
	}
	return b
}

func makeFilled(n, v int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = v
	}
	return s
}

// SimOptions configures a local re-execution.
type SimOptions struct {
	// N and MaxDeg are the global parameters handed to the simulated nodes;
	// the transforms deliberately lie here ("assume the graph size is
	// 2^ℓ'"), which is the whole point.
	N      int
	MaxDeg int
	// Steps bounds the re-execution. For exact center outputs it must be at
	// most T+1 (T communication rounds plus the free output step).
	Steps int
	// UseIDs passes each record's Name as the node ID.
	UseIDs bool
	// RandFor, when non-nil, supplies the private stream of the simulated
	// node with the given name; required to replay randomized machines.
	RandFor func(name uint64) *rng.Source
}

// SimulateCenter re-executes the machine on the ball and returns the
// center's output and the number of communication rounds it used. An error
// is returned if the center has not halted within opt.Steps steps.
func (b *Ball) SimulateCenter(f sim.Factory, opt SimOptions) (any, int, error) {
	if opt.Steps <= 0 {
		opt.Steps = b.T + 1
	}
	if opt.Steps > b.T+1 {
		return nil, 0, fmt.Errorf("view: %d steps exceed exactness horizon %d of a radius-%d ball", opt.Steps, b.T+1, b.T)
	}
	n := b.N()
	machines := make([]sim.Machine, n)
	for u := 0; u < n; u++ {
		rec := b.Recs[u]
		env := sim.Env{
			Node:   -1, // simulated nodes have no host index
			N:      opt.N,
			MaxDeg: opt.MaxDeg,
			Degree: rec.Degree,
			Input:  rec.Input,
		}
		if opt.UseIDs {
			env.ID = rec.Name
			env.HasID = true
		}
		if opt.RandFor != nil {
			env.Rand = opt.RandFor(rec.Name)
		}
		machines[u] = f()
		machines[u].Init(env)
	}
	inboxCur := make([][]sim.Message, n)
	inboxNext := make([][]sim.Message, n)
	done := make([]bool, n)
	for u := 0; u < n; u++ {
		inboxCur[u] = make([]sim.Message, b.Recs[u].Degree)
		inboxNext[u] = make([]sim.Message, b.Recs[u].Degree)
	}
	for step := 1; step <= opt.Steps; step++ {
		for u := 0; u < n; u++ {
			if done[u] {
				continue
			}
			send, nodeDone := machines[u].Step(step, inboxCur[u])
			if nodeDone {
				done[u] = true
				if u == 0 {
					return machines[0].Output(), step - 1, nil
				}
			}
			if b.adj[u] == nil {
				continue // wiring unknown; messages cannot reach the center in time anyway
			}
			for p := 0; p < len(send) && p < len(b.adj[u]); p++ {
				if send[p] == nil {
					continue
				}
				w := b.adj[u][p]
				if w < 0 {
					continue
				}
				// Find the reverse port: the port q of w with adj[w][q] == u
				// and matching edge. Recover it from w's record if enriched,
				// else from the inward wiring.
				q := b.reversePort(u, p, w)
				if q >= 0 {
					inboxNext[w][q] = send[p]
				}
			}
		}
		inboxCur, inboxNext = inboxNext, inboxCur
		for u := range inboxNext {
			for i := range inboxNext[u] {
				inboxNext[u][i] = nil
			}
		}
	}
	return nil, 0, fmt.Errorf("view: center did not halt within %d steps", opt.Steps)
}

// reversePort returns the port of w that faces u's port p, or -1 if unknown.
func (b *Ball) reversePort(u, p, w int) int {
	if rec := b.Recs[u]; rec.enriched() {
		return rec.Ports[p].Back
	}
	// u is a bare boundary vertex: its inward wiring was set from w's side,
	// so search w's ports for u.
	for q, x := range b.adj[w] {
		if x == u {
			if wrec := b.Recs[w]; wrec.enriched() && wrec.Ports[q].Back == p {
				return q
			}
		}
	}
	return -1
}
