package view_test

import (
	"testing"

	"locality/internal/graph"
	"locality/internal/ids"
	"locality/internal/rng"
	"locality/internal/sim"
	"locality/internal/view"
)

// collectBalls runs a standalone radius-t collection on g and returns the
// per-vertex balls plus the round count.
func collectBalls(t *testing.T, g *graph.Graph, assignment ids.Assignment, radius int) ([]*view.Ball, int) {
	t.Helper()
	res, err := sim.Run(g, sim.Config{IDs: assignment}, view.NewCollectMachineFactory(radius, nil))
	if err != nil {
		t.Fatalf("collection failed: %v", err)
	}
	balls := make([]*view.Ball, g.N())
	for v := range balls {
		balls[v] = res.Outputs[v].(*view.Ball)
	}
	return balls, res.Rounds
}

func TestCollectionCostsExactlyTRounds(t *testing.T) {
	g := graph.Ring(12)
	assignment := ids.Sequential(12)
	for radius := 0; radius <= 4; radius++ {
		_, rounds := collectBalls(t, g, assignment, radius)
		if rounds != radius {
			t.Errorf("radius %d collection took %d rounds, want %d", radius, rounds, radius)
		}
	}
}

func TestBallContents(t *testing.T) {
	g := graph.Path(9)
	assignment := ids.Sequential(9)
	balls, _ := collectBalls(t, g, assignment, 2)
	// Middle vertex 4 must see exactly {2,3,4,5,6}.
	b := balls[4]
	if b.N() != 5 {
		t.Fatalf("ball size = %d, want 5", b.N())
	}
	for _, name := range []uint64{3, 4, 5, 6, 7} { // IDs are v+1
		if b.LocalIndex(name) < 0 {
			t.Errorf("name %d missing from ball", name)
		}
	}
	if b.LocalIndex(2) >= 0 || b.LocalIndex(8) >= 0 {
		t.Error("ball contains vertices beyond radius 2")
	}
	// Distances must be exact.
	if b.Dist[b.LocalIndex(5)] != 0 {
		t.Error("center distance not 0")
	}
	if b.Dist[b.LocalIndex(3)] != 2 || b.Dist[b.LocalIndex(7)] != 2 {
		t.Error("boundary distances wrong")
	}
	// End vertex 0 has a truncated ball.
	if balls[0].N() != 3 {
		t.Errorf("end vertex ball size = %d, want 3", balls[0].N())
	}
}

func TestBallOnTree(t *testing.T) {
	r := rng.New(5)
	g := graph.RandomTree(60, 4, r)
	assignment := ids.Shuffled(60, r)
	balls, _ := collectBalls(t, g, assignment, 3)
	for v := 0; v < g.N(); v++ {
		want := len(g.BallVertices(v, 3))
		if got := balls[v].N(); got != want {
			t.Fatalf("vertex %d: ball size %d, want %d", v, got, want)
		}
	}
}

// parityMachine is a deterministic t-round algorithm with port-asymmetric
// first-round sends, to exercise the boundary-wiring replay: each node sends
// (ID*31+port) on port p in round 1, then floods sums for the remaining
// rounds; output is a hash of everything received, i.e. highly sensitive to
// exact message routing.
type parityMachine struct {
	env    sim.Env
	rounds int
	acc    uint64
}

func newParityFactory(rounds int) sim.Factory {
	return func() sim.Machine { return &parityMachine{rounds: rounds} }
}

func (m *parityMachine) Init(env sim.Env) {
	m.env = env
	m.acc = env.ID * 1000003
}

func (m *parityMachine) Step(step int, recv []sim.Message) ([]sim.Message, bool) {
	for p, msg := range recv {
		if msg != nil {
			m.acc = m.acc*16777619 ^ msg.(uint64) ^ uint64(p)<<32
		}
	}
	if step > m.rounds {
		return nil, true
	}
	send := make([]sim.Message, m.env.Degree)
	for p := range send {
		send[p] = m.acc ^ uint64(p)*2654435761 ^ uint64(step)
	}
	return send, false
}

func (m *parityMachine) Output() any { return m.acc }

func TestSimulateCenterReproducesRealRun(t *testing.T) {
	// The heart of the indistinguishability principle: for every vertex, a
	// t-round machine re-executed on the radius-t ball must produce exactly
	// the output of the real networked run.
	r := rng.New(123)
	for trial := 0; trial < 5; trial++ {
		var g *graph.Graph
		switch trial % 3 {
		case 0:
			g = graph.RandomTree(40, 5, r)
		case 1:
			g = graph.Ring(17)
		default:
			g = graph.RandomRegularBipartite(12, 3, r).Graph
		}
		n := g.N()
		assignment := ids.Shuffled(n, r)
		const radius = 3
		real, err := sim.Run(g, sim.Config{IDs: assignment}, newParityFactory(radius))
		if err != nil {
			t.Fatal(err)
		}
		if real.Rounds != radius {
			t.Fatalf("real run rounds = %d, want %d", real.Rounds, radius)
		}
		balls, _ := collectBalls(t, g, assignment, radius)
		for v := 0; v < n; v++ {
			out, rounds, err := balls[v].SimulateCenter(newParityFactory(radius), view.SimOptions{
				N: n, MaxDeg: g.MaxDegree(), UseIDs: true,
			})
			if err != nil {
				t.Fatalf("trial %d vertex %d: %v", trial, v, err)
			}
			if rounds != radius {
				t.Errorf("trial %d vertex %d: simulated rounds %d, want %d", trial, v, rounds, radius)
			}
			if out != real.Outputs[v] {
				t.Fatalf("trial %d vertex %d: simulated output %v != real %v", trial, v, out, real.Outputs[v])
			}
		}
	}
}

func TestSimulateCenterLiesAboutGlobals(t *testing.T) {
	// The transforms rely on re-running machines under fake (n, Δ): check
	// the simulated env really carries the lie.
	g := graph.Path(5)
	assignment := ids.Sequential(5)
	balls, _ := collectBalls(t, g, assignment, 1)
	f := func() sim.Machine {
		var env sim.Env
		return &sim.FuncMachine{
			OnInit:   func(e sim.Env) { env = e },
			OnStep:   func(step int, recv []sim.Message) ([]sim.Message, bool) { return nil, true },
			OnOutput: func() any { return env.N*1000 + env.MaxDeg },
		}
	}
	out, _, err := balls[2].SimulateCenter(f, view.SimOptions{N: 777, MaxDeg: 9, UseIDs: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.(int) != 777*1000+9 {
		t.Errorf("simulated globals = %v, want 777009", out)
	}
}

func TestSimulateCenterRejectsOverHorizon(t *testing.T) {
	g := graph.Path(5)
	balls, _ := collectBalls(t, g, ids.Sequential(5), 1)
	_, _, err := balls[2].SimulateCenter(newParityFactory(1), view.SimOptions{N: 5, MaxDeg: 2, Steps: 5, UseIDs: true})
	if err == nil {
		t.Error("simulation beyond the exactness horizon must error")
	}
}

func TestSimulateCenterErrorsWhenCenterRunsLong(t *testing.T) {
	g := graph.Path(5)
	balls, _ := collectBalls(t, g, ids.Sequential(5), 1)
	// A 3-round machine cannot finish on a radius-1 ball.
	_, _, err := balls[2].SimulateCenter(newParityFactory(3), view.SimOptions{N: 5, MaxDeg: 2, UseIDs: true})
	if err == nil {
		t.Error("center that does not halt within the horizon must error")
	}
}

func TestRandomizedReplay(t *testing.T) {
	// Replaying a randomized machine with the same per-name streams must
	// reproduce the real run (streams are derived from names here).
	n := 20
	g := graph.Ring(n)
	assignment := ids.Sequential(n)
	streamFor := func(name uint64) *rng.Source { return rng.New(name * 7919) }
	factory := func() sim.Machine {
		var env sim.Env
		var out uint64
		return &sim.FuncMachine{
			OnInit: func(e sim.Env) { env = e },
			OnStep: func(step int, recv []sim.Message) ([]sim.Message, bool) {
				switch step {
				case 1:
					return sim.Broadcast(env.Degree, streamFor(env.ID).Uint64()), false
				default:
					for _, m := range recv {
						out ^= m.(uint64)
					}
					return nil, true
				}
			},
			OnOutput: func() any { return out },
		}
	}
	real, err := sim.Run(g, sim.Config{IDs: assignment}, factory)
	if err != nil {
		t.Fatal(err)
	}
	balls, _ := collectBalls(t, g, assignment, 1)
	for v := 0; v < n; v++ {
		out, _, err := balls[v].SimulateCenter(factory, view.SimOptions{N: n, MaxDeg: 2, UseIDs: true})
		if err != nil {
			t.Fatal(err)
		}
		if out != real.Outputs[v] {
			t.Fatalf("vertex %d: replay %v != real %v", v, out, real.Outputs[v])
		}
	}
}

func TestZeroRadiusBall(t *testing.T) {
	g := graph.Star(5)
	balls, rounds := collectBalls(t, g, ids.Sequential(5), 0)
	if rounds != 0 {
		t.Errorf("radius-0 collection took %d rounds", rounds)
	}
	if balls[0].N() != 1 {
		t.Errorf("radius-0 ball has %d vertices", balls[0].N())
	}
	// A 0-round machine must replay fine.
	f := func() sim.Machine {
		var deg int
		return &sim.FuncMachine{
			OnInit:   func(e sim.Env) { deg = e.Degree },
			OnStep:   func(step int, recv []sim.Message) ([]sim.Message, bool) { return nil, true },
			OnOutput: func() any { return deg },
		}
	}
	out, rds, err := balls[0].SimulateCenter(f, view.SimOptions{N: 5, MaxDeg: 4})
	if err != nil || rds != 0 || out.(int) != 4 {
		t.Errorf("0-round replay: out=%v rounds=%d err=%v", out, rds, err)
	}
}
