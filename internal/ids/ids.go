// Package ids provides the vertex-identifier schemes of the DetLOCAL model
// and the randomized ID generation used by the Theorem 5 reduction.
//
// In DetLOCAL every vertex holds a unique Θ(log n)-bit ID; nothing else
// differentiates vertices. The adversary controls the assignment, so
// experiments run deterministic algorithms under several schemes (sequential,
// shuffled, adversarial spreads) to make sure measured round counts are not
// artifacts of friendly IDs. The Theorem 5 construction instead draws
// *random* b-bit IDs and pays a collision probability < n²/2^b, which package
// derand and experiment E5 measure against that bound.
package ids

import (
	"fmt"

	"locality/internal/rng"
)

// Assignment is a vertex-indexed ID table. IDs are uint64; the bit-length
// budget of a scheme is part of its contract, not of the type.
type Assignment []uint64

// Unique reports whether all IDs are pairwise distinct.
func (a Assignment) Unique() bool {
	seen := make(map[uint64]struct{}, len(a))
	for _, id := range a {
		if _, dup := seen[id]; dup {
			return false
		}
		seen[id] = struct{}{}
	}
	return true
}

// MaxBits returns the number of bits needed to write the largest ID.
func (a Assignment) MaxBits() int {
	bitsNeeded := 1
	for _, id := range a {
		n := 0
		for v := id; v > 0; v >>= 1 {
			n++
		}
		if n > bitsNeeded {
			bitsNeeded = n
		}
	}
	return bitsNeeded
}

// Sequential assigns vertex v the ID v+1. The friendliest possible scheme;
// useful as a readable baseline in examples.
func Sequential(n int) Assignment {
	a := make(Assignment, n)
	for v := range a {
		a[v] = uint64(v + 1)
	}
	return a
}

// Shuffled assigns a random permutation of 1..n. This is the default for
// experiments: unique Θ(log n)-bit IDs with no helpful structure.
func Shuffled(n int, r *rng.Source) Assignment {
	p := r.Perm(n)
	a := make(Assignment, n)
	for v := range a {
		a[v] = uint64(p[v] + 1)
	}
	return a
}

// SparseRandom draws n distinct uniform IDs from [1, 2^bits]. It errors if
// the space is too small to make distinctness likely within the retry budget
// (callers wanting collisions should use RandomBits instead).
func SparseRandom(n, bits int, r *rng.Source) (Assignment, error) {
	if bits < 1 || bits > 63 {
		return nil, fmt.Errorf("ids: SparseRandom bits=%d out of [1,63]", bits)
	}
	space := uint64(1) << bits
	if uint64(n) > space {
		return nil, fmt.Errorf("ids: cannot draw %d distinct IDs from 2^%d values", n, bits)
	}
	a := make(Assignment, n)
	seen := make(map[uint64]struct{}, n)
	for v := 0; v < n; v++ {
		ok := false
		for attempt := 0; attempt < 1000; attempt++ {
			id := r.Uint64()%space + 1
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				a[v] = id
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("ids: ID space 2^%d too crowded for %d distinct IDs", bits, n)
		}
	}
	return a, nil
}

// RandomBits draws n independent uniform b-bit IDs with NO distinctness
// guarantee — exactly what the RandLOCAL nodes in the Theorem 5 reduction
// do locally. Collisions happen with probability < n²/2^(b+1); experiment E5
// measures this.
func RandomBits(n, bits int, r *rng.Source) Assignment {
	if bits < 1 || bits > 63 {
		panic(fmt.Sprintf("ids: RandomBits bits=%d out of [1,63]", bits))
	}
	space := uint64(1) << bits
	a := make(Assignment, n)
	for v := range a {
		a[v] = r.Uint64()%space + 1
	}
	return a
}

// AdversarialGaps assigns IDs 1, K, 2K-1, ... with huge gaps, stressing
// algorithms that (incorrectly) assume IDs are dense in [1, n].
func AdversarialGaps(n int, gap uint64) Assignment {
	a := make(Assignment, n)
	id := uint64(1)
	for v := range a {
		a[v] = id
		id += gap
	}
	return a
}

// CollisionProbabilityBound returns the paper's union-bound estimate
// n²/2^bits on the probability that n random bits-bit IDs collide
// (Theorem 5 uses p < n²/2^n). Saturates at 1.
func CollisionProbabilityBound(n, bits int) float64 {
	p := float64(n) * float64(n) / pow2(bits)
	if p > 1 {
		return 1
	}
	return p
}

func pow2(b int) float64 {
	p := 1.0
	for i := 0; i < b; i++ {
		p *= 2
	}
	return p
}
