package ids

import (
	"math"
	"testing"
	"testing/quick"

	"locality/internal/rng"
)

func TestSequential(t *testing.T) {
	a := Sequential(5)
	for v, id := range a {
		if id != uint64(v+1) {
			t.Errorf("Sequential[%d] = %d, want %d", v, id, v+1)
		}
	}
	if !a.Unique() {
		t.Error("Sequential IDs must be unique")
	}
}

func TestShuffledIsPermutation(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		n := int(rawN%100) + 1
		a := Shuffled(n, rng.New(seed))
		if len(a) != n || !a.Unique() {
			return false
		}
		for _, id := range a {
			if id < 1 || id > uint64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSparseRandom(t *testing.T) {
	a, err := SparseRandom(100, 32, rng.New(3))
	if err != nil {
		t.Fatalf("SparseRandom: %v", err)
	}
	if len(a) != 100 || !a.Unique() {
		t.Error("SparseRandom produced malformed assignment")
	}
	if _, err := SparseRandom(10, 2, rng.New(3)); err == nil {
		t.Error("SparseRandom should fail when 10 IDs cannot fit in 2 bits")
	}
	if _, err := SparseRandom(10, 0, rng.New(3)); err == nil {
		t.Error("SparseRandom should reject bits=0")
	}
}

func TestRandomBitsRange(t *testing.T) {
	a := RandomBits(1000, 8, rng.New(7))
	for _, id := range a {
		if id < 1 || id > 256 {
			t.Fatalf("RandomBits(8) produced %d outside [1,256]", id)
		}
	}
}

func TestRandomBitsCollisionRateMatchesBirthday(t *testing.T) {
	// n=20 IDs from 10 bits: collision probability about
	// 1-exp(-n(n-1)/2^(b+1)) ≈ 0.17; the paper's union bound n²/2^b = 0.39
	// must be an upper bound on the observed rate.
	r := rng.New(99)
	const trials = 2000
	collisions := 0
	for i := 0; i < trials; i++ {
		if !RandomBits(20, 10, r).Unique() {
			collisions++
		}
	}
	rate := float64(collisions) / trials
	bound := CollisionProbabilityBound(20, 10)
	if rate > bound {
		t.Errorf("observed collision rate %.3f exceeds union bound %.3f", rate, bound)
	}
	exact := 1 - math.Exp(-20.0*19/2/1024)
	if math.Abs(rate-exact) > 0.05 {
		t.Errorf("observed collision rate %.3f far from birthday estimate %.3f", rate, exact)
	}
}

func TestAdversarialGaps(t *testing.T) {
	a := AdversarialGaps(4, 1000)
	want := Assignment{1, 1001, 2001, 3001}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("AdversarialGaps = %v, want %v", a, want)
		}
	}
	if !a.Unique() {
		t.Error("AdversarialGaps must be unique")
	}
}

func TestMaxBits(t *testing.T) {
	tests := []struct {
		a    Assignment
		want int
	}{
		{Assignment{1}, 1},
		{Assignment{1, 2, 3}, 2},
		{Assignment{255}, 8},
		{Assignment{256}, 9},
		{Assignment{}, 1},
	}
	for _, tt := range tests {
		if got := tt.a.MaxBits(); got != tt.want {
			t.Errorf("MaxBits(%v) = %d, want %d", tt.a, got, tt.want)
		}
	}
}

func TestUnique(t *testing.T) {
	if !(Assignment{1, 2, 3}).Unique() {
		t.Error("distinct IDs reported non-unique")
	}
	if (Assignment{1, 2, 1}).Unique() {
		t.Error("duplicate IDs reported unique")
	}
}

func TestCollisionProbabilityBoundSaturates(t *testing.T) {
	if got := CollisionProbabilityBound(1000, 4); got != 1 {
		t.Errorf("bound should saturate at 1, got %v", got)
	}
	if got := CollisionProbabilityBound(2, 10); math.Abs(got-4.0/1024) > 1e-12 {
		t.Errorf("bound = %v, want %v", got, 4.0/1024)
	}
}
