package linial_test

import (
	"testing"
	"testing/quick"

	"locality/internal/graph"
	"locality/internal/ids"
	"locality/internal/lcl"
	"locality/internal/linial"
	"locality/internal/mathx"
	"locality/internal/rng"
	"locality/internal/sim"
)

func TestFamilyParameters(t *testing.T) {
	f := linial.NewFamily(1000, 3)
	if f.Q <= f.Delta*f.D {
		t.Errorf("q=%d not > Δ·d=%d", f.Q, f.Delta*f.D)
	}
	if mathx.PowInt(f.Q, f.D+1) < f.K {
		t.Errorf("q^(d+1)=%d < k=%d", mathx.PowInt(f.Q, f.D+1), f.K)
	}
	if !mathx.IsPrime(f.Q) {
		t.Errorf("q=%d not prime", f.Q)
	}
}

func TestReduceProperProperty(t *testing.T) {
	// For random proper local colorings, the reduced colors of adjacent
	// vertices must differ: simulate a center with <= Δ neighbors, reduce
	// all of them against their own (unknown to us) neighborhoods is not
	// possible locally, so instead check the defining property directly:
	// Reduce(own, nbrs) never lands in any S_nc... equivalently, reducing
	// both endpoints of an edge with consistent views yields different
	// colors. We check the stronger cover-free guarantee: the new color of
	// own is never a point of any neighbor's set, so if the neighbor keeps
	// any point of its own set, they differ. Here: check new color differs
	// from Reduce(nc, [own]) for each nc.
	f := func(seed uint64, rawK uint16, rawD uint8) bool {
		k := int(rawK%500) + 10
		delta := int(rawD%5) + 1
		fam := linial.NewFamily(k, delta)
		r := rng.New(seed)
		own := r.Intn(k)
		nbrs := make([]int, 0, delta)
		for len(nbrs) < delta {
			c := r.Intn(k)
			if c == own {
				continue
			}
			nbrs = append(nbrs, c)
		}
		newOwn := fam.Reduce(own, nbrs)
		if newOwn < 0 || newOwn >= fam.PaletteSize() {
			return false
		}
		for _, nc := range nbrs {
			// Whatever color nc picks (it sees own among its neighbors),
			// it must differ from newOwn.
			newNbr := fam.Reduce(nc, []int{own})
			if newNbr == newOwn {
				// Only a violation if newOwn is in S_nc; Reduce guarantees
				// newOwn not in S_nc, so equality is impossible.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestReducePanicsOnImproperInput(t *testing.T) {
	fam := linial.NewFamily(100, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("Reduce with own color among neighbors did not panic")
		}
	}()
	fam.Reduce(5, []int{5})
}

func TestScheduleConvergesLogStar(t *testing.T) {
	tests := []struct {
		k0, delta int
		maxRounds int
	}{
		{1 << 10, 3, 6},
		{1 << 20, 3, 7},
		{1 << 40, 3, 8},
		{1 << 20, 10, 7},
		{1 << 60, 4, 9},
	}
	for _, tt := range tests {
		sched := linial.Schedule(tt.k0, tt.delta)
		if len(sched) > tt.maxRounds {
			t.Errorf("Schedule(%d, %d) has %d rounds, want <= %d",
				tt.k0, tt.delta, len(sched), tt.maxRounds)
		}
		// Palette strictly decreases along the schedule.
		k := tt.k0
		for i, f := range sched {
			if f.K != k {
				t.Errorf("schedule step %d expects palette %d, chain has %d", i, f.K, k)
			}
			if f.PaletteSize() >= k {
				t.Errorf("schedule step %d does not shrink: %d -> %d", i, k, f.PaletteSize())
			}
			k = f.PaletteSize()
		}
	}
}

func TestFixedPointIsODeltaSquared(t *testing.T) {
	for _, delta := range []int{2, 3, 5, 8, 16, 32} {
		fp := linial.FixedPoint(1<<30, delta)
		// β·Δ² with a modest β: the polynomial construction gives roughly
		// (2Δ)² = 4Δ² at the fixed point; allow β up to 30 for tiny Δ
		// (prime gaps dominate there).
		if fp > 30*delta*delta+30 {
			t.Errorf("fixed point for Δ=%d is %d, not O(Δ²)", delta, fp)
		}
	}
}

func TestMachineProducesProperColoring(t *testing.T) {
	r := rng.New(17)
	for trial := 0; trial < 8; trial++ {
		var g *graph.Graph
		switch trial % 3 {
		case 0:
			g = graph.RandomTree(120, 5, r)
		case 1:
			g = graph.RandomBoundedDegree(100, 160, 6, r)
		default:
			g = graph.Ring(64)
		}
		n := g.N()
		assignment := ids.Shuffled(n, r)
		opt := linial.Options{InitialPalette: n, Delta: g.MaxDegree()}
		res, err := sim.Run(g, sim.Config{IDs: assignment}, linial.NewFactory(opt))
		if err != nil {
			t.Fatal(err)
		}
		colors := sim.IntOutputs(res)
		fp := linial.FixedPoint(n, g.MaxDegree())
		if err := lcl.Coloring(fp).Validate(lcl.Instance{G: g}, lcl.IntLabels(colors)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Rounds != linial.Rounds(opt) {
			t.Errorf("trial %d: rounds %d, predicted %d", trial, res.Rounds, linial.Rounds(opt))
		}
	}
}

func TestMachineSweepToDeltaPlusOne(t *testing.T) {
	r := rng.New(23)
	g := graph.RandomBoundedDegree(80, 120, 4, r)
	delta := g.MaxDegree()
	opt := linial.Options{InitialPalette: 80, Delta: delta, Target: delta + 1}
	res, err := sim.Run(g, sim.Config{IDs: ids.Shuffled(80, r)}, linial.NewFactory(opt))
	if err != nil {
		t.Fatal(err)
	}
	colors := sim.IntOutputs(res)
	if err := lcl.Coloring(delta+1).Validate(lcl.Instance{G: g}, lcl.IntLabels(colors)); err != nil {
		t.Fatal(err)
	}
}

func TestMachineRoundsGrowAsLogStar(t *testing.T) {
	// Doubling n many times should increase the round count only via the
	// log* schedule length: tiny, slowly growing.
	delta := 3
	r := rng.New(31)
	prev := 0
	for _, n := range []int{16, 256, 4096, 65536} {
		g := graph.RandomTree(n, delta, r)
		opt := linial.Options{InitialPalette: n, Delta: delta}
		res, err := sim.Run(g, sim.Config{IDs: ids.Shuffled(n, r)}, linial.NewFactory(opt))
		if err != nil {
			t.Fatal(err)
		}
		if res.Rounds > 8 {
			t.Errorf("n=%d: %d rounds, want O(log* n) (<= 8)", n, res.Rounds)
		}
		if res.Rounds < prev {
			// Rounds may plateau but should not decrease much; tolerate
			// equal or +-1 jitter from prime gaps.
			if prev-res.Rounds > 1 {
				t.Errorf("n=%d: rounds dropped from %d to %d", n, prev, res.Rounds)
			}
		}
		prev = res.Rounds
	}
}

func TestInitialColorFromInput(t *testing.T) {
	// Supplying initial colors via env.Input (here: degree-based improper
	// coloring would panic, so use index parity on a path, a proper
	// 2-coloring).
	g := graph.Path(10)
	inputs := make([]any, 10)
	for v := range inputs {
		inputs[v] = v % 2
	}
	opt := linial.Options{
		InitialPalette: 2,
		Delta:          2,
		InitialColor:   func(env sim.Env) int { return env.Input.(int) },
	}
	res, err := sim.Run(g, sim.Config{Inputs: inputs}, linial.NewFactory(opt))
	if err != nil {
		t.Fatal(err)
	}
	colors := sim.IntOutputs(res)
	if err := lcl.Coloring(2).Validate(lcl.Instance{G: g}, lcl.IntLabels(colors)); err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 {
		t.Errorf("2-coloring is already at the fixed point; rounds = %d, want 0", res.Rounds)
	}
}

func TestRoundsPrediction(t *testing.T) {
	opt := linial.Options{InitialPalette: 1 << 16, Delta: 3, Target: 4}
	want := len(linial.Schedule(1<<16, 3)) + linial.FixedPoint(1<<16, 3) - 4
	if got := linial.Rounds(opt); got != want {
		t.Errorf("Rounds = %d, want %d", got, want)
	}
}

func TestKWPlanShape(t *testing.T) {
	plan := linial.NewKWPlan(1000, 10)
	// Palette must halve-ish each pass and the total rounds must be far
	// below the naive 990-round sweep.
	if plan.Rounds() >= 500 {
		t.Errorf("KW rounds = %d, want far below the naive sweep", plan.Rounds())
	}
	prev := 1 << 30
	for _, k := range plan.Palettes {
		if k >= prev {
			t.Errorf("palette did not shrink: %v", plan.Palettes)
		}
		prev = k
	}
}

func TestMachineKWSweep(t *testing.T) {
	r := rng.New(29)
	for _, delta := range []int{4, 8, 16} {
		g := graph.RandomTree(400, delta, r)
		d := g.MaxDegree()
		opt := linial.Options{InitialPalette: 400, Delta: d, Target: d + 1, KW: true}
		res, err := sim.Run(g, sim.Config{IDs: ids.Shuffled(400, r), MaxRounds: 10000}, linial.NewFactory(opt))
		if err != nil {
			t.Fatal(err)
		}
		colors := sim.IntOutputs(res)
		if err := lcl.Coloring(d+1).Validate(lcl.Instance{G: g}, lcl.IntLabels(colors)); err != nil {
			t.Fatalf("Δ=%d: %v", delta, err)
		}
		if res.Rounds != linial.Rounds(opt) {
			t.Errorf("Δ=%d: rounds %d, predicted %d", delta, res.Rounds, linial.Rounds(opt))
		}
		// KW must beat the naive sweep for larger Δ.
		naive := linial.Rounds(linial.Options{InitialPalette: 400, Delta: d, Target: d + 1})
		if d >= 8 && res.Rounds >= naive {
			t.Errorf("Δ=%d: KW rounds %d not below naive %d", d, res.Rounds, naive)
		}
	}
}
