// Package linial implements Linial's color-reduction machinery — Theorems 1
// and 2 of the paper — plus the classic color-class sweep that finishes a
// palette down to Δ+1.
//
// Theorem 1 (one-round reduction). Linial proved that a k-coloring can be
// recolored to 5Δ²·log k colors in a single round, via Δ-cover-free set
// systems. We use the explicit polynomial construction of such systems
// (Erdős–Frankl–Füredi): identify each color c < k with a polynomial p_c of
// degree <= d over F_q and let S_c = {(x, p_c(x)) : x in F_q}. Two distinct
// polynomials agree on at most d points, so if q > Δ·d the set S_c of a
// vertex is never covered by the union of its <= Δ neighbors' sets, and the
// vertex can adopt any uncovered point as its new color from a palette of
// size q². For the optimal d this gives q² = O(Δ² log² k / log²(Δ log k)) —
// the same one-round mechanism as the theorem with a slightly weaker
// constant, which iteration (Theorem 2) absorbs: the fixed point is still
// O(Δ²) and the round count is still O(log* k).
//
// Theorem 2 (iterated reduction). Schedule computes the palette trajectory
// k0 -> k1 -> ... down to the fixed point β·Δ², giving an O(log* n)-round
// DetLOCAL algorithm when k0 = poly(n) (IDs as the initial coloring).
//
// Colors in this package are 0-based (0..k-1); the algorithm packages
// convert to the library's 1-based convention at their boundaries.
package linial

import (
	"fmt"

	"locality/internal/mathx"
)

// Family is a Δ-cover-free family over polynomial point sets: it reduces a
// K-coloring to a Q²-coloring in one round on graphs of max degree Delta.
type Family struct {
	// K is the size of the palette being reduced.
	K int
	// Delta is the maximum degree the family tolerates.
	Delta int
	// Q is the field size (prime, > Delta*D).
	Q int
	// D is the polynomial degree bound (Q^(D+1) >= K).
	D int
}

// NewFamily picks the parameters minimizing the output palette Q² for the
// given input palette size k and degree bound delta.
func NewFamily(k, delta int) Family {
	if k < 1 {
		panic(fmt.Sprintf("linial: input palette %d < 1", k))
	}
	if delta < 1 {
		delta = 1
	}
	best := Family{}
	for d := 1; ; d++ {
		// Smallest prime q with q > delta*d and q^(d+1) >= k: start from the
		// larger of delta*d+1 and ceil(k^(1/(d+1))) and walk primes from
		// there (at most a few steps thanks to prime density).
		lo := delta*d + 1
		if r := iroot(k, d+1); r > lo {
			lo = r
		}
		q := mathx.NextPrime(lo)
		for mathx.PowInt(q, d+1) < k {
			q = mathx.NextPrime(q + 1)
		}
		if best.Q == 0 || q < best.Q {
			best = Family{K: k, Delta: delta, Q: q, D: d}
		}
		// Once delta*d alone exceeds the best q found, larger d cannot help.
		if delta*d+1 > best.Q {
			break
		}
		if d > 64 {
			break // k <= 2^64 always satisfiable well before this
		}
	}
	return best
}

// PaletteSize returns the size of the output palette, Q².
func (f Family) PaletteSize() int { return f.Q * f.Q }

// iroot returns ceil(k^(1/e)) for k >= 1, e >= 1, by binary search on the
// saturating integer power.
func iroot(k, e int) int {
	lo, hi := 1, 2
	for mathx.PowInt(hi, e) < k {
		hi *= 2
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if mathx.PowInt(mid, e) >= k {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// evalPoly evaluates the polynomial encoding of color c at point x over F_q:
// the base-q digits of c are the coefficients.
func (f Family) evalPoly(c, x int) int {
	// Horner over the base-q digits, most significant first.
	digits := make([]int, f.D+1)
	for i := 0; i <= f.D; i++ {
		digits[i] = c % f.Q
		c /= f.Q
	}
	y := 0
	for i := f.D; i >= 0; i-- {
		y = (y*x + digits[i]) % f.Q
	}
	return y
}

// point returns the i-th element of S_c encoded as an integer in [0, Q²).
func (f Family) point(c, x int) int {
	return x*f.Q + f.evalPoly(c, x)
}

// Reduce returns the new color of a vertex with color own whose neighbors
// have colors nbrs (entries < 0 are ignored: "no constraint"). All colors
// must be < K and the effective number of constraining neighbors at most
// Delta; violations panic, since they indicate a broken caller, not bad
// user input.
func (f Family) Reduce(own int, nbrs []int) int {
	if own < 0 || own >= f.K {
		panic(fmt.Sprintf("linial: color %d outside palette 0..%d", own, f.K-1))
	}
	covered := make(map[int]struct{}, (f.Delta+1)*f.Q)
	active := 0
	for _, nc := range nbrs {
		if nc < 0 {
			continue
		}
		if nc >= f.K {
			panic(fmt.Sprintf("linial: neighbor color %d outside palette 0..%d", nc, f.K-1))
		}
		if nc == own {
			panic(fmt.Sprintf("linial: neighbor shares color %d (input coloring improper)", own))
		}
		active++
		for x := 0; x < f.Q; x++ {
			covered[f.point(nc, x)] = struct{}{}
		}
	}
	if active > f.Delta {
		panic(fmt.Sprintf("linial: %d constraining neighbors exceed Delta=%d", active, f.Delta))
	}
	for x := 0; x < f.Q; x++ {
		pt := f.point(own, x)
		if _, bad := covered[pt]; !bad {
			return pt
		}
	}
	// Unreachable by the cover-free property (q > Δ·d).
	panic("linial: cover-free property violated (internal bug)")
}

// Schedule returns the palette trajectory of iterated one-round reductions
// starting from k0 on degree-delta graphs: schedule[i] reduces palette
// schedule[i].K to schedule[i].PaletteSize(), and the final palette is the
// fixed point (applying another reduction would not shrink it). The length
// of the schedule is the round cost of Theorem 2 — O(log* k0).
func Schedule(k0, delta int) []Family {
	var sched []Family
	k := k0
	for {
		f := NewFamily(k, delta)
		if f.PaletteSize() >= k {
			return sched
		}
		sched = append(sched, f)
		k = f.PaletteSize()
	}
}

// FixedPoint returns the final palette size of the iterated reduction, the
// β·Δ² of Theorem 2.
func FixedPoint(k0, delta int) int {
	k := k0
	for _, f := range Schedule(k0, delta) {
		k = f.PaletteSize()
	}
	return k
}
