package linial

import "fmt"

// This file implements the Kuhn–Wattenhofer iterated block color reduction:
// given a proper k-coloring and a target palette T >= Δ+1, reduce to a
// T-coloring in O(T · log(k/T)) rounds — exponentially faster than the
// naive (k-T)-round class sweep when k >> T. The Δ-coloring algorithms use
// it to turn Linial's O(Δ²) fixed point into a (Δ+1)-coloring cheaply,
// which in turn powers O(Δ)-round MIS-by-color-classes.
//
// One halving pass with current palette k: partition the palette into
// blocks of 2T consecutive colors; block b will own the target range
// [b·T, (b+1)·T). All blocks sweep their (at most 2T) classes in parallel —
// sub-step j recolors the vertices holding the j-th color of their block
// into a free color of the block's target range. Adjacent vertices in
// different blocks can never collide (disjoint target ranges), and within
// a block at most Δ < T neighbors constrain a choice, so a free color
// always exists. The palette shrinks to ceil(k/(2T))·T <= k/2 + T.

// KWPlan is the round schedule of the iterated reduction from K0 colors to
// Target colors: Palettes[i] is the palette size before pass i, and each
// pass costs PassLen(i) = min(2*Target, Palettes[i]) rounds.
type KWPlan struct {
	Target   int
	Palettes []int
}

// NewKWPlan computes the halving schedule.
func NewKWPlan(k0, target int) KWPlan {
	if target < 1 {
		panic(fmt.Sprintf("linial: KW target %d < 1", target))
	}
	plan := KWPlan{Target: target}
	k := k0
	for k > target {
		plan.Palettes = append(plan.Palettes, k)
		blocks := (k + 2*target - 1) / (2 * target)
		next := blocks * target
		if next >= k {
			// k <= 2*target: one final full sweep of the single block.
			next = target
		}
		k = next
	}
	return plan
}

// PassLen returns the number of rounds of pass i.
func (p KWPlan) PassLen(i int) int {
	k := p.Palettes[i]
	if k < 2*p.Target {
		return k
	}
	return 2 * p.Target
}

// Rounds is the total round cost of the reduction.
func (p KWPlan) Rounds() int {
	total := 0
	for i := range p.Palettes {
		total += p.PassLen(i)
	}
	return total
}

// Recolor executes one sub-step of pass i for a vertex: given the vertex's
// current color (0-based, < Palettes[i]), the sub-step index j (0-based, <
// PassLen(i)) and the neighbors' current colors (entries < 0 ignored), it
// returns the vertex's color after the sub-step. Vertices not in the
// sweeping class keep their color.
func (p KWPlan) Recolor(i, j, own int, nbrs []int) int {
	k := p.Palettes[i]
	t := p.Target
	blockSize := 2 * t
	if k < blockSize {
		blockSize = k // single block
	}
	block := own / blockSize
	if own%blockSize != j {
		return own // not this sub-step's class
	}
	lo := block * t // target range [lo, lo+t)
	used := make([]bool, t)
	for _, nc := range nbrs {
		if nc >= lo && nc < lo+t {
			used[nc-lo] = true
		}
	}
	for c := 0; c < t; c++ {
		if !used[c] {
			return lo + c
		}
	}
	panic("linial: KW recolor found no free color (degree >= Target?)")
}
