package linial

import (
	"fmt"

	"locality/internal/sim"
)

// Options configures a standalone Linial coloring machine.
type Options struct {
	// InitialPalette is k0: every initial color must lie in 0..k0-1.
	InitialPalette int
	// Delta is the degree bound the reduction tolerates.
	Delta int
	// InitialColor extracts a vertex's initial color (0-based) from its
	// environment. Nil means ID-1 (the DetLOCAL convention: unique IDs in
	// 1..k0 are a k0-coloring, exactly how the paper bootstraps Theorem 2).
	InitialColor func(env sim.Env) int
	// Target, when positive, appends a color-class sweep reducing the
	// fixed-point palette further down to Target colors (0..Target-1);
	// Target must be at least Delta+1. Zero means stop at the fixed point.
	Target int
	// KW selects the Kuhn–Wattenhofer block reduction for the final sweep:
	// O(Target·log(fp/Target)) rounds instead of fp-Target. Ignored when
	// Target is zero.
	KW bool
}

// Machine executes Theorem 2 (and optionally the class sweep) as a
// standalone simulator machine. Output is the final color, 1-based, as the
// rest of the library expects.
type Machine struct {
	opt   Options
	env   sim.Env
	sched []Family
	color int // current 0-based color
	m     int // fixed-point palette size
	kw    KWPlan
	// kwAt[s] = (pass, substep) for sweep step s (0-based), precomputed.
	kwAt [][2]int
}

var _ sim.Machine = (*Machine)(nil)

// NewFactory returns a factory of Linial machines. It panics on option
// errors (misuse by the caller, not runtime input).
func NewFactory(opt Options) sim.Factory {
	if opt.InitialPalette < 1 {
		panic("linial: InitialPalette must be >= 1")
	}
	if opt.Target != 0 && opt.Target < opt.Delta+1 {
		panic(fmt.Sprintf("linial: Target %d < Delta+1 = %d", opt.Target, opt.Delta+1))
	}
	sched := Schedule(opt.InitialPalette, opt.Delta)
	return func() sim.Machine {
		return &Machine{opt: opt, sched: sched}
	}
}

// Init implements sim.Machine.
func (m *Machine) Init(env sim.Env) {
	m.env = env
	if m.opt.InitialColor != nil {
		m.color = m.opt.InitialColor(env)
	} else {
		if !env.HasID {
			panic("linial: default initial coloring needs IDs (DetLOCAL)")
		}
		m.color = int(env.ID) - 1
	}
	if m.color < 0 || m.color >= m.opt.InitialPalette {
		panic(fmt.Sprintf("linial: initial color %d outside 0..%d", m.color, m.opt.InitialPalette-1))
	}
	m.m = m.opt.InitialPalette
	if len(m.sched) > 0 {
		m.m = m.sched[len(m.sched)-1].PaletteSize()
	}
	if m.opt.Target != 0 && m.opt.KW {
		m.kw = NewKWPlan(m.m, m.opt.Target)
		for i := range m.kw.Palettes {
			for j := 0; j < m.kw.PassLen(i); j++ {
				m.kwAt = append(m.kwAt, [2]int{i, j})
			}
		}
	}
}

// Step implements sim.Machine. Steps 2..len(sched)+1 apply one family each;
// the sweep (if any) occupies the following m-Target steps.
func (m *Machine) Step(step int, recv []sim.Message) ([]sim.Message, bool) {
	if step == 1 {
		if m.totalSteps() == 1 {
			// Nothing to reduce: the initial coloring is already final.
			return nil, true
		}
		return sim.Broadcast(m.env.Degree, m.color), false
	}
	nbrs := decodeColors(recv)
	reduceIdx := step - 2
	switch {
	case reduceIdx < len(m.sched):
		m.color = m.sched[reduceIdx].Reduce(m.color, nbrs)
	case m.opt.KW && m.opt.Target != 0:
		sweepStep := reduceIdx - len(m.sched)
		if sweepStep >= len(m.kwAt) {
			return nil, true
		}
		pass, sub := m.kwAt[sweepStep][0], m.kwAt[sweepStep][1]
		m.color = m.kw.Recolor(pass, sub, m.color, nbrs)
	default:
		sweepStep := reduceIdx - len(m.sched) // 0-based sweep step
		if m.opt.Target == 0 || m.opt.Target >= m.m {
			return nil, true
		}
		class := m.m - 1 - sweepStep // recolor classes from the top down
		if class < m.opt.Target {
			return nil, true
		}
		if m.color == class {
			m.color = smallestFree(nbrs, m.opt.Target)
		}
	}
	// Halt early if nothing remains to do after this broadcast.
	if step >= m.totalSteps() {
		return nil, true
	}
	return sim.Broadcast(m.env.Degree, m.color), false
}

// totalSteps is the step at which the machine halts: one initial broadcast
// step, one step per schedule entry, one per sweep class (or KW sub-step).
func (m *Machine) totalSteps() int {
	sweep := 0
	if m.opt.Target != 0 && m.m > m.opt.Target {
		if m.opt.KW {
			sweep = len(m.kwAt)
		} else {
			sweep = m.m - m.opt.Target
		}
	}
	return 1 + len(m.sched) + sweep
}

// Output implements sim.Machine: the final color, 1-based.
func (m *Machine) Output() any { return m.color + 1 }

// decodeColors converts received messages to neighbor colors; nil messages
// become -1 ("no constraint").
func decodeColors(recv []sim.Message) []int {
	nbrs := make([]int, len(recv))
	for p, msg := range recv {
		if msg == nil {
			nbrs[p] = -1
			continue
		}
		nbrs[p] = msg.(int)
	}
	return nbrs
}

// smallestFree returns the smallest color in 0..limit-1 not present in nbrs.
// It panics if none is free (cannot happen when limit > len(nbrs)).
func smallestFree(nbrs []int, limit int) int {
	used := make([]bool, limit)
	for _, nc := range nbrs {
		if nc >= 0 && nc < limit {
			used[nc] = true
		}
	}
	for c := 0; c < limit; c++ {
		if !used[c] {
			return c
		}
	}
	panic("linial: no free color in sweep (degree exceeds Target-1?)")
}

// Rounds predicts the round cost of a machine built with opt: the schedule
// length plus the sweep length. Useful for tests and the experiment tables.
func Rounds(opt Options) int {
	sched := Schedule(opt.InitialPalette, opt.Delta)
	m := opt.InitialPalette
	if len(sched) > 0 {
		m = sched[len(sched)-1].PaletteSize()
	}
	sweep := 0
	if opt.Target != 0 && m > opt.Target {
		if opt.KW {
			sweep = NewKWPlan(m, opt.Target).Rounds()
		} else {
			sweep = m - opt.Target
		}
	}
	return len(sched) + sweep
}
