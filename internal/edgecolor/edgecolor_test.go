package edgecolor_test

import (
	"testing"

	"locality/internal/edgecolor"
	"locality/internal/graph"
	"locality/internal/ids"
	"locality/internal/rng"
	"locality/internal/sim"
)

// runEdgeColor executes the machine and returns the reconciled edge colors.
func runEdgeColor(t *testing.T, g *graph.Graph, assignment ids.Assignment, opt edgecolor.Options) ([]int, int) {
	t.Helper()
	res, err := sim.Run(g, sim.Config{IDs: assignment, MaxRounds: 10000}, edgecolor.NewFactory(opt))
	if err != nil {
		t.Fatal(err)
	}
	colors, err := edgecolor.EdgeColors(g, res.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	return colors, res.Rounds
}

// checkProper verifies no two incident edges share a color and the palette
// bound holds.
func checkProper(t *testing.T, g *graph.Graph, colors []int, palette int) {
	t.Helper()
	ecg := &graph.EdgeColoredGraph{Graph: g, Colors: colors, NumColors: palette}
	if err := ecg.VerifyEdgeColoring(); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeColoringVariety(t *testing.T) {
	r := rng.New(3)
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"random tree", graph.RandomTree(200, 6, r)},
		{"ring", graph.Ring(31)},
		{"bounded degree", graph.RandomBoundedDegree(150, 300, 7, r)},
		{"star", graph.Star(20)},
		{"single edge", graph.Path(2)},
		{"grid", graph.Grid(8, 8)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			n := tt.g.N()
			colors, rounds := runEdgeColor(t, tt.g, ids.Shuffled(n, r), edgecolor.Options{})
			delta := tt.g.MaxDegree()
			palette := 2*delta - 1
			if palette < 1 {
				palette = 1
			}
			checkProper(t, tt.g, colors, palette)
			if want := edgecolor.Rounds(edgecolor.Options{}, n, delta); rounds != want {
				t.Errorf("rounds %d, predicted %d", rounds, want)
			}
		})
	}
}

func TestEdgeColoringRoundsLogStar(t *testing.T) {
	r := rng.New(5)
	var rounds []int
	for _, n := range []int{128, 1024, 8192} {
		g := graph.RandomTree(n, 4, r)
		_, rds := runEdgeColor(t, g, ids.Shuffled(n, r), edgecolor.Options{})
		rounds = append(rounds, rds)
	}
	// O(log* n + Δ log Δ): growth across a 64x size increase stays tiny.
	if rounds[2]-rounds[0] > 4 {
		t.Errorf("edge-coloring rounds grew too fast: %v", rounds)
	}
}

func TestEdgeColoringEngineEquivalence(t *testing.T) {
	r := rng.New(7)
	g := graph.RandomTree(80, 4, r)
	assignment := ids.Shuffled(80, r)
	var prev []int
	for _, engine := range []sim.Engine{sim.EngineSequential, sim.EngineConcurrent} {
		res, err := sim.Run(g, sim.Config{IDs: assignment, Engine: engine, MaxRounds: 10000},
			edgecolor.NewFactory(edgecolor.Options{}))
		if err != nil {
			t.Fatal(err)
		}
		colors, err := edgecolor.EdgeColors(g, res.Outputs)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			for e := range colors {
				if colors[e] != prev[e] {
					t.Fatalf("engines disagree on edge %d", e)
				}
			}
		}
		prev = colors
	}
}

func TestEdgeColoringPortShuffleInvariance(t *testing.T) {
	r := rng.New(9)
	g := graph.RandomTree(120, 5, r)
	sg := g.ShufflePorts(r)
	assignment := ids.Shuffled(120, r)
	for _, gg := range []*graph.Graph{g, sg} {
		colors, _ := runEdgeColor(t, gg, assignment, edgecolor.Options{})
		checkProper(t, gg, colors, 2*gg.MaxDegree()-1)
	}
}

func TestEdgeColoringWiderTarget(t *testing.T) {
	r := rng.New(11)
	g := graph.RandomTree(100, 4, r)
	colors, _ := runEdgeColor(t, g, ids.Shuffled(100, r), edgecolor.Options{Target: 12})
	checkProper(t, g, colors, 12)
}

func TestEdgeColorsDetectsDisagreement(t *testing.T) {
	g := graph.Path(3)
	outputs := []any{
		edgecolor.Result{PortColors: []int{1}},
		edgecolor.Result{PortColors: []int{2, 3}}, // disagrees with vertex 0 about their shared edge
		edgecolor.Result{PortColors: []int{3}},
	}
	if _, err := edgecolor.EdgeColors(g, outputs); err == nil {
		t.Error("endpoint disagreement not detected")
	}
}
