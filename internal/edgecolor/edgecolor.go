// Package edgecolor implements deterministic distributed (2Δ-1)-edge
// coloring — one of the symmetry-breaking problems in the paper's Section I
// survey ("(2Δ-1)-edge coloring is much easier than maximal matching..."
// [20]) and a useful substrate: a proper edge coloring is a schedule, and
// sweeping its classes yields matchings, orientations, and the sinkless
// instances' input labelings.
//
// The algorithm runs Linial's reduction on the LINE GRAPH without
// materializing it: every vertex locally hosts its incident edges; an
// edge's color is recomputed identically by both endpoints from the colors
// of all edges adjacent to it (their union is exactly the line-graph
// neighborhood, of size at most 2Δ-2). The initial coloring derives from
// the endpoint ID pair; Theorem 2 iterations shrink the palette to
// O(Δ²) in O(log* n) rounds and the Kuhn–Wattenhofer block reduction
// finishes at 2Δ-1 in O(Δ log Δ) more.
package edgecolor

import (
	"fmt"

	"locality/internal/graph"
	"locality/internal/linial"
	"locality/internal/mathx"
	"locality/internal/sim"
)

// Options configures the edge-coloring machine.
type Options struct {
	// IDSpace bounds the vertex IDs (1..IDSpace); 0 means Env.N.
	IDSpace int
	// Delta bounds the maximum degree; 0 means Env.MaxDeg.
	Delta int
	// Target is the final palette; 0 means 2Δ-1 (it must be at least
	// 2Δ-1 so a free color always exists during reductions).
	Target int
}

// Result is the per-vertex output: the final color of each incident edge in
// port order. Both endpoints of an edge compute the same color; the
// EdgeColors helper reconciles per-vertex outputs into a per-edge table and
// reports any disagreement.
type Result struct {
	PortColors []int
}

// plan is the shared reduction schedule.
type plan struct {
	sched  []linial.Family
	fp     int
	kw     linial.KWPlan
	kwAt   [][2]int
	target int
}

func newPlan(idSpace, delta, target int) plan {
	deltaL := mathx.Max(1, 2*delta-2)
	if target == 0 {
		target = mathx.Max(1, 2*delta-1)
	}
	if target < 2*delta-1 {
		panic(fmt.Sprintf("edgecolor: target %d below 2Δ-1 = %d", target, 2*delta-1))
	}
	k0 := idSpace * idSpace
	p := plan{
		sched:  linial.Schedule(k0, deltaL),
		fp:     linial.FixedPoint(k0, deltaL),
		target: target,
	}
	if p.fp > target {
		p.kw = linial.NewKWPlan(p.fp, target)
		for i := range p.kw.Palettes {
			for j := 0; j < p.kw.PassLen(i); j++ {
				p.kwAt = append(p.kwAt, [2]int{i, j})
			}
		}
	}
	return p
}

// Rounds predicts the machine's round count.
func Rounds(opt Options, n, maxDeg int) int {
	if opt.IDSpace == 0 {
		opt.IDSpace = n
	}
	if opt.Delta == 0 {
		opt.Delta = maxDeg
	}
	p := newPlan(opt.IDSpace, opt.Delta, opt.Target)
	return 1 + len(p.sched) + len(p.kwAt)
}

// msg is the per-port broadcast: the sender's incident edge colors plus the
// port index of the shared edge on the sender's side.
type msg struct {
	ID         uint64
	EdgeColors []int
	ThisPort   int
}

type machine struct {
	opt    Options
	plan   plan
	env    sim.Env
	colors []int
}

var _ sim.Machine = (*machine)(nil)

// NewFactory returns the deterministic (2Δ-1)-edge-coloring machine.
func NewFactory(opt Options) sim.Factory {
	return func() sim.Machine { return &machine{opt: opt} }
}

func (m *machine) Init(env sim.Env) {
	if !env.HasID {
		panic("edgecolor: deterministic machine requires IDs")
	}
	m.env = env
	if m.opt.IDSpace == 0 {
		m.opt.IDSpace = env.N
	}
	if m.opt.Delta == 0 {
		m.opt.Delta = env.MaxDeg
	}
	m.plan = newPlan(m.opt.IDSpace, m.opt.Delta, m.opt.Target)
	m.colors = make([]int, env.Degree)
}

func (m *machine) Step(step int, recv []sim.Message) ([]sim.Message, bool) {
	s, k := len(m.plan.sched), len(m.plan.kwAt)
	switch {
	case step == 1:
		return m.send(true), false
	case step == 2:
		for p, raw := range recv {
			mm := raw.(msg)
			m.colors[p] = m.initialColor(m.env.ID, mm.ID)
		}
		return m.send(false), false
	case step <= 2+s:
		fam := m.plan.sched[step-3]
		m.reduce(recv, fam.Reduce)
		if step == 2+s && k == 0 {
			return nil, true
		}
		return m.send(false), false
	case step <= 2+s+k:
		pass, sub := m.plan.kwAt[step-3-s][0], m.plan.kwAt[step-3-s][1]
		m.reduce(recv, func(own int, nbrs []int) int {
			return m.plan.kw.Recolor(pass, sub, own, nbrs)
		})
		if step == 2+s+k {
			return nil, true
		}
		return m.send(false), false
	default:
		return nil, true
	}
}

// initialColor ranks the ID pair in the IDSpace² palette; both endpoints
// compute the same value.
func (m *machine) initialColor(a, b uint64) int {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	return int(lo-1)*m.opt.IDSpace + int(hi-1)
}

// reduce recomputes every incident edge's color from the union of both
// endpoints' incident colors.
func (m *machine) reduce(recv []sim.Message, f func(own int, nbrs []int) int) {
	next := make([]int, m.env.Degree)
	for p := range next {
		mm, ok := recv[p].(msg)
		if !ok {
			panic(fmt.Sprintf("edgecolor: expected msg on port %d, got %T", p, recv[p]))
		}
		nbrs := make([]int, 0, 2*m.opt.Delta)
		for q, c := range m.colors {
			if q != p {
				nbrs = append(nbrs, c)
			}
		}
		for q, c := range mm.EdgeColors {
			if q != mm.ThisPort {
				nbrs = append(nbrs, c)
			}
		}
		next[p] = f(m.colors[p], nbrs)
	}
	m.colors = next
}

func (m *machine) send(withID bool) []sim.Message {
	out := make([]sim.Message, m.env.Degree)
	for p := range out {
		mm := msg{ThisPort: p, EdgeColors: append([]int(nil), m.colors...)}
		if withID {
			mm.ID = m.env.ID
		}
		out[p] = mm
	}
	return out
}

func (m *machine) Output() any {
	out := make([]int, len(m.colors))
	for p, c := range m.colors {
		out[p] = c + 1 // 1-based palette
	}
	return Result{PortColors: out}
}

// EdgeColors reconciles the per-vertex outputs into a per-edge color table
// and errors if the two endpoints of any edge disagree (which would be an
// implementation bug, caught here rather than silently mis-verified).
func EdgeColors(g *graph.Graph, outputs []any) ([]int, error) {
	colors := make([]int, g.M())
	for i := range colors {
		colors[i] = -1
	}
	for v := 0; v < g.N(); v++ {
		res, ok := outputs[v].(Result)
		if !ok {
			return nil, fmt.Errorf("edgecolor: output %d is %T", v, outputs[v])
		}
		if len(res.PortColors) != g.Degree(v) {
			return nil, fmt.Errorf("edgecolor: vertex %d has %d port colors for degree %d",
				v, len(res.PortColors), g.Degree(v))
		}
		for p, h := range g.Ports(v) {
			c := res.PortColors[p]
			if colors[h.Edge] == -1 {
				colors[h.Edge] = c
			} else if colors[h.Edge] != c {
				return nil, fmt.Errorf("edgecolor: edge %d colored %d and %d by its endpoints",
					h.Edge, colors[h.Edge], c)
			}
		}
	}
	return colors, nil
}
