package analysis_test

import (
	"testing"

	"locality/internal/analysis"
	"locality/internal/analysis/analysistest"
)

func TestNoWallClock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(),
		analysis.NewNoWallClock(analysis.NoWallClockOptions{}), "nowallclock")
}

func TestNoWallClockAllow(t *testing.T) {
	a := analysis.NewNoWallClock(analysis.NoWallClockOptions{AllowPackages: []string{"allowed"}})
	analysistest.Run(t, analysistest.TestData(), a, "allowed")
}
