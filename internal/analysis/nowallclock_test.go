package analysis_test

import (
	"testing"

	"locality/internal/analysis"
	"locality/internal/analysis/analysistest"
)

func TestNoWallClock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(),
		analysis.NewNoWallClock(analysis.NoWallClockOptions{}), "nowallclock")
}

func TestNoWallClockAllow(t *testing.T) {
	a := analysis.NewNoWallClock(analysis.NoWallClockOptions{AllowPackages: []string{"allowed"}})
	analysistest.Run(t, analysistest.TestData(), a, "allowed")
}

func TestNoWallClockAllowFiles(t *testing.T) {
	// One file of the package is the sanctioned clock consumer; the rest of
	// the package stays under the ban.
	a := analysis.NewNoWallClock(analysis.NoWallClockOptions{
		AllowFiles: []string{"fileallowed/retry.go"},
	})
	analysistest.Run(t, analysistest.TestData(), a, "fileallowed")
}
