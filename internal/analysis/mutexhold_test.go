package analysis_test

import (
	"testing"

	"locality/internal/analysis"
	"locality/internal/analysis/analysistest"
)

func TestMutexHold(t *testing.T) {
	a := analysis.NewMutexHold(analysis.MutexHoldOptions{
		Exemptions: []analysis.FuncExemption{
			{Func: "mutexhold.(*R).Sanctioned", Kind: "mutexhold", Reason: "fixture: single-consumer queue, reader never takes mu"},
			{Func: "mutexhold.(*R).NoLock", Kind: "mutexhold", Reason: "fixture: stale, lock was removed"},
		},
	})
	analysistest.Run(t, analysistest.TestData(), a, "mutexhold")
}
