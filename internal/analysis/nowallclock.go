package analysis

import (
	"go/ast"
	"go/token"
)

// clockFuncs are the package time functions that read or depend on the wall
// clock (or the process scheduler). Using time.Duration values — e.g. the
// sim.Config.Deadline field — is fine; only these calls are banned.
var clockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

// NoWallClockOptions configures the nowallclock analyzer.
type NoWallClockOptions struct {
	// AllowPackages lists import paths exempt from the check. The repository
	// gate allows locality/internal/sim (the kernel's Config.Deadline
	// watchdog) and the supervision layer (internal/jobs, cmd/localityd),
	// whose drain deadlines and backoff waits are wall-clock by nature.
	AllowPackages []string
	// AllowFiles lists slash-separated file path suffixes exempt from the
	// check — for a package with exactly one sanctioned clock consumer,
	// leaving the rest of the package under the ban.
	AllowFiles []string
	// AllowFuncs lists import-path-qualified function names
	// ("locality/internal/harness.waitAttempt") exempt from the check —
	// the narrowest carve-out, shared with nondetflow's wallclock
	// exemption table so the intraprocedural leaf check and the
	// interprocedural reachability check sanction exactly the same code.
	// Requires a driver that supplies Pass.Prog; without a call graph the
	// entries are ignored.
	AllowFuncs []string
}

// NewNoWallClock returns the nowallclock analyzer: model code must not read
// the wall clock. The LOCAL model's only notion of time is the round number;
// a Machine that consults time.Now or sleeps produces results that depend on
// host scheduling, which breaks the sequential/concurrent engine-equivalence
// guarantee and makes fault plans and Theorem 10/11 runs non-reproducible.
// Test files are exempt (they legitimately time deadlines and poll).
func NewNoWallClock(opt NoWallClockOptions) *Analyzer {
	a := &Analyzer{
		Name: "nowallclock",
		Doc: "forbid time.Now/Since/Sleep and friends in model code; logical time " +
			"is the round number, and only the sim deadline machinery may consult the clock",
	}
	allowFunc := map[string]bool{}
	for _, f := range opt.AllowFuncs {
		allowFunc[f] = true
	}
	a.Run = func(pass *Pass) error {
		if pkgAllowed(pass, opt.AllowPackages) {
			return nil
		}
		// Positions inside an exempted function (including its closures).
		inAllowed := func(pos token.Pos) bool {
			if len(allowFunc) == 0 || pass.Prog == nil {
				return false
			}
			for _, n := range pass.funcNodes() {
				if allowFunc[n.QualifiedName()] && n.Decl.Pos() <= pos && pos <= n.Decl.End() {
					return true
				}
			}
			return false
		}
		for _, f := range pass.Files {
			if fileAllowed(pass, f.Pos(), opt.AllowFiles) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.TypesInfo, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !clockFuncs[fn.Name()] {
					return true
				}
				if pass.InTestFile(call.Pos()) || inAllowed(call.Pos()) {
					return true
				}
				pass.Reportf(call.Pos(), "call of time.%s in model code: the LOCAL model's "+
					"only clock is the round number (wall-clock reads make runs "+
					"scheduling-dependent); deadline handling belongs to internal/sim", fn.Name())
				return true
			})
		}
		return nil
	}
	return a
}
