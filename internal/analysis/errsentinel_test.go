package analysis_test

import (
	"testing"

	"locality/internal/analysis"
	"locality/internal/analysis/analysistest"
)

func TestErrSentinel(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(),
		analysis.NewErrSentinel(analysis.ErrSentinelOptions{}), "errsentinel")
}
