package analysis_test

import (
	"testing"

	"locality/internal/analysis"
	"locality/internal/analysis/analysistest"
)

func TestNonDetFlow(t *testing.T) {
	// nondetflow: transitive leaks are reported at the taint root with full
	// provenance; flows through exempt packages are absorbed at the boundary.
	a := analysis.NewNonDetFlow(analysis.NonDetFlowOptions{
		ExemptPackages: []string{"nondetflowexempt"},
	})
	analysistest.Run(t, analysistest.TestData(), a, "nondetflow", "nondetflowdep")
}

func TestNonDetFlowExemptions(t *testing.T) {
	// Function-level exemptions: a live leaf-confined entry silences the
	// leaf and its callers; stale, unknown and unjustified entries are
	// reported in the package they point at.
	a := analysis.NewNonDetFlow(analysis.NonDetFlowOptions{
		Exemptions: []analysis.FuncExemption{
			{Func: "nondetflowstale.Wait", Kind: "wallclock", Reason: "fixture: sanctioned backoff leaf"},
			{Func: "nondetflowstale.NotALeaf", Kind: "wallclock", Reason: "fixture: stale, read moved to helper"},
			{Func: "nondetflowstale.Unjustified", Kind: "wallclock", Reason: ""},
			{Func: "nondetflowstale.Gone", Kind: "wallclock", Reason: "fixture: function was deleted"},
		},
	})
	analysistest.Run(t, analysistest.TestData(), a, "nondetflowstale")
}
