package analysis_test

import (
	"testing"

	"locality/internal/analysis"
	"locality/internal/analysis/analysistest"
)

func TestNoRawRand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(),
		analysis.NewNoRawRand(analysis.NoRawRandOptions{}), "norawrand")
}

// TestNoRawRandAllow checks the package allowlist: the "allowed" fixture
// imports math/rand and uses the clock but carries no want comments, so any
// diagnostic on it fails the test — unless the allowlist suppresses them all.
func TestNoRawRandAllow(t *testing.T) {
	a := analysis.NewNoRawRand(analysis.NoRawRandOptions{AllowPackages: []string{"allowed"}})
	analysistest.Run(t, analysistest.TestData(), a, "allowed")
}
