package analysis_test

import (
	"testing"

	"locality/internal/analysis"
	"locality/internal/analysis/analysistest"
)

func TestCtxFlow(t *testing.T) {
	a := analysis.NewCtxFlow(analysis.CtxFlowOptions{
		Exemptions: []analysis.FuncExemption{
			{Func: "ctxflow.ReaperLoop", Kind: "background", Reason: "fixture: reaper outlives the request"},
			{Func: "ctxflow.ReaperFixed", Kind: "background", Reason: "fixture: stale after WithoutCancel remediation"},
			{Func: "ctxflow.FireAndForget", Kind: "noctx", Reason: "fixture: sanctioned fire-and-forget"},
			{Func: "ctxflow.NoCtxAnymore", Kind: "noctx", Reason: "fixture: signature lost its context"},
			{Func: "ctxflow.Vanished", Kind: "noctx", Reason: "fixture: function was deleted"},
		},
	})
	analysistest.Run(t, analysistest.TestData(), a, "ctxflow")
}
