// Package analysistest runs analyzers over fixture packages and checks
// their diagnostics against expectations written in the fixture sources —
// the same convention as golang.org/x/tools/go/analysis/analysistest, which
// this package reimplements (stdlib-only) for the localvet suite.
//
// An expectation is a comment of the form
//
//	// want "regexp" "another regexp"
//
// attached to the line the diagnostic should appear on. Every diagnostic
// must match an expectation on its line and every expectation must be
// matched by a diagnostic; anything unmatched fails the test. A fixture
// package therefore demonstrates flagged cases (lines with want comments)
// and accepted cases (lines without) in one place.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"locality/internal/analysis"
)

// TestData returns the caller package's testdata directory.
func TestData() string {
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		panic("analysistest: cannot locate caller for testdata")
	}
	return filepath.Join(filepath.Dir(file), "testdata")
}

// Run loads each fixture package from testdata/src/<pkg>, runs the analyzer
// on it, and reports mismatches between diagnostics and want expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	moduleDir, err := analysis.FindModuleRoot(testdata)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, pkg := range pkgs {
		loader := analysis.NewLoader("locality", moduleDir)
		loader.ExtraSrcDirs = []string{filepath.Join(testdata, "src")}
		loader.IncludeTests = true
		p, err := loader.Load(pkg)
		if err != nil {
			t.Errorf("analysistest: loading %s: %v", pkg, err)
			continue
		}
		// The call graph spans everything the fixture pulled in, so
		// interprocedural analyzers see cross-package helper bodies.
		prog := analysis.BuildProgram(loader.Loaded())
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      p.Fset,
			Files:     p.Files,
			Pkg:       p.Types,
			TypesInfo: p.Info,
			Prog:      prog,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			t.Errorf("analysistest: running %s on %s: %v", a.Name, pkg, err)
			continue
		}
		checkExpectations(t, p, a.Name, diags)
	}
}

// expectation is one want regexp at a file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// checkExpectations matches diagnostics against the fixture's want comments.
func checkExpectations(t *testing.T, p *analysis.Package, name string, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				patterns, err := parseWantPatterns(text)
				if err != nil {
					t.Errorf("%s:%d: malformed want comment: %v", pos.Filename, pos.Line, err)
					continue
				}
				for _, pat := range patterns {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := p.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected %s diagnostic: %s", pos.Filename, pos.Line, name, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no %s diagnostic matching %q", w.file, w.line, name, w.re)
		}
	}
}

// parseWantPatterns splits `"re1" "re2"` into its quoted patterns.
func parseWantPatterns(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		q, err := strconv.QuotedPrefix(s)
		if err != nil {
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
		pat, err := strconv.Unquote(q)
		if err != nil {
			return nil, err
		}
		out = append(out, pat)
		s = s[len(q):]
	}
}
