package analysis

import "strings"

// NonDetFlowOptions configures the nondetflow analyzer.
type NonDetFlowOptions struct {
	// ExemptPackages lists import-path prefixes outside the determinism
	// contract's domain: the supervision and tooling tiers (jobs, cluster,
	// obs, the analysis framework, the daemon and bench commands), whose
	// clock reads and goroutines are their whole job. Functions there are
	// neither reported nor allowed to relay taint into reports — a domain
	// function calling through them is judged at the exempt boundary.
	ExemptPackages []string
	// Exemptions are the sanctioned leaks: function-level, kind-scoped,
	// justified, and verified leaf-confined (the function must directly
	// contain a source of the exempted kind, or the exemption itself is
	// reported as stale).
	Exemptions []FuncExemption
	// Kinds restricts the checked fact families (default: all
	// nondeterminism kinds — wallclock, rawrand, mapiter, goroutine).
	Kinds []string
}

// NewNonDetFlow returns the nondetflow analyzer: no function in a domain
// package may transitively reach a nondeterminism source. Where the
// intraprocedural analyzers (norawrand, nowallclock, nomapiter) catch the
// leaf, nondetflow catches the laundering: a clock read hidden two helper
// calls deep — possibly in another package — taints every caller, and the
// report carries the full provenance chain
// (sim.Run -> sim.RunContext -> sim.runConcurrent -> time.NewTimer (concurrent.go:186)).
//
// Reports land on taint *roots*: tainted domain functions with no tainted
// domain caller outside their own recursion component. That yields one
// diagnostic per laundered source at the outermost entry point — the place
// the contract is breached — instead of one per function on the chain.
func NewNonDetFlow(opt NonDetFlowOptions) *Analyzer {
	kinds := NonDetKinds()
	if len(opt.Kinds) > 0 {
		kinds = kinds[:0]
		for _, s := range opt.Kinds {
			if k, ok := ParseTaintKind(s); ok {
				kinds = append(kinds, k)
			}
		}
	}
	idx := indexExemptions(opt.Exemptions)
	a := &Analyzer{
		Name: "nondetflow",
		Doc: "forbid transitive reachability of nondeterminism sources (wall clock, raw " +
			"randomness, map-iteration order, bare goroutines) from domain packages; " +
			"reports carry full call-chain provenance, exemptions are function-level " +
			"and verified leaf-confined",
	}
	exemptPkg := func(path string) bool {
		for _, p := range opt.ExemptPackages {
			if path == p || strings.HasPrefix(path, p+"/") {
				return true
			}
		}
		return false
	}

	// The taint set depends only on the Program, which the driver shares
	// across passes; memoize per Program so a whole-module run propagates
	// once, not once per package.
	taints := map[*Program]*TaintSet{}
	taint := func(prog *Program) *TaintSet {
		if t := taints[prog]; t != nil {
			return t
		}
		t := prog.Taint(kinds, func(n *FuncNode, k TaintKind) bool {
			return exemptPkg(n.Pkg.Path) || idx.exempt(n, k.String())
		})
		taints[prog] = t
		return t
	}

	a.Run = func(pass *Pass) error {
		if pass.Prog == nil {
			return nil // driver provided no call graph; nothing to check
		}
		t := taint(pass.Prog)
		verifyExemptions(pass, t, opt.Exemptions, kinds)
		if exemptPkg(pass.Pkg.Path()) {
			return nil
		}
		candidate := func(n *FuncNode, k TaintKind) bool {
			return n != nil && !n.TestOnly && !exemptPkg(n.Pkg.Path) &&
				!idx.exempt(n, k.String()) && t.Tainted(n, k)
		}
		for _, n := range pass.funcNodes() {
			for _, k := range kinds {
				if !candidate(n, k) {
					continue
				}
				root := true
				for _, e := range n.In {
					c := e.Caller
					if c != n && candidate(c, k) && pass.Prog.SCCOf(c) != pass.Prog.SCCOf(n) {
						root = false
						break
					}
				}
				if !root {
					continue
				}
				pass.Reportf(n.Decl.Name.Pos(), "nondeterminism (%s) reachable from %s: %s; "+
					"confine the source behind internal/rng or an exempted leaf "+
					"(DESIGN.md §11)", k, n.ShortName(), t.Chain(n, k))
			}
		}
		return nil
	}
	return a
}

// verifyExemptions reports, in the pass owning each exemption's package,
// every table entry that is unknown, unjustified, or not leaf-confined.
// Verification runs even for exempt packages: a stale entry is a stale
// entry wherever it points.
func verifyExemptions(pass *Pass, t *TaintSet, exs []FuncExemption, kinds []TaintKind) {
	pkgPath := pass.Pkg.Path()
	for _, ex := range exs {
		// The package part is everything before the first dot after the
		// last slash (method names contain dots: pkg.(*T).M).
		slash := strings.LastIndex(ex.Func, "/")
		d := strings.Index(ex.Func[slash+1:], ".")
		if d < 0 {
			continue // malformed: no package qualifier to route it by
		}
		if ex.Func[:slash+1+d] != pkgPath {
			continue
		}
		at := pass.Files[0].Name.Pos()
		n := pass.Prog.ByName(ex.Func)
		if n == nil {
			pass.Reportf(at, "exemption %q (%s) names no function in this package: "+
				"delete or fix the entry", ex.Func, ex.Kind)
			continue
		}
		if strings.TrimSpace(ex.Reason) == "" {
			pass.Reportf(n.Decl.Name.Pos(), "exemption %q (%s) has no justification: "+
				"every sanctioned leak carries a one-line reason", ex.Func, ex.Kind)
		}
		k, ok := ParseTaintKind(ex.Kind)
		if !ok || !containsKind(kinds, k) {
			continue // per-analyzer rule tags (ctxflow) verify elsewhere
		}
		if t.DirectSource(n, k) == nil {
			pass.Reportf(n.Decl.Name.Pos(), "stale exemption: %s no longer contains a "+
				"direct %s source; exemptions must sit on the leaf that performs the "+
				"read (move or delete the entry)", ex.Func, ex.Kind)
		}
	}
}

func containsKind(kinds []TaintKind, k TaintKind) bool {
	for _, x := range kinds {
		if x == k {
			return true
		}
	}
	return false
}
