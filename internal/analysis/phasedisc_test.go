package analysis_test

import (
	"testing"

	"locality/internal/analysis"
	"locality/internal/analysis/analysistest"
)

func TestPhaseDisc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(),
		analysis.NewPhaseDisc(analysis.PhaseDiscOptions{}), "phasedisc")
}

// TestPhaseDiscNodeAllow checks that AllowNodePackages silences only the
// Env.Node diagnostics; the value-receiver checks must still fire, which is
// exactly what the nodeallowed fixture's want comments encode.
func TestPhaseDiscNodeAllow(t *testing.T) {
	a := analysis.NewPhaseDisc(analysis.PhaseDiscOptions{AllowNodePackages: []string{"nodeallowed"}})
	analysistest.Run(t, analysistest.TestData(), a, "nodeallowed")
}
