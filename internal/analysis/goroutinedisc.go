package analysis

import (
	"go/ast"
	"strings"
)

// A GoAllowance sanctions go statements in one package or one file. Exactly
// one of Package (import path) and File (slash-separated path suffix) is
// set; Reason is the mandatory one-line justification. Allowances are
// verified live: an entry whose package or file no longer contains any go
// statement is reported as stale, so the table cannot outlive the
// concurrency it describes.
type GoAllowance struct {
	Package string
	File    string
	Reason  string
}

// GoroutineDiscOptions configures the goroutinedisc analyzer.
type GoroutineDiscOptions struct {
	// Allow lists the sanctioned spawn sites. The repository gate allows the
	// pool/reaper patterns: internal/jobs (worker pool), internal/cluster
	// (shard probers reaped via WaitGroup), harness/parallel.go (row
	// scheduler), sim/concurrent.go (the concurrent engine itself), and the
	// daemon's serve/runner loops.
	Allow []GoAllowance
}

// NewGoroutineDisc returns the goroutinedisc analyzer: no go statements in
// domain packages outside the sanctioned pool/reaper patterns. A bare
// goroutine in model or harness code is how scheduling nondeterminism and
// leaks enter: nothing joins it, nothing bounds it, and its interleaving
// varies run to run. Concurrency is confined to the listed sites, each of
// which owns a reaping discipline (WaitGroup, done-channel, or pool
// shutdown). Test files are exempt.
func NewGoroutineDisc(opt GoroutineDiscOptions) *Analyzer {
	a := &Analyzer{
		Name: "goroutinedisc",
		Doc: "forbid go statements outside sanctioned pool/reaper sites; bare " +
			"goroutines are unreaped, unbounded scheduling nondeterminism",
	}
	var allowPkgs, allowFiles []string
	for _, al := range opt.Allow {
		if al.Package != "" {
			allowPkgs = append(allowPkgs, al.Package)
		}
		if al.File != "" {
			allowFiles = append(allowFiles, al.File)
		}
	}
	a.Run = func(pass *Pass) error {
		verifyAllowances(pass, opt.Allow)
		if pkgAllowed(pass, allowPkgs) {
			return nil
		}
		for _, f := range pass.Files {
			if fileAllowed(pass, f.Pos(), allowFiles) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if pass.InTestFile(g.Pos()) {
					return true
				}
				pass.Reportf(g.Pos(), "go statement outside the sanctioned concurrency "+
					"sites: route work through internal/jobs.Pool or add a reaped, "+
					"justified allowance to the localvet gate (DESIGN.md §11)")
				return true
			})
		}
		return nil
	}
	return a
}

// verifyAllowances reports allowances that no longer witness any go
// statement. A package allowance is verified by the pass for that package; a
// file allowance by the pass whose package contains the file.
func verifyAllowances(pass *Pass, allow []GoAllowance) {
	for _, al := range allow {
		switch {
		case al.Package != "":
			if al.Package != pass.Pkg.Path() {
				continue
			}
			at := pass.Files[0].Name.Pos()
			if strings.TrimSpace(al.Reason) == "" {
				pass.Reportf(at, "goroutine allowance for package %s has no justification", al.Package)
			}
			found := false
			for _, f := range pass.Files {
				if hasGoStmt(f) {
					found = true
					break
				}
			}
			if !found {
				pass.Reportf(at, "stale goroutine allowance: package %s contains no go "+
					"statement; delete the entry", al.Package)
			}
		case al.File != "":
			var owner *ast.File
			for _, f := range pass.Files {
				if fileAllowed(pass, f.Pos(), []string{al.File}) {
					owner = f
					break
				}
			}
			if owner == nil {
				continue
			}
			if strings.TrimSpace(al.Reason) == "" {
				pass.Reportf(owner.Name.Pos(), "goroutine allowance for file %s has no justification", al.File)
			}
			if !hasGoStmt(owner) {
				pass.Reportf(owner.Name.Pos(), "stale goroutine allowance: file %s contains "+
					"no go statement; delete the entry", al.File)
			}
		}
	}
}

// hasGoStmt reports whether the file contains any go statement.
func hasGoStmt(f *ast.File) bool {
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			found = true
		}
		return !found
	})
	return found
}
