package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, parsed and type-checked package, ready for
// analyzers.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages of this module (and analyzer
// testdata trees) using only the standard library: module-local imports are
// resolved from source under ModuleDir, testdata imports from ExtraSrcDirs,
// and everything else (the standard library) through go/importer's source
// importer. One Loader shares a FileSet and a package cache, so the standard
// library is type-checked at most once per process.
type Loader struct {
	Fset *token.FileSet
	// ModulePath/ModuleDir anchor module-local import resolution
	// ("locality/..." -> ModuleDir/...).
	ModulePath string
	ModuleDir  string
	// ExtraSrcDirs are additional source roots (analysistest testdata/src
	// trees) consulted for imports that are neither module-local nor
	// resolvable as standard library.
	ExtraSrcDirs []string
	// IncludeTests adds in-package *_test.go files to loaded packages.
	// External (package foo_test) files are never loaded: they cannot be
	// type-checked together with the package under test.
	IncludeTests bool

	std  types.Importer
	pkgs map[string]*Package
}

// NewLoader returns a Loader for the module rooted at moduleDir.
func NewLoader(modulePath, moduleDir string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modulePath,
		ModuleDir:  moduleDir,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
	}
}

// inProgress marks a package currently being type-checked (cycle detection).
var inProgress = &Package{}

// Load parses and type-checks the package with the given import path.
func (l *Loader) Load(path string) (*Package, error) {
	dir, err := l.dirOf(path)
	if err != nil {
		return nil, err
	}
	return l.LoadDir(dir, path)
}

// LoadDir parses and type-checks the single package in dir, registering it
// under the given import path.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	switch p := l.pkgs[path]; {
	case p == inProgress:
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	case p != nil:
		return p, nil
	}
	l.pkgs[path] = inProgress
	defer func() {
		if l.pkgs[path] == inProgress {
			delete(l.pkgs, path)
		}
	}()

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	if l.IncludeTests {
		names = append(names, bp.TestGoFiles...)
	}
	sort.Strings(names)

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// Loaded returns every package this loader has finished loading (module
// packages and testdata trees alike; the standard library goes through the
// source importer and is never represented here), sorted by import path.
// Drivers feed this to BuildProgram after loading everything they analyze,
// so the call graph sees the bodies of cross-package helpers.
func (l *Loader) Loaded() []*Package {
	var out []*Package
	for _, p := range l.pkgs {
		if p != inProgress {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// dirOf maps an import path to a source directory.
func (l *Loader) dirOf(path string) (string, error) {
	if path == l.ModulePath {
		return l.ModuleDir, nil
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest)), nil
	}
	for _, root := range l.ExtraSrcDirs {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, nil
		}
	}
	return "", fmt.Errorf("analysis: cannot resolve import %q", path)
}

// loaderImporter adapts the Loader to types.Importer for dependency
// resolution during type checking: module-local and testdata imports recurse
// into the Loader (without test files — dependencies never need them), all
// others go to the source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if dir, err := l.dirOf(path); err == nil {
		saved := l.IncludeTests
		l.IncludeTests = false
		p, err := l.LoadDir(dir, path)
		l.IncludeTests = saved
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod and returns it, or an error when there is none.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod at or above %s", dir)
		}
		dir = parent
	}
}

// ModulePackages returns the import paths of every package in the module
// rooted at moduleDir (skipping testdata trees and dot-directories), in
// sorted order. Directories without buildable Go files are omitted.
func ModulePackages(modulePath, moduleDir string) ([]string, error) {
	var paths []string
	err := filepath.WalkDir(moduleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != moduleDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if _, err := build.ImportDir(path, 0); err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				return nil
			}
			return nil // unreadable or constrained-out: not a package
		}
		rel, err := filepath.Rel(moduleDir, path)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, modulePath)
		} else {
			paths = append(paths, modulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}
