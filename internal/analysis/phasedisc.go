package analysis

import (
	"go/ast"
	"go/types"
)

// PhaseDiscOptions configures the phasedisc analyzer.
type PhaseDiscOptions struct {
	// AllowNodePackages lists import paths whose machines may observe
	// Env.Node. The repository gate allows locality/internal/fault: the
	// fault-injection shim legitimately maps itself to a host vertex to look
	// up its entry in the fault plan (instrumentation, not algorithm).
	AllowNodePackages []string
	// AllowPackages lists import paths fully exempt from the check.
	AllowPackages []string
}

// NewPhaseDisc returns the phasedisc analyzer, a cheap shape check on the
// simulator's Send/Recv (Step) discipline for Machine implementations. A
// machine type — any named type with Init/Step/Output methods of the
// sim.Machine shape — is flagged when:
//
//   - a state-mutating Init or Step uses a value receiver: the kernel drives
//     machines through the sim.Machine interface, so state written through a
//     value receiver evaporates between rounds and the machine observes the
//     round structure inconsistently (typically "works on the sequential
//     engine by accident, diverges on the concurrent one");
//   - any of its methods reads Env.Node: the host vertex index exists for
//     instrumentation only (sim.Env docs), and an algorithm that branches on
//     it is no longer a LOCAL algorithm — the ID-scheme and
//     engine-equivalence guarantees both assume Node-independence.
func NewPhaseDisc(opt PhaseDiscOptions) *Analyzer {
	a := &Analyzer{
		Name: "phasedisc",
		Doc: "shape-check the Machine Step discipline: pointer receivers for " +
			"state-mutating Init/Step, and no observation of Env.Node",
	}
	a.Run = func(pass *Pass) error {
		if pkgAllowed(pass, opt.AllowPackages) {
			return nil
		}
		machines := machineTypes(pass)
		allowNode := pkgAllowed(pass, opt.AllowNodePackages)
		for _, f := range pass.Files {
			if pass.InTestFile(f.Pos()) {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv == nil || fd.Body == nil {
					continue
				}
				recvName, ptr := receiverInfo(fd)
				if recvName == "" || !machines[recvName] {
					continue
				}
				if !ptr && (fd.Name.Name == "Init" || fd.Name.Name == "Step") {
					if field := mutatedReceiverField(pass, fd); field != "" {
						pass.Reportf(fd.Pos(), "(%s).%s mutates field %q through a value "+
							"receiver; the kernel calls machines via the sim.Machine "+
							"interface, so the write is lost between rounds — use a "+
							"pointer receiver", recvName, fd.Name.Name, field)
					}
				}
				if !allowNode {
					reportEnvNodeReads(pass, fd, recvName)
				}
			}
		}
		return nil
	}
	return a
}

// machineTypes returns the names of package-level types that carry the
// sim.Machine method shape: Init(1 arg), Step(2 args, 2 results), Output.
// Detection is structural (method names and arities, not the interface
// identity), so the check also covers analyzer fixtures and future machine
// variants without importing internal/sim.
func machineTypes(pass *Pass) map[string]bool {
	type shape struct{ init, step, output bool }
	shapes := map[string]*shape{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil {
				continue
			}
			name, _ := receiverInfo(fd)
			if name == "" {
				continue
			}
			s := shapes[name]
			if s == nil {
				s = &shape{}
				shapes[name] = s
			}
			params := fd.Type.Params.NumFields()
			results := fd.Type.Results.NumFields()
			switch fd.Name.Name {
			case "Init":
				s.init = s.init || params == 1
			case "Step":
				s.step = s.step || (params == 2 && results == 2)
			case "Output":
				s.output = s.output || (params == 0 && results == 1)
			}
		}
	}
	out := map[string]bool{}
	for name, s := range shapes {
		if s.init && s.step && s.output {
			out[name] = true
		}
	}
	return out
}

// receiverInfo returns the receiver's base type name and whether the
// receiver is a pointer.
func receiverInfo(fd *ast.FuncDecl) (name string, ptr bool) {
	if len(fd.Recv.List) != 1 {
		return "", false
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		ptr = true
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name, ptr
	}
	return "", false
}

// mutatedReceiverField returns the name of a receiver field assigned in fd's
// body, or "" when the method never writes receiver state.
func mutatedReceiverField(pass *Pass, fd *ast.FuncDecl) string {
	recvObj := receiverObject(pass, fd)
	if recvObj == nil {
		return ""
	}
	isRecvField := func(e ast.Expr) string {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return ""
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || pass.TypesInfo.ObjectOf(id) != recvObj {
			return ""
		}
		return sel.Sel.Name
	}
	found := ""
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if f := isRecvField(lhs); f != "" {
					found = f
					return false
				}
			}
		case *ast.IncDecStmt:
			if f := isRecvField(n.X); f != "" {
				found = f
				return false
			}
		}
		return true
	})
	return found
}

// receiverObject returns the types.Object of fd's receiver variable.
func receiverObject(pass *Pass, fd *ast.FuncDecl) types.Object {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil
	}
	return pass.TypesInfo.ObjectOf(fd.Recv.List[0].Names[0])
}

// reportEnvNodeReads flags selector accesses to the Node field of a type
// named Env (the simulator environment, or a fixture stand-in) inside a
// machine method.
func reportEnvNodeReads(pass *Pass, fd *ast.FuncDecl, recvName string) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Node" {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		named, ok := derefNamed(selection.Recv())
		if !ok || named.Obj().Name() != "Env" {
			return true
		}
		pass.Reportf(sel.Pos(), "machine %s observes Env.Node; the host vertex index "+
			"is instrumentation-only (sim.Env docs) and LOCAL algorithms must not "+
			"branch on it", recvName)
		return true
	})
}

// derefNamed unwraps pointers and aliases to a named type.
func derefNamed(t types.Type) (*types.Named, bool) {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	return n, ok
}
