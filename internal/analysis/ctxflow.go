package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlowOptions configures the ctxflow analyzer.
type CtxFlowOptions struct {
	// AllowPackages lists import paths exempt from the check.
	AllowPackages []string
	// Exemptions sanction individual deviations by kind:
	//   "background" — the function may mint context.Background()/TODO()
	//     despite having a Context parameter (detached-cleanup idiom);
	//   "noctx" — the function may call blocking module callees that take
	//     no Context (sanctioned fire-and-forget).
	// Entries are verified live against the code they describe.
	Exemptions []FuncExemption
}

// NewCtxFlow returns the ctxflow analyzer: cancellation must actually flow.
// Three rules, all scoped to non-test module code:
//
//  1. A context.Context parameter comes first (the Go API convention the
//     rest of the toolchain and this module's own supervision tier assume).
//  2. A function that already receives a Context does not mint a fresh root
//     via context.Background()/context.TODO() — doing so silently detaches
//     everything downstream from the caller's cancellation. The sanctioned
//     detach idiom is context.WithoutCancel (values flow, cancellation
//     doesn't), or an explicit "background" exemption.
//  3. A function that receives a Context threads it into every blocking
//     module callee: calling a callee that can park the goroutine but has
//     no Context parameter means that wait is uncancellable. The callee's
//     blocking-ness is resolved transitively through the call graph.
func NewCtxFlow(opt CtxFlowOptions) *Analyzer {
	a := &Analyzer{
		Name: "ctxflow",
		Doc: "require context.Context first in parameter lists, forbid minting " +
			"fresh root contexts in context-carrying functions, and require the " +
			"context to reach every blocking module callee",
	}
	idx := indexExemptions(opt.Exemptions)
	taints := map[*Program]*TaintSet{}
	blockingTaint := func(prog *Program) *TaintSet {
		if t := taints[prog]; t != nil {
			return t
		}
		t := prog.Taint([]TaintKind{TaintBlocking}, nil)
		taints[prog] = t
		return t
	}
	a.Run = func(pass *Pass) error {
		if pass.Prog == nil {
			return nil
		}
		t := blockingTaint(pass.Prog)
		verifyCtxExemptions(pass, opt.Exemptions)
		if pkgAllowed(pass, opt.AllowPackages) {
			return nil
		}
		for _, n := range pass.funcNodes() {
			if n.TestOnly || n.Decl.Body == nil {
				continue
			}
			ctxAt := ctxParamIndex(n.Fn)
			if ctxAt > 0 {
				pass.Reportf(n.Decl.Name.Pos(), "context.Context is parameter %d of %s; "+
					"by convention the context comes first", ctxAt+1, n.ShortName())
			}
			if ctxAt < 0 {
				continue
			}
			checkBackground := !idx.exempt(n, "background")
			checkNoCtx := !idx.exempt(n, "noctx")
			ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.TypesInfo, call)
				if fn == nil {
					return true
				}
				if checkBackground && fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
					(fn.Name() == "Background" || fn.Name() == "TODO") {
					pass.Reportf(call.Pos(), "context.%s inside %s, which already receives "+
						"a Context: this detaches downstream work from the caller's "+
						"cancellation; derive from ctx (or context.WithoutCancel(ctx) "+
						"for sanctioned detach)", fn.Name(), n.ShortName())
				}
				if !checkNoCtx {
					return true
				}
				callee := pass.Prog.Node(fn)
				if callee == nil || callee == n || !t.Tainted(callee, TaintBlocking) {
					return true
				}
				if ctxParamIndex(fn) >= 0 {
					return true
				}
				pass.Reportf(call.Pos(), "%s can block (%s) but takes no Context: the "+
					"wait is uncancellable from %s; thread ctx through or exempt the "+
					"caller as \"noctx\"", callee.ShortName(), t.Chain(callee, TaintBlocking),
					n.ShortName())
				return true
			})
		}
		return nil
	}
	return a
}

// verifyCtxExemptions reports ctxflow exemption entries ("background",
// "noctx") that are unknown, unjustified, or no longer describe the code.
func verifyCtxExemptions(pass *Pass, exs []FuncExemption) {
	pkgPath := pass.Pkg.Path()
	for _, ex := range exs {
		if (ex.Kind != "background" && ex.Kind != "noctx") || !qualifiedInPkg(ex.Func, pkgPath) {
			continue
		}
		n := pass.Prog.ByName(ex.Func)
		if n == nil {
			pass.Reportf(pass.Files[0].Name.Pos(), "exemption %q (%s) names no function "+
				"in this package: delete or fix the entry", ex.Func, ex.Kind)
			continue
		}
		if strings.TrimSpace(ex.Reason) == "" {
			pass.Reportf(n.Decl.Name.Pos(), "exemption %q (%s) has no justification", ex.Func, ex.Kind)
		}
		if ctxParamIndex(n.Fn) < 0 {
			pass.Reportf(n.Decl.Name.Pos(), "stale exemption: %s has no context.Context "+
				"parameter, so the %s entry is dead; delete it", ex.Func, ex.Kind)
			continue
		}
		if ex.Kind == "background" && !mintsRootContext(pass.TypesInfo, n.Decl.Body) {
			pass.Reportf(n.Decl.Name.Pos(), "stale exemption: %s no longer calls "+
				"context.Background/TODO; delete the background entry", ex.Func)
		}
	}
}

// ctxParamIndex returns the index of fn's context.Context parameter, or -1.
func ctxParamIndex(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return i
		}
	}
	return -1
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// mintsRootContext reports whether body calls context.Background or
// context.TODO.
func mintsRootContext(info *types.Info, body *ast.BlockStmt) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") {
			found = true
		}
		return !found
	})
	return found
}
