package analysis

// Module-wide call graph (DESIGN.md §11).
//
// The interprocedural analyzers (nondetflow, mutexhold, ctxflow) need to
// answer "does this function transitively reach a nondeterminism source?",
// which a per-package Pass cannot. BuildProgram aggregates every package a
// driver loaded — the localvet multichecker feeds it the whole module, the
// analysistest harness a fixture tree — into one graph:
//
//   - one FuncNode per declared function or method (test-file declarations
//     are included but marked, so taint never escapes a _test.go file:
//     non-test code cannot reference test declarations);
//   - function literals are attributed to their enclosing declaration: a
//     closure's clock read taints the function that created it, which is
//     where a human would look for it;
//   - edges are static direct calls only. Calls through function values,
//     fields and interface methods are invisible — the analyzers that
//     consume the graph are deliberately one-sided (a missing edge can hide
//     a violation, never invent one).
//
// While walking bodies the builder also records each function's direct
// Sources — the leaf facts (wall-clock read, raw randomness, unsorted map
// range, go statement, blocking operation) that the taint engine
// (taint.go) propagates up the caller edges.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Source is one direct nondeterminism (or blocking) fact inside a
// function body: the leaf a provenance chain ends at.
type Source struct {
	Kind TaintKind
	Pos  token.Pos
	// Desc names the fact for diagnostics, e.g. "time.Now", "go statement",
	// "channel receive".
	Desc string
}

// An Edge is one static call site: Caller invokes Callee at Pos. Async
// marks `go callee(...)` statements — the spawn itself returns immediately,
// so blocking taint must not cross the edge (every other kind does: what
// the goroutine computes still taints the program).
type Edge struct {
	Caller *FuncNode
	Callee *FuncNode
	Pos    token.Pos
	Async  bool
}

// A FuncNode is one declared function or method in the program.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Out and In are the call edges, in source order.
	Out []*Edge
	In  []*Edge
	// Sources are the node's direct facts, in source order.
	Sources []Source
	// TestOnly marks declarations in _test.go files; analyzers never report
	// them and taint cannot flow out of them.
	TestOnly bool
}

// QualifiedName returns the import-path-qualified name used by exemption
// tables: "path/to/pkg.Func" or "path/to/pkg.(*Recv).Method".
func (n *FuncNode) QualifiedName() string {
	return n.Pkg.Path + "." + FuncDisplayName(n.Fn)
}

// ShortName returns the package-name-qualified form used in provenance
// chains: "sim.runConcurrent", "harness.(*rowScheduler).start".
func (n *FuncNode) ShortName() string {
	return n.Pkg.Types.Name() + "." + FuncDisplayName(n.Fn)
}

// FuncDisplayName renders fn without package qualification:
// "Run", "(*Pool).Submit", "(Shard).String".
func FuncDisplayName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
			ptr = "*"
		}
		if named, isNamed := t.(*types.Named); isNamed {
			return "(" + ptr + named.Obj().Name() + ")." + fn.Name()
		}
	}
	return fn.Name()
}

// A Program is the call graph over every package one driver run loaded.
type Program struct {
	nodes  map[*types.Func]*FuncNode
	byName map[string]*FuncNode
	// order lists nodes deterministically: packages sorted by path, files
	// and declarations in source order. Every propagation and report walk
	// iterates this, never a map.
	order []*FuncNode
	scc   map[*FuncNode]int
}

// BuildProgram constructs the call graph. The packages may be handed over
// in any order; the graph is deterministic regardless.
func BuildProgram(pkgs []*Package) *Program {
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })

	p := &Program{
		nodes:  make(map[*types.Func]*FuncNode),
		byName: make(map[string]*FuncNode),
	}
	// First pass: one node per declaration, so edges can resolve forward
	// and cross-package references.
	for _, pkg := range sorted {
		for _, f := range pkg.Files {
			test := strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go")
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &FuncNode{Fn: fn, Decl: fd, Pkg: pkg, TestOnly: test}
				p.nodes[fn] = n
				p.byName[n.QualifiedName()] = n
				p.order = append(p.order, n)
			}
		}
	}
	for _, n := range p.order {
		if n.Decl.Body != nil {
			p.scanBody(n)
		}
	}
	return p
}

// Node returns the graph node for fn, or nil when fn was not declared in a
// loaded package (stdlib, interface methods, function values).
func (p *Program) Node(fn *types.Func) *FuncNode { return p.nodes[fn] }

// ByName resolves an exemption-table qualified name, or nil.
func (p *Program) ByName(qualified string) *FuncNode { return p.byName[qualified] }

// Nodes returns every node in deterministic order. Callers must not
// mutate the slice.
func (p *Program) Nodes() []*FuncNode { return p.order }

// blockingStdlib lists standard-library packages whose calls are treated
// as direct blocking facts (network and subprocess I/O). Method calls
// resolve to these package paths too ((*net.TCPConn).Read). net/http is
// deliberately absent: most of its surface (Header.Set, Request.PathValue,
// NewRequest) is pure accessors, so its genuinely blocking entry points are
// enumerated in blockingHTTPFuncs instead.
var blockingStdlib = map[string]bool{
	"net":     true,
	"os/exec": true,
}

// blockingHTTPFuncs are the net/http entry points that perform network I/O
// or wait for connections, keyed by types.Func.FullName.
var blockingHTTPFuncs = map[string]bool{
	"net/http.Get":                         true,
	"net/http.Head":                        true,
	"net/http.Post":                        true,
	"net/http.PostForm":                    true,
	"net/http.ListenAndServe":              true,
	"net/http.ListenAndServeTLS":           true,
	"net/http.Serve":                       true,
	"net/http.ServeTLS":                    true,
	"(*net/http.Client).Do":                true,
	"(*net/http.Client).Get":               true,
	"(*net/http.Client).Head":              true,
	"(*net/http.Client).Post":              true,
	"(*net/http.Client).PostForm":          true,
	"(*net/http.Server).ListenAndServe":    true,
	"(*net/http.Server).ListenAndServeTLS": true,
	"(*net/http.Server).Serve":             true,
	"(*net/http.Server).ServeTLS":          true,
	"(*net/http.Server).Shutdown":          true,
	"(*net/http.Server).Close":             true,
	"(*net/http.Transport).RoundTrip":      true,
}

// blockingSyncMethods are the sync primitives that park the caller until
// another goroutine acts. Lock/RLock are deliberately absent: mutexhold
// analyzes lock acquisition itself and flagging it as "blocking" would make
// every locked region self-condemning.
var blockingSyncMethods = map[string]bool{
	"(*sync.WaitGroup).Wait": true,
	"(*sync.Cond).Wait":      true,
}

// scanBody walks one declaration's body, collecting direct sources and
// call edges. Function literals are visited in place (attributed to n);
// literals launched by a go statement suppress blocking facts — the spawn
// returns immediately, the blocking happens on the new goroutine — but
// still record every nondeterminism fact.
func (p *Program) scanBody(n *FuncNode) {
	seenMapIter := map[token.Pos]bool{}
	for _, pos := range unsortedMapAppends(n.Pkg.Info, n.Decl.Body) {
		if !seenMapIter[pos] {
			seenMapIter[pos] = true
			n.Sources = append(n.Sources, Source{Kind: TaintMapIter, Pos: pos, Desc: "unsorted range over map"})
		}
	}
	p.walkStmts(n, n.Decl.Body, false)
}

// walkStmts is the recursive body walk. inGo is true inside a function
// literal that is only ever launched asynchronously (`go func(){...}()`).
func (p *Program) walkStmts(n *FuncNode, node ast.Node, inGo bool) {
	ast.Inspect(node, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.GoStmt:
			n.Sources = append(n.Sources, Source{Kind: TaintGoroutine, Pos: v.Pos(), Desc: "go statement"})
			if lit, ok := ast.Unparen(v.Call.Fun).(*ast.FuncLit); ok {
				for _, arg := range v.Call.Args {
					p.walkStmts(n, arg, inGo)
				}
				p.walkStmts(n, lit.Body, true)
			} else {
				p.call(n, v.Call, true, inGo)
				for _, arg := range v.Call.Args {
					p.walkStmts(n, arg, inGo)
				}
			}
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range v.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault && !inGo {
				n.Sources = append(n.Sources, Source{Kind: TaintBlocking, Pos: v.Pos(), Desc: "blocking select"})
			}
			// The comm clauses belong to the select (already accounted
			// for); only the case bodies are walked.
			for _, c := range v.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				if cc.Comm != nil {
					p.walkComm(n, cc.Comm, inGo)
				}
				for _, s := range cc.Body {
					p.walkStmts(n, s, inGo)
				}
			}
			return false
		case *ast.SendStmt:
			if !inGo {
				n.Sources = append(n.Sources, Source{Kind: TaintBlocking, Pos: v.Pos(), Desc: "channel send"})
			}
			return true
		case *ast.UnaryExpr:
			if v.Op == token.ARROW && !inGo {
				n.Sources = append(n.Sources, Source{Kind: TaintBlocking, Pos: v.Pos(), Desc: "channel receive"})
			}
			return true
		case *ast.RangeStmt:
			if tv, ok := n.Pkg.Info.Types[v.X]; ok && !inGo {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					n.Sources = append(n.Sources, Source{Kind: TaintBlocking, Pos: v.Pos(), Desc: "range over channel"})
				}
			}
			return true
		case *ast.CallExpr:
			p.call(n, v, false, inGo)
			return true
		case *ast.SelectorExpr:
			p.rawRandUse(n, v.Sel)
			return true
		case *ast.Ident:
			p.rawRandUse(n, v)
			return true
		}
		return true
	})
}

// walkComm records the facts of a select comm clause's operation without
// re-counting it as a standalone blocking op (the select already did), then
// walks its operand expressions for nested calls.
func (p *Program) walkComm(n *FuncNode, comm ast.Stmt, inGo bool) {
	switch c := comm.(type) {
	case *ast.SendStmt:
		p.walkStmts(n, c.Chan, inGo)
		p.walkStmts(n, c.Value, inGo)
	case *ast.AssignStmt:
		for _, e := range c.Rhs {
			if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				p.walkStmts(n, u.X, inGo)
				continue
			}
			p.walkStmts(n, e, inGo)
		}
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(c.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			p.walkStmts(n, u.X, inGo)
			return
		}
		p.walkStmts(n, c.X, inGo)
	}
}

// call records the facts of one call expression: an edge when the callee
// is a loaded declaration, a direct source when it is a known
// nondeterministic or blocking standard-library entry point.
func (p *Program) call(n *FuncNode, call *ast.CallExpr, async, inGo bool) {
	fn := calleeFunc(n.Pkg.Info, call)
	if fn == nil {
		return
	}
	if callee := p.nodes[fn]; callee != nil {
		e := &Edge{Caller: n, Callee: callee, Pos: call.Pos(), Async: async}
		n.Out = append(n.Out, e)
		callee.In = append(callee.In, e)
		return
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return
	}
	desc := pkg.Name() + "." + FuncDisplayName(fn)
	switch {
	case pkg.Path() == "time" && clockFuncs[fn.Name()]:
		n.Sources = append(n.Sources, Source{Kind: TaintWallclock, Pos: call.Pos(), Desc: desc})
		if fn.Name() == "Sleep" && !inGo && !async {
			n.Sources = append(n.Sources, Source{Kind: TaintBlocking, Pos: call.Pos(), Desc: desc})
		}
	case rawRandImports[pkg.Path()]:
		n.Sources = append(n.Sources, Source{Kind: TaintRawRand, Pos: call.Pos(), Desc: desc})
	case (blockingStdlib[pkg.Path()] || blockingHTTPFuncs[fn.FullName()] ||
		blockingSyncMethods[fn.FullName()]) && !inGo && !async:
		n.Sources = append(n.Sources, Source{Kind: TaintBlocking, Pos: call.Pos(), Desc: desc})
	}
}

// rawRandUse records non-call references into the banned randomness
// packages (e.g. reading crypto/rand's Reader variable, passing rand.Int
// as a function value).
func (p *Program) rawRandUse(n *FuncNode, id *ast.Ident) {
	obj := n.Pkg.Info.Uses[id]
	if obj == nil || obj.Pkg() == nil || !rawRandImports[obj.Pkg().Path()] {
		return
	}
	if _, isName := obj.(*types.PkgName); isName {
		return // the import qualifier itself; the selected member reports
	}
	n.Sources = append(n.Sources, Source{Kind: TaintRawRand, Pos: id.Pos(), Desc: obj.Pkg().Name() + "." + obj.Name()})
}

// SCCOf returns the strongly-connected-component ID of n. Nodes in the
// same cycle share an ID; root reporting uses this so mutually recursive
// tainted functions do not suppress each other into silence.
func (p *Program) SCCOf(n *FuncNode) int {
	if p.scc == nil {
		p.computeSCC()
	}
	return p.scc[n]
}

// computeSCC runs an iterative Tarjan over the call graph.
func (p *Program) computeSCC() {
	p.scc = make(map[*FuncNode]int, len(p.order))
	index := make(map[*FuncNode]int, len(p.order))
	low := make(map[*FuncNode]int, len(p.order))
	onStack := make(map[*FuncNode]bool, len(p.order))
	var stack []*FuncNode
	next, comp := 0, 0

	type frame struct {
		n  *FuncNode
		ei int
	}
	for _, root := range p.order {
		if _, seen := index[root]; seen {
			continue
		}
		work := []frame{{n: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			f := &work[len(work)-1]
			if f.ei < len(f.n.Out) {
				m := f.n.Out[f.ei].Callee
				f.ei++
				if _, seen := index[m]; !seen {
					index[m], low[m] = next, next
					next++
					stack = append(stack, m)
					onStack[m] = true
					work = append(work, frame{n: m})
				} else if onStack[m] && index[m] < low[f.n] {
					low[f.n] = index[m]
				}
				continue
			}
			done := f.n
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].n
				if low[done] < low[parent] {
					low[parent] = low[done]
				}
			}
			if low[done] == index[done] {
				for {
					m := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[m] = false
					p.scc[m] = comp
					if m == done {
						break
					}
				}
				comp++
			}
		}
	}
}
