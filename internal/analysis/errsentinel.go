package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// errTextMatchers are the strings functions that, given error text, indicate
// string matching where errors.Is belongs.
var errTextMatchers = map[string]bool{
	"Contains":  true,
	"HasPrefix": true,
	"HasSuffix": true,
	"EqualFold": true,
	"Index":     true,
}

// ErrSentinelOptions configures the errsentinel analyzer.
type ErrSentinelOptions struct {
	// AllowPackages lists import paths exempt from the check.
	AllowPackages []string
}

// NewErrSentinel returns the errsentinel analyzer. The simulator kernel
// reports structured failures wrapped around the sentinels sim.ErrNodePanic,
// sim.ErrOverSend, sim.ErrMaxRounds and sim.ErrDeadline, and the contract is
// that callers classify them with errors.Is (plus errors.As for *NodeError
// detail). Two anti-patterns defeat the wrapping and are flagged:
//
//   - matching on error text: err.Error() compared against a string, or fed
//     to strings.Contains and friends;
//   - comparing two error values with == or != (a wrapped sentinel is never
//     == its sentinel).
//
// Test files are exempt: tests may assert on the text of ad-hoc errors that
// have no sentinel.
func NewErrSentinel(opt ErrSentinelOptions) *Analyzer {
	a := &Analyzer{
		Name: "errsentinel",
		Doc: "flag error-text string matching and ==/!= error comparisons; classify " +
			"kernel failures with errors.Is against the sim sentinels",
	}
	a.Run = func(pass *Pass) error {
		if pkgAllowed(pass, opt.AllowPackages) {
			return nil
		}
		for _, f := range pass.Files {
			if pass.InTestFile(f.Pos()) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BinaryExpr:
					checkErrComparison(pass, n)
				case *ast.CallExpr:
					checkErrTextCall(pass, n)
				}
				return true
			})
		}
		return nil
	}
	return a
}

// checkErrComparison flags `x == y`/`x != y` where the operands are error
// values (excluding nil checks) or where one side is an err.Error() call
// compared against text.
func checkErrComparison(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if isErrorCall(pass.TypesInfo, be.X) || isErrorCall(pass.TypesInfo, be.Y) {
		pass.Reportf(be.Pos(), "comparing err.Error() text; match the failure with "+
			"errors.Is against the sim sentinels (ErrNodePanic, ErrOverSend, "+
			"ErrMaxRounds, ErrDeadline) instead")
		return
	}
	if isNil(pass.TypesInfo, be.X) || isNil(pass.TypesInfo, be.Y) {
		return
	}
	if isErrorExpr(pass.TypesInfo, be.X) && isErrorExpr(pass.TypesInfo, be.Y) {
		pass.Reportf(be.Pos(), "comparing error values with %s breaks on wrapped "+
			"errors; use errors.Is (the kernel always wraps its sentinels with "+
			"run context)", be.Op)
	}
}

// checkErrTextCall flags strings.Contains-style calls whose arguments
// contain an err.Error() call.
func checkErrTextCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "strings" || !errTextMatchers[fn.Name()] {
		return
	}
	for _, arg := range call.Args {
		found := false
		ast.Inspect(arg, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok && isErrorCallExpr(pass.TypesInfo, inner) {
				found = true
				return false
			}
			return true
		})
		if found {
			pass.Reportf(call.Pos(), "matching on error text with strings.%s; classify "+
				"kernel failures with errors.Is against the sim sentinels instead", fn.Name())
			return
		}
	}
}

// isErrorCall reports whether e (possibly parenthesized) is a call of the
// Error() method on an error value.
func isErrorCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	return ok && isErrorCallExpr(info, call)
}

// isErrorCallExpr reports whether call is x.Error() with x an error value.
func isErrorCallExpr(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return false
	}
	return isErrorExpr(info, sel.X)
}

// isErrorExpr reports whether e's type implements the error interface.
func isErrorExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	return ok && isErrorType(tv.Type)
}

// isNil reports whether e is the predeclared nil.
func isNil(info *types.Info, e ast.Expr) bool {
	if b, ok := info.Types[ast.Unparen(e)].Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return true
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		_, isNilObj := info.Uses[id].(*types.Nil)
		return isNilObj
	}
	return false
}
