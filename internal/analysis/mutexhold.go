package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MutexHoldOptions configures the mutexhold analyzer.
type MutexHoldOptions struct {
	// AllowPackages lists import paths exempt from the check.
	AllowPackages []string
	// Exemptions with Kind "mutexhold" sanction individual functions that
	// may block while holding a lock. Each entry is verified live: the
	// function must exist and actually acquire a mutex, or the entry is
	// reported as stale.
	Exemptions []FuncExemption
}

// NewMutexHold returns the mutexhold analyzer: no operation that can park
// the goroutine — channel sends/receives, selects without default, network
// or subprocess I/O, time.Sleep, WaitGroup/Cond waits, or any module
// function that transitively reaches one — may run while a sync.Mutex or
// sync.RWMutex is held. Blocking under a lock is the deadlock shape behind
// every supervision-layer hang: the parked holder stalls every other
// acquirer, and if the unblocking party needs the same lock the program is
// wedged.
//
// The sanctioned non-blocking idiom is select-with-default (the
// jobs.Pool.Submit pattern): a send or receive guarded by a default case
// cannot park and is not reported. A deferred Unlock keeps the lock held to
// the end of the function; lock regions inside branches do not leak past
// their block. Calls are resolved through the module call graph, so a
// helper that blocks three calls down is flagged at the locked call site
// with full provenance.
func NewMutexHold(opt MutexHoldOptions) *Analyzer {
	a := &Analyzer{
		Name: "mutexhold",
		Doc: "forbid blocking operations (channel ops, network I/O, sim runs, " +
			"transitively blocking calls) while holding a sync.Mutex/RWMutex; " +
			"select-with-default is the sanctioned non-blocking idiom",
	}
	idx := indexExemptions(opt.Exemptions)
	taints := map[*Program]*TaintSet{}
	blockingTaint := func(prog *Program) *TaintSet {
		if t := taints[prog]; t != nil {
			return t
		}
		t := prog.Taint([]TaintKind{TaintBlocking}, nil)
		taints[prog] = t
		return t
	}
	a.Run = func(pass *Pass) error {
		if pass.Prog == nil {
			return nil
		}
		t := blockingTaint(pass.Prog)
		verifyMutexExemptions(pass, opt.Exemptions)
		if pkgAllowed(pass, opt.AllowPackages) {
			return nil
		}
		for _, n := range pass.funcNodes() {
			if n.TestOnly || n.Decl.Body == nil || idx.exempt(n, "mutexhold") {
				continue
			}
			c := &mutexChecker{pass: pass, taint: t}
			c.block(n.Decl.Body.List, nil)
		}
		return nil
	}
	return a
}

// verifyMutexExemptions reports, in the pass owning each entry's package,
// "mutexhold" exemptions that are unknown, unjustified, or no longer
// acquire any lock.
func verifyMutexExemptions(pass *Pass, exs []FuncExemption) {
	pkgPath := pass.Pkg.Path()
	for _, ex := range exs {
		if ex.Kind != "mutexhold" || !qualifiedInPkg(ex.Func, pkgPath) {
			continue
		}
		n := pass.Prog.ByName(ex.Func)
		if n == nil {
			pass.Reportf(pass.Files[0].Name.Pos(), "exemption %q (mutexhold) names no "+
				"function in this package: delete or fix the entry", ex.Func)
			continue
		}
		if strings.TrimSpace(ex.Reason) == "" {
			pass.Reportf(n.Decl.Name.Pos(), "exemption %q (mutexhold) has no justification", ex.Func)
		}
		if n.Decl.Body == nil || !acquiresLock(pass.TypesInfo, n.Decl.Body) {
			pass.Reportf(n.Decl.Name.Pos(), "stale exemption: %s acquires no mutex; "+
				"delete the mutexhold entry", ex.Func)
		}
	}
}

// qualifiedInPkg reports whether the import-path-qualified function name
// belongs to pkgPath.
func qualifiedInPkg(qualified, pkgPath string) bool {
	slash := strings.LastIndex(qualified, "/")
	d := strings.Index(qualified[slash+1:], ".")
	return d >= 0 && qualified[:slash+1+d] == pkgPath
}

// acquiresLock reports whether body contains any mutex Lock/RLock call.
func acquiresLock(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if m := mutexOp(info, call); m != nil && m.acquire {
				found = true
			}
		}
		return !found
	})
	return found
}

// heldLock is one currently-held mutex: the receiver expression it was
// locked through and where.
type heldLock struct {
	key string
	pos token.Pos
}

// mutexChecker walks one function body tracking the held-lock stack.
type mutexChecker struct {
	pass  *Pass
	taint *TaintSet
}

// block processes a statement list. held is owned by the caller; mutations
// from lock/unlock at this nesting level persist for the remainder of the
// list, while nested blocks receive copies so a branch-local Lock cannot
// leak out (one-sided: may miss a violation, never invents one).
func (c *mutexChecker) block(stmts []ast.Stmt, held []heldLock) []heldLock {
	for _, s := range stmts {
		held = c.stmt(s, held)
	}
	return held
}

func clone(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

func (c *mutexChecker) stmt(s ast.Stmt, held []heldLock) []heldLock {
	switch v := s.(type) {
	case nil:
		return held
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(v.X).(*ast.CallExpr); ok {
			if m := mutexOp(c.pass.TypesInfo, call); m != nil {
				if m.acquire {
					return append(held, heldLock{key: m.key, pos: call.Pos()})
				}
				for i := len(held) - 1; i >= 0; i-- {
					if held[i].key == m.key {
						return append(clone(held[:i]), held[i+1:]...)
					}
				}
				return held
			}
		}
		c.expr(v.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock runs at return: the lock stays held for the
		// rest of the function, which the unchanged held set expresses.
		// The deferred call's arguments are evaluated now.
		for _, arg := range v.Call.Args {
			c.expr(arg, held)
		}
	case *ast.GoStmt:
		// The spawn returns immediately; only argument evaluation happens
		// under the lock. The literal's body runs on its own goroutine
		// with its own (empty) lock context.
		for _, arg := range v.Call.Args {
			c.expr(arg, held)
		}
		if lit, ok := ast.Unparen(v.Call.Fun).(*ast.FuncLit); ok {
			c.block(lit.Body.List, nil)
		}
	case *ast.SendStmt:
		c.report(v.Pos(), "channel send", held)
		c.expr(v.Chan, held)
		c.expr(v.Value, held)
	case *ast.AssignStmt:
		for _, e := range v.Rhs {
			c.expr(e, held)
		}
		for _, e := range v.Lhs {
			c.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range v.Results {
			c.expr(e, held)
		}
	case *ast.IncDecStmt:
		c.expr(v.X, held)
	case *ast.DeclStmt:
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						c.expr(e, held)
					}
				}
			}
		}
	case *ast.BlockStmt:
		c.block(v.List, clone(held))
	case *ast.LabeledStmt:
		return c.stmt(v.Stmt, held)
	case *ast.IfStmt:
		inner := clone(held)
		inner = c.stmt(v.Init, inner)
		c.expr(v.Cond, inner)
		c.block(v.Body.List, clone(inner))
		c.stmt(v.Else, clone(inner))
	case *ast.ForStmt:
		inner := clone(held)
		inner = c.stmt(v.Init, inner)
		if v.Cond != nil {
			c.expr(v.Cond, inner)
		}
		body := c.block(v.Body.List, clone(inner))
		c.stmt(v.Post, body)
	case *ast.RangeStmt:
		if tv, ok := c.pass.TypesInfo.Types[v.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				c.report(v.Pos(), "range over channel", held)
			}
		}
		c.expr(v.X, held)
		c.block(v.Body.List, clone(held))
	case *ast.SwitchStmt:
		inner := clone(held)
		inner = c.stmt(v.Init, inner)
		if v.Tag != nil {
			c.expr(v.Tag, inner)
		}
		for _, cc := range v.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				for _, e := range cl.List {
					c.expr(e, inner)
				}
				c.block(cl.Body, clone(inner))
			}
		}
	case *ast.TypeSwitchStmt:
		inner := clone(held)
		inner = c.stmt(v.Init, inner)
		for _, cc := range v.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.block(cl.Body, clone(inner))
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, cc := range v.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok && cl.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			c.report(v.Pos(), "blocking select", held)
		}
		// With a default the comm ops cannot park — the sanctioned idiom;
		// either way the select accounts for them, so only operands and
		// case bodies are examined.
		for _, cc := range v.Body.List {
			cl, ok := cc.(*ast.CommClause)
			if !ok {
				continue
			}
			switch comm := cl.Comm.(type) {
			case *ast.SendStmt:
				c.expr(comm.Chan, held)
				c.expr(comm.Value, held)
			case *ast.AssignStmt:
				for _, e := range comm.Rhs {
					if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
						c.expr(u.X, held)
						continue
					}
					c.expr(e, held)
				}
			case *ast.ExprStmt:
				if u, ok := ast.Unparen(comm.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					c.expr(u.X, held)
				} else {
					c.expr(comm.X, held)
				}
			}
			c.block(cl.Body, clone(held))
		}
	default:
		// ExprStmt variants not listed (Branch, Empty) hold no expressions.
	}
	return held
}

// expr scans one expression for blocking operations under held locks.
// Function literals are separate execution contexts: their bodies are
// checked with an empty lock stack.
func (c *mutexChecker) expr(e ast.Expr, held []heldLock) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			c.block(v.Body.List, nil)
			return false
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				c.report(v.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			c.callSite(v, held)
		}
		return true
	})
}

// callSite flags calls that block: known blocking stdlib entry points, and
// module functions carrying transitive blocking taint.
func (c *mutexChecker) callSite(call *ast.CallExpr, held []heldLock) {
	if len(held) == 0 {
		return
	}
	fn := calleeFunc(c.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	if n := c.pass.Prog.Node(fn); n != nil {
		if c.taint.Tainted(n, TaintBlocking) {
			c.report(call.Pos(), "call of "+n.ShortName()+" ("+c.taint.Chain(n, TaintBlocking)+")", held)
		}
		return
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return
	}
	switch {
	case pkg.Path() == "time" && fn.Name() == "Sleep",
		blockingStdlib[pkg.Path()],
		blockingHTTPFuncs[fn.FullName()],
		blockingSyncMethods[fn.FullName()]:
		c.report(call.Pos(), "call of "+pkg.Name()+"."+FuncDisplayName(fn), held)
	}
}

// report emits one violation naming the innermost held lock, unless no lock
// is held or the site is in a test file.
func (c *mutexChecker) report(pos token.Pos, what string, held []heldLock) {
	if len(held) == 0 || c.pass.InTestFile(pos) {
		return
	}
	h := held[len(held)-1]
	c.pass.Reportf(pos, "%s while holding %s (held since %s): blocking under a lock "+
		"stalls every other acquirer; release first or use select-with-default",
		what, h.key, shortPos(c.pass.Fset, h.pos))
}

// mutexOpInfo describes one mutex method call: the lock identity (receiver
// expression) and whether it acquires or releases.
type mutexOpInfo struct {
	key     string
	acquire bool
}

// mutexOp resolves call as a sync.Mutex/RWMutex Lock/RLock/Unlock/RUnlock,
// or nil. TryLock/TryRLock never park and are ignored (their success path
// still runs under the lock, but tracking it needs flow through the bool —
// out of scope for a shape check).
func mutexOp(info *types.Info, call *ast.CallExpr) *mutexOpInfo {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return nil
	}
	switch fn.FullName() {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock", "(*sync.RWMutex).RLock":
		return &mutexOpInfo{key: types.ExprString(sel.X), acquire: true}
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock", "(*sync.RWMutex).RUnlock":
		return &mutexOpInfo{key: types.ExprString(sel.X), acquire: false}
	}
	return nil
}
