package analysis_test

import (
	"testing"

	"locality/internal/analysis"
	"locality/internal/analysis/analysistest"
)

func TestObsInert(t *testing.T) {
	a := analysis.NewObsInert(analysis.ObsInertOptions{
		ObsPackages: []string{"obsfake"},
		HotPackages: []string{"obsinert"},
	})
	analysistest.Run(t, analysistest.TestData(), a, "obsinert")
}

func TestObsInertColdPackage(t *testing.T) {
	// The same consuming shapes are clean in a package off the hot-path
	// list: the rule binds sim/harness, not the supervision layer.
	a := analysis.NewObsInert(analysis.ObsInertOptions{
		ObsPackages: []string{"obsfake"},
		HotPackages: []string{"obsinert"},
	})
	analysistest.Run(t, analysistest.TestData(), a, "obscold")
}
