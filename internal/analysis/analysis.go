// Package analysis is a self-contained static-analysis framework plus the
// localvet analyzer suite that enforces this repository's LOCAL-model
// determinism and purity contract (DESIGN.md, "Model purity & static
// enforcement").
//
// The API deliberately mirrors golang.org/x/tools/go/analysis — an Analyzer
// with a Name, Doc and Run(*Pass) hook reporting Diagnostics — so the suite
// can migrate to the upstream framework wholesale if the dependency ever
// becomes available. The module is stdlib-only by policy, so the framework
// itself (package loading, type checking, the analysistest harness, the
// cmd/localvet multichecker) is implemented here from go/ast, go/types,
// go/build and go/importer alone.
//
// The analyzers encode the contract the headline claims silently depend on:
//
//   - norawrand:   randomness enters only via internal/rng (Env.Rand);
//     math/rand and crypto/rand are banned in model code.
//   - nowallclock: model code never reads the wall clock; only the
//     simulator's deadline machinery may.
//   - nomapiter:   map iteration order must not leak into messages or
//     outputs; slices built while ranging over a map must be sorted.
//   - errsentinel: kernel failures are matched with errors.Is against the
//     sim sentinels, never by error text.
//   - phasedisc:   Machine implementations keep the Send/Recv phase
//     discipline: pointer receivers for state, no branching on Env.Node.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// An Analyzer is one static check. Run inspects a single package through the
// Pass and reports findings via Pass.Report; the returned error means the
// analyzer itself failed, not that the code is in violation.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only filters. It must
	// be a valid identifier.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run performs the check on one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass is the interface between the driver and one analyzer run on one
// type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Prog is the module-wide call graph over every package the driver
	// loaded (callgraph.go). Interprocedural analyzers (nondetflow,
	// mutexhold, ctxflow) require it; intraprocedural ones ignore it.
	Prog *Program
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// progPkg returns the Prog node package matching this pass, or nil.
func (p *Pass) progPkg() *Package {
	if p.Prog == nil {
		return nil
	}
	for _, n := range p.Prog.order {
		if n.Pkg.Types == p.Pkg {
			return n.Pkg
		}
	}
	return nil
}

// funcNodes returns the Prog nodes declared in this pass's package, in
// source order.
func (p *Pass) funcNodes() []*FuncNode {
	if p.Prog == nil {
		return nil
	}
	var out []*FuncNode
	for _, n := range p.Prog.order {
		if n.Pkg.Types == p.Pkg {
			out = append(out, n)
		}
	}
	return out
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a *_test.go file. Several analyzers
// exempt test files: tests legitimately read clocks, sleep, and match error
// text of non-sentinel errors.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// pkgAllowed reports whether the pass's package path is in the allowlist.
// Analyzer options use it to implement configurable per-package exceptions.
func pkgAllowed(p *Pass, allow []string) bool {
	path := p.Pkg.Path()
	for _, a := range allow {
		if a == path {
			return true
		}
	}
	return false
}

// fileAllowed reports whether the file containing pos is in the allowlist
// of slash-separated path suffixes (e.g. "internal/harness/retry.go").
// Analyzer options use it for exceptions narrower than a whole package: one
// sanctioned file, everything around it still checked.
func fileAllowed(p *Pass, pos token.Pos, allow []string) bool {
	if len(allow) == 0 {
		return false
	}
	name := filepath.ToSlash(p.Fset.Position(pos).Filename)
	for _, suffix := range allow {
		if strings.HasSuffix(name, suffix) {
			return true
		}
	}
	return false
}

// isErrorType reports whether t implements the built-in error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// calleeFunc resolves a call expression to the *types.Func it invokes via a
// selector or plain identifier, or nil (builtins, function values, etc.).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the named package-level function
// pkgPath.name (e.g. "time".Now).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}
