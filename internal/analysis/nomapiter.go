package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoMapIterOptions configures the nomapiter analyzer.
type NoMapIterOptions struct {
	// AllowPackages lists import paths exempt from the check.
	AllowPackages []string
}

// NewNoMapIter returns the nomapiter analyzer: Go map iteration order is
// deliberately randomized, so a slice populated while ranging over a map
// carries a nondeterministic order. If such a slice reaches a message
// payload, an output label, or any value returned from a Machine method, the
// sequential and concurrent engines stop agreeing and seeded runs stop being
// reproducible — the classic violation behind engine-equivalence breaks.
//
// The check is shape-based: a `range` over a map whose body appends to a
// slice is flagged unless the same function also passes that slice to a
// sort.* or slices.Sort* call (the sanctioned idiom: collect, sort, then
// send). Aggregations that only read the map (max, count, sum, membership)
// are not flagged.
func NewNoMapIter(opt NoMapIterOptions) *Analyzer {
	a := &Analyzer{
		Name: "nomapiter",
		Doc: "flag map-range loops that build slices without a subsequent sort; " +
			"map iteration order must never leak into messages or outputs",
	}
	a.Run = func(pass *Pass) error {
		if pkgAllowed(pass, opt.AllowPackages) {
			return nil
		}
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkFuncMapIter(pass, fd)
			}
		}
		return nil
	}
	return a
}

// checkFuncMapIter analyzes one top-level function: the sort sanitization
// scope is the whole declaration, so a closure may collect and the enclosing
// function may sort (or vice versa) without a false positive.
func checkFuncMapIter(pass *Pass, fd *ast.FuncDecl) {
	for _, f := range unsortedMapAppendFindings(pass.TypesInfo, fd.Body) {
		pass.Reportf(f.pos, "range over map appends to %q in nondeterministic "+
			"order; sort the slice (sort.Slice / sort.Ints) before it can reach "+
			"a message, output label, or returned value", f.target)
	}
}

// mapIterFinding is one unsorted map-range append: the range position and
// the slice it fills.
type mapIterFinding struct {
	pos    token.Pos
	target string
}

// unsortedMapAppendFindings is the shared shape heuristic behind both the
// intraprocedural nomapiter analyzer and the taint engine's mapiter
// sources: map-range loops in body that append to a slice the body never
// sorts.
func unsortedMapAppendFindings(info *types.Info, body *ast.BlockStmt) []mapIterFinding {
	var out []mapIterFinding
	sorted := sortedObjects(info, body)
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		for _, target := range appendTargets(info, rs.Body) {
			if sorted[target] {
				continue
			}
			out = append(out, mapIterFinding{pos: rs.Pos(), target: target.Name()})
		}
		return true
	})
	return out
}

// unsortedMapAppends returns just the range positions of
// unsortedMapAppendFindings, for the call-graph source collector.
func unsortedMapAppends(info *types.Info, body *ast.BlockStmt) []token.Pos {
	var out []token.Pos
	for _, f := range unsortedMapAppendFindings(info, body) {
		out = append(out, f.pos)
	}
	return out
}

// appendTargets returns the objects of identifiers assigned from append(...)
// calls inside body (s = append(s, ...) and s := append(s, ...)).
func appendTargets(info *types.Info, body *ast.BlockStmt) []types.Object {
	var targets []types.Object
	seen := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinAppend(info, call) {
				continue
			}
			if i >= len(as.Lhs) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.ObjectOf(id)
			if obj != nil && !seen[obj] {
				seen[obj] = true
				targets = append(targets, obj)
			}
		}
		return true
	})
	return targets
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedObjects collects every object that appears inside an argument of a
// call into package sort or slices anywhere in body — the "this slice gets
// sorted" evidence that discharges a map-range append.
func sortedObjects(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := info.ObjectOf(id); obj != nil {
						out[obj] = true
					}
				}
				return true
			})
		}
		return true
	})
	return out
}
