package analysis

// The taint engine (DESIGN.md §11): transitive propagation of the leaf
// facts callgraph.go collects, up the caller edges, with full provenance.
//
// A function is tainted with kind k when it directly contains a k-source
// or (transitively) calls a tainted function. Propagation is a multi-source
// BFS on the reversed call graph, so the recorded provenance chain for
// every function is a *shortest* path to a source — the most readable
// witness, and deterministic because nodes and edges are visited in the
// builder's source order.
//
// Barriers implement exemptions: a barrier node keeps its own taint (so
// leaf-confinement can be verified against it) but never propagates it to
// callers. This is what turns a blunt "this whole package may read the
// clock" carve-out into "exactly this function may, and everyone above it
// is machine-checked clean".

import (
	"fmt"
	"go/token"
	"path/filepath"
	"strings"
)

// A TaintKind is one propagated fact family.
type TaintKind uint8

const (
	// TaintWallclock: reaches a wall-clock read (time.Now and friends).
	TaintWallclock TaintKind = iota
	// TaintRawRand: reaches math/rand, math/rand/v2 or crypto/rand.
	TaintRawRand
	// TaintMapIter: reaches data ordered by map iteration (the nomapiter
	// shape heuristic's unsorted map-range appends).
	TaintMapIter
	// TaintGoroutine: reaches a bare go statement.
	TaintGoroutine
	// TaintBlocking: reaches an operation that can park the goroutine —
	// channel ops, selects without default, network/subprocess I/O,
	// time.Sleep, WaitGroup/Cond waits. Not a nondeterminism fact; consumed
	// by mutexhold and ctxflow.
	TaintBlocking
	numTaintKinds
)

var taintKindNames = [numTaintKinds]string{
	TaintWallclock: "wallclock",
	TaintRawRand:   "rawrand",
	TaintMapIter:   "mapiter",
	TaintGoroutine: "goroutine",
	TaintBlocking:  "blocking",
}

func (k TaintKind) String() string {
	if int(k) < len(taintKindNames) {
		return taintKindNames[k]
	}
	return fmt.Sprintf("taint(%d)", k)
}

// ParseTaintKind resolves an exemption-table kind name.
func ParseTaintKind(s string) (TaintKind, bool) {
	for k, name := range taintKindNames {
		if name == s {
			return TaintKind(k), true
		}
	}
	return 0, false
}

// NonDetKinds are the nondeterminism fact families (every kind except
// blocking) — the default set nondetflow checks.
func NonDetKinds() []TaintKind {
	return []TaintKind{TaintWallclock, TaintRawRand, TaintMapIter, TaintGoroutine}
}

// taintStep records how a node became tainted: a direct source, or the
// first edge of a shortest path toward one.
type taintStep struct {
	src  *Source
	edge *Edge
}

// A TaintSet holds one propagation's results.
type TaintSet struct {
	prog  *Program
	steps [numTaintKinds]map[*FuncNode]taintStep
}

// Taint propagates the requested kinds. barrier, when non-nil, marks
// absorbing nodes per kind: they are tainted but do not taint callers.
func (p *Program) Taint(kinds []TaintKind, barrier func(*FuncNode, TaintKind) bool) *TaintSet {
	t := &TaintSet{prog: p}
	for _, k := range kinds {
		steps := make(map[*FuncNode]taintStep)
		t.steps[k] = steps
		var queue []*FuncNode
		for _, n := range p.order {
			for i := range n.Sources {
				s := &n.Sources[i]
				if s.Kind != k {
					continue
				}
				if _, seen := steps[n]; !seen {
					steps[n] = taintStep{src: s}
					queue = append(queue, n)
				}
			}
		}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			if barrier != nil && barrier(n, k) {
				continue
			}
			// TestOnly declarations cannot be referenced from non-test
			// code, and taint inside tests is sanctioned; stop here.
			if n.TestOnly {
				continue
			}
			for _, e := range n.In {
				if k == TaintBlocking && e.Async {
					continue // the spawn returns immediately
				}
				c := e.Caller
				if _, seen := steps[c]; seen {
					continue
				}
				steps[c] = taintStep{edge: e}
				queue = append(queue, c)
			}
		}
	}
	return t
}

// Tainted reports whether n carries kind k.
func (t *TaintSet) Tainted(n *FuncNode, k TaintKind) bool {
	_, ok := t.steps[k][n]
	return ok
}

// DirectSource returns n's own k-source, or nil when n's taint (if any) is
// only transitive. Exemption verification uses this: a leaf-confined
// exemption must sit on the function that performs the read.
func (t *TaintSet) DirectSource(n *FuncNode, k TaintKind) *Source {
	for i := range n.Sources {
		if n.Sources[i].Kind == k {
			return &n.Sources[i]
		}
	}
	return nil
}

// Chain renders the full provenance from n to its k-source:
//
//	sim.Run -> sim.RunContext -> sim.runConcurrent -> time.NewTimer (concurrent.go:186)
//
// Positions are basename:line so the string is stable across checkouts
// (baseline keys include messages).
func (t *TaintSet) Chain(n *FuncNode, k TaintKind) string {
	fset := n.Pkg.Fset
	var parts []string
	seen := map[*FuncNode]bool{}
	for n != nil && !seen[n] {
		seen[n] = true
		parts = append(parts, n.ShortName())
		step, ok := t.steps[k][n]
		if !ok {
			break
		}
		if step.src != nil {
			parts = append(parts, step.src.Desc+" ("+shortPos(fset, step.src.Pos)+")")
			break
		}
		n = step.edge.Callee
	}
	return strings.Join(parts, " -> ")
}

// shortPos renders pos as basename:line.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return filepath.Base(p.Filename) + ":" + fmt.Sprint(p.Line)
}

// A FuncExemption is one sanctioned, justified leak: the named function may
// carry the named taint kind without its callers being reported. The
// analyzers verify every exemption is live and leaf-confined — the function
// must exist and directly contain a source of the kind — so the table can
// never silently outlive the code it describes.
type FuncExemption struct {
	// Func is the import-path-qualified name: "locality/internal/sim.runConcurrent"
	// or "locality/internal/harness.(*rowScheduler).start".
	Func string
	// Kind names the TaintKind ("wallclock", "rawrand", "mapiter",
	// "goroutine"), or a per-analyzer rule tag (ctxflow's "background" /
	// "noctx").
	Kind string
	// Reason is the mandatory one-line justification.
	Reason string
}

// exemptionIndex maps qualified name -> kind -> exemption, for O(1) barrier
// checks.
type exemptionIndex map[string]map[string]FuncExemption

func indexExemptions(exs []FuncExemption) exemptionIndex {
	idx := exemptionIndex{}
	for _, ex := range exs {
		m := idx[ex.Func]
		if m == nil {
			m = map[string]FuncExemption{}
			idx[ex.Func] = m
		}
		m[ex.Kind] = ex
	}
	return idx
}

func (idx exemptionIndex) exempt(n *FuncNode, kind string) bool {
	m, ok := idx[n.QualifiedName()]
	if !ok {
		return false
	}
	_, ok = m[kind]
	return ok
}
