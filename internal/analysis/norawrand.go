package analysis

import "strconv"

// rawRandImports are the randomness sources banned in model code. Global
// math/rand state is shared across nodes and (since Go 1.20) auto-seeded;
// crypto/rand is non-reproducible by design. Either one breaks the
// engine-equivalence and seeded-reproducibility guarantees, so per-node
// randomness must come from internal/rng streams handed out as Env.Rand.
var rawRandImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// NoRawRandOptions configures the norawrand analyzer.
type NoRawRandOptions struct {
	// AllowPackages lists import paths of packages exempt from the check.
	AllowPackages []string
}

// NewNoRawRand returns the norawrand analyzer: algorithm packages must not
// import math/rand, math/rand/v2 or crypto/rand. The RandLOCAL model gives
// every vertex a private stream; the reproduction realizes it as a
// deterministic per-node internal/rng source derived from the run seed, and
// any other randomness source silently breaks seeded reproducibility and the
// sequential/concurrent engine equivalence. Test files are exempt.
func NewNoRawRand(opt NoRawRandOptions) *Analyzer {
	a := &Analyzer{
		Name: "norawrand",
		Doc: "forbid math/rand and crypto/rand in model code; randomness must flow " +
			"through internal/rng per-node sources (Env.Rand)",
	}
	a.Run = func(pass *Pass) error {
		if pkgAllowed(pass, opt.AllowPackages) {
			return nil
		}
		for _, f := range pass.Files {
			for _, imp := range f.Imports {
				if pass.InTestFile(imp.Pos()) {
					continue
				}
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil || !rawRandImports[path] {
					continue
				}
				pass.Reportf(imp.Pos(), "import of %q is forbidden in model code: "+
					"derive randomness from internal/rng (Env.Rand) so runs stay "+
					"seed-reproducible across engines", path)
			}
		}
		return nil
	}
	return a
}
