package analysis_test

import (
	"testing"

	"locality/internal/analysis"
	"locality/internal/analysis/analysistest"
)

func TestGoroutineDisc(t *testing.T) {
	a := analysis.NewGoroutineDisc(analysis.GoroutineDiscOptions{})
	analysistest.Run(t, analysistest.TestData(), a, "goroutinedisc")
}

func TestGoroutineDiscAllowed(t *testing.T) {
	// A justified package allowance covers the pool pattern's spawns.
	a := analysis.NewGoroutineDisc(analysis.GoroutineDiscOptions{
		Allow: []analysis.GoAllowance{
			{Package: "goroutinediscallowed", Reason: "fixture: WaitGroup-reaped fan-out"},
		},
	})
	analysistest.Run(t, analysistest.TestData(), a, "goroutinediscallowed")
}

func TestGoroutineDiscStale(t *testing.T) {
	// Allowances are live entries: a package or file that no longer spawns
	// makes its allowance stale, and a missing justification is itself a
	// finding.
	a := analysis.NewGoroutineDisc(analysis.GoroutineDiscOptions{
		Allow: []analysis.GoAllowance{
			{Package: "goroutinediscstale", Reason: ""},
			{File: "goroutinediscstale/b.go", Reason: "fixture: once spawned a reaper"},
		},
	})
	analysistest.Run(t, analysistest.TestData(), a, "goroutinediscstale")
}
