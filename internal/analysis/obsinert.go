package analysis

import "go/ast"

// ObsInertOptions configures the obsinert analyzer.
type ObsInertOptions struct {
	// ObsPackages are the observability import paths whose calls are
	// audited (the repository gate uses locality/internal/obs).
	ObsPackages []string
	// HotPackages are the import paths the rule applies to — the simulator
	// and harness hot paths, where telemetry must be provably inert.
	// Packages not listed here (the supervision layer, commands) may read
	// metric values freely.
	HotPackages []string
}

// NewObsInert returns the obsinert analyzer: in hot-path packages, every
// call into an observability package must be fire-and-forget — a bare
// expression statement (or defer/go statement), never a value feeding an
// assignment, condition, argument or return. The observability contract
// (DESIGN.md §9) promises that telemetry observes and never influences a
// run; a hot-path branch on a counter value is exactly the regression that
// breaks the byte-identity and engine-equivalence guarantees, and it is
// cheaper to ban the shape than to re-prove inertness per change. Chained
// fire-and-forget calls (reg.Counter(...).Inc()) are statement position all
// the way down, so the idiom stays available; test files are exempt (they
// legitimately assert on metric values).
func NewObsInert(opt ObsInertOptions) *Analyzer {
	obsPkgs := make(map[string]bool, len(opt.ObsPackages))
	for _, p := range opt.ObsPackages {
		obsPkgs[p] = true
	}
	a := &Analyzer{
		Name: "obsinert",
		Doc: "forbid hot-path code from consuming observability results: obs calls in " +
			"sim/harness must be fire-and-forget statements, so telemetry can never " +
			"influence a run",
	}
	a.Run = func(pass *Pass) error {
		if !pkgAllowed(pass, opt.HotPackages) {
			return nil
		}
		for _, f := range pass.Files {
			// First pass: collect the calls in statement position. A
			// statement call blesses its whole method chain — the inner
			// calls of reg.Counter(...).Inc() produce values, but those
			// values go nowhere except the final fire-and-forget call.
			stmtCalls := make(map[*ast.CallExpr]bool)
			bless := func(c *ast.CallExpr) {
				for c != nil {
					stmtCalls[c] = true
					sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr)
					if !ok {
						return
					}
					inner, ok := ast.Unparen(sel.X).(*ast.CallExpr)
					if !ok {
						return
					}
					c = inner
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.ExprStmt:
					if c, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
						bless(c)
					}
				case *ast.DeferStmt:
					bless(s.Call)
				case *ast.GoStmt:
					bless(s.Call)
				}
				return true
			})
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.TypesInfo, call)
				if fn == nil || fn.Pkg() == nil || !obsPkgs[fn.Pkg().Path()] {
					return true
				}
				if stmtCalls[call] || pass.InTestFile(call.Pos()) {
					return true
				}
				pass.Reportf(call.Pos(), "result of %s.%s consumed in hot-path code: "+
					"observability calls must be fire-and-forget statements "+
					"(telemetry observes, never influences — DESIGN.md §9)",
					fn.Pkg().Name(), fn.Name())
				return true
			})
		}
		return nil
	}
	return a
}
