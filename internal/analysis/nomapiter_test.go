package analysis_test

import (
	"testing"

	"locality/internal/analysis"
	"locality/internal/analysis/analysistest"
)

func TestNoMapIter(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(),
		analysis.NewNoMapIter(analysis.NoMapIterOptions{}), "nomapiter")
}
