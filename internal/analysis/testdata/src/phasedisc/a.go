// Package phasedisc is the fixture for the phasedisc analyzer: machines
// with value receivers that mutate state, and machines observing Env.Node,
// are flagged; the disciplined pointer-receiver machine is accepted.
package phasedisc

// Env mirrors the simulator environment shape (the analyzer matches the
// type name and field, not the import path, so fixtures stay self-contained).
type Env struct {
	Node   int
	Degree int
}

// Message mirrors the simulator message type.
type Message any

// good is the disciplined machine — pointer receivers, no Env.Node. Accepted.
type good struct {
	env   Env
	round int
}

func (m *good) Init(env Env) { m.env = env }
func (m *good) Step(step int, recv []Message) ([]Message, bool) {
	m.round = step
	return nil, step > 3
}
func (m *good) Output() any { return m.round }

// lossy mutates state through value receivers — Init and Step flagged.
type lossy struct {
	env   Env
	count int
}

func (m lossy) Init(env Env) { m.env = env } // want `\(lossy\).Init mutates field "env" through a value receiver`
func (m lossy) Step(step int, recv []Message) ([]Message, bool) { // want `\(lossy\).Step mutates field "count" through a value receiver`
	m.count++
	return nil, true
}
func (m lossy) Output() any { return m.count }

// nosy branches on the host vertex index — flagged at the selector.
type nosy struct {
	env Env
}

func (m *nosy) Init(env Env) { m.env = env }
func (m *nosy) Step(step int, recv []Message) ([]Message, bool) {
	if m.env.Node == 0 { // want `machine nosy observes Env.Node`
		return nil, true
	}
	return make([]Message, m.env.Degree), false
}
func (m *nosy) Output() any { return nil }

// helper is not a machine (no Output), so its value receiver is accepted.
type helper struct {
	n int
}

func (h helper) Init(env Env) {}
func (h helper) Step(step int, recv []Message) ([]Message, bool) {
	h.n = step
	return nil, true
}
