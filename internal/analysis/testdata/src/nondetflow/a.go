// Package nondetflow is the fixture for the nondetflow analyzer: taint
// reaching a nondeterminism source through any number of calls — including
// cross-package ones — is reported at the taint root with full provenance,
// while pure call chains and flows through exempt packages are accepted.
package nondetflow

import (
	"sort"
	"time"

	"nondetflowdep"
	"nondetflowexempt"
)

// Entry is the taint root of a two-hop wallclock chain: Entry -> helper ->
// time.Now. Only Entry is reported; helper is an interior node.
func Entry() time.Duration { // want `nondeterminism \(wallclock\) reachable from nondetflow\.Entry: nondetflow\.Entry -> nondetflow\.helper -> time\.Now`
	return helper()
}

func helper() time.Duration {
	return time.Duration(time.Now().UnixNano())
}

// CrossPkg launders a clock read through another package: the chain crosses
// the package boundary and still ends at the leaf.
func CrossPkg() int64 { // want `nondeterminism \(wallclock\) reachable from nondetflow\.CrossPkg: nondetflow\.CrossPkg -> nondetflowdep\.Stamp -> time\.Now`
	return nondetflowdep.Stamp()
}

// Spawn reaches a bare go statement through a helper.
func Spawn() { // want `nondeterminism \(goroutine\) reachable from nondetflow\.Spawn`
	spawnHelper()
}

func spawnHelper() {
	go func() {}()
}

// ViaExempt calls into an exempt package: the taint is absorbed at the
// boundary, so ViaExempt is accepted.
func ViaExempt() int64 {
	return nondetflowexempt.Stamp()
}

// Pure is accepted: sorting is deterministic, no source is reachable.
func Pure(xs []int) []int {
	sort.Ints(xs)
	return xs
}
