package nondetflow

import "time"

// Test declarations may reach sources freely: taint never escapes a
// _test.go file, and test-only roots are not reported.
func pollForTest() time.Time {
	return time.Now()
}
