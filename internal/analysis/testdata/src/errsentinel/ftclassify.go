package errsentinel

import (
	"errors"
	"strings"
)

// This fixture replays the regression the harness's ftErrString (E12's
// error-cell renderer) must never reintroduce: classifying run errors by
// their rendered text instead of errors.Is against the structured
// sentinels. The kernel and supervision layers always wrap their sentinels
// with run context ("sim: run cancelled at round 7: context canceled"), so
// every text match below is one rewording away from misclassification —
// and each is flagged.

// Mimics of the sentinels the real code classifies against.
var (
	errMaxRounds = errors.New("sim: exceeded maximum rounds")
	errDeadline  = errors.New("sim: deadline exceeded")
)

// ftErrStringRegressed is the flagged shape: a table-cell classifier built
// on error text.
func ftErrStringRegressed(err error) string {
	if err == nil {
		return "none"
	}
	if strings.Contains(err.Error(), "maximum rounds") { // want `matching on error text with strings.Contains`
		return "max rounds"
	}
	if strings.HasPrefix(err.Error(), "sim: deadline") { // want `matching on error text with strings.HasPrefix`
		return "deadline"
	}
	if err.Error() == "context canceled" { // want `comparing err.Error\(\) text`
		return "cancelled"
	}
	if err == errMaxRounds { // want `comparing error values with ==`
		return "max rounds"
	}
	return "unclassified"
}

// ftErrStringSanctioned is the accepted shape the real ftErrString uses:
// classification flows through errors.Is, so wrapping never breaks it.
func ftErrStringSanctioned(err error) string {
	switch {
	case err == nil:
		return "none"
	case errors.Is(err, errMaxRounds):
		return "max rounds"
	case errors.Is(err, errDeadline):
		return "deadline"
	}
	return "unclassified"
}
