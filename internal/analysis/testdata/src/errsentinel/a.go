// Package errsentinel is the fixture for the errsentinel analyzer: error-
// text matching and ==/!= error comparisons are flagged, errors.Is and nil
// checks are accepted.
package errsentinel

import (
	"errors"
	"strings"
)

// ErrNodePanic mimics the kernel sentinel.
var ErrNodePanic = errors.New("sim: machine panicked")

// ClassifyByText matches on rendered text — both checks flagged.
func ClassifyByText(err error) string {
	if err.Error() == "sim: machine panicked" { // want `comparing err.Error\(\) text`
		return "panic"
	}
	if strings.Contains(err.Error(), "over-send") { // want `matching on error text with strings.Contains`
		return "over-send"
	}
	return "other"
}

// CompareSentinels compares error values directly — flagged (wrapping
// breaks ==).
func CompareSentinels(err error) bool {
	return err == ErrNodePanic // want `comparing error values with ==`
}

// Classify is the sanctioned pattern — accepted.
func Classify(err error) string {
	if err == nil {
		return "ok"
	}
	if errors.Is(err, ErrNodePanic) {
		return "panic"
	}
	return "other"
}

// ContainsLabel matches text that is not error text — accepted.
func ContainsLabel(s string) bool {
	return strings.Contains(s, "panic")
}
