// Package nomapiter is the fixture for the nomapiter analyzer: slices built
// under map iteration are flagged unless the function sorts them.
package nomapiter

import "sort"

// Message is a stand-in for a simulator message payload.
type Message struct {
	Neighbors []int
}

// BuildUnsorted leaks map order into the payload — flagged.
func BuildUnsorted(nbrs map[int]bool) Message {
	var ids []int
	for id := range nbrs { // want `range over map appends to "ids" in nondeterministic order`
		ids = append(ids, id)
	}
	return Message{Neighbors: ids}
}

// BuildSorted is the sanctioned idiom — collect, sort, then send. Accepted.
func BuildSorted(nbrs map[int]bool) Message {
	var ids []int
	for id := range nbrs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return Message{Neighbors: ids}
}

// MaxKey only aggregates; no slice escapes, so the range is accepted.
func MaxKey(nbrs map[int]bool) int {
	best := -1
	for id := range nbrs {
		if id > best {
			best = id
		}
	}
	return best
}

// SortSliceVariant uses sort.Slice evidence instead of sort.Ints. Accepted.
func SortSliceVariant(weights map[string]float64) []string {
	var keys []string
	for k := range weights {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// TwoSlices sorts only one of the two collected slices — the other is
// flagged.
func TwoSlices(nbrs map[int]bool) ([]int, []int) {
	var sorted, raw []int
	for id := range nbrs { // want `range over map appends to "raw" in nondeterministic order`
		sorted = append(sorted, id)
		raw = append(raw, id+1)
	}
	sort.Ints(sorted)
	return sorted, raw
}
