// Package goroutinediscallowed stands in for a sanctioned concurrency site
// (the internal/jobs worker-pool pattern): a package allowance with a
// justification covers its go statements, and the reaping discipline is the
// justification.
package goroutinediscallowed

import "sync"

// Fan runs work on n goroutines and joins them all — accepted under the
// package allowance.
func Fan(n int, work func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work(i)
		}()
	}
	wg.Wait()
}
