// Package obsfake is the analysistest stand-in for an observability
// package: a handle-producing constructor, fire-and-forget mutators, and
// value readers, mirroring the shapes of internal/obs.
package obsfake

// Counter is a fake metric handle.
type Counter struct{ v int64 }

// Add is fire-and-forget.
func (c *Counter) Add(d int64) { c.v += d }

// Get reads the value (consuming it in hot-path code is the violation).
func (c *Counter) Get() int64 { return c.v }

// New produces a handle.
func New() *Counter { return &Counter{} }

// Count is a package-level fire-and-forget call.
func Count() {}

// Value is a package-level reader.
func Value() int { return 0 }
