// Package obsinert fixtures: observability calls in a hot-path package must
// be fire-and-forget statements; any shape that consumes their result is
// flagged.
package obsinert

import "obsfake"

// fireAndForget shows every accepted shape: bare statements, defer/go
// statements, and chained statement calls whose intermediate values exist
// only to reach the final mutator.
func fireAndForget() {
	obsfake.Count()
	defer obsfake.Count()
	go obsfake.Count()
	obsfake.New().Add(1)
}

// consumed shows the flagged shapes: an obs result feeding a condition,
// an assignment, a loop bound, or another call's argument.
func consumed(n int) int {
	if obsfake.Value() > 0 { // want `result of obsfake\.Value consumed in hot-path code`
		return 1
	}
	v := obsfake.Value() // want `result of obsfake\.Value consumed in hot-path code`
	for i := 0; i < obsfake.Value(); i++ { // want `result of obsfake\.Value consumed in hot-path code`
		v += i
	}
	c := obsfake.New() // want `result of obsfake\.New consumed in hot-path code`
	_ = c.Get()        // want `result of obsfake\.Get consumed in hot-path code`
	return v + sink(obsfake.Value()) // want `result of obsfake\.Value consumed in hot-path code`
}

func sink(v int) int { return v }
