// Package nondetflowdep is a helper dependency for the nondetflow fixture:
// it hides a clock read behind an exported function so the analyzer must
// follow a cross-package edge to find it.
package nondetflowdep

import "time"

// Stamp reads the wall clock. Reported in nondetflowdep's own pass; for the
// importing fixture it is the interior of a cross-package chain.
func Stamp() int64 { // want `nondeterminism \(wallclock\) reachable from nondetflowdep\.Stamp: nondetflowdep\.Stamp -> time\.Now \(dep\.go:11\)`
	return time.Now().UnixNano()
}
