// Package nodeallowed exercises phasedisc's AllowNodePackages exemption:
// Env.Node observation is permitted here (no want comment on it), but the
// value-receiver discipline still applies.
package nodeallowed

// Env mirrors the simulator environment shape.
type Env struct {
	Node   int
	Degree int
}

// Message mirrors the simulator message type.
type Message any

// shim observes Env.Node — allowed in this package (fault-injection-style
// instrumentation).
type shim struct {
	env Env
}

func (m *shim) Init(env Env) { m.env = env }
func (m *shim) Step(step int, recv []Message) ([]Message, bool) {
	return nil, m.env.Node == 0 // exempted via AllowNodePackages
}
func (m *shim) Output() any { return nil }

// leaky still violates the receiver discipline — flagged even here.
type leaky struct {
	n int
}

func (m leaky) Init(env Env) {}
func (m leaky) Step(step int, recv []Message) ([]Message, bool) { // want `\(leaky\).Step mutates field "n" through a value receiver`
	m.n = step
	return nil, true
}
func (m leaky) Output() any { return m.n }
