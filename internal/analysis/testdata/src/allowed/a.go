// Package allowed exercises the per-package allowlists: it imports a banned
// randomness source and reads the clock, but carries no want comments — the
// analyzers must stay silent when this path is configured as exempt.
package allowed

import (
	"math/rand"
	"time"
)

// Jitter mixes both exemptions in one helper.
func Jitter() time.Duration {
	return time.Duration(rand.Intn(10)) * time.Millisecond
}
