// Package mutexhold is the fixture for the mutexhold analyzer: operations
// that can park the goroutine while a mutex is held are flagged — including
// calls that only block transitively — while lock-then-release sequencing
// and the select-with-default idiom are accepted.
package mutexhold

import (
	"sync"
	"time"
)

// Q is a locked queue with a notification channel.
type Q struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	items []int
	ch    chan int
}

// SendLocked sends on a channel while holding mu — flagged: if the reader
// needs mu the program is wedged.
func (q *Q) SendLocked(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.ch <- v // want `channel send while holding q\.mu \(held since a\.go:23\)`
}

// SendAfterUnlock releases first — accepted.
func (q *Q) SendAfterUnlock(v int) {
	q.mu.Lock()
	q.items = append(q.items, v)
	q.mu.Unlock()
	q.ch <- v
}

// TrySend uses select-with-default under the lock — accepted: the send
// cannot park.
func (q *Q) TrySend(v int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.ch <- v:
		return true
	default:
		return false
	}
}

// WaitLocked parks in a bare select while holding the read lock — flagged.
func (q *Q) WaitLocked() int {
	q.rw.RLock()
	defer q.rw.RUnlock()
	select { // want `blocking select while holding q\.rw \(held since a\.go:51\)`
	case v := <-q.ch:
		return v
	}
}

// SleepLocked sleeps while holding mu — flagged.
func (q *Q) SleepLocked() {
	q.mu.Lock()
	time.Sleep(time.Millisecond) // want `call of time\.Sleep while holding q\.mu`
	q.mu.Unlock()
}

// drain blocks on a receive; it exists so CallLocked's violation is only
// visible transitively.
func (q *Q) drain() int {
	return <-q.ch
}

// CallLocked calls a helper that blocks two hops down — flagged at the call
// site with the provenance chain.
func (q *Q) CallLocked() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.drain() // want `call of mutexhold\.\(\*Q\)\.drain \(mutexhold\.\(\*Q\)\.drain -> channel receive \(a\.go:69\)\) while holding q\.mu`
}

// BranchLock locks only inside the branch; the receive after the branch
// runs unlocked — accepted (branch-local regions do not leak out).
func (q *Q) BranchLock(cond bool) int {
	if cond {
		q.mu.Lock()
		q.items = nil
		q.mu.Unlock()
	}
	return <-q.ch
}

// SpawnLocked starts a goroutine while holding mu — accepted by this
// analyzer: the spawn returns immediately, and the literal's body runs with
// its own lock context (goroutinedisc polices the spawn itself).
func (q *Q) SpawnLocked() {
	q.mu.Lock()
	defer q.mu.Unlock()
	go func() {
		q.ch <- 1
	}()
}
