package mutexhold

import "sync"

// R exercises the exemption table.
type R struct {
	mu sync.Mutex
	ch chan int
}

// Sanctioned blocks under its lock but carries a justified "mutexhold"
// exemption in the test — accepted.
func (r *R) Sanctioned() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return <-r.ch
}

// NoLock is exempted in the test but acquires nothing — the entry is stale
// and must be reported before it can sanction a future lock.
func (r *R) NoLock() int { // want `stale exemption: mutexhold\.\(\*R\)\.NoLock acquires no mutex`
	return <-r.ch
}
