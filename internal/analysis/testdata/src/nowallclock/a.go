// Package nowallclock is the fixture for the nowallclock analyzer: clock
// reads are flagged, plain time.Duration plumbing is accepted.
package nowallclock

import "time"

// Deadline carries a duration — accepted: no clock is consulted.
type Deadline struct {
	Budget time.Duration
}

// Elapsed reads the wall clock twice and sleeps — all three flagged.
func Elapsed(d Deadline) bool {
	start := time.Now()                 // want `call of time.Now in model code`
	time.Sleep(time.Millisecond)        // want `call of time.Sleep in model code`
	return time.Since(start) > d.Budget // want `call of time.Since in model code`
}

// Scale is accepted: arithmetic on durations never reads the clock.
func Scale(d Deadline, k int) time.Duration {
	return d.Budget * time.Duration(k)
}
