package nowallclock

import "time"

// waitForTest documents the test-file exemption: tests may poll and sleep.
func waitForTest() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}
