// Package obscold replays the consuming shapes of the obsinert fixture in a
// package that is NOT on the hot-path list: nothing is flagged, because the
// rule binds only sim/harness — supervision layers read metric values
// legitimately.
package obscold

import "obsfake"

func consumed() int {
	if obsfake.Value() > 0 {
		return 1
	}
	c := obsfake.New()
	c.Add(1)
	return int(c.Get())
}
