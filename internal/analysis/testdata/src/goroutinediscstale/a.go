// Package goroutinediscstale exercises allowance verification: the test
// grants this package (and file b.go) goroutine allowances, but nothing
// here spawns — both entries are stale and must be reported, so the
// allowance table cannot outlive the concurrency it once described.
package goroutinediscstale // want `stale goroutine allowance: package goroutinediscstale contains no go statement` `goroutine allowance for package goroutinediscstale has no justification`

// Calm does everything synchronously.
func Calm(work func()) {
	work()
}
