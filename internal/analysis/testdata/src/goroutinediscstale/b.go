package goroutinediscstale // want `stale goroutine allowance: file goroutinediscstale/b\.go contains no go statement`

// AlsoCalm spawns nothing either; the file allowance pointing here is dead.
func AlsoCalm() int {
	return 1
}
