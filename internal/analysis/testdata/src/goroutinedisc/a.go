// Package goroutinedisc is the fixture for the goroutinedisc analyzer:
// bare go statements are flagged, synchronous helpers and test files are
// accepted.
package goroutinedisc

// FireAndForget spawns an unreaped goroutine — flagged: nothing joins it,
// nothing bounds it.
func FireAndForget(work func()) {
	go work() // want `go statement outside the sanctioned concurrency sites`
}

// Nested spawns inside a closure — still flagged: the go statement is what
// matters, not its nesting.
func Nested(work func()) func() {
	return func() {
		go work() // want `go statement outside the sanctioned concurrency sites`
	}
}

// Sequential is accepted: calling the helper synchronously spawns nothing.
func Sequential(work func()) {
	work()
}
