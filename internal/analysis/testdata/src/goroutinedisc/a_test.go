package goroutinedisc

// spawnForTest documents the test-file exemption: tests may use goroutines
// (timeout guards, concurrent exercise) freely.
func spawnForTest(work func()) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	<-done
}
