package ctxflow

import "context"

// ReaperLoop is the sanctioned detached-cleanup idiom: it receives a
// Context for request-scoped work but deliberately mints a root for the
// reaper it hands off; the test carries a justified "background" exemption,
// so it is accepted.
func ReaperLoop(ctx context.Context) context.Context {
	return context.Background()
}

// ReaperFixed was remediated to WithoutCancel but the test still carries
// its "background" exemption — stale, reported at the declaration.
func ReaperFixed(ctx context.Context) context.Context { // want `stale exemption: ctxflow\.ReaperFixed no longer calls context\.Background/TODO`
	return context.WithoutCancel(ctx)
}

// FireAndForget is exempted "noctx": it may call blocking no-Context
// callees — accepted.
func FireAndForget(ctx context.Context, ch chan int) int {
	return Wait(ch)
}

// NoCtxAnymore lost its Context parameter; both of its exemptions in the
// test are dead entries.
func NoCtxAnymore(ch chan int) int { // want `stale exemption: ctxflow\.NoCtxAnymore has no context\.Context parameter`
	return len(ch)
}
