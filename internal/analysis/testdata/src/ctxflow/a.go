// Package ctxflow is the fixture for the ctxflow analyzer: the Context
// parameter comes first, context-carrying functions neither mint fresh
// roots nor call blocking module callees that cannot receive the context.
package ctxflow // want `exemption "ctxflow\.Vanished" \(noctx\) names no function in this package`

import (
	"context"
	"time"
)

// Wait blocks on a receive and takes no Context; calls to it from
// context-carrying functions are the rule-3 violation.
func Wait(ch chan int) int {
	return <-ch
}

// WaitCtx is the remediated form — cancellable, context first.
func WaitCtx(ctx context.Context, ch chan int) (int, error) {
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// Misplaced takes its Context second — flagged by rule 1.
func Misplaced(n int, ctx context.Context) error { // want `context\.Context is parameter 2 of ctxflow\.Misplaced`
	return ctx.Err()
}

// Detaches mints a fresh root despite already receiving a Context —
// flagged by rule 2: everything downstream silently stops honouring the
// caller's cancellation.
func Detaches(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d) // want `context\.Background inside ctxflow\.Detaches, which already receives a Context`
}

// DetachesSanctioned uses the WithoutCancel idiom — accepted: values still
// flow, only cancellation is severed, and that severing is explicit.
func DetachesSanctioned(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.WithoutCancel(ctx), d)
}

// DropsCtx calls the blocking no-Context helper — flagged by rule 3: the
// wait cannot be cancelled from here.
func DropsCtx(ctx context.Context, ch chan int) int {
	return Wait(ch) // want `ctxflow\.Wait can block \(ctxflow\.Wait -> channel receive \(a\.go:14\)\) but takes no Context`
}

// ThreadsCtx passes the context into the blocking callee — accepted.
func ThreadsCtx(ctx context.Context, ch chan int) (int, error) {
	return WaitCtx(ctx, ch)
}

// CallsPure calls a non-blocking no-Context helper — accepted: nothing to
// cancel.
func CallsPure(ctx context.Context, x int) int {
	return double(x)
}

func double(x int) int { return 2 * x }
