// Package norawrand is the fixture for the norawrand analyzer: raw
// randomness imports are flagged, the internal/rng route is accepted.
package norawrand

import (
	crand "crypto/rand" // want `import of "crypto/rand" is forbidden in model code`
	"math/rand"         // want `import of "math/rand" is forbidden in model code`

	"locality/internal/rng" // accepted: the sanctioned randomness source
)

// UseRaw consumes the banned imports so the fixture type-checks.
func UseRaw() int {
	buf := make([]byte, 1)
	_, _ = crand.Read(buf)
	return rand.Int() + int(buf[0])
}

// UseRNG is the accepted pattern: a per-node deterministic stream.
func UseRNG(seed uint64, node int) uint64 {
	return rng.NewNode(seed, node).Uint64()
}
