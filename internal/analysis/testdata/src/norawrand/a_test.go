package norawrand

import "math/rand" // accepted: test files may use raw randomness

// shuffleForTest documents the test-file exemption.
func shuffleForTest(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
