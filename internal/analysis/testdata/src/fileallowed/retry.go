// Package fileallowed exercises NoWallClockOptions.AllowFiles: this file is
// configured as the package's one sanctioned clock consumer (no want
// comments), while clock reads anywhere else in the package stay flagged.
package fileallowed

import "time"

// Wait is the sanctioned wall-clock consumer.
func Wait(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	<-t.C
}

// Sleepy is also exempt — the exemption is per file, not per function.
func Sleepy() {
	time.Sleep(time.Millisecond)
}
