package fileallowed

import "time"

// Stamp lives outside the allowlisted file, so the ban still applies.
func Stamp() time.Time {
	return time.Now() // want `call of time.Now in model code`
}
