// Package nondetflowexempt stands in for the supervision tier: listed in
// ExemptPackages, its clock reads are neither reported nor propagated to
// importing domain code.
package nondetflowexempt

import "time"

// Stamp reads the wall clock — accepted: the package is exempt, and the
// exemption is a taint barrier for callers.
func Stamp() int64 {
	return time.Now().UnixNano()
}
