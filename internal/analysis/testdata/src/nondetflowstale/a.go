// Package nondetflowstale exercises exemption verification: a live
// leaf-confined exemption silences its callers, while stale, unknown and
// unjustified table entries are themselves reported.
package nondetflowstale // want `exemption "nondetflowstale\.Gone" \(wallclock\) names no function in this package`

import "time"

// Wait is the sanctioned leaf: it directly reads the clock and the test
// exempts it, so neither Wait nor its caller is reported.
func Wait() {
	time.Sleep(time.Millisecond)
}

// UsesWait is accepted: its only path to the clock is the exempted leaf.
func UsesWait() {
	Wait()
}

// NotALeaf is exempted in the test but contains no direct clock read — the
// exemption is stale and must be reported, because it would otherwise
// silently sanction whatever NotALeaf grows to call.
func NotALeaf() { // want `stale exemption: nondetflowstale\.NotALeaf no longer contains a direct wallclock source`
	helper()
}

// helper holds the actual read; NotALeaf's exemption does not cover it, so
// NotALeaf is still a barrier for its callers (exemptions absorb taint
// regardless of staleness) but the table entry itself is flagged.
func helper() { // want `nondeterminism \(wallclock\) reachable from nondetflowstale\.helper`
	_ = time.Now()
}

// Unjustified directly reads the clock and is exempted without a reason —
// the entry is reported even though it is leaf-confined.
func Unjustified() { // want `exemption "nondetflowstale\.Unjustified" \(wallclock\) has no justification`
	_ = time.Now()
}
