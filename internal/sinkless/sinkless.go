// Package sinkless implements the Brandt et al. [1] problem pair behind the
// paper's Theorem 4 — Δ-SINKLESS ORIENTATION and Δ-SINKLESS COLORING on
// Δ-regular graphs with a proper Δ-edge coloring — together with:
//
//   - a RandLOCAL sinkless-orientation algorithm (random orientation by
//     per-edge priority comparison, then "sink tokens" re-flip random
//     incident edges until none remain);
//   - the constructive reductions underlying Lemmas 1 and 2, as executable
//     machine transformers: an orientation derived from a sinkless
//     coloring (orient each vertex's own-color edge outward) and a
//     coloring derived from a sinkless orientation (adopt the edge color
//     of an outgoing edge). Failures translate exactly as the lemmas
//     predict: a forbidden monochromatic configuration is the only way the
//     derived orientation can clash, and a sink is the only way the
//     derived coloring can go wrong;
//   - the exact base case of Theorem 4: every 0-round strategy fails on
//     some edge with probability at least 1/Δ², with the uniform
//     distribution achieving exactly 1/Δ² (the ZeroRound functions).
package sinkless

import (
	"fmt"

	"locality/internal/lcl"
	"locality/internal/mathx"
	"locality/internal/sim"
)

// VertexColors extracts the per-port edge colors from the environment.
func VertexColors(env sim.Env) []int {
	in, ok := env.Input.(lcl.VertexInput)
	if !ok {
		panic(fmt.Sprintf("sinkless: input is %T, want lcl.VertexInput (edge colors)", env.Input))
	}
	if len(in.EdgeColors) != env.Degree {
		panic(fmt.Sprintf("sinkless: %d edge colors for degree %d", len(in.EdgeColors), env.Degree))
	}
	return in.EdgeColors
}

// OrientOptions configures the randomized sinkless-orientation machine.
type OrientOptions struct {
	// MaxPhases caps the sink-fixing phases; 0 means 16·ceil(log2 n)+32.
	MaxPhases int
}

// OrientResult is the orientation machine's output: the label plus the last
// phase at which the vertex was still a sink (diagnostics for experiment
// E11's convergence measurement; -1 if it never was one).
type OrientResult struct {
	Label        lcl.OrientationLabel
	LastSinkStep int
}

// orientMsg carries per-edge claims.
type orientMsg struct {
	Prio uint64 // initial orientation priority (step 1) or flip priority
	Flip bool   // the sender, a sink, claims this edge outgoing
}

type orient struct {
	opt       OrientOptions
	env       sim.Env
	out       []bool
	initPrio  []uint64
	claimPort int
	claimPrio uint64
	lastSink  int
	phases    int
}

var _ sim.Machine = (*orient)(nil)

// NewOrientFactory returns the randomized sinkless-orientation machine.
func NewOrientFactory(opt OrientOptions) sim.Factory {
	return func() sim.Machine { return &orient{opt: opt} }
}

func (m *orient) Init(env sim.Env) {
	if env.Rand == nil {
		panic("sinkless: orientation machine requires Config.Randomized")
	}
	m.env = env
	m.out = make([]bool, env.Degree)
	m.initPrio = make([]uint64, env.Degree)
	m.claimPort = -1
	m.lastSink = -1
	m.phases = m.opt.MaxPhases
	if m.phases == 0 {
		m.phases = 16*mathx.CeilLog2(env.N+1) + 32
	}
}

func (m *orient) isSink() bool {
	for _, o := range m.out {
		if o {
			return false
		}
	}
	return m.env.Degree > 0
}

// Step protocol.
//
// Step 1: draw a priority per port and send it.
// Step 2: orient every edge toward the larger priority (a 2^-64-probability
// tie leaves the edge claimed by neither side; a later sink flip repairs it,
// and if no endpoint ever becomes a sink the verifier reports the edge —
// failures are visible, never silent).
// Steps >= 2: sink-fixing phase: resolve incoming flip claims (competing
// claims on one edge go to the larger flip priority, identically computed
// at both endpoints), then, if still a sink, claim one uniformly random
// incident edge.
func (m *orient) Step(step int, recv []sim.Message) ([]sim.Message, bool) {
	switch {
	case step == 1:
		send := make([]sim.Message, m.env.Degree)
		for p := range send {
			m.initPrio[p] = m.env.Rand.Uint64()
			send[p] = orientMsg{Prio: m.initPrio[p]}
		}
		return send, false
	case step == 2:
		for p, msg := range recv {
			om, ok := msg.(orientMsg)
			if !ok {
				panic(fmt.Sprintf("sinkless: unexpected message %T", msg))
			}
			m.out[p] = m.initPrio[p] > om.Prio
		}
	default:
		m.resolveClaims(recv)
	}
	if step >= 2+m.phases {
		return nil, true
	}
	if m.isSink() {
		m.lastSink = step
		p := m.env.Rand.Intn(m.env.Degree)
		m.claimPort = p
		m.claimPrio = m.env.Rand.Uint64()
		send := make([]sim.Message, m.env.Degree)
		send[p] = orientMsg{Flip: true, Prio: m.claimPrio}
		return send, false
	}
	return nil, false
}

// resolveClaims settles the previous phase's flip claims. Both endpoints of
// a doubly-claimed edge apply the same priority rule, so their views stay
// complementary.
func (m *orient) resolveClaims(recv []sim.Message) {
	myClaim := m.claimPort
	m.claimPort = -1
	for p, msg := range recv {
		if msg == nil {
			if p == myClaim {
				m.out[p] = true // unopposed claim stands
			}
			continue
		}
		om, ok := msg.(orientMsg)
		if !ok {
			panic(fmt.Sprintf("sinkless: unexpected message %T", msg))
		}
		if !om.Flip {
			continue
		}
		if p == myClaim {
			m.out[p] = m.claimPrio > om.Prio
		} else {
			m.out[p] = false // their claim, uncontested by us
		}
	}
}

func (m *orient) Output() any {
	return OrientResult{
		Label:        lcl.OrientationLabel{Out: append([]bool(nil), m.out...)},
		LastSinkStep: m.lastSink,
	}
}

// OrientLabels extracts the orientation labels from a run's outputs.
func OrientLabels(outputs []any) []lcl.OrientationLabel {
	labels := make([]lcl.OrientationLabel, len(outputs))
	for v, o := range outputs {
		labels[v] = o.(OrientResult).Label
	}
	return labels
}

// LastSinkSteps extracts the convergence diagnostics.
func LastSinkSteps(outputs []any) []int {
	steps := make([]int, len(outputs))
	for v, o := range outputs {
		steps[v] = o.(OrientResult).LastSinkStep
	}
	return steps
}
