package sinkless_test

import (
	"math"
	"testing"

	"locality/internal/graph"
	"locality/internal/lcl"
	"locality/internal/mathx"
	"locality/internal/rng"
	"locality/internal/sim"
	"locality/internal/sinkless"
)

// instance builds a Δ-regular edge-colored instance and its sim inputs.
func instance(t *testing.T, half, d int, seed uint64) (lcl.Instance, []any) {
	t.Helper()
	ecg := graph.RandomRegularBipartite(half, d, rng.New(seed))
	inst := lcl.Instance{G: ecg.Graph, EdgeColors: ecg.Colors, NumEdgeColors: d}
	return inst, inst.NodeInputs()
}

func TestOrientationProducesSinklessOrientation(t *testing.T) {
	for _, tc := range []struct{ half, d int }{{16, 3}, {32, 4}, {64, 5}} {
		inst, inputs := instance(t, tc.half, tc.d, uint64(tc.half))
		res, err := sim.Run(inst.G, sim.Config{Randomized: true, Seed: 7, Inputs: inputs},
			sinkless.NewOrientFactory(sinkless.OrientOptions{}))
		if err != nil {
			t.Fatalf("half=%d d=%d: %v", tc.half, tc.d, err)
		}
		labels := sinkless.OrientLabels(res.Outputs)
		if err := lcl.ValidateOrientation(inst, labels); err != nil {
			t.Fatalf("half=%d d=%d: %v", tc.half, tc.d, err)
		}
	}
}

func TestOrientationConvergesQuickly(t *testing.T) {
	// Sink-fixing should finish far inside its budget: the last sink step
	// should be O(log n)-ish, not the full 16 log n + 32.
	inst, inputs := instance(t, 128, 3, 5)
	res, err := sim.Run(inst.G, sim.Config{Randomized: true, Seed: 11, Inputs: inputs},
		sinkless.NewOrientFactory(sinkless.OrientOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	worst := 0
	for _, s := range sinkless.LastSinkSteps(res.Outputs) {
		if s > worst {
			worst = s
		}
	}
	budget := 16*mathx.CeilLog2(inst.G.N()+1) + 32
	if worst >= budget {
		t.Errorf("sinks survived to the budget boundary: last=%d budget=%d", worst, budget)
	}
	t.Logf("n=%d: last sink at step %d (budget %d)", inst.G.N(), worst, budget)
}

func TestColoringFromOrientation(t *testing.T) {
	// Lemma 2 direction: a consistent sinkless orientation yields a valid
	// sinkless coloring with zero extra rounds.
	inst, inputs := instance(t, 32, 3, 9)
	inner := sinkless.NewOrientFactory(sinkless.OrientOptions{})
	res, err := sim.Run(inst.G, sim.Config{Randomized: true, Seed: 13, Inputs: inputs},
		sinkless.NewColoringFromOrientationFactory(inner))
	if err != nil {
		t.Fatal(err)
	}
	colors := sim.IntOutputs(res)
	if err := lcl.SinklessColoring(3).Validate(inst, lcl.IntLabels(colors)); err != nil {
		t.Fatal(err)
	}
	// Round cost identical to the inner machine (zero extra rounds).
	innerRes, err := sim.Run(inst.G, sim.Config{Randomized: true, Seed: 13, Inputs: inputs}, inner)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != innerRes.Rounds {
		t.Errorf("transform cost %d rounds, inner %d (Lemma 2 predicts t-1 <= cost <= t)", res.Rounds, innerRes.Rounds)
	}
}

func TestOrientationFromColoring(t *testing.T) {
	// Lemma 1 direction: a valid sinkless coloring yields a valid sinkless
	// orientation. Build the coloring by composing the orientation
	// machine with the Lemma 2 transform, then re-derive an orientation.
	inst, inputs := instance(t, 32, 4, 17)
	coloring := sinkless.NewColoringFromOrientationFactory(
		sinkless.NewOrientFactory(sinkless.OrientOptions{}))
	res, err := sim.Run(inst.G, sim.Config{Randomized: true, Seed: 19, Inputs: inputs},
		sinkless.NewOrientFromColoringFactory(coloring))
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]lcl.OrientationLabel, len(res.Outputs))
	for v, o := range res.Outputs {
		labels[v] = o.(lcl.OrientationLabel)
	}
	if err := lcl.ValidateOrientation(inst, labels); err != nil {
		t.Fatal(err)
	}
}

func TestZeroRoundWorstEdgeFailure(t *testing.T) {
	if got := sinkless.ZeroRoundWorstEdgeFailure(sinkless.Uniform(4)); math.Abs(got-1.0/16) > 1e-12 {
		t.Errorf("uniform worst-edge failure = %v, want 1/16", got)
	}
	skew := []float64{0.7, 0.1, 0.1, 0.1}
	if got := sinkless.ZeroRoundWorstEdgeFailure(skew); math.Abs(got-0.49) > 1e-12 {
		t.Errorf("skewed worst-edge failure = %v, want 0.49", got)
	}
}

func TestZeroRoundMinimaxUniformOptimal(t *testing.T) {
	for _, delta := range []int{3, 4, 5} {
		grid := delta * 4
		val, p := sinkless.ZeroRoundMinimax(delta, grid)
		want := sinkless.ZeroRoundLowerBound(delta)
		if math.Abs(val-want) > 1e-9 {
			t.Errorf("Δ=%d: minimax value %v, want exactly 1/Δ² = %v", delta, val, want)
		}
		for _, pi := range p {
			if math.Abs(pi-1/float64(delta)) > 1e-9 {
				t.Errorf("Δ=%d: best distribution not uniform: %v", delta, p)
			}
		}
	}
}

func TestZeroRoundMachineFailureRate(t *testing.T) {
	// The 0-round uniform strategy must fail per-edge at rate about 1/Δ²
	// and always within a factor of the bound across trials.
	const d = 3
	inst, inputs := instance(t, 16, d, 23)
	edges := inst.G.Edges()
	trials := 400
	violations := 0
	for i := 0; i < trials; i++ {
		res, err := sim.Run(inst.G, sim.Config{Randomized: true, Seed: uint64(i), Inputs: inputs},
			sinkless.NewZeroRoundFactory(sinkless.Uniform(d)))
		if err != nil {
			t.Fatal(err)
		}
		if res.Rounds != 0 {
			t.Fatalf("0-round machine used %d rounds", res.Rounds)
		}
		colors := sim.IntOutputs(res)
		for e, uv := range edges {
			if colors[uv[0]] == inst.EdgeColors[e] && colors[uv[1]] == inst.EdgeColors[e] {
				violations++
			}
		}
	}
	rate := float64(violations) / float64(trials*len(edges))
	want := sinkless.ZeroRoundLowerBound(d) // 1/9
	if rate < want/2 || rate > want*2 {
		t.Errorf("per-edge forbidden rate %v, want about %v", rate, want)
	}
}

func TestVertexColorsRejectsBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("VertexColors accepted a non-VertexInput")
		}
	}()
	sinkless.VertexColors(sim.Env{Input: 42, Degree: 3})
}
