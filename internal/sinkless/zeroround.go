package sinkless

import (
	"fmt"

	"locality/internal/sim"
)

// This file makes the base case of Theorem 4 executable and exactly
// checkable. A 0-round RandLOCAL algorithm on a Δ-regular edge-colored
// graph colors each vertex independently: since the vertices are
// undifferentiated (no IDs; every vertex sees the same multiset of incident
// edge colors {1..Δ}), the strategy is a distribution p over {1..Δ} — up to
// the port order of the edge colors, which an adversarial instance
// neutralizes. For an edge e with ψ(e)=c, the forbidden configuration
// probability is p(c)² under a port-symmetric strategy, so the worst edge
// fails with probability max_c p(c)² >= 1/Δ², with equality exactly at the
// uniform distribution. That 1/Δ² is the floor the round-elimination
// argument of Theorem 4 bottoms out against.

// ZeroRoundWorstEdgeFailure returns max_c p(c)²: the failure probability of
// the worst-case edge under the vertex strategy p (p must sum to ~1).
func ZeroRoundWorstEdgeFailure(p []float64) float64 {
	var sum, worst float64
	for _, x := range p {
		if x < 0 {
			panic("sinkless: negative probability")
		}
		sum += x
		if x*x > worst {
			worst = x * x
		}
	}
	if sum < 0.999 || sum > 1.001 {
		panic(fmt.Sprintf("sinkless: probabilities sum to %v", sum))
	}
	return worst
}

// ZeroRoundLowerBound returns the Theorem 4 floor 1/Δ².
func ZeroRoundLowerBound(delta int) float64 {
	return 1 / float64(delta*delta)
}

// ZeroRoundMinimax grid-searches distributions over {1..Δ} (step 1/grid)
// and returns the smallest achievable worst-edge failure probability and
// the best distribution found. The optimum is the uniform distribution
// with value exactly 1/Δ²; the experiment table shows the search agreeing.
func ZeroRoundMinimax(delta, grid int) (float64, []float64) {
	if delta < 1 || grid < delta {
		panic(fmt.Sprintf("sinkless: ZeroRoundMinimax(delta=%d, grid=%d) invalid", delta, grid))
	}
	best := 2.0
	var bestP []float64
	// Enumerate compositions of grid into delta non-negative parts.
	comp := make([]int, delta)
	var rec func(idx, remaining int)
	rec = func(idx, remaining int) {
		if idx == delta-1 {
			comp[idx] = remaining
			worst := 0
			for _, c := range comp {
				if c > worst {
					worst = c
				}
			}
			val := float64(worst) * float64(worst) / (float64(grid) * float64(grid))
			if val < best {
				best = val
				bestP = make([]float64, delta)
				for i, c := range comp {
					bestP[i] = float64(c) / float64(grid)
				}
			}
			return
		}
		for c := remaining; c >= 0; c-- {
			comp[idx] = c
			rec(idx+1, remaining-c)
			// Prune: max component so far already >= best.
		}
	}
	rec(0, grid)
	return best, bestP
}

// NewZeroRoundFactory returns the 0-round sinkless-coloring machine that
// plays the distribution p (1-indexed colors; p[i] is the probability of
// color i+1). With the uniform p this is the optimal 0-round strategy;
// experiment E4 measures its failure frequency against 1/Δ².
func NewZeroRoundFactory(p []float64) sim.Factory {
	return func() sim.Machine {
		return &zeroRound{p: p}
	}
}

type zeroRound struct {
	p     []float64
	color int
}

var _ sim.Machine = (*zeroRound)(nil)

func (m *zeroRound) Init(env sim.Env) {
	if env.Rand == nil {
		panic("sinkless: 0-round machine requires Config.Randomized")
	}
	x := env.Rand.Float64()
	acc := 0.0
	m.color = len(m.p) // fallback for floating-point tail
	for i, pi := range m.p {
		acc += pi
		if x < acc {
			m.color = i + 1
			break
		}
	}
}

func (m *zeroRound) Step(step int, recv []sim.Message) ([]sim.Message, bool) {
	return nil, true // zero rounds: output is a function of Env alone
}

func (m *zeroRound) Output() any { return m.color }

// Uniform returns the uniform distribution over {1..Δ}.
func Uniform(delta int) []float64 {
	p := make([]float64, delta)
	for i := range p {
		p[i] = 1 / float64(delta)
	}
	return p
}
