package sinkless

import (
	"fmt"

	"locality/internal/lcl"
	"locality/internal/sim"
)

// This file implements the constructive directions of Lemmas 1 and 2 as
// machine transformers, plus a direct sinkless-coloring algorithm obtained
// by composing them with the randomized orientation machine.
//
// Lemma 1 direction (coloring -> orientation): a vertex with color c
// orients its unique ψ=c incident edge outward (a proper Δ-edge coloring of
// a Δ-regular graph shows every color at every vertex, so the edge exists
// and out-degree >= 1 everywhere). The remaining edges are oriented by
// comparing endpoint colors, with random bits breaking exact ties. An edge
// is claimed by both endpoints iff both endpoints have the edge's color —
// precisely the sinkless-coloring forbidden configuration, which is the
// failure correspondence in the lemma.
//
// Lemma 2 direction (orientation -> coloring): a vertex adopts the edge
// color of one outgoing edge. color(u) = color(v) = ψ(e) would need both
// endpoints to have picked e outgoing — impossible in a consistent
// orientation — so the derived coloring fails only at sinks (which have no
// outgoing edge and fall back to the color of port 0), again the lemma's
// failure correspondence.

// orientFromColoring wraps an inner sinkless-coloring machine.
type orientFromColoring struct {
	inner     sim.Machine
	env       sim.Env
	colors    []int
	innerDone bool
	color     int
	tie       uint64
	nbrColor  []int
	nbrTie    []uint64
	nbrKnown  []bool
	announced bool
}

var _ sim.Machine = (*orientFromColoring)(nil)

// wrapped distinguishes inner-machine traffic from the transform's own
// final exchange.
type wrapped struct {
	Inner sim.Message
	Final bool
	Color int
	Tie   uint64
}

// NewOrientFromColoringFactory derives a Δ-sinkless-orientation machine
// from a Δ-sinkless-coloring machine (the executable core of Lemma 1).
// The inner machine must output an int color.
func NewOrientFromColoringFactory(inner sim.Factory) sim.Factory {
	return func() sim.Machine { return &orientFromColoring{inner: inner()} }
}

func (m *orientFromColoring) Init(env sim.Env) {
	m.env = env
	m.colors = VertexColors(env)
	m.inner.Init(env)
	if env.Rand == nil {
		panic("sinkless: the Lemma 1 transform needs random tie-break bits")
	}
	m.tie = env.Rand.Uint64()
	m.nbrColor = make([]int, env.Degree)
	m.nbrTie = make([]uint64, env.Degree)
	m.nbrKnown = make([]bool, env.Degree)
}

func (m *orientFromColoring) Step(step int, recv []sim.Message) ([]sim.Message, bool) {
	// Split the traffic.
	innerRecv := make([]sim.Message, m.env.Degree)
	for p, msg := range recv {
		if msg == nil {
			continue
		}
		w, ok := msg.(wrapped)
		if !ok {
			panic(fmt.Sprintf("sinkless: unexpected message %T", msg))
		}
		if w.Final {
			m.nbrColor[p] = w.Color
			m.nbrTie[p] = w.Tie
			m.nbrKnown[p] = true
		} else {
			innerRecv[p] = w.Inner
		}
	}
	if !m.innerDone {
		send, done := m.inner.Step(step, innerRecv)
		if done {
			m.innerDone = true
			c, ok := m.inner.Output().(int)
			if !ok {
				panic(fmt.Sprintf("sinkless: inner coloring output is %T, want int", m.inner.Output()))
			}
			m.color = c
			// Fall through to announce the final color this step.
		} else {
			out := make([]sim.Message, m.env.Degree)
			for p := range out {
				if p < len(send) && send[p] != nil {
					out[p] = wrapped{Inner: send[p]}
				}
			}
			return out, false
		}
	}
	if !m.announced {
		m.announced = true
		return sim.Broadcast(m.env.Degree, wrapped{Final: true, Color: m.color, Tie: m.tie}), false
	}
	// Done once all neighbors' final colors are in.
	for p := 0; p < m.env.Degree; p++ {
		if !m.nbrKnown[p] {
			return nil, false
		}
	}
	return nil, true
}

// Output derives the orientation from the exchanged colors.
func (m *orientFromColoring) Output() any {
	out := make([]bool, m.env.Degree)
	for p := 0; p < m.env.Degree; p++ {
		psi := m.colors[p]
		mine := m.color == psi
		theirs := m.nbrColor[p] == psi
		switch {
		case mine && !theirs:
			out[p] = true
		case theirs && !mine:
			out[p] = false
		case mine && theirs:
			// Forbidden monochromatic configuration: both endpoints claim;
			// both report "out", which the verifier flags — the Lemma 1
			// failure correspondence.
			out[p] = true
		default:
			// Neither endpoint owns the color: orient by color comparison,
			// random bits breaking ties (a tie of both colors and both
			// 64-bit draws makes both report "in" and the verifier flags
			// the edge).
			if m.color != m.nbrColor[p] {
				out[p] = m.color > m.nbrColor[p]
			} else {
				out[p] = m.tie > m.nbrTie[p]
			}
		}
	}
	return lcl.OrientationLabel{Out: out}
}

// coloringFromOrientation wraps an inner sinkless-orientation machine
// (the executable core of Lemma 2). Zero extra rounds: the color is a
// function of the inner output and the input edge colors.
type coloringFromOrientation struct {
	inner  sim.Machine
	env    sim.Env
	colors []int
}

var _ sim.Machine = (*coloringFromOrientation)(nil)

// NewColoringFromOrientationFactory derives a Δ-sinkless-coloring machine
// from a Δ-sinkless-orientation machine. The inner machine must output
// OrientResult or lcl.OrientationLabel.
func NewColoringFromOrientationFactory(inner sim.Factory) sim.Factory {
	return func() sim.Machine { return &coloringFromOrientation{inner: inner()} }
}

func (m *coloringFromOrientation) Init(env sim.Env) {
	m.env = env
	m.colors = VertexColors(env)
	m.inner.Init(env)
}

func (m *coloringFromOrientation) Step(step int, recv []sim.Message) ([]sim.Message, bool) {
	return m.inner.Step(step, recv)
}

func (m *coloringFromOrientation) Output() any {
	var label lcl.OrientationLabel
	switch o := m.inner.Output().(type) {
	case OrientResult:
		label = o.Label
	case lcl.OrientationLabel:
		label = o
	default:
		panic(fmt.Sprintf("sinkless: inner orientation output is %T", o))
	}
	for p, isOut := range label.Out {
		if isOut {
			return m.colors[p]
		}
	}
	// Sink: no outgoing edge. Fall back to the first port's color; the
	// verifier may flag the resulting configuration — the Lemma 2 failure
	// correspondence.
	if m.env.Degree > 0 {
		return m.colors[0]
	}
	return 1
}
