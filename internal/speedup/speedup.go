// Package speedup implements the paper's black-box transformations between
// algorithms — the machinery of Theorems 5, 6 and 8:
//
//   - the generic "relabel and re-run" combinator: collect a radius-R
//     view, locally compute a short identifier that is unique within the
//     distance the inner algorithm can see, then run the inner algorithm
//     pretending the graph has 2^ℓ' vertices (Theorems 6/8, where the
//     short IDs come from simulating Linial's coloring on a power graph);
//   - the Theorem 5 construction: a DetLOCAL algorithm becomes RandLOCAL
//     by drawing random b-bit identifiers, compressing them to an
//     O(poly n) palette with one Linial step on the power graph G^{2t+1},
//     and simulating the deterministic algorithm with the compressed IDs —
//     failing only if the random identifiers collide within the horizon
//     (probability < n²/2^b, measured by experiment E5).
//
// The power-graph Linial simulation runs inside collected balls with a
// shrinking exactness zone (values at distance d are trusted for iteration
// i only if d + D·i <= R), so the center's identifier is exactly what a
// real execution on G^D would produce.
package speedup

import (
	"fmt"

	"locality/internal/linial"
	"locality/internal/mathx"
	"locality/internal/sim"
	"locality/internal/view"
)

// Relabeled is the output of a relabeling rule: the identifier and the
// pretended graph size handed to the inner algorithm.
type Relabeled struct {
	ID uint64
	N  int
}

// Options configures the generic relabel-and-re-run combinator.
type Options struct {
	// Radius is the view-collection radius R.
	Radius int
	// NameOf yields the name used to stitch views; nil means Env.ID
	// (DetLOCAL). The Theorem 5 construction draws random names.
	NameOf func(env sim.Env) uint64
	// Relabel computes the new identifier from the collected ball.
	Relabel func(ball *view.Ball, env sim.Env) Relabeled
	// Inner is the algorithm to re-run under the new identifiers.
	Inner sim.Factory
}

type relabelMachine struct {
	opt   Options
	env   sim.Env
	name  uint64
	coll  *view.Collector
	inner sim.Machine
}

var _ sim.Machine = (*relabelMachine)(nil)

// NewFactory returns the combinator machine. Its output is the inner
// machine's output; its round count is Radius + (inner rounds).
func NewFactory(opt Options) sim.Factory {
	if opt.Radius < 1 || opt.Relabel == nil || opt.Inner == nil {
		panic("speedup: Options requires Radius >= 1, Relabel and Inner")
	}
	return func() sim.Machine { return &relabelMachine{opt: opt} }
}

func (m *relabelMachine) Init(env sim.Env) {
	m.env = env
	if m.opt.NameOf != nil {
		m.name = m.opt.NameOf(env)
	} else {
		if !env.HasID {
			panic("speedup: no IDs and no NameOf hook")
		}
		m.name = env.ID
	}
	m.coll = view.NewCollector(m.opt.Radius, m.name, env)
}

func (m *relabelMachine) Step(step int, recv []sim.Message) ([]sim.Message, bool) {
	collSteps := m.opt.Radius + 1
	if step <= collSteps {
		send, done := m.coll.Step(step, recv)
		if !done {
			return send, false
		}
		// Collection complete: relabel and boot the inner machine. Its
		// first step runs NOW (the collector's final step absorbs but does
		// not send, so the channel is clean and the relabeling is free
		// local computation) — total rounds are exactly Radius + inner.
		rl := m.opt.Relabel(m.coll.Ball(), m.env)
		innerEnv := m.env
		innerEnv.ID = rl.ID
		innerEnv.HasID = true
		innerEnv.N = rl.N
		m.inner = m.opt.Inner()
		m.inner.Init(innerEnv)
		send, idone := m.inner.Step(1, make([]sim.Message, m.env.Degree))
		return send, idone
	}
	send, done := m.inner.Step(step-collSteps+1, recv)
	return send, done
}

func (m *relabelMachine) Output() any {
	if m.inner == nil {
		return nil
	}
	return m.inner.Output()
}

// PowerLinialID simulates Theorem 2 (iterated Linial) on the power graph
// G^d inside a collected ball and returns the center's final color
// (0-based) plus the fixed-point palette size. idSpace bounds the names;
// deltaPow bounds the power-graph degree. Exactness requires the ball
// radius to be at least d·len(Schedule(idSpace, deltaPow)).
func PowerLinialID(b *view.Ball, d, idSpace, deltaPow int) (int, int) {
	sched := linial.Schedule(idSpace, deltaPow)
	if b.T < d*len(sched) {
		panic(fmt.Sprintf("speedup: ball radius %d < %d needed for %d power-Linial iterations",
			b.T, d*len(sched), len(sched)))
	}
	fp := linial.FixedPoint(idSpace, deltaPow)
	n := b.N()
	colors := make([]int, n)
	for u := 0; u < n; u++ {
		colors[u] = int(b.Recs[u].Name) - 1
		if colors[u] < 0 || colors[u] >= idSpace {
			panic(fmt.Sprintf("speedup: name %d outside 1..%d", b.Recs[u].Name, idSpace))
		}
	}
	// Power-graph neighborhoods within the ball.
	powNbrs := powerNeighbors(b, d)
	for i, fam := range sched {
		// Exactness cone: after pass i (0-based), value(u) is exact iff
		// dist(u) + d·(i+1) <= T. Computing only inside the cone also
		// guarantees every input read is itself exact (inputs live one
		// cone-level higher).
		zone := b.T - d*(i+1)
		next := make([]int, n)
		copy(next, colors)
		for u := 0; u < n; u++ {
			if b.Dist[u] > zone {
				continue
			}
			nbrs := make([]int, 0, len(powNbrs[u]))
			for _, w := range powNbrs[u] {
				nbrs = append(nbrs, colors[w])
			}
			next[u] = fam.Reduce(colors[u], nbrs)
		}
		colors = next
	}
	return colors[0], fp
}

// powerNeighbors returns, for each ball vertex, the other ball vertices at
// ball-distance in [1, d]. Ball adjacency is available only where wiring is
// known, which covers everything the exactness zone ever reads.
func powerNeighbors(b *view.Ball, d int) [][]int {
	n := b.N()
	adj := make([][]int, n)
	for u := 0; u < n; u++ {
		adj[u] = ballNeighbors(b, u)
	}
	out := make([][]int, n)
	dist := make([]int, n)
	for src := 0; src < n; src++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			if dist[u] == d {
				continue
			}
			for _, w := range adj[u] {
				if dist[w] < 0 {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
					out[src] = append(out[src], w)
				}
			}
		}
	}
	return out
}

// ballNeighbors lists u's known ball-internal neighbors.
func ballNeighbors(b *view.Ball, u int) []int {
	rec := b.Recs[u]
	if rec.Ports == nil {
		// Bare boundary vertex: wiring known only from the inside; collect
		// from enriched records pointing at u.
		var nbrs []int
		for w := 0; w < b.N(); w++ {
			wrec := b.Recs[w]
			if wrec.Ports == nil {
				continue
			}
			for _, pl := range wrec.Ports {
				if int(pl.Name) >= 0 && b.LocalIndex(pl.Name) == u {
					nbrs = append(nbrs, w)
					break
				}
			}
		}
		return nbrs
	}
	var nbrs []int
	for _, pl := range rec.Ports {
		if w := b.LocalIndex(pl.Name); w >= 0 {
			nbrs = append(nbrs, w)
		}
	}
	return nbrs
}

// Theorem6Plan resolves the circular dependency between the collection
// radius and the inner runtime: D must cover twice the inner algorithm's
// runtime under ℓ'-bit IDs (plus the checking radius r), while ℓ' is the
// bit length of the power-Linial palette for radius D. Runtime is the
// caller-supplied bound T(Δ, ℓ) of the inner algorithm.
type Theorem6Plan struct {
	D        int // locality horizon: short IDs unique within distance D
	R        int // collection radius: D · len(power-Linial schedule)
	BitsOut  int // ℓ'
	DeltaPow int // degree bound of G^D
	FakeN    int // 2^ℓ'
	InnerT   int // inner runtime bound under ℓ'-bit IDs
}

// NewTheorem6Plan iterates the fixed point D = 2·(T(Δ, ℓ'(D)) + r): the
// short IDs must be unique within twice the inner horizon (runtime plus
// checking radius), while the ID length ℓ' itself depends on D through the
// power-graph palette. A larger D only strengthens uniqueness, so the
// iteration accepts as soon as the required horizon stops growing. It
// panics if the iteration diverges — exactly the regime where the
// theorem's premise (ε small enough) is violated.
func NewTheorem6Plan(tBound func(delta, bits int) int, delta, idBits, checkRadius int) Theorem6Plan {
	idSpace := 1 << idBits
	d := 2
	for iter := 0; iter < 64; iter++ {
		deltaPow := powDegree(delta, d)
		fp := linial.FixedPoint(idSpace, deltaPow)
		bits := mathx.CeilLog2(fp)
		if bits < 1 {
			bits = 1
		}
		t := tBound(delta, bits)
		next := 2 * (t + checkRadius)
		if next < 1 {
			next = 1
		}
		if next <= d {
			sched := linial.Schedule(idSpace, deltaPow)
			return Theorem6Plan{
				D: d, R: mathx.Max(1, d*len(sched)), BitsOut: bits,
				DeltaPow: deltaPow, FakeN: 1 << bits, InnerT: t,
			}
		}
		d = next
	}
	panic("speedup: Theorem 6 plan iteration diverged (inner runtime grows too fast in ID length)")
}

// Theorem5Palette returns the compressed-ID palette size of the Theorem 5
// construction; the inner deterministic algorithm should be configured
// with this as its ID space.
func Theorem5Palette(nameBits, n int) int {
	return linial.NewFamily(1<<nameBits, mathx.Max(1, n-1)).PaletteSize()
}

// powDegree bounds the degree of G^d: Δ·(Δ-1)^(d-1), saturating.
func powDegree(delta, d int) int {
	if delta <= 1 {
		return delta
	}
	deg := delta
	for i := 1; i < d; i++ {
		if deg > 1<<20 {
			return 1 << 20
		}
		deg *= delta - 1
	}
	return deg
}

// NewTheorem6Factory assembles the full transform: collect radius R, run
// power-Linial to get locally-unique short IDs, and re-run the inner
// algorithm under (ID', 2^ℓ').
func NewTheorem6Factory(plan Theorem6Plan, idBits int, inner sim.Factory) sim.Factory {
	idSpace := 1 << idBits
	return NewFactory(Options{
		Radius: plan.R,
		Relabel: func(ball *view.Ball, env sim.Env) Relabeled {
			color, _ := PowerLinialID(ball, plan.D, idSpace, plan.DeltaPow)
			return Relabeled{ID: uint64(color) + 1, N: plan.FakeN}
		},
		Inner: inner,
	})
}

// NewTheorem5Factory builds the Rand-from-Det construction: draw random
// nameBits-bit identifiers, compress them with one Linial (Theorem 1) step
// on G^{2t+1} — t is the deterministic algorithm's runtime bound on this
// instance — and simulate the deterministic algorithm with the compressed
// IDs and the TRUE n. Failure requires two random identifiers to collide
// within the horizon: probability < n²/2^nameBits.
func NewTheorem5Factory(t, nameBits, n, maxDeg int, inner sim.Factory) sim.Factory {
	radius := 2*t + 1
	// One Theorem 1 step on the power graph: the family tolerates up to
	// n-1 constraining neighbors (the paper's bound Δ' < n).
	fam := linial.NewFamily(1<<nameBits, mathx.Max(1, n-1))
	return NewFactory(Options{
		Radius: radius,
		NameOf: func(env sim.Env) uint64 {
			if env.Rand == nil {
				panic("speedup: Theorem 5 construction is RandLOCAL; Config.Randomized required")
			}
			return env.Rand.Uint64()%(1<<nameBits) + 1
		},
		Relabel: func(ball *view.Ball, env sim.Env) Relabeled {
			own := int(ball.Recs[0].Name) - 1
			nbrs := make([]int, 0, ball.N()-1)
			collision := false
			for u := 1; u < ball.N(); u++ {
				c := int(ball.Recs[u].Name) - 1
				if c == own {
					collision = true
					continue
				}
				nbrs = append(nbrs, c)
			}
			if collision {
				// A collided pair yields equal compressed IDs; the inner
				// deterministic algorithm then behaves as if IDs repeat
				// and its failure is caught by the verifier — precisely
				// the 1/poly(n) failure mode of Theorem 5.
				return Relabeled{ID: uint64(own) + 1, N: n}
			}
			return Relabeled{ID: uint64(fam.Reduce(own, nbrs)) + 1, N: n}
		},
		Inner: inner,
	})
}

// NewSlowColoringFactory returns the demonstration target of Theorem 6: a
// correct (Δ+1)-coloring algorithm whose round count deliberately carries
// an ℓ-dependent term. It colors via Linial+KW (palette 2^idBits derived
// from the IDs) and then idles for ceil(eps·ℓ/log2(Δ)) rounds, modeling
// the generic f(Δ) + ε·log_Δ n running time the theorem speeds up. The
// transform is oblivious to the idling being artificial; what it cuts is
// real measured rounds.
func NewSlowColoringFactory(delta int, epsNum, epsDen int) func(idBits int) sim.Factory {
	return func(idBits int) sim.Factory {
		lopt := linial.Options{
			InitialPalette: 1 << idBits,
			Delta:          delta,
			Target:         delta + 1,
			KW:             true,
		}
		colorRounds := linial.Rounds(lopt)
		idle := idleRounds(delta, idBits, epsNum, epsDen)
		return func() sim.Machine {
			return &slowColoring{
				inner:      linial.NewFactory(lopt)(),
				innerSteps: colorRounds + 1,
				idle:       idle,
			}
		}
	}
}

// SlowColoringRounds is the runtime bound T(Δ, ℓ) of the slow coloring.
func SlowColoringRounds(delta int, epsNum, epsDen int) func(delta2, bits int) int {
	return func(_, bits int) int {
		lopt := linial.Options{
			InitialPalette: 1 << bits,
			Delta:          delta,
			Target:         delta + 1,
			KW:             true,
		}
		return linial.Rounds(lopt) + idleRounds(delta, bits, epsNum, epsDen)
	}
}

func idleRounds(delta, bits, epsNum, epsDen int) int {
	log2d := mathx.Max(1, mathx.FloorLog2(delta))
	return (epsNum*bits + epsDen*log2d - 1) / (epsDen * log2d)
}

type slowColoring struct {
	inner      sim.Machine
	innerSteps int
	idle       int
	out        any
}

var _ sim.Machine = (*slowColoring)(nil)

func (m *slowColoring) Init(env sim.Env) { m.inner.Init(env) }

func (m *slowColoring) Step(step int, recv []sim.Message) ([]sim.Message, bool) {
	if step <= m.innerSteps {
		send, done := m.inner.Step(step, recv)
		if done {
			m.out = m.inner.Output()
		}
		if step == m.innerSteps && m.idle == 0 {
			return send, true
		}
		return send, false
	}
	// ℓ-dependent idle tail.
	if step >= m.innerSteps+m.idle {
		return nil, true
	}
	return nil, false
}

func (m *slowColoring) Output() any { return m.out }
