package speedup_test

import (
	"testing"

	"locality/internal/forest"
	"locality/internal/graph"
	"locality/internal/ids"
	"locality/internal/lcl"
	"locality/internal/linial"
	"locality/internal/mathx"
	"locality/internal/rng"
	"locality/internal/sim"
	"locality/internal/speedup"
	"locality/internal/view"
)

func TestSlowColoringBaseline(t *testing.T) {
	// The demonstration target: correct (Δ+1)-coloring whose rounds carry
	// an ℓ-dependent idle term.
	r := rng.New(3)
	delta := 4
	mk := speedup.NewSlowColoringFactory(delta, 1, 8) // ε = 1/8
	tBound := speedup.SlowColoringRounds(delta, 1, 8)
	for _, n := range []int{64, 1024} {
		g := graph.RandomTree(n, delta, r)
		bits := mathx.CeilLog2(n + 1)
		res, err := sim.Run(g, sim.Config{IDs: ids.Shuffled(n, r), MaxRounds: 100000}, mk(bits))
		if err != nil {
			t.Fatal(err)
		}
		colors := sim.IntOutputs(res)
		if err := lcl.Coloring(delta+1).Validate(lcl.Instance{G: g}, lcl.IntLabels(colors)); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Rounds != tBound(delta, bits) {
			t.Errorf("n=%d: rounds %d, bound %d", n, res.Rounds, tBound(delta, bits))
		}
	}
}

func TestTheorem6TransformCorrectAndIDIndependent(t *testing.T) {
	// The transformed algorithm must still produce a valid (Δ+1)-coloring,
	// with a round count that is a function of Δ alone (plus the log*-ish
	// collection), NOT of the original ID length.
	r := rng.New(7)
	delta := 4
	mk := speedup.NewSlowColoringFactory(delta, 1, 8)
	tBound := speedup.SlowColoringRounds(delta, 1, 8)

	var transformedRounds []int
	for _, n := range []int{64, 512} {
		g := graph.RandomTree(n, delta, r)
		bits := mathx.CeilLog2(n + 1)
		plan := speedup.NewTheorem6Plan(tBound, delta, bits, 1)
		factory := speedup.NewTheorem6Factory(plan, bits, mk(plan.BitsOut))
		res, err := sim.Run(g, sim.Config{IDs: ids.Shuffled(n, r), MaxRounds: 100000}, factory)
		if err != nil {
			t.Fatal(err)
		}
		colors := sim.IntOutputs(res)
		if err := lcl.Coloring(delta+1).Validate(lcl.Instance{G: g}, lcl.IntLabels(colors)); err != nil {
			t.Fatalf("n=%d: transformed coloring invalid: %v", n, err)
		}
		transformedRounds = append(transformedRounds, res.Rounds)
		// Predicted: R (collection) + inner rounds under ℓ'-bit IDs.
		want := plan.R + plan.InnerT
		if res.Rounds != want {
			t.Errorf("n=%d: rounds %d, predicted %d", n, res.Rounds, want)
		}
		t.Logf("n=%d: slow=%d rounds, transformed=%d (R=%d, ℓ'=%d)",
			n, tBound(delta, bits), res.Rounds, plan.R, plan.BitsOut)
	}
	// n-independence of the transformed inner runtime: across the sweep,
	// the ℓ' (and hence inner) part must be identical; only the log*-ish
	// collection radius may differ, and barely.
	if mathx.Abs(transformedRounds[0]-transformedRounds[1]) > 10 {
		t.Errorf("transformed rounds vary too much with n: %v", transformedRounds)
	}
}

func TestTheorem6SlopeComparison(t *testing.T) {
	// The honest shape of Theorem 6 at simulable scales: the slow
	// algorithm's round count grows linearly in ℓ = log n while the
	// transformed algorithm's is ℓ-independent. (The absolute crossover
	// sits beyond 2^62-bit IDs for this inner algorithm — the transform's
	// constants are those of the paper's proof; EXPERIMENTS.md discusses
	// this.) Verify the slopes: slow strictly grows across ℓ, transformed
	// is exactly flat.
	delta := 4
	tBound := speedup.SlowColoringRounds(delta, 1, 2) // ε = 1/2
	var slowR, transR, bitsOut []int
	for _, bits := range []int{56, 58, 60, 62} {
		plan := speedup.NewTheorem6Plan(tBound, delta, bits, 1)
		slowR = append(slowR, tBound(delta, bits))
		transR = append(transR, plan.R+plan.InnerT)
		bitsOut = append(bitsOut, plan.BitsOut)
	}
	// Slow grows with ℓ.
	if !(slowR[0] < slowR[len(slowR)-1]) {
		t.Errorf("slow rounds not growing in ℓ: %v", slowR)
	}
	// The transform compresses the IDs (ℓ' < ℓ) in this regime...
	for i, b := range bitsOut {
		if b >= []int{56, 58, 60, 62}[i] {
			t.Errorf("no ID compression at ℓ=%d: ℓ'=%d", []int{56, 58, 60, 62}[i], b)
		}
	}
	// ...and ℓ' (hence the transformed round count) is flat across ℓ —
	// the n-independence that makes the transform win for n beyond any
	// simulable scale (EXPERIMENTS.md quantifies the crossover).
	for i := 1; i < len(transR); i++ {
		if transR[i] != transR[0] {
			t.Errorf("transformed rounds not flat across ℓ: %v", transR)
		}
		if bitsOut[i] != bitsOut[0] {
			t.Errorf("ℓ' not flat across ℓ: %v", bitsOut)
		}
	}
	t.Logf("ℓ=56..62: slow=%v transformed=%v ℓ'=%v", slowR, transR, bitsOut)
}

func TestTheorem5RandFromDet(t *testing.T) {
	// A DetLOCAL tree 3-coloring becomes RandLOCAL: random 40-bit names,
	// one power-graph Linial step, then the deterministic forest machine
	// with compressed IDs. With 40-bit names collisions are negligible and
	// the output must be a valid 3-coloring.
	r := rng.New(11)
	n := 48
	g := graph.RandomTree(n, 3, r)
	palette := speedup.Theorem5Palette(40, n)
	fopt := forest.Options{Q: 3, SizeBound: n, IDSpace: palette}
	tDet := forest.NewPlan(fopt.Resolve(n)).Rounds()
	factory := speedup.NewTheorem5Factory(tDet, 40, n, g.MaxDegree(), forest.NewFactory(fopt))
	res, err := sim.Run(g, sim.Config{Randomized: true, Seed: 13, MaxRounds: 1 << 20}, factory)
	if err != nil {
		t.Fatal(err)
	}
	colors := sim.IntOutputs(res)
	if err := lcl.Coloring(3).Validate(lcl.Instance{G: g}, lcl.IntLabels(colors)); err != nil {
		t.Fatal(err)
	}
	// Round cost: (2t+1) collection + t simulation = O(t).
	want := (2*tDet + 1) + tDet
	if res.Rounds != want {
		t.Errorf("rounds %d, want %d", res.Rounds, want)
	}
}

func TestTheorem5CollisionsAreVisible(t *testing.T) {
	// With 2-bit names on 24 vertices collisions are certain; the run must
	// produce a verifier-detectable failure (or, with luck on tiny
	// components, still succeed) — never panic.
	r := rng.New(17)
	n := 24
	g := graph.RandomTree(n, 3, r)
	palette := speedup.Theorem5Palette(2, n)
	fopt := forest.Options{Q: 3, SizeBound: n, IDSpace: palette}
	tDet := forest.NewPlan(fopt.Resolve(n)).Rounds()
	factory := speedup.NewTheorem5Factory(tDet, 2, n, g.MaxDegree(), forest.NewFactory(fopt))
	fails := 0
	const trials = 5
	for i := 0; i < trials; i++ {
		res, err := sim.Run(g, sim.Config{Randomized: true, Seed: uint64(i), MaxRounds: 1 << 20}, factory)
		if err != nil {
			t.Fatal(err)
		}
		colors := sim.IntOutputs(res)
		if err := lcl.Coloring(3).Validate(lcl.Instance{G: g}, lcl.IntLabels(colors)); err != nil {
			fails++
		}
	}
	if fails == 0 {
		t.Error("2-bit names never failed on 24 vertices; collision path untested")
	}
}

func TestPowerLinialIDUniqueWithinD(t *testing.T) {
	// Collect generous balls and check the computed short IDs are distinct
	// within distance D for every vertex pair.
	r := rng.New(19)
	g := graph.RandomTree(40, 3, r)
	assignment := ids.Shuffled(40, r)
	const d = 3
	idSpace := 64
	deltaPow := 3 * 2 * 2 // Δ(Δ-1)^(D-1)
	radius := mathx.Max(1, d*len(linial.Schedule(idSpace, deltaPow)))
	res, err := sim.Run(g, sim.Config{IDs: assignment, MaxRounds: 100000},
		view.NewCollectMachineFactory(radius, nil))
	if err != nil {
		t.Fatal(err)
	}
	shortIDs := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		ball := res.Outputs[v].(*view.Ball)
		color, fp := speedup.PowerLinialID(ball, d, idSpace, deltaPow)
		if color < 0 || color >= fp {
			t.Fatalf("vertex %d short ID %d outside palette %d", v, color, fp)
		}
		shortIDs[v] = color
	}
	dist := allPairsDist(g)
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			if dist[u][v] <= d && dist[u][v] >= 1 && shortIDs[u] == shortIDs[v] {
				t.Fatalf("vertices %d,%d at distance %d share short ID %d", u, v, dist[u][v], shortIDs[u])
			}
		}
	}
}

func allPairsDist(g *graph.Graph) [][]int {
	out := make([][]int, g.N())
	for v := range out {
		out[v] = g.BFS(v)
	}
	return out
}
