// Package tenant is the multi-tenant admission layer's state: an
// API-key-keyed registry of per-tenant quotas (in-flight caps, queued caps,
// a submit-rate token bucket) with bounded-FIFO retention of auto-registered
// tenants, and a weighted round-robin fair queue so no tenant can starve the
// others out of the bounded submission queue.
//
// The package is deliberately pure, following the bounded-retention /
// no-goroutines-in-domain guardrails: it holds no locks, spawns no
// goroutines, and never reads the clock. Every method takes the current
// time as caller-supplied monotonic nanoseconds, and callers (the jobs pool
// holds its own mutex) serialize access externally. Given one sequence of
// (nanos, operation) calls the registry's decisions are a pure function of
// that sequence — which is what lets the load rig replay admission traffic
// deterministically and lets tests drive quota edges with a fake clock.
package tenant

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
)

// Header is the HTTP request header carrying a caller's API key. The
// daemon, the cluster coordinator (which forwards it to worker shards) and
// the load generator all agree on this name.
const Header = "X-API-Key"

// AnonymousID is the tenant ID assigned to requests without an API key.
// Unkeyed callers share one tenant — one quota pot — so anonymity is never
// a way around fairness.
const AnonymousID = "anonymous"

// Limits are one tenant's quotas. The zero value of each field means
// "unlimited" / "disabled", so the zero Limits admits everything — quotas
// are opt-in per deployment.
type Limits struct {
	// MaxInFlight caps jobs admitted and not yet terminal (queued plus
	// running). 0 = unlimited.
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// MaxQueued caps jobs waiting in the tenant's fair-share queue.
	// 0 = unlimited.
	MaxQueued int `json:"max_queued,omitempty"`
	// Rate is the submit token bucket's refill rate in tokens per second;
	// Burst is its capacity. Rate 0 disables rate limiting. Burst 0 with a
	// positive Rate defaults to ceil(Rate) (one second of refill).
	Rate  float64 `json:"rate,omitempty"`
	Burst int     `json:"burst,omitempty"`
	// MaxStreams caps concurrent event streams (SSE subscriptions).
	// 0 = unlimited.
	MaxStreams int `json:"max_streams,omitempty"`
	// Weight is the tenant's fair-share weight: a weight-w tenant may be
	// served up to w consecutive jobs per round-robin turn. 0 means 1.
	Weight int `json:"weight,omitempty"`
}

// weight returns the effective WRR weight.
func (l Limits) weight() int {
	if l.Weight <= 0 {
		return 1
	}
	return l.Weight
}

// burst returns the effective token bucket capacity.
func (l Limits) burst() int {
	if l.Burst > 0 {
		return l.Burst
	}
	if l.Rate > 0 {
		b := int(l.Rate)
		if float64(b) < l.Rate {
			b++
		}
		return b
	}
	return 0
}

// Pinned declares one statically configured tenant: a stable name (the
// metric label), its API key, and quota overrides. Pinned tenants are never
// evicted and get their own per-tenant metric series.
type Pinned struct {
	Name   string `json:"name"`
	Key    string `json:"key"`
	Limits Limits `json:"limits"`
}

// Config configures a Registry.
type Config struct {
	// Defaults are the quotas for auto-registered tenants (and for pinned
	// tenants whose Limits are zero in every field).
	Defaults Limits `json:"defaults"`
	// MaxTenants bounds the auto-registered tenant set (FIFO retention:
	// when full, the oldest idle auto tenant is evicted; if every auto
	// tenant is busy, registration is refused with ErrExhausted). Pinned
	// tenants do not count against the bound. 0 means DefaultMaxTenants.
	MaxTenants int `json:"max_tenants,omitempty"`
	// Pinned lists the statically configured tenants.
	Pinned []Pinned `json:"pinned,omitempty"`
}

// DefaultMaxTenants bounds auto-registered tenant retention when
// Config.MaxTenants is zero.
const DefaultMaxTenants = 256

// Sentinels. Every admission rejection classifies with errors.Is.
var (
	// ErrRateLimited rejects a submit that found the token bucket empty.
	ErrRateLimited = errors.New("tenant: submit rate limit exceeded")
	// ErrQueueFull rejects a submit at the tenant's queued-jobs cap.
	ErrQueueFull = errors.New("tenant: per-tenant queue full")
	// ErrInFlightLimit rejects a submit at the tenant's in-flight cap.
	ErrInFlightLimit = errors.New("tenant: in-flight job limit reached")
	// ErrStreamLimit rejects an event-stream subscription at the tenant's
	// concurrent-stream cap.
	ErrStreamLimit = errors.New("tenant: concurrent stream limit reached")
	// ErrExhausted rejects registration when the auto-tenant set is full of
	// busy tenants (bounded retention is a hard bound, not a hint).
	ErrExhausted = errors.New("tenant: tenant table exhausted")
)

// LimitError is a structured admission rejection: which tenant, which
// quota, the occupancy that tripped it, and how long the caller should wait
// before retrying (0 when the caller should derive its own estimate).
type LimitError struct {
	// Tenant is the rejected tenant's ID (never the raw API key).
	Tenant string
	// Reason is the sentinel explaining the rejection.
	Reason error
	// RetryAfterNanos suggests a wait before retrying: for rate limits it
	// is the deterministic time until the next token accrues.
	RetryAfterNanos int64
	// Used and Cap are the occupancy and bound of the tripped quota.
	Used, Cap int
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("tenant %s: %v (%d/%d)", e.Tenant, e.Reason, e.Used, e.Cap)
}

// Unwrap exposes the reason to errors.Is.
func (e *LimitError) Unwrap() error { return e.Reason }

// Tenant is one tenant's admission state. All fields are managed by the
// Registry; callers read the exported accessors only.
type Tenant struct {
	id     string
	key    string
	limits Limits
	pinned bool
	seq    int // registration order, the FIFO retention key

	tokens    float64
	lastNanos int64
	hasRefill bool // first refill initializes lastNanos instead of accruing
	queued    int
	running   int
	streams   int
	fifo      []any
}

// ID returns the tenant's stable identifier: the pinned name, or
// "t-<hash8>" for auto-registered keys (raw API keys never leave the
// registry — identifiers on metrics and logs are hashes, per the
// bounded-retention/no-raw-identifier discipline).
func (t *Tenant) ID() string { return t.id }

// Pinned reports whether the tenant was statically configured.
func (t *Tenant) Pinned() bool { return t.pinned }

// Limits returns the tenant's quotas.
func (t *Tenant) Limits() Limits { return t.limits }

// Queued returns the tenant's fair-queue occupancy.
func (t *Tenant) Queued() int { return t.queued }

// Running returns the tenant's running-job count.
func (t *Tenant) Running() int { return t.running }

// Streams returns the tenant's open event-stream count.
func (t *Tenant) Streams() int { return t.streams }

// idle reports whether the tenant holds no live state (evictable).
func (t *Tenant) idle() bool {
	return t.queued == 0 && t.running == 0 && t.streams == 0
}

// hashID derives the stable public identifier for an API key.
func hashID(key string) string {
	if key == "" {
		return AnonymousID
	}
	sum := sha256.Sum256([]byte(key))
	return "t-" + hex.EncodeToString(sum[:4])
}

// Registry is the tenant table plus the weighted round-robin fair queue.
// It is NOT safe for concurrent use: the owner (the jobs pool) serializes
// every call under its own mutex, and injects the clock as monotonic
// nanoseconds — the registry itself is pure.
type Registry struct {
	cfg     Config
	byKey   map[string]*Tenant
	ring    []*Tenant // round-robin order: pinned first, then autos by registration
	cursor  int       // ring index of the tenant currently being served
	burst   int       // consecutive serves to ring[cursor] this turn
	queued  int       // total queued across tenants
	nextSeq int
	autos   int // auto-registered tenant count (retention bound)
}

// NewRegistry builds the registry with its pinned tenants installed.
func NewRegistry(cfg Config) *Registry {
	r := &Registry{cfg: cfg, byKey: make(map[string]*Tenant)}
	for _, p := range cfg.Pinned {
		limits := p.Limits
		if limits == (Limits{}) {
			limits = cfg.Defaults
		}
		t := &Tenant{id: p.Name, key: p.Key, limits: limits, pinned: true, seq: r.nextSeq}
		r.nextSeq++
		r.byKey[p.Key] = t
		r.ring = append(r.ring, t)
	}
	return r
}

// maxTenants returns the effective auto-tenant retention bound.
func (r *Registry) maxTenants() int {
	if r.cfg.MaxTenants > 0 {
		return r.cfg.MaxTenants
	}
	return DefaultMaxTenants
}

// Lookup resolves an API key to its tenant, auto-registering unknown keys
// under the default limits. Registration enforces bounded FIFO retention:
// at the bound, the oldest idle auto tenant is evicted; when every auto
// tenant is busy the lookup fails with ErrExhausted (wrapped in a
// *LimitError) rather than growing without bound.
func (r *Registry) Lookup(key string) (*Tenant, error) {
	if t, ok := r.byKey[key]; ok {
		return t, nil
	}
	if r.autos >= r.maxTenants() && !r.evictOldestIdle() {
		return nil, &LimitError{Tenant: hashID(key), Reason: ErrExhausted,
			Used: r.autos, Cap: r.maxTenants()}
	}
	t := &Tenant{id: hashID(key), key: key, limits: r.cfg.Defaults, seq: r.nextSeq}
	r.nextSeq++
	r.byKey[key] = t
	r.ring = append(r.ring, t)
	r.autos++
	return t, nil
}

// evictOldestIdle drops the auto tenant with the smallest registration
// sequence among idle ones. Reports whether an eviction happened.
func (r *Registry) evictOldestIdle() bool {
	victim := -1
	for i, t := range r.ring {
		if t.pinned || !t.idle() {
			continue
		}
		if victim < 0 || t.seq < r.ring[victim].seq {
			victim = i
		}
	}
	if victim < 0 {
		return false
	}
	t := r.ring[victim]
	delete(r.byKey, t.key)
	r.ring = append(r.ring[:victim], r.ring[victim+1:]...)
	r.autos--
	switch {
	case len(r.ring) == 0:
		r.cursor, r.burst = 0, 0
	case victim < r.cursor:
		r.cursor--
	case victim == r.cursor:
		r.burst = 0
		if r.cursor >= len(r.ring) {
			r.cursor = 0
		}
	}
	return true
}

// refill accrues tokens up to now. The first call only anchors the clock:
// a fresh tenant starts with a full bucket, so bursts up to Burst are
// admitted before the rate bites.
func (t *Tenant) refill(now int64) {
	if t.limits.Rate <= 0 {
		return
	}
	if !t.hasRefill {
		t.hasRefill = true
		t.lastNanos = now
		t.tokens = float64(t.limits.burst())
		return
	}
	if now <= t.lastNanos {
		return
	}
	t.tokens += float64(now-t.lastNanos) / 1e9 * t.limits.Rate
	if max := float64(t.limits.burst()); t.tokens > max {
		t.tokens = max
	}
	t.lastNanos = now
}

// Enqueue admits one submission at time now (monotonic nanoseconds) and
// appends item to the tenant's fair queue. Rejections are structured
// *LimitError values; the quota checks run in a fixed order (rate, queued,
// in-flight) so rejection reasons are deterministic.
func (r *Registry) Enqueue(t *Tenant, item any, now int64) error {
	if err := t.rateCheck(now); err != nil {
		return err
	}
	if t.limits.MaxQueued > 0 && t.queued >= t.limits.MaxQueued {
		return &LimitError{Tenant: t.id, Reason: ErrQueueFull,
			Used: t.queued, Cap: t.limits.MaxQueued}
	}
	if t.limits.MaxInFlight > 0 && t.queued+t.running >= t.limits.MaxInFlight {
		return &LimitError{Tenant: t.id, Reason: ErrInFlightLimit,
			Used: t.queued + t.running, Cap: t.limits.MaxInFlight}
	}
	if t.limits.Rate > 0 {
		t.tokens--
	}
	t.fifo = append(t.fifo, item)
	t.queued++
	r.queued++
	return nil
}

// rateCheck refills the token bucket to now and fails with ErrRateLimited
// (and the bucket-derived retry hint) if no token is available. It does not
// consume a token.
func (t *Tenant) rateCheck(now int64) error {
	t.refill(now)
	if t.limits.Rate > 0 && t.tokens < 1 {
		deficit := 1 - t.tokens
		wait := int64(deficit / t.limits.Rate * 1e9)
		if wait < 1 {
			wait = 1
		}
		return &LimitError{Tenant: t.id, Reason: ErrRateLimited,
			RetryAfterNanos: wait, Used: t.limits.burst(), Cap: t.limits.burst()}
	}
	return nil
}

// Admit charges the tenant's rate bucket for a request that consumes no
// queue or in-flight capacity — the cache-hit path: a submission answered
// from the result store occupies no worker and holds no slot, but it is
// still one API-visible request, so it must pay the same per-request token
// the queued path pays (otherwise a hot cached spec becomes an unmetered
// bypass of the tenant's rate quota). MaxQueued/MaxInFlight are deliberately
// not checked: those bound resource occupancy, and an admission that
// occupies nothing should not be rejected for someone else's occupancy.
func (r *Registry) Admit(t *Tenant, now int64) error {
	if err := t.rateCheck(now); err != nil {
		return err
	}
	if t.limits.Rate > 0 {
		t.tokens--
	}
	return nil
}

// Dequeue pops the next item under weighted round-robin: the cursor tenant
// is served up to Weight consecutive items, then the turn passes to the
// next tenant with queued work. A flooding tenant therefore gets at most
// weight/(sum of active weights) of the dequeue bandwidth — no tenant
// starves. The popped item's tenant transitions queued -> running.
func (r *Registry) Dequeue() (any, *Tenant, bool) {
	if r.queued == 0 || len(r.ring) == 0 {
		return nil, nil, false
	}
	for probes := 0; probes <= len(r.ring); probes++ {
		t := r.ring[r.cursor]
		if len(t.fifo) > 0 && r.burst < t.limits.weight() {
			item := t.fifo[0]
			t.fifo[0] = nil // release the reference; the slice is reused
			t.fifo = t.fifo[1:]
			if len(t.fifo) == 0 {
				t.fifo = nil
			}
			r.burst++
			t.queued--
			t.running++
			r.queued--
			if len(t.fifo) == 0 || r.burst >= t.limits.weight() {
				r.advance()
			}
			return item, t, true
		}
		r.advance()
	}
	return nil, nil, false
}

// advance moves the round-robin turn to the next tenant.
func (r *Registry) advance() {
	if len(r.ring) == 0 {
		r.cursor, r.burst = 0, 0
		return
	}
	r.cursor = (r.cursor + 1) % len(r.ring)
	r.burst = 0
}

// Finish records a running job's terminal state, releasing its in-flight
// slot.
func (r *Registry) Finish(t *Tenant) {
	if t.running > 0 {
		t.running--
	}
}

// AcquireStream admits one event-stream subscription against the tenant's
// concurrent-stream cap.
func (r *Registry) AcquireStream(t *Tenant) error {
	if t.limits.MaxStreams > 0 && t.streams >= t.limits.MaxStreams {
		return &LimitError{Tenant: t.id, Reason: ErrStreamLimit,
			Used: t.streams, Cap: t.limits.MaxStreams}
	}
	t.streams++
	return nil
}

// ReleaseStream releases a stream slot.
func (r *Registry) ReleaseStream(t *Tenant) {
	if t.streams > 0 {
		t.streams--
	}
}

// QueuedTotal returns the number of items queued across all tenants.
func (r *Registry) QueuedTotal() int { return r.queued }

// Tenants returns the live tenants in registration order (pinned first) —
// a deterministic slice, never map-iteration order.
func (r *Registry) Tenants() []*Tenant {
	out := make([]*Tenant, len(r.ring))
	copy(out, r.ring)
	return out
}
