package tenant

import (
	"errors"
	"fmt"
	"testing"
)

// drive pushes n items for key at time now, returning admitted count.
func drive(t *testing.T, r *Registry, key string, n int, now int64) int {
	t.Helper()
	ten, err := r.Lookup(key)
	if err != nil {
		t.Fatalf("Lookup(%q): %v", key, err)
	}
	admitted := 0
	for i := 0; i < n; i++ {
		if err := r.Enqueue(ten, fmt.Sprintf("%s-%d", key, i), now); err == nil {
			admitted++
		}
	}
	return admitted
}

func TestLookupAutoRegisterAndIdentity(t *testing.T) {
	r := NewRegistry(Config{})
	a, err := r.Lookup("secret-key-a")
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() == "secret-key-a" || a.ID() == "" {
		t.Errorf("tenant ID %q must be a hash, never the raw key", a.ID())
	}
	b, _ := r.Lookup("secret-key-a")
	if a != b {
		t.Error("same key resolved to two tenants")
	}
	anon, _ := r.Lookup("")
	if anon.ID() != AnonymousID {
		t.Errorf("empty key tenant ID = %q, want %q", anon.ID(), AnonymousID)
	}
}

func TestPinnedTenantsKeepNameAndLimits(t *testing.T) {
	r := NewRegistry(Config{
		Defaults: Limits{MaxQueued: 1},
		Pinned: []Pinned{
			{Name: "gold", Key: "k-gold", Limits: Limits{MaxQueued: 10, Weight: 3}},
			{Name: "plain", Key: "k-plain"}, // zero Limits: inherits defaults
		},
	})
	g, err := r.Lookup("k-gold")
	if err != nil || g.ID() != "gold" || !g.Pinned() {
		t.Fatalf("gold lookup: %v %+v", err, g)
	}
	if g.Limits().MaxQueued != 10 || g.Limits().weight() != 3 {
		t.Errorf("gold limits not applied: %+v", g.Limits())
	}
	p, _ := r.Lookup("k-plain")
	if p.Limits().MaxQueued != 1 {
		t.Errorf("pinned tenant with zero limits should inherit defaults, got %+v", p.Limits())
	}
}

func TestBoundedFIFORetention(t *testing.T) {
	r := NewRegistry(Config{MaxTenants: 2})
	a, _ := r.Lookup("ka")
	if _, err := r.Lookup("kb"); err != nil {
		t.Fatal(err)
	}
	// Make a busy so only b is evictable.
	if err := r.Enqueue(a, "x", 0); err != nil {
		t.Fatal(err)
	}
	c, err := r.Lookup("kc") // evicts b (oldest idle), not a
	if err != nil {
		t.Fatalf("third tenant should evict the idle one: %v", err)
	}
	if _, ok := r.byKey["kb"]; ok {
		t.Error("kb should have been evicted")
	}
	if _, ok := r.byKey["ka"]; !ok {
		t.Error("busy tenant ka must never be evicted")
	}
	// Now both a and c busy: registration must fail loudly, not grow.
	if err := r.Enqueue(c, "y", 0); err != nil {
		t.Fatal(err)
	}
	_, err = r.Lookup("kd")
	var le *LimitError
	if !errors.As(err, &le) || !errors.Is(err, ErrExhausted) {
		t.Fatalf("exhausted table: err = %v, want ErrExhausted LimitError", err)
	}
}

func TestTokenBucketDeterministicRefill(t *testing.T) {
	r := NewRegistry(Config{Defaults: Limits{Rate: 2, Burst: 2}})
	ten, _ := r.Lookup("k")
	const now0 = int64(1_000_000_000)
	// Full bucket at first sight: burst of 2 admitted, third rate-limited.
	for i := 0; i < 2; i++ {
		if err := r.Enqueue(ten, i, now0); err != nil {
			t.Fatalf("burst submit %d: %v", i, err)
		}
	}
	err := r.Enqueue(ten, 2, now0)
	var le *LimitError
	if !errors.As(err, &le) || !errors.Is(err, ErrRateLimited) {
		t.Fatalf("empty bucket: err = %v, want ErrRateLimited", err)
	}
	// Retry hint is the deterministic time to the next token: 0.5s at 2/s.
	if le.RetryAfterNanos != 500_000_000 {
		t.Errorf("RetryAfterNanos = %d, want 500ms", le.RetryAfterNanos)
	}
	// 499ms later: still short. 500ms later: exactly one token.
	if err := r.Enqueue(ten, 3, now0+499_000_000); !errors.Is(err, ErrRateLimited) {
		t.Errorf("499ms: err = %v, want rate limited", err)
	}
	if err := r.Enqueue(ten, 3, now0+500_000_000); err != nil {
		t.Errorf("500ms: err = %v, want admitted", err)
	}
	// Bucket never exceeds burst: a long sleep buys at most 2 tokens.
	if got := drive(t, r, "k", 5, now0+100_000_000_000); got != 2 {
		t.Errorf("after long idle admitted %d, want burst 2", got)
	}
}

func TestAdmitChargesRateOnly(t *testing.T) {
	r := NewRegistry(Config{Defaults: Limits{Rate: 2, Burst: 2, MaxQueued: 1, MaxInFlight: 1}})
	ten, _ := r.Lookup("k")
	const now0 = int64(1_000_000_000)
	// Saturate occupancy: one queued job fills both MaxQueued and (with
	// nothing running) leaves MaxInFlight at its bound.
	if err := r.Enqueue(ten, 0, now0); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	if err := r.Enqueue(ten, 1, now0); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("occupancy guard: err = %v, want ErrQueueFull", err)
	}
	// Admit ignores occupancy — a cache hit holds no slot — but it spends
	// the second (last) token...
	if err := r.Admit(ten, now0); err != nil {
		t.Fatalf("Admit with full queue: %v", err)
	}
	// ...so the bucket is now empty for Admit and Enqueue alike.
	err := r.Admit(ten, now0)
	var le *LimitError
	if !errors.As(err, &le) || !errors.Is(err, ErrRateLimited) {
		t.Fatalf("drained bucket: err = %v, want ErrRateLimited", err)
	}
	if le.RetryAfterNanos != 500_000_000 {
		t.Errorf("RetryAfterNanos = %d, want 500ms", le.RetryAfterNanos)
	}
	// Refill restores Admit at the same deterministic schedule as Enqueue.
	if err := r.Admit(ten, now0+500_000_000); err != nil {
		t.Errorf("after refill: err = %v, want admitted", err)
	}
}

func TestQueueAndInFlightCaps(t *testing.T) {
	r := NewRegistry(Config{Defaults: Limits{MaxQueued: 2, MaxInFlight: 3}})
	ten, _ := r.Lookup("k")
	for i := 0; i < 2; i++ {
		if err := r.Enqueue(ten, i, 0); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	if err := r.Enqueue(ten, 9, 0); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("queued cap: err = %v, want ErrQueueFull", err)
	}
	// Drain both to running: queued 0, running 2. One more submit fills
	// in-flight (1 queued + 2 running = 3); the next trips the cap with the
	// queue still under its own bound.
	for i := 0; i < 2; i++ {
		if _, _, ok := r.Dequeue(); !ok {
			t.Fatal("dequeue failed")
		}
	}
	if err := r.Enqueue(ten, 10, 0); err != nil {
		t.Fatalf("refill queue: %v", err)
	}
	if err := r.Enqueue(ten, 11, 0); !errors.Is(err, ErrInFlightLimit) {
		t.Fatalf("in-flight cap: err = %v, want ErrInFlightLimit", err)
	}
	// A finished job frees an in-flight slot.
	r.Finish(ten)
	if err := r.Enqueue(ten, 12, 0); err != nil {
		t.Fatalf("after Finish: %v", err)
	}
}

func TestStreamCap(t *testing.T) {
	r := NewRegistry(Config{Defaults: Limits{MaxStreams: 1}})
	ten, _ := r.Lookup("k")
	if err := r.AcquireStream(ten); err != nil {
		t.Fatal(err)
	}
	if err := r.AcquireStream(ten); !errors.Is(err, ErrStreamLimit) {
		t.Fatalf("stream cap: err = %v, want ErrStreamLimit", err)
	}
	r.ReleaseStream(ten)
	if err := r.AcquireStream(ten); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

// TestWeightedRoundRobinFairness: with tenants A (weight 1) and B (weight
// 2) both saturated, the dequeue order serves B twice per A once — and a
// flooding third tenant cannot push either below its share.
func TestWeightedRoundRobinFairness(t *testing.T) {
	r := NewRegistry(Config{Pinned: []Pinned{
		{Name: "a", Key: "ka", Limits: Limits{Weight: 1}},
		{Name: "b", Key: "kb", Limits: Limits{Weight: 2}},
	}})
	a, _ := r.Lookup("ka")
	b, _ := r.Lookup("kb")
	for i := 0; i < 6; i++ {
		if err := r.Enqueue(a, fmt.Sprintf("a%d", i), 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 12; i++ {
		if err := r.Enqueue(b, fmt.Sprintf("b%d", i), 0); err != nil {
			t.Fatal(err)
		}
	}
	var order []string
	for {
		item, ten, ok := r.Dequeue()
		if !ok {
			break
		}
		order = append(order, item.(string))
		r.Finish(ten)
	}
	if len(order) != 18 {
		t.Fatalf("dequeued %d items, want 18", len(order))
	}
	// First 9 dequeues: a gets 3 (one per turn), b gets 6 (two per turn).
	aServed := 0
	for _, it := range order[:9] {
		if it[0] == 'a' {
			aServed++
		}
	}
	if aServed != 3 {
		t.Errorf("first 9 dequeues served a %d times, want 3 (weights 1:2): %v", aServed, order[:9])
	}
	// FIFO within each tenant.
	lastA, lastB := -1, -1
	for _, it := range order {
		var n int
		fmt.Sscanf(it[1:], "%d", &n)
		if it[0] == 'a' {
			if n <= lastA {
				t.Fatalf("a's items out of FIFO order: %v", order)
			}
			lastA = n
		} else {
			if n <= lastB {
				t.Fatalf("b's items out of FIFO order: %v", order)
			}
			lastB = n
		}
	}
}

// TestNoStarvationUnderFlood: one abusive tenant with a huge backlog cannot
// delay a well-behaved tenant's single job by more than one WRR turn.
func TestNoStarvationUnderFlood(t *testing.T) {
	r := NewRegistry(Config{})
	abusive, _ := r.Lookup("abusive")
	for i := 0; i < 1000; i++ {
		if err := r.Enqueue(abusive, i, 0); err != nil {
			t.Fatal(err)
		}
	}
	good, _ := r.Lookup("good")
	if err := r.Enqueue(good, "the-one-job", 0); err != nil {
		t.Fatal(err)
	}
	// The good tenant's job must surface within 2 dequeues (one abusive
	// serve for the in-progress turn, then the turn passes).
	for i := 0; i < 2; i++ {
		item, _, ok := r.Dequeue()
		if !ok {
			t.Fatal("dequeue failed")
		}
		if item == "the-one-job" {
			return
		}
	}
	t.Fatal("well-behaved tenant starved behind a 1000-job flood")
}

func TestDequeueEmpty(t *testing.T) {
	r := NewRegistry(Config{})
	if _, _, ok := r.Dequeue(); ok {
		t.Error("empty registry dequeued something")
	}
	ten, _ := r.Lookup("k")
	if err := r.Enqueue(ten, 1, 0); err != nil {
		t.Fatal(err)
	}
	r.Dequeue()
	if _, _, ok := r.Dequeue(); ok {
		t.Error("drained registry dequeued something")
	}
	if r.QueuedTotal() != 0 {
		t.Errorf("QueuedTotal = %d, want 0", r.QueuedTotal())
	}
}

// TestEvictionKeepsRoundRobinConsistent: evicting tenants positioned
// before, at, and after the cursor leaves the ring traversal valid.
func TestEvictionKeepsRoundRobinConsistent(t *testing.T) {
	r := NewRegistry(Config{MaxTenants: 3})
	a, _ := r.Lookup("ka")
	b, _ := r.Lookup("kb")
	c, _ := r.Lookup("kc")
	// Occupy b and c; advance the cursor onto b by serving a.
	if err := r.Enqueue(a, "a0", 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Enqueue(b, "b0", 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Enqueue(c, "c0", 0); err != nil {
		t.Fatal(err)
	}
	if item, _, _ := r.Dequeue(); item != "a0" {
		t.Fatalf("first dequeue %v, want a0", item)
	}
	r.Finish(a)
	// a is now idle; registering a fourth tenant evicts it (index 0,
	// before the cursor).
	if _, err := r.Lookup("kd"); err != nil {
		t.Fatal(err)
	}
	if item, _, _ := r.Dequeue(); item != "b0" {
		t.Fatal("cursor lost after eviction before it")
	}
	if item, _, _ := r.Dequeue(); item != "c0" {
		t.Fatal("ring order broken after eviction")
	}
	if r.QueuedTotal() != 0 {
		t.Errorf("QueuedTotal = %d, want 0", r.QueuedTotal())
	}
}

// TestDeterministicReplay: the registry's decisions are a pure function of
// the (nanos, op) sequence — two registries fed the same script agree on
// every outcome.
func TestDeterministicReplay(t *testing.T) {
	script := func(r *Registry) []string {
		var log []string
		keys := []string{"a", "b", "a", "c", "b", "a"}
		for i, k := range keys {
			ten, err := r.Lookup(k)
			if err != nil {
				log = append(log, "lookup-err")
				continue
			}
			now := int64(i) * 100_000_000
			if err := r.Enqueue(ten, fmt.Sprintf("%s%d", k, i), now); err != nil {
				log = append(log, fmt.Sprintf("shed:%v", errors.Unwrap(err)))
			} else {
				log = append(log, "ok")
			}
			if i%2 == 1 {
				if item, ten, ok := r.Dequeue(); ok {
					log = append(log, fmt.Sprintf("pop:%v", item))
					r.Finish(ten)
				}
			}
		}
		return log
	}
	cfg := Config{Defaults: Limits{Rate: 5, Burst: 1, MaxQueued: 2}}
	l1 := script(NewRegistry(cfg))
	l2 := script(NewRegistry(cfg))
	if fmt.Sprint(l1) != fmt.Sprint(l2) {
		t.Errorf("replay diverged:\n%v\n%v", l1, l2)
	}
}
