package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"locality/internal/harness"
	"locality/internal/jobs"
	"locality/internal/obs"
	"locality/internal/rng"
)

// Options configures a Coordinator.
type Options struct {
	// Shards is the static membership (ParseShards / LoadShards).
	Shards []Shard
	// RequestTimeout bounds each HTTP attempt against a shard (default 5s) —
	// a hung shard must look like a dead shard, promptly.
	RequestTimeout time.Duration
	// Retries is the attempt budget per shard API call (default 3).
	Retries int
	// Backoff paces client retries and failure-streak probes; its
	// deterministic jitter keeps N coordinators from synchronizing their
	// hammering.
	Backoff harness.Backoff
	// PollInterval is the cadence of the dispatch/merge loop (default 100ms).
	PollInterval time.Duration
	// ProbeInterval is the healthy-shard probe cadence (default 500ms).
	ProbeInterval time.Duration
	// ProbeThreshold is the consecutive probe failures that flip a shard
	// unhealthy (default 3).
	ProbeThreshold int
	// ShardWorkers is the Workers count passed through to shard jobs
	// (0 = sequential on each shard).
	ShardWorkers int
	// Metrics, when non-nil, receives the coordinator's per-shard health,
	// dispatch, adoption, and failover counters.
	Metrics *obs.Registry
	// OnSpan, when non-nil, receives one completed SpanEvent per
	// coordinator action (dispatch, adopt, failover, abandon, endgame).
	// Strictly fire-and-forget, like Metrics and Logf: the hook must not
	// block or feed back into the run (see trace.go on why the
	// coordinator carries no tracer of its own).
	OnSpan func(SpanEvent)
	// Logf, when non-nil, receives progress lines (log.Printf-shaped).
	Logf func(format string, args ...any)
}

// Event is one entry of a run's failure-handling audit trail.
type Event struct {
	// Shard names the shard involved ("" for coordinator-local events).
	Shard string `json:"shard,omitempty"`
	// Kind is the event class: "dispatch", "adopt", "unhealthy", "healthy",
	// "failover", "abandon", "endgame".
	Kind string `json:"kind"`
	// Detail is the human-readable specifics.
	Detail string `json:"detail,omitempty"`
}

// Result is a completed cluster sweep.
type Result struct {
	// Output is the final rendered table — byte-identical to a single-process
	// run of the same spec.
	Output string `json:"output"`
	// Checkpoint is the merged shard checkpoint before the endgame; sparse
	// iff some batches had to be recomputed locally.
	Checkpoint *harness.Checkpoint `json:"-"`
	// TotalBatches is the sweep's full batch count.
	TotalBatches int `json:"total_batches"`
	// Adopted counts merged batches by computing shard.
	Adopted map[string]int `json:"adopted,omitempty"`
	// Retried counts batches recomputed by a surviving shard after failover.
	Retried int `json:"retried"`
	// Recomputed counts holes the endgame recomputed locally.
	Recomputed int `json:"recomputed"`
	// Lost counts batches unaccounted for after merge and endgame. It is
	// zero by construction — determinism makes every batch recomputable —
	// and asserted by the e2e harness.
	Lost int `json:"lost"`
	// Events is the failure-handling audit trail, in order.
	Events []Event `json:"events,omitempty"`
}

// Coordinator shards sweeps across worker localityd instances and merges
// the results. Create with New; Run executes one sweep. A Coordinator is
// not safe for concurrent Runs — callers serialize (cmd/localityd's
// coordinator mode runs one cluster job at a time per Coordinator).
type Coordinator struct {
	opts    Options
	metrics clusterMetrics
	shards  []*shardState
	rr      int // round-robin dispatch cursor
}

// shardState pairs a member with its client and prober.
type shardState struct {
	shard  Shard
	client *Client
	prober *Prober
}

// assignment is one dispatched slice of the sweep.
type assignment struct {
	rows    *jobs.RowSpec
	shard   *shardState
	jobID   string
	retried bool // a failover re-dispatch: its adopted batches count as retried
}

// New validates the membership and builds the coordinator.
func New(opts Options) (*Coordinator, error) {
	if _, err := validateShards(opts.Shards); err != nil {
		return nil, err
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 5 * time.Second
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 100 * time.Millisecond
	}
	c := &Coordinator{opts: opts, metrics: clusterMetrics{reg: opts.Metrics}}
	for i, sh := range opts.Shards {
		client := &Client{
			Shard:   sh,
			HTTP:    &http.Client{Timeout: opts.RequestTimeout},
			Retries: opts.Retries,
			Backoff: opts.Backoff,
			OnRetry: func(string) { c.metrics.retry() },
		}
		// Per-shard backoff seed: shards walk distinct jitter schedules.
		client.Backoff.Seed = rng.Mix64(opts.Backoff.Seed, uint64(i))
		ss := &shardState{shard: sh, client: client}
		ss.prober = &Prober{
			Client:    client,
			Interval:  opts.ProbeInterval,
			Backoff:   client.Backoff,
			Threshold: opts.ProbeThreshold,
		}
		c.metrics.shardHealthy(sh.Name, 1)
		c.shards = append(c.shards, ss)
	}
	return c, nil
}

// Shards exposes the membership (for logs and the coordinator's own API).
func (c *Coordinator) Shards() []Shard { return c.opts.Shards }

// logf narrates progress when Options.Logf is set.
func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// Run executes one sweep across the cluster: initial residue assignments,
// poll-and-merge with failover, then the local endgame that replays the
// merged checkpoint — recomputing any batches no shard delivered — and
// renders the final table. The output is byte-identical to a
// single-process run of the same spec; the only fatal errors are context
// death, an unknown experiment, and checkpoint divergence (a determinism
// violation that must never be papered over).
func (c *Coordinator) Run(ctx context.Context, spec jobs.Spec) (*Result, error) {
	driver, ok := harness.ByID(spec.Experiment)
	if !ok {
		if driver, ok = harness.ByIDSupplementary(spec.Experiment); !ok {
			return nil, fmt.Errorf("cluster: unknown experiment %q", spec.Experiment)
		}
	}
	if spec.Rows != nil {
		return nil, fmt.Errorf("cluster: spec.Rows is coordinator-owned")
	}
	res := &Result{Adopted: make(map[string]int)}
	merged := &harness.Checkpoint{Experiment: spec.Experiment, Seed: spec.Seed, Quick: spec.Quick}
	res.Checkpoint = merged

	// Health probers run for the duration of the sweep.
	probeCtx, stopProbes := context.WithCancel(ctx)
	var wg sync.WaitGroup
	for _, ss := range c.shards {
		ss.prober.OnChange = func(shard string, healthy bool) {
			v := int64(0)
			kind := "unhealthy"
			if healthy {
				v, kind = 1, "healthy"
			}
			c.metrics.shardHealthy(shard, v)
			c.logf("cluster: shard %s %s", shard, kind)
		}
		wg.Add(1)
		go func(p *Prober) {
			defer wg.Done()
			p.Run(probeCtx)
		}(ss.prober)
	}
	defer func() {
		stopProbes()
		wg.Wait()
		// Transitions observed after Run returns would race the caller.
		for _, ss := range c.shards {
			ss.prober.OnChange = nil
		}
	}()

	// Initial assignment: shard k of N computes the k-th residue class —
	// no knowledge of the sweep's batch count needed.
	n := len(c.shards)
	var active []*assignment
	for k, ss := range c.shards {
		a := &assignment{rows: &jobs.RowSpec{Mod: n, Keep: k}, shard: ss}
		if n == 1 {
			a.rows = &jobs.RowSpec{} // sole shard takes everything
		}
		active = c.dispatch(ctx, spec, a, res, active)
	}

	// Poll, merge, fail over. The failover budget bounds pathological
	// ping-pong — a job that fails deterministically on every shard is
	// eventually abandoned to the endgame, where its failure surfaces as
	// Run's error instead of an infinite reassignment loop.
	failoverBudget := 3 * n
	for len(active) > 0 {
		if err := sleepCtx(ctx, c.opts.PollInterval); err != nil {
			return res, fmt.Errorf("cluster: %s sweep abandoned: %w", spec.Experiment, err)
		}
		var still []*assignment
		for _, a := range active {
			done, err := c.poll(ctx, a, merged, res)
			switch {
			case errors.Is(err, harness.ErrCheckpointDiverged):
				c.cancelAll(ctx, active)
				return res, err
			case err != nil:
				c.event(res, a.shard.shard.Name, "failover", err.Error())
				c.metrics.failover()
				now := time.Now().UnixNano()
				c.span("cluster.failover", a.shard.shard.Name, now, now, "error", err.Error())
				c.logf("cluster: shard %s failed (%v); reassigning", a.shard.shard.Name, err)
				if failoverBudget--; failoverBudget < 0 {
					c.event(res, a.shard.shard.Name, "abandon",
						"failover budget exhausted; endgame will recompute "+rowsLabel(a.rows))
					c.span("cluster.abandon", a.shard.shard.Name, now, now, "reason", "failover_budget")
					continue
				}
				still = c.reassign(ctx, spec, a, merged, res, still)
			case done:
			default:
				still = append(still, a)
			}
		}
		active = still
		if merged.Complete() {
			c.cancelAll(ctx, active)
			break
		}
	}

	return c.endgame(ctx, driver, spec, merged, res)
}

// dispatch submits an assignment to its shard, preferring a healthy one;
// with the cluster fully unhealthy the assignment is abandoned to the
// endgame. Returns active with the assignment appended iff dispatched.
func (c *Coordinator) dispatch(ctx context.Context, spec jobs.Spec, a *assignment, res *Result, active []*assignment) []*assignment {
	if !a.shard.prober.Healthy() {
		if next := c.nextHealthy(); next != nil {
			a.shard = next
		} else {
			c.event(res, a.shard.shard.Name, "abandon", "no healthy shard; endgame will recompute "+rowsLabel(a.rows))
			now := time.Now().UnixNano()
			c.span("cluster.abandon", a.shard.shard.Name, now, now, "reason", "no_healthy_shard")
			return active
		}
	}
	req := SubmitRequest{
		Experiment: spec.Experiment,
		Quick:      spec.Quick,
		Seed:       spec.Seed,
		TimeoutMS:  int64(spec.Timeout / time.Millisecond),
		Workers:    c.opts.ShardWorkers,
		Rows:       a.rows,
	}
	start := time.Now().UnixNano()
	id, err := a.shard.client.Submit(ctx, req)
	if err != nil {
		a.shard.prober.MarkUnhealthy()
		c.event(res, a.shard.shard.Name, "failover", "dispatch failed: "+err.Error())
		c.metrics.failover()
		c.span("shard.dispatch", a.shard.shard.Name, start, time.Now().UnixNano(),
			"outcome", "failed", "error", err.Error())
		if next := c.nextHealthy(); next != nil {
			a.shard = next
			return c.dispatch(ctx, spec, a, res, active)
		}
		c.event(res, a.shard.shard.Name, "abandon", "no healthy shard; endgame will recompute "+rowsLabel(a.rows))
		now := time.Now().UnixNano()
		c.span("cluster.abandon", a.shard.shard.Name, now, now, "reason", "no_healthy_shard")
		return active
	}
	c.span("shard.dispatch", a.shard.shard.Name, start, time.Now().UnixNano(),
		"job", id, "rows", rowsLabel(a.rows))
	a.jobID = id
	c.metrics.dispatched(a.shard.shard.Name)
	c.event(res, a.shard.shard.Name, "dispatch", fmt.Sprintf("%s as %s", rowsLabel(a.rows), id))
	c.logf("cluster: dispatched %s %s to %s (%s)", spec.Experiment, rowsLabel(a.rows), a.shard.shard.Name, id)
	return append(active, a)
}

// poll advances one assignment: fetch the shard's checkpoint snapshot,
// adopt whatever is new (so a later death loses nothing already fetched),
// and classify the job state. done means the assignment finished and its
// final checkpoint is merged; an error means the assignment needs
// reassignment — except checkpoint divergence, which the caller treats as
// fatal.
func (c *Coordinator) poll(ctx context.Context, a *assignment, merged *harness.Checkpoint, res *Result) (bool, error) {
	if !a.shard.prober.Healthy() {
		return false, fmt.Errorf("shard %s unhealthy", a.shard.shard.Name)
	}
	cr, err := a.shard.client.Checkpoint(ctx, a.jobID)
	if err != nil {
		var se *StatusError
		if !errors.As(err, &se) {
			a.shard.prober.MarkUnhealthy()
		}
		return false, err
	}
	if cr.Checkpoint != nil {
		adopted, err := merged.Adopt(cr.Checkpoint, a.shard.shard.Name)
		if err != nil {
			return false, err
		}
		if len(adopted) > 0 {
			res.Adopted[a.shard.shard.Name] += len(adopted)
			c.metrics.adopted(a.shard.shard.Name, len(adopted))
			if a.retried {
				res.Retried += len(adopted)
				c.metrics.retried(len(adopted))
			}
			now := time.Now().UnixNano()
			c.span("shard.adopt", a.shard.shard.Name, now, now,
				"job", a.jobID, "batches", fmt.Sprintf("%d", len(adopted)))
		}
	}
	switch cr.State {
	case jobs.StateSucceeded:
		c.event(res, a.shard.shard.Name, "adopt",
			fmt.Sprintf("%s complete (%d batches merged)", a.jobID, res.Adopted[a.shard.shard.Name]))
		return true, nil
	case jobs.StateFailed, jobs.StateCancelled:
		return false, fmt.Errorf("job %s on %s %s", a.jobID, a.shard.shard.Name, cr.State)
	default:
		return false, nil
	}
}

// reassign re-dispatches an assignment's unmerged batches to a surviving
// shard: an explicit Include list when the sweep's batch count is known, a
// skip-annotated residue spec otherwise. Batches already merged are never
// recomputed.
func (c *Coordinator) reassign(ctx context.Context, spec jobs.Spec, a *assignment, merged *harness.Checkpoint, res *Result, active []*assignment) []*assignment {
	// Best-effort cancel: a dead shard cannot answer, and need not.
	if a.jobID != "" {
		cctx, cancel := context.WithTimeout(ctx, c.opts.RequestTimeout)
		_ = a.shard.client.Cancel(cctx, a.jobID)
		cancel()
	}
	next := &assignment{shard: a.shard, retried: true}
	if merged.TotalBatches > 0 {
		var missing []int
		for i := 0; i < merged.TotalBatches; i++ {
			if a.rows.Selected(i) && (i >= len(merged.Batches) || merged.Batches[i] == nil) {
				missing = append(missing, i)
			}
		}
		if len(missing) == 0 {
			return active // everything already merged; nothing to reassign
		}
		next.rows = &jobs.RowSpec{Include: missing}
	} else {
		next.rows = &jobs.RowSpec{
			Mod:     a.rows.Mod,
			Keep:    a.rows.Keep,
			Include: append([]int(nil), a.rows.Include...),
			Skip:    merged.ComputedIndices(),
		}
	}
	return c.dispatch(ctx, spec, next, res, active)
}

// nextHealthy picks the next healthy shard round-robin, or nil.
func (c *Coordinator) nextHealthy() *shardState {
	for range c.shards {
		ss := c.shards[c.rr%len(c.shards)]
		c.rr++
		if ss.prober.Healthy() {
			return ss
		}
	}
	return nil
}

// cancelAll best-effort cancels outstanding assignments (used when the
// merge completes from partial checkpoints before every job reports done).
// The cancel RPCs derive from ctx via WithoutCancel: they carry its values
// but deliberately outlive its cancellation — a sweep abandoned by the
// caller still tells the shards to stop, bounded by the request timeout.
func (c *Coordinator) cancelAll(ctx context.Context, active []*assignment) {
	for _, a := range active {
		if a.jobID == "" {
			continue
		}
		cctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), c.opts.RequestTimeout)
		_ = a.shard.client.Cancel(cctx, a.jobID)
		cancel()
	}
}

// endgame rebuilds the full table locally: the driver replays the merged
// checkpoint and recomputes any holes — batches no shard delivered — so no
// failure mode loses rows. This is also where byte-identity comes from:
// the final bytes are always rendered by one deterministic local replay,
// whatever subset of the cluster computed the inputs.
func (c *Coordinator) endgame(ctx context.Context, driver func(harness.Config) *harness.Table, spec jobs.Spec, merged *harness.Checkpoint, res *Result) (*Result, error) {
	egStart := time.Now().UnixNano()
	recomputed := 0
	tbl, err := runDriver(driver, harness.Config{
		Quick:   spec.Quick,
		Seed:    spec.Seed,
		Ctx:     ctx,
		Resume:  merged,
		OnBatch: func(*harness.Checkpoint) { recomputed++ },
	})
	if err != nil {
		return res, fmt.Errorf("cluster: endgame replay: %w", err)
	}
	res.Recomputed = recomputed
	c.metrics.recomputed(recomputed)
	var buf strings.Builder
	tbl.Render(&buf)
	res.Output = buf.String()

	res.TotalBatches = merged.Computed() + recomputed
	if merged.TotalBatches > 0 {
		res.TotalBatches = merged.TotalBatches
	}
	res.Lost = res.TotalBatches - merged.Computed() - recomputed
	c.metrics.rowsLost(res.Lost)
	c.event(res, "", "endgame",
		fmt.Sprintf("%d/%d batches merged from shards, %d recomputed locally, %d lost",
			merged.Computed(), res.TotalBatches, recomputed, res.Lost))
	c.span("cluster.endgame", "", egStart, time.Now().UnixNano(),
		"recomputed", fmt.Sprintf("%d", recomputed), "lost", fmt.Sprintf("%d", res.Lost))
	c.logf("cluster: %s complete: %d batches merged, %d recomputed locally, %d lost",
		spec.Experiment, merged.Computed(), recomputed, res.Lost)
	return res, nil
}

// runDriver executes a driver with panic isolation: a cancelled sweep (or
// any other driver panic) becomes an error, not a coordinator crash.
func runDriver(driver func(harness.Config) *harness.Table, cfg harness.Config) (tbl *harness.Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			if cause, ok := r.(error); ok {
				err = cause
				return
			}
			err = fmt.Errorf("driver panic: %v", r)
		}
	}()
	return driver(cfg), nil
}

// event appends to the audit trail.
func (c *Coordinator) event(res *Result, shard, kind, detail string) {
	res.Events = append(res.Events, Event{Shard: shard, Kind: kind, Detail: detail})
}

// rowsLabel renders a row spec for events and logs.
func rowsLabel(r *jobs.RowSpec) string {
	switch {
	case r == nil:
		return "all rows"
	case len(r.Include) > 0:
		idx := append([]int(nil), r.Include...)
		sort.Ints(idx)
		return fmt.Sprintf("batches %v", idx)
	case r.Mod > 1:
		return fmt.Sprintf("batches %d mod %d (skip %d)", r.Keep, r.Mod, len(r.Skip))
	default:
		return fmt.Sprintf("all batches (skip %d)", len(r.Skip))
	}
}
