package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"locality/internal/harness"
	"locality/internal/jobs"
	"locality/internal/tenant"
)

// ErrShardUnavailable classifies a client call that exhausted its retry
// budget against timeouts, connection failures, or retryable statuses —
// the signal the coordinator treats as "this shard may be dead".
var ErrShardUnavailable = errors.New("cluster: shard unavailable")

// SubmitRequest is the POST /v1/jobs wire body (mirrors localityd's
// request schema; the in-process e2e test pins the two together).
type SubmitRequest struct {
	Experiment string        `json:"experiment"`
	Quick      bool          `json:"quick,omitempty"`
	Seed       uint64        `json:"seed"`
	TimeoutMS  int64         `json:"timeout_ms,omitempty"`
	Workers    int           `json:"workers,omitempty"`
	Rows       *jobs.RowSpec `json:"rows,omitempty"`
}

// CheckpointResponse is the GET /v1/jobs/{id}/checkpoint wire body.
type CheckpointResponse struct {
	State      jobs.State          `json:"state"`
	Checkpoint *harness.Checkpoint `json:"checkpoint"`
}

// errorBody is every non-2xx JSON body a worker sends (localityd's
// errorResponse shape).
type errorBody struct {
	Error    string `json:"error"`
	Reason   string `json:"reason,omitempty"`
	QueueLen int    `json:"queue_len,omitempty"`
	QueueCap int    `json:"queue_cap,omitempty"`
}

// StatusError is a non-retryable HTTP rejection from a shard (4xx other
// than 429): the request is wrong, not the shard.
type StatusError struct {
	Status int
	Reason string
	Detail string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("cluster: shard rejected request: %d %s (%s)", e.Status, e.Reason, e.Detail)
}

// Client is a retrying HTTP client for one worker shard. Transient
// failures — network errors, 5xx, 429 — are retried up to Retries attempts
// with the deterministic-jitter Backoff schedule, honoring any Retry-After
// the shard sends (the structured-shed satellite: workers say how long to
// back off, and this client listens). Permanent rejections (other 4xx)
// surface as *StatusError immediately.
type Client struct {
	// Shard identifies the worker this client talks to.
	Shard Shard
	// HTTP issues the requests; its Timeout bounds each attempt.
	HTTP *http.Client
	// Retries is the attempt budget per call (default 3).
	Retries int
	// Backoff paces retry attempts (pure seeded jitter, no clock reads).
	Backoff harness.Backoff
	// OnRetry, when non-nil, observes each retried attempt (for metrics).
	OnRetry func(shard string)
}

func (c *Client) retries() int {
	if c.Retries > 0 {
		return c.Retries
	}
	return 3
}

// Submit dispatches a job to the shard and returns its ID.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (string, error) {
	var resp struct {
		ID string `json:"id"`
	}
	if err := c.call(ctx, http.MethodPost, "/v1/jobs", req, &resp); err != nil {
		return "", err
	}
	if resp.ID == "" {
		return "", fmt.Errorf("cluster: shard %s accepted a job without an ID", c.Shard.Name)
	}
	return resp.ID, nil
}

// Job fetches a job snapshot.
func (c *Client) Job(ctx context.Context, id string) (jobs.Job, error) {
	var j jobs.Job
	err := c.call(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &j)
	return j, err
}

// Checkpoint fetches the job's latest checkpoint snapshot (nil when the
// job has not committed a batch yet).
func (c *Client) Checkpoint(ctx context.Context, id string) (CheckpointResponse, error) {
	var resp CheckpointResponse
	err := c.call(ctx, http.MethodGet, "/v1/jobs/"+id+"/checkpoint", nil, &resp)
	return resp, err
}

// Cancel requests cancellation of a job (best-effort: a dead shard cannot
// cancel, and that is fine — its work is reassigned anyway).
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.call(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil)
}

// Health probes /healthz once, without retries: the prober owns the
// retry/backoff policy across probes.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Shard.URL+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrShardUnavailable, c.Shard.Name, err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%w: %s: healthz %d", ErrShardUnavailable, c.Shard.Name, resp.StatusCode)
	}
	return nil
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// call issues one API request under the retry discipline.
func (c *Client) call(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return fmt.Errorf("cluster: encoding request: %w", err)
		}
	}
	var lastErr error
	var retryAfter time.Duration
	for attempt := 0; attempt < c.retries(); attempt++ {
		if attempt > 0 {
			if c.OnRetry != nil {
				c.OnRetry(c.Shard.Name)
			}
			// A shard-stated Retry-After floors the jitter schedule: the
			// shard knows its own queue better than our backoff curve does.
			wait := c.Backoff.Delay(attempt)
			if retryAfter > wait {
				wait = retryAfter
			}
			if err := sleepCtx(ctx, wait); err != nil {
				return fmt.Errorf("%w: %s: %v", ErrShardUnavailable, c.Shard.Name, err)
			}
		}
		var err error
		retryAfter, err = c.attempt(ctx, method, path, payload, out)
		if err == nil {
			return nil
		}
		var se *StatusError
		if errors.As(err, &se) {
			return err // permanent: retrying cannot help
		}
		if ctx.Err() != nil {
			return fmt.Errorf("%w: %s: %v", ErrShardUnavailable, c.Shard.Name, context.Cause(ctx))
		}
		lastErr = err
	}
	return fmt.Errorf("%w: %s: %v", ErrShardUnavailable, c.Shard.Name, lastErr)
}

// attempt is one HTTP round trip. It returns the shard's Retry-After hint
// (0 when absent) alongside the error.
func (c *Client) attempt(ctx context.Context, method, path string, payload []byte, out any) (time.Duration, error) {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Shard.URL+path, rd)
	if err != nil {
		return 0, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if key := TenantFrom(ctx); key != "" {
		req.Header.Set(tenant.Header, key)
	}
	if tv := TraceHeaderFrom(ctx); tv != "" {
		req.Header.Set(TraceHeader, tv)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return 0, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode < 300 {
		if out == nil {
			return 0, nil
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return 0, fmt.Errorf("cluster: decoding %s %s: %w", method, path, err)
		}
		return 0, nil
	}
	var eb errorBody
	_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb)
	retryable := resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests
	if !retryable {
		return 0, &StatusError{Status: resp.StatusCode, Reason: eb.Reason, Detail: eb.Error}
	}
	return parseRetryAfter(resp.Header.Get("Retry-After")),
		fmt.Errorf("cluster: %s %s: %d (%s)", method, path, resp.StatusCode, eb.Reason)
}

// parseRetryAfter reads a delay-seconds Retry-After value (the only form
// localityd emits), capped so a confused shard cannot stall the
// coordinator.
func parseRetryAfter(v string) time.Duration {
	secs, err := strconv.Atoi(v)
	if err != nil || secs <= 0 {
		return 0
	}
	const cap = 30 * time.Second
	if d := time.Duration(secs) * time.Second; d < cap {
		return d
	}
	return cap
}

// sleepCtx waits d (non-positive returns immediately), abandoning on ctx
// death.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

// drainClose exhausts and closes a response body so the transport can
// reuse the connection.
func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, 1<<20))
	_ = body.Close()
}
