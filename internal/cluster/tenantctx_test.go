package cluster_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"locality/internal/cluster"
	"locality/internal/tenant"
)

// TestClientForwardsTenantHeader: an API key attached with WithTenant rides
// every shard call as the tenant header, so worker-side quotas and metrics
// account coordinator-fronted work to the submitting tenant. Without the
// key, the header is absent and the shard treats the call as anonymous.
func TestClientForwardsTenantHeader(t *testing.T) {
	var mu sync.Mutex
	var keys []string
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		mu.Lock()
		keys = append(keys, r.Header.Get(tenant.Header))
		mu.Unlock()
		writeJSON(rw, http.StatusAccepted, map[string]string{"id": "job-0"})
	}))
	defer srv.Close()

	c := &cluster.Client{Shard: cluster.Shard{Name: "a", URL: srv.URL}}
	ctx := cluster.WithTenant(context.Background(), "tenant-key")
	if _, err := c.Submit(ctx, cluster.SubmitRequest{Experiment: "E8", Quick: true}); err != nil {
		t.Fatalf("submit with tenant: %v", err)
	}
	if _, err := c.Submit(context.Background(), cluster.SubmitRequest{Experiment: "E8", Quick: true}); err != nil {
		t.Fatalf("submit anonymous: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(keys) != 2 || keys[0] != "tenant-key" || keys[1] != "" {
		t.Errorf("shard saw tenant headers %q, want [tenant-key, empty]", keys)
	}
}

// TestTenantContextRoundTrip pins the context helpers' contract.
func TestTenantContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := cluster.TenantFrom(ctx); got != "" {
		t.Errorf("empty context yields %q", got)
	}
	if cluster.WithTenant(ctx, "") != ctx {
		t.Error("empty key should be a context no-op")
	}
	if got := cluster.TenantFrom(cluster.WithTenant(ctx, "k")); got != "k" {
		t.Errorf("round trip yields %q, want k", got)
	}
}
