package cluster

import "context"

// Trace propagation.
//
// The cluster package deliberately imports no tracer: internal/cluster is
// an obsinert hot package (localvet), where telemetry must be provably
// unable to influence failover decisions. It therefore handles tracing the
// same way it handles tenant identity — as an opaque string riding the
// context (tenantctx.go) — and reports its own timing through the
// fire-and-forget Options.OnSpan hook. The daemon's coordinator front-end
// (cmd/localityd) owns the tracer on both ends: it stamps the header value
// into the dispatch context and turns SpanEvents into real spans.

// TraceHeader is the HTTP header carrying the caller's span context on
// coordinator→shard requests. cmd/localityd parses it on the serving side;
// a test pins it equal to the trace package's canonical header name.
const TraceHeader = "Locality-Trace"

// SpanEvent is one completed coordinator timing interval, reported through
// Options.OnSpan. Instantaneous events (failover decisions, adoptions)
// carry Start == End. Attrs alternates key, value.
type SpanEvent struct {
	Name           string
	Shard          string
	StartUnixNanos int64
	EndUnixNanos   int64
	Attrs          []string
}

// span reports one completed interval through the hook, if attached.
func (c *Coordinator) span(name, shard string, start, end int64, attrs ...string) {
	if c.opts.OnSpan != nil {
		c.opts.OnSpan(SpanEvent{
			Name:           name,
			Shard:          shard,
			StartUnixNanos: start,
			EndUnixNanos:   end,
			Attrs:          attrs,
		})
	}
}

type traceCtxKey struct{}

// WithTraceHeader stamps the serialized span context that Client calls
// under ctx will forward as the Locality-Trace request header. The empty
// string disables forwarding (the zero state).
func WithTraceHeader(ctx context.Context, v string) context.Context {
	if v == "" {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, v)
}

// TraceHeaderFrom extracts the header value stamped by WithTraceHeader,
// or "" when the context carries none.
func TraceHeaderFrom(ctx context.Context) string {
	v, _ := ctx.Value(traceCtxKey{}).(string)
	return v
}
