package cluster

import "context"

// tenantCtxKey keys the submitting tenant's API key in a request context.
type tenantCtxKey struct{}

// WithTenant attaches a tenant API key to the context. Every shard call the
// Client issues under this context carries the key in the tenant header, so
// a coordinator-fronted sweep is accounted — quotas, fair share, metrics —
// to the tenant that submitted it, on every worker it touches. An empty key
// is a no-op (the request runs as the anonymous tenant shard-side).
func WithTenant(ctx context.Context, apiKey string) context.Context {
	if apiKey == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantCtxKey{}, apiKey)
}

// TenantFrom recovers the API key attached by WithTenant ("" when absent).
func TenantFrom(ctx context.Context) string {
	key, _ := ctx.Value(tenantCtxKey{}).(string)
	return key
}
