package cluster_test

// Cluster unit tests drive the coordinator against stub workers: real
// jobs.Pools behind minimal HTTP handlers speaking localityd's wire format,
// with injectable sheds and hard kills. The full-stack version — real
// localityd processes, SIGKILL — lives in cmd/localityd's e2e test.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"locality/internal/cluster"
	"locality/internal/harness"
	"locality/internal/jobs"
)

// stubWorker is one fake shard: a real pool behind the worker wire format.
type stubWorker struct {
	pool *jobs.Pool
	srv  *httptest.Server

	mu       sync.Mutex
	shedNext int // shed the next N submissions with 503 + Retry-After
	submits  int // total submit requests seen (shed or not)
}

func newStubWorker(t *testing.T, opts jobs.Options) *stubWorker {
	t.Helper()
	w := &stubWorker{pool: jobs.New(opts)}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", w.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}/checkpoint", w.handleCheckpoint)
	mux.HandleFunc("DELETE /v1/jobs/{id}", w.handleCancel)
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, http.StatusOK, map[string]string{"status": "ok"})
	})
	w.srv = httptest.NewServer(mux)
	t.Cleanup(func() {
		w.srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = w.pool.Close(ctx)
	})
	return w
}

func (w *stubWorker) handleSubmit(rw http.ResponseWriter, r *http.Request) {
	w.mu.Lock()
	w.submits++
	shed := w.shedNext > 0
	if shed {
		w.shedNext--
	}
	w.mu.Unlock()
	if shed {
		rw.Header().Set("Retry-After", "1")
		writeJSON(rw, http.StatusServiceUnavailable, map[string]any{
			"error": "stub shed", "reason": "queue_full"})
		return
	}
	var req cluster.SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(rw, http.StatusBadRequest, map[string]any{"error": err.Error(), "reason": "bad_request"})
		return
	}
	id, err := w.pool.Submit(jobs.Spec{
		Experiment: req.Experiment,
		Quick:      req.Quick,
		Seed:       req.Seed,
		Timeout:    time.Duration(req.TimeoutMS) * time.Millisecond,
		Workers:    req.Workers,
		Rows:       req.Rows,
	})
	if err != nil {
		writeJSON(rw, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	writeJSON(rw, http.StatusAccepted, map[string]string{"id": id})
}

func (w *stubWorker) handleCheckpoint(rw http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := w.pool.Get(id)
	if !ok {
		writeJSON(rw, http.StatusNotFound, map[string]any{"error": "unknown job", "reason": "not_found"})
		return
	}
	ck, _ := w.pool.Checkpoint(id)
	writeJSON(rw, http.StatusOK, cluster.CheckpointResponse{State: j.State, Checkpoint: ck})
}

func (w *stubWorker) handleCancel(rw http.ResponseWriter, r *http.Request) {
	if err := w.pool.Cancel(r.PathValue("id")); err != nil {
		writeJSON(rw, http.StatusNotFound, map[string]any{"error": err.Error(), "reason": "not_found"})
		return
	}
	writeJSON(rw, http.StatusAccepted, map[string]string{"status": "cancelling"})
}

func writeJSON(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	_ = json.NewEncoder(rw).Encode(v)
}

// runDirect renders the unsharded single-process ground truth.
func runDirect(t *testing.T, spec jobs.Spec) (string, int) {
	t.Helper()
	driver, ok := harness.ByID(spec.Experiment)
	if !ok {
		t.Fatalf("unknown experiment %s", spec.Experiment)
	}
	batches := 0
	tbl := driver(harness.Config{Quick: spec.Quick, Seed: spec.Seed,
		OnBatch: func(*harness.Checkpoint) { batches++ }})
	var buf bytes.Buffer
	tbl.Render(&buf)
	return buf.String(), batches
}

// fastOptions keeps coordinator test latency low.
func fastOptions(workers ...*stubWorker) cluster.Options {
	shards := make([]cluster.Shard, len(workers))
	for i, w := range workers {
		shards[i] = cluster.Shard{Name: string(rune('a' + i)), URL: w.srv.URL}
	}
	return cluster.Options{
		Shards:         shards,
		RequestTimeout: 2 * time.Second,
		Retries:        2,
		Backoff:        harness.Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond, Seed: 1},
		PollInterval:   15 * time.Millisecond,
		ProbeInterval:  15 * time.Millisecond,
		ProbeThreshold: 2,
	}
}

// TestMembershipParsing pins both membership syntaxes and their rejections.
func TestMembershipParsing(t *testing.T) {
	shards, err := cluster.ParseShards("http://a:1, two=http://b:2 ,")
	if err != nil {
		t.Fatal(err)
	}
	want := []cluster.Shard{{Name: "shard0", URL: "http://a:1"}, {Name: "two", URL: "http://b:2"}}
	if len(shards) != 2 || shards[0] != want[0] || shards[1] != want[1] {
		t.Errorf("ParseShards = %+v, want %+v", shards, want)
	}
	for _, bad := range []string{"", "a:1", "x=http://a,x=http://b", "x="} {
		if _, err := cluster.ParseShards(bad); err == nil {
			t.Errorf("ParseShards(%q) accepted", bad)
		}
	}

	path := filepath.Join(t.TempDir(), "members")
	content := "# cluster members\n\nhttp://a:1\nw2 = http://b:2\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	shards, err = cluster.LoadShards(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 || shards[1].Name != "w2" || shards[1].URL != "http://b:2" {
		t.Errorf("LoadShards = %+v", shards)
	}
	if _, err := cluster.LoadShards(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Error("LoadShards on a missing file accepted")
	}
}

// TestClientRetriesShedSubmit: a worker shedding with 503 + Retry-After is
// retried — the structured-shed satellite from the client's side. The
// Retry-After floor is honored: the second attempt waits the full stated
// second rather than the 5ms jitter schedule.
func TestClientRetriesShedSubmit(t *testing.T) {
	w := newStubWorker(t, jobs.Options{Workers: 1})
	w.mu.Lock()
	w.shedNext = 1
	w.mu.Unlock()
	c := &cluster.Client{
		Shard:   cluster.Shard{Name: "w", URL: w.srv.URL},
		HTTP:    &http.Client{Timeout: 2 * time.Second},
		Retries: 3,
		Backoff: harness.Backoff{Base: 5 * time.Millisecond, Seed: 1},
	}
	start := time.Now()
	id, err := c.Submit(context.Background(), cluster.SubmitRequest{Experiment: "E8", Quick: true, Seed: 1})
	if err != nil {
		t.Fatalf("submit through shed: %v", err)
	}
	if id == "" {
		t.Fatal("no job ID")
	}
	if elapsed := time.Since(start); elapsed < 800*time.Millisecond {
		t.Errorf("retry waited %v; Retry-After: 1 should floor the wait near 1s", elapsed)
	}
	w.mu.Lock()
	submits := w.submits
	w.mu.Unlock()
	if submits != 2 {
		t.Errorf("worker saw %d submits, want 2 (shed + accepted)", submits)
	}
}

// TestClientPermanentRejection: a 4xx other than 429 is not retried.
func TestClientPermanentRejection(t *testing.T) {
	w := newStubWorker(t, jobs.Options{Workers: 1})
	c := &cluster.Client{
		Shard:   cluster.Shard{Name: "w", URL: w.srv.URL},
		HTTP:    &http.Client{Timeout: 2 * time.Second},
		Retries: 3,
	}
	_, err := c.Submit(context.Background(), cluster.SubmitRequest{Experiment: "E99"})
	var se *cluster.StatusError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want *StatusError", err)
	}
	w.mu.Lock()
	submits := w.submits
	w.mu.Unlock()
	if submits != 1 {
		t.Errorf("worker saw %d submits, want 1 (no retry on permanent rejection)", submits)
	}
}

// TestProberFlipsAndHeals: Threshold consecutive failures flip the shard
// unhealthy; one success heals it.
func TestProberFlipsAndHeals(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			rw.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		rw.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	p := &cluster.Prober{
		Client: &cluster.Client{
			Shard: cluster.Shard{Name: "w", URL: srv.URL},
			HTTP:  &http.Client{Timeout: time.Second},
		},
		Interval:  10 * time.Millisecond,
		Backoff:   harness.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond, Seed: 1},
		Threshold: 2,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); p.Run(ctx) }()

	waitFor := func(want bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if p.Healthy() == want {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("prober never observed %s", what)
	}
	waitFor(true, "initial health")
	healthy.Store(false)
	waitFor(false, "unhealthy after threshold failures")
	healthy.Store(true)
	waitFor(true, "healing")
	cancel()
	<-done
}

// TestCoordinatorByteIdentical: the no-failure path — three healthy shards,
// merged output byte-identical to the single-process run, nothing
// recomputed locally, nothing lost.
func TestCoordinatorByteIdentical(t *testing.T) {
	spec := jobs.Spec{Experiment: "E4", Quick: true, Seed: 7}
	want, total := runDirect(t, spec)

	workers := []*stubWorker{
		newStubWorker(t, jobs.Options{Workers: 2}),
		newStubWorker(t, jobs.Options{Workers: 2}),
		newStubWorker(t, jobs.Options{Workers: 2}),
	}
	coord, err := cluster.New(fastOptions(workers...))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := coord.Run(ctx, spec)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Output != want {
		t.Errorf("cluster output differs from single-process run:\n--- want ---\n%s--- got ---\n%s", want, res.Output)
	}
	if res.TotalBatches != total || res.Lost != 0 || res.Recomputed != 0 || res.Retried != 0 {
		t.Errorf("total %d lost %d recomputed %d retried %d; want %d/0/0/0",
			res.TotalBatches, res.Lost, res.Recomputed, res.Retried, total)
	}
	adopted := 0
	for _, n := range res.Adopted {
		adopted += n
	}
	if adopted != total {
		t.Errorf("adopted %d batches across shards, want %d", adopted, total)
	}
}

// TestCoordinatorFailover kills one stub shard mid-sweep (server closed,
// its pool still burning CPU — exactly what a crashed process looks like
// from outside) and asserts the merged output is still byte-identical with
// zero batches lost.
func TestCoordinatorFailover(t *testing.T) {
	spec := jobs.Spec{Experiment: "E4", Quick: true, Seed: 7}
	want, total := runDirect(t, spec)

	// Every worker paces batches so the kill lands mid-sweep.
	pace := func(string, *harness.Checkpoint) { time.Sleep(25 * time.Millisecond) }
	var victim *stubWorker
	victimDone := make(chan struct{})
	var once sync.Once
	victim = newStubWorker(t, jobs.Options{Workers: 1,
		BatchHook: func(id string, ck *harness.Checkpoint) {
			pace(id, ck)
			once.Do(func() { close(victimDone) }) // first batch committed: killable
		}})
	w1 := newStubWorker(t, jobs.Options{Workers: 1, BatchHook: pace})
	w2 := newStubWorker(t, jobs.Options{Workers: 1, BatchHook: pace})

	go func() {
		<-victimDone
		victim.srv.Close() // hard kill: connections refused from now on
	}()

	coord, err := cluster.New(fastOptions(victim, w1, w2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	res, err := coord.Run(ctx, spec)
	if err != nil {
		t.Fatalf("run with dead shard: %v", err)
	}
	if res.Output != want {
		t.Errorf("failover output differs from single-process run:\n--- want ---\n%s--- got ---\n%s", want, res.Output)
	}
	if res.Lost != 0 {
		t.Errorf("lost %d batches", res.Lost)
	}
	if res.TotalBatches != total {
		t.Errorf("total %d, want %d", res.TotalBatches, total)
	}
	if res.Retried == 0 && res.Recomputed == 0 {
		t.Error("a shard died mid-sweep but nothing was retried or recomputed")
	}
	foundFailover := false
	for _, e := range res.Events {
		if e.Kind == "failover" {
			foundFailover = true
		}
	}
	if !foundFailover {
		t.Errorf("no failover event recorded; events: %+v", res.Events)
	}
}

// TestCoordinatorAllShardsDead: with the whole membership down, the
// endgame recomputes everything locally — degraded, never wrong.
func TestCoordinatorAllShardsDead(t *testing.T) {
	spec := jobs.Spec{Experiment: "E8", Quick: true, Seed: 3}
	want, total := runDirect(t, spec)
	opts := fastOptions()
	opts.Shards = []cluster.Shard{{Name: "ghost", URL: "http://127.0.0.1:1"}}
	coord, err := cluster.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := coord.Run(ctx, spec)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Output != want {
		t.Errorf("dead-cluster output differs:\n--- want ---\n%s--- got ---\n%s", want, res.Output)
	}
	if res.Recomputed != total || res.Lost != 0 {
		t.Errorf("recomputed %d lost %d, want %d/0", res.Recomputed, res.Lost, total)
	}
}
