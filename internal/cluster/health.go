package cluster

import (
	"context"
	"sync/atomic"
	"time"

	"locality/internal/harness"
)

// Prober watches one shard's /healthz. It probes every Interval while the
// shard answers; failures are re-probed on the deterministic-jitter
// Backoff schedule (harness.Backoff — attempt n of a failure streak waits
// Delay(n)), and Threshold consecutive failures flip the shard unhealthy.
// One success heals it: membership is static, so a restarted shard simply
// resumes service.
type Prober struct {
	// Client probes the shard (Health; no internal retries).
	Client *Client
	// Interval is the healthy-cadence between probes (default 500ms).
	Interval time.Duration
	// Backoff paces re-probes during a failure streak.
	Backoff harness.Backoff
	// Threshold is the consecutive-failure count that flips the shard
	// unhealthy (default 3).
	Threshold int
	// OnChange, when non-nil, observes health transitions (metrics,
	// events). Called from the prober goroutine.
	OnChange func(shard string, healthy bool)

	// down inverts the verdict so the zero value is healthy: dispatch may
	// consult Healthy before the probe goroutine has run at all, and a
	// never-probed shard must look alive (probers start optimistic).
	down  atomic.Bool
	fails int
}

// Healthy reports the shard's current probe verdict. Probers start
// optimistic: a shard is healthy until Threshold probes fail.
func (p *Prober) Healthy() bool { return !p.down.Load() }

// MarkUnhealthy force-flips the shard unhealthy — the coordinator calls it
// when job traffic (not probing) proves the shard gone, so dispatch
// decisions and probe verdicts stay coherent.
func (p *Prober) MarkUnhealthy() {
	if p.down.CompareAndSwap(false, true) && p.OnChange != nil {
		p.OnChange(p.Client.Shard.Name, false)
	}
}

func (p *Prober) interval() time.Duration {
	if p.Interval > 0 {
		return p.Interval
	}
	return 500 * time.Millisecond
}

func (p *Prober) threshold() int {
	if p.Threshold > 0 {
		return p.Threshold
	}
	return 3
}

// Run probes until ctx dies. Call it on its own goroutine.
func (p *Prober) Run(ctx context.Context) {
	for {
		wait := p.interval()
		if err := p.Client.Health(ctx); err != nil {
			p.fails++
			if p.fails >= p.threshold() {
				p.MarkUnhealthy()
			}
			// Failure streak: back off deterministically instead of
			// hammering a struggling shard at full cadence.
			if d := p.Backoff.Delay(p.fails); d > 0 {
				wait = d
			}
		} else {
			p.fails = 0
			if p.down.CompareAndSwap(true, false) && p.OnChange != nil {
				p.OnChange(p.Client.Shard.Name, true)
			}
		}
		if sleepCtx(ctx, wait) != nil || ctx.Err() != nil {
			return
		}
	}
}
