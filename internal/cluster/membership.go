// Package cluster implements the coordinator side of localityd's sharded
// cluster mode: static membership, a retrying HTTP shard client, per-shard
// health probing, and the coordinator loop that dispatches row shards,
// merges their checkpoints, and fails work over from dead shards.
//
// The whole design leans on one property: localvet-enforced determinism
// makes every sweep row batch idempotent, so recomputing a batch — on
// another shard, or locally in the coordinator's endgame — always produces
// the same bytes. Fault tolerance therefore needs no consensus, only
// disciplined failure handling: probe, time out, retry, reassign, and let
// harness.Checkpoint.Adopt detect the impossible (divergent batches)
// loudly. See DESIGN.md §10 for the argument in full.
package cluster

import (
	"fmt"
	"os"
	"strings"
)

// Shard is one worker localityd instance in the static membership.
type Shard struct {
	// Name labels the shard in metrics, events, and checkpoint origins.
	Name string
	// URL is the shard's API base, e.g. "http://127.0.0.1:8177".
	URL string
}

// ParseShards parses a comma-separated membership list. Each entry is
// either "name=url" or a bare URL (named shard0, shard1, ... by position).
func ParseShards(list string) ([]Shard, error) {
	var shards []Shard
	for _, entry := range strings.Split(list, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		shards = append(shards, parseShard(entry, len(shards)))
	}
	return validateShards(shards)
}

// LoadShards reads a membership file: one entry per line in the same
// name=url (or bare URL) syntax, with blank lines and #-comments ignored.
func LoadShards(path string) ([]Shard, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: membership file: %w", err)
	}
	var shards []Shard
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		shards = append(shards, parseShard(line, len(shards)))
	}
	return validateShards(shards)
}

func parseShard(entry string, index int) Shard {
	if name, url, ok := strings.Cut(entry, "="); ok {
		return Shard{Name: strings.TrimSpace(name), URL: strings.TrimSpace(url)}
	}
	return Shard{Name: fmt.Sprintf("shard%d", index), URL: entry}
}

func validateShards(shards []Shard) ([]Shard, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: empty membership")
	}
	seen := make(map[string]bool, len(shards))
	for _, s := range shards {
		if s.Name == "" || s.URL == "" {
			return nil, fmt.Errorf("cluster: malformed member %q=%q", s.Name, s.URL)
		}
		if !strings.Contains(s.URL, "://") {
			return nil, fmt.Errorf("cluster: member %s URL %q missing scheme", s.Name, s.URL)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("cluster: duplicate member name %q", s.Name)
		}
		seen[s.Name] = true
	}
	return shards, nil
}
