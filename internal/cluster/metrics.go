package cluster

import "locality/internal/obs"

// clusterMetrics is the coordinator's instrumentation, aggregated per shard
// on the coordinator's own /metrics. The cluster package is under the
// obsinert gate (cmd/localvet): coordination decisions must never consume
// telemetry, so every method here is a fire-and-forget statement chain and
// nothing ever reads a metric back. With a nil registry every call is a
// no-op (obs is nil-receiver safe).
type clusterMetrics struct {
	reg *obs.Registry
}

// retry counts a shard API call retried after a transient failure.
func (m clusterMetrics) retry() {
	m.reg.Counter("locality_cluster_client_retries_total",
		"Shard API calls retried after a transient failure.").Inc()
}

// failover counts an assignment reassigned off a shard.
func (m clusterMetrics) failover() {
	m.reg.Counter("locality_cluster_failovers_total",
		"Shard assignments reassigned after a shard died or its job failed.").Inc()
}

// retried counts batches recomputed by a surviving shard after failover.
func (m clusterMetrics) retried(n int) {
	m.reg.Counter("locality_cluster_batches_retried_total",
		"Row batches recomputed by a surviving shard after failover.").Add(int64(n))
}

// recomputed counts holes recomputed locally in the endgame.
func (m clusterMetrics) recomputed(n int) {
	m.reg.Counter("locality_cluster_batches_recomputed_total",
		"Checkpoint holes recomputed locally in the coordinator endgame.").Add(int64(n))
}

// rowsLost records the batches unaccounted for after merge and endgame —
// zero by construction, which is exactly why it is worth exporting.
func (m clusterMetrics) rowsLost(n int) {
	m.reg.Gauge("locality_cluster_rows_lost",
		"Row batches unaccounted for after merge and endgame (zero by construction).").Set(int64(n))
}

// shardHealthy records a shard's health as seen by the coordinator prober.
func (m clusterMetrics) shardHealthy(shard string, v int64) {
	m.reg.Gauge("locality_cluster_shard_healthy",
		"Shard health as seen by the coordinator prober (1 healthy).", "shard", shard).Set(v)
}

// adopted counts batches merged from one shard.
func (m clusterMetrics) adopted(shard string, n int) {
	m.reg.Counter("locality_cluster_batches_adopted_total",
		"Row batches adopted into the merged checkpoint, by computing shard.",
		"shard", shard).Add(int64(n))
}

// dispatched counts jobs submitted to one shard.
func (m clusterMetrics) dispatched(shard string) {
	m.reg.Counter("locality_cluster_dispatch_total",
		"Shard jobs dispatched, by shard.", "shard", shard).Inc()
}
