package obs

import (
	"os"
	"path/filepath"
	"sort"
)

// PruneDir bounds a telemetry artifact directory: among dir's entries
// matching the glob pattern, the oldest (by modification time, ties by
// name) are removed until at most max remain — the whole-file analogue
// of the result store's whole-segment eviction, for run reports and
// trace artifacts that would otherwise accumulate forever. max <= 0
// disables pruning. Errors are swallowed (telemetry cleanup must never
// fail the work that produced the files); the removed count is returned
// for tests.
func PruneDir(dir, pattern string, max int) int {
	if max <= 0 || dir == "" {
		return 0
	}
	names, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil || len(names) <= max {
		return 0
	}
	type entry struct {
		path string
		mod  int64
	}
	ents := make([]entry, 0, len(names))
	for _, p := range names {
		info, err := os.Stat(p)
		if err != nil || info.IsDir() {
			continue
		}
		ents = append(ents, entry{path: p, mod: info.ModTime().UnixNano()})
	}
	if len(ents) <= max {
		return 0
	}
	sort.Slice(ents, func(a, b int) bool {
		if ents[a].mod != ents[b].mod {
			return ents[a].mod < ents[b].mod
		}
		return ents[a].path < ents[b].path
	})
	removed := 0
	for _, e := range ents[:len(ents)-max] {
		if os.Remove(e.path) == nil {
			removed++
		}
	}
	return removed
}
