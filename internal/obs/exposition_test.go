package obs

// Exposition-surface pins for the observability PR: byte-stable /metrics
// ordering regardless of family registration order (including concurrent
// first-use), exemplar comment rendering, the build-info identity gauge,
// and FIFO artifact-directory pruning.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWritePromByteStable pins the exposition contract the differential
// harness relies on: whatever order the tenant/store/cluster metric
// families first materialize in — sequential, reversed, or racing
// first-use from concurrent goroutines — identical metric values render
// identical bytes.
func TestWritePromByteStable(t *testing.T) {
	populate := []func(r *Registry){
		func(r *Registry) {
			r.Counter("locality_tenant_admitted_total", "Submissions admitted, by tenant.", "tenant", "anonymous").Inc()
			r.Counter("locality_tenant_admitted_total", "Submissions admitted, by tenant.", "tenant", "other").Add(2)
		},
		func(r *Registry) {
			r.Gauge("locality_store_segments", "Result store segments resident.").Set(3)
		},
		func(r *Registry) {
			r.Counter("locality_cluster_failovers_total", "Shard failovers.").Inc()
		},
		func(r *Registry) {
			r.Histogram("locality_http_request_seconds", "Request latency.", DefTimeBuckets, "route", "submit").Observe(0.002)
		},
	}
	render := func(order []int, concurrent bool) string {
		reg := NewRegistry()
		if concurrent {
			var wg sync.WaitGroup
			for _, i := range order {
				wg.Add(1)
				go func(f func(*Registry)) {
					defer wg.Done()
					f(reg)
				}(populate[i])
			}
			wg.Wait()
		} else {
			for _, i := range order {
				populate[i](reg)
			}
		}
		var buf bytes.Buffer
		if err := reg.WriteProm(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	want := render([]int{0, 1, 2, 3}, false)
	if got := render([]int{3, 2, 1, 0}, false); got != want {
		t.Errorf("reversed registration order changed exposition bytes:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	for i := 0; i < 5; i++ {
		if got := render([]int{0, 1, 2, 3}, true); got != want {
			t.Fatalf("concurrent first-use changed exposition bytes (iter %d):\n--- want ---\n%s--- got ---\n%s", i, want, got)
		}
	}
}

// TestHistogramExemplar pins the trace link: ObserveExemplar renders an
// EXEMPLAR comment line after the series, and — because exemplars are
// metadata, not values — the numeric series stays byte-identical to
// plain Observe calls.
func TestHistogramExemplar(t *testing.T) {
	plain, traced := NewRegistry(), NewRegistry()
	plain.Histogram("locality_http_request_seconds", "Request latency.", DefTimeBuckets, "route", "submit").Observe(0.002)
	traced.Histogram("locality_http_request_seconds", "Request latency.", DefTimeBuckets, "route", "submit").
		ObserveExemplar(0.002, "0a1b2c3d4e5f6071")

	var pb, tb bytes.Buffer
	if err := plain.WriteProm(&pb); err != nil {
		t.Fatal(err)
	}
	if err := traced.WriteProm(&tb); err != nil {
		t.Fatal(err)
	}
	wantLine := `# EXEMPLAR locality_http_request_seconds{route="submit"} trace="0a1b2c3d4e5f6071"`
	if !strings.Contains(tb.String(), wantLine+"\n") {
		t.Errorf("exposition missing exemplar line %q:\n%s", wantLine, tb.String())
	}
	// Strip the comment line: everything else must match the plain run.
	stripped := strings.ReplaceAll(tb.String(), wantLine+"\n", "")
	if stripped != pb.String() {
		t.Errorf("exemplar changed metric values:\n--- plain ---\n%s--- traced (stripped) ---\n%s", pb.String(), stripped)
	}
}

// TestRegisterBuildInfo pins the provenance gauge: one series, value 1,
// identity entirely in the labels.
func TestRegisterBuildInfo(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg)
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "locality_build_info{") {
		t.Fatalf("exposition missing locality_build_info:\n%s", out)
	}
	for _, label := range []string{`go_version="go`, `goos="`, `goarch="`, `version="`} {
		if !strings.Contains(out, label) {
			t.Errorf("build info missing label %s:\n%s", label, out)
		}
	}
	line := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "locality_build_info{") {
			line = l
		}
	}
	if !strings.HasSuffix(line, "} 1") {
		t.Errorf("build info value line %q, want value 1", line)
	}
	// Idempotent: re-registering must not grow the label space.
	RegisterBuildInfo(reg)
	var again bytes.Buffer
	if err := reg.WriteProm(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != out {
		t.Errorf("re-registration changed exposition:\n--- first ---\n%s--- second ---\n%s", out, again.String())
	}
	// Nil-registry safe, like every obs entry point.
	RegisterBuildInfo(nil)
}

// TestPruneDir pins the FIFO bound: oldest files (mtime, ties by name)
// go first, non-matching files survive, max<=0 disables.
func TestPruneDir(t *testing.T) {
	dir := t.TempDir()
	base := time.Now().Add(-time.Hour)
	for i, name := range []string{"a.report.jsonl", "b.report.jsonl", "c.report.jsonl", "d.report.jsonl"} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(p, mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	keep := filepath.Join(dir, "keep.trace.jsonl")
	if err := os.WriteFile(keep, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	if n := PruneDir(dir, "*.report.jsonl", 0); n != 0 {
		t.Errorf("max=0 removed %d files", n)
	}
	if n := PruneDir(dir, "*.report.jsonl", 10); n != 0 {
		t.Errorf("under budget removed %d files", n)
	}
	if n := PruneDir(dir, "*.report.jsonl", 2); n != 2 {
		t.Errorf("removed %d files, want 2", n)
	}
	for _, gone := range []string{"a.report.jsonl", "b.report.jsonl"} {
		if _, err := os.Stat(filepath.Join(dir, gone)); !os.IsNotExist(err) {
			t.Errorf("oldest file %s still present", gone)
		}
	}
	for _, there := range []string{"c.report.jsonl", "d.report.jsonl", "keep.trace.jsonl"} {
		if _, err := os.Stat(filepath.Join(dir, there)); err != nil {
			t.Errorf("file %s should have survived: %v", there, err)
		}
	}

	// Equal mtimes: ties break by name, deterministically.
	tie := time.Now().Add(-time.Minute)
	for _, name := range []string{"t1.report.jsonl", "t2.report.jsonl", "t3.report.jsonl"} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(p, tie, tie); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Remove(filepath.Join(dir, "c.report.jsonl")); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "d.report.jsonl")); err != nil {
		t.Fatal(err)
	}
	if n := PruneDir(dir, "*.report.jsonl", 1); n != 2 {
		t.Errorf("tie prune removed %d, want 2", n)
	}
	if _, err := os.Stat(filepath.Join(dir, "t3.report.jsonl")); err != nil {
		t.Errorf("lexicographically last tie should survive: %v", err)
	}
}
