package obs

import (
	"runtime"
	"runtime/debug"
)

// Version reports the module's build version from the embedded build
// info: the module version for a released binary, the VCS revision
// (truncated) for a source build, "(devel)" when neither is stamped.
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "(devel)"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && len(s.Value) >= 12 {
			return s.Value[:12]
		}
	}
	return "(devel)"
}

// RegisterBuildInfo sets the locality_build_info gauge: the standard
// build-provenance identity series (value always 1, identity in the
// labels), so a scrape can tell which build produced the numbers next
// to it. Nil-registry safe.
func RegisterBuildInfo(r *Registry) {
	r.Gauge("locality_build_info",
		"Build provenance; the value is always 1, the identity is in the labels.",
		"go_version", runtime.Version(),
		"goos", runtime.GOOS,
		"goarch", runtime.GOARCH,
		"version", Version(),
	).Set(1)
}
