package obs

import "math"

// Quantile returns a conservative (upper-bound) estimate of the q-quantile
// of the observed samples: the upper bound of the first bucket whose
// cumulative count reaches q of the total. Because the estimate is
// quantized to the fixed bucket bounds, it is stable across runs whose
// samples land in the same buckets — the property the load-baseline
// regression gate relies on. Samples beyond the last finite bucket yield
// +Inf. A nil or empty histogram returns 0; q is clamped to [0, 1].
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= target {
			if i < len(h.upper) {
				return h.upper[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// Buckets returns a snapshot of the histogram's bucket upper bounds and
// their non-cumulative counts; the final count is the implicit +Inf
// bucket's, so len(counts) == len(upper)+1. Nil-safe (returns nils). Like
// the exposition, the snapshot is eventually consistent under concurrent
// Observe calls.
func (h *Histogram) Buckets() (upper []float64, counts []int64) {
	if h == nil {
		return nil, nil
	}
	upper = append([]float64(nil), h.upper...)
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return upper, counts
}
