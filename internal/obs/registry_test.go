package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestWritePromGolden pins the exposition format: sorted families, sorted
// series, histogram cumulative buckets with _sum/_count. The byte-exact
// golden is what lets a scrape config trust the output shape.
func TestWritePromGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_requests_total", "Requests by route.", "route", "list").Add(3)
	r.Counter("app_requests_total", "Requests by route.", "route", "get").Inc()
	r.Gauge("app_queue_depth", "Queued items.").Set(7)
	h := r.Histogram("app_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2.5)

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_latency_seconds Latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.1"} 1
app_latency_seconds_bucket{le="1"} 2
app_latency_seconds_bucket{le="+Inf"} 3
app_latency_seconds_sum 3.05
app_latency_seconds_count 3
# HELP app_queue_depth Queued items.
# TYPE app_queue_depth gauge
app_queue_depth 7
# HELP app_requests_total Requests by route.
# TYPE app_requests_total counter
app_requests_total{route="get"} 1
app_requests_total{route="list"} 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestWritePromDeterministic asserts two identical registries render
// byte-identically regardless of registration interleaving.
func TestWritePromDeterministic(t *testing.T) {
	build := func(order []string) string {
		r := NewRegistry()
		for _, name := range order {
			r.Counter(name, "c "+name).Add(int64(len(name)))
		}
		var b strings.Builder
		if err := r.WriteProm(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a := build([]string{"m_a", "m_b", "m_c"})
	b := build([]string{"m_c", "m_a", "m_b"})
	if a != b {
		t.Errorf("registration order leaked into exposition:\n%s\nvs\n%s", a, b)
	}
}

// TestNilSafety: a nil registry and the nil metrics it yields are valid
// no-ops — the "telemetry disabled" idiom must never panic.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Errorf("nil counter Value = %d, want 0", c.Value())
	}
	g := r.Gauge("g", "g")
	g.Set(3)
	g.Add(-2)
	g.Inc()
	g.Dec()
	if g.Value() != 0 {
		t.Errorf("nil gauge Value = %d, want 0", g.Value())
	}
	h := r.Histogram("h", "h", []float64{1})
	h.Observe(0.5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("nil histogram Count/Sum = %d/%g, want 0/0", h.Count(), h.Sum())
	}
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil || b.Len() != 0 {
		t.Errorf("nil registry WriteProm = (%q, %v), want empty, nil", b.String(), err)
	}
}

// TestCounterMonotonic: non-positive deltas are ignored.
func TestCounterMonotonic(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mono_total", "m")
	c.Add(2)
	c.Add(0)
	c.Add(-7)
	if c.Value() != 2 {
		t.Errorf("Value = %d, want 2", c.Value())
	}
}

// TestIdentity: same (name, labels) returns the same series; conflicting
// kind or help panics.
func TestIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("id_total", "h", "k", "v")
	b := r.Counter("id_total", "h", "k", "v")
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	if c := r.Counter("id_total", "h", "k", "w"); c == a {
		t.Error("distinct labels returned the same counter")
	}
	mustPanic(t, "kind conflict", func() { r.Gauge("id_total", "h") })
	mustPanic(t, "help conflict", func() { r.Counter("id_total", "other help") })
	mustPanic(t, "odd labels", func() { r.Counter("odd_total", "h", "k") })
	mustPanic(t, "non-increasing buckets", func() {
		r.Histogram("hb", "h", []float64{1, 1})
	})
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

// TestConcurrent hammers one counter, gauge and histogram from many
// goroutines; run under -race this is the data-race gate, and the final
// values are exact because every update is atomic.
func TestConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "c")
	g := r.Gauge("conc_gauge", "g")
	h := r.Histogram("conc_seconds", "h", []float64{0.5})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge = %d, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if want := 0.25 * workers * per; h.Sum() != want {
		t.Errorf("histogram sum = %g, want %g", h.Sum(), want)
	}
}

// TestRegistryConcurrentFirstUse races series *creation*, not just updates:
// many goroutines resolve the same (name, labels) series for the first time
// simultaneously, as concurrent HTTP requests on one route do. Family and
// series resolution must share one critical section and converge on one
// instance — the counter totals only add up if every goroutine got the
// same counter.
func TestRegistryConcurrentFirstUse(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	var wg sync.WaitGroup
	counters := make([]*Counter, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("first_use_total", "c", "route", "submit")
			c.Inc()
			counters[w] = c
			r.Gauge("first_use_gauge", "g", "route", "submit").Inc()
			r.Histogram("first_use_seconds", "h", []float64{1}, "route", "submit").Observe(0.5)
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if counters[w] != counters[0] {
			t.Fatalf("goroutine %d resolved a different counter instance", w)
		}
	}
	if got := counters[0].Value(); got != workers {
		t.Errorf("counter = %d, want %d (lost first-use registrations)", got, workers)
	}
}
