package obs

// This file is the observability layer's single sanctioned wall-clock
// consumer, carved out of the localvet nowallclock ban (cmd/localvet
// AllowFiles). Everything else in internal/obs handles time.Time and
// time.Duration values produced here; no other file may read the clock.
// The carve-out is safe because obs output (run reports, latency
// histograms) is explicitly wall-clock telemetry and is never consulted by
// model or harness code — the inertness contract of DESIGN.md §9.

import "time"

// now reads the wall clock.
func now() time.Time { return time.Now() }

// since measures elapsed wall-clock time from t.
func since(t time.Time) time.Duration { return time.Since(t) }
