// Package obs is the observability layer: a stdlib-only metrics registry
// (counters, gauges, fixed-bucket histograms) with Prometheus text-format
// exposition, and a round-level JSONL run-report sink fed by the simulator
// and harness hook points.
//
// The package is designed around one hard requirement, the observability
// contract of DESIGN.md §9: telemetry must be provably inert. Nothing in
// this package is ever consulted by model or harness code to make a
// decision — hot paths call obs only through fire-and-forget hooks (a rule
// the localvet obsinert analyzer enforces statically), every metric type is
// nil-receiver safe so "telemetry off" is a nil pointer and zero work, and
// rendered tables, checkpoints and BENCH artifacts are byte-identical with
// telemetry on or off (differentially test-asserted).
//
// Wall-clock reads are confined to clock.go, the package's single
// sanctioned clock file (a localvet nowallclock carve-out): timing lives in
// run reports and /metrics, never in results.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A Registry holds metric families and renders them in Prometheus text
// exposition format. The zero value is not usable; construct with
// NewRegistry. A nil *Registry is valid everywhere and yields nil metrics
// whose methods are no-ops — the idiom for "telemetry disabled".
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// family is one metric name: its metadata and its label-distinguished
// series.
type family struct {
	name    string
	help    string
	kind    string // "counter", "gauge", "histogram"
	buckets []float64
	series  map[string]any // rendered label key -> *Counter/*Gauge/*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Counter returns the counter for name with the given label pairs
// (key, value, key, value, ...), creating it on first use. Repeated calls
// with the same name and labels return the same counter. Registering one
// name with conflicting kinds or help strings panics: metric identity is a
// programming contract, not runtime input. On a nil registry it returns
// nil, which is a valid no-op counter.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.series(name, help, "counter", nil, labels,
		func(*family) any { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge for name and labels, creating it on first use
// (same identity rules as Counter). Nil-registry safe.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.series(name, help, "gauge", nil, labels,
		func(*family) any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the fixed-bucket histogram for name and labels,
// creating it on first use. buckets are upper bounds in increasing order;
// a +Inf bucket is implicit. All series of one family share the family's
// first-registered buckets. Nil-registry safe.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.series(name, help, "histogram", buckets, labels,
		func(f *family) any { return newHistogram(f.buckets) }).(*Histogram)
}

// series resolves (creating if needed) the family AND the labeled series
// in one critical section. Both maps live under the registry mutex —
// resolving the family under the lock but touching f.series outside it
// would race two first-use callers on the same route (and did, once the
// load rig sent concurrent traffic at one handler).
func (r *Registry) series(name, help, kind string, buckets []float64, labels []string, mk func(*family) any) any {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %s: odd label list %q", name, labels))
	}
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind,
			buckets: append([]float64(nil), buckets...), series: make(map[string]any)}
		r.fams[name] = f
	} else {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.kind, kind))
		}
		if f.help != help {
			panic(fmt.Sprintf("obs: metric %s registered with two help strings", name))
		}
	}
	if s, ok := f.series[key]; ok {
		return s
	}
	s := mk(f)
	f.series[key] = s
	return s
}

// labelKey renders the label pairs as the exposition's {k="v",...} block;
// empty for an unlabeled series. Pair order is the caller's, so call sites
// must use one canonical order per family (they do: each family is created
// by one wiring site).
func labelKey(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// A Counter is a monotonically increasing int64. All methods are safe for
// concurrent use and are no-ops on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d (non-positive deltas are ignored: counters only rise).
func (c *Counter) Add(d int64) {
	if c == nil || d <= 0 {
		return
	}
	c.v.Add(d)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// A Gauge is an int64 that can go up and down. Nil-receiver safe.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the value by d (negative allowed).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// A Histogram counts observations into fixed buckets (upper bounds, +Inf
// implicit) and tracks their sum. Nil-receiver safe; concurrent Observe
// calls are lock-free (the exposition snapshot is eventually consistent,
// as is conventional for Prometheus clients).
type Histogram struct {
	upper  []float64
	counts []atomic.Int64 // len(upper)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	// exemplar holds the most recent trace ID observed alongside a
	// sample (ObserveExemplar) — rendered as an EXEMPLAR comment line so
	// a latency series links back to a concrete trace in cmd/localtrace.
	exemplar atomic.Pointer[string]
}

func newHistogram(upper []float64) *Histogram {
	for i := 1; i < len(upper); i++ {
		if upper[i] <= upper[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not increasing: %v", upper))
		}
	}
	return &Histogram{upper: upper, counts: make([]atomic.Int64, len(upper)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveExemplar records one sample and attaches traceID as the
// series' exemplar (the latest one wins; an empty ID records the sample
// only). Exemplars are exposition metadata, never metric values: the
// numeric series is identical to plain Observe calls.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	h.Observe(v)
	if traceID != "" {
		h.exemplar.Store(&traceID)
	}
}

// Exemplar returns the series' most recent exemplar trace ID ("" when
// none was ever attached).
func (h *Histogram) Exemplar() string {
	if h == nil {
		return ""
	}
	if p := h.exemplar.Load(); p != nil {
		return *p
	}
	return ""
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// DefTimeBuckets are the default latency buckets, in seconds.
var DefTimeBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// WriteProm renders every family in Prometheus text exposition format
// (version 0.0.4): families sorted by name, series by label key, so the
// output is deterministic given identical metric values — the property the
// golden tests pin. A nil registry writes nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.fams[name]
	}
	r.mu.Unlock()

	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
			return err
		}
		r.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		r.mu.Unlock()
		sort.Strings(keys)
		for _, k := range keys {
			r.mu.Lock()
			s := f.series[k]
			r.mu.Unlock()
			if err := writeSeries(w, f, k, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSeries renders one series of a family.
func writeSeries(w io.Writer, f *family, key string, s any) error {
	switch m := s.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, key, m.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, key, m.Value())
		return err
	case *Histogram:
		cum := int64(0)
		for i := range m.counts {
			cum += m.counts[i].Load()
			le := "+Inf"
			if i < len(m.upper) {
				le = formatFloat(m.upper[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, mergeLabels(key, `le="`+le+`"`), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, key, formatFloat(m.Sum())); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, key, m.Count()); err != nil {
			return err
		}
		// Exemplars ride a comment line: version 0.0.4 has no exemplar
		// syntax, and comments are ignored by every conforming parser,
		// so the trace link costs nothing in compatibility.
		if ex := m.Exemplar(); ex != "" {
			_, err := fmt.Fprintf(w, "# EXEMPLAR %s%s trace=\"%s\"\n", f.name, key, escapeLabel(ex))
			return err
		}
		return nil
	}
	return fmt.Errorf("obs: unknown series type %T", s)
}

// mergeLabels appends one extra rendered label to a label key.
func mergeLabels(key, extra string) string {
	if key == "" {
		return "{" + extra + "}"
	}
	return key[:len(key)-1] + "," + extra + "}"
}

// formatFloat renders a float the way the exposition format expects.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
