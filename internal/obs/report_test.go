package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"runtime"
	"sync"
	"testing"

	"locality/internal/sim"
)

// decodeLines parses every JSONL record of a report.
func decodeLines(t *testing.T, raw []byte) []map[string]any {
	t.Helper()
	var recs []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		recs = append(recs, m)
	}
	return recs
}

func TestRunReportStructure(t *testing.T) {
	var buf bytes.Buffer
	r := NewRunReport(&buf, ReportMeta{Experiment: "E2", Seed: 7, Quick: true, Workers: 2})
	r.SimRound("E2", sim.RoundStats{Round: 1, Messages: 10, Bytes: 80, Active: 5, Halted: 2})
	r.SimRound("E2", sim.RoundStats{Round: 2, Messages: 3, Bytes: 24, Active: 3, Halted: 5})
	r.BatchDone("E2", 1, 4)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	recs := decodeLines(t, buf.Bytes())
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5 (meta, 2 rounds, batch, summary)", len(recs))
	}
	meta := recs[0]
	if meta["type"] != "meta" || meta["schema"] != ReportSchema {
		t.Errorf("meta record = %v", meta)
	}
	for _, key := range []string{"go", "goos", "goarch", "gomaxprocs", "stamp"} {
		if _, ok := meta[key]; !ok {
			t.Errorf("meta record missing provenance key %q", key)
		}
	}
	if meta["go"] != runtime.Version() || meta["goos"] != runtime.GOOS {
		t.Errorf("meta provenance = %v/%v, want %s/%s", meta["go"], meta["goos"], runtime.Version(), runtime.GOOS)
	}
	if meta["experiment"] != "E2" || meta["seed"] != float64(7) || meta["quick"] != true || meta["workers"] != float64(2) {
		t.Errorf("meta identity = %v", meta)
	}

	round := recs[1]
	if round["type"] != "round" || round["experiment"] != "E2" ||
		round["round"] != float64(1) || round["messages"] != float64(10) ||
		round["bytes"] != float64(80) || round["active"] != float64(5) || round["halted"] != float64(2) {
		t.Errorf("round record = %v", round)
	}

	batch := recs[3]
	if batch["type"] != "batch" || batch["batches"] != float64(1) || batch["rows"] != float64(4) {
		t.Errorf("batch record = %v", batch)
	}
	if _, ok := batch["elapsed_ms"]; !ok {
		t.Errorf("batch record missing elapsed_ms: %v", batch)
	}

	sum := recs[4]
	if sum["type"] != "summary" || sum["total_rounds"] != float64(2) ||
		sum["total_messages"] != float64(13) || sum["total_bytes"] != float64(104) ||
		sum["total_batches"] != float64(1) || sum["total_rows"] != float64(4) {
		t.Errorf("summary record = %v", sum)
	}
}

// TestRunReportNil: a nil report is the disabled sink — every method is a
// safe no-op.
func TestRunReportNil(t *testing.T) {
	var r *RunReport
	r.SimRound("E1", sim.RoundStats{Round: 1})
	r.BatchDone("E1", 1, 1)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRunReportConcurrent: parallel sweep workers interleave records; under
// -race this is the report's data-race gate, and every record must still be
// valid JSONL.
func TestRunReportConcurrent(t *testing.T) {
	var buf bytes.Buffer
	r := NewRunReport(&buf, ReportMeta{Experiment: "all"})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= 50; i++ {
				r.SimRound("E2", sim.RoundStats{Round: i, Messages: 1, Bytes: 8, Active: 1})
			}
		}(w)
	}
	wg.Wait()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	recs := decodeLines(t, buf.Bytes())
	if len(recs) != 1+8*50+1 {
		t.Fatalf("got %d records, want %d", len(recs), 1+8*50+1)
	}
	if sum := recs[len(recs)-1]; sum["total_rounds"] != float64(8*50) || sum["total_messages"] != float64(8*50) {
		t.Errorf("summary = %v", sum)
	}
}
