package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"runtime"
	"sync"
	"time"

	"locality/internal/sim"
)

// ReportSchema versions the run-report JSONL layout.
const ReportSchema = "locality-runreport/v1"

// ReportMeta identifies the run a report describes. Environment provenance
// (Go version, GOOS/GOARCH, GOMAXPROCS) is stamped automatically.
type ReportMeta struct {
	// Experiment is the sweep's table ID, or "all" for a suite run.
	Experiment string
	// Seed, Quick and Workers mirror the harness Config that drove the
	// sweep.
	Seed    uint64
	Quick   bool
	Workers int
}

// A RunReport is a JSONL trace sink for one sweep: a meta record, then one
// record per completed simulator round and per committed row batch, then a
// summary. It implements the harness Observer hook shape (SimRound,
// BatchDone), so attaching it is one field assignment, and it is safe for
// concurrent use — parallel sweep workers interleave their records, each
// self-describing via its experiment field.
//
// A report observes and never influences: it is wall-clock telemetry by
// design (the repository's byte-identity guarantees cover tables,
// checkpoints and BENCH artifacts, not reports), and a sweep's results are
// identical with or without one attached.
type RunReport struct {
	mu        sync.Mutex
	w         *bufio.Writer
	enc       *json.Encoder
	err       error
	start     time.Time
	lastBatch time.Time

	rounds   int64
	messages int64
	bytes    int64
	batches  int
	rows     int
}

// reportRecord is the union of all JSONL line shapes; Type discriminates.
type reportRecord struct {
	Type string `json:"type"`

	// meta
	Schema     string `json:"schema,omitempty"`
	Stamp      string `json:"stamp,omitempty"`
	Go         string `json:"go,omitempty"`
	GOOS       string `json:"goos,omitempty"`
	GOARCH     string `json:"goarch,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs,omitempty"`
	Seed       uint64 `json:"seed,omitempty"`
	Quick      bool   `json:"quick,omitempty"`
	Workers    int    `json:"workers,omitempty"`

	// round and batch
	Experiment string `json:"experiment,omitempty"`
	Round      int    `json:"round,omitempty"`
	Messages   int64  `json:"messages,omitempty"`
	Bytes      int64  `json:"bytes,omitempty"`
	Active     int    `json:"active,omitempty"`
	Halted     int    `json:"halted,omitempty"`

	Batches    int     `json:"batches,omitempty"`
	Rows       int     `json:"rows,omitempty"`
	ElapsedMS  float64 `json:"elapsed_ms,omitempty"`
	RowsPerSec float64 `json:"rows_per_sec,omitempty"`

	// summary
	TotalRounds   int64 `json:"total_rounds,omitempty"`
	TotalMessages int64 `json:"total_messages,omitempty"`
	TotalBytes    int64 `json:"total_bytes,omitempty"`
	TotalBatches  int   `json:"total_batches,omitempty"`
	TotalRows     int   `json:"total_rows,omitempty"`
}

// NewRunReport starts a run report on w, writing the meta record
// immediately. The caller owns w; Close flushes but does not close it.
func NewRunReport(w io.Writer, meta ReportMeta) *RunReport {
	bw := bufio.NewWriter(w)
	r := &RunReport{w: bw, enc: json.NewEncoder(bw), start: now()}
	r.lastBatch = r.start
	r.write(reportRecord{
		Type:       "meta",
		Schema:     ReportSchema,
		Stamp:      r.start.UTC().Format(time.RFC3339Nano),
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Experiment: meta.Experiment,
		Seed:       meta.Seed,
		Quick:      meta.Quick,
		Workers:    meta.Workers,
	})
	return r
}

// write encodes one record under the lock, latching the first error.
func (r *RunReport) write(rec reportRecord) {
	if r.err != nil {
		return
	}
	r.err = r.enc.Encode(rec)
}

// SimRound records one completed simulator round (the sim.Config
// OnRoundStats hook, forwarded by the harness Observer wiring).
func (r *RunReport) SimRound(experiment string, s sim.RoundStats) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rounds++
	r.messages += s.Messages
	r.bytes += s.Bytes
	r.write(reportRecord{
		Type:       "round",
		Experiment: experiment,
		Round:      s.Round,
		Messages:   s.Messages,
		Bytes:      s.Bytes,
		Active:     s.Active,
		Halted:     s.Halted,
	})
}

// BatchDone records one committed row batch with its wall-clock timing:
// elapsed since the previous commit and the batch's rows/s.
func (r *RunReport) BatchDone(experiment string, batches, rowsInBatch int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := now()
	elapsed := t.Sub(r.lastBatch)
	r.lastBatch = t
	r.batches = batches
	r.rows += rowsInBatch
	rec := reportRecord{
		Type:       "batch",
		Experiment: experiment,
		Batches:    batches,
		Rows:       rowsInBatch,
		ElapsedMS:  float64(elapsed.Nanoseconds()) / 1e6,
	}
	if elapsed > 0 {
		rec.RowsPerSec = float64(rowsInBatch) / elapsed.Seconds()
	}
	r.write(rec)
}

// Close writes the summary record and flushes. It returns the first error
// encountered anywhere in the report's lifetime. The report must not be
// used afterwards.
func (r *RunReport) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.write(reportRecord{
		Type:          "summary",
		ElapsedMS:     float64(since(r.start).Nanoseconds()) / 1e6,
		TotalRounds:   r.rounds,
		TotalMessages: r.messages,
		TotalBytes:    r.bytes,
		TotalBatches:  r.batches,
		TotalRows:     r.rows,
	})
	if err := r.w.Flush(); r.err == nil {
		r.err = err
	}
	return r.err
}
