package trace

// Trace-artifact analysis: loading JSONL artifacts from one or many
// processes, reassembling the causal tree, and attributing time — the
// library half of cmd/localtrace, shared with the cluster e2e tests so
// the CI gate and the CLI agree on what "a complete tree" means.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A LoadResult is the parsed content of one or more trace artifacts.
type LoadResult struct {
	// Spans holds every well-formed span record, in file-then-line order.
	Spans []Record
	// Files counts the artifacts read.
	Files int
	// Truncated counts artifacts whose final line was torn — the
	// signature of a process killed mid-write. Tolerated (mirroring the
	// result store's torn-tail recovery): the span being written at the
	// kill is lost, which a kill makes true anyway.
	Truncated int
}

// Load reads trace artifacts from the given paths. A directory expands
// to its *.trace.jsonl entries (sorted, so results are deterministic).
// Malformed records anywhere but a file's final line are errors: the
// artifact is corrupt, not merely torn.
func Load(paths ...string) (*LoadResult, error) {
	var files []string
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		if !info.IsDir() {
			files = append(files, p)
			continue
		}
		ents, err := fs.Glob(os.DirFS(p), "*.trace.jsonl")
		if err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		sort.Strings(ents)
		for _, e := range ents {
			files = append(files, filepath.Join(p, e))
		}
	}
	res := &LoadResult{}
	for _, f := range files {
		if err := res.loadFile(f); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// loadFile parses one artifact into res.
func (res *LoadResult) loadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	res.Files++

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var pending []Record // held back one line so a torn tail can be excused
	var tornAt int
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		if tornAt > 0 {
			return fmt.Errorf("trace: %s:%d: malformed record (not a torn tail: lines follow)", path, tornAt)
		}
		var rec Record
		if err := json.Unmarshal([]byte(raw), &rec); err != nil {
			tornAt = line
			continue
		}
		switch rec.Type {
		case "meta":
			if rec.Schema != Schema {
				return fmt.Errorf("trace: %s:%d: schema %q, want %q", path, line, rec.Schema, Schema)
			}
		case "span":
			if rec.Span == "" || rec.Name == "" || rec.Start <= 0 || rec.Dur < 0 {
				tornAt = line
				continue
			}
			pending = append(pending, rec)
		default:
			tornAt = line
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("trace: %s: %w", path, err)
	}
	if tornAt > 0 {
		res.Truncated++
	}
	res.Spans = append(res.Spans, pending...)
	return nil
}

// A Node is one span in an assembled tree.
type Node struct {
	Record
	Children []*Node
}

// End returns the span's end time in Unix nanos.
func (n *Node) End() int64 { return n.Start + n.Dur }

// A Tree groups one trace's spans under their roots.
type Tree struct {
	// ID is the effective trace ID: a span with an empty trace field
	// inherits its root ancestor's (children emitted before their parent
	// joined a trace still group correctly).
	ID string
	// Roots are the trace's parentless spans, sorted by start time. A
	// healthy cross-process trace has one; the analyzer tolerates many.
	Roots []*Node
	// Spans counts every node in the tree.
	Spans int
}

// Start and EndNanos bound the tree's wall-clock extent.
func (t *Tree) Start() int64 {
	if len(t.Roots) == 0 {
		return 0
	}
	min := t.Roots[0].Start
	for _, r := range t.Roots[1:] {
		if r.Start < min {
			min = r.Start
		}
	}
	return min
}

func (t *Tree) EndNanos() int64 {
	var max int64
	var walk func(n *Node)
	walk = func(n *Node) {
		if e := n.End(); e > max {
			max = e
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
	return max
}

// A Forest is every trace assembled from a span set, plus the defects
// that make the set incomplete.
type Forest struct {
	Traces []*Tree
	// Orphans are spans whose parent ID appears nowhere in the set — a
	// broken causal chain (a process that never flushed, a header that
	// never propagated). The CI gate fails on any.
	Orphans []Record
	// Duplicates are span IDs minted twice — a seeding bug.
	Duplicates []string
}

// Err reports the forest's defects as one error, nil when the causal
// tree is complete.
func (f *Forest) Err() error {
	if len(f.Orphans) == 0 && len(f.Duplicates) == 0 {
		return nil
	}
	var b strings.Builder
	for _, o := range f.Orphans {
		fmt.Fprintf(&b, "orphaned span %s (%s, proc %s): parent %s not found\n", o.Span, o.Name, o.Proc, o.Parent)
	}
	for _, d := range f.Duplicates {
		fmt.Fprintf(&b, "duplicate span ID %s\n", d)
	}
	return fmt.Errorf("trace: incomplete causal tree:\n%s", strings.TrimRight(b.String(), "\n"))
}

// Assemble builds the causal forest: spans indexed by ID, children
// attached to parents, traces keyed by each root's effective ID. Output
// order is deterministic: traces sorted by start time then ID, children
// by start time then span ID.
func Assemble(spans []Record) *Forest {
	f := &Forest{}
	byID := make(map[string]*Node, len(spans))
	var order []*Node
	for _, rec := range spans {
		if _, ok := byID[rec.Span]; ok {
			f.Duplicates = append(f.Duplicates, rec.Span)
			continue
		}
		n := &Node{Record: rec}
		byID[rec.Span] = n
		order = append(order, n)
	}

	var roots []*Node
	for _, n := range order {
		if n.Parent == "" {
			roots = append(roots, n)
			continue
		}
		p, ok := byID[n.Parent]
		if !ok {
			f.Orphans = append(f.Orphans, n.Record)
			roots = append(roots, n) // still render it, as its own root
			continue
		}
		p.Children = append(p.Children, n)
	}
	for _, n := range order {
		sort.Slice(n.Children, func(a, b int) bool {
			if n.Children[a].Start != n.Children[b].Start {
				return n.Children[a].Start < n.Children[b].Start
			}
			return n.Children[a].Span < n.Children[b].Span
		})
	}

	trees := make(map[string]*Tree)
	for _, r := range roots {
		id := r.Trace
		if id == "" {
			id = "untraced-" + r.Span
		}
		t, ok := trees[id]
		if !ok {
			t = &Tree{ID: id}
			trees[id] = t
			f.Traces = append(f.Traces, t)
		}
		t.Roots = append(t.Roots, r)
	}
	for _, t := range f.Traces {
		sort.Slice(t.Roots, func(a, b int) bool {
			if t.Roots[a].Start != t.Roots[b].Start {
				return t.Roots[a].Start < t.Roots[b].Start
			}
			return t.Roots[a].Span < t.Roots[b].Span
		})
		var count func(n *Node) int
		count = func(n *Node) int {
			c := 1
			for _, ch := range n.Children {
				c += count(ch)
			}
			return c
		}
		for _, r := range t.Roots {
			t.Spans += count(r)
		}
	}
	sort.Slice(f.Traces, func(a, b int) bool {
		if f.Traces[a].Start() != f.Traces[b].Start() {
			return f.Traces[a].Start() < f.Traces[b].Start()
		}
		return f.Traces[a].ID < f.Traces[b].ID
	})
	return f
}

// ExclusiveNanos is the time a span spent NOT covered by its children:
// its duration minus the union of child intervals clipped to its own —
// the quantity that makes "where did the time go" sum sensibly.
func ExclusiveNanos(n *Node) int64 {
	type iv struct{ a, b int64 }
	var ivs []iv
	s, e := n.Start, n.End()
	for _, c := range n.Children {
		a, b := c.Start, c.End()
		if a < s {
			a = s
		}
		if b > e {
			b = e
		}
		if a < b {
			ivs = append(ivs, iv{a, b})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].a < ivs[j].a })
	var covered, hi int64
	for _, v := range ivs {
		if v.a > hi {
			covered += v.b - v.a
			hi = v.b
		} else if v.b > hi {
			covered += v.b - hi
			hi = v.b
		}
	}
	excl := n.Dur - covered
	if excl < 0 {
		excl = 0
	}
	return excl
}

// CriticalPath walks from the tree's dominant root to the leaf that
// determined the finish time: at each node, descend into the child with
// the latest end. The returned slice is root-first.
func (t *Tree) CriticalPath() []*Node {
	if len(t.Roots) == 0 {
		return nil
	}
	cur := t.Roots[0]
	for _, r := range t.Roots[1:] {
		if r.End() > cur.End() {
			cur = r
		}
	}
	path := []*Node{cur}
	for len(cur.Children) > 0 {
		next := cur.Children[0]
		for _, c := range cur.Children[1:] {
			if c.End() > next.End() {
				next = c
			}
		}
		cur = next
		path = append(path, cur)
	}
	return path
}

// A NameStat aggregates one span type's cost within a trace.
type NameStat struct {
	Name      string
	Count     int
	Exclusive int64 // nanoseconds
}

// ExclusiveByName ranks span types by total exclusive time, descending
// (ties by name) — the critical-path summary's top-k input.
func (t *Tree) ExclusiveByName() []NameStat {
	agg := make(map[string]*NameStat)
	var walk func(n *Node)
	walk = func(n *Node) {
		st, ok := agg[n.Name]
		if !ok {
			st = &NameStat{Name: n.Name}
			agg[n.Name] = st
		}
		st.Count++
		st.Exclusive += ExclusiveNanos(n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
	names := make([]string, 0, len(agg))
	for name := range agg {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]NameStat, 0, len(names))
	for _, name := range names {
		out = append(out, *agg[name])
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Exclusive > out[b].Exclusive })
	return out
}

// Names returns every distinct span name in the tree (sorted) — the
// e2e assertions use it to check layer coverage.
func (t *Tree) Names() []string {
	seen := make(map[string]bool)
	var walk func(n *Node)
	walk = func(n *Node) {
		seen[n.Name] = true
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
