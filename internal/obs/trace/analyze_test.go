package trace

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// span builds a test record.
func span(trace, id, parent, name, proc string, start, dur int64) Record {
	return Record{Type: "span", Trace: trace, Span: id, Parent: parent,
		Name: name, Proc: proc, Start: start, Dur: dur}
}

func TestAssembleCompleteTree(t *testing.T) {
	spans := []Record{
		span("t1", "c-1", "", "http.submit", "c", 100, 900),
		span("t1", "c-2", "c-1", "cluster.sweep", "c", 150, 800),
		span("", "w-1", "c-2", "http.submit", "w", 200, 100),
		span("", "w-2", "w-1", "pool.admit", "w", 210, 50),
		span("t2", "c-9", "", "http.get", "c", 2000, 10),
	}
	f := Assemble(spans)
	if err := f.Err(); err != nil {
		t.Fatalf("complete tree reported defects: %v", err)
	}
	if len(f.Traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(f.Traces))
	}
	t1 := f.Traces[0]
	if t1.ID != "t1" || t1.Spans != 4 {
		t.Fatalf("t1 = %q with %d spans", t1.ID, t1.Spans)
	}
	if len(t1.Roots) != 1 || t1.Roots[0].Span != "c-1" {
		t.Fatalf("t1 roots = %+v", t1.Roots)
	}
	// Cross-process child with an empty trace field still lands in t1.
	sweep := t1.Roots[0].Children[0]
	if len(sweep.Children) != 1 || sweep.Children[0].Span != "w-1" {
		t.Fatalf("worker span not attached: %+v", sweep.Children)
	}
}

func TestAssembleDetectsOrphansAndDuplicates(t *testing.T) {
	f := Assemble([]Record{
		span("t1", "a-1", "", "root", "a", 100, 10),
		span("t1", "a-2", "ghost-7", "lost", "a", 105, 5),
		span("t1", "a-1", "", "dup", "a", 100, 10),
	})
	err := f.Err()
	if err == nil {
		t.Fatalf("defective set reported clean")
	}
	if len(f.Orphans) != 1 || f.Orphans[0].Span != "a-2" {
		t.Fatalf("orphans = %+v", f.Orphans)
	}
	if len(f.Duplicates) != 1 || f.Duplicates[0] != "a-1" {
		t.Fatalf("duplicates = %+v", f.Duplicates)
	}
	if !strings.Contains(err.Error(), "ghost-7") {
		t.Fatalf("error does not name the missing parent: %v", err)
	}
}

func TestCriticalPathAndExclusive(t *testing.T) {
	// root [0,1000]; fast child [100,200]; slow child [300,900] with its
	// own leaf [400,800].
	spans := []Record{
		span("t", "r", "", "root", "p", 1000, 1000),
		span("t", "f", "r", "fast", "p", 1100, 100),
		span("t", "s", "r", "slow", "p", 1300, 600),
		span("t", "l", "s", "leaf", "p", 1400, 400),
	}
	f := Assemble(spans)
	tr := f.Traces[0]
	path := tr.CriticalPath()
	var names []string
	for _, n := range path {
		names = append(names, n.Name)
	}
	if got := strings.Join(names, ">"); got != "root>slow>leaf" {
		t.Fatalf("critical path = %s", got)
	}
	// root exclusive: 1000 - (100 + 600) = 300.
	if got := ExclusiveNanos(f.Traces[0].Roots[0]); got != 300 {
		t.Fatalf("root exclusive = %d, want 300", got)
	}
	// slow exclusive: 600 - 400 = 200.
	if got := ExclusiveNanos(path[1]); got != 200 {
		t.Fatalf("slow exclusive = %d, want 200", got)
	}
	stats := tr.ExclusiveByName()
	if stats[0].Name != "leaf" || stats[0].Exclusive != 400 {
		t.Fatalf("top exclusive = %+v", stats[0])
	}
}

func TestExclusiveOverlappingChildren(t *testing.T) {
	// Two children overlap [100,300] and [200,400] under root [0,1000]:
	// union covers 300, exclusive 700.
	spans := []Record{
		span("t", "r", "", "root", "p", 1000, 1000),
		span("t", "a", "r", "a", "p", 1100, 200),
		span("t", "b", "r", "b", "p", 1200, 200),
	}
	f := Assemble(spans)
	if got := ExclusiveNanos(f.Traces[0].Roots[0]); got != 700 {
		t.Fatalf("exclusive with overlapping children = %d, want 700", got)
	}
}

func TestLoadRoundTripAndMerge(t *testing.T) {
	dir := t.TempDir()
	for _, proc := range []string{"w1", "w2"} {
		tr, err := Open(Options{Dir: dir, Proc: proc})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		tr.Start(SpanContext{Trace: "shared0000000000"}, "http.submit").End()
		tr.Close()
	}
	res, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if res.Files != 2 || len(res.Spans) != 2 || res.Truncated != 0 {
		t.Fatalf("load = %d files, %d spans, %d truncated", res.Files, len(res.Spans), res.Truncated)
	}
	f := Assemble(res.Spans)
	if err := f.Err(); err != nil {
		t.Fatalf("assembled defects: %v", err)
	}
	if len(f.Traces) != 1 || f.Traces[0].Spans != 2 {
		t.Fatalf("merge produced %d traces", len(f.Traces))
	}
}

func TestLoadToleratesTornTailOnly(t *testing.T) {
	dir := t.TempDir()
	torn := filepath.Join(dir, "killed.trace.jsonl")
	content := `{"type":"meta","schema":"locality-trace/v1","proc":"k"}
{"type":"span","trace":"t","span":"k-1","name":"job.run","proc":"k","start_unix_nanos":100,"duration_nanos":5}
{"type":"span","trace":"t","span":"k-2","na`
	if err := os.WriteFile(torn, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Load(torn)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if res.Truncated != 1 || len(res.Spans) != 1 {
		t.Fatalf("torn load = %d spans, %d truncated", len(res.Spans), res.Truncated)
	}

	// Garbage mid-file is corruption, not a torn tail.
	bad := filepath.Join(dir, "bad.trace.jsonl")
	badContent := `{"type":"span","trace":"t","span":"k-1","name":"x","proc":"k","start_unix_nanos":1,"duration_nanos":1}
not json at all
{"type":"span","trace":"t","span":"k-3","name":"y","proc":"k","start_unix_nanos":2,"duration_nanos":1}
`
	if err := os.WriteFile(bad, []byte(badContent), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Fatalf("mid-file corruption accepted")
	}
}

func TestLoadRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "v2.trace.jsonl")
	os.WriteFile(p, []byte(`{"type":"meta","schema":"locality-trace/v999"}`+"\n"), 0o644)
	if _, err := Load(p); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong schema accepted: %v", err)
	}
}

func TestTreeNames(t *testing.T) {
	f := Assemble([]Record{
		span("t", "r", "", "root", "p", 100, 10),
		span("t", "c", "r", "child", "p", 101, 5),
	})
	names := f.Traces[0].Names()
	if strings.Join(names, ",") != "child,root" {
		t.Fatalf("names = %v", names)
	}
}
