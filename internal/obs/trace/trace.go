// Package trace is the deterministic distributed-tracing layer: spans
// propagated from submit through shard dispatch to the result store,
// persisted as JSONL artifacts next to run reports and reassembled into
// causal trees by cmd/localtrace.
//
// The package follows the obsinert tradition of internal/obs (DESIGN.md
// §9, §14): tracing observes and never influences. Trace IDs derive from
// the job determinism identity (jobs.Spec.IdentityKey), span IDs from a
// seeded per-process counter, and wall-clock reads are confined to
// clock.go — the package's single sanctioned clock file, carved out of
// the localvet nowallclock ban function by function. A nil *Tracer is
// valid everywhere and every method on it (and on the nil *Span it hands
// out) is a no-op, so "tracing off" is a nil pointer and zero work, and
// a sweep's rendered bytes are byte-identical with tracing on or off.
//
// Trace context crosses process boundaries in the Locality-Trace header
// ("<trace>/<span>"): localityd parses it into the route span's parent,
// and the cluster coordinator threads its sweep span's context into every
// shard call, so a multi-process sweep reassembles into one tree.
package trace

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"locality/internal/obs"
)

const (
	// Schema versions the trace-artifact JSONL layout.
	Schema = "locality-trace/v1"
	// Header is the HTTP header carrying a rendered SpanContext.
	// internal/cluster pins the same string without importing this
	// package; a wire test asserts the two stay equal.
	Header = "Locality-Trace"
)

// SpanContext identifies a position in a trace: the trace a span belongs
// to and the span itself. The zero value is "no context".
type SpanContext struct {
	Trace string
	Span  string
}

// String renders the context for the Locality-Trace header
// ("<trace>/<span>"); empty when there is no span to reference.
func (sc SpanContext) String() string {
	if sc.Span == "" {
		return ""
	}
	return sc.Trace + "/" + sc.Span
}

// Parse decodes a Locality-Trace header value. Malformed or empty values
// yield the zero context — an inbound request with a bad header simply
// starts its own trace, it is never rejected for telemetry's sake.
func Parse(v string) (SpanContext, bool) {
	i := strings.IndexByte(v, '/')
	if i < 0 || i == len(v)-1 {
		return SpanContext{}, false
	}
	return SpanContext{Trace: v[:i], Span: v[i+1:]}, true
}

// IDFromIdentity derives a trace ID from a job determinism identity
// (jobs.Spec.IdentityKey, 64 hex chars): the first 16 hex characters —
// collision-safe at tracing scale and, crucially, deterministic: the
// same spec traces under the same ID on every process that handles it.
func IDFromIdentity(ikey string) string {
	if len(ikey) >= 16 {
		return ikey[:16]
	}
	return ikey
}

// Options configures a Tracer.
type Options struct {
	// Dir is the artifact directory; the tracer writes
	// <Dir>/<Proc>.trace.jsonl (append mode: a restarted process
	// continues its file rather than truncating spans already written).
	Dir string
	// Proc names this process; it prefixes every span ID this tracer
	// mints, so IDs from different processes never collide and
	// cmd/localtrace can attribute spans to processes. Default "proc".
	Proc string
	// Seed starts the span-ID counter (tests pin IDs with it).
	Seed uint64
	// Metrics, when non-nil, receives the spans-emitted counter.
	Metrics *obs.Registry
}

// A Tracer mints spans and persists them as JSONL records. Safe for
// concurrent use; nil-receiver safe throughout (the "tracing disabled"
// idiom, mirroring *obs.Registry).
type Tracer struct {
	proc  string
	seq   atomic.Uint64
	spans *obs.Counter

	mu  sync.Mutex
	f   *os.File
	enc *json.Encoder
	err error
}

// Record is one JSONL line of a trace artifact; Type discriminates
// ("meta" or "span"). Durations are nanoseconds; Start is Unix nanos.
// Exported so cmd/localtrace and the analysis half of this package share
// one schema.
type Record struct {
	Type string `json:"type"`

	// meta
	Schema string `json:"schema,omitempty"`
	Stamp  string `json:"stamp,omitempty"`
	Go     string `json:"go,omitempty"`

	// span
	Trace  string            `json:"trace,omitempty"`
	Span   string            `json:"span,omitempty"`
	Parent string            `json:"parent,omitempty"`
	Name   string            `json:"name,omitempty"`
	Proc   string            `json:"proc,omitempty"`
	Start  int64             `json:"start_unix_nanos,omitempty"`
	Dur    int64             `json:"duration_nanos,omitempty"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// Open creates a tracer writing <Dir>/<Proc>.trace.jsonl, stamping a
// meta record. Each record is one unbuffered write, so a SIGKILLed
// process loses at most the span it was mid-writing (the analyzer's
// torn-tail tolerance covers that, mirroring the result store's
// recovery idiom).
func Open(o Options) (*Tracer, error) {
	if o.Proc == "" {
		o.Proc = "proc"
	}
	path := filepath.Join(o.Dir, o.Proc+".trace.jsonl")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("trace: open artifact: %w", err)
	}
	t := &Tracer{
		proc:  o.Proc,
		f:     f,
		enc:   json.NewEncoder(f),
		spans: o.Metrics.Counter("locality_trace_spans_total", "Trace spans emitted to the artifact."),
	}
	t.seq.Store(o.Seed)
	t.write(Record{
		Type:   "meta",
		Schema: Schema,
		Stamp:  now().UTC().Format(time.RFC3339Nano),
		Go:     runtime.Version(),
		Proc:   o.Proc,
	})
	return t, nil
}

// write encodes one record under the lock, latching the first error —
// tracing must never fail the work it observes.
func (t *Tracer) write(rec Record) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.err = t.enc.Encode(rec)
}

// Close flushes and closes the artifact, returning the first error of
// the tracer's lifetime. Nil-safe.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.f.Close(); t.err == nil {
		t.err = err
	}
	return t.err
}

// Start mints a span under parent. attrs are alternating key/value
// pairs. The span inherits parent.Trace (join a trace later with
// JoinTrace); it is emitted when End is called. On a nil tracer Start
// returns nil — a valid no-op span.
func (t *Tracer) Start(parent SpanContext, name string, attrs ...string) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		tr:     t,
		trace:  parent.Trace,
		id:     fmt.Sprintf("%s-%d", t.proc, t.seq.Add(1)),
		parent: parent.Span,
		name:   name,
		start:  now(),
		attrs:  attrMap(nil, attrs),
	}
}

// Emit records one complete span in a single call — the bridge for
// callers that measured an interval themselves (the cluster
// coordinator's OnSpan hook reports nanosecond pairs precisely so it
// never has to hold tracer state). Nil-safe.
func (t *Tracer) Emit(parent SpanContext, name string, startUnixNanos, endUnixNanos int64, attrs ...string) {
	if t == nil {
		return
	}
	id := fmt.Sprintf("%s-%d", t.proc, t.seq.Add(1))
	tid := parent.Trace
	if tid == "" && parent.Span == "" {
		tid = "untraced-" + id
	}
	dur := endUnixNanos - startUnixNanos
	if dur < 0 {
		dur = 0
	}
	t.spans.Inc()
	t.write(Record{
		Type:   "span",
		Trace:  tid,
		Span:   id,
		Parent: parent.Span,
		Name:   name,
		Proc:   t.proc,
		Start:  startUnixNanos,
		Dur:    dur,
		Attrs:  attrMap(nil, attrs),
	})
}

// attrMap folds alternating key/value pairs into m (allocating it when
// needed). An odd trailing key is dropped rather than panicking —
// telemetry never takes the process down.
func attrMap(m map[string]string, attrs []string) map[string]string {
	for i := 0; i+1 < len(attrs); i += 2 {
		if m == nil {
			m = make(map[string]string, len(attrs)/2)
		}
		m[attrs[i]] = attrs[i+1]
	}
	return m
}

// A Span is one in-flight operation. Methods are safe for concurrent
// use and no-ops on a nil receiver. A span is emitted once, by End;
// attribute writes after End are dropped.
type Span struct {
	tr *Tracer

	mu     sync.Mutex
	trace  string
	id     string
	parent string
	name   string
	start  time.Time
	attrs  map[string]string
	ended  bool
}

// Context returns the span's position for parenting children or
// rendering the propagation header. Zero on nil.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return SpanContext{Trace: s.trace, Span: s.id}
}

// TraceID returns the trace the span currently belongs to ("" until a
// JoinTrace or a traced parent provides one). Nil-safe.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.trace
}

// JoinTrace adopts a trace ID if the span does not have one yet — an
// inbound header always wins over a locally derived identity, so a
// cross-process trace never forks. Nil-safe.
func (s *Span) JoinTrace(id string) {
	if s == nil || id == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.trace == "" {
		s.trace = id
	}
}

// SetAttr records one attribute. Nil-safe.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	s.attrs = attrMap(s.attrs, []string{k, v})
}

// End emits the span. A span that never joined a trace and has no
// parent becomes its own single-span trace ("untraced-<id>"), so every
// emitted span groups somewhere. End is idempotent. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	if s.trace == "" && s.parent == "" {
		s.trace = "untraced-" + s.id
	}
	rec := Record{
		Type:   "span",
		Trace:  s.trace,
		Span:   s.id,
		Parent: s.parent,
		Name:   s.name,
		Proc:   s.tr.proc,
		Start:  s.start.UnixNano(),
		Dur:    int64(since(s.start)),
		Attrs:  s.attrs,
	}
	s.mu.Unlock()
	s.tr.spans.Inc()
	s.tr.write(rec)
}
