package trace

import "context"

// spanCtxKey keys the active *Span in a request context.
type spanCtxKey struct{}

// ContextWithSpan attaches a span to the context (the HTTP
// instrumentation wrapper does this so handlers can parent their work
// to the route span). A nil span returns ctx unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext recovers the span attached by ContextWithSpan (nil
// when absent — and every *Span method is nil-safe, so callers never
// need to check).
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}
