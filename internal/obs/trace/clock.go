package trace

// This file is the trace layer's single sanctioned wall-clock consumer,
// mirroring internal/obs/clock.go: the two helpers below are the only
// clock reads in the package, exempted function-by-function in
// cmd/localvet's leafExemptions table (machine-verified by nondetflow).
// Span timestamps and durations are wall-clock telemetry by design and
// are never consulted by model, harness, or supervision decisions — the
// inertness contract of DESIGN.md §9 extends to §14's tracing argument.

import "time"

// now reads the wall clock.
func now() time.Time { return time.Now() }

// since measures elapsed wall-clock time from t.
func since(t time.Time) time.Duration { return time.Since(t) }
