package trace

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"locality/internal/obs"
)

func openTest(t *testing.T, proc string) (*Tracer, string) {
	t.Helper()
	dir := t.TempDir()
	tr, err := Open(Options{Dir: dir, Proc: proc})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return tr, filepath.Join(dir, proc+".trace.jsonl")
}

func readRecords(t *testing.T, path string) []Record {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open artifact: %v", err)
	}
	defer f.Close()
	var recs []Record
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("malformed line %q: %v", sc.Text(), err)
		}
		recs = append(recs, rec)
	}
	return recs
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	sp := tr.Start(SpanContext{}, "x")
	if sp != nil {
		t.Fatalf("nil tracer minted a span")
	}
	sp.SetAttr("k", "v")
	sp.JoinTrace("abc")
	sp.End()
	if got := sp.Context(); got != (SpanContext{}) {
		t.Fatalf("nil span context = %+v", got)
	}
	if sp.TraceID() != "" {
		t.Fatalf("nil span has a trace ID")
	}
	tr.Emit(SpanContext{}, "y", 1, 2)
	if err := tr.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
}

func TestSpanEmissionAndIdentity(t *testing.T) {
	tr, path := openTest(t, "w1")
	root := tr.Start(SpanContext{Trace: "deadbeefdeadbeef"}, "http.submit", "route", "submit")
	if got := root.Context().Span; got != "w1-1" {
		t.Fatalf("span ID = %q, want w1-1", got)
	}
	child := tr.Start(root.Context(), "pool.admit")
	child.SetAttr("outcome", "enqueued")
	child.End()
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	recs := readRecords(t, path)
	if len(recs) != 3 {
		t.Fatalf("got %d records, want meta+2 spans", len(recs))
	}
	if recs[0].Type != "meta" || recs[0].Schema != Schema {
		t.Fatalf("meta record = %+v", recs[0])
	}
	// child ended first, so it is record 1.
	if recs[1].Name != "pool.admit" || recs[1].Parent != "w1-1" || recs[1].Trace != "deadbeefdeadbeef" {
		t.Fatalf("child record = %+v", recs[1])
	}
	if recs[1].Attrs["outcome"] != "enqueued" {
		t.Fatalf("child attrs = %v", recs[1].Attrs)
	}
	if recs[2].Name != "http.submit" || recs[2].Parent != "" || recs[2].Proc != "w1" {
		t.Fatalf("root record = %+v", recs[2])
	}
	if recs[2].Start <= 0 || recs[2].Dur < 0 {
		t.Fatalf("root timing = start %d dur %d", recs[2].Start, recs[2].Dur)
	}
}

func TestJoinTraceInboundWins(t *testing.T) {
	tr, path := openTest(t, "p")
	sp := tr.Start(SpanContext{Trace: "inbound0000000000"}, "http.get")
	sp.JoinTrace("local11111111111")
	sp.End()
	late := tr.Start(SpanContext{}, "http.get")
	late.JoinTrace("joined2222222222")
	late.End()
	orphanless := tr.Start(SpanContext{}, "http.healthz")
	orphanless.End()
	tr.Close()

	recs := readRecords(t, path)
	if recs[1].Trace != "inbound0000000000" {
		t.Fatalf("inbound trace overwritten: %q", recs[1].Trace)
	}
	if recs[2].Trace != "joined2222222222" {
		t.Fatalf("JoinTrace on empty did not stick: %q", recs[2].Trace)
	}
	if !strings.HasPrefix(recs[3].Trace, "untraced-") {
		t.Fatalf("parentless traceless span got %q, want untraced-*", recs[3].Trace)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: "abc123", Span: "w1-7"}
	got, ok := Parse(sc.String())
	if !ok || got != sc {
		t.Fatalf("round trip = %+v ok=%v", got, ok)
	}
	for _, bad := range []string{"", "noslash", "trailing/"} {
		if _, ok := Parse(bad); ok {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
	if (SpanContext{}).String() != "" {
		t.Fatalf("zero context renders non-empty")
	}
}

func TestIDFromIdentity(t *testing.T) {
	ikey := strings.Repeat("ab", 32)
	if got := IDFromIdentity(ikey); got != strings.Repeat("ab", 8) {
		t.Fatalf("IDFromIdentity = %q", got)
	}
	if got := IDFromIdentity("short"); got != "short" {
		t.Fatalf("short identity = %q", got)
	}
}

func TestEmitAndSeededIDs(t *testing.T) {
	dir := t.TempDir()
	tr, err := Open(Options{Dir: dir, Proc: "coord", Seed: 100})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	tr.Emit(SpanContext{Trace: "t0", Span: "coord-0"}, "shard.dispatch", 1000, 3000, "shard", "a")
	tr.Close()
	recs := readRecords(t, filepath.Join(dir, "coord.trace.jsonl"))
	sp := recs[1]
	if sp.Span != "coord-101" {
		t.Fatalf("seeded span ID = %q", sp.Span)
	}
	if sp.Start != 1000 || sp.Dur != 2000 || sp.Attrs["shard"] != "a" {
		t.Fatalf("emit record = %+v", sp)
	}
}

func TestSpanCounterMetric(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	tr, err := Open(Options{Dir: dir, Proc: "m", Metrics: reg})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	tr.Start(SpanContext{}, "a").End()
	tr.Emit(SpanContext{}, "b", 1, 2)
	tr.Close()
	if got := reg.Counter("locality_trace_spans_total", "Trace spans emitted to the artifact.").Value(); got != 2 {
		t.Fatalf("spans counter = %d, want 2", got)
	}
}

func TestOpenAppendsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 2; i++ {
		tr, err := Open(Options{Dir: dir, Proc: "r"})
		if err != nil {
			t.Fatalf("Open #%d: %v", i, err)
		}
		tr.Start(SpanContext{}, "x").End()
		tr.Close()
	}
	recs := readRecords(t, filepath.Join(dir, "r.trace.jsonl"))
	if len(recs) != 4 { // meta, span, meta, span
		t.Fatalf("restarted artifact has %d records, want 4", len(recs))
	}
}
