package obs

import (
	"math"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 3, 3, 7, 100} {
		h.Observe(v)
	}
	// 8 samples: buckets le=1:1, le=2:2, le=4:3, le=8:1, +Inf:1.
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1},     // clamped up to the first non-empty bucket
		{0.125, 1}, // 1st sample
		{0.25, 2},  // 2nd
		{0.5, 4},   // cum counts 1,3,6,...: the 4th sample lands in le=4
		{0.75, 4},  // 6th
		{0.875, 8}, // 7th
		{1, math.Inf(1)},
	}
	for _, c := range cases {
		got := h.Quantile(c.q)
		if got != c.want && !(math.IsInf(c.want, 1) && math.IsInf(got, 1)) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Quantization stability: any sample set landing in the same buckets
	// yields the same quantiles.
	h2 := newHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.9, 1.1, 1.9, 2.5, 3.9, 3.0, 6, 50} {
		h2.Observe(v)
	}
	for _, q := range []float64{0.25, 0.5, 0.75, 0.99} {
		if h.Quantile(q) != h2.Quantile(q) {
			t.Errorf("bucket-equal histograms disagree at q=%v: %v vs %v",
				q, h.Quantile(q), h2.Quantile(q))
		}
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.99); got != 0 {
		t.Errorf("nil histogram Quantile = %v", got)
	}
	if u, c := nilH.Buckets(); u != nil || c != nil {
		t.Error("nil histogram Buckets not nil")
	}
	h := newHistogram([]float64{1})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram Quantile = %v", got)
	}
	h.Observe(99)
	if got := h.Quantile(0.5); !math.IsInf(got, 1) {
		t.Errorf("overflow-only histogram Quantile = %v, want +Inf", got)
	}
	u, c := h.Buckets()
	if len(u) != 1 || len(c) != 2 || c[1] != 1 {
		t.Errorf("Buckets() = %v %v", u, c)
	}
}
