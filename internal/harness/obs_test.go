package harness

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"locality/internal/sim"
)

// recordingObserver is a concurrency-safe Observer capturing what the sweep
// reported: the differential tests below assert telemetry is additive only.
type recordingObserver struct {
	mu      sync.Mutex
	rounds  int
	msgs    int64
	batches []int // rows per BatchDone, in commit order
	exps    map[string]bool
}

func newRecordingObserver() *recordingObserver {
	return &recordingObserver{exps: make(map[string]bool)}
}

func (o *recordingObserver) SimRound(experiment string, s sim.RoundStats) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.rounds++
	o.msgs += s.Messages
	o.exps[experiment] = true
}

func (o *recordingObserver) BatchDone(experiment string, batches, rowsInBatch int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.batches = append(o.batches, rowsInBatch)
	o.exps[experiment] = true
}

// TestObserverByteIdentity is the observability contract's harness half:
// with a recording observer attached — sequentially and with parallel
// workers — every rendering and the final checkpoint are byte-identical to
// the unobserved sweep, while the observer actually received the sweep's
// telemetry. E8 is the control: a derandomization-only driver with no
// simulator runs must report batches but no rounds.
func TestObserverByteIdentity(t *testing.T) {
	for _, id := range []string{"E2", "E4", "E8", "E12"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			driver := lookupDriver(t, id)
			base := Config{Quick: true, Seed: 7}
			baseline := renderAll(driver(base))
			var baseCk []byte
			baseBatches := 0
			{
				cfg := base
				cfg.OnBatch = func(ck *Checkpoint) {
					baseBatches++
					enc, err := ck.Encode()
					if err != nil {
						t.Fatalf("encode baseline checkpoint: %v", err)
					}
					baseCk = enc
				}
				driver(cfg)
			}

			for _, workers := range []int{1, 4} {
				obs := newRecordingObserver()
				var lastCk []byte
				cfg := base
				cfg.Workers = workers
				cfg.Obs = obs
				cfg.OnBatch = func(ck *Checkpoint) {
					enc, err := ck.Encode()
					if err != nil {
						t.Fatalf("workers=%d: encode checkpoint: %v", workers, err)
					}
					lastCk = enc
				}
				got := renderAll(driver(cfg))
				if !bytes.Equal(got, baseline) {
					t.Errorf("workers=%d: observed sweep renders differently from unobserved run", workers)
				}
				if !bytes.Equal(lastCk, baseCk) {
					t.Errorf("workers=%d: observed sweep's checkpoint differs from unobserved run", workers)
				}
				if len(obs.batches) != baseBatches {
					t.Errorf("workers=%d: observer saw %d batches, want %d", workers, len(obs.batches), baseBatches)
				}
				if !obs.exps[id] {
					t.Errorf("workers=%d: observer never saw experiment %s", workers, id)
				}
				if id == "E8" {
					if obs.rounds != 0 {
						t.Errorf("workers=%d: E8 runs no simulator but reported %d rounds", workers, obs.rounds)
					}
				} else if obs.rounds == 0 {
					// E4's machines are 0-round deciders, so messages may
					// legitimately be zero; rounds must not be.
					t.Errorf("workers=%d: observer saw no simulator rounds", workers)
				}
			}
		})
	}
}

// TestObserverKillAndResume: telemetry stays inert across the
// checkpoint/resume path — an observed parallel sweep killed mid-run and
// resumed (observed again) reproduces the uninterrupted bytes, and replayed
// batches fire no BatchDone (telemetry mirrors OnBatch: fresh commits only).
func TestObserverKillAndResume(t *testing.T) {
	for _, id := range []string{"E2", "E12"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			driver := lookupDriver(t, id)
			base := Config{Quick: true, Seed: 7}
			baseline := renderTable(driver(base))
			total := countBatches(driver, base)
			if total < 2 {
				t.Fatalf("%s records %d batches; need >= 2 to interrupt", id, total)
			}
			kill := total / 2

			ctx, cancel := context.WithCancel(context.Background())
			var saved *Checkpoint
			cfg := base
			cfg.Workers = 4
			cfg.Ctx = ctx
			cfg.Obs = newRecordingObserver()
			cfg.OnBatch = func(ck *Checkpoint) {
				saved = ck.Clone()
				if len(saved.Batches) >= kill {
					cancel()
				}
			}
			func() {
				defer func() {
					if r := recover(); r == nil {
						t.Fatalf("observed parallel sweep finished despite cancellation")
					}
				}()
				driver(cfg)
			}()
			if saved == nil || len(saved.Batches) != kill {
				t.Fatalf("checkpoint holds %d batches, want %d", len(saved.Batches), kill)
			}

			obs := newRecordingObserver()
			resumeCfg := base
			resumeCfg.Workers = 2
			resumeCfg.Resume = saved
			resumeCfg.Obs = obs
			resumed := renderTable(driver(resumeCfg))
			if !bytes.Equal(resumed, baseline) {
				t.Errorf("observed resume differs from uninterrupted run")
			}
			if len(obs.batches) != total-kill {
				t.Errorf("resume observer saw %d batches, want %d (replays are silent)",
					len(obs.batches), total-kill)
			}
		})
	}
}
