package harness

import (
	"fmt"
	"strconv"
	"strings"

	"locality/internal/core"
	"locality/internal/derand"
	"locality/internal/forest"
	"locality/internal/graph"
	"locality/internal/ids"
	"locality/internal/lcl"
	"locality/internal/linial"
	"locality/internal/matching"
	"locality/internal/mathx"
	"locality/internal/mis"
	"locality/internal/nbrgraph"
	"locality/internal/ringcolor"
	"locality/internal/rng"
	"locality/internal/shatter"
	"locality/internal/sim"
	"locality/internal/sinkless"
	"locality/internal/speedup"
)

// All runs every experiment and returns the tables in order.
func All(cfg Config) []*Table {
	return []*Table{
		E1Separation(cfg),
		E2DeltaScaling(cfg),
		E3Shattering(cfg),
		E4ZeroRound(cfg),
		E5RandFromDet(cfg),
		E6Speedup(cfg),
		E7Dichotomy(cfg),
		E8Derandomization(cfg),
		E9Linial(cfg),
		E10MISMatching(cfg),
		E11Sinkless(cfg),
	}
}

// ByID returns the experiment driver with the given id (E1..E11).
func ByID(id string) (func(Config) *Table, bool) {
	m := map[string]func(Config) *Table{
		"E1": E1Separation, "E2": E2DeltaScaling, "E3": E3Shattering,
		"E4": E4ZeroRound, "E5": E5RandFromDet, "E6": E6Speedup,
		"E7": E7Dichotomy, "E8": E8Derandomization, "E9": E9Linial,
		"E10": E10MISMatching, "E11": E11Sinkless,
	}
	f, ok := m[strings.ToUpper(id)]
	return f, ok
}

// checkColoring returns "yes" when the labeling is a proper q-coloring.
func checkColoring(g *graph.Graph, q int, colors []int) string {
	if err := lcl.Coloring(q).Validate(lcl.Instance{G: g}, lcl.IntLabels(colors)); err != nil {
		return "NO"
	}
	return "yes"
}

// rowInt parses an integer cell out of a completed table row. Cross-row
// notes use it instead of loop-carried state so that checkpoint-replayed
// rows (Config.Row) feed the notes exactly as freshly computed ones do.
func rowInt(t *Table, row, col int) int {
	v, err := strconv.Atoi(t.Rows[row][col])
	if err != nil {
		panic(fmt.Sprintf("harness: %s row %d col %d is not an int: %q", t.ID, row, col, t.Rows[row][col]))
	}
	return v
}

// E1Separation is the headline (Section I, result 1): Δ-coloring trees is
// O(log_Δ log n + log* n) in RandLOCAL vs Θ(log_Δ n) in DetLOCAL — rounds
// of the Theorem 11 machine vs the Theorem 9 baseline across an n sweep.
func E1Separation(cfg Config) *Table {
	t := &Table{
		ID:    "E1",
		Title: "randomized vs deterministic Δ-coloring of trees",
		Claim: "RandLOCAL O(log_Δ log n + log* n) vs DetLOCAL Θ(log_Δ n): the deterministic " +
			"round count grows by a constant per doubling of n, the randomized one is nearly flat",
		Columns: []string{"n", "Δ", "rand rounds", "rand ok", "det rounds", "det ok"},
	}
	delta := 8
	sizes := cfg.sizes([]int{256, 1024, 4096}, []int{1024, 4096, 16384, 65536})
	if !cfg.Quick {
		delta = 55
	}
	r := rng.New(cfg.Seed + 1)
	for _, n := range sizes {
		// Prep: shared-stream draws stay outside Row so a resumed sweep
		// consumes r identically (see checkpoint.go).
		g := graph.RandomTree(n, delta, r)
		assignment := ids.Shuffled(n, r)
		cfg.Row(t, func(t *Table) {
			randRes, err := sim.Run(g, cfg.sim(t, sim.Config{Randomized: true, Seed: cfg.Seed + uint64(n), MaxRounds: 1 << 22}),
				core.NewT11Factory(core.T11Options{Delta: delta}))
			if err != nil {
				panic(fmt.Sprintf("harness: E1 rand run: %v", err))
			}
			randColors := core.Colors(randRes.Outputs)
			detRes, err := sim.Run(g, cfg.sim(t, sim.Config{IDs: assignment, MaxRounds: 1 << 22}),
				forest.NewFactory(forest.Options{Q: delta}))
			if err != nil {
				panic(fmt.Sprintf("harness: E1 det run: %v", err))
			}
			detColors := sim.IntOutputs(detRes)
			t.AddRow(n, delta, randRes.Rounds, checkColoring(g, delta, randColors),
				detRes.Rounds, checkColoring(g, delta, detColors))
		})
	}
	cfg.Flush(t)
	// The growth note is parsed back out of the row cells, so replayed rows
	// contribute exactly as freshly computed ones.
	last := len(t.Rows) - 1
	firstRand, firstDet := rowInt(t, 0, 2), rowInt(t, 0, 4)
	lastRand, lastDet := rowInt(t, last, 2), rowInt(t, last, 4)
	doublings := mathx.CeilLog2(sizes[len(sizes)-1]) - mathx.CeilLog2(sizes[0])
	t.Note("growth across %d doublings of n: det %+d rounds, rand %+d rounds — "+
		"the separation is in the slopes (det ~ log n, rand ~ log log n)",
		doublings, lastDet-firstDet, lastRand-firstRand)
	t.Note("absolute rounds favor the deterministic algorithm at simulable n: the paper's " +
		"randomized algorithms pay Θ(Δ²)-round constants (Phase 1 runs Δ-3 seeded-MIS sweeps); " +
		"the exponential gap is asymptotic in n, which the slopes show")
	return t
}

// E2DeltaScaling: both complexities scale inversely with log Δ (Theorems 5,
// 10, 11). The Theorem 10 machine's log_√Δ(log n) Phase 2 shows the
// randomized side.
func E2DeltaScaling(cfg Config) *Table {
	t := &Table{
		ID:    "E2",
		Title: "round counts vs Δ at fixed n",
		Claim: "rand Δ-coloring costs O(log* Δ + log_Δ log n) via ColorBidding (Theorem 10): " +
			"the shattered-phase rounds shrink as Δ grows",
		Columns: []string{"Δ", "n", "T10 rounds", "ok", "phase2 plan rounds", "bidding iters"},
	}
	n := 1024
	if !cfg.Quick {
		n = 8192
	}
	r := rng.New(cfg.Seed + 2)
	for _, delta := range []int{16, 36, 64, 100} {
		g := graph.RandomTree(n, delta, r)
		cfg.Row(t, func(t *Table) {
			opt := core.T10Options{Delta: delta}
			res, err := sim.Run(g, cfg.sim(t, sim.Config{Randomized: true, Seed: cfg.Seed + uint64(delta), MaxRounds: 1 << 22}),
				core.NewT10Factory(opt))
			if err != nil {
				panic(fmt.Sprintf("harness: E2 run: %v", err))
			}
			colors := core.Colors(res.Outputs)
			reserve := 0
			for reserve*reserve < delta {
				reserve++
			}
			fplan := forest.NewPlan(forest.Options{
				Q: reserve, SizeBound: mathx.Max(32, 8*mathx.CeilLog2(n+1)), IDSpace: 1 << 40,
			}.Resolve(n))
			t.AddRow(delta, n, res.Rounds, checkColoring(g, delta, colors),
				fplan.Rounds(), len(core.CSequence(delta)))
		})
	}
	cfg.Flush(t)
	t.Note("the Phase-2 (shattered components) plan uses palette √Δ, so its peeling base grows " +
		"with Δ and its round count shrinks — the log_Δ log n scaling of the claim")
	return t
}

// E3Shattering: the bad components Phase 2 inherits are O(log n)-sized whp
// (Theorem 10 analysis, Theorem 11 Phase 2).
func E3Shattering(cfg Config) *Table {
	t := &Table{
		ID:    "E3",
		Title: "graph shattering: bad-component sizes",
		Claim: "after the randomized phase, the uncolored (bad / S) vertices form connected " +
			"components of size O(log n) with high probability",
		Columns: []string{"algo", "n", "Δ", "marked", "components", "max comp", "bound 8·log2 n"},
	}
	r := rng.New(cfg.Seed + 3)
	sizes := cfg.sizes([]int{512, 2048}, []int{2048, 8192, 32768})
	seeds := cfg.trials(3, 8)
	for _, n := range sizes {
		bound := 8 * mathx.CeilLog2(n+1)
		// Theorem 10 bad set on a complete 35-ary tree (interior degree
		// Î=36), aggregated over seeds. With the default filtering the
		// bad set is typically empty (shattering at its strongest); the
		// "slack=2" row tightens Filtering(1) to |Ψ|-|N'| < Δ/2 to show a
		// non-trivial shattered set that still obeys the bound.
		g := completeTreeOfSize(35, n)
		for _, slack := range []int{8, 2} {
			cfg.Row(t, func(t *Table) {
				totalBad, maxComp, comps := 0, 0, 0
				for s := 0; s < seeds; s++ {
					res, err := sim.Run(g, cfg.sim(t, sim.Config{Randomized: true, Seed: cfg.Seed + uint64(n+s), MaxRounds: 1 << 22}),
						core.NewT10Factory(core.T10Options{Delta: 36, PaletteSlack: slack}))
					if err != nil {
						panic(fmt.Sprintf("harness: E3 T10 run: %v", err))
					}
					bad := make([]bool, g.N())
					for v, o := range res.Outputs {
						bad[v] = o.(core.T10Result).Bad
					}
					c := shatter.Analyze(g, bad)
					totalBad += c.Total
					comps += c.Count
					if c.Max > maxComp {
						maxComp = c.Max
					}
				}
				t.AddRow(fmt.Sprintf("T10 bad (slack=%d)", slack), g.N(), 36, totalBad, comps, maxComp, bound)
			})
		}
		// Theorem 11 S set (Δ=4 keeps Phase 1 contended enough for a
		// non-empty S), aggregated over seeds.
		g2 := graph.RandomTree(n, 4, r)
		cfg.Row(t, func(t *Table) {
			totalS, maxS, compS := 0, 0, 0
			for s := 0; s < seeds; s++ {
				res2, err := sim.Run(g2, cfg.sim(t, sim.Config{Randomized: true, Seed: cfg.Seed + uint64(n+7*s) + 7, MaxRounds: 1 << 22}),
					core.NewT11Factory(core.T11Options{Delta: 4}))
				if err != nil {
					panic(fmt.Sprintf("harness: E3 T11 run: %v", err))
				}
				inS := make([]bool, n)
				for v, o := range res2.Outputs {
					inS[v] = o.(core.T11Result).InS
				}
				c2 := shatter.Analyze(g2, inS)
				totalS += c2.Total
				compS += c2.Count
				if c2.Max > maxS {
					maxS = c2.Max
				}
			}
			t.AddRow("T11 S", n, 4, totalS, compS, maxS, bound)
		})
	}
	cfg.Flush(t)
	t.Note("counts are aggregated over %d seeds; 'max comp' is the largest component ever "+
		"observed and should stay below the bound column for the default-filtering rows", seeds)
	t.Note("Lemma 3 turns per-vertex failure exp(-poly Δ) into the whp bound via distance-5 " +
		"set counting: 4^t·n·Δ^(k(t-1)) sets of size t, each all-bad with prob exp(-t·poly Δ)")
	return t
}

// E4ZeroRound: the Theorem 4 base case — every 0-round sinkless-coloring
// strategy fails on some edge with probability >= 1/Δ².
func E4ZeroRound(cfg Config) *Table {
	t := &Table{
		ID:    "E4",
		Title: "0-round sinkless coloring: failure floor 1/Δ²",
		Claim: "any 0-round strategy is a color distribution; its worst edge fails with " +
			"probability max_c p(c)² >= 1/Δ², with equality exactly at uniform (Theorem 4 base case)",
		Columns: []string{"Δ", "minimax (grid)", "1/Δ²", "empirical uniform", "trials×edges"},
	}
	r := rng.New(cfg.Seed + 4)
	trials := cfg.trials(100, 400)
	for _, delta := range []int{3, 4, 5, 6} {
		ecg := graph.RandomRegularBipartite(12, delta, r)
		cfg.Row(t, func(t *Table) {
			val, _ := sinkless.ZeroRoundMinimax(delta, 4*delta)
			inst := lcl.Instance{G: ecg.Graph, EdgeColors: ecg.Colors, NumEdgeColors: delta}
			inputs := inst.NodeInputs()
			edges := ecg.Edges()
			violations := 0
			// One arena per row: the trial loop reuses the kernel buffers,
			// and keeping it inside the closure keeps parallel rows (which
			// run on different workers) from sharing scratch.
			arena := &sim.Arena{}
			for i := 0; i < trials; i++ {
				res, err := sim.Run(ecg.Graph, cfg.sim(t, sim.Config{Randomized: true, Seed: cfg.Seed + uint64(i), Inputs: inputs, Arena: arena}),
					sinkless.NewZeroRoundFactory(sinkless.Uniform(delta)))
				if err != nil {
					panic(fmt.Sprintf("harness: E4 run: %v", err))
				}
				colors := sim.IntOutputs(res)
				for e, uv := range edges {
					if colors[uv[0]] == ecg.Colors[e] && colors[uv[1]] == ecg.Colors[e] {
						violations++
					}
				}
			}
			emp := float64(violations) / float64(trials*len(edges))
			t.AddRow(delta, val, sinkless.ZeroRoundLowerBound(delta), emp,
				fmt.Sprintf("%d×%d", trials, len(edges)))
		})
	}
	cfg.Flush(t)
	return t
}

// E5RandFromDet: the Theorem 5 construction — random b-bit IDs plus one
// power-graph Linial step simulate a DetLOCAL algorithm, failing with
// probability < n²/2^b.
func E5RandFromDet(cfg Config) *Table {
	t := &Table{
		ID:    "E5",
		Title: "Theorem 5: RandLOCAL from DetLOCAL via random IDs",
		Claim: "failure rate of the randomized simulation is bounded by the ID collision " +
			"probability < n²/2^b",
		Columns: []string{"name bits", "n", "fails", "trials", "rate", "bound n²/2^b"},
	}
	n := 48
	trials := cfg.trials(8, 40)
	r := rng.New(cfg.Seed + 5)
	g := graph.RandomTree(n, 3, r)
	for _, bits := range []int{4, 8, 12, 16} {
		cfg.Row(t, func(t *Table) {
			palette := speedup.Theorem5Palette(bits, n)
			fopt := forest.Options{Q: 3, SizeBound: n, IDSpace: palette}
			tDet := forest.NewPlan(fopt.Resolve(n)).Rounds()
			factory := speedup.NewTheorem5Factory(tDet, bits, n, g.MaxDegree(), forest.NewFactory(fopt))
			fails := 0
			arena := &sim.Arena{}
			for i := 0; i < trials; i++ {
				res, err := sim.Run(g, cfg.sim(t, sim.Config{Randomized: true, Seed: cfg.Seed + uint64(bits*1000+i), MaxRounds: 1 << 22, Arena: arena}), factory)
				if err != nil {
					panic(fmt.Sprintf("harness: E5 run: %v", err))
				}
				colors := sim.IntOutputs(res)
				if lcl.Coloring(3).Validate(lcl.Instance{G: g}, lcl.IntLabels(colors)) != nil {
					fails++
				}
			}
			t.AddRow(bits, n, fails, trials, float64(fails)/float64(trials),
				ids.CollisionProbabilityBound(n, bits))
		})
	}
	cfg.Flush(t)
	t.Note("the deterministic inner algorithm is the Theorem 9 tree 3-coloring; its round " +
		"bound t fixes the collection radius 2t+1, and total rounds are 3t+1 = O(t) as the theorem states")
	return t
}

// E6Speedup: the Theorem 6 transform — measured correctness plus the
// ℓ-(in)dependence of the transformed round count.
func E6Speedup(cfg Config) *Table {
	t := &Table{
		ID:    "E6",
		Title: "Theorem 6 speedup transform",
		Claim: "any f(Δ)+ε·log_Δ n algorithm can be rerun with power-graph Linial IDs in " +
			"O((1+f(Δ))·log* n) rounds; the transformed count is n-independent",
		Columns: []string{"n", "ℓ", "slow rounds", "transformed", "ℓ'", "ok"},
	}
	delta := 4
	mk := speedup.NewSlowColoringFactory(delta, 1, 8) // ε = 1/8
	tBound := speedup.SlowColoringRounds(delta, 1, 8)
	r := rng.New(cfg.Seed + 6)
	sizes := cfg.sizes([]int{64, 256}, []int{64, 256, 1024})
	for _, n := range sizes {
		g := graph.RandomTree(n, delta, r)
		assignment := ids.Shuffled(n, r)
		cfg.Row(t, func(t *Table) {
			bits := mathx.CeilLog2(n + 1)
			plan := speedup.NewTheorem6Plan(tBound, delta, bits, 1)
			res, err := sim.Run(g, cfg.sim(t, sim.Config{IDs: assignment, MaxRounds: 1 << 22}),
				speedup.NewTheorem6Factory(plan, bits, mk(plan.BitsOut)))
			if err != nil {
				panic(fmt.Sprintf("harness: E6 run: %v", err))
			}
			colors := sim.IntOutputs(res)
			t.AddRow(n, bits, tBound(delta, bits), res.Rounds, plan.BitsOut,
				checkColoring(g, delta+1, colors))
		})
	}
	cfg.Flush(t)
	// Plan-level ℓ sweep (no simulation needed): the compression regime.
	tb2 := speedup.SlowColoringRounds(delta, 1, 2)
	var flat []string
	for _, bits := range []int{56, 58, 60, 62} {
		plan := speedup.NewTheorem6Plan(tb2, delta, bits, 1)
		flat = append(flat, fmt.Sprintf("ℓ=%d→(slow %d, trans %d, ℓ'=%d)",
			bits, tb2(delta, bits), plan.R+plan.InnerT, plan.BitsOut))
	}
	t.Note("plan-level sweep at ε=1/2: %s — ℓ' and the transformed rounds are flat in ℓ "+
		"while the slow rounds keep growing; the absolute crossover lies beyond ℓ=62 because "+
		"the construction's constants (ℓ' ≈ 2D·log Δ with D ≈ 2·runtime) are the paper's",
		strings.Join(flat, "; "))
	return t
}

// E7Dichotomy: Theorem 7 — on rings (Δ=2) every LCL is either O(log* n) or
// Ω(n); measured on 2- vs 3-coloring, and proved mechanically for small ID
// spaces by the neighborhood-graph engine.
func E7Dichotomy(cfg Config) *Table {
	t := &Table{
		ID:    "E7",
		Title: "the Δ=2 dichotomy on rings",
		Claim: "2-coloring takes Θ(n) rounds while 3-coloring takes O(log* n); " +
			"no t-round 2-coloring algorithm exists for any checkable t (neighborhood graphs)",
		Columns: []string{"n", "2-color rounds", "3-color rounds (CV)", "ok both"},
	}
	r := rng.New(cfg.Seed + 7)
	sizes := cfg.sizes([]int{16, 64, 256}, []int{16, 64, 256, 1024, 4096})
	for _, n := range sizes {
		g := graph.Ring(n)
		twoIDs := ids.Shuffled(n, r)
		threeIDs := ids.Shuffled(n, r)
		cfg.Row(t, func(t *Table) {
			res2, err := sim.Run(g, cfg.sim(t, sim.Config{IDs: twoIDs}), ringcolor.NewTwoColorFactory())
			if err != nil {
				panic(fmt.Sprintf("harness: E7 2-color: %v", err))
			}
			inputs, err := ringcolor.RingOrientation(g)
			if err != nil {
				panic(err)
			}
			bits := mathx.CeilLog2(n + 1)
			res3, err := sim.Run(g, cfg.sim(t, sim.Config{IDs: threeIDs, Inputs: inputs}),
				ringcolor.NewColeVishkinFactory(bits))
			if err != nil {
				panic(fmt.Sprintf("harness: E7 3-color: %v", err))
			}
			ok := "yes"
			if checkColoring(g, 2, sim.IntOutputs(res2)) != "yes" || checkColoring(g, 3, sim.IntOutputs(res3)) != "yes" {
				ok = "NO"
			}
			t.AddRow(n, res2.Rounds, res3.Rounds, ok)
		})
	}
	cfg.Flush(t)
	for _, tc := range []struct{ t, m, k int }{{0, 4, 2}, {1, 5, 2}, {0, 3, 3}, {0, 4, 3}, {1, 5, 3}} {
		res := nbrgraph.AlgorithmExists(tc.t, tc.m, tc.k, 1<<24)
		verdict := "UNDECIDED"
		if res.Decided {
			if res.Colorable {
				verdict = "exists"
			} else {
				verdict = "IMPOSSIBLE (proved)"
			}
		}
		t.Note("neighborhood graph B_%d(%d): %d-round %d-coloring algorithm: %s (%d search nodes)",
			tc.t, tc.m, tc.t, tc.k, verdict, res.Nodes)
	}
	return t
}

// E8Derandomization: Theorem 3 executed exhaustively on tiny instances.
func E8Derandomization(cfg Config) *Table {
	t := &Table{
		ID:    "E8",
		Title: "Theorem 3: exhaustive derandomization",
		Claim: "a bit-fixing function φ exists with A_Det[φ] correct on every member of " +
			"G_{n,Δ}; the fraction of bad φ is at most the summed failure probabilities (union bound)",
		Columns: []string{"bits", "n", "Δ", "|G_{n,Δ}|", "φ space", "bad φ", "union bound Σp", "φ* found"},
	}
	type setting struct{ bits, n, delta, idSpace int }
	settings := []setting{{1, 2, 1, 2}, {2, 2, 1, 2}, {2, 3, 2, 3}}
	for _, s := range settings {
		cfg.Row(t, func(t *Table) {
			alg := derand.PriorityMIS(s.bits)
			instances := derand.EnumerateInstances(s.n, s.delta, s.idSpace)
			res := derand.SearchPhi(alg, instances, s.idSpace, 1<<22)
			var unionBound float64
			for _, inst := range instances {
				unionBound += derand.ExactFailure(alg, inst)
			}
			phiStr := "none"
			if res.Found != nil {
				parts := make([]string, 0, s.idSpace)
				for id := 1; id <= s.idSpace; id++ {
					parts = append(parts, fmt.Sprint(res.Found[id]))
				}
				phiStr = "(" + strings.Join(parts, ",") + ")"
			}
			space := fmt.Sprintf("%d", res.Tried)
			t.AddRow(s.bits, s.n, s.delta, len(instances), space,
				fmt.Sprintf("%d", res.BadCount), unionBound, phiStr)
		})
	}
	cfg.Flush(t)
	t.Note("A_Rand is greedy MIS by random priority; its only failure mode is a blocking " +
		"adjacent tie. Every reported φ* was re-verified to err on ZERO instances.")
	return t
}

// E9Linial: Theorems 1–2 — palette trajectory and O(log* n) rounds.
func E9Linial(cfg Config) *Table {
	t := &Table{
		ID:    "E9",
		Title: "Linial's coloring: palette trajectory and log* rounds",
		Claim: "one round reduces a k-coloring to O(Δ² log k)-ish colors; iterating reaches " +
			"β·Δ² in O(log* n) rounds",
		Columns: []string{"n", "Δ", "rounds", "fixed point", "trajectory"},
	}
	delta := 4
	r := rng.New(cfg.Seed + 9)
	sizes := cfg.sizes([]int{256, 4096}, []int{256, 4096, 65536, 1 << 20})
	for _, n := range sizes {
		// Prep: the simulable sizes draw the tree and IDs from the shared
		// stream; the plan-only sizes draw nothing (matching the historical
		// stream consumption).
		var g *graph.Graph
		var assignment ids.Assignment
		if n <= 65536 {
			g = graph.RandomTree(n, delta, r)
			assignment = ids.Shuffled(n, r)
		}
		cfg.Row(t, func(t *Table) {
			sched := linial.Schedule(n, delta)
			parts := []string{fmt.Sprint(n)}
			for _, f := range sched {
				parts = append(parts, fmt.Sprint(f.PaletteSize()))
			}
			// Measured run at simulable sizes.
			rounds := len(sched)
			if g != nil {
				res, err := sim.Run(g, cfg.sim(t, sim.Config{IDs: assignment}),
					linial.NewFactory(linial.Options{InitialPalette: n, Delta: delta}))
				if err != nil {
					panic(fmt.Sprintf("harness: E9 run: %v", err))
				}
				rounds = res.Rounds
				if checkColoring(g, linial.FixedPoint(n, delta), sim.IntOutputs(res)) != "yes" {
					panic("harness: E9 produced an improper coloring")
				}
			}
			t.AddRow(n, delta, rounds, linial.FixedPoint(n, delta), strings.Join(parts, "→"))
		})
	}
	cfg.Flush(t)
	t.Note("log*(2^20)=4-ish: the round column grows by at most one per squaring of n")
	return t
}

// E10MISMatching: the Section I survey pair — randomized vs deterministic
// MIS and maximal matching.
func E10MISMatching(cfg Config) *Table {
	t := &Table{
		ID:    "E10",
		Title: "MIS and maximal matching: randomized vs deterministic",
		Claim: "randomized symmetry breaking is exponentially faster in Δ; deterministic " +
			"algorithms pay Linial's log* n plus poly(Δ) (the [9],[12],[13] bounds the paper cites)",
		Columns: []string{"n", "Δ", "Luby MIS", "det MIS", "rand match", "det match", "all valid"},
	}
	r := rng.New(cfg.Seed + 10)
	sizes := cfg.sizes([]int{256, 1024}, []int{1024, 4096, 16384})
	for _, n := range sizes {
		g := graph.RandomBoundedDegree(n, 2*n, 8, r)
		detIDs := ids.Shuffled(n, r)
		matchIDs := ids.Shuffled(n, r)
		cfg.Row(t, func(t *Table) {
			valid := true
			luby, err := sim.Run(g, cfg.sim(t, sim.Config{Randomized: true, Seed: cfg.Seed + uint64(n)}),
				mis.NewLubyFactory(mis.LubyOptions{}))
			if err != nil {
				panic(err)
			}
			det, err := sim.Run(g, cfg.sim(t, sim.Config{IDs: detIDs, MaxRounds: 1 << 22}),
				mis.NewDetFactory(mis.DetOptions{}))
			if err != nil {
				panic(err)
			}
			rmatch, err := sim.Run(g, cfg.sim(t, sim.Config{Randomized: true, Seed: cfg.Seed + uint64(n) + 1}),
				matching.NewRandFactory(matching.RandOptions{}))
			if err != nil {
				panic(err)
			}
			dmatch, err := sim.Run(g, cfg.sim(t, sim.Config{IDs: matchIDs, MaxRounds: 1 << 22}),
				matching.NewDetFactory(matching.DetOptions{}))
			if err != nil {
				panic(err)
			}
			valid = valid && validMIS(g, luby) && validMIS(g, det)
			valid = valid && validMatch(g, rmatch) && validMatch(g, dmatch)
			okStr := "yes"
			if !valid {
				okStr = "NO"
			}
			t.AddRow(n, g.MaxDegree(), luby.Rounds, det.Rounds, rmatch.Rounds, dmatch.Rounds, okStr)
		})
	}
	cfg.Flush(t)
	return t
}

func validMIS(g *graph.Graph, res *sim.Result) bool {
	labels := make([]any, len(res.Outputs))
	copy(labels, res.Outputs)
	return lcl.MIS().Validate(lcl.Instance{G: g}, labels) == nil
}

func validMatch(g *graph.Graph, res *sim.Result) bool {
	labels := make([]lcl.MatchLabel, len(res.Outputs))
	for v, o := range res.Outputs {
		labels[v] = o.(lcl.MatchLabel)
	}
	return lcl.ValidateMatching(lcl.Instance{G: g}, labels) == nil
}

// E11Sinkless: the Brandt et al. problems — randomized sinkless orientation
// convergence and the Lemma 1/2 reductions in action.
func E11Sinkless(cfg Config) *Table {
	t := &Table{
		ID:    "E11",
		Title: "sinkless orientation and the Lemma 1–2 reductions",
		Claim: "sinkless orientation solves fast in RandLOCAL on Δ-regular edge-colored " +
			"graphs, and the coloring↔orientation reductions preserve validity with the " +
			"failure correspondences of Lemmas 1 and 2",
		Columns: []string{"n", "Δ", "orient ok", "last sink step", "color-from-orient ok", "orient-from-color ok"},
	}
	r := rng.New(cfg.Seed + 11)
	halves := cfg.sizes([]int{32, 128}, []int{32, 128, 512, 2048})
	for _, half := range halves {
		d := 3
		ecg := graph.RandomRegularBipartite(half, d, r)
		cfg.Row(t, func(t *Table) {
			inst := lcl.Instance{G: ecg.Graph, EdgeColors: ecg.Colors, NumEdgeColors: d}
			inputs := inst.NodeInputs()
			res, err := sim.Run(ecg.Graph, cfg.sim(t, sim.Config{Randomized: true, Seed: cfg.Seed + uint64(half), Inputs: inputs}),
				sinkless.NewOrientFactory(sinkless.OrientOptions{}))
			if err != nil {
				panic(err)
			}
			orientOK := "yes"
			if lcl.ValidateOrientation(inst, sinkless.OrientLabels(res.Outputs)) != nil {
				orientOK = "NO"
			}
			worst := 0
			for _, s := range sinkless.LastSinkSteps(res.Outputs) {
				if s > worst {
					worst = s
				}
			}
			cRes, err := sim.Run(ecg.Graph, cfg.sim(t, sim.Config{Randomized: true, Seed: cfg.Seed + uint64(half) + 3, Inputs: inputs}),
				sinkless.NewColoringFromOrientationFactory(sinkless.NewOrientFactory(sinkless.OrientOptions{})))
			if err != nil {
				panic(err)
			}
			colorOK := "yes"
			if lcl.SinklessColoring(d).Validate(inst, lcl.IntLabels(sim.IntOutputs(cRes))) != nil {
				colorOK = "NO"
			}
			oRes, err := sim.Run(ecg.Graph, cfg.sim(t, sim.Config{Randomized: true, Seed: cfg.Seed + uint64(half) + 5, Inputs: inputs}),
				sinkless.NewOrientFromColoringFactory(sinkless.NewColoringFromOrientationFactory(
					sinkless.NewOrientFactory(sinkless.OrientOptions{}))))
			if err != nil {
				panic(err)
			}
			ofcOK := "yes"
			labels := make([]lcl.OrientationLabel, len(oRes.Outputs))
			for v, o := range oRes.Outputs {
				labels[v] = o.(lcl.OrientationLabel)
			}
			if lcl.ValidateOrientation(inst, labels) != nil {
				ofcOK = "NO"
			}
			t.AddRow(ecg.N(), d, orientOK, worst, colorOK, ofcOK)
		})
	}
	cfg.Flush(t)
	t.Note("'last sink step' is when the final sink token died — far inside the O(log n) budget, " +
		"the RandLOCAL upper-bound side that Theorem 4 shows cannot drop below Ω(log_Δ log n)")
	return t
}

// completeTreeOfSize builds a complete k-ary tree with at least n vertices
// (the smallest depth that reaches n).
func completeTreeOfSize(k, n int) *graph.Graph {
	depth := 1
	for {
		g := graph.CompleteKAry(k, depth)
		if g.N() >= n || depth > 12 {
			return g
		}
		depth++
	}
}
