// Package harness drives the experiment suite: each E* function reproduces
// one quantitative claim of the paper (the DESIGN.md experiment index) and
// returns a Table whose rows come from real simulator runs. cmd/localbench
// renders the tables; bench_test.go wraps the same drivers as benchmarks;
// EXPERIMENTS.md records the outputs next to the paper's claims.
package harness

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
	"time"
	"unicode/utf8"
)

// Table is one experiment's result: a claim, columns, measured rows, notes.
type Table struct {
	ID      string
	Title   string
	Claim   string
	Columns []string
	Rows    [][]string
	Notes   []string

	// sweep is the row-level checkpoint bookkeeping attached by the first
	// Config.Row call (see checkpoint.go); nil for tables built without
	// checkpointing.
	sweep *sweepState
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...any) {
	t.Rows = append(t.Rows, formatRow(cells))
}

// formatRow stringifies one row of cells with stable-width numeric
// formatting: floats (both sizes) at 4 significant digits, durations rounded
// to 4 significant digits before rendering. Everything else goes through
// fmt.Sprint.
func formatRow(cells []any) []string {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		case time.Duration:
			row[i] = formatDuration(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	return row
}

// formatFloat renders a float cell at 4 significant digits, spelling out the
// non-finite values explicitly: %g would render them as NaN/+Inf/-Inf anyway,
// but routing them through a precision-limited verb invites accidental
// reformatting — the explicit cases pin the table (and golden-file) encoding.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%.4g", v)
}

// formatDuration rounds a duration to 4 significant digits so cells like
// 1.234567891s render as the stable-width 1.235s rather than a full
// nanosecond tail.
func formatDuration(d time.Duration) string {
	if d == 0 {
		return "0s"
	}
	abs := d
	if abs < 0 {
		abs = -abs
	}
	grain := time.Duration(1)
	for abs/grain >= 10000 {
		grain *= 10
	}
	return d.Round(grain).String()
}

// Note appends a free-form note line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes an aligned plain-text table. Column widths are measured in
// runes, not bytes, so multi-byte cells (Δ, ≤, →) stay aligned.
func (t *Table) Render(w io.Writer) {
	t.assertCommitted("Render")
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	fmt.Fprintf(w, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = utf8.RuneCountInString(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if n := utf8.RuneCountInString(cell); i < len(widths) && n > widths[i] {
				widths[i] = n
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// CSV writes the rows as RFC 4180 comma-separated values (header first):
// cells containing commas, quotes or newlines are quoted, so no cell can
// silently corrupt the record structure.
func (t *Table) CSV(w io.Writer) {
	t.assertCommitted("CSV")
	cw := csv.NewWriter(w)
	cw.Write(t.Columns)
	for _, row := range t.Rows {
		cw.Write(row)
	}
	cw.Flush()
}

// Markdown writes a GitHub-flavored markdown table (for EXPERIMENTS.md).
// Pipes in headers and cells are escaped as \| so no cell can break the
// table layout.
func (t *Table) Markdown(w io.Writer) {
	t.assertCommitted("Markdown")
	fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "*Claim:* %s\n\n", t.Claim)
	fmt.Fprintf(w, "| %s |\n", strings.Join(mdEscape(t.Columns), " | "))
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(mdEscape(row), " | "))
	}
	fmt.Fprintln(w)
	for _, n := range t.Notes {
		fmt.Fprintf(w, "*Note:* %s\n\n", n)
	}
}

// mdEscape escapes markdown table delimiters in every cell.
func mdEscape(cells []string) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		out[i] = strings.ReplaceAll(c, "|", `\|`)
	}
	return out
}

func pad(s string, w int) string {
	if n := utf8.RuneCountInString(s); n < w {
		return s + strings.Repeat(" ", w-n)
	}
	return s
}

// Config controls experiment scale and, for supervised runs, the sweep's
// cancellation and checkpointing hooks (all optional; the zero hooks give
// the historical one-shot behavior).
type Config struct {
	// Quick shrinks instance sizes and repetition counts so the whole
	// suite runs in seconds (used by tests and -quick benchmarking);
	// the full scale is the EXPERIMENTS.md record.
	Quick bool
	// Seed drives all randomness.
	Seed uint64
	// Workers, when > 1, fans the sweep's row computations out over that
	// many worker goroutines (see parallel.go): rows are computed
	// speculatively out of order and committed strictly in row-index
	// order, so tables, checkpoints and OnBatch calls are byte-identical
	// to a Workers<=1 run. 0 and 1 compute rows inline (the historical
	// behavior). Workers is not part of the checkpoint identity.
	Workers int
	// Ctx, when non-nil, cancels a sweep between row batches: Config.Row
	// aborts with a panicked *SweepError as soon as the context dies.
	Ctx context.Context
	// Resume seeds Config.Row replay from a previously recorded
	// checkpoint. Incompatible checkpoints (different experiment, seed or
	// scale) are ignored and the sweep starts fresh. The checkpoint may be
	// sparse (nil batches are holes, see RowSelect): recorded batches are
	// replayed, holes are recomputed in place.
	Resume *Checkpoint
	// RowSelect, when non-nil, runs the sweep in sharded mode: only batch
	// indices for which RowSelect returns true are computed; the rest are
	// recorded as nil holes in the checkpoint (unless Resume already holds
	// them, in which case they are replayed). A sharded sweep never reaches
	// the driver's cross-row note code: Config.Flush ends it by panicking a
	// *ShardDoneError carrying the final sparse checkpoint, which
	// supervision layers treat as success. Coordinators merge shard
	// checkpoints with Checkpoint.Adopt and rebuild the full table by
	// re-running the driver with Resume set to the merged checkpoint.
	RowSelect func(batch int) bool
	// OnBatch is invoked after each freshly computed row batch with the
	// checkpoint accumulated so far, for persistence. The pointee is owned
	// by the sweep and mutated as it progresses: persist synchronously or
	// Clone. Replayed batches do not re-fire it.
	OnBatch func(*Checkpoint)
	// Obs, when non-nil, receives the sweep's telemetry (per-round simulator
	// stats, per-batch commit progress). Like OnBatch it observes — never
	// influences — the sweep: tables, checkpoints and OnBatch sequences are
	// byte-identical with or without it (see observe.go).
	Obs Observer
}

// sizes picks an n-sweep.
func (c Config) sizes(quick, full []int) []int {
	if c.Quick {
		return quick
	}
	return full
}

// trials picks a repetition count.
func (c Config) trials(quick, full int) int {
	if c.Quick {
		return quick
	}
	return full
}
