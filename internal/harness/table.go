// Package harness drives the experiment suite: each E* function reproduces
// one quantitative claim of the paper (the DESIGN.md experiment index) and
// returns a Table whose rows come from real simulator runs. cmd/localbench
// renders the tables; bench_test.go wraps the same drivers as benchmarks;
// EXPERIMENTS.md records the outputs next to the paper's claims.
package harness

import (
	"context"
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's result: a claim, columns, measured rows, notes.
type Table struct {
	ID      string
	Title   string
	Claim   string
	Columns []string
	Rows    [][]string
	Notes   []string

	// sweep is the row-level checkpoint bookkeeping attached by the first
	// Config.Row call (see checkpoint.go); nil for tables built without
	// checkpointing.
	sweep *sweepState
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a free-form note line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes an aligned plain-text table.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	fmt.Fprintf(w, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// CSV writes the rows as comma-separated values (header first).
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Columns, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// Markdown writes a GitHub-flavored markdown table (for EXPERIMENTS.md).
func (t *Table) Markdown(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "*Claim:* %s\n\n", t.Claim)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | "))
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	fmt.Fprintln(w)
	for _, n := range t.Notes {
		fmt.Fprintf(w, "*Note:* %s\n\n", n)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Config controls experiment scale and, for supervised runs, the sweep's
// cancellation and checkpointing hooks (all optional; the zero hooks give
// the historical one-shot behavior).
type Config struct {
	// Quick shrinks instance sizes and repetition counts so the whole
	// suite runs in seconds (used by tests and -quick benchmarking);
	// the full scale is the EXPERIMENTS.md record.
	Quick bool
	// Seed drives all randomness.
	Seed uint64
	// Ctx, when non-nil, cancels a sweep between row batches: Config.Row
	// aborts with a panicked *SweepError as soon as the context dies.
	Ctx context.Context
	// Resume seeds Config.Row replay from a previously recorded
	// checkpoint. Incompatible checkpoints (different experiment, seed or
	// scale) are ignored and the sweep starts fresh.
	Resume *Checkpoint
	// OnBatch is invoked after each freshly computed row batch with the
	// checkpoint accumulated so far, for persistence. The pointee is owned
	// by the sweep and mutated as it progresses: persist synchronously or
	// Clone. Replayed batches do not re-fire it.
	OnBatch func(*Checkpoint)
}

// sizes picks an n-sweep.
func (c Config) sizes(quick, full []int) []int {
	if c.Quick {
		return quick
	}
	return full
}

// trials picks a repetition count.
func (c Config) trials(quick, full int) int {
	if c.Quick {
		return quick
	}
	return full
}
