package harness_test

import (
	"bytes"
	"strings"
	"testing"

	"locality/internal/harness"
)

// TestAllExperimentsQuick runs the full experiment suite in quick mode and
// checks every table renders, has rows, and reports no validity failures.
func TestAllExperimentsQuick(t *testing.T) {
	tables := harness.All(harness.Config{Quick: true, Seed: 12345})
	if len(tables) != 11 {
		t.Fatalf("got %d tables, want 11", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: no rows", tbl.ID)
		}
		var buf bytes.Buffer
		tbl.Render(&buf)
		out := buf.String()
		if !strings.Contains(out, tbl.ID) {
			t.Errorf("%s: render missing ID", tbl.ID)
		}
		if strings.Contains(out, " NO ") || strings.Contains(out, " NO\n") {
			t.Errorf("%s: validity failure in table:\n%s", tbl.ID, out)
		}
		var csv, md bytes.Buffer
		tbl.CSV(&csv)
		tbl.Markdown(&md)
		if csv.Len() == 0 || md.Len() == 0 {
			t.Errorf("%s: empty CSV/Markdown", tbl.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := harness.ByID("e4"); !ok {
		t.Error("lowercase id not found")
	}
	if _, ok := harness.ByID("E99"); ok {
		t.Error("nonexistent id found")
	}
}

// TestSupplementaryExperimentsQuick runs E12, E13 and the ablations A1-A3.
func TestSupplementaryExperimentsQuick(t *testing.T) {
	tables := harness.AllSupplementary(harness.Config{Quick: true, Seed: 9})
	if len(tables) != 5 {
		t.Fatalf("got %d supplementary tables, want 5", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: no rows", tbl.ID)
		}
		var buf bytes.Buffer
		tbl.Render(&buf)
		// A3 deliberately contains one failing row (the undersized bound)
		// and E12's whole point is visible degradation under faults;
		// E13/A1/A2 must be all-clean.
		if tbl.ID != "A3" && tbl.ID != "E12" && strings.Contains(buf.String(), " NO") {
			t.Errorf("%s: validity failure:\n%s", tbl.ID, buf.String())
		}
	}
}

func TestByIDSupplementary(t *testing.T) {
	if _, ok := harness.ByIDSupplementary("A1"); !ok {
		t.Error("A1 not found")
	}
	if _, ok := harness.ByIDSupplementary("E1"); ok {
		t.Error("E1 should not be in the supplementary registry")
	}
}
