package harness

import (
	"fmt"

	"locality/internal/core"

	"locality/internal/forest"
	"locality/internal/graph"
	"locality/internal/ids"
	"locality/internal/lcl"
	"locality/internal/linial"
	"locality/internal/mathx"
	"locality/internal/rng"
	"locality/internal/sim"
	"locality/internal/view"
)

// This file holds the supplementary experiments: E12 (graceful degradation
// under fault injection, in faulttolerance.go), E13 (the indistinguishability
// principle made mechanical) and the ablations A1–A3 on the library's own
// design choices.

// AllSupplementary runs E12, E13 and the ablations.
func AllSupplementary(cfg Config) []*Table {
	return []*Table{
		E12FaultTolerance(cfg),
		E13Indistinguishability(cfg),
		A1KWvsSweep(cfg),
		A2PeelThreshold(cfg),
		A3SizeBound(cfg),
	}
}

// ByIDSupplementary resolves the supplementary drivers.
func ByIDSupplementary(id string) (func(Config) *Table, bool) {
	m := map[string]func(Config) *Table{
		"E12": E12FaultTolerance,
		"E13": E13Indistinguishability,
		"A1":  A1KWvsSweep,
		"A2":  A2PeelThreshold,
		"A3":  A3SizeBound,
	}
	f, ok := m[id]
	return f, ok
}

// E13Indistinguishability makes the proof device of Theorems 4/5
// mechanical: on a Δ-regular graph with girth > 2t+1, the radius-t view of
// every vertex is a tree, so no t-round algorithm can distinguish the graph
// from a tree — which is how the lower bounds transfer from high-girth
// graphs to trees. The experiment certifies the girth, collects every
// radius-t view through the simulator, and verifies each is acyclic.
func E13Indistinguishability(cfg Config) *Table {
	t := &Table{
		ID:    "E13",
		Title: "indistinguishability: high-girth balls are trees",
		Claim: "on a Δ-regular graph with girth g, every radius-t view with 2t+1 < g is " +
			"acyclic — t-round algorithms behave identically on the graph and on a tree",
		Columns: []string{"n", "Δ", "girth ≥", "t", "balls checked", "all trees"},
	}
	r := rng.New(cfg.Seed + 12)
	half := 64
	if !cfg.Quick {
		half = 256
	}
	const d = 3
	for _, minGirth := range []int{6, 8} {
		ecg, err := graph.HighGirthRegular(half, d, minGirth, 500, r)
		if err != nil {
			t.Note("girth %d: %v (skipped)", minGirth, err)
			continue
		}
		cfg.Row(t, func(t *Table) {
			tRounds := (minGirth - 2) / 2 // 2t+1 < g
			res, err := sim.Run(ecg.Graph, cfg.sim(t, sim.Config{IDs: ids.Sequential(ecg.N())}),
				view.NewCollectMachineFactory(tRounds, nil))
			if err != nil {
				panic(fmt.Sprintf("harness: E13 collection: %v", err))
			}
			allTrees := "yes"
			for v := 0; v < ecg.N(); v++ {
				ballVerts := ecg.BallVertices(v, tRounds)
				keep := make([]bool, ecg.N())
				for _, u := range ballVerts {
					keep[u] = true
				}
				sub, _, _ := ecg.InducedSubgraph(keep)
				if !sub.IsTree() {
					allTrees = "NO"
					break
				}
				// The collected ball must agree on the vertex count.
				ball := res.Outputs[v].(*view.Ball)
				if ball.N() != len(ballVerts) {
					allTrees = "NO (collection mismatch)"
					break
				}
			}
			t.AddRow(ecg.N(), d, minGirth, tRounds, ecg.N(), allTrees)
		})
	}
	cfg.Flush(t)
	t.Note("this is the 'hard graphs have girth Ω(log_Δ n), so the lower bounds also apply " +
		"to trees' step of Theorems 4 and 5, checked instance by instance")
	return t
}

// A1KWvsSweep ablates the final color-reduction strategy: the naive
// (fp - target)-round class sweep vs the Kuhn–Wattenhofer block reduction.
func A1KWvsSweep(cfg Config) *Table {
	t := &Table{
		ID:    "A1",
		Title: "ablation: class sweep vs Kuhn–Wattenhofer reduction",
		Claim: "KW reduces O(Δ²) colors to Δ+1 in O(Δ log Δ) rounds instead of O(Δ²); " +
			"it is what keeps the deterministic MIS/matching/bootstrap phases affordable",
		Columns: []string{"Δ", "fixed point", "sweep rounds", "KW rounds", "both valid"},
	}
	n := 256
	if !cfg.Quick {
		n = 1024
	}
	r := rng.New(cfg.Seed + 21)
	for _, delta := range []int{4, 8, 16, 32} {
		g := graph.RandomTree(n, delta, r)
		assignment := ids.Shuffled(n, r)
		cfg.Row(t, func(t *Table) {
			dd := g.MaxDegree()
			fp := linial.FixedPoint(n, dd)
			valid := true
			var rounds [2]int
			for i, kw := range []bool{false, true} {
				opt := linial.Options{InitialPalette: n, Delta: dd, Target: dd + 1, KW: kw}
				res, err := sim.Run(g, cfg.sim(t, sim.Config{IDs: assignment, MaxRounds: 1 << 22}), linial.NewFactory(opt))
				if err != nil {
					panic(fmt.Sprintf("harness: A1 run: %v", err))
				}
				rounds[i] = res.Rounds
				if lcl.Coloring(dd+1).Validate(lcl.Instance{G: g}, lcl.IntLabels(sim.IntOutputs(res))) != nil {
					valid = false
				}
			}
			okStr := "yes"
			if !valid {
				okStr = "NO"
			}
			t.AddRow(dd, fp, rounds[0], rounds[1], okStr)
		})
	}
	cfg.Flush(t)
	return t
}

// A2PeelThreshold ablates the forest-decomposition peeling threshold A:
// smaller A means more layers (more rounds linear in log n) but cheaper
// sweeps; larger A means fewer layers but Θ(A²) Linial fixed points.
func A2PeelThreshold(cfg Config) *Table {
	t := &Table{
		ID:    "A2",
		Title: "ablation: peeling threshold A in the Theorem 9 role",
		Claim: "rounds = O(L·A + A² + log* n) with L = O(log n / log((A+1)/2)): the A " +
			"sweet spot balances layer count against sweep width",
		Columns: []string{"A", "n", "peel layers", "total rounds", "valid"},
	}
	n := 4096
	if cfg.Quick {
		n = 1024
	}
	r := rng.New(cfg.Seed + 22)
	g := graph.RandomTree(n, 12, r)
	assignment := ids.Shuffled(n, r)
	for _, a := range []int{2, 4, 8, 11} {
		cfg.Row(t, func(t *Table) {
			opt := forest.Options{Q: 12, A: a}
			plan := forest.NewPlan(opt.Resolve(n))
			res, err := sim.Run(g, cfg.sim(t, sim.Config{IDs: assignment, MaxRounds: 1 << 22}), forest.NewFactory(opt))
			if err != nil {
				panic(fmt.Sprintf("harness: A2 run: %v", err))
			}
			t.AddRow(a, n, plan.Peel, res.Rounds,
				checkColoring(g, 12, sim.IntOutputs(res)))
		})
	}
	cfg.Flush(t)
	return t
}

// A3SizeBound ablates the shattered-component size bound of Theorem 11's
// Phase 2: too small a bound makes components overflow (visible failures);
// larger bounds cost rounds logarithmically.
func A3SizeBound(cfg Config) *Table {
	t := &Table{
		ID:    "A3",
		Title: "ablation: Phase-2 component size bound (Theorem 11)",
		Claim: "Phase 2's round budget is built from the component size bound: rounds grow " +
			"logarithmically in the bound, and an overflowing component fails visibly (never silently)",
		Columns: []string{"size bound", "n", "rounds", "failed vertices", "valid"},
	}
	n := 2048
	if cfg.Quick {
		n = 512
	}
	r := rng.New(cfg.Seed + 23)
	g := graph.RandomTree(n, 4, r)
	logn := mathx.CeilLog2(n + 1)
	for _, bound := range []int{3, 2 * logn, 8 * logn, 32 * logn} {
		cfg.Row(t, func(t *Table) {
			res, err := sim.Run(g, cfg.sim(t, sim.Config{Randomized: true, Seed: cfg.Seed + uint64(bound), MaxRounds: 1 << 22}),
				core.NewT11Factory(core.T11Options{Delta: 4, SizeBound: bound}))
			if err != nil {
				panic(fmt.Sprintf("harness: A3 run: %v", err))
			}
			colors := core.Colors(res.Outputs)
			failed := 0
			for _, c := range colors {
				if c == 0 {
					failed++
				}
			}
			t.AddRow(bound, n, res.Rounds, failed, checkColoring(g, 4, colors))
		})
	}
	cfg.Flush(t)
	t.Note("even the tiny bound rarely fails in practice: the shattered components are " +
		"path-like (S lives inside a degree-<=3 leftover forest) and peel within any budget; " +
		"the informative column is the rounds growth — logarithmic in the bound, which is why " +
		"the O(log n) choice adds only O(log log n) rounds, the crux of the Theorem 11 runtime")
	return t
}
