package harness

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

// renderTable captures the exact bytes cmd/localbench would emit for a table.
func renderTable(t *Table) []byte {
	var buf bytes.Buffer
	t.Render(&buf)
	return buf.Bytes()
}

// lookupDriver resolves an experiment ID across both registries.
func lookupDriver(t *testing.T, id string) func(Config) *Table {
	t.Helper()
	if f, ok := ByID(id); ok {
		return f
	}
	if f, ok := ByIDSupplementary(id); ok {
		return f
	}
	t.Fatalf("unknown experiment %s", id)
	return nil
}

// countBatches runs a driver to completion and reports how many cfg.Row
// batches it records.
func countBatches(driver func(Config) *Table, cfg Config) int {
	n := 0
	cfg.OnBatch = func(*Checkpoint) { n++ }
	cfg.Ctx = nil
	cfg.Resume = nil
	driver(cfg)
	return n
}

// TestSweepResumeByteIdentical is the core checkpoint guarantee: kill a sweep
// between row batches, persist the checkpoint through its JSON round trip,
// resume, and get byte-identical rendered output — while recomputing only the
// rows the first run never reached.
func TestSweepResumeByteIdentical(t *testing.T) {
	for _, id := range []string{"E2", "E4", "E8", "E12"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			driver := lookupDriver(t, id)
			base := Config{Quick: true, Seed: 7}
			baseline := renderTable(driver(base))
			total := countBatches(driver, base)
			if total < 2 {
				t.Fatalf("%s records %d batches; need >= 2 to interrupt", id, total)
			}

			for _, kill := range []int{1, total / 2, total - 1} {
				// Interrupted run: cancel once `kill` batches are recorded.
				ctx, cancel := context.WithCancel(context.Background())
				var saved *Checkpoint
				cfg := base
				cfg.Ctx = ctx
				cfg.OnBatch = func(ck *Checkpoint) {
					saved = ck.Clone()
					if len(saved.Batches) >= kill {
						cancel()
					}
				}
				func() {
					defer func() {
						r := recover()
						if r == nil {
							t.Fatalf("kill=%d: sweep finished despite cancellation", kill)
						}
						se, ok := r.(*SweepError)
						if !ok {
							t.Fatalf("kill=%d: panicked %T (%v), want *SweepError", kill, r, r)
						}
						if !errors.Is(se, ErrSweepInterrupted) || !errors.Is(se, context.Canceled) {
							t.Fatalf("kill=%d: SweepError %v does not match both sentinels", kill, se)
						}
						if se.Experiment != id || se.BatchesDone != kill {
							t.Fatalf("kill=%d: SweepError reports (%s, %d batches)",
								kill, se.Experiment, se.BatchesDone)
						}
					}()
					driver(cfg)
				}()
				if saved == nil || len(saved.Batches) != kill {
					t.Fatalf("kill=%d: checkpoint holds %d batches", kill, saved.Rows())
				}

				// Persistence round trip: the resume state survives JSON.
				enc, err := saved.Encode()
				if err != nil {
					t.Fatalf("kill=%d: encode: %v", kill, err)
				}
				restored, err := DecodeCheckpoint(enc)
				if err != nil {
					t.Fatalf("kill=%d: decode: %v", kill, err)
				}

				// Resumed run: replays the recorded batches, recomputes the rest.
				fresh := 0
				resumeCfg := base
				resumeCfg.Resume = restored
				resumeCfg.OnBatch = func(*Checkpoint) { fresh++ }
				resumed := renderTable(driver(resumeCfg))
				if !bytes.Equal(resumed, baseline) {
					t.Errorf("kill=%d: resumed output differs from uninterrupted run\n--- want ---\n%s--- got ---\n%s",
						kill, baseline, resumed)
				}
				if fresh != total-kill {
					t.Errorf("kill=%d: resume recomputed %d batches, want %d", kill, fresh, total-kill)
				}
			}
		})
	}
}

// TestSweepResumeIncompatibleIgnored ensures a checkpoint from a different
// run identity never contaminates a sweep: the resume is ignored and the
// sweep recomputes everything.
func TestSweepResumeIncompatibleIgnored(t *testing.T) {
	driver := lookupDriver(t, "E8")
	base := Config{Quick: true, Seed: 7}
	baseline := renderTable(driver(base))
	total := countBatches(driver, base)

	stale := &Checkpoint{Experiment: "E8", Seed: 8, Quick: true,
		Batches: [][][]string{{{"bogus", "row"}}}}
	fresh := 0
	cfg := base
	cfg.Resume = stale
	cfg.OnBatch = func(*Checkpoint) { fresh++ }
	got := renderTable(driver(cfg))
	if !bytes.Equal(got, baseline) {
		t.Errorf("stale checkpoint leaked into output:\n%s", got)
	}
	if fresh != total {
		t.Errorf("stale resume recomputed %d batches, want all %d", fresh, total)
	}
}

// TestCheckpointCompatible pins the identity rule.
func TestCheckpointCompatible(t *testing.T) {
	ck := &Checkpoint{Experiment: "E4", Seed: 7, Quick: true}
	cfg := Config{Quick: true, Seed: 7}
	if !ck.Compatible("E4", cfg) {
		t.Error("identical identity rejected")
	}
	if ck.Compatible("E5", cfg) {
		t.Error("experiment mismatch accepted")
	}
	if ck.Compatible("E4", Config{Quick: true, Seed: 8}) {
		t.Error("seed mismatch accepted")
	}
	if ck.Compatible("E4", Config{Quick: false, Seed: 7}) {
		t.Error("scale mismatch accepted")
	}
	var nilCk *Checkpoint
	if nilCk.Compatible("E4", cfg) {
		t.Error("nil checkpoint accepted")
	}
	if nilCk.Rows() != 0 || nilCk.Clone() != nil {
		t.Error("nil checkpoint helpers not nil-safe")
	}
}

// TestRetryContextCancellation: a dead context abandons the budget between
// attempts, the backoff wait is interruptible, and the abandonment is
// classified by errors.Is rather than left ambiguous.
func TestRetryContextCancellation(t *testing.T) {
	// Cancelled before the first attempt: zero attempts consumed.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	res := RetryContext(ctx, 5, Backoff{}, func(int) error { ran = true; return nil })
	if ran || res.Attempts != 0 || res.Success {
		t.Fatalf("dead context still ran: %+v", res)
	}
	if !errors.Is(res.LastErr, context.Canceled) {
		t.Fatalf("LastErr %v does not unwrap to context.Canceled", res.LastErr)
	}

	// Cancelled during the backoff wait: the hour-long delay is abandoned
	// promptly and the remaining budget is not spent.
	ctx2, cancel2 := context.WithCancel(context.Background())
	attempts := 0
	start := time.Now()
	res = RetryContext(ctx2, 5, Backoff{Base: time.Hour, Seed: 1}, func(int) error {
		attempts++
		cancel2()
		return errors.New("transient")
	})
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("backoff wait not abandoned: took %v", elapsed)
	}
	if attempts != 1 || res.Attempts != 1 || res.Success {
		t.Fatalf("want exactly one attempt then abandonment, got %+v", res)
	}
	if !errors.Is(res.LastErr, context.Canceled) {
		t.Fatalf("LastErr %v does not unwrap to context.Canceled", res.LastErr)
	}

	// Deadline-based cancellation classifies as DeadlineExceeded.
	ctx3, cancel3 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel3()
	res = RetryContext(ctx3, 3, Backoff{}, func(int) error { return errors.New("x") })
	if !errors.Is(res.LastErr, context.DeadlineExceeded) {
		t.Fatalf("LastErr %v does not unwrap to context.DeadlineExceeded", res.LastErr)
	}
}

// TestRetrySemanticsUnchanged pins the legacy wrapper: full budget on
// persistent failure, early stop on success, attempt numbering from 0.
func TestRetrySemanticsUnchanged(t *testing.T) {
	var seen []int
	res := Retry(4, func(attempt int) error {
		seen = append(seen, attempt)
		if attempt == 2 {
			return nil
		}
		return errors.New("try again")
	})
	if !res.Success || res.Attempts != 3 || res.LastErr != nil {
		t.Fatalf("unexpected result %+v", res)
	}
	if len(seen) != 3 || seen[0] != 0 || seen[2] != 2 {
		t.Fatalf("attempt numbering %v", seen)
	}
	if got := res.SuccessRate(); got != 1.0/3 {
		t.Fatalf("SuccessRate %v", got)
	}

	res = Retry(2, func(int) error { return errors.New("always") })
	if res.Success || res.Attempts != 2 || res.LastErr == nil {
		t.Fatalf("persistent failure result %+v", res)
	}
}

// TestBackoffDeterministic: the schedule is pure arithmetic on (Seed,
// attempt) — reproducible, jittered within [0.5, 1.5) of nominal, capped.
func TestBackoffDeterministic(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 2 * time.Second, Seed: 42}
	for attempt := 0; attempt <= 8; attempt++ {
		d1, d2 := b.Delay(attempt), b.Delay(attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: non-deterministic delay %v vs %v", attempt, d1, d2)
		}
		if attempt == 0 {
			if d1 != 0 {
				t.Fatalf("attempt 0 waits %v", d1)
			}
			continue
		}
		nominal := b.Base << (attempt - 1)
		if nominal > b.Max {
			nominal = b.Max
		}
		lo := time.Duration(float64(nominal) * 0.5)
		if d1 < lo || d1 > b.Max {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d1, lo, b.Max)
		}
	}
	if (Backoff{}).Delay(3) != 0 {
		t.Fatal("zero Backoff must not wait")
	}
	if d := (Backoff{Base: time.Millisecond, Seed: 9}).Delay(63); d <= 0 {
		t.Fatalf("overflow-guarded delay went non-positive: %v", d)
	}
	// Different seeds give different jitter streams (overwhelmingly likely).
	alt := Backoff{Base: 100 * time.Millisecond, Max: 2 * time.Second, Seed: 43}
	same := true
	for attempt := 1; attempt <= 4; attempt++ {
		if alt.Delay(attempt) != b.Delay(attempt) {
			same = false
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical schedules")
	}
}
