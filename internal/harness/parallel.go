package harness

// Deterministic parallel row scheduling.
//
// A sweep's rows are embarrassingly parallel: the checkpoint discipline
// (checkpoint.go) already requires each compute closure to be a pure
// function of its prep state and per-row seeds, with every shared-stream
// RNG draw in the driver's prep section. Config.Workers exploits exactly
// that contract: Row enqueues the closure instead of running it, a bounded
// worker set computes batches speculatively — possibly out of order, each
// into a private staging table — and the driver goroutine commits finished
// batches strictly in row-index order. Because commits (table append,
// checkpoint record, OnBatch) happen only on the driver goroutine and only
// in order, everything observable — rendered bytes, checkpoint contents,
// OnBatch sequence, resume behavior — is identical to a Workers=1 run.
//
// Ordering and failure rules:
//
//   - Speculation is bounded: the queue holds at most `workers` batches, so
//     at most 2×workers batches (queued + in flight) exist beyond the
//     committed prefix, which bounds the prep state kept alive.
//   - Cancellation keeps row granularity: a dead Config.Ctx is observed
//     before each commit and while enqueueing or flushing; the sweep then
//     stops committing, reaps its workers, and panics the same *SweepError
//     a sequential sweep would. Speculative batches that finished after the
//     cancellation point are discarded — determinism makes recomputing them
//     on resume byte-equivalent.
//   - A panicking compute closure is recovered on the worker, held with its
//     batch, and re-panicked on the driver goroutine when the batch reaches
//     its in-order commit slot — after the workers are reaped — so the
//     (row-index)-first failure surfaces, exactly as it would sequentially.
//
// Replayed batches reach the scheduler only when speculation is already
// pending: with a prefix resume checkpoint Row replays synchronously before
// the first closure is enqueued, but a sparse checkpoint (sharded sweeps,
// coordinator merges — see Config.RowSelect) interleaves replays and holes
// with computes, so those ride the pending queue as pre-finished markers to
// keep commits in row-index order.

import (
	"context"
	"sync"
)

// batchKind distinguishes what a pending slot commits: a speculative
// compute, a replay of recorded rows, or a hole skipped in sharded mode.
type batchKind uint8

const (
	batchCompute batchKind = iota
	batchReplay
	batchSkip
)

// specBatch is one pending row batch. For batchCompute it carries the
// closure, the private staging table it fills, and the recovered panic
// value if it failed; done is closed when the worker finishes either way.
// batchReplay and batchSkip slots are born finished (done pre-closed) and
// exist only to hold their place in the commit order — rows holds the
// recorded batch to replay.
type specBatch struct {
	kind     batchKind
	compute  func(*Table)
	staging  *Table
	rows     [][]string
	panicked any
	done     chan struct{}
}

// run executes the batch on a worker goroutine.
func (sb *specBatch) run() {
	defer close(sb.done)
	defer func() {
		if r := recover(); r != nil {
			sb.panicked = r
		}
	}()
	sb.compute(sb.staging)
}

// rowScheduler owns a parallel sweep's worker goroutines and its uncommitted
// batches. It is driven entirely from the driver goroutine; only specBatch
// computation happens on workers.
type rowScheduler struct {
	workers int
	ctx     context.Context // Config.Ctx; may be nil

	queue   chan *specBatch
	quit    chan struct{}
	wg      sync.WaitGroup
	pending []*specBatch // enqueued, uncommitted, in row-index order
	started bool
	stopped bool
}

// start spawns the workers on the first enqueue, so fully replayed sweeps
// never spin up goroutines.
func (sc *rowScheduler) start() {
	if sc.started {
		return
	}
	sc.started = true
	sc.queue = make(chan *specBatch, sc.workers)
	sc.quit = make(chan struct{})
	for i := 0; i < sc.workers; i++ {
		sc.wg.Add(1)
		go func() {
			defer sc.wg.Done()
			for {
				// Prefer quit so a stopping sweep stops promptly even when
				// the queue still holds work.
				select {
				case <-sc.quit:
					return
				default:
				}
				select {
				case sb, ok := <-sc.queue:
					if !ok {
						return
					}
					sb.run()
				case <-sc.quit:
					return
				}
			}
		}()
	}
}

// ctxDone returns the cancellation channel, or nil when the sweep has no
// context.
func (sc *rowScheduler) ctxDone() <-chan struct{} {
	if sc.ctx == nil {
		return nil
	}
	return sc.ctx.Done()
}

// stop reaps the workers without draining the queue: in-flight batches
// finish their current compute, queued ones are abandoned. Used on abort
// paths (cancellation, compute panic) before re-panicking on the driver
// goroutine.
func (sc *rowScheduler) stop() {
	if sc.stopped {
		return
	}
	sc.stopped = true
	if sc.started {
		close(sc.quit)
		sc.wg.Wait()
	}
}

// finish retires the workers after a fully committed sweep: the queue is
// empty, so closing it lets each worker drain and exit.
func (sc *rowScheduler) finish() {
	if sc.stopped {
		return
	}
	sc.stopped = true
	if sc.started {
		close(sc.queue)
		sc.wg.Wait()
	}
}

// pendingSpec reports whether speculative batches are awaiting commit — the
// condition under which replays and skips must queue for ordering instead
// of landing directly.
func (s *sweepState) pendingSpec() bool {
	return s.sched != nil && len(s.sched.pending) > 0
}

// enqueueDone appends a pre-finished marker batch (replay or skip) to the
// pending queue. It never touches the workers: the slot exists purely so
// the batch commits in row-index order behind the speculation ahead of it.
func (s *sweepState) enqueueDone(sb *specBatch) {
	sb.done = make(chan struct{})
	close(sb.done)
	s.sched.pending = append(s.sched.pending, sb)
}

// enqueue hands a compute closure to the workers. When the queue is
// saturated it blocks — committing batches that become ready in the
// meantime, and aborting if the sweep's context dies.
func (s *sweepState) enqueue(t *Table, compute func(*Table)) {
	sc := s.sched
	sc.start()
	sb := &specBatch{
		compute: compute,
		staging: &Table{ID: t.ID, Title: t.Title, Claim: t.Claim, Columns: t.Columns},
		done:    make(chan struct{}),
	}
	for {
		var headDone chan struct{}
		if len(sc.pending) > 0 {
			headDone = sc.pending[0].done
		}
		select {
		case sc.queue <- sb:
			sc.pending = append(sc.pending, sb)
			return
		case <-headDone:
			s.commitHead(t)
		case <-sc.ctxDone():
			s.abort(s.interrupted(t))
		}
	}
}

// drainReady commits, in order, every pending batch that has already
// finished, without blocking.
func (s *sweepState) drainReady(t *Table) {
	sc := s.sched
	if sc == nil {
		return
	}
	for len(sc.pending) > 0 {
		select {
		case <-sc.pending[0].done:
			s.commitHead(t)
		default:
			return
		}
	}
}

// flush blocks until every pending batch is committed in order, then
// retires the workers. A dead context, or a panicked batch reaching its
// commit slot, aborts instead.
func (s *sweepState) flush(t *Table) {
	sc := s.sched
	for len(sc.pending) > 0 {
		select {
		case <-sc.pending[0].done:
			s.commitHead(t)
		case <-sc.ctxDone():
			s.abort(s.interrupted(t))
		}
	}
	sc.finish()
	s.sched = nil // later Row calls (none in practice) fall back to inline
}

// commitHead commits the oldest pending batch, which must have finished.
// The context is re-checked first so a cancellation raised by the previous
// commit's OnBatch (the supervision layer's kill point) stops the sweep
// before another batch lands.
func (s *sweepState) commitHead(t *Table) {
	if s.ctx != nil && s.ctx.Err() != nil {
		s.abort(s.interrupted(t))
	}
	sc := s.sched
	sb := sc.pending[0]
	sc.pending = sc.pending[1:]
	if sb.panicked != nil {
		s.abort(sb.panicked)
	}
	switch sb.kind {
	case batchReplay:
		s.replayRows(t, sb.rows)
	case batchSkip:
		s.skipBatch(s.committed)
	default:
		s.commitBatch(t, sb.staging.Rows, cloneBatch(sb.staging.Rows))
	}
}

// abort reaps the workers and re-panics v on the driver goroutine. The
// sweep is unusable afterwards; supervision layers recover the panic.
func (s *sweepState) abort(v any) {
	if s.sched != nil {
		s.sched.stop()
	}
	panic(v)
}
