package harness

// Sharded-sweep tests: Config.RowSelect computes only a residue class of a
// sweep's batches, records the rest as checkpoint holes, and ends with a
// panicked *ShardDoneError. Merging the shard checkpoints with Adopt and
// replaying the merged checkpoint must reproduce the unsharded table byte
// for byte — the cluster determinism argument of DESIGN.md §10.

import (
	"encoding/json"
	"errors"
	"testing"
)

// runShard drives one shard of a sharded sweep to its ShardDoneError and
// returns the final sparse checkpoint.
func runShard(t *testing.T, id string, cfg Config) *Checkpoint {
	t.Helper()
	driver := lookupDriver(t, id)
	var ck *Checkpoint
	func() {
		defer func() {
			r := recover()
			sde, ok := r.(*ShardDoneError)
			if !ok {
				t.Fatalf("sharded sweep ended with %v, want *ShardDoneError", r)
			}
			if !errors.Is(sde, ErrShardDone) {
				t.Fatalf("ShardDoneError does not classify as ErrShardDone")
			}
			ck = sde.Checkpoint
		}()
		driver(cfg)
		t.Fatalf("sharded sweep returned without panicking ShardDoneError")
	}()
	return ck
}

// residue selects the batches of shard k out of n.
func residue(k, n int) func(int) bool {
	return func(i int) bool { return i%n == k }
}

// TestShardedSweepMergesByteIdentical is the core round trip: shard a sweep
// three ways, adopt the shard checkpoints into one merged checkpoint, and
// replay it — the rendered table must be byte-identical to the unsharded
// run, with zero batches recomputed.
func TestShardedSweepMergesByteIdentical(t *testing.T) {
	const id, seed = "E4", uint64(7)
	want := renderTable(lookupDriver(t, id)(Config{Quick: true, Seed: seed}))

	const shards = 3
	cks := make([]*Checkpoint, shards)
	for k := 0; k < shards; k++ {
		cks[k] = runShard(t, id, Config{Quick: true, Seed: seed, RowSelect: residue(k, shards)})
	}
	total := cks[0].TotalBatches
	if total < shards {
		t.Fatalf("%s records %d batches; need >= %d for the test to mean anything", id, total, shards)
	}

	merged := &Checkpoint{Experiment: id, Seed: seed, Quick: true}
	for k, ck := range cks {
		if ck.TotalBatches != total || len(ck.Batches) != total {
			t.Fatalf("shard %d checkpoint: total %d len %d, want %d", k, ck.TotalBatches, len(ck.Batches), total)
		}
		for i, b := range ck.Batches {
			if mine := i%shards == k; (b != nil) != mine {
				t.Fatalf("shard %d batch %d: computed=%v, want %v", k, i, b != nil, mine)
			}
		}
		adopted, err := merged.Adopt(ck, "shard")
		if err != nil {
			t.Fatalf("adopt shard %d: %v", k, err)
		}
		if want := (total + shards - 1 - k) / shards; len(adopted) != want {
			t.Errorf("shard %d adopted %d batches, want %d", k, len(adopted), want)
		}
	}
	if !merged.Complete() {
		t.Fatalf("merged checkpoint incomplete: %d/%d computed", merged.Computed(), merged.TotalBatches)
	}

	fresh := 0
	tbl := lookupDriver(t, id)(Config{Quick: true, Seed: seed, Resume: merged,
		OnBatch: func(*Checkpoint) { fresh++ }})
	if got := renderTable(tbl); string(got) != string(want) {
		t.Errorf("merged replay differs from unsharded run:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	if fresh != 0 {
		t.Errorf("merged replay recomputed %d batches, want 0", fresh)
	}
}

// TestShardedParallelCheckpointIdentical: a shard computed with Workers=4
// produces the same checkpoint JSON as its sequential twin, holes included —
// parallel speculation keeps sharded commits in row-index order.
func TestShardedParallelCheckpointIdentical(t *testing.T) {
	const id, seed = "E4", uint64(9)
	seq := runShard(t, id, Config{Quick: true, Seed: seed, RowSelect: residue(1, 3)})
	par := runShard(t, id, Config{Quick: true, Seed: seed, RowSelect: residue(1, 3), Workers: 4})
	sj, err := json.Marshal(seq)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.Marshal(par)
	if err != nil {
		t.Fatal(err)
	}
	if string(sj) != string(pj) {
		t.Errorf("parallel shard checkpoint differs:\nseq: %s\npar: %s", sj, pj)
	}
}

// TestSparseResumeRecomputesHoles: replaying a merged checkpoint that lost a
// shard recomputes exactly the holes and still renders the unsharded bytes —
// the coordinator's zero-rows-lost endgame.
func TestSparseResumeRecomputesHoles(t *testing.T) {
	const id, seed = "E4", uint64(7)
	want := renderTable(lookupDriver(t, id)(Config{Quick: true, Seed: seed}))

	const shards = 3
	merged := &Checkpoint{Experiment: id, Seed: seed, Quick: true}
	var total int
	for k := 0; k < shards-1; k++ { // shard 2 "died": its batches are never adopted
		ck := runShard(t, id, Config{Quick: true, Seed: seed, RowSelect: residue(k, shards)})
		total = ck.TotalBatches
		if _, err := merged.Adopt(ck, "shard"); err != nil {
			t.Fatalf("adopt: %v", err)
		}
	}
	merged.TotalBatches = total
	if merged.Complete() {
		t.Fatal("merged checkpoint unexpectedly complete with a missing shard")
	}
	holes := total - merged.Computed()

	fresh := 0
	tbl := lookupDriver(t, id)(Config{Quick: true, Seed: seed, Resume: merged,
		OnBatch: func(*Checkpoint) { fresh++ }})
	if got := renderTable(tbl); string(got) != string(want) {
		t.Errorf("sparse resume differs from unsharded run:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	if fresh != holes {
		t.Errorf("sparse resume recomputed %d batches, want %d (the holes)", fresh, holes)
	}
}

// TestSparseResumeParallel: the hole-recompute endgame also works under
// Workers>1, where replays and computes interleave through the speculative
// scheduler.
func TestSparseResumeParallel(t *testing.T) {
	const id, seed = "E4", uint64(7)
	want := renderTable(lookupDriver(t, id)(Config{Quick: true, Seed: seed}))
	ck := runShard(t, id, Config{Quick: true, Seed: seed, RowSelect: residue(0, 2)})
	merged := &Checkpoint{Experiment: id, Seed: seed, Quick: true}
	if _, err := merged.Adopt(ck, "s0"); err != nil {
		t.Fatal(err)
	}
	tbl := lookupDriver(t, id)(Config{Quick: true, Seed: seed, Resume: merged, Workers: 4})
	if got := renderTable(tbl); string(got) != string(want) {
		t.Errorf("parallel sparse resume differs:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

// TestAdoptDetectsDivergence: two checkpoints claiming different rows for
// the same batch index is a determinism violation and must fail loudly.
func TestAdoptDetectsDivergence(t *testing.T) {
	a := &Checkpoint{Experiment: "E4", Seed: 1, Quick: true,
		Batches: [][][]string{{{"1", "2"}}}}
	b := &Checkpoint{Experiment: "E4", Seed: 1, Quick: true,
		Batches: [][][]string{{{"1", "DIFFERENT"}}}}
	if _, err := a.Adopt(b, "evil-shard"); !errors.Is(err, ErrCheckpointDiverged) {
		t.Fatalf("divergent adopt: %v, want ErrCheckpointDiverged", err)
	}
	// Identical batches adopt cleanly (idempotent merge) and identity
	// mismatches are rejected.
	c := &Checkpoint{Experiment: "E4", Seed: 1, Quick: true,
		Batches: [][][]string{{{"1", "2"}}, {{"3"}}}}
	adopted, err := a.Adopt(c, "s1")
	if err != nil || len(adopted) != 1 || adopted[0] != 1 {
		t.Fatalf("overlapping adopt: %v %v", adopted, err)
	}
	if a.origin(1) != "s1" || a.origin(0) != "" {
		t.Errorf("origins after adopt: %v", a.Origins)
	}
	d := &Checkpoint{Experiment: "E5", Seed: 1, Quick: true}
	if _, err := a.Adopt(d, "s2"); err == nil {
		t.Error("cross-experiment adopt accepted")
	}
}

// TestCloneKeepsHoles: sparse checkpoints survive Clone and JSON round
// trips with holes intact — nil batches stay nil, computed-empty batches
// stay non-nil.
func TestCloneKeepsHoles(t *testing.T) {
	ck := &Checkpoint{Experiment: "E4", Seed: 1, Quick: true, TotalBatches: 3,
		Batches: [][][]string{{{"a"}}, nil, {}},
		Origins: []string{"s0", "", "s2"}}
	for name, got := range map[string]*Checkpoint{"clone": ck.Clone(), "json": jsonRoundTrip(t, ck)} {
		if got.Batches[1] != nil {
			t.Errorf("%s: hole became non-nil", name)
		}
		if got.Batches[2] == nil {
			t.Errorf("%s: computed-empty batch became a hole", name)
		}
		if got.TotalBatches != 3 || got.origin(0) != "s0" || got.origin(2) != "s2" {
			t.Errorf("%s: annotations lost: %+v", name, got)
		}
		if got.Computed() != 2 {
			t.Errorf("%s: Computed() = %d, want 2", name, got.Computed())
		}
	}
	if idx := ck.ComputedIndices(); len(idx) != 2 || idx[0] != 0 || idx[1] != 2 {
		t.Errorf("ComputedIndices() = %v", idx)
	}
}

func jsonRoundTrip(t *testing.T, ck *Checkpoint) *Checkpoint {
	t.Helper()
	data, err := ck.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	return out
}
