package harness

import (
	"context"
	"errors"
	"fmt"

	"locality/internal/core"
	"locality/internal/fault"
	"locality/internal/graph"
	"locality/internal/lcl"
	"locality/internal/mis"
	"locality/internal/rng"
	"locality/internal/sim"
	"locality/internal/sinkless"
)

// ftCase is one algorithm under fault injection: an instance, the factory
// that solves it, the problem that judges the output, and the projection
// from raw simulator outputs to LCL labels.
type ftCase struct {
	name    string
	problem lcl.Problem
	inst    lcl.Instance
	factory sim.Factory
	labels  func(outputs []any) []any
	// fromRound exempts the algorithm's setup exchange from drop/dup
	// injection (fault.Plan.FromRound); 0 means faults from the first step.
	fromRound int
}

// ftAttempt is the outcome of a single faulty run.
type ftAttempt struct {
	runErr error
	report lcl.Report
}

// ftRun executes one seeded attempt of a case under a plan. The harness
// Config and table are threaded through so the run feeds the sweep's
// Observer like every other driver (hc.sim is a no-op without one).
func ftRun(hc Config, t *Table, c ftCase, plan fault.Plan, runSeed uint64) ftAttempt {
	cfg := hc.sim(t, sim.Config{
		Randomized: true,
		Seed:       runSeed,
		Inputs:     c.inst.NodeInputs(),
		MaxRounds:  1 << 22,
	})
	res, err := sim.Run(c.inst.G, cfg, plan.Wrap(c.inst.G, c.factory))
	if err != nil {
		return ftAttempt{runErr: err}
	}
	return ftAttempt{report: c.problem.Violations(c.inst, c.labels(res.Outputs))}
}

// ftErrString renders a run error as a short table cell. Classification is
// exclusively errors.Is/errors.As against the structured sentinels — the
// kernel always wraps them with run context, so text matching would be both
// fragile and a localvet errsentinel finding (the testdata fixture
// ftclassify.go demonstrates the flagged regression).
func ftErrString(err error) string {
	if err == nil {
		return "none"
	}
	var ne *sim.NodeError
	if errors.As(err, &ne) {
		kind := "fault"
		switch {
		case errors.Is(err, sim.ErrNodePanic):
			kind = "panic"
		case errors.Is(err, sim.ErrOverSend):
			kind = "over-send"
		}
		return fmt.Sprintf("%s at node %d, round %d", kind, ne.Node, ne.Round)
	}
	switch {
	case errors.Is(err, sim.ErrMaxRounds):
		return "max rounds"
	case errors.Is(err, sim.ErrDeadline):
		return "deadline"
	case errors.Is(err, ErrSweepInterrupted), errors.Is(err, context.Canceled):
		return "cancelled"
	case errors.Is(err, context.DeadlineExceeded):
		return "ctx deadline"
	}
	return fmt.Sprintf("unclassified: %v", err)
}

// E12FaultTolerance measures graceful degradation: the paper's Monte-Carlo
// algorithms (Theorem 11 Δ-coloring, Luby MIS, sinkless orientation) run
// under seeded off-model fault plans — crash-stop nodes, message drops,
// duplication — and the table reports what fraction of the LCL's per-vertex
// constraints still holds, how misbehavior surfaces (structured errors, never
// process crashes), and whether the Retry failure-budget discipline recovers.
func E12FaultTolerance(cfg Config) *Table {
	t := &Table{
		ID:    "E12",
		Title: "fault tolerance: graceful degradation under injected failures",
		Claim: "off-model faults degrade the randomized algorithms gracefully — partial " +
			"outputs score partial constraint satisfaction, failures surface as structured " +
			"errors, and retrying with fresh seeds recovers from transient faults",
		Columns: []string{"algorithm", "fault plan", "first-run error", "satisfied frac",
			"worst vtx", "attempts", "recovered"},
	}
	n := 192
	half := 64
	if cfg.Quick {
		n = 64
		half = 24
	}
	budget := cfg.trials(3, 5)
	r := rng.New(cfg.Seed + 24)

	tree8 := graph.RandomTree(n, 8, r)
	tree5 := graph.RandomTree(n, 5, r)
	ecg := graph.RandomRegularBipartite(half, 3, r)
	cases := []ftCase{
		{
			name:    "T11 Δ-coloring (Δ=8)",
			problem: lcl.Coloring(8),
			inst:    lcl.Instance{G: tree8},
			factory: core.NewT11Factory(core.T11Options{Delta: 8}),
			labels:  func(out []any) []any { return lcl.IntLabels(core.Colors(out)) },
		},
		{
			name:    "Luby MIS",
			problem: lcl.MIS(),
			inst:    lcl.Instance{G: tree5},
			factory: mis.NewLubyFactory(mis.LubyOptions{}),
			labels:  func(out []any) []any { return out },
		},
		{
			name:    "sinkless orientation (Δ=3)",
			problem: lcl.SinklessOrientation(),
			inst:    lcl.Instance{G: ecg.Graph, EdgeColors: ecg.Colors, NumEdgeColors: 3},
			factory: sinkless.NewOrientFactory(sinkless.OrientOptions{}),
			labels: func(out []any) []any {
				labels := sinkless.OrientLabels(out)
				wrapped := make([]any, len(labels))
				for v, l := range labels {
					wrapped[v] = l
				}
				return wrapped
			},
			// The step-1 priority exchange is the orientation's setup: a
			// dropped priority is a malformed protocol, not a lost update.
			fromRound: 2,
		},
	}
	plans := []fault.Plan{
		{},
		{CrashFrac: 0.05, CrashRound: 3},
		{DropProb: 0.02},
		{DropProb: 0.10},
		{CrashFrac: 0.05, CrashRound: 3, DropProb: 0.05, DupProb: 0.05},
	}

	for ci, c := range cases {
		for pi, plan := range plans {
			plan.FromRound = c.fromRound
			cfg.Row(t, func(t *Table) {
				// The retry path is RetryContext: cancellation between
				// attempts is honored (a drained jobs worker abandons the
				// budget cleanly) and the backoff jitter stream is seeded
				// per (experiment, case, plan) — deterministic like every
				// other draw. Base 0 keeps in-process retries waitless.
				backoff := Backoff{Seed: rng.Mix64(cfg.Seed+2, uint64(ci)<<8|uint64(pi))}
				var first ftAttempt
				rr := RetryContext(cfg.ctx(), budget, backoff, func(attempt int) error {
					coord := uint64(ci)<<16 | uint64(pi)<<8 | uint64(attempt)
					p := plan
					p.Seed = rng.Mix64(cfg.Seed, coord)
					a := ftRun(cfg, t, c, p, rng.Mix64(cfg.Seed+1, coord))
					if attempt == 0 {
						first = a
					}
					switch {
					case a.runErr != nil:
						return a.runErr
					case a.report.Structural != nil:
						return a.report.Structural
					case a.report.Violated > 0:
						return a.report.WorstErr
					}
					return nil
				})
				frac, worst := "n/a", "-"
				if first.runErr == nil {
					frac = fmt.Sprintf("%.4g", first.report.SatisfiedFraction())
					if first.report.Worst >= 0 {
						worst = fmt.Sprint(first.report.Worst)
					}
				}
				recovered := "no"
				if rr.Success {
					recovered = fmt.Sprintf("attempt %d", rr.Attempts)
				}
				t.AddRow(c.name, plan.String(), ftErrString(first.runErr), frac, worst,
					rr.Attempts, recovered)
			})
		}
	}
	cfg.Flush(t)
	t.Note("fault injection is off-model instrumentation (package fault): the paper's LOCAL " +
		"model is synchronous and loss-free, so these rows measure robustness of the " +
		"implementations, not a claim of the paper")
	t.Note("crash plans re-sample victims each retry, so persistent crashes stay visible as " +
		"partial satisfaction; only transient drop/dup faults are retryable away")
	t.Note("misbehaving machines surface as structured sim errors (panic/over-send with node " +
		"and round), never as a process crash")
	return t
}
