package harness_test

// Robustness suite: every algorithm must stay correct when the port
// numbering is adversarially permuted (LOCAL algorithms may use ports only
// as opaque channel names) and, for deterministic algorithms, under
// adversarial ID assignments.

import (
	"testing"

	"locality/internal/core"
	"locality/internal/forest"
	"locality/internal/graph"
	"locality/internal/ids"
	"locality/internal/lcl"
	"locality/internal/matching"
	"locality/internal/mis"
	"locality/internal/ringcolor"
	"locality/internal/rng"
	"locality/internal/sim"
	"locality/internal/sinkless"
)

func TestPortShuffleInvariance(t *testing.T) {
	r := rng.New(77)
	base := graph.RandomTree(300, 8, r)
	shuffled := base.ShufflePorts(r)

	t.Run("theorem11", func(t *testing.T) {
		for _, g := range []*graph.Graph{base, shuffled} {
			res, err := sim.Run(g, sim.Config{Randomized: true, Seed: 5, MaxRounds: 1 << 22},
				core.NewT11Factory(core.T11Options{Delta: 8}))
			if err != nil {
				t.Fatal(err)
			}
			if err := lcl.Coloring(8).Validate(lcl.Instance{G: g},
				lcl.IntLabels(core.Colors(res.Outputs))); err != nil {
				t.Fatal(err)
			}
		}
	})

	t.Run("forest", func(t *testing.T) {
		assignment := ids.Shuffled(300, r)
		for _, g := range []*graph.Graph{base, shuffled} {
			res, err := sim.Run(g, sim.Config{IDs: assignment, MaxRounds: 1 << 22},
				forest.NewFactory(forest.Options{Q: 4}))
			if err != nil {
				t.Fatal(err)
			}
			if err := lcl.Coloring(4).Validate(lcl.Instance{G: g},
				lcl.IntLabels(sim.IntOutputs(res))); err != nil {
				t.Fatal(err)
			}
		}
	})

	t.Run("luby", func(t *testing.T) {
		for _, g := range []*graph.Graph{base, shuffled} {
			res, err := sim.Run(g, sim.Config{Randomized: true, Seed: 9},
				mis.NewLubyFactory(mis.LubyOptions{}))
			if err != nil {
				t.Fatal(err)
			}
			inSet := make([]bool, g.N())
			for v, o := range res.Outputs {
				inSet[v] = o.(bool)
			}
			if err := lcl.MIS().Validate(lcl.Instance{G: g}, lcl.BoolLabels(inSet)); err != nil {
				t.Fatal(err)
			}
		}
	})

	t.Run("det-matching", func(t *testing.T) {
		assignment := ids.Shuffled(300, r)
		for _, g := range []*graph.Graph{base, shuffled} {
			res, err := sim.Run(g, sim.Config{IDs: assignment, MaxRounds: 1 << 22},
				matching.NewDetFactory(matching.DetOptions{}))
			if err != nil {
				t.Fatal(err)
			}
			labels := make([]lcl.MatchLabel, g.N())
			for v, o := range res.Outputs {
				labels[v] = o.(lcl.MatchLabel)
			}
			if err := lcl.ValidateMatching(lcl.Instance{G: g}, labels); err != nil {
				t.Fatal(err)
			}
		}
	})
}

func TestPortShuffleRingAlgorithms(t *testing.T) {
	// The oriented-ring algorithms take the orientation as a promise
	// input, which must be recomputed for the shuffled ports.
	r := rng.New(79)
	base := graph.Ring(64)
	shuffled := base.ShufflePorts(r)
	for _, g := range []*graph.Graph{base, shuffled} {
		inputs, err := ringcolor.RingOrientation(g)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(g, sim.Config{IDs: ids.Shuffled(64, r), Inputs: inputs},
			ringcolor.NewColeVishkinFactory(7))
		if err != nil {
			t.Fatal(err)
		}
		if err := lcl.Coloring(3).Validate(lcl.Instance{G: g},
			lcl.IntLabels(sim.IntOutputs(res))); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPortShuffleSinkless(t *testing.T) {
	r := rng.New(81)
	ecg := graph.RandomRegularBipartite(64, 3, r)
	shuffledG := ecg.ShufflePorts(r)
	shuffled := &graph.EdgeColoredGraph{Graph: shuffledG, Colors: ecg.Colors, NumColors: ecg.NumColors}
	for _, g := range []*graph.EdgeColoredGraph{ecg, shuffled} {
		inst := lcl.Instance{G: g.Graph, EdgeColors: g.Colors, NumEdgeColors: g.NumColors}
		res, err := sim.Run(g.Graph, sim.Config{Randomized: true, Seed: 21, Inputs: inst.NodeInputs()},
			sinkless.NewOrientFactory(sinkless.OrientOptions{}))
		if err != nil {
			t.Fatal(err)
		}
		if err := lcl.ValidateOrientation(inst, sinkless.OrientLabels(res.Outputs)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAdversarialIDsForest(t *testing.T) {
	// Huge ID gaps must not break the deterministic forest coloring (the
	// machine treats IDs only through its IDSpace bound).
	r := rng.New(83)
	g := graph.RandomTree(200, 5, r)
	assignment := ids.AdversarialGaps(200, 1<<32)
	res, err := sim.Run(g, sim.Config{IDs: assignment, MaxRounds: 1 << 22},
		forest.NewFactory(forest.Options{Q: 3, IDSpace: 1 << 62}))
	if err != nil {
		t.Fatal(err)
	}
	if err := lcl.Coloring(3).Validate(lcl.Instance{G: g},
		lcl.IntLabels(sim.IntOutputs(res))); err != nil {
		t.Fatal(err)
	}
}
