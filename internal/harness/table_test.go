package harness

import (
	"bytes"
	"encoding/csv"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"
)

// adversarialTable exercises every cell hazard the renderers must survive:
// commas and quotes (CSV structure), pipes (markdown structure), newlines,
// and multi-byte runes (width arithmetic).
func adversarialTable() *Table {
	t := &Table{
		ID:      "T0",
		Title:   "adversarial cells",
		Claim:   "rendering survives commas, pipes, quotes and multi-byte runes",
		Columns: []string{"n", "Δ≤", "plan"},
	}
	t.AddRow(1, "a→b", `crash 50%, drop "5%"`)
	t.AddRow(22, "x|y", "plain")
	t.AddRow(333, "ΔΔΔΔ", "line1\nline2")
	t.Note("note with | pipe and Δ")
	return t
}

func TestRenderGolden(t *testing.T) {
	var buf bytes.Buffer
	adversarialTable().Render(&buf)
	// Widths are rune counts: "Δ≤" is 2 runes wide, its widest cell "ΔΔΔΔ"
	// is 4, so the column pads to 4 columns of runes, not 8 bytes.
	want := "== T0: adversarial cells ==\n" +
		"claim: rendering survives commas, pipes, quotes and multi-byte runes\n" +
		"  n    Δ≤    plan                \n" +
		"  ---  ----  --------------------\n" +
		"  1    a→b   crash 50%, drop \"5%\"\n" +
		"  22   x|y   plain               \n" +
		"  333  ΔΔΔΔ  line1\nline2         \n" +
		"  note: note with | pipe and Δ\n\n"
	if got := buf.String(); got != want {
		t.Errorf("Render mismatch\n--- want ---\n%q\n--- got ---\n%q", want, got)
	}
}

func TestCSVGoldenAndRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	adversarialTable().CSV(&buf)
	want := "n,Δ≤,plan\n" +
		"1,a→b,\"crash 50%, drop \"\"5%\"\"\"\n" +
		"22,x|y,plain\n" +
		"333,ΔΔΔΔ,\"line1\nline2\"\n"
	if got := buf.String(); got != want {
		t.Errorf("CSV mismatch\n--- want ---\n%q\n--- got ---\n%q", want, got)
	}

	// Round trip: an RFC 4180 reader recovers the exact records, so no cell
	// corrupted the structure.
	records, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatalf("parsing emitted CSV: %v", err)
	}
	tbl := adversarialTable()
	wantRecords := append([][]string{tbl.Columns}, tbl.Rows...)
	if !reflect.DeepEqual(records, wantRecords) {
		t.Errorf("CSV round trip mismatch\n--- want ---\n%q\n--- got ---\n%q", wantRecords, records)
	}
}

func TestMarkdownGolden(t *testing.T) {
	var buf bytes.Buffer
	adversarialTable().Markdown(&buf)
	want := "### T0 — adversarial cells\n\n" +
		"*Claim:* rendering survives commas, pipes, quotes and multi-byte runes\n\n" +
		"| n | Δ≤ | plan |\n" +
		"| --- | --- | --- |\n" +
		"| 1 | a→b | crash 50%, drop \"5%\" |\n" +
		`| 22 | x\|y | plain |` + "\n" +
		"| 333 | ΔΔΔΔ | line1\nline2 |\n\n" +
		"*Note:* note with | pipe and Δ\n\n"
	if got := buf.String(); got != want {
		t.Errorf("Markdown mismatch\n--- want ---\n%q\n--- got ---\n%q", want, got)
	}
}

// TestAddRowFormatting pins the cell formatting contract: floats of both
// sizes at 4 significant digits, durations rounded to 4 significant digits,
// everything else via fmt.Sprint.
func TestAddRowFormatting(t *testing.T) {
	tbl := &Table{Columns: []string{"v"}}
	tbl.AddRow(1.0/3.0, float32(1.0/3.0), 0.0001875, float32(2.5))
	tbl.AddRow(
		1234567891*time.Nanosecond, // 1.234567891s → 1.235s
		time.Duration(0),
		-1234567891*time.Nanosecond,
		1500*time.Millisecond, // exact at 4 digits: stays 1.5s
		987654321*time.Microsecond,
		3*time.Nanosecond,
	)
	tbl.AddRow(42, "s", true)
	want := [][]string{
		{"0.3333", "0.3333", "0.0001875", "2.5"},
		{"1.235s", "0s", "-1.235s", "1.5s", "16m27.7s", "3ns"},
		{"42", "s", "true"},
	}
	if !reflect.DeepEqual(tbl.Rows, want) {
		t.Errorf("AddRow formatting mismatch\n--- want ---\n%q\n--- got ---\n%q", want, tbl.Rows)
	}
}

// TestNonFiniteFormatting pins the explicit NaN/±Inf spellings: a divide-by-
// zero ratio or an empty-sample mean must render as a readable sentinel, not
// as whatever %.4g emits, in all three renderers.
func TestNonFiniteFormatting(t *testing.T) {
	tbl := &Table{
		ID:      "T1",
		Title:   "non-finite cells",
		Claim:   "NaN and infinities render as explicit sentinels",
		Columns: []string{"f64", "f32", "finite"},
	}
	tbl.AddRow(math.NaN(), float32(math.NaN()), 0.5)
	tbl.AddRow(math.Inf(1), float32(math.Inf(1)), 1.0)
	tbl.AddRow(math.Inf(-1), float32(math.Inf(-1)), 2.0)
	wantRows := [][]string{
		{"NaN", "NaN", "0.5"},
		{"+Inf", "+Inf", "1"},
		{"-Inf", "-Inf", "2"},
	}
	if !reflect.DeepEqual(tbl.Rows, wantRows) {
		t.Fatalf("non-finite formatting mismatch\n--- want ---\n%q\n--- got ---\n%q", wantRows, tbl.Rows)
	}

	var buf bytes.Buffer
	tbl.Render(&buf)
	want := "== T1: non-finite cells ==\n" +
		"claim: NaN and infinities render as explicit sentinels\n" +
		"  f64   f32   finite\n" +
		"  ----  ----  ------\n" +
		"  NaN   NaN   0.5   \n" +
		"  +Inf  +Inf  1     \n" +
		"  -Inf  -Inf  2     \n\n"
	if got := buf.String(); got != want {
		t.Errorf("Render mismatch\n--- want ---\n%q\n--- got ---\n%q", want, got)
	}

	buf.Reset()
	tbl.CSV(&buf)
	wantCSV := "f64,f32,finite\nNaN,NaN,0.5\n+Inf,+Inf,1\n-Inf,-Inf,2\n"
	if got := buf.String(); got != wantCSV {
		t.Errorf("CSV mismatch\n--- want ---\n%q\n--- got ---\n%q", wantCSV, got)
	}

	buf.Reset()
	tbl.Markdown(&buf)
	wantMD := "### T1 — non-finite cells\n\n" +
		"*Claim:* NaN and infinities render as explicit sentinels\n\n" +
		"| f64 | f32 | finite |\n" +
		"| --- | --- | --- |\n" +
		"| NaN | NaN | 0.5 |\n" +
		"| +Inf | +Inf | 1 |\n" +
		"| -Inf | -Inf | 2 |\n\n"
	if got := buf.String(); got != wantMD {
		t.Errorf("Markdown mismatch\n--- want ---\n%q\n--- got ---\n%q", wantMD, got)
	}
}
