package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
)

// Row-level sweep checkpointing.
//
// Every experiment driver is a deterministic function of its Config: the
// same (Quick, Seed) produces byte-identical tables. Checkpointing exploits
// that determinism to make sweeps resumable: a driver wraps each expensive
// row computation in cfg.Row(t, compute), and the completed rows are
// recorded — batch by batch, in sweep order — into a Checkpoint that a
// supervision layer (internal/jobs, cmd/localityd) persists as JSON. A
// killed or cancelled sweep re-run with Config.Resume replays the recorded
// batches verbatim and recomputes only the remainder, producing the same
// bytes an uninterrupted run would have.
//
// The discipline that makes replay sound: everything a row computation
// draws from an RNG stream shared across rows (graph generation, ID
// assignments) happens in the "prep" section *outside* cfg.Row, so a
// resumed sweep consumes the stream identically whether a row is replayed
// or recomputed; inside compute, randomness comes only from per-row seeds
// derived from Config.Seed. Notes are always recomputed — drivers that
// summarize across rows parse the (replayed or fresh) row cells, never
// loop-carried state.
//
// The same discipline is what lets Config.Workers compute rows in parallel
// (parallel.go): compute closures are pure functions of their prep state,
// so they can run speculatively out of order as long as their batches are
// committed in row-index order.

// Checkpoint is the resume state of one experiment sweep: the AddRow
// batches completed so far, tagged with the identity of the run they came
// from. It round-trips through JSON unchanged.
type Checkpoint struct {
	// Experiment is the table ID of the sweep ("E1" ... "A3").
	Experiment string `json:"experiment"`
	// Seed and Quick identify the run; a checkpoint only resumes a run
	// with the same identity (determinism is per (Experiment, Seed, Quick);
	// Config.Workers is deliberately excluded — tables are byte-identical
	// at any worker count, so a checkpoint resumes across worker counts).
	Seed  uint64 `json:"seed"`
	Quick bool   `json:"quick"`
	// Batches holds, per completed cfg.Row call, the table rows that call
	// appended, in sweep order.
	Batches [][][]string `json:"batches"`
}

// Compatible reports whether the checkpoint can seed a resumed run of the
// experiment with the given config.
func (ck *Checkpoint) Compatible(experiment string, cfg Config) bool {
	return ck != nil && ck.Experiment == experiment && ck.Seed == cfg.Seed && ck.Quick == cfg.Quick
}

// Rows counts the table rows recorded across all completed batches.
func (ck *Checkpoint) Rows() int {
	if ck == nil {
		return 0
	}
	n := 0
	for _, b := range ck.Batches {
		n += len(b)
	}
	return n
}

// Clone returns a deep copy, safe to retain after the sweep mutates the
// original.
func (ck *Checkpoint) Clone() *Checkpoint {
	if ck == nil {
		return nil
	}
	c := &Checkpoint{Experiment: ck.Experiment, Seed: ck.Seed, Quick: ck.Quick}
	c.Batches = make([][][]string, len(ck.Batches))
	for i, batch := range ck.Batches {
		c.Batches[i] = cloneBatch(batch)
	}
	return c
}

// Encode marshals the checkpoint as JSON.
func (ck *Checkpoint) Encode() ([]byte, error) {
	return json.Marshal(ck)
}

// DecodeCheckpoint unmarshals a checkpoint previously produced by Encode.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	var ck Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("harness: decoding checkpoint: %w", err)
	}
	return &ck, nil
}

// ErrSweepInterrupted is the sentinel for a sweep abandoned between rows by
// Config.Ctx cancellation; test with errors.Is. The concrete error also
// unwraps to the context cause (context.Canceled or DeadlineExceeded).
var ErrSweepInterrupted = errors.New("harness: sweep interrupted between rows")

// SweepError is panicked by Config.Row when the sweep's context dies. The
// experiment drivers' established failure mode is panic (they have no error
// returns), so cancellation rides the same channel; supervision layers
// recover it and classify with errors.Is against ErrSweepInterrupted and
// the context sentinels. Work completed before the interruption has already
// been handed to Config.OnBatch.
type SweepError struct {
	// Experiment is the interrupted table's ID.
	Experiment string
	// BatchesDone counts the row batches committed (replayed or fresh)
	// before the interruption. In a parallel sweep, speculatively computed
	// but uncommitted batches are not counted — they are discarded and
	// recomputed on resume.
	BatchesDone int
	// Cause is the context cause that killed the sweep.
	Cause error
}

func (e *SweepError) Error() string {
	return fmt.Sprintf("harness: %s sweep interrupted after %d row batches: %v",
		e.Experiment, e.BatchesDone, e.Cause)
}

// Unwrap exposes both the sentinel and the context cause to errors.Is.
func (e *SweepError) Unwrap() []error { return []error{ErrSweepInterrupted, e.Cause} }

// sweepState is a Table's in-flight checkpoint bookkeeping, attached by the
// first cfg.Row call.
type sweepState struct {
	ctx     context.Context
	onBatch func(*Checkpoint)
	obs     Observer
	ck      *Checkpoint
	next      int // index of the next batch to replay, record, or enqueue
	committed int // batches committed to the table (== next when inline)

	// sched is the speculative row scheduler, non-nil only for Workers > 1
	// sweeps (see parallel.go).
	sched *rowScheduler
}

// sweepInit attaches checkpoint state to the table on the first Row call.
func (t *Table) sweepInit(c Config) *sweepState {
	if t.sweep != nil {
		return t.sweep
	}
	s := &sweepState{
		ctx:     c.Ctx,
		onBatch: c.OnBatch,
		obs:     c.Obs,
		ck:      &Checkpoint{Experiment: t.ID, Seed: c.Seed, Quick: c.Quick},
	}
	if c.Resume.Compatible(t.ID, c) {
		for _, batch := range c.Resume.Batches {
			s.ck.Batches = append(s.ck.Batches, cloneBatch(batch))
		}
	}
	if c.Workers > 1 {
		s.sched = &rowScheduler{workers: c.Workers, ctx: c.Ctx}
	}
	t.sweep = s
	return s
}

// Row runs one checkpointable unit of a sweep. If the resumed checkpoint
// already holds this batch, the recorded rows are appended to the table and
// compute is skipped; otherwise compute runs, appending its rows via AddRow
// to the *Table it receives, the fresh batch is recorded, and Config.OnBatch
// — if set — is handed the checkpoint so far for persistence. Between
// batches, Row aborts the sweep with a panicked *SweepError when Config.Ctx
// is dead.
//
// The compute callback's table parameter deliberately shadows the sweep
// table: with Workers <= 1 it IS the sweep table, but in a parallel sweep it
// is a private staging table whose rows are committed in row-index order
// once every earlier batch has committed (see parallel.go). Compute must
// therefore only AddRow on its parameter — notes and cross-row reads belong
// outside Row.
//
// Replay discipline (see the file comment): draws from RNG streams shared
// across rows belong before Row, not inside compute.
func (c Config) Row(t *Table, compute func(t *Table)) {
	s := t.sweepInit(c)
	s.drainReady(t)
	if s.ctx != nil && s.ctx.Err() != nil {
		s.abort(s.interrupted(t))
	}
	if s.next < len(s.ck.Batches) {
		// Replay. Resume batches are a strict prefix of the sweep, so every
		// replay lands before the first speculative batch commits and the
		// table's row order is preserved.
		for _, row := range s.ck.Batches[s.next] {
			t.Rows = append(t.Rows, append([]string(nil), row...))
		}
		s.next++
		s.committed++
		return
	}
	if s.sched == nil {
		start := len(t.Rows)
		compute(t)
		s.next++
		s.commitBatch(t, nil, cloneBatch(t.Rows[start:]))
		return
	}
	s.next++
	s.enqueue(t, compute)
}

// Flush commits every outstanding speculative batch of a parallel sweep, in
// order, and releases the worker goroutines. Drivers call it after the last
// Row and before reading t.Rows (cross-row notes) or returning the table;
// with Workers <= 1 (or no Row calls at all) it is a no-op. Like Row, it
// aborts with a panicked *SweepError when Config.Ctx dies while batches are
// still uncommitted.
func (c Config) Flush(t *Table) {
	s := t.sweep
	if s == nil || s.sched == nil {
		return
	}
	s.flush(t)
}

// commitBatch appends a freshly computed batch to the table (rows != nil for
// a speculative batch; nil when the inline path already appended them),
// records it in the checkpoint, and fires OnBatch.
func (s *sweepState) commitBatch(t *Table, rows [][]string, recorded [][]string) {
	if rows != nil {
		t.Rows = append(t.Rows, rows...)
	}
	s.ck.Batches = append(s.ck.Batches, recorded)
	s.committed++
	if s.onBatch != nil {
		s.onBatch(s.ck)
	}
	if s.obs != nil {
		s.obs.BatchDone(t.ID, s.committed, len(recorded))
	}
}

// interrupted builds the cancellation panic value for the current commit
// position.
func (s *sweepState) interrupted(t *Table) *SweepError {
	return &SweepError{Experiment: t.ID, BatchesDone: s.committed, Cause: context.Cause(s.ctx)}
}

// assertCommitted guards renderers against reading a parallel sweep that was
// never flushed: silently rendering a partial table would defeat the
// byte-identity guarantee, so the bug is loud instead.
func (t *Table) assertCommitted(op string) {
	if t.sweep != nil && t.sweep.sched != nil && len(t.sweep.sched.pending) > 0 {
		panic(fmt.Sprintf("harness: %s.%s with %d uncommitted parallel batches (driver missing Config.Flush)",
			t.ID, op, len(t.sweep.sched.pending)))
	}
}

// ctx returns the sweep context, defaulting to Background.
func (c Config) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// cloneBatch deep-copies a slice of rows.
func cloneBatch(batch [][]string) [][]string {
	out := make([][]string, len(batch))
	for i, row := range batch {
		out[i] = append([]string(nil), row...)
	}
	return out
}
