package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
)

// Row-level sweep checkpointing.
//
// Every experiment driver is a deterministic function of its Config: the
// same (Quick, Seed) produces byte-identical tables. Checkpointing exploits
// that determinism to make sweeps resumable: a driver wraps each expensive
// row computation in cfg.Row(t, compute), and the completed rows are
// recorded — batch by batch, in sweep order — into a Checkpoint that a
// supervision layer (internal/jobs, cmd/localityd) persists as JSON. A
// killed or cancelled sweep re-run with Config.Resume replays the recorded
// batches verbatim and recomputes only the remainder, producing the same
// bytes an uninterrupted run would have.
//
// The discipline that makes replay sound: everything a row computation
// draws from an RNG stream shared across rows (graph generation, ID
// assignments) happens in the "prep" section *outside* cfg.Row, so a
// resumed sweep consumes the stream identically whether a row is replayed
// or recomputed; inside compute, randomness comes only from per-row seeds
// derived from Config.Seed. Notes are always recomputed — drivers that
// summarize across rows parse the (replayed or fresh) row cells, never
// loop-carried state.
//
// The same discipline is what lets Config.Workers compute rows in parallel
// (parallel.go): compute closures are pure functions of their prep state,
// so they can run speculatively out of order as long as their batches are
// committed in row-index order.

// Checkpoint is the resume state of one experiment sweep: the AddRow
// batches completed so far, tagged with the identity of the run they came
// from. It round-trips through JSON unchanged.
//
// A checkpoint may be sparse: a nil batch is a hole — a batch some other
// run (another shard of a cluster sweep) owns, or one not yet computed.
// Replay skips holes and a resumed sweep recomputes them in place, so a
// coordinator that merges shard checkpoints with Adopt gets the full table
// back by re-running the driver over the merged checkpoint.
type Checkpoint struct {
	// Experiment is the table ID of the sweep ("E1" ... "A3").
	Experiment string `json:"experiment"`
	// Seed and Quick identify the run; a checkpoint only resumes a run
	// with the same identity (determinism is per (Experiment, Seed, Quick);
	// Config.Workers is deliberately excluded — tables are byte-identical
	// at any worker count, so a checkpoint resumes across worker counts).
	Seed  uint64 `json:"seed"`
	Quick bool   `json:"quick"`
	// Batches holds, per cfg.Row call, the table rows that call appended,
	// in sweep order. A nil entry is a hole (not computed by this run); an
	// empty non-nil entry is a computed batch that appended no rows.
	Batches [][][]string `json:"batches"`
	// Origins, when present, annotates each batch with the shard that
	// computed it ("" for locally computed batches). It is written by
	// coordinators via Adopt — provenance for metrics and run reports,
	// never consulted by replay.
	Origins []string `json:"origins,omitempty"`
	// TotalBatches, when > 0, records the sweep's full batch count — set
	// once a sharded run completes (every Row call accounted for, computed
	// or hole). Coordinators use it to decide when a merged checkpoint is
	// complete.
	TotalBatches int `json:"total_batches,omitempty"`
}

// Compatible reports whether the checkpoint can seed a resumed run of the
// experiment with the given config.
func (ck *Checkpoint) Compatible(experiment string, cfg Config) bool {
	return ck != nil && ck.Experiment == experiment && ck.Seed == cfg.Seed && ck.Quick == cfg.Quick
}

// Rows counts the table rows recorded across all completed batches.
func (ck *Checkpoint) Rows() int {
	if ck == nil {
		return 0
	}
	n := 0
	for _, b := range ck.Batches {
		n += len(b)
	}
	return n
}

// Computed counts the non-hole batches — the batches this checkpoint
// actually holds rows (possibly zero rows) for.
func (ck *Checkpoint) Computed() int {
	if ck == nil {
		return 0
	}
	n := 0
	for _, b := range ck.Batches {
		if b != nil {
			n++
		}
	}
	return n
}

// ComputedIndices returns the batch indices this checkpoint holds, in
// order. Coordinators hand the list to shards as a skip set so re-dispatched
// work never recomputes merged batches.
func (ck *Checkpoint) ComputedIndices() []int {
	if ck == nil {
		return nil
	}
	var idx []int
	for i, b := range ck.Batches {
		if b != nil {
			idx = append(idx, i)
		}
	}
	return idx
}

// Complete reports whether the checkpoint holds every batch of the sweep:
// the total is known (TotalBatches set) and no holes remain.
func (ck *Checkpoint) Complete() bool {
	return ck != nil && ck.TotalBatches > 0 &&
		len(ck.Batches) == ck.TotalBatches && ck.Computed() == ck.TotalBatches
}

// Clone returns a deep copy, safe to retain after the sweep mutates the
// original. Holes stay holes: a nil batch clones to nil.
func (ck *Checkpoint) Clone() *Checkpoint {
	if ck == nil {
		return nil
	}
	c := &Checkpoint{Experiment: ck.Experiment, Seed: ck.Seed, Quick: ck.Quick,
		TotalBatches: ck.TotalBatches}
	c.Batches = make([][][]string, len(ck.Batches))
	for i, batch := range ck.Batches {
		c.Batches[i] = cloneBatch(batch)
	}
	if ck.Origins != nil {
		c.Origins = append([]string(nil), ck.Origins...)
	}
	return c
}

// ErrCheckpointDiverged is the Adopt sentinel for a determinism violation:
// two runs produced different rows for the same batch index. It should be
// impossible under the localvet-enforced purity contract, which is exactly
// why a coordinator must fail loudly rather than pick a winner when it
// happens.
var ErrCheckpointDiverged = errors.New("harness: checkpoints diverged")

// Adopt merges the other checkpoint's batches into ck, filling holes, and
// annotates each adopted batch with origin. It returns the indices adopted.
// Batches present on both sides must be byte-identical — the cluster
// determinism argument rests on it — and a mismatch returns an error
// wrapping ErrCheckpointDiverged. Identity mismatches (different
// experiment, seed or scale) are rejected the same way a Resume would
// ignore them, but loudly: adopting across identities is a caller bug.
func (ck *Checkpoint) Adopt(other *Checkpoint, origin string) ([]int, error) {
	if other == nil {
		return nil, nil
	}
	if ck.Experiment != other.Experiment || ck.Seed != other.Seed || ck.Quick != other.Quick {
		return nil, fmt.Errorf("harness: adopting checkpoint for %s/%d/quick=%v into %s/%d/quick=%v",
			other.Experiment, other.Seed, other.Quick, ck.Experiment, ck.Seed, ck.Quick)
	}
	if other.TotalBatches > 0 {
		if ck.TotalBatches > 0 && ck.TotalBatches != other.TotalBatches {
			return nil, fmt.Errorf("%w: %s total batches %d vs %d",
				ErrCheckpointDiverged, ck.Experiment, ck.TotalBatches, other.TotalBatches)
		}
		ck.TotalBatches = other.TotalBatches
	}
	var adopted []int
	for i, batch := range other.Batches {
		if batch == nil {
			continue
		}
		for len(ck.Batches) <= i {
			ck.Batches = append(ck.Batches, nil)
		}
		if have := ck.Batches[i]; have != nil {
			if !batchesEqual(have, batch) {
				return nil, fmt.Errorf("%w: %s batch %d differs between %q and %q",
					ErrCheckpointDiverged, ck.Experiment, i, ck.origin(i), origin)
			}
			continue
		}
		ck.Batches[i] = cloneBatch(batch)
		ck.setOrigin(i, origin)
		adopted = append(adopted, i)
	}
	return adopted, nil
}

// origin returns the recorded provenance of batch i ("" when unannotated).
func (ck *Checkpoint) origin(i int) string {
	if i < len(ck.Origins) {
		return ck.Origins[i]
	}
	return ""
}

// setOrigin records the provenance of batch i, growing Origins lazily.
func (ck *Checkpoint) setOrigin(i int, origin string) {
	if origin == "" && ck.Origins == nil {
		return
	}
	for len(ck.Origins) < len(ck.Batches) {
		ck.Origins = append(ck.Origins, "")
	}
	ck.Origins[i] = origin
}

// batchesEqual compares two recorded batches cell by cell.
func batchesEqual(a, b [][]string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// Encode marshals the checkpoint as JSON.
func (ck *Checkpoint) Encode() ([]byte, error) {
	return json.Marshal(ck)
}

// DecodeCheckpoint unmarshals a checkpoint previously produced by Encode.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	var ck Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("harness: decoding checkpoint: %w", err)
	}
	return &ck, nil
}

// ErrSweepInterrupted is the sentinel for a sweep abandoned between rows by
// Config.Ctx cancellation; test with errors.Is. The concrete error also
// unwraps to the context cause (context.Canceled or DeadlineExceeded).
var ErrSweepInterrupted = errors.New("harness: sweep interrupted between rows")

// ErrShardDone is the sentinel for a sharded sweep (Config.RowSelect set)
// that has accounted for every Row call. It rides the same panic channel as
// cancellation — Config.Flush raises it so the driver's cross-row note code
// never runs over a partial table — and supervision layers classify it as
// success, not failure: the sweep's product is the checkpoint, not the
// table.
var ErrShardDone = errors.New("harness: sharded sweep complete")

// ShardDoneError is panicked by Config.Flush at the end of a sharded sweep.
// It carries the final sparse checkpoint — every batch index present,
// computed batches filled, foreign batches nil — with TotalBatches set to
// the sweep's full batch count, which is how a coordinator learns the
// sweep's size.
type ShardDoneError struct {
	// Experiment is the sharded table's ID.
	Experiment string
	// Checkpoint is the completed shard checkpoint (a private clone).
	Checkpoint *Checkpoint
}

func (e *ShardDoneError) Error() string {
	return fmt.Sprintf("harness: %s sharded sweep complete (%d/%d batches computed)",
		e.Experiment, e.Checkpoint.Computed(), e.Checkpoint.TotalBatches)
}

// Unwrap exposes the sentinel to errors.Is.
func (e *ShardDoneError) Unwrap() error { return ErrShardDone }

// SweepError is panicked by Config.Row when the sweep's context dies. The
// experiment drivers' established failure mode is panic (they have no error
// returns), so cancellation rides the same channel; supervision layers
// recover it and classify with errors.Is against ErrSweepInterrupted and
// the context sentinels. Work completed before the interruption has already
// been handed to Config.OnBatch.
type SweepError struct {
	// Experiment is the interrupted table's ID.
	Experiment string
	// BatchesDone counts the row batches committed (replayed or fresh)
	// before the interruption. In a parallel sweep, speculatively computed
	// but uncommitted batches are not counted — they are discarded and
	// recomputed on resume.
	BatchesDone int
	// Cause is the context cause that killed the sweep.
	Cause error
}

func (e *SweepError) Error() string {
	return fmt.Sprintf("harness: %s sweep interrupted after %d row batches: %v",
		e.Experiment, e.BatchesDone, e.Cause)
}

// Unwrap exposes both the sentinel and the context cause to errors.Is.
func (e *SweepError) Unwrap() []error { return []error{ErrSweepInterrupted, e.Cause} }

// sweepState is a Table's in-flight checkpoint bookkeeping, attached by the
// first cfg.Row call.
type sweepState struct {
	ctx       context.Context
	onBatch   func(*Checkpoint)
	obs       Observer
	selectRow func(int) bool // Config.RowSelect; nil computes every batch
	ck        *Checkpoint
	next      int // index of the next batch to replay, record, or enqueue
	committed int // batches committed in row-index order (== batch index of the next commit)

	// sched is the speculative row scheduler, non-nil only for Workers > 1
	// sweeps (see parallel.go).
	sched *rowScheduler
}

// sweepInit attaches checkpoint state to the table on the first Row call.
func (t *Table) sweepInit(c Config) *sweepState {
	if t.sweep != nil {
		return t.sweep
	}
	s := &sweepState{
		ctx:       c.Ctx,
		onBatch:   c.OnBatch,
		obs:       c.Obs,
		selectRow: c.RowSelect,
		ck:        &Checkpoint{Experiment: t.ID, Seed: c.Seed, Quick: c.Quick},
	}
	if c.Resume.Compatible(t.ID, c) {
		for _, batch := range c.Resume.Batches {
			s.ck.Batches = append(s.ck.Batches, cloneBatch(batch))
		}
	}
	if c.Workers > 1 {
		s.sched = &rowScheduler{workers: c.Workers, ctx: c.Ctx}
	}
	t.sweep = s
	return s
}

// setBatch records the batch at index i, growing the checkpoint with holes
// as needed. Commits happen strictly in row-index order, so i only ever
// lands on a hole or one past the end.
func (s *sweepState) setBatch(i int, rows [][]string) {
	for len(s.ck.Batches) <= i {
		s.ck.Batches = append(s.ck.Batches, nil)
	}
	s.ck.Batches[i] = rows
}

// replayRows appends a recorded batch's rows to the table (cloned: the
// checkpoint keeps ownership) and advances the commit cursor.
func (s *sweepState) replayRows(t *Table, rows [][]string) {
	for _, row := range rows {
		t.Rows = append(t.Rows, append([]string(nil), row...))
	}
	s.committed++
}

// skipBatch records a hole for a batch this shard does not own and advances
// the commit cursor. Holes fire no OnBatch — nothing was computed.
func (s *sweepState) skipBatch(i int) {
	s.setBatch(i, nil)
	s.committed++
}

// Row runs one checkpointable unit of a sweep. If the resumed checkpoint
// already holds this batch, the recorded rows are appended to the table and
// compute is skipped; otherwise compute runs, appending its rows via AddRow
// to the *Table it receives, the fresh batch is recorded, and Config.OnBatch
// — if set — is handed the checkpoint so far for persistence. Between
// batches, Row aborts the sweep with a panicked *SweepError when Config.Ctx
// is dead.
//
// The compute callback's table parameter deliberately shadows the sweep
// table: with Workers <= 1 it IS the sweep table, but in a parallel sweep it
// is a private staging table whose rows are committed in row-index order
// once every earlier batch has committed (see parallel.go). Compute must
// therefore only AddRow on its parameter — notes and cross-row reads belong
// outside Row.
//
// Replay discipline (see the file comment): draws from RNG streams shared
// across rows belong before Row, not inside compute.
func (c Config) Row(t *Table, compute func(t *Table)) {
	s := t.sweepInit(c)
	s.drainReady(t)
	if s.ctx != nil && s.ctx.Err() != nil {
		s.abort(s.interrupted(t))
	}
	i := s.next
	s.next++
	switch {
	case i < len(s.ck.Batches) && s.ck.Batches[i] != nil:
		// Replay. With a sparse resume checkpoint a replay can follow
		// enqueued speculative batches, so when speculation is pending the
		// replay rides the pending queue to keep table rows in row-index
		// order; otherwise it lands directly.
		if s.pendingSpec() {
			s.enqueueDone(&specBatch{kind: batchReplay, rows: s.ck.Batches[i]})
			return
		}
		s.replayRows(t, s.ck.Batches[i])
	case s.selectRow != nil && !s.selectRow(i):
		// Sharded mode: this batch belongs to another shard. Record a hole
		// (in order, like every commit) and move on.
		if s.pendingSpec() {
			s.enqueueDone(&specBatch{kind: batchSkip})
			return
		}
		s.skipBatch(i)
	case s.sched == nil:
		start := len(t.Rows)
		compute(t)
		s.commitBatch(t, nil, cloneBatch(t.Rows[start:]))
	default:
		s.enqueue(t, compute)
	}
}

// Flush commits every outstanding speculative batch of a parallel sweep, in
// order, and releases the worker goroutines. Drivers call it after the last
// Row and before reading t.Rows (cross-row notes) or returning the table;
// with Workers <= 1 (or no Row calls at all) it is a no-op. Like Row, it
// aborts with a panicked *SweepError when Config.Ctx dies while batches are
// still uncommitted.
//
// In sharded mode (Config.RowSelect set) Flush does not return: once every
// batch is committed it panics a *ShardDoneError carrying the final sparse
// checkpoint, so the driver's cross-row note code — which would read a
// partial table — never runs. Supervision layers classify the panic as
// success via errors.Is(err, ErrShardDone).
func (c Config) Flush(t *Table) {
	s := t.sweep
	if s != nil && s.sched != nil {
		s.flush(t)
	}
	if c.RowSelect == nil {
		return
	}
	ck := &Checkpoint{Experiment: t.ID, Seed: c.Seed, Quick: c.Quick}
	if s != nil {
		ck = s.ck.Clone()
	}
	ck.TotalBatches = len(ck.Batches)
	panic(&ShardDoneError{Experiment: t.ID, Checkpoint: ck})
}

// commitBatch appends a freshly computed batch to the table (rows != nil for
// a speculative batch; nil when the inline path already appended them),
// records it in the checkpoint at its row index, and fires OnBatch.
func (s *sweepState) commitBatch(t *Table, rows [][]string, recorded [][]string) {
	if rows != nil {
		t.Rows = append(t.Rows, rows...)
	}
	if recorded == nil {
		// A computed batch that appended no rows is still computed, not a
		// hole: record it as an empty batch so sparse merges keep the
		// distinction.
		recorded = [][]string{}
	}
	s.setBatch(s.committed, recorded)
	s.committed++
	if s.onBatch != nil {
		s.onBatch(s.ck)
	}
	if s.obs != nil {
		s.obs.BatchDone(t.ID, s.committed, len(recorded))
	}
}

// interrupted builds the cancellation panic value for the current commit
// position.
func (s *sweepState) interrupted(t *Table) *SweepError {
	return &SweepError{Experiment: t.ID, BatchesDone: s.committed, Cause: context.Cause(s.ctx)}
}

// assertCommitted guards renderers against reading a parallel sweep that was
// never flushed: silently rendering a partial table would defeat the
// byte-identity guarantee, so the bug is loud instead.
func (t *Table) assertCommitted(op string) {
	if t.sweep != nil && t.sweep.sched != nil && len(t.sweep.sched.pending) > 0 {
		panic(fmt.Sprintf("harness: %s.%s with %d uncommitted parallel batches (driver missing Config.Flush)",
			t.ID, op, len(t.sweep.sched.pending)))
	}
}

// ctx returns the sweep context, defaulting to Background.
func (c Config) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// cloneBatch deep-copies a slice of rows. A nil batch (a sparse-checkpoint
// hole) clones to nil: holes must survive cloning, or a resumed shard would
// mistake foreign batches for computed-empty ones.
func cloneBatch(batch [][]string) [][]string {
	if batch == nil {
		return nil
	}
	out := make([][]string, len(batch))
	for i, row := range batch {
		out[i] = append([]string(nil), row...)
	}
	return out
}
