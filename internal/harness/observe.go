package harness

import "locality/internal/sim"

// Sweep observability.
//
// The harness itself stays clock-free and metrics-free (the localvet
// nowallclock and obsinert gates): it only *forwards* to an Observer the
// caller attaches via Config.Obs. internal/obs supplies the standard
// implementation (RunReport, a JSONL trace sink); tests attach recording
// observers. The contract mirrors sim.Config.OnRound: an observer is
// strictly fire-and-forget — it must not mutate tables, and a sweep's
// rendered bytes, checkpoints and OnBatch sequence are identical with or
// without one (differentially test-asserted in obs_test.go).

// An Observer receives a sweep's round-level and batch-level telemetry.
// Implementations must be safe for concurrent use: with Config.Workers > 1
// the speculative row workers call SimRound concurrently. BatchDone is
// always called from the driver goroutine, in commit order, and only for
// freshly computed batches (replayed batches fire no telemetry, mirroring
// OnBatch).
type Observer interface {
	// SimRound forwards one simulator round's stats, tagged with the
	// experiment the run belongs to.
	SimRound(experiment string, s sim.RoundStats)
	// BatchDone reports one committed row batch: the total committed so
	// far and the rows this batch appended.
	BatchDone(experiment string, batches, rowsInBatch int)
}

// Observers combines observers into one, dropping nils: the idiom for
// attaching a run report AND a trace sink to the same sweep. It returns
// nil when nothing remains (so Config.Obs stays nil and the disabled
// path costs nothing) and the sole survivor unwrapped when one does.
func Observers(list ...Observer) Observer {
	var out []Observer
	for _, o := range list {
		if o != nil {
			out = append(out, o)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return multiObserver(out)
}

// multiObserver fans telemetry out in attachment order.
type multiObserver []Observer

func (m multiObserver) SimRound(experiment string, s sim.RoundStats) {
	for _, o := range m {
		o.SimRound(experiment, s)
	}
}

func (m multiObserver) BatchDone(experiment string, batches, rowsInBatch int) {
	for _, o := range m {
		o.BatchDone(experiment, batches, rowsInBatch)
	}
}

// sim injects the sweep's round-stats hook into a simulator config. Every
// driver wraps its sim.Config literals in it; with no observer attached it
// returns the config untouched, so the disabled path costs nothing and the
// kernel sees a nil hook (keeping runSequential at 0 allocs/round).
func (c Config) sim(t *Table, sc sim.Config) sim.Config {
	if c.Obs == nil {
		return sc
	}
	obs, id := c.Obs, t.ID
	sc.OnRoundStats = func(s sim.RoundStats) { obs.SimRound(id, s) }
	return sc
}
