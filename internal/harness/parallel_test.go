package harness

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
)

// renderAll captures every rendering of a table — the aligned text, the CSV,
// and the markdown — so byte-identity checks cover all three output paths.
func renderAll(t *Table) []byte {
	var buf bytes.Buffer
	t.Render(&buf)
	t.CSV(&buf)
	t.Markdown(&buf)
	return buf.Bytes()
}

// TestParallelByteIdentity is the tentpole guarantee: for every worker count,
// a parallel sweep renders byte-identically to the sequential one, records an
// identical checkpoint, and fires OnBatch the same number of times.
func TestParallelByteIdentity(t *testing.T) {
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, id := range []string{"E2", "E4", "E8", "E12"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			driver := lookupDriver(t, id)
			base := Config{Quick: true, Seed: 7}
			baseline := renderAll(driver(base))
			var baseCk []byte
			baseBatches := 0
			{
				cfg := base
				cfg.OnBatch = func(ck *Checkpoint) {
					baseBatches++
					enc, err := ck.Encode()
					if err != nil {
						t.Fatalf("encode sequential checkpoint: %v", err)
					}
					baseCk = enc
				}
				driver(cfg)
			}

			for _, workers := range workerCounts {
				cfg := base
				cfg.Workers = workers
				var lastCk []byte
				batches := 0
				cfg.OnBatch = func(ck *Checkpoint) {
					batches++
					enc, err := ck.Encode()
					if err != nil {
						t.Fatalf("workers=%d: encode checkpoint: %v", workers, err)
					}
					lastCk = enc
				}
				got := renderAll(driver(cfg))
				if !bytes.Equal(got, baseline) {
					t.Errorf("workers=%d: output differs from sequential run\n--- want ---\n%s--- got ---\n%s",
						workers, baseline, got)
				}
				if batches != baseBatches {
					t.Errorf("workers=%d: OnBatch fired %d times, want %d", workers, batches, baseBatches)
				}
				if !bytes.Equal(lastCk, baseCk) {
					t.Errorf("workers=%d: final checkpoint differs from sequential run", workers)
				}
			}
		})
	}
}

// TestParallelKillAndResume kills a parallel sweep at a mid-sweep checkpoint
// and resumes it — at the same worker count, sequentially, and at a different
// worker count — asserting every combination reproduces the uninterrupted
// bytes. This is the checkpoint/parallelism interaction the design leans on:
// a resume checkpoint is always a strict prefix, regardless of how many
// speculative batches were in flight at the kill.
func TestParallelKillAndResume(t *testing.T) {
	for _, id := range []string{"E2", "E4", "E8", "E12"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			driver := lookupDriver(t, id)
			base := Config{Quick: true, Seed: 7}
			baseline := renderTable(driver(base))
			total := countBatches(driver, base)
			if total < 2 {
				t.Fatalf("%s records %d batches; need >= 2 to interrupt", id, total)
			}
			kill := total / 2

			// Interrupted parallel run: cancel once `kill` batches committed.
			ctx, cancel := context.WithCancel(context.Background())
			var saved *Checkpoint
			cfg := base
			cfg.Workers = 4
			cfg.Ctx = ctx
			cfg.OnBatch = func(ck *Checkpoint) {
				saved = ck.Clone()
				if len(saved.Batches) >= kill {
					cancel()
				}
			}
			func() {
				defer func() {
					r := recover()
					if r == nil {
						t.Fatalf("parallel sweep finished despite cancellation")
					}
					se, ok := r.(*SweepError)
					if !ok {
						t.Fatalf("panicked %T (%v), want *SweepError", r, r)
					}
					if !errors.Is(se, ErrSweepInterrupted) || !errors.Is(se, context.Canceled) {
						t.Fatalf("SweepError %v does not match both sentinels", se)
					}
					if se.Experiment != id || se.BatchesDone != kill {
						t.Fatalf("SweepError reports (%s, %d batches), want (%s, %d)",
							se.Experiment, se.BatchesDone, id, kill)
					}
				}()
				driver(cfg)
			}()
			if saved == nil || len(saved.Batches) != kill {
				t.Fatalf("checkpoint holds %d batches, want %d", len(saved.Batches), kill)
			}
			enc, err := saved.Encode()
			if err != nil {
				t.Fatalf("encode: %v", err)
			}

			for _, resumeWorkers := range []int{1, 4, 2} {
				restored, err := DecodeCheckpoint(enc)
				if err != nil {
					t.Fatalf("decode: %v", err)
				}
				fresh := 0
				resumeCfg := base
				resumeCfg.Workers = resumeWorkers
				resumeCfg.Resume = restored
				resumeCfg.OnBatch = func(*Checkpoint) { fresh++ }
				resumed := renderTable(driver(resumeCfg))
				if !bytes.Equal(resumed, baseline) {
					t.Errorf("resume workers=%d: output differs from uninterrupted run", resumeWorkers)
				}
				if fresh != total-kill {
					t.Errorf("resume workers=%d: recomputed %d batches, want %d",
						resumeWorkers, fresh, total-kill)
				}
			}
		})
	}
}

// syntheticSweep runs `rows` single-row batches through cfg.Row, with an
// optional per-index hook, and returns the table.
func syntheticSweep(cfg Config, rows int, hook func(i int, t *Table)) *Table {
	t := &Table{ID: "SYN", Title: "synthetic", Claim: "none", Columns: []string{"i", "sq"}}
	for i := 0; i < rows; i++ {
		i := i
		cfg.Row(t, func(t *Table) {
			if hook != nil {
				hook(i, t)
			}
			t.AddRow(i, i*i)
		})
	}
	cfg.Flush(t)
	return t
}

// TestParallelComputePanic asserts a panicking compute closure surfaces on the
// driver goroutine with the original panic value, and that it is the
// lowest-index failure that surfaces even when later batches also finish.
func TestParallelComputePanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("sweep did not re-panic the compute failure")
		}
		if s, ok := r.(string); !ok || s != "boom 3" {
			t.Fatalf("panicked %v, want the lowest-index failure \"boom 3\"", r)
		}
	}()
	syntheticSweep(Config{Workers: 4}, 16, func(i int, _ *Table) {
		if i == 3 || i == 7 {
			panic(fmt.Sprintf("boom %d", i))
		}
	})
}

// TestParallelUnflushedRenderPanics guards the misuse mode: rendering a
// parallel sweep that was never flushed must fail loudly, not emit a partial
// table.
func TestParallelUnflushedRenderPanics(t *testing.T) {
	cfg := Config{Workers: 2}
	tbl := &Table{ID: "SYN", Columns: []string{"i"}}
	block := make(chan struct{})
	cfg.Row(tbl, func(t *Table) {
		<-block
		t.AddRow(1)
	})
	defer func() {
		close(block)
		cfg.Flush(tbl)
	}()
	defer func() {
		if r := recover(); r == nil {
			t.Fatalf("Render of an unflushed parallel sweep did not panic")
		}
	}()
	var buf bytes.Buffer
	tbl.Render(&buf)
}

// TestParallelSyntheticMatchesInline cross-checks the scheduler itself on a
// cheap synthetic sweep at several worker counts, including workers > rows.
func TestParallelSyntheticMatchesInline(t *testing.T) {
	want := renderAll(syntheticSweep(Config{}, 10, nil))
	for _, workers := range []int{2, 4, 32} {
		got := renderAll(syntheticSweep(Config{Workers: workers}, 10, nil))
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: synthetic sweep differs from inline", workers)
		}
	}
}
