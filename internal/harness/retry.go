package harness

// RetryResult records a Retry run: how many attempts the failure budget paid
// for and whether any of them succeeded.
type RetryResult struct {
	// Attempts is the number of attempts consumed, including the successful
	// one (so a first-try success reports 1).
	Attempts int
	// Success reports whether some attempt returned nil.
	Success bool
	// LastErr is the error of the final attempt (nil iff Success).
	LastErr error
}

// SuccessRate returns the fraction of attempts that succeeded — 1/Attempts
// on success (Retry stops at the first success), 0 otherwise.
func (r RetryResult) SuccessRate() float64 {
	if r.Attempts == 0 {
		return 0
	}
	if r.Success {
		return 1 / float64(r.Attempts)
	}
	return 0
}

// Retry is the failure-budget discipline for Monte-Carlo algorithms: run is
// invoked with attempt = 0, 1, ... until it returns nil or the budget is
// exhausted. The callback is responsible for deriving a fresh seed from the
// attempt number, so a retried run explores new randomness instead of
// deterministically repeating its failure.
func Retry(budget int, run func(attempt int) error) RetryResult {
	var res RetryResult
	for attempt := 0; attempt < budget; attempt++ {
		res.Attempts++
		res.LastErr = run(attempt)
		if res.LastErr == nil {
			res.Success = true
			break
		}
	}
	return res
}
