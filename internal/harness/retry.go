package harness

import (
	"context"
	"fmt"
	"time"

	"locality/internal/rng"
)

// RetryResult records a Retry run: how many attempts the failure budget paid
// for and whether any of them succeeded.
type RetryResult struct {
	// Attempts is the number of attempts consumed, including the successful
	// one (so a first-try success reports 1).
	Attempts int
	// Success reports whether some attempt returned nil.
	Success bool
	// LastErr is the error of the final attempt (nil iff Success). When the
	// retry loop is abandoned between attempts by context cancellation,
	// LastErr wraps the context cause instead.
	LastErr error
}

// SuccessRate returns the fraction of attempts that succeeded — 1/Attempts
// on success (Retry stops at the first success), 0 otherwise.
func (r RetryResult) SuccessRate() float64 {
	if r.Attempts == 0 {
		return 0
	}
	if r.Success {
		return 1 / float64(r.Attempts)
	}
	return 0
}

// Backoff is the deterministic wait policy between retry attempts: delays
// double from Base, are scaled by a seeded jitter factor in [0.5, 1.5), and
// are capped at Max. It is pure data plus arithmetic — computing a Delay
// never consults the clock, so the schedule for a given Seed is as
// reproducible as the failure-budget discipline it paces (same seed ⇒ same
// schedule, attempt by attempt). The zero value waits not at all, which is
// what in-process experiment retries (E12) want; supervision layers that
// retry against real resources set Base/Max.
type Backoff struct {
	// Base is the nominal delay before the second attempt (attempt 1); 0
	// disables waiting entirely.
	Base time.Duration
	// Max caps every delay after jitter; 0 means uncapped.
	Max time.Duration
	// Seed drives the jitter stream. Jitter is derived per attempt with the
	// library's SplitMix64 mixer, per the failure-budget discipline: fresh
	// randomness per attempt, reproducible across runs.
	Seed uint64
}

// Delay returns the wait before the given attempt (attempt 0 is the first
// try and never waits). The nominal delay Base·2^(attempt-1) is scaled by a
// deterministic jitter factor in [0.5, 1.5) drawn from (Seed, attempt).
func (b Backoff) Delay(attempt int) time.Duration {
	if attempt <= 0 || b.Base <= 0 {
		return 0
	}
	shift := attempt - 1
	if shift > 32 {
		shift = 32
	}
	d := b.Base << shift
	if d <= 0 || (b.Max > 0 && d > b.Max) {
		d = b.Max
		if d == 0 {
			d = b.Base
		}
	}
	h := rng.Mix64(b.Seed, uint64(attempt))
	factor := 0.5 + float64(h>>11)/(1<<53) // [0.5, 1.5)
	d = time.Duration(float64(d) * factor)
	if b.Max > 0 && d > b.Max {
		d = b.Max
	}
	return d
}

// Retry is the failure-budget discipline for Monte-Carlo algorithms: run is
// invoked with attempt = 0, 1, ... until it returns nil or the budget is
// exhausted. The callback is responsible for deriving a fresh seed from the
// attempt number, so a retried run explores new randomness instead of
// deterministically repeating its failure.
func Retry(budget int, run func(attempt int) error) RetryResult {
	return RetryContext(context.Background(), budget, Backoff{}, run)
}

// RetryContext is Retry with cooperative cancellation and a backoff policy:
// between attempts it waits out backoff.Delay(attempt) — abandoning the wait
// (and the remaining budget) as soon as ctx is cancelled — and it never
// starts an attempt on a dead context. An abandoned loop reports the context
// cause as LastErr; attempts already made keep their count. The run callback
// receives the same attempt numbering as Retry and owns per-attempt seed
// derivation.
func RetryContext(ctx context.Context, budget int, backoff Backoff, run func(attempt int) error) RetryResult {
	var res RetryResult
	for attempt := 0; attempt < budget; attempt++ {
		if err := waitAttempt(ctx, backoff.Delay(attempt)); err != nil {
			res.LastErr = err
			return res
		}
		res.Attempts++
		res.LastErr = run(attempt)
		if res.LastErr == nil {
			res.Success = true
			break
		}
	}
	return res
}

// waitAttempt sleeps d (0 is a pure cancellation check), returning a wrapped
// context cause if ctx dies first. It is the one sanctioned wall-clock
// consumer outside internal/sim — the localvet nowallclock gate exempts this
// file, and only this file, of the harness.
func waitAttempt(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("harness: retry abandoned between attempts: %w", context.Cause(ctx))
	}
	if d <= 0 {
		return nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("harness: retry abandoned between attempts: %w", context.Cause(ctx))
	}
}
