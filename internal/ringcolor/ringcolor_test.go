package ringcolor_test

import (
	"testing"

	"locality/internal/graph"
	"locality/internal/ids"
	"locality/internal/lcl"
	"locality/internal/mathx"
	"locality/internal/ringcolor"
	"locality/internal/rng"
	"locality/internal/sim"
)

func TestColeVishkinProduces3Coloring(t *testing.T) {
	r := rng.New(3)
	for _, n := range []int{3, 4, 5, 8, 33, 128, 1000} {
		g := graph.Ring(n)
		inputs, err := ringcolor.RingOrientation(g)
		if err != nil {
			t.Fatal(err)
		}
		assignment := ids.Shuffled(n, r)
		bits := mathx.CeilLog2(n + 1)
		res, err := sim.Run(g, sim.Config{IDs: assignment, Inputs: inputs},
			ringcolor.NewColeVishkinFactory(bits))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		colors := sim.IntOutputs(res)
		if err := lcl.Coloring(3).Validate(lcl.Instance{G: g}, lcl.IntLabels(colors)); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Rounds != ringcolor.Rounds(bits) {
			t.Errorf("n=%d: rounds %d, predicted %d", n, res.Rounds, ringcolor.Rounds(bits))
		}
	}
}

func TestColeVishkinLogStarGrowth(t *testing.T) {
	// Rounds must grow like log* n: single-digit for n up to 2^20 and flat
	// across doublings.
	r := rng.New(5)
	var rounds []int
	for _, n := range []int{16, 256, 65536} {
		g := graph.Ring(n)
		inputs, err := ringcolor.RingOrientation(g)
		if err != nil {
			t.Fatal(err)
		}
		bits := mathx.CeilLog2(n + 1)
		res, err := sim.Run(g, sim.Config{IDs: ids.Shuffled(n, r), Inputs: inputs},
			ringcolor.NewColeVishkinFactory(bits))
		if err != nil {
			t.Fatal(err)
		}
		rounds = append(rounds, res.Rounds)
		if res.Rounds > 10 {
			t.Errorf("n=%d: %d rounds, want O(log* n)", n, res.Rounds)
		}
	}
	if rounds[2]-rounds[0] > 3 {
		t.Errorf("rounds grew too fast across 4096x size increase: %v", rounds)
	}
}

func TestColeVishkinAdversarialIDs(t *testing.T) {
	g := graph.Ring(32)
	inputs, err := ringcolor.RingOrientation(g)
	if err != nil {
		t.Fatal(err)
	}
	assignment := ids.AdversarialGaps(32, 1<<40)
	res, err := sim.Run(g, sim.Config{IDs: assignment, Inputs: inputs},
		ringcolor.NewColeVishkinFactory(64))
	if err != nil {
		t.Fatal(err)
	}
	colors := sim.IntOutputs(res)
	if err := lcl.Coloring(3).Validate(lcl.Instance{G: g}, lcl.IntLabels(colors)); err != nil {
		t.Fatal(err)
	}
}

func TestUnorientedRing3Coloring(t *testing.T) {
	r := rng.New(7)
	for _, n := range []int{5, 17, 64, 501} {
		g := graph.Ring(n)
		res, err := sim.Run(g, sim.Config{IDs: ids.Shuffled(n, r)},
			ringcolor.NewUnorientedRing3Factory(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		colors := sim.IntOutputs(res)
		if err := lcl.Coloring(3).Validate(lcl.Instance{G: g}, lcl.IntLabels(colors)); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestTwoColoringEvenRings(t *testing.T) {
	r := rng.New(9)
	for _, n := range []int{4, 10, 64, 200} {
		g := graph.Ring(n)
		res, err := sim.Run(g, sim.Config{IDs: ids.Shuffled(n, r)},
			ringcolor.NewTwoColorFactory())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		colors := sim.IntOutputs(res)
		if err := lcl.Coloring(2).Validate(lcl.Instance{G: g}, lcl.IntLabels(colors)); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Rounds < n/2 {
			t.Errorf("n=%d: 2-coloring took %d rounds; suspiciously below n/2", n, res.Rounds)
		}
	}
}

func TestDichotomyShape(t *testing.T) {
	// The Theorem 7 dichotomy, measured: 2-coloring rounds grow linearly,
	// 3-coloring rounds stay near-constant.
	r := rng.New(11)
	type point struct{ two, three int }
	var pts []point
	for _, n := range []int{16, 64, 256} {
		g := graph.Ring(n)
		res2, err := sim.Run(g, sim.Config{IDs: ids.Shuffled(n, r)}, ringcolor.NewTwoColorFactory())
		if err != nil {
			t.Fatal(err)
		}
		inputs, err := ringcolor.RingOrientation(g)
		if err != nil {
			t.Fatal(err)
		}
		res3, err := sim.Run(g, sim.Config{IDs: ids.Shuffled(n, r), Inputs: inputs},
			ringcolor.NewColeVishkinFactory(mathx.CeilLog2(n+1)))
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, point{res2.Rounds, res3.Rounds})
	}
	if pts[2].two < 4*pts[0].two-8 {
		t.Errorf("2-coloring rounds not linear: %v", pts)
	}
	if pts[2].three > pts[0].three+3 {
		t.Errorf("3-coloring rounds not log*: %v", pts)
	}
}

func TestRingOrientationRejectsNonRing(t *testing.T) {
	if _, err := ringcolor.RingOrientation(graph.Path(5)); err == nil {
		t.Error("orientation of a path accepted")
	}
}
