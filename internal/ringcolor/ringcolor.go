// Package ringcolor implements the Δ=2 dichotomy pair of Theorem 7 /
// Corollary 3 on cycles, plus the classic Cole–Vishkin algorithm:
//
//   - 3-coloring a ring takes O(log* n) rounds (Cole–Vishkin on oriented
//     rings; Linial's reduction handles the unoriented case), matching the
//     "O(log* n)" side of the dichotomy and Linial's lower bound.
//   - 2-coloring an (even) ring requires seeing the whole cycle: the
//     distributed algorithm here elects the maximum-ID vertex by flooding
//     and 2-colors by distance parity, taking Θ(n) rounds — the "Ω(n)"
//     side of the dichotomy. (Package nbrgraph proves the lower bound side
//     mechanically for small instances.)
package ringcolor

import (
	"fmt"

	"locality/internal/graph"
	"locality/internal/linial"
	"locality/internal/mathx"
	"locality/internal/sim"
)

// OrientedInput is the promise input of the oriented-ring algorithms: the
// port leading to the cyclic successor.
type OrientedInput struct {
	SuccPort int
}

// RingOrientation builds the per-vertex OrientedInput table for graph.Ring.
func RingOrientation(g *graph.Graph) ([]any, error) {
	n := g.N()
	inputs := make([]any, n)
	for v := 0; v < n; v++ {
		succ := (v + 1) % n
		found := false
		for p, h := range g.Ports(v) {
			if h.To == succ {
				inputs[v] = OrientedInput{SuccPort: p}
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("ringcolor: vertex %d has no edge to %d; not a standard ring", v, succ)
		}
	}
	return inputs, nil
}

// coleVishkin 3-colors an oriented ring: iterated bit tricks shrink the
// ID-based coloring to 6 colors in O(log* n) rounds, then a 3-step shift
// sweep removes colors 5, 4, 3.
type coleVishkin struct {
	env      sim.Env
	succPort int
	predPort int
	color    uint64
	phase    int // number of bit-reduction rounds scheduled
	sweep    int
	maxBits  int
}

var _ sim.Machine = (*coleVishkin)(nil)

// NewColeVishkinFactory returns the oriented-ring 3-coloring machine.
// maxIDBits bounds the initial ID length (use the ID-space size, e.g. 64 or
// ceil(log2 n)+1 for IDs in 1..n).
func NewColeVishkinFactory(maxIDBits int) sim.Factory {
	return func() sim.Machine { return &coleVishkin{maxBits: maxIDBits} }
}

// cvSchedule returns how many reduction rounds shrink maxBits-bit colors to
// colors in {0..5}: each round maps b-bit colors to (ceil(log2 b) + 1)-bit
// colors; the fixed point of b -> ceil(log2 b)+1 is 3 bits spanning {0..7},
// and one extra round at 3 bits yields values < 6 (positions 0,1,2 plus
// bit): 2*pos+bit <= 5.
func cvSchedule(maxBits int) int {
	rounds := 0
	b := maxBits
	for b > 3 {
		b = mathx.CeilLog2(b) + 1
		rounds++
	}
	return rounds + 1 // final round lands in {0..5}
}

func (m *coleVishkin) Init(env sim.Env) {
	m.env = env
	in, ok := env.Input.(OrientedInput)
	if !ok {
		panic(fmt.Sprintf("ringcolor: ColeVishkin needs OrientedInput, got %T", env.Input))
	}
	if env.Degree != 2 {
		panic(fmt.Sprintf("ringcolor: ColeVishkin needs a ring, vertex degree is %d", env.Degree))
	}
	m.succPort = in.SuccPort
	m.predPort = 1 - in.SuccPort
	if !env.HasID {
		panic("ringcolor: ColeVishkin is a DetLOCAL algorithm; IDs required")
	}
	m.color = env.ID
	m.phase = cvSchedule(m.maxBits)
}

func (m *coleVishkin) Step(step int, recv []sim.Message) ([]sim.Message, bool) {
	if step >= 2 && step <= m.phase+1 {
		// Reduce against the predecessor's previous color.
		pred := recv[m.predPort].(uint64)
		m.color = cvReduce(m.color, pred)
	}
	if step > m.phase+1 {
		// Class sweep: 3 extra rounds eliminate colors 5, 4, 3. On a ring
		// both neighbor colors are in hand, and each color class is an
		// independent set, so the class recolors greedily in parallel.
		target := uint64(5 - (step - m.phase - 2)) // 5, then 4, then 3
		if m.color == target {
			m.color = pickFree3(recv[m.succPort].(uint64), recv[m.predPort].(uint64))
		}
		if target == 3 {
			return nil, true // last class done; nobody needs our color anymore
		}
	}
	send := make([]sim.Message, m.env.Degree)
	send[m.succPort] = m.color
	send[m.predPort] = m.color
	return send, false
}

// pickFree3 returns the smallest color in {0,1,2} different from both
// arguments.
func pickFree3(a, b uint64) uint64 {
	for c := uint64(0); c < 3; c++ {
		if c != a && c != b {
			return c
		}
	}
	panic("ringcolor: no free color among 3 with 2 neighbors")
}

// cvReduce is the Cole–Vishkin bit trick: find the lowest bit position i
// where own and pred differ (they do differ: colors are proper along the
// orientation) and output 2i + bit_i(own).
func cvReduce(own, pred uint64) uint64 {
	diff := own ^ pred
	if diff == 0 {
		panic("ringcolor: predecessor shares color; coloring not proper")
	}
	i := uint64(0)
	for diff&1 == 0 {
		diff >>= 1
		i++
	}
	return 2*i + (own>>i)&1
}

func (m *coleVishkin) Output() any { return int(m.color) + 1 } // 1-based

// Rounds predicts the Cole–Vishkin round count for the given ID bit length:
// the reduction schedule plus the three-class sweep (whose last class costs
// no extra round beyond its recoloring step).
func Rounds(maxIDBits int) int {
	return cvSchedule(maxIDBits) + 3
}

// NewUnorientedRing3Factory 3-colors an unoriented ring via Linial's
// reduction with Δ=2 followed by the class sweep — no orientation promise
// needed. idSpace bounds the IDs (IDs must lie in 1..idSpace).
func NewUnorientedRing3Factory(idSpace int) sim.Factory {
	return linial.NewFactory(linial.Options{
		InitialPalette: idSpace,
		Delta:          2,
		Target:         3,
	})
}

// twoColor 2-colors an even ring in Θ(n) rounds: flood the maximum ID with
// hop counts; each vertex colors itself by hop-distance parity. The flood
// needs n-1 rounds to be sure (nodes know n), plus the final read — the
// linear cost that Theorem 7 proves unavoidable for this LCL.
type twoColor struct {
	env     sim.Env
	bestID  uint64
	bestHop int
}

var _ sim.Machine = (*twoColor)(nil)

// NewTwoColorFactory returns the Θ(n) 2-coloring machine for even rings.
func NewTwoColorFactory() sim.Factory {
	return func() sim.Machine { return &twoColor{} }
}

func (m *twoColor) Init(env sim.Env) {
	if !env.HasID {
		panic("ringcolor: 2-coloring machine is DetLOCAL; IDs required")
	}
	m.env = env
	m.bestID = env.ID
	m.bestHop = 0
}

// claim is the leader-election flood payload: a candidate leader ID and the
// hop distance the claim has traveled.
type claim struct {
	ID  uint64
	Hop int
}

func (m *twoColor) Step(step int, recv []sim.Message) ([]sim.Message, bool) {
	for _, msg := range recv {
		if msg == nil {
			continue
		}
		c := msg.(claim)
		if c.ID > m.bestID || (c.ID == m.bestID && c.Hop+1 < m.bestHop) {
			m.bestID = c.ID
			m.bestHop = c.Hop + 1
		}
	}
	// After n-1 rounds every vertex knows the max ID and its true hop
	// distance along the shorter side; parity of the shortest hop distance
	// 2-colors an even cycle. One extra step to absorb the last messages.
	if step > m.env.N {
		return nil, true
	}
	return sim.Broadcast(m.env.Degree, claim{ID: m.bestID, Hop: m.bestHop}), false
}

func (m *twoColor) Output() any { return m.bestHop%2 + 1 }
