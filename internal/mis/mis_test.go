package mis_test

import (
	"errors"
	"testing"

	"locality/internal/graph"
	"locality/internal/ids"
	"locality/internal/lcl"
	"locality/internal/mis"
	"locality/internal/rng"
	"locality/internal/sim"
)

func boolOutputs(res *sim.Result) []bool {
	out := make([]bool, len(res.Outputs))
	for v, o := range res.Outputs {
		out[v] = o.(bool)
	}
	return out
}

func TestLubyProducesMIS(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 10; trial++ {
		var g *graph.Graph
		switch trial % 4 {
		case 0:
			g = graph.RandomTree(200, 6, r)
		case 1:
			g = graph.Ring(97)
		case 2:
			g = graph.RandomBoundedDegree(150, 300, 8, r)
		default:
			g = graph.Star(40)
		}
		res, err := sim.Run(g, sim.Config{Randomized: true, Seed: uint64(trial)},
			mis.NewLubyFactory(mis.LubyOptions{}))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		inSet := boolOutputs(res)
		if err := lcl.MIS().Validate(lcl.Instance{G: g}, lcl.BoolLabels(inSet)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestLubyRoundsLogarithmic(t *testing.T) {
	r := rng.New(5)
	var rounds []int
	for _, n := range []int{64, 512, 4096} {
		g := graph.RandomBoundedDegree(n, 2*n, 10, r)
		res, err := sim.Run(g, sim.Config{Randomized: true, Seed: 7},
			mis.NewLubyFactory(mis.LubyOptions{}))
		if err != nil {
			t.Fatal(err)
		}
		rounds = append(rounds, res.Rounds)
	}
	// O(log n): 64x size increase should far less than 64x the rounds.
	if rounds[2] > 6*rounds[0]+20 {
		t.Errorf("Luby round growth not logarithmic: %v", rounds)
	}
}

func TestLubySeeded(t *testing.T) {
	// Force an independent seed set and check it ends up in the MIS
	// (the Theorem 11 Phase-1 requirement: I ⊇ K).
	r := rng.New(9)
	g := graph.RandomTree(150, 5, r)
	// Seed: an independent set — vertices at even depth from vertex 0 with
	// degree 1 (leaves are pairwise non-adjacent in a tree of size > 2).
	isLeaf := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		isLeaf[v] = g.Degree(v) == 1
	}
	res, err := sim.Run(g, sim.Config{Randomized: true, Seed: 3},
		mis.NewLubyFactory(mis.LubyOptions{
			Seed: func(env sim.Env) bool { return isLeaf[env.Node] },
		}))
	if err != nil {
		t.Fatal(err)
	}
	inSet := boolOutputs(res)
	for v := range inSet {
		if isLeaf[v] && !inSet[v] {
			t.Errorf("seeded leaf %d not in MIS", v)
		}
	}
	if err := lcl.MIS().Validate(lcl.Instance{G: g}, lcl.BoolLabels(inSet)); err != nil {
		t.Fatal(err)
	}
}

func TestLubyActiveSubgraph(t *testing.T) {
	r := rng.New(13)
	g := graph.Ring(30)
	active := make([]bool, 30)
	for v := 0; v < 20; v++ {
		active[v] = true
	}
	res, err := sim.Run(g, sim.Config{Randomized: true, Seed: 11},
		mis.NewLubyFactory(mis.LubyOptions{
			Active: func(env sim.Env) bool { return active[env.Node] },
		}))
	if err != nil {
		t.Fatal(err)
	}
	inSet := boolOutputs(res)
	for v := 20; v < 30; v++ {
		if inSet[v] {
			t.Errorf("inactive vertex %d in MIS", v)
		}
	}
	// Verify on the induced subgraph.
	sub, _, n2o := g.InducedSubgraph(active)
	subSet := make([]bool, sub.N())
	for nv, ov := range n2o {
		subSet[nv] = inSet[ov]
	}
	if err := lcl.MIS().Validate(lcl.Instance{G: sub}, lcl.BoolLabels(subSet)); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestDetMIS(t *testing.T) {
	r := rng.New(21)
	for trial := 0; trial < 6; trial++ {
		var g *graph.Graph
		switch trial % 3 {
		case 0:
			g = graph.RandomTree(200, 5, r)
		case 1:
			g = graph.Ring(64)
		default:
			g = graph.RandomBoundedDegree(120, 240, 6, r)
		}
		n := g.N()
		res, err := sim.Run(g, sim.Config{IDs: ids.Shuffled(n, r), MaxRounds: 10000},
			mis.NewDetFactory(mis.DetOptions{}))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		inSet := boolOutputs(res)
		if err := lcl.MIS().Validate(lcl.Instance{G: g}, lcl.BoolLabels(inSet)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := mis.DetRounds(mis.DetOptions{}, n, g.MaxDegree())
		if res.Rounds != want {
			t.Errorf("trial %d: rounds %d, predicted %d", trial, res.Rounds, want)
		}
	}
}

func TestDetMISDeterministic(t *testing.T) {
	// Same IDs, same graph -> identical output, different engines.
	r := rng.New(33)
	g := graph.RandomTree(80, 4, r)
	assignment := ids.Shuffled(80, r)
	var prev []bool
	for _, engine := range []sim.Engine{sim.EngineSequential, sim.EngineConcurrent} {
		res, err := sim.Run(g, sim.Config{IDs: assignment, Engine: engine, MaxRounds: 10000},
			mis.NewDetFactory(mis.DetOptions{}))
		if err != nil {
			t.Fatal(err)
		}
		cur := boolOutputs(res)
		if prev != nil {
			for v := range cur {
				if cur[v] != prev[v] {
					t.Fatalf("engines disagree at vertex %d", v)
				}
			}
		}
		prev = cur
	}
}

func TestRandVsDetRoundComparison(t *testing.T) {
	// The paper's Section I story: on bounded-degree graphs both are fast,
	// but det rounds include the log* + O(Δ log Δ) coloring cost. Sanity:
	// both complete well under MaxRounds and produce valid MISes; record
	// the comparison (no strict assertion on which wins at small n).
	r := rng.New(41)
	g := graph.RandomBoundedDegree(500, 1000, 8, r)
	det, err := sim.Run(g, sim.Config{IDs: ids.Shuffled(500, r), MaxRounds: 10000},
		mis.NewDetFactory(mis.DetOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	luby, err := sim.Run(g, sim.Config{Randomized: true, Seed: 5},
		mis.NewLubyFactory(mis.LubyOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := lcl.MIS().Validate(lcl.Instance{G: g}, lcl.BoolLabels(boolOutputs(det))); err != nil {
		t.Fatal(err)
	}
	if err := lcl.MIS().Validate(lcl.Instance{G: g}, lcl.BoolLabels(boolOutputs(luby))); err != nil {
		t.Fatal(err)
	}
	t.Logf("n=500 Δ=8: det=%d rounds, luby=%d rounds", det.Rounds, luby.Rounds)
}

func TestLubyRequiresRandomness(t *testing.T) {
	// The machine panics in Init; the hardened kernel turns that into a
	// structured ErrNodePanic instead of crashing the caller.
	_, err := sim.Run(graph.Path(4), sim.Config{}, mis.NewLubyFactory(mis.LubyOptions{}))
	if !errors.Is(err, sim.ErrNodePanic) {
		t.Fatalf("Luby without randomness: err = %v, want ErrNodePanic", err)
	}
}
