// Package mis implements maximal independent set algorithms in both LOCAL
// model variants — the Section I context of the paper ("for most problems
// the best randomized algorithm is at least exponentially faster than the
// best deterministic algorithm"):
//
//   - Luby's RandLOCAL algorithm: O(log n) rounds with high probability,
//     no IDs needed. Supports restriction to an induced subgraph and a
//     forced seed set (the "find any MIS I ⊇ K" step of Theorem 11).
//   - A DetLOCAL algorithm via Linial's coloring: compute a (Δ+1)-coloring
//     in O(log* n + Δ log Δ) rounds (Theorem 2 + Kuhn–Wattenhofer), then
//     sweep the Δ+1 color classes — O(Δ + log* n)-flavored overall,
//     mirroring the deterministic bounds cited in the paper [9].
//
// Outputs are bool ("in the MIS"); a vertex that fails to decide within its
// round budget (possible only for the randomized algorithm, with
// probability 1/poly(n)) outputs false and is caught by the LCL verifier
// as a maximality violation — failures are visible, never silent.
package mis

import (
	"fmt"

	"locality/internal/linial"
	"locality/internal/mathx"
	"locality/internal/sim"
)

// state is a vertex's MIS status.
type state int

const (
	stateUndecided state = iota + 1
	stateIn
	stateOut
)

// LubyOptions configures the randomized MIS machine.
type LubyOptions struct {
	// Active restricts the algorithm to an induced subgraph; nil = all.
	// Inactive vertices output false and halt immediately.
	Active func(env sim.Env) bool
	// Seed forces a vertex into the MIS at phase zero. The seed set must be
	// independent (Theorem 11 seeds the local minima of random values,
	// which are). Nil means no seeding.
	Seed func(env sim.Env) bool
	// MaxPhases caps the number of Luby phases; 0 means 8·ceil(log2 n)+16,
	// far beyond the O(log n) whp bound.
	MaxPhases int
}

// lubyMsg is the per-step broadcast of the Luby machine.
type lubyMsg struct {
	State    state
	Priority uint64
}

type luby struct {
	opt    LubyOptions
	env    sim.Env
	active bool
	st     state
	prio   uint64
	nbrSt  []state
	phases int
}

var _ sim.Machine = (*luby)(nil)

// NewLubyFactory returns Luby's randomized MIS machine.
func NewLubyFactory(opt LubyOptions) sim.Factory {
	return func() sim.Machine { return &luby{opt: opt} }
}

func (m *luby) Init(env sim.Env) {
	m.env = env
	m.active = m.opt.Active == nil || m.opt.Active(env)
	m.st = stateUndecided
	if m.active && m.opt.Seed != nil && m.opt.Seed(env) {
		m.st = stateIn
	}
	m.nbrSt = make([]state, env.Degree)
	m.phases = m.opt.MaxPhases
	if m.phases == 0 {
		m.phases = 8*mathx.CeilLog2(env.N+1) + 16
	}
	if env.Rand == nil {
		panic("mis: Luby is a RandLOCAL algorithm; Config.Randomized required")
	}
}

// Step runs two sub-steps per phase: (A) undecided vertices draw and
// broadcast priorities, (B) local maxima join and announce; vertices
// adjacent to a joiner drop out at the start of the next phase.
func (m *luby) Step(step int, recv []sim.Message) ([]sim.Message, bool) {
	if !m.active {
		return nil, true
	}
	for p, msg := range recv {
		if msg == nil {
			continue
		}
		lm, ok := msg.(lubyMsg)
		if !ok {
			panic(fmt.Sprintf("mis: unexpected message %T", msg))
		}
		m.nbrSt[p] = lm.State
		if m.st == stateUndecided && step%2 == 1 && lm.State == stateUndecided {
			// Phase decision happens on odd steps (B): compare priorities.
			if lm.Priority > m.prio || (lm.Priority == m.prio && lm.Priority != 0) {
				// Not a strict local maximum this phase (ties lose).
				m.prio = 0 // mark: cannot join this phase
			}
		}
	}
	// Drop out if any neighbor is In.
	if m.st == stateUndecided {
		for _, s := range m.nbrSt {
			if s == stateIn {
				m.st = stateOut
				break
			}
		}
	}
	if m.st != stateUndecided {
		// Announce the final state once more, then halt.
		return sim.Broadcast(m.env.Degree, lubyMsg{State: m.st}), true
	}
	if step/2 >= m.phases {
		return nil, true // budget exhausted: fail visibly (remain undecided)
	}
	if step%2 == 0 {
		// Sub-step A: draw a fresh priority (nonzero so 0 can mean "lost").
		m.prio = m.env.Rand.Uint64() | 1
		return sim.Broadcast(m.env.Degree, lubyMsg{State: m.st, Priority: m.prio}), false
	}
	// Sub-step B: if still holding a nonzero priority, all undecided
	// neighbors were smaller: join.
	if m.prio != 0 {
		m.st = stateIn
		return sim.Broadcast(m.env.Degree, lubyMsg{State: m.st}), true
	}
	return sim.Broadcast(m.env.Degree, lubyMsg{State: m.st}), false
}

func (m *luby) Output() any { return m.st == stateIn }

// DetOptions configures the deterministic MIS machine.
type DetOptions struct {
	// IDSpace bounds the IDs (1..IDSpace); 0 means Env.N.
	IDSpace int
	// Delta bounds the maximum degree; 0 means Env.MaxDeg.
	Delta int
}

// det runs Linial+KW to a (Δ+1)-coloring, then sweeps the color classes.
type det struct {
	opt    DetOptions
	env    sim.Env
	linial sim.Machine
	linSt  int // step at which the inner Linial machine halts
	color  int
	st     state
}

var _ sim.Machine = (*det)(nil)

// NewDetFactory returns the deterministic MIS machine.
func NewDetFactory(opt DetOptions) sim.Factory {
	return func() sim.Machine { return &det{opt: opt} }
}

func (m *det) Init(env sim.Env) {
	m.env = env
	if m.opt.IDSpace == 0 {
		m.opt.IDSpace = env.N
	}
	if m.opt.Delta == 0 {
		m.opt.Delta = env.MaxDeg
	}
	lopt := linial.Options{
		InitialPalette: m.opt.IDSpace,
		Delta:          m.opt.Delta,
		Target:         m.opt.Delta + 1,
		KW:             true,
	}
	m.linial = linial.NewFactory(lopt)()
	m.linial.Init(env)
	m.linSt = linial.Rounds(lopt) + 1
	m.st = stateUndecided
}

// detMsg is the sweep-phase broadcast.
type detMsg struct {
	State state
}

func (m *det) Step(step int, recv []sim.Message) ([]sim.Message, bool) {
	if step <= m.linSt {
		send, done := m.linial.Step(step, recv)
		if done {
			m.color = m.linial.Output().(int) // 1-based
		}
		if step < m.linSt {
			return send, false
		}
		// Transition step: start the sweep broadcasting our state.
		return sim.Broadcast(m.env.Degree, detMsg{State: m.st}), false
	}
	// Sweep: class c = step - linSt.
	for _, msg := range recv {
		if msg == nil {
			continue
		}
		dm, ok := msg.(detMsg)
		if !ok {
			panic(fmt.Sprintf("mis: unexpected sweep message %T", msg))
		}
		if dm.State == stateIn && m.st == stateUndecided {
			m.st = stateOut
		}
	}
	class := step - m.linSt
	if m.st == stateUndecided && m.color == class {
		m.st = stateIn
	}
	if class > m.opt.Delta+1 {
		if m.st == stateUndecided {
			panic("mis: vertex undecided after all classes (internal bug)")
		}
		return nil, true
	}
	return sim.Broadcast(m.env.Degree, detMsg{State: m.st}), false
}

func (m *det) Output() any { return m.st == stateIn }

// DetRounds predicts the deterministic machine's round count.
func DetRounds(opt DetOptions, n, maxDeg int) int {
	if opt.IDSpace == 0 {
		opt.IDSpace = n
	}
	if opt.Delta == 0 {
		opt.Delta = maxDeg
	}
	lopt := linial.Options{
		InitialPalette: opt.IDSpace,
		Delta:          opt.Delta,
		Target:         opt.Delta + 1,
		KW:             true,
	}
	// linial steps (rounds+1 including its final absorb step) then Δ+2
	// sweep steps; the machine halts at step linSt + Δ+2, so rounds are
	// linSt + Δ + 1.
	return linial.Rounds(lopt) + 1 + opt.Delta + 1
}
