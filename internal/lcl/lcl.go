// Package lcl formalizes the class of Locally Checkable Labeling problems
// (Naor–Stockmeyer [7]) exactly as Section II of the paper defines them: an
// LCL is a radius r, a finite label set Σ, and a set C of acceptable labeled
// subgraphs; a labeling is a solution iff the labeled radius-r view of every
// vertex is acceptable.
//
// Every symmetry-breaking problem the paper discusses is provided as a
// Problem value: k-coloring, MIS, maximal matching, Δ-sinkless coloring and
// Δ-sinkless orientation (the Brandt et al. problems behind Theorem 4).
// All of them have radius 1, so the local check takes a vertex's own label,
// environment, and its neighbors' labels by port.
//
// The same check function powers two verifiers:
//
//   - Validate: a centralized judge used by tests and experiments;
//   - VerifierFactory: a 1-round distributed verifier running in the
//     simulator, demonstrating that the problems really are locally
//     checkable with the claimed radius.
package lcl

import (
	"errors"
	"fmt"

	"locality/internal/graph"
	"locality/internal/sim"
)

// Instance is a problem instance: a graph plus the optional input labeling
// some LCLs require (the sinkless problems take a proper Δ-edge coloring).
type Instance struct {
	G *graph.Graph
	// EdgeColors[e] is the input color of edge e (1-based); nil when the
	// problem has no input labeling.
	EdgeColors []int
	// NumEdgeColors is the size of the edge-color palette.
	NumEdgeColors int
}

// VertexInput is what instance inputs look like from one vertex: the colors
// of its incident edges in port order. It is what the simulator passes as
// Env.Input for problems with edge-colored instances.
type VertexInput struct {
	EdgeColors []int
}

// NodeInputs converts an instance's edge coloring into per-vertex simulator
// inputs (nil if the instance has no input labeling).
func (inst Instance) NodeInputs() []any {
	if inst.EdgeColors == nil {
		return nil
	}
	inputs := make([]any, inst.G.N())
	for v := 0; v < inst.G.N(); v++ {
		ports := inst.G.Ports(v)
		in := VertexInput{EdgeColors: make([]int, len(ports))}
		for p, h := range ports {
			in.EdgeColors[p] = inst.EdgeColors[h.Edge]
		}
		inputs[v] = in
	}
	return inputs
}

// LocalView is the radius-1 labeled view a check inspects: the center's
// degree, input and output label, and the neighbors' output labels in port
// order.
type LocalView struct {
	Degree    int
	Input     VertexInput // zero value when the problem has no input
	Label     any
	NbrLabels []any
}

// Problem is a locally checkable labeling problem with radius 1.
type Problem struct {
	// Name identifies the problem in reports.
	Name string
	// Radius is the checkability radius; all built-ins have radius 1.
	Radius int
	// Echo projects a vertex's label onto one of its ports: it is what the
	// neighbor across that port gets to see. Plain-label problems
	// (coloring, MIS) leave it nil (identity); problems whose labels encode
	// per-edge decisions (matching, orientation) use it to expose exactly
	// the decision about the shared edge, which is what makes the
	// endpoint-consistency constraints radius-1 checkable.
	Echo func(label any, port int) any
	// Check returns nil iff the view is acceptable (the view is in C).
	Check func(view LocalView) error
}

// echoAt applies Echo (or identity).
func (p Problem) echoAt(label any, port int) any {
	if p.Echo == nil {
		return label
	}
	return p.Echo(label, port)
}

// Validate judges a complete output labeling centrally: it builds every
// vertex's local view and applies the problem's check. out[v] is vertex v's
// output label. A nil error means the labeling is a solution.
func (p Problem) Validate(inst Instance, out []any) error {
	g := inst.G
	if len(out) != g.N() {
		return fmt.Errorf("lcl: %d labels for %d vertices", len(out), g.N())
	}
	for v := 0; v < g.N(); v++ {
		if err := p.Check(p.buildView(inst, out, v)); err != nil {
			return fmt.Errorf("lcl: %s violated at vertex %d: %w", p.Name, v, err)
		}
	}
	return nil
}

// Report is the counted, graceful-degradation companion to Validate: instead
// of failing on the first violated constraint it tallies how many of the
// instance's per-vertex constraints hold. Experiment E12 uses it to turn
// "how badly does an algorithm degrade under injected faults" into a number.
type Report struct {
	// N is the number of per-vertex constraints checked (the vertex count).
	N int
	// Violated counts vertices whose radius-1 view fails the check.
	Violated int
	// Worst is the first violating vertex (-1 when the labeling is a
	// solution), with its check error in WorstErr.
	Worst    int
	WorstErr error
	// Structural is non-nil when the labeling could not be checked at all
	// (wrong length); every constraint then counts as violated.
	Structural error
}

// Satisfied returns the number of satisfied constraints.
func (r Report) Satisfied() int { return r.N - r.Violated }

// SatisfiedFraction returns the fraction of constraints satisfied in [0, 1]
// (1 for an empty instance).
func (r Report) SatisfiedFraction() float64 {
	if r.N == 0 {
		return 1
	}
	return float64(r.N-r.Violated) / float64(r.N)
}

// Violations judges a labeling gracefully: every vertex's constraint is
// checked and counted, so a partially-correct labeling (a faulty or
// crashed run's output) yields a partial score instead of a bare failure.
// Validate remains the strict all-or-nothing judge.
func (p Problem) Violations(inst Instance, out []any) Report {
	g := inst.G
	rep := Report{N: g.N(), Worst: -1}
	if len(out) != g.N() {
		rep.Structural = fmt.Errorf("lcl: %d labels for %d vertices", len(out), g.N())
		rep.Violated = rep.N
		return rep
	}
	for v := 0; v < g.N(); v++ {
		if err := p.Check(p.buildView(inst, out, v)); err != nil {
			rep.Violated++
			if rep.Worst < 0 {
				rep.Worst = v
				rep.WorstErr = fmt.Errorf("lcl: %s violated at vertex %d: %w", p.Name, v, err)
			}
		}
	}
	return rep
}

func (p Problem) buildView(inst Instance, out []any, v int) LocalView {
	g := inst.G
	ports := g.Ports(v)
	view := LocalView{
		Degree:    len(ports),
		Label:     out[v],
		NbrLabels: make([]any, len(ports)),
	}
	for q, h := range ports {
		// What the neighbor shows across the shared edge: its label echoed
		// through its own port for this edge (h.Rev).
		view.NbrLabels[q] = p.echoAt(out[h.To], h.Rev)
	}
	if inst.EdgeColors != nil {
		view.Input.EdgeColors = make([]int, len(ports))
		for q, h := range ports {
			view.Input.EdgeColors[q] = inst.EdgeColors[h.Edge]
		}
	}
	return view
}

// VerifierFactory returns a 1-round distributed verifier for p: every node
// is given its output label as input (paired with the instance input via
// VerifierInputs), exchanges labels with its neighbors in one round, applies
// the check, and outputs a nil error or the violation. This is the
// "solutions can be verified in O(1) rounds" half of the LCL definition,
// running for real in the simulator.
func VerifierFactory(p Problem) sim.Factory {
	return func() sim.Machine { return &verifier{p: p} }
}

// VerifierInput is the per-vertex input of a verification run.
type VerifierInput struct {
	Instance VertexInput
	Label    any
}

// VerifierInputs bundles an instance's inputs with a labeling, for use as
// sim.Config.Inputs in a verification run.
func VerifierInputs(inst Instance, out []any) []any {
	inputs := make([]any, inst.G.N())
	instIn := inst.NodeInputs()
	for v := range inputs {
		vi := VerifierInput{Label: out[v]}
		if instIn != nil {
			vi.Instance = instIn[v].(VertexInput)
		}
		inputs[v] = vi
	}
	return inputs
}

type verifier struct {
	p    Problem
	env  sim.Env
	in   VerifierInput
	errv error
}

var _ sim.Machine = (*verifier)(nil)

func (m *verifier) Init(env sim.Env) {
	m.env = env
	var ok bool
	m.in, ok = env.Input.(VerifierInput)
	if !ok {
		m.errv = fmt.Errorf("lcl: verifier input is %T, want VerifierInput", env.Input)
	}
}

func (m *verifier) Step(step int, recv []sim.Message) ([]sim.Message, bool) {
	if m.errv != nil {
		return nil, true
	}
	switch step {
	case 1:
		send := make([]sim.Message, m.env.Degree)
		for p := range send {
			send[p] = m.p.echoAt(m.in.Label, p)
		}
		return send, false
	default:
		view := LocalView{
			Degree:    m.env.Degree,
			Input:     m.in.Instance,
			Label:     m.in.Label,
			NbrLabels: make([]any, len(recv)),
		}
		for p, msg := range recv {
			view.NbrLabels[p] = msg
		}
		m.errv = m.p.Check(view)
		return nil, true
	}
}

func (m *verifier) Output() any {
	if m.errv == nil {
		return nil
	}
	return m.errv
}

// VerifyDistributed runs the 1-round distributed verifier and reports
// whether every vertex accepted, the number of rounds the verification
// used, and the first violation (if any).
func VerifyDistributed(p Problem, inst Instance, out []any) (bool, int, error) {
	res, err := sim.Run(inst.G, sim.Config{Inputs: VerifierInputs(inst, out)}, VerifierFactory(p))
	if err != nil {
		return false, 0, fmt.Errorf("lcl: verification run failed: %w", err)
	}
	for v, o := range res.Outputs {
		if o != nil {
			return false, res.Rounds, fmt.Errorf("vertex %d rejects: %w", v, o.(error))
		}
	}
	return true, res.Rounds, nil
}

// errLabelType is returned by checks on labels of the wrong dynamic type.
var errLabelType = errors.New("label has wrong type")
