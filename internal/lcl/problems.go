package lcl

import (
	"fmt"
)

// This file defines the concrete LCL problems from Section II of the paper.
// Label conventions (all 1-based where applicable):
//
//   k-coloring          label = int in 1..k
//   MIS                 label = bool (in the set)
//   maximal matching    label = int: the port of the matched edge, or -1
//   Δ-sinkless coloring label = int in 1..Δ (needs edge-colored instance)
//   Δ-sinkless orient.  label = OrientationLabel: Out[p] per port
//
// Matching and orientation labels are per-vertex encodings of edge
// decisions, so the radius-1 check also enforces consistency between the
// two endpoints, exactly as the paper notes for sinkless orientation
// ("the radius r = 1 is necessary and sufficient to verify that the
// orientations declared by both endpoints of an edge are consistent").

// Coloring returns the k-COLORING LCL: adjacent vertices get distinct
// colors from {1, ..., k}.
func Coloring(k int) Problem {
	return Problem{
		Name:   fmt.Sprintf("%d-coloring", k),
		Radius: 1,
		Check: func(view LocalView) error {
			c, ok := view.Label.(int)
			if !ok {
				return fmt.Errorf("%w: %T", errLabelType, view.Label)
			}
			if c < 1 || c > k {
				return fmt.Errorf("color %d outside palette 1..%d", c, k)
			}
			for p, nl := range view.NbrLabels {
				nc, ok := nl.(int)
				if !ok {
					return fmt.Errorf("%w: neighbor at port %d has %T", errLabelType, p, nl)
				}
				if nc == c {
					return fmt.Errorf("monochromatic edge at port %d (color %d)", p, c)
				}
			}
			return nil
		},
	}
}

// MIS returns the MAXIMAL INDEPENDENT SET LCL: v is in the set iff none of
// its neighbors is.
func MIS() Problem {
	return Problem{
		Name:   "MIS",
		Radius: 1,
		Check: func(view LocalView) error {
			in, ok := view.Label.(bool)
			if !ok {
				return fmt.Errorf("%w: %T", errLabelType, view.Label)
			}
			nbrIn := false
			for p, nl := range view.NbrLabels {
				b, ok := nl.(bool)
				if !ok {
					return fmt.Errorf("%w: neighbor at port %d has %T", errLabelType, p, nl)
				}
				if b && in {
					return fmt.Errorf("independence violated at port %d", p)
				}
				nbrIn = nbrIn || b
			}
			if !in && !nbrIn && view.Degree > 0 {
				return fmt.Errorf("maximality violated: vertex and all neighbors out")
			}
			if !in && view.Degree == 0 {
				return fmt.Errorf("isolated vertex must join the MIS")
			}
			return nil
		},
	}
}

// MatchLabel encodes a vertex's maximal-matching decision: the port of its
// matched edge, or -1 if unmatched.
type MatchLabel int

// MaximalMatching returns the MAXIMAL MATCHING LCL. The radius-1 check
// enforces (a) consistency: if v says "matched via port p" then the
// neighbor at p matches back along the same edge; (b) maximality: two
// adjacent unmatched vertices are forbidden. The Echo hook projects a
// vertex's decision onto each port ("am I matched, and is it along this
// edge?"), which is what makes both constraints checkable at radius 1.
func MaximalMatching() Problem {
	return Problem{
		Name:   "maximal-matching",
		Radius: 1,
		Echo: func(label any, port int) any {
			ml, ok := label.(MatchLabel)
			if !ok {
				return label // surfaced as a type error at the receiver
			}
			return matchEcho{Unmatched: ml < 0, TowardsMe: int(ml) == port}
		},
		Check: func(view LocalView) error {
			ml, ok := view.Label.(MatchLabel)
			if !ok {
				return fmt.Errorf("%w: %T", errLabelType, view.Label)
			}
			p := int(ml)
			if p < -1 || p >= view.Degree {
				return fmt.Errorf("match port %d out of range for degree %d", p, view.Degree)
			}
			if p >= 0 {
				// The neighbor at port p must also be matched. (It claims
				// some port; mutual agreement is enforced because IT runs
				// the same check and we broadcast along the shared edge:
				// see matchedTowards below.)
				nl, ok := view.NbrLabels[p].(matchEcho)
				if !ok {
					return fmt.Errorf("%w: neighbor echo at port %d has %T", errLabelType, p, view.NbrLabels[p])
				}
				if !nl.TowardsMe {
					return fmt.Errorf("asymmetric matching: port-%d neighbor does not match back", p)
				}
				return nil
			}
			// Unmatched: no neighbor may be unmatched too.
			for q, nl := range view.NbrLabels {
				e, ok := nl.(matchEcho)
				if !ok {
					return fmt.Errorf("%w: neighbor echo at port %d has %T", errLabelType, q, view.NbrLabels[q])
				}
				if e.Unmatched {
					return fmt.Errorf("maximality violated: both endpoints of port-%d edge unmatched", q)
				}
			}
			return nil
		},
	}
}

// matchEcho is what a vertex's matching label looks like across one of its
// edges: whether the vertex is unmatched, and whether its matched edge is
// this one.
type matchEcho struct {
	Unmatched bool
	TowardsMe bool
}

// ValidateMatching judges a maximal matching centrally.
func ValidateMatching(inst Instance, labels []MatchLabel) error {
	out := make([]any, len(labels))
	for i, l := range labels {
		out[i] = l
	}
	return MaximalMatching().Validate(inst, out)
}

// OrientationLabel encodes a vertex's orientation decisions: Out[p] is true
// when the edge at port p is oriented away from this vertex.
type OrientationLabel struct {
	Out []bool
}

// SinklessOrientation returns the Δ-SINKLESS ORIENTATION LCL of Brandt et
// al. [1]: orient every edge so that every vertex has out-degree >= 1, with
// the radius-1 check also enforcing that the two endpoints of each edge
// agree (exactly one claims it outgoing).
//
// The Echo hook exposes each endpoint's decision about the shared edge.
func SinklessOrientation() Problem {
	return Problem{
		Name:   "sinkless-orientation",
		Radius: 1,
		Echo: func(label any, port int) any {
			ol, ok := label.(OrientationLabel)
			if !ok || port >= len(ol.Out) {
				return label // surfaced as a type error at the receiver
			}
			return orientEcho(ol.Out[port])
		},
		Check: func(view LocalView) error {
			ol, ok := view.Label.(OrientationLabel)
			if !ok {
				return fmt.Errorf("%w: %T", errLabelType, view.Label)
			}
			if len(ol.Out) != view.Degree {
				return fmt.Errorf("orientation labels %d ports, degree is %d", len(ol.Out), view.Degree)
			}
			hasOut := false
			for p, out := range ol.Out {
				echo, ok := view.NbrLabels[p].(orientEcho)
				if !ok {
					return fmt.Errorf("%w: neighbor echo at port %d has %T", errLabelType, p, view.NbrLabels[p])
				}
				if out == bool(echo) {
					return fmt.Errorf("edge at port %d claimed %v by both endpoints", p, out)
				}
				hasOut = hasOut || out
			}
			if !hasOut {
				return fmt.Errorf("vertex is a sink (out-degree 0)")
			}
			return nil
		},
	}
}

// orientEcho is the neighbor's claim about the shared edge: true = "I
// orient it outgoing (towards you)".
type orientEcho bool

// ValidateOrientation judges a sinkless orientation centrally.
func ValidateOrientation(inst Instance, labels []OrientationLabel) error {
	out := make([]any, len(labels))
	for i, l := range labels {
		out[i] = l
	}
	return SinklessOrientation().Validate(inst, out)
}

// SinklessColoring returns the Δ-SINKLESS COLORING LCL of Brandt et al.
// [1]: given a Δ-regular graph with a proper Δ-edge coloring, color the
// vertices with 1..Δ such that no edge has both endpoints and the edge
// itself sharing one color.
func SinklessColoring(delta int) Problem {
	return Problem{
		Name:   fmt.Sprintf("%d-sinkless-coloring", delta),
		Radius: 1,
		Check: func(view LocalView) error {
			c, ok := view.Label.(int)
			if !ok {
				return fmt.Errorf("%w: %T", errLabelType, view.Label)
			}
			if c < 1 || c > delta {
				return fmt.Errorf("color %d outside palette 1..%d", c, delta)
			}
			if len(view.Input.EdgeColors) != view.Degree {
				return fmt.Errorf("instance provides %d edge colors for degree %d", len(view.Input.EdgeColors), view.Degree)
			}
			for p, nl := range view.NbrLabels {
				nc, ok := nl.(int)
				if !ok {
					return fmt.Errorf("%w: neighbor at port %d has %T", errLabelType, p, nl)
				}
				if nc == c && view.Input.EdgeColors[p] == c {
					return fmt.Errorf("forbidden monochromatic configuration at port %d (color %d)", p, c)
				}
			}
			return nil
		},
	}
}

// IntLabels converts int outputs to the []any form Validate expects.
func IntLabels(xs []int) []any {
	out := make([]any, len(xs))
	for i, x := range xs {
		out[i] = x
	}
	return out
}

// BoolLabels converts bool outputs to the []any form Validate expects.
func BoolLabels(xs []bool) []any {
	out := make([]any, len(xs))
	for i, x := range xs {
		out[i] = x
	}
	return out
}
