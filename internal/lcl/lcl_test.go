package lcl

import (
	"strings"
	"testing"

	"locality/internal/graph"
	"locality/internal/rng"
)

func ring5Instance() Instance {
	return Instance{G: graph.Ring(5)}
}

func TestColoringValidAndInvalid(t *testing.T) {
	inst := ring5Instance()
	p := Coloring(3)
	valid := IntLabels([]int{1, 2, 1, 2, 3})
	if err := p.Validate(inst, valid); err != nil {
		t.Errorf("valid 3-coloring rejected: %v", err)
	}
	tests := []struct {
		name   string
		labels []int
		substr string
	}{
		{"monochromatic edge", []int{1, 1, 2, 1, 2}, "monochromatic"},
		{"out of palette high", []int{1, 2, 1, 2, 4}, "palette"},
		{"out of palette zero", []int{1, 2, 1, 2, 0}, "palette"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := p.Validate(inst, IntLabels(tt.labels))
			if err == nil {
				t.Fatal("invalid coloring accepted")
			}
			if !strings.Contains(err.Error(), tt.substr) {
				t.Errorf("error %q does not mention %q", err, tt.substr)
			}
		})
	}
}

func TestColoringWrongTypeRejected(t *testing.T) {
	inst := ring5Instance()
	labels := IntLabels([]int{1, 2, 1, 2, 3})
	labels[2] = "red"
	if err := Coloring(3).Validate(inst, labels); err == nil {
		t.Error("string label accepted")
	}
}

func TestMISValidation(t *testing.T) {
	g := graph.Path(5)
	inst := Instance{G: g}
	p := MIS()
	if err := p.Validate(inst, BoolLabels([]bool{true, false, true, false, true})); err != nil {
		t.Errorf("valid MIS rejected: %v", err)
	}
	// Independence violation.
	if err := p.Validate(inst, BoolLabels([]bool{true, true, false, false, true})); err == nil {
		t.Error("dependent set accepted")
	}
	// Maximality violation: {0, 4} leaves vertex 2 uncovered.
	if err := p.Validate(inst, BoolLabels([]bool{true, false, false, false, true})); err == nil {
		t.Error("non-maximal set accepted")
	}
	// Isolated vertex must be in the set.
	iso := Instance{G: graph.NewBuilder(1).MustBuild()}
	if err := p.Validate(iso, BoolLabels([]bool{false})); err == nil {
		t.Error("isolated vertex outside MIS accepted")
	}
	if err := p.Validate(iso, BoolLabels([]bool{true})); err != nil {
		t.Errorf("isolated vertex in MIS rejected: %v", err)
	}
}

func TestMatchingValidation(t *testing.T) {
	// Path 0-1-2-3: match {0,1} and {2,3}.
	g := graph.Path(4)
	inst := Instance{G: g}
	portOf := func(v, u int) MatchLabel {
		for p, h := range g.Ports(v) {
			if h.To == u {
				return MatchLabel(p)
			}
		}
		t.Fatalf("no edge %d-%d", v, u)
		return -1
	}
	valid := []MatchLabel{portOf(0, 1), portOf(1, 0), portOf(2, 3), portOf(3, 2)}
	if err := ValidateMatching(inst, valid); err != nil {
		t.Errorf("valid matching rejected: %v", err)
	}
	// Asymmetric: 1 claims 2, but 2 claims 3.
	bad := []MatchLabel{portOf(0, 1), portOf(1, 2), portOf(2, 3), portOf(3, 2)}
	if err := ValidateMatching(inst, bad); err == nil {
		t.Error("asymmetric matching accepted")
	}
	// Non-maximal: nothing matched.
	none := []MatchLabel{-1, -1, -1, -1}
	if err := ValidateMatching(inst, none); err == nil {
		t.Error("empty matching on a path accepted")
	}
	// Middle edge matched: {1,2} alone IS maximal on P4.
	mid := []MatchLabel{-1, portOf(1, 2), portOf(2, 1), -1}
	if err := ValidateMatching(inst, mid); err != nil {
		t.Errorf("maximal middle matching rejected: %v", err)
	}
}

func TestSinklessOrientationValidation(t *testing.T) {
	g := graph.Ring(4)
	inst := Instance{G: g}
	// Orient the ring cyclically: every vertex out-degree 1. Build labels
	// from edge directions: edge e = {u,v} oriented u->v iff u+1 == v or
	// (u,v) = (n-1, 0).
	n := g.N()
	labels := make([]OrientationLabel, n)
	for v := 0; v < n; v++ {
		ports := g.Ports(v)
		out := make([]bool, len(ports))
		for p, h := range ports {
			out[p] = h.To == (v+1)%n
		}
		labels[v] = OrientationLabel{Out: out}
	}
	if err := ValidateOrientation(inst, labels); err != nil {
		t.Errorf("cyclic orientation rejected: %v", err)
	}
	// Make vertex 0 a sink: flip its outgoing edge from both sides.
	sink := make([]OrientationLabel, n)
	for v := range sink {
		sink[v] = OrientationLabel{Out: append([]bool(nil), labels[v].Out...)}
	}
	for p, h := range g.Ports(0) {
		if h.To == 1 {
			sink[0].Out[p] = false
			sink[1].Out[h.Rev] = true
		}
	}
	err := ValidateOrientation(inst, sink)
	if err == nil || !strings.Contains(err.Error(), "sink") {
		t.Errorf("sink not detected: %v", err)
	}
	// Inconsistent edge: both endpoints claim it outgoing.
	incons := make([]OrientationLabel, n)
	for v := range incons {
		incons[v] = OrientationLabel{Out: append([]bool(nil), labels[v].Out...)}
	}
	for _, h := range g.Ports(0) {
		if h.To == 1 {
			incons[1].Out[h.Rev] = true // 0 already claims it
		}
	}
	if err := ValidateOrientation(inst, incons); err == nil {
		t.Error("inconsistent orientation accepted")
	}
}

func TestSinklessColoringValidation(t *testing.T) {
	ecg := graph.RandomRegularBipartite(6, 3, rng.New(2))
	inst := Instance{G: ecg.Graph, EdgeColors: ecg.Colors, NumEdgeColors: 3}
	p := SinklessColoring(3)
	// A proper 2-coloring by side is in particular sinkless... no: sinkless
	// needs color(u)=color(v)=ψ(e) forbidden; a proper coloring never has
	// color(u)=color(v), so it is trivially valid. Use side coloring 1/2.
	labels := make([]int, ecg.N())
	for v := range labels {
		if v < 6 {
			labels[v] = 1
		} else {
			labels[v] = 2
		}
	}
	if err := p.Validate(inst, IntLabels(labels)); err != nil {
		t.Errorf("proper coloring rejected as sinkless coloring: %v", err)
	}
	// Force a forbidden configuration: pick edge 0, set both endpoints to
	// its edge color.
	u, v := ecg.EdgeEndpoints(0)
	bad := append([]int(nil), labels...)
	bad[u] = ecg.Colors[0]
	bad[v] = ecg.Colors[0]
	if err := p.Validate(inst, IntLabels(bad)); err == nil {
		t.Error("forbidden monochromatic configuration accepted")
	}
	// Same vertex colors WITHOUT matching edge color is fine for sinkless
	// coloring (it is not a proper coloring problem): craft one.
	otherColor := ecg.Colors[0]%3 + 1
	okSame := append([]int(nil), labels...)
	okSame[u] = otherColor
	okSame[v] = otherColor
	// Only acceptable if no OTHER incident edge creates a forbidden
	// configuration; check via the validator itself on this small case and
	// tolerate both outcomes, but ensure the specific edge-0 check passes:
	// the Check must not report port errors mentioning "palette".
	if err := p.Validate(inst, IntLabels(okSame)); err != nil &&
		strings.Contains(err.Error(), "palette") {
		t.Errorf("unexpected palette error: %v", err)
	}
}

func TestDistributedVerifierAgreesWithCentral(t *testing.T) {
	r := rng.New(8)
	g := graph.RandomTree(50, 4, r)
	inst := Instance{G: g}
	p := Coloring(5)
	// Greedy valid coloring (centralized, just for test data).
	colors := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		used := map[int]bool{}
		for _, h := range g.Ports(v) {
			used[colors[h.To]] = true
		}
		for c := 1; ; c++ {
			if !used[c] {
				colors[v] = c
				break
			}
		}
	}
	labels := IntLabels(colors)
	centralErr := p.Validate(inst, labels)
	ok, rounds, distErr := VerifyDistributed(p, inst, labels)
	if centralErr != nil || !ok {
		t.Fatalf("valid coloring rejected: central=%v distributed=%v", centralErr, distErr)
	}
	if rounds != 1 {
		t.Errorf("distributed verification took %d rounds, want 1 (it is an LCL!)", rounds)
	}
	// Corrupt one vertex; both must reject.
	bad := append([]any(nil), labels...)
	bad[10] = colors[g.Ports(10)[0].To] // copy a neighbor's color
	if err := p.Validate(inst, bad); err == nil {
		t.Error("central verifier accepted corruption")
	}
	if ok, _, _ := VerifyDistributed(p, inst, bad); ok {
		t.Error("distributed verifier accepted corruption")
	}
}

func TestDistributedVerifierMatchingAndOrientation(t *testing.T) {
	// The Echo mechanism must make the per-edge problems verifiable in one
	// round too.
	g := graph.Ring(6)
	inst := Instance{G: g}
	n := g.N()
	labels := make([]any, n)
	for v := 0; v < n; v++ {
		ports := g.Ports(v)
		out := make([]bool, len(ports))
		for p, h := range ports {
			out[p] = h.To == (v+1)%n
		}
		labels[v] = OrientationLabel{Out: out}
	}
	ok, rounds, err := VerifyDistributed(SinklessOrientation(), inst, labels)
	if !ok {
		t.Errorf("distributed orientation verification failed: %v", err)
	}
	if rounds != 1 {
		t.Errorf("orientation verification rounds = %d, want 1", rounds)
	}

	match := make([]any, n)
	for v := 0; v < n; v++ {
		partner := v ^ 1 // pairs (0,1),(2,3),(4,5)
		ml := MatchLabel(-1)
		for p, h := range g.Ports(v) {
			if h.To == partner {
				ml = MatchLabel(p)
			}
		}
		match[v] = ml
	}
	ok, _, err = VerifyDistributed(MaximalMatching(), inst, match)
	if !ok {
		t.Errorf("distributed matching verification failed: %v", err)
	}
}

func TestValidateLengthMismatch(t *testing.T) {
	inst := ring5Instance()
	if err := Coloring(3).Validate(inst, IntLabels([]int{1, 2})); err == nil {
		t.Error("short labeling accepted")
	}
}

func TestNodeInputs(t *testing.T) {
	ecg := graph.RandomRegularBipartite(4, 3, rng.New(6))
	inst := Instance{G: ecg.Graph, EdgeColors: ecg.Colors, NumEdgeColors: 3}
	inputs := inst.NodeInputs()
	if len(inputs) != ecg.N() {
		t.Fatalf("inputs length %d, want %d", len(inputs), ecg.N())
	}
	for v, in := range inputs {
		vi := in.(VertexInput)
		if len(vi.EdgeColors) != ecg.Degree(v) {
			t.Fatalf("vertex %d input has %d colors, want %d", v, len(vi.EdgeColors), ecg.Degree(v))
		}
		for p, c := range vi.EdgeColors {
			if want := ecg.Colors[ecg.Ports(v)[p].Edge]; c != want {
				t.Errorf("vertex %d port %d color %d, want %d", v, p, c, want)
			}
		}
	}
	if (Instance{G: ecg.Graph}).NodeInputs() != nil {
		t.Error("instance without edge colors should have nil inputs")
	}
}

func TestViolationsCountsPartialDamage(t *testing.T) {
	// Path of 6 vertices, proper 2-coloring, then corrupt vertex 2: the
	// corrupted vertex and its two neighbors fail, the other three hold.
	inst := Instance{G: graph.Path(6)}
	labels := IntLabels([]int{1, 2, 1, 2, 1, 2})
	rep := Coloring(2).Violations(inst, labels)
	if rep.Violated != 0 || rep.Worst != -1 || rep.SatisfiedFraction() != 1 {
		t.Fatalf("clean labeling reported %+v", rep)
	}
	labels[2] = 2
	rep = Coloring(2).Violations(inst, labels)
	if rep.N != 6 || rep.Violated != 3 {
		t.Fatalf("corrupted labeling: %d/%d violated, want 3/6", rep.Violated, rep.N)
	}
	if rep.Worst != 1 || rep.WorstErr == nil {
		t.Errorf("worst offender = %d (%v), want vertex 1 (first violator)", rep.Worst, rep.WorstErr)
	}
	if got, want := rep.SatisfiedFraction(), 0.5; got != want {
		t.Errorf("satisfied fraction = %v, want %v", got, want)
	}
	if rep.Satisfied() != 3 {
		t.Errorf("Satisfied() = %d, want 3", rep.Satisfied())
	}
}

func TestViolationsStructuralMismatch(t *testing.T) {
	rep := Coloring(3).Violations(ring5Instance(), IntLabels([]int{1, 2}))
	if rep.Structural == nil {
		t.Fatal("length mismatch not reported as structural")
	}
	if rep.Violated != rep.N || rep.SatisfiedFraction() != 0 {
		t.Errorf("structural failure must violate everything: %+v", rep)
	}
}

func TestViolationsAgreesWithValidate(t *testing.T) {
	ecg := graph.RandomRegularBipartite(8, 3, rng.New(17))
	inst := Instance{G: ecg.Graph, EdgeColors: ecg.Colors, NumEdgeColors: 3}
	labels := make([]any, ecg.N())
	for v := range labels {
		labels[v] = 1 + v%3
	}
	p := SinklessColoring(3)
	rep := p.Violations(inst, labels)
	if (p.Validate(inst, labels) == nil) != (rep.Violated == 0) {
		t.Errorf("Validate and Violations disagree: validate err=%v, violated=%d",
			p.Validate(inst, labels), rep.Violated)
	}
}
