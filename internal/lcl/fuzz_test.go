package lcl

import (
	"testing"

	"locality/internal/graph"
	"locality/internal/rng"
)

// FuzzLCLCheck throws arbitrary (including garbage-typed and wrong-length)
// labelings at the LCL judges and checks the graceful-degradation contract:
// Violations never panics, its Report tallies are internally consistent,
// and it agrees with the strict Validate on whether the labeling is a
// solution.
func FuzzLCLCheck(f *testing.F) {
	f.Add(uint64(1), 8, 3, 0, []byte{0, 1, 2, 3})
	f.Add(uint64(2), 1, 2, 1, []byte{})
	f.Add(uint64(3), 32, 4, 2, []byte{255, 0, 7})
	f.Add(uint64(4), 5, 2, 3, []byte{1, 1, 1, 1, 1, 9})
	f.Fuzz(func(t *testing.T, seed uint64, n, maxDeg, which int, raw []byte) {
		n = 1 + mod(n, 64)
		maxDeg = 2 + mod(maxDeg, 6)
		g := graph.RandomTree(n, maxDeg, rng.New(seed))
		inst := Instance{G: g}

		var p Problem
		var out []any
		// Labels come straight from the fuzz bytes; length is whatever the
		// byte slice dictates, deliberately including len != n.
		switch mod(which, 4) {
		case 0:
			p = Coloring(maxDeg + 1)
			for _, b := range raw {
				out = append(out, int(b))
			}
		case 1:
			p = MIS()
			for _, b := range raw {
				out = append(out, b%2 == 0)
			}
		case 2:
			p = MaximalMatching()
			for _, b := range raw {
				out = append(out, MatchLabel(int(b)-1))
			}
		default:
			p = SinklessOrientation()
			for i, b := range raw {
				o := OrientationLabel{Out: make([]bool, int(b)%(maxDeg+1))}
				for j := range o.Out {
					o.Out[j] = (i+j)%2 == 0
				}
				out = append(out, o)
			}
		}

		rep := p.Violations(inst, out)
		if rep.N != g.N() {
			t.Fatalf("%s: Report.N = %d, want %d", p.Name, rep.N, g.N())
		}
		if rep.Violated < 0 || rep.Violated > rep.N {
			t.Fatalf("%s: Violated = %d out of %d", p.Name, rep.Violated, rep.N)
		}
		if rep.Satisfied() != rep.N-rep.Violated {
			t.Fatalf("%s: Satisfied() = %d, want %d", p.Name, rep.Satisfied(), rep.N-rep.Violated)
		}
		if fr := rep.SatisfiedFraction(); fr < 0 || fr > 1 {
			t.Fatalf("%s: SatisfiedFraction() = %v", p.Name, fr)
		}
		// Worst points at the first vertex whose check failed; it stays -1
		// both for solutions and for structural failures (nothing checked).
		if rep.Structural != nil {
			if rep.Worst != -1 {
				t.Fatalf("%s: Worst = %d on a structural failure", p.Name, rep.Worst)
			}
		} else if (rep.Worst == -1) != (rep.Violated == 0) {
			t.Fatalf("%s: Worst = %d with Violated = %d", p.Name, rep.Worst, rep.Violated)
		}
		if rep.Structural != nil && len(out) == g.N() {
			t.Fatalf("%s: Structural = %v for a correctly-sized labeling", p.Name, rep.Structural)
		}

		err := p.Validate(inst, out)
		clean := rep.Violated == 0 && rep.Structural == nil
		if clean != (err == nil) {
			t.Fatalf("%s: Violations (violated=%d structural=%v) disagrees with Validate (%v)",
				p.Name, rep.Violated, rep.Structural, err)
		}
		if !clean && rep.Structural == nil && rep.WorstErr == nil {
			t.Fatalf("%s: violated labeling but WorstErr is nil", p.Name)
		}
	})
}

// mod maps x into [0, m) for any int, unlike the % operator on negatives.
func mod(x, m int) int {
	r := x % m
	if r < 0 {
		r += m
	}
	return r
}
