// HTTP client ops: submit, poll-to-terminal, and SSE stream consumption.
// All requests carry the tenant API key and the caller's context; latency
// measurement and pacing go through the leaves in leaves.go.
package load

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"locality/internal/jobs"
	"locality/internal/tenant"
)

// floodPause paces abusive clients between submits; pollPause paces
// terminal-state polling; pollBudget bounds how long one job may take.
const (
	floodPause = 2 * time.Millisecond
	pollPause  = 3 * time.Millisecond
	pollBudget = 30 * time.Second
)

type submitBody struct {
	Experiment string `json:"experiment"`
	Quick      bool   `json:"quick"`
	Seed       uint64 `json:"seed"`
}

// submitOutcome classifies one submit: admitted (id, deduped), shed
// (structured 429/503 — not an error; sheds are load-test data), or error.
type submitOutcome struct {
	id            string
	deduped       bool
	cached        bool
	shed          bool
	latencyMillis float64
}

type streamSummary struct {
	frames      int
	sawTerminal bool
}

type client struct {
	base string
	key  string
	// api serves bounded request/response calls; streams use a separate
	// un-timeouted client (an SSE stream is long-lived by design) bounded
	// by the request context instead.
	api     *http.Client
	streams *http.Client
}

func newClient(base, key string) *client {
	return &client{
		base:    strings.TrimRight(base, "/"),
		key:     key,
		api:     &http.Client{Timeout: pollBudget},
		streams: &http.Client{},
	}
}

// do sends a bounded API request; ctx (already attached to req by every
// caller) is what makes the wait cancellable.
func (c *client) do(ctx context.Context, req *http.Request) (*http.Response, error) {
	if c.key != "" {
		req.Header.Set(tenant.Header, c.key)
	}
	return c.api.Do(req.WithContext(ctx))
}

// submit POSTs one job and classifies the answer.
func (c *client) submit(ctx context.Context, body submitBody) (submitOutcome, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return submitOutcome{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs", bytes.NewReader(data))
	if err != nil {
		return submitOutcome{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.do(ctx, req)
	if err != nil {
		return submitOutcome{}, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusAccepted:
		var res jobs.SubmitResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			return submitOutcome{}, fmt.Errorf("decoding 202 body: %w", err)
		}
		return submitOutcome{id: res.ID, deduped: res.Deduped, cached: res.Cached}, nil
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		return submitOutcome{shed: true}, nil
	default:
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return submitOutcome{}, fmt.Errorf("submit: status %d: %s", resp.StatusCode, b)
	}
}

// submitAndWait submits and polls the job to a terminal state, measuring
// wall-clock submit→terminal latency in milliseconds.
func (c *client) submitAndWait(ctx context.Context, body submitBody) (submitOutcome, error) {
	start := nowNanos()
	out, err := c.submit(ctx, body)
	if err != nil || out.shed {
		return out, err
	}
	deadline := start + pollBudget.Nanoseconds()
	for nowNanos() < deadline && ctx.Err() == nil {
		j, err := c.getJob(ctx, out.id)
		if err != nil {
			return out, err
		}
		if j.State.Terminal() {
			if j.State != jobs.StateSucceeded {
				return out, fmt.Errorf("job %s ended %s: %s", out.id, j.State, j.Error)
			}
			out.latencyMillis = float64(nowNanos()-start) / 1e6
			return out, nil
		}
		sleep(ctx, pollPause)
	}
	if ctx.Err() != nil {
		return out, ctx.Err()
	}
	return out, fmt.Errorf("job %s not terminal within %s", out.id, pollBudget)
}

func (c *client) getJob(ctx context.Context, id string) (jobs.Job, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return jobs.Job{}, err
	}
	resp, err := c.do(ctx, req)
	if err != nil {
		return jobs.Job{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return jobs.Job{}, fmt.Errorf("get job %s: status %d", id, resp.StatusCode)
	}
	var j jobs.Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		return jobs.Job{}, err
	}
	return j, nil
}

// stream consumes GET /v1/jobs/{id}/events to EOF. A terminal state counts
// whether it arrives as a terminal event frame or as the opening snapshot
// of an already-finished job. onOpen, when non-nil, fires once after the
// first frame — the signal the chaos phase uses to time its SIGTERM. A
// transport error or unterminated frame reports as an error: streams must
// close cleanly even under drain.
func (c *client) stream(ctx context.Context, id string, onOpen func()) (streamSummary, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return streamSummary{}, err
	}
	if c.key != "" {
		req.Header.Set(tenant.Header, c.key)
	}
	resp, err := c.streams.Do(req)
	if err != nil {
		return streamSummary{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
		return streamSummary{}, fmt.Errorf("stream %s: status %d", id, resp.StatusCode)
	}

	var sum streamSummary
	sc := bufio.NewScanner(resp.Body)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			sum.frames++
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "terminal":
				sum.sawTerminal = true
			case "snapshot":
				var j jobs.Job
				if err := json.Unmarshal([]byte(data), &j); err == nil && j.State.Terminal() {
					sum.sawTerminal = true
				}
			}
			if sum.frames == 1 && onOpen != nil {
				onOpen()
			}
		}
	}
	if err := sc.Err(); err != nil {
		return sum, fmt.Errorf("stream %s severed after %d frames: %w", id, sum.frames, err)
	}
	return sum, nil
}
