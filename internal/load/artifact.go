// Artifact persistence and the p99 regression gate. One engine run writes
// one LOAD_<stamp>.json file; the lexically latest existing artifact in the
// same directory is the baseline the next run is compared against. Stamps
// sort lexically because they are fixed-width UTC timestamps, so "latest
// file" and "latest run" agree without parsing anything.
package load

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"locality/internal/artifact"
)

// Write persists res as <dir>/LOAD_<stamp>.json and returns the path.
// res.Stamp must be set (see StampNow).
func Write(dir string, res *Result) (string, error) {
	if res.Stamp == "" {
		return "", fmt.Errorf("load: artifact stamp unset")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return "", err
	}
	// Stamps have second granularity; two runs inside one second must not
	// silently overwrite each other (the earlier file may already be the
	// baseline a comparison just ran against). De-collide with a numeric
	// suffix that preserves lexical ordering within the second.
	path := filepath.Join(dir, "LOAD_"+res.Stamp+".json")
	for n := 2; ; n++ {
		if _, err := os.Stat(path); os.IsNotExist(err) {
			break
		}
		path = filepath.Join(dir, fmt.Sprintf("LOAD_%s_%d.json", res.Stamp, n))
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// Latest loads the lexically latest usable LOAD_*.json artifact in dir
// (zero-length debris is skipped — see internal/artifact). A missing
// directory or an empty one returns ("", nil, nil): no baseline is not an
// error, it is the first run.
func Latest(dir string) (string, *Result, error) {
	path, err := artifact.Latest(dir, "LOAD")
	if err != nil || path == "" {
		return "", nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		return "", nil, fmt.Errorf("load: parsing baseline %s: %w", path, err)
	}
	if res.Schema != Schema {
		return "", nil, fmt.Errorf("load: baseline %s has schema %q, want %q", path, res.Schema, Schema)
	}
	return path, &res, nil
}

// DefaultBaselineRatio is CompareBaseline's bound when none is given: the
// widest bucket spacing is 2.5×, so 3 tolerates exactly one bucket of
// cross-machine jitter and trips on a two-bucket (≥4×) regression.
const DefaultBaselineRatio = 3

// CompareBaseline gates res against a prior run: the well-behaved tenant's
// solo and contended p99 may regress by at most maxRatio (≤0 defaults to
// DefaultBaselineRatio). The comparison uses the bucket-quantized
// quantiles — runs whose latencies land in the same buckets compare as
// exactly equal, so only bucket-visible regressions trip across machines.
// A nil baseline passes.
func CompareBaseline(res, base *Result, maxRatio float64) error {
	if base == nil {
		return nil
	}
	if maxRatio <= 0 {
		maxRatio = DefaultBaselineRatio
	}
	check := func(name string, got, prior float64) error {
		if prior <= 0 {
			return nil
		}
		if got > prior*maxRatio {
			return fmt.Errorf("load: %s p99 regressed: %.1fms vs baseline %.1fms (max ratio %.2f)",
				name, got, prior, maxRatio)
		}
		return nil
	}
	if err := check("solo", res.GoodSoloP99Bucket, base.GoodSoloP99Bucket); err != nil {
		return err
	}
	return check("contended", res.GoodContendedP99Bucket, base.GoodContendedP99Bucket)
}
