package load

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"locality/internal/jobs"
	"locality/internal/tenant"
)

// stubDaemon is a canned localityd: idempotent submits keyed by body,
// instantly-terminal jobs, SSE streams that replay a snapshot plus a
// terminal frame. It lets the engine's phase logic, classification and
// invariants run deterministically without a real pool.
type stubDaemon struct {
	mu      sync.Mutex
	nextID  int
	byIdent map[string]string // body → job ID
	keys    map[string]bool   // API keys seen
	// shedKey, when set, answers every submit on that key with 429.
	shedKey string
}

func newStubDaemon() *stubDaemon {
	return &stubDaemon{byIdent: map[string]string{}, keys: map[string]bool{}}
}

func (d *stubDaemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var body submitBody
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		d.mu.Lock()
		key := r.Header.Get(tenant.Header)
		d.keys[key] = true
		if d.shedKey != "" && key == d.shedKey {
			d.mu.Unlock()
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"rate","reason":"rate_limited"}`)
			return
		}
		ident := fmt.Sprintf("%s/%d", body.Experiment, body.Seed)
		id, dup := d.byIdent[ident]
		if !dup {
			d.nextID++
			id = fmt.Sprintf("job-%d", d.nextID)
			d.byIdent[ident] = id
		}
		d.mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(jobs.SubmitResult{ID: id, Tenant: "stub", Deduped: dup})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		j := jobs.Job{ID: r.PathValue("id"), State: jobs.StateSucceeded}
		data, _ := json.Marshal(j)
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprintf(w, "event: snapshot\ndata: %s\n\n", data)
		fmt.Fprintf(w, "event: terminal\ndata: {\"seq\":1,\"terminal\":true}\n\n")
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(jobs.Job{ID: r.PathValue("id"), State: jobs.StateSucceeded})
	})
	return mux
}

func TestEngineAgainstStub(t *testing.T) {
	d := newStubDaemon()
	d.shedKey = "abuse-key"
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	res, err := Run(context.Background(), Options{
		BaseURL:          ts.URL,
		Seed:             3,
		GoodKey:          "good-key",
		AbuseKey:         "abuse-key",
		SoloJobs:         3,
		ContendedJobs:    3,
		AbuseClients:     2,
		DuplicateSubmits: 4,
		Streams:          2,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Passed() {
		t.Fatalf("stub run failed: fair=%v failures=%v", res.Fair, res.Failures)
	}
	if res.GoodSheds != 0 {
		t.Errorf("good sheds = %d", res.GoodSheds)
	}
	if res.AbuseSheds == 0 {
		t.Error("abuse sheds = 0, stub shed every abusive submit")
	}
	var dup *PhaseResult
	for i := range res.Phases {
		if res.Phases[i].Name == "duplicate" {
			dup = &res.Phases[i]
		}
	}
	if dup == nil || dup.Deduped != 3 {
		t.Errorf("duplicate phase = %+v, want 3 deduped of 4", dup)
	}
	if res.Schema != Schema {
		t.Errorf("schema %q", res.Schema)
	}
}

// TestEngineDeterministicWorkload: two runs with the same seed submit the
// identical spec set; a different seed diverges.
func TestEngineDeterministicWorkload(t *testing.T) {
	specs := func(seed uint64) map[string]bool {
		d := newStubDaemon()
		ts := httptest.NewServer(d.handler())
		defer ts.Close()
		if _, err := Run(context.Background(), Options{
			BaseURL: ts.URL, Seed: seed,
			GoodKey: "g", AbuseKey: "a",
			SoloJobs: 2, ContendedJobs: 2, AbuseClients: 1,
			DuplicateSubmits: 2, Streams: 1,
		}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		d.mu.Lock()
		defer d.mu.Unlock()
		out := map[string]bool{}
		for ident := range d.byIdent {
			if !strings.Contains(ident, "/") {
				t.Fatalf("malformed identity %q", ident)
			}
			out[ident] = true
		}
		return out
	}
	a, b := specs(11), specs(11)
	// The abusive stream's cut-off is timing-dependent, so compare the
	// timing-independent prefix: every good-tenant identity (solo,
	// contended, duplicate, stream tags) must match exactly.
	for ident := range a {
		if !b[ident] && !strings.HasPrefix(ident, "E8/") {
			t.Errorf("identity %s only in first run", ident)
		}
	}
	if len(a) == 0 {
		t.Fatal("no identities recorded")
	}
	c := specs(12)
	same := 0
	for ident := range a {
		if c[ident] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced the identical workload")
	}
}

func TestArtifactRoundTripAndBaseline(t *testing.T) {
	dir := t.TempDir()
	if _, base, err := Latest(dir); err != nil || base != nil {
		t.Fatalf("empty dir baseline = %v, %v", base, err)
	}

	old := &Result{Schema: Schema, Seed: 1, Stamp: "20260101T000000Z",
		GoodSoloP99Bucket: 25, GoodContendedP99Bucket: 50, Fair: true}
	if _, err := Write(dir, old); err != nil {
		t.Fatal(err)
	}
	newer := &Result{Schema: Schema, Seed: 1, Stamp: "20260202T000000Z",
		GoodSoloP99Bucket: 25, GoodContendedP99Bucket: 50, Fair: true}
	if _, err := Write(dir, newer); err != nil {
		t.Fatal(err)
	}

	path, base, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "LOAD_20260202T000000Z.json" {
		t.Errorf("latest = %s, want the lexically newest stamp", path)
	}
	if base.GoodContendedP99Bucket != 50 {
		t.Errorf("baseline p99 = %v", base.GoodContendedP99Bucket)
	}

	same := &Result{GoodSoloP99Bucket: 25, GoodContendedP99Bucket: 50}
	if err := CompareBaseline(same, base, 2); err != nil {
		t.Errorf("equal run tripped the gate: %v", err)
	}
	atLimit := &Result{GoodSoloP99Bucket: 50, GoodContendedP99Bucket: 100}
	if err := CompareBaseline(atLimit, base, 2); err != nil {
		t.Errorf("2× run must pass a ratio-2 gate: %v", err)
	}
	regressed := &Result{GoodSoloP99Bucket: 25, GoodContendedP99Bucket: 250}
	if err := CompareBaseline(regressed, base, 2); err == nil {
		t.Error("5× contended regression passed the gate")
	}
	if err := CompareBaseline(regressed, nil, 2); err != nil {
		t.Errorf("nil baseline must pass: %v", err)
	}
	if err := CompareBaseline(regressed, base, 0); err == nil {
		t.Error("ratio 0 must default, not disable the gate")
	}

	// Unstamped results refuse to persist; wrong-schema baselines refuse
	// to load.
	if _, err := Write(dir, &Result{Schema: Schema}); err == nil {
		t.Error("unstamped artifact written")
	}
	bad := &Result{Schema: "other/v9", Stamp: "20270101T000000Z"}
	if _, err := Write(dir, bad); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Latest(dir); err == nil {
		t.Error("wrong-schema baseline loaded")
	}
}

func TestFairnessRatioGuards(t *testing.T) {
	cases := []struct {
		solo, contended, want float64
	}{
		{25, 50, 2},
		{25, 25, 1},
		{0, 0, 1},
		{0, 25, math.MaxFloat64},
	}
	for _, c := range cases {
		if got := fairnessRatio(c.solo, c.contended); got != c.want {
			t.Errorf("fairnessRatio(%v, %v) = %v, want %v", c.solo, c.contended, got, c.want)
		}
	}
}
