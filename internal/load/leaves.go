// The package's sanctioned nondeterminism leaves, confined to this file:
// the wall clock (latency is a wall-clock observation by definition), the
// pacing sleeps, the artifact timestamp, and the one goroutine spawn site
// behind every concurrent phase. localvet's goroutinedisc allowance names
// this file; keep go statements out of the rest of the package.
package load

import (
	"context"
	"sync"
	"time"
)

// nowNanos is the engine's monotonic-ish clock for latency measurement.
func nowNanos() int64 { return time.Now().UnixNano() }

// sleep paces polls and abusive submit loops; cancelling the context wakes
// it early.
func sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// StampNow returns the artifact timestamp in the LOAD_* filename format,
// e.g. 20260808T151405Z. The engine never calls it — Result.Stamp is the
// caller's to set — so engine runs under test stay calendar-free.
func StampNow() string { return time.Now().UTC().Format("20060102T150405Z0700") }

// spawnClients runs fn(0..n-1, ctx) concurrently and joins all of them
// before returning — the package's only goroutine spawn site. The join is
// unconditional (goroutines are never abandoned); cancellation reaches the
// workers through the context each fn receives. Callers give each i a
// private result slot, so phases need no locks.
func spawnClients(ctx context.Context, n int, fn func(ctx context.Context, i int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(ctx, i)
		}(i)
	}
	wg.Wait()
}
