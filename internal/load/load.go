// Package load is the deterministic workload engine behind cmd/localload:
// a seeded, phase-structured client swarm that exercises a running
// localityd over plain HTTP and reports per-phase latency quantiles, shed
// counts and invariant violations.
//
// The engine is importable so the daemon's end-to-end tests can drive the
// exact workload the release gate runs, in-process and under the race
// detector. Determinism here means the *workload* is a pure function of
// Options.Seed — every job spec, seed and duplicate group is derived with
// internal/rng — while measured latencies are, necessarily, wall-clock
// observations. The abusive swarm's cut-off point is timing-dependent (it
// floods for as long as the well-behaved workload runs), but the sequence
// of specs it submits is the same deterministic stream on every run.
//
// Phases, in order:
//
//	solo       the well-behaved tenant runs its workload alone; its p99
//	           is the fairness baseline.
//	contended  the same workload with an abusive tenant flooding submits;
//	           fairness holds iff the well-behaved p99 stays within
//	           MaxFairnessRatio of solo AND no well-behaved request sheds.
//	duplicate  concurrent byte-identical submits; exactly one job may be
//	           fresh, the rest must dedup to the same ID.
//	stream     SSE streams over running jobs; every stream must observe a
//	           terminal state and close cleanly.
//	cache      one cold compute, then repeated byte-identical submits; every
//	           warm submit must be answered without fresh compute (idempotent
//	           dedup or result-store hit) and the warm p99 must sit at least
//	           MinCacheSpeedup below the solo compute p99.
//	chaos      (only with a Chaos hook, i.e. against a spawned daemon)
//	           SIGTERM lands mid-stream; the open stream must still get a
//	           terminal frame and a clean close.
package load

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"locality/internal/obs"
	"locality/internal/rng"
)

// Schema identifies the artifact format written by Write.
const Schema = "locality-load/v1"

// Per-phase seed-derivation tags, mixed with Options.Seed so phases draw
// from disjoint deterministic streams. Tags are spaced 2^40 apart: phase
// offsets (job index, or abuse client<<32 + submission) stay far below the
// spacing, so no two phases can ever derive the same seed and accidentally
// dedup against each other.
const (
	soloTag   uint64 = 1 << 40
	contTag   uint64 = 2 << 40
	abuseTag  uint64 = 3 << 40
	dupTag    uint64 = 4 << 40
	streamTag uint64 = 5 << 40
	chaosTag  uint64 = 6 << 40
	cacheTag  uint64 = 7 << 40
)

// latencyBuckets are the submit→terminal histogram bounds in milliseconds.
// Quantiles are bucket-quantized (upper bounds), which deliberately coarsens
// the fairness and regression gates: runs whose latencies land in the same
// buckets compare as exactly equal.
var latencyBuckets = []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}

// overflowMillis stands in for a +Inf quantile in JSON artifacts (the
// encoder rejects infinities). Any latency past the last bucket reports
// this value and fails every gate it touches.
const overflowMillis = 60000

// cacheGateFloorMillis is the minimum solo compute p99 for the cache
// phase's speedup gate to be meaningful: below it, submit→terminal time is
// HTTP and scheduler overhead rather than compute, and a warm-hit speedup
// ratio would gate on noise.
const cacheGateFloorMillis = 10

// Options configures one engine run. Zero fields take the defaults noted.
type Options struct {
	// BaseURL roots every request, e.g. "http://127.0.0.1:8177".
	BaseURL string
	// Seed derives the whole workload (job seeds, duplicate groups).
	Seed uint64
	// GoodKey and AbuseKey are the API keys for the well-behaved and
	// abusive tenants. They must name differently-quota'd tenants in the
	// daemon's tenants file for the contended phase to mean anything.
	GoodKey  string
	AbuseKey string
	// Experiment is the sweep the measured (well-behaved) workload
	// submits, always in quick mode (default "E8"). AbuseExperiment is
	// what the flood submits (default: Experiment). Production-gate runs
	// give the measured tenant a longer sweep and the flood a short one:
	// the fairness ratio then reflects admission-layer protection rather
	// than the raw CPU an occasionally-admitted abusive job steals on a
	// small machine.
	Experiment      string
	AbuseExperiment string
	// SoloJobs and ContendedJobs size the well-behaved workload per phase
	// (default 6 each). AbuseClients (default 4) flood concurrently during
	// the contended phase until the well-behaved workload finishes.
	SoloJobs      int
	ContendedJobs int
	AbuseClients  int
	// DuplicateSubmits is the size of the concurrent identical-submit
	// group (default 8). Streams is the number of concurrent SSE streams
	// (default 3).
	DuplicateSubmits int
	Streams          int
	// CacheWarmHits is how many byte-identical warm submits the cache
	// phase issues after its one cold compute (default 8).
	// MinCacheSpeedup is the factor by which the warm p99 must undercut
	// the solo compute p99 (default 10; ≤0 keeps the default). The gate
	// only fires when solo produced a usable p99.
	CacheWarmHits   int
	MinCacheSpeedup float64
	// MaxFairnessRatio bounds contended-p99 / solo-p99 for the fairness
	// verdict (default 2).
	MaxFairnessRatio float64
	// FloodPause paces each abusive client between submits (default
	// 2ms). In-process tests on small machines raise it: the point of the
	// contended phase is admission-layer pressure, not starving the
	// shared CPU the measured workload runs on.
	FloodPause time.Duration
	// Chaos, when non-nil, delivers SIGTERM to the daemon under test. The
	// chaos phase only runs with a hook — in-process test servers have no
	// signal to send.
	Chaos func() error
	// Logf receives progress lines (default: discarded).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Experiment == "" {
		o.Experiment = "E8"
	}
	if o.AbuseExperiment == "" {
		o.AbuseExperiment = o.Experiment
	}
	if o.SoloJobs == 0 {
		o.SoloJobs = 6
	}
	if o.ContendedJobs == 0 {
		o.ContendedJobs = 6
	}
	if o.AbuseClients == 0 {
		o.AbuseClients = 4
	}
	if o.DuplicateSubmits == 0 {
		o.DuplicateSubmits = 8
	}
	if o.Streams == 0 {
		o.Streams = 3
	}
	if o.CacheWarmHits == 0 {
		o.CacheWarmHits = 8
	}
	if o.MinCacheSpeedup <= 0 {
		o.MinCacheSpeedup = 10
	}
	if o.MaxFairnessRatio == 0 {
		o.MaxFairnessRatio = 2
	}
	if o.FloodPause == 0 {
		o.FloodPause = floodPause
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// PhaseResult is one phase's aggregate outcome.
type PhaseResult struct {
	Name string `json:"name"`
	// Ops counts requests issued; OK the admitted (2xx) ones; Sheds the
	// structured 429/503 rejections; Errors everything else (transport
	// failures, unexpected statuses, protocol violations).
	Ops    int `json:"ops"`
	OK     int `json:"ok"`
	Sheds  int `json:"sheds"`
	Errors int `json:"errors"`
	// Deduped counts idempotent submit hits (duplicate and cache phases).
	Deduped int `json:"deduped,omitempty"`
	// Cached counts submits answered from the persistent result store
	// (cache phase).
	Cached int `json:"cached,omitempty"`
	// Terminals counts streams that observed a terminal state (stream and
	// chaos phases).
	Terminals int `json:"terminals,omitempty"`
	// P50Millis/P99Millis are exact submit→terminal latency quantiles
	// (sorted-sample order statistics) for the phase's well-behaved
	// traffic; 0 when the phase measures none.
	P50Millis float64 `json:"p50_ms,omitempty"`
	P99Millis float64 `json:"p99_ms,omitempty"`
}

// Result is one engine run's full outcome — the artifact payload.
type Result struct {
	Schema string `json:"schema"`
	Seed   uint64 `json:"seed"`
	// Stamp is the artifact timestamp (UTC, 20060102T150405Z). The CLI
	// stamps it after the run; the engine itself never reads a calendar.
	Stamp  string        `json:"stamp,omitempty"`
	Phases []PhaseResult `json:"phases"`
	// The fairness verdict: contended-p99 / solo-p99 for the well-behaved
	// tenant, the bound it was held to, the shed counts on each side, and
	// the resulting boolean. The p99s here are exact order statistics —
	// the two phases run in the same process minutes apart, so comparing
	// raw values is meaningful and avoids false trips at bucket edges.
	GoodSoloP99      float64 `json:"good_solo_p99_ms"`
	GoodContendedP99 float64 `json:"good_contended_p99_ms"`
	// The *Bucket fields are the same quantiles quantized to the latency
	// histogram's upper bounds. Cross-run comparisons (the baseline
	// regression gate) use these: runs whose latencies land in the same
	// buckets compare as exactly equal, absorbing machine-to-machine
	// jitter that exact values would surface as noise.
	GoodSoloP99Bucket      float64 `json:"good_solo_p99_bucket_ms"`
	GoodContendedP99Bucket float64 `json:"good_contended_p99_bucket_ms"`
	FairnessRatio          float64 `json:"fairness_ratio"`
	MaxFairnessRatio       float64 `json:"max_fairness_ratio"`
	GoodSheds              int     `json:"good_sheds"`
	AbuseSheds             int     `json:"abuse_sheds"`
	Fair                   bool    `json:"fair"`
	// Failures lists every violated invariant in plain language. Empty
	// plus Fair means the run passed.
	Failures []string `json:"failures,omitempty"`
}

// Passed reports whether the run holds every gate: fairness plus all
// phase invariants.
func (r *Result) Passed() bool { return r.Fair && len(r.Failures) == 0 }

func (r *Result) fail(format string, args ...any) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

// runner threads options, clients and histograms through the phases.
type runner struct {
	o     Options
	good  *client
	abuse *client
	res   *Result
	reg   *obs.Registry
}

// Run executes the phased workload against opts.BaseURL and returns the
// aggregate result. The error return is reserved for setup-level failures;
// workload-level problems (sheds, violated invariants, unfair latency) are
// reported in the Result so the caller can both gate on and persist them.
func Run(ctx context.Context, opts Options) (*Result, error) {
	o := opts.withDefaults()
	if o.BaseURL == "" {
		return nil, fmt.Errorf("load: BaseURL required")
	}
	r := &runner{
		o:     o,
		good:  newClient(o.BaseURL, o.GoodKey),
		abuse: newClient(o.BaseURL, o.AbuseKey),
		res:   &Result{Schema: Schema, Seed: o.Seed, MaxFairnessRatio: o.MaxFairnessRatio},
		reg:   obs.NewRegistry(),
	}

	solo := r.runWellBehaved(ctx, "solo", soloTag, o.SoloJobs, nil)
	contended := r.runContended(ctx)
	r.runDuplicate(ctx)
	r.runStream(ctx)
	r.runCache(ctx, solo)
	if o.Chaos != nil {
		r.runChaos(ctx)
	}

	r.res.GoodSoloP99 = solo.P99Millis
	r.res.GoodContendedP99 = contended.P99Millis
	r.res.GoodSoloP99Bucket = quantileMillis(r.hist("solo"), 0.99)
	r.res.GoodContendedP99Bucket = quantileMillis(r.hist("contended"), 0.99)
	r.res.FairnessRatio = fairnessRatio(solo.P99Millis, contended.P99Millis)
	r.res.Fair = r.res.FairnessRatio <= o.MaxFairnessRatio && r.res.GoodSheds == 0
	if !r.res.Fair {
		r.res.fail("fairness: contended p99 %.1fms vs solo %.1fms (ratio %.2f > %.2f) with %d well-behaved sheds",
			contended.P99Millis, solo.P99Millis, r.res.FairnessRatio, o.MaxFairnessRatio, r.res.GoodSheds)
	}
	return r.res, ctx.Err()
}

// fairnessRatio guards the degenerate baselines: an empty solo histogram
// (p99 0) cannot anchor a ratio, and an overflow on either side is an
// automatic fail.
func fairnessRatio(solo, contended float64) float64 {
	if solo <= 0 {
		if contended <= 0 {
			return 1
		}
		return math.MaxFloat64
	}
	return contended / solo
}

// quantileMillis projects a histogram quantile into the artifact's finite
// domain.
func quantileMillis(h *obs.Histogram, q float64) float64 {
	v := h.Quantile(q)
	if math.IsInf(v, 1) {
		return overflowMillis
	}
	return v
}

// exactQuantile is the order statistic at q over the raw samples: the
// ceil(q·n)-th smallest. Empty input yields 0.
func exactQuantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// hist returns the named phase's latency histogram (created on first use,
// so lookups after a phase ran see its observations).
func (r *runner) hist(phase string) *obs.Histogram {
	return r.reg.Histogram("locality_load_latency_ms", "submit→terminal latency", latencyBuckets, "phase", phase)
}

// runWellBehaved runs n sequential submit→terminal jobs as the good tenant
// and records their latencies under the named phase. When stop is non-nil
// it is closed after the last job, signalling concurrent abusers to quit.
func (r *runner) runWellBehaved(ctx context.Context, phase string, tag uint64, n int, stop chan<- struct{}) PhaseResult {
	if stop != nil {
		defer close(stop)
	}
	ph := PhaseResult{Name: phase}
	h := r.hist(phase)
	var samples []float64
	for i := 0; i < n && ctx.Err() == nil; i++ {
		ph.Ops++
		seed := rng.Mix64(r.o.Seed, tag+uint64(i))
		out, err := r.good.submitAndWait(ctx, r.body(seed))
		switch {
		case err != nil:
			ph.Errors++
			r.res.fail("%s: job %d: %v", phase, i, err)
		case out.shed:
			ph.Sheds++
			r.res.GoodSheds++
		default:
			ph.OK++
			h.Observe(out.latencyMillis)
			samples = append(samples, out.latencyMillis)
		}
	}
	ph.P50Millis = exactQuantile(samples, 0.50)
	ph.P99Millis = exactQuantile(samples, 0.99)
	r.res.Phases = append(r.res.Phases, ph)
	r.o.Logf("phase %s: %d ops, %d sheds, %d errors, p99 %.1fms", phase, ph.Ops, ph.Sheds, ph.Errors, ph.P99Millis)
	return ph
}

// runContended reruns the well-behaved workload while AbuseClients flood
// submissions on the abusive key. Abusers draw specs from a deterministic
// per-client stream and stop when the well-behaved workload completes, so
// contention spans the entire measurement window. Per-client tallies land
// in pre-sized slots — no shared state, no locks.
func (r *runner) runContended(ctx context.Context) PhaseResult {
	stop := make(chan struct{})
	var good PhaseResult
	abusers := make([]PhaseResult, r.o.AbuseClients)
	spawnClients(ctx, r.o.AbuseClients+1, func(ctx context.Context, i int) {
		if i == r.o.AbuseClients {
			good = r.runWellBehaved(ctx, "contended", contTag, r.o.ContendedJobs, stop)
			return
		}
		abusers[i] = r.flood(ctx, i, stop)
	})
	flood := PhaseResult{Name: "abuse"}
	for _, a := range abusers {
		flood.Ops += a.Ops
		flood.OK += a.OK
		flood.Sheds += a.Sheds
		flood.Errors += a.Errors
	}
	r.res.AbuseSheds = flood.Sheds
	r.res.Phases = append(r.res.Phases, flood)
	r.o.Logf("phase abuse: %d ops, %d admitted, %d sheds", flood.Ops, flood.OK, flood.Sheds)
	return good
}

// flood is one abusive client: submit as fast as the server answers, absorb
// sheds without honouring Retry-After, stop when told. The floodPause
// between submits keeps the loop from becoming a CPU-bound spin in
// race-instrumented tests without meaningfully easing the pressure.
func (r *runner) flood(ctx context.Context, id int, stop <-chan struct{}) PhaseResult {
	ph := PhaseResult{Name: fmt.Sprintf("abuse-%d", id)}
	for j := 0; ; j++ {
		select {
		case <-stop:
			return ph
		case <-ctx.Done():
			return ph
		default:
		}
		ph.Ops++
		seed := rng.Mix64(r.o.Seed, abuseTag+uint64(id)<<32+uint64(j))
		out, err := r.abuse.submit(ctx, submitBody{Experiment: r.o.AbuseExperiment, Quick: true, Seed: seed})
		switch {
		case err != nil:
			ph.Errors++
		case out.shed:
			ph.Sheds++
		default:
			ph.OK++
		}
		sleep(ctx, r.o.FloodPause)
	}
}

// runDuplicate issues DuplicateSubmits concurrent byte-identical submits
// and checks the idempotency contract: one ID, at most one fresh admission.
func (r *runner) runDuplicate(ctx context.Context) {
	ph := PhaseResult{Name: "duplicate"}
	body := r.body(rng.Mix64(r.o.Seed, dupTag))
	outs := make([]submitOutcome, r.o.DuplicateSubmits)
	errs := make([]error, r.o.DuplicateSubmits)
	spawnClients(ctx, r.o.DuplicateSubmits, func(ctx context.Context, i int) {
		outs[i], errs[i] = r.good.submit(ctx, body)
	})
	ids := map[string]bool{}
	fresh := 0
	for i := range outs {
		ph.Ops++
		switch {
		case errs[i] != nil:
			ph.Errors++
			r.res.fail("duplicate: submit %d: %v", i, errs[i])
		case outs[i].shed:
			ph.Sheds++
			r.res.GoodSheds++
		case outs[i].deduped:
			ph.OK++
			ph.Deduped++
			ids[outs[i].id] = true
		default:
			ph.OK++
			fresh++
			ids[outs[i].id] = true
		}
	}
	if len(ids) > 1 {
		r.res.fail("duplicate: %d distinct job IDs for one identity", len(ids))
	}
	if fresh > 1 {
		r.res.fail("duplicate: %d fresh admissions for one identity, want ≤1", fresh)
	}
	r.res.Phases = append(r.res.Phases, ph)
	r.o.Logf("phase duplicate: %d ops, %d deduped, %d distinct IDs", ph.Ops, ph.Deduped, len(ids))
}

// runStream submits Streams jobs and reads one SSE stream per job to
// completion; every stream must observe a terminal state and close cleanly.
func (r *runner) runStream(ctx context.Context) {
	ph := PhaseResult{Name: "stream"}
	n := r.o.Streams
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		out, err := r.good.submit(ctx, r.body(rng.Mix64(r.o.Seed, streamTag+uint64(i))))
		ph.Ops++
		if err != nil || out.shed {
			ph.Errors++
			r.res.fail("stream: submit %d failed (err %v, shed %v)", i, err, out.shed)
			continue
		}
		ids[i] = out.id
	}
	sums := make([]streamSummary, n)
	errs := make([]error, n)
	spawnClients(ctx, n, func(ctx context.Context, i int) {
		if ids[i] == "" {
			return
		}
		sums[i], errs[i] = r.good.stream(ctx, ids[i], nil)
	})
	for i := range sums {
		if ids[i] == "" {
			continue
		}
		switch {
		case errs[i] != nil:
			ph.Errors++
			r.res.fail("stream %d: %v", i, errs[i])
		case !sums[i].sawTerminal:
			ph.Errors++
			r.res.fail("stream %d: closed after %d frames without a terminal state", i, sums[i].frames)
		default:
			ph.OK++
			ph.Terminals++
		}
	}
	r.res.Phases = append(r.res.Phases, ph)
	r.o.Logf("phase stream: %d streams, %d terminals, %d errors", n, ph.Terminals, ph.Errors)
}

// runCache submits one cold compute and then CacheWarmHits byte-identical
// warm submits. Every warm submit must be answered without re-entering the
// worker pool — either the idempotent dedup map (same process lifetime) or
// the persistent result store (across restarts) — and the warm p99 must sit
// at least MinCacheSpeedup below the solo compute p99. The two answer tiers
// are deliberately both accepted: which one fires depends on daemon
// configuration, but recomputing is a violation under either.
func (r *runner) runCache(ctx context.Context, solo PhaseResult) {
	ph := PhaseResult{Name: "cache"}
	body := r.body(rng.Mix64(r.o.Seed, cacheTag))
	cold, err := r.good.submitAndWait(ctx, body)
	ph.Ops++
	switch {
	case err != nil:
		ph.Errors++
		r.res.fail("cache: cold submit: %v", err)
		r.res.Phases = append(r.res.Phases, ph)
		return
	case cold.shed:
		ph.Sheds++
		r.res.GoodSheds++
		r.res.fail("cache: cold submit shed; cannot seed the cache")
		r.res.Phases = append(r.res.Phases, ph)
		return
	}
	ph.OK++

	var warm []float64
	for i := 0; i < r.o.CacheWarmHits && ctx.Err() == nil; i++ {
		ph.Ops++
		out, err := r.good.submitAndWait(ctx, body)
		switch {
		case err != nil:
			ph.Errors++
			r.res.fail("cache: warm submit %d: %v", i, err)
			continue
		case out.shed:
			ph.Sheds++
			r.res.GoodSheds++
			continue
		}
		ph.OK++
		warm = append(warm, out.latencyMillis)
		switch {
		case out.cached:
			ph.Cached++
		case out.deduped:
			ph.Deduped++
		default:
			r.res.fail("cache: warm submit %d recomputed (job %s, neither deduped nor cached)", i, out.id)
		}
	}
	ph.P50Millis = exactQuantile(warm, 0.50)
	ph.P99Millis = exactQuantile(warm, 0.99)
	switch {
	case len(warm) == 0 || solo.P99Millis < cacheGateFloorMillis:
		// A solo p99 this small is HTTP/scheduling overhead, not compute —
		// the speedup ratio would gate on noise (same reasoning as the
		// bench gate's minimum-ns floor).
		r.o.Logf("phase cache: speedup gate skipped (solo p99 %.2fms below %.0fms floor)",
			solo.P99Millis, float64(cacheGateFloorMillis))
	case ph.P99Millis*r.o.MinCacheSpeedup > solo.P99Millis:
		r.res.fail("cache: warm p99 %.2fms not %.0f× below solo compute p99 %.2fms",
			ph.P99Millis, r.o.MinCacheSpeedup, solo.P99Millis)
	}
	r.res.Phases = append(r.res.Phases, ph)
	r.o.Logf("phase cache: %d ops, %d deduped, %d cached, warm p99 %.2fms vs solo %.2fms",
		ph.Ops, ph.Deduped, ph.Cached, ph.P99Millis, solo.P99Millis)
}

// runChaos opens a stream over a fresh job, delivers SIGTERM once the
// stream is live, and requires the drain to hand the stream a terminal
// state and a clean close — the drain-race guarantee, end to end.
func (r *runner) runChaos(ctx context.Context) {
	ph := PhaseResult{Name: "chaos"}
	out, err := r.good.submit(ctx, r.body(rng.Mix64(r.o.Seed, chaosTag)))
	ph.Ops++
	if err != nil || out.shed {
		r.res.fail("chaos: submit failed (err %v, shed %v)", err, out.shed)
		ph.Errors++
		r.res.Phases = append(r.res.Phases, ph)
		return
	}
	open := make(chan struct{})
	var sum streamSummary
	var streamErr, chaosErr error
	spawnClients(ctx, 2, func(ctx context.Context, i int) {
		if i == 0 {
			sum, streamErr = r.good.stream(ctx, out.id, func() { close(open) })
			return
		}
		select {
		case <-open:
		case <-ctx.Done():
			return
		}
		chaosErr = r.o.Chaos()
	})
	switch {
	case chaosErr != nil:
		ph.Errors++
		r.res.fail("chaos: signal delivery: %v", chaosErr)
	case streamErr != nil:
		ph.Errors++
		r.res.fail("chaos: stream severed: %v", streamErr)
	case !sum.sawTerminal:
		ph.Errors++
		r.res.fail("chaos: stream closed after %d frames without a terminal state", sum.frames)
	default:
		ph.OK++
		ph.Terminals++
	}
	r.res.Phases = append(r.res.Phases, ph)
	r.o.Logf("phase chaos: terminal=%v frames=%d err=%v", sum.sawTerminal, sum.frames, streamErr)
}

func (r *runner) body(seed uint64) submitBody {
	return submitBody{Experiment: r.o.Experiment, Quick: true, Seed: seed}
}
