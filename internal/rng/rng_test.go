package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams from the same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams from different seeds collided %d/100 times", same)
	}
}

func TestNodeStreamsReproducible(t *testing.T) {
	a := NewNode(7, 123)
	b := NewNode(7, 123)
	c := NewNode(7, 124)
	if a.Uint64() != b.Uint64() {
		t.Error("same (seed,node) produced different streams")
	}
	if a.Uint64() == c.Uint64() {
		t.Error("different nodes produced identical second outputs (suspicious)")
	}
}

func TestSplitReproducible(t *testing.T) {
	// Splitting equal-state sources with equal indices must agree.
	a, b := New(99), New(99)
	ca, cb := a.Split(5), b.Split(5)
	for i := 0; i < 100; i++ {
		if ca.Uint64() != cb.Uint64() {
			t.Fatalf("split children diverged at step %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared-ish sanity: 10 buckets, 100k draws; each bucket within
	// 5% of expectation (generous: sigma ~ 0.3%).
	r := New(12345)
	const buckets, draws = 10, 100000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(draws) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("bucket %d: %d draws, want about %.0f", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(8)
	var sum float64
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want about 0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(4)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
	// p = 0.3: frequency within 3 sigma.
	hits := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / draws
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) frequency = %v", p)
	}
}

func TestBits(t *testing.T) {
	r := New(17)
	tests := []struct{ k, wantLen int }{
		{0, 0}, {1, 1}, {7, 1}, {8, 1}, {9, 2}, {64, 8}, {65, 9}, {1000, 125},
	}
	for _, tt := range tests {
		b := r.Bits(tt.k)
		if len(b) != tt.wantLen {
			t.Errorf("Bits(%d) length = %d, want %d", tt.k, len(b), tt.wantLen)
		}
		if rem := tt.k % 8; rem != 0 && len(b) > 0 {
			if b[len(b)-1]>>rem != 0 {
				t.Errorf("Bits(%d): unused high bits set", tt.k)
			}
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		n := int(rawN%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPermUniformish(t *testing.T) {
	// Position of element 0 in Perm(4) should be near-uniform.
	r := New(2024)
	counts := make([]int, 4)
	const draws = 40000
	for i := 0; i < draws; i++ {
		p := r.Perm(4)
		for pos, v := range p {
			if v == 0 {
				counts[pos]++
				break
			}
		}
	}
	want := float64(draws) / 4
	for pos, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("element 0 at position %d: %d, want about %.0f", pos, c, want)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}
