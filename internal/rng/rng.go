// Package rng implements a deterministic, splittable random number generator.
//
// The RandLOCAL model gives every vertex an unbounded private stream of truly
// random bits, independent across vertices. For a reproducible simulator we
// need the moral equivalent: per-node streams that are (a) statistically
// independent for simulation purposes, (b) derived deterministically from a
// single run seed, and (c) cheap to create — one per vertex per run, possibly
// millions.
//
// The construction is SplitMix64 for stream derivation (its output function
// is a strong 64-bit mixer, so node streams seeded with mix(seed, nodeIndex)
// are decorrelated) feeding xoshiro256** for bulk generation. Both are
// implemented from scratch; only the standard library is used.
package rng

import "math/bits"

// splitmix64 advances a SplitMix64 state and returns the next output.
// Reference: Sebastiano Vigna, "Further scramblings of Marsaglia's
// xorshift generators" (public-domain algorithm).
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 hashes two 64-bit values into one with SplitMix64 finalization.
// It is the stream-derivation function: independent-looking seeds for
// (runSeed, nodeIndex) pairs.
func Mix64(a, b uint64) uint64 {
	s := a ^ 0x9e3779b97f4a7c15
	_ = splitmix64(&s)
	s ^= b
	return splitmix64(&s)
}

// Source is a deterministic pseudo-random stream (xoshiro256**).
// The zero value is NOT usable; construct with New or Split.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via SplitMix64 state expansion,
// as recommended by the xoshiro authors.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		src.s[i] = splitmix64(&sm)
	}
	// xoshiro256** requires a nonzero state; SplitMix64 outputs four zeros
	// with probability 2^-256, but be defensive.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

// Split derives an independent child stream identified by index.
// Splitting the same source with the same index always yields the same
// child, so per-node streams are reproducible given the run seed.
func (r *Source) Split(index uint64) *Source {
	return New(Mix64(r.Uint64(), index))
}

// NewNode is the conventional way the simulator derives the private stream
// of node v for a run with the given seed.
func NewNode(seed uint64, v int) *Source {
	return New(Mix64(seed, uint64(v)))
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Source) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive bound")
	}
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := bits.Mul64(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return int(hi)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a uniform random boolean.
func (r *Source) Bool() bool {
	return r.Uint64()&1 == 1
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Bits returns k pseudo-random bits packed little-endian into a byte slice
// of length ceil(k/8); unused high bits of the last byte are zero.
// This mirrors the paper's "string of r(n,Δ) random bits".
func (r *Source) Bits(k int) []byte {
	if k < 0 {
		panic("rng: Bits with negative count")
	}
	out := make([]byte, (k+7)/8)
	for i := 0; i < len(out); i += 8 {
		v := r.Uint64()
		for j := 0; j < 8 && i+j < len(out); j++ {
			out[i+j] = byte(v >> (8 * j))
		}
	}
	if rem := k % 8; rem != 0 {
		out[len(out)-1] &= byte(1<<rem) - 1
	}
	return out
}

// Perm returns a uniform random permutation of [0, n) (Fisher–Yates).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher–Yates shuffle of n elements using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
