package fault_test

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"locality/internal/fault"
	"locality/internal/graph"
	"locality/internal/mis"
	"locality/internal/rng"
	"locality/internal/sim"
)

// clampProb folds an arbitrary fuzzed float into a valid probability.
func clampProb(p float64) float64 {
	if math.IsNaN(p) || math.IsInf(p, 0) {
		return 0
	}
	return math.Mod(math.Abs(p), 1)
}

// FuzzFaultPlan fuzzes the determinism contract of the fault layer: for any
// plan parameters and any run seed, (a) the crash schedule is a pure
// function of the plan, and (b) the sequential and concurrent engines
// produce identical results under the injected faults — the engine
// equivalence guarantee does not have a faulty-run exception. Found
// divergences would mean scheduling nondeterminism leaking into the fault
// schedule, exactly the class of bug the seeded Mix64 salting exists to
// prevent.
func FuzzFaultPlan(f *testing.F) {
	f.Add(uint64(1), uint64(2), 0.1, 0.05, 0.05, uint8(20), uint8(4), uint8(3), uint8(1))
	f.Add(uint64(7), uint64(0), 0.0, 0.0, 0.0, uint8(2), uint8(2), uint8(0), uint8(0))
	f.Add(uint64(0xdead), uint64(0xbeef), 0.9, 0.5, 0.5, uint8(60), uint8(6), uint8(1), uint8(2))
	f.Add(uint64(42), uint64(42), 0.25, 1.0, 0.0, uint8(33), uint8(3), uint8(5), uint8(3))
	f.Fuzz(func(t *testing.T, planSeed, runSeed uint64,
		crashFrac, dropProb, dupProb float64, nRaw, degRaw, crashRound, fromRound uint8) {
		n := 2 + int(nRaw)%48
		deg := 2 + int(degRaw)%5
		g := graph.RandomTree(n, deg, rng.New(planSeed^rng.Mix64(runSeed, 1)))
		plan := fault.Plan{
			Seed:       planSeed,
			CrashFrac:  clampProb(crashFrac),
			CrashRound: int(crashRound) % 6,
			DropProb:   clampProb(dropProb),
			DupProb:    clampProb(dupProb),
			FromRound:  int(fromRound) % 4,
		}

		// (a) The crash schedule is deterministic: a value copy of the plan
		// selects the same victims, call after call.
		clone := plan
		for v := 0; v < n; v++ {
			if plan.Crashed(v) != plan.Crashed(v) || plan.Crashed(v) != clone.Crashed(v) {
				t.Fatalf("Crashed(%d) is not a pure function of the plan", v)
			}
		}

		// (b) Same plan + same run seed ⇒ same result, within an engine
		// (repeatability) and across engines (equivalence).
		run := func(engine sim.Engine) (*sim.Result, error) {
			cfg := sim.Config{
				Randomized: true,
				Seed:       runSeed,
				MaxRounds:  1 << 11,
				Engine:     engine,
			}
			return sim.Run(g, cfg, plan.Wrap(g, mis.NewLubyFactory(mis.LubyOptions{})))
		}
		seq1, err1 := run(sim.EngineSequential)
		seq2, err2 := run(sim.EngineSequential)
		conc, err3 := run(sim.EngineConcurrent)

		if (err1 == nil) != (err2 == nil) || (err1 == nil) != (err3 == nil) {
			t.Fatalf("error disagreement: seq=%v, seq-again=%v, conc=%v", err1, err2, err3)
		}
		if err1 != nil {
			// Failures must classify identically (a crashed quorum can
			// starve the round budget; both engines must say so the same
			// way).
			if errors.Is(err1, sim.ErrMaxRounds) != errors.Is(err3, sim.ErrMaxRounds) {
				t.Fatalf("failure classification diverges: seq=%v, conc=%v", err1, err3)
			}
			return
		}
		if !reflect.DeepEqual(seq1, seq2) {
			t.Fatalf("sequential engine not repeatable under plan %+v", plan)
		}
		if !reflect.DeepEqual(seq1, conc) {
			t.Fatalf("engines diverge under plan %+v:\nseq:  %+v\nconc: %+v", plan, seq1, conc)
		}
	})
}
