// Package fault is the off-model fault-injection layer: a deterministic,
// seeded Plan that wraps any sim.Factory (over its sim.Topology) and
// perturbs a run with the classic distributed failure modes — crash-stop
// nodes, per-edge message drops, and duplication/stale redelivery.
//
// The LOCAL model of the paper has none of these faults: rounds are
// synchronous and every message is delivered exactly once. Injection exists
// purely as instrumentation, to measure how the paper's Monte-Carlo
// algorithms (Theorems 10–11, Luby MIS, sinkless orientation) degrade when
// run off-model — the sensitivity-analysis companion to the in-model
// failure probabilities the paper trades off in Theorem 5.
//
// Every injection decision is a pure function of (Plan, node, port, round)
// via the library's SplitMix64 mixer, so a faulty run is exactly as
// reproducible as a fault-free one: the same Plan and run seed produce
// byte-identical sim.Results on both engines.
package fault

import (
	"fmt"
	"strings"

	"locality/internal/rng"
	"locality/internal/sim"
)

// Domain separators for the injection decision streams, so the crash, drop
// and duplication choices are independent even under the same Plan.Seed.
const (
	saltCrash uint64 = 0xC4A5_0001
	saltDrop  uint64 = 0xD409_0002
	saltDup   uint64 = 0xD4B1_0003
)

// Plan is a deterministic fault-injection schedule. The zero value injects
// nothing (Wrap returns a pass-through factory).
type Plan struct {
	// Seed drives every injection decision. Two plans with the same
	// probabilities but different seeds crash different nodes and drop
	// different messages.
	Seed uint64
	// Crash lists vertices that crash-stop unconditionally (in addition to
	// the CrashFrac sample).
	Crash []int
	// CrashFrac is the probability that any given vertex is a crash victim.
	CrashFrac float64
	// CrashRound is the step at which crash victims die: they execute steps
	// 1..CrashRound-1 normally, then halt silently — their step-CrashRound
	// messages (and all later ones) are never sent. 0 means round 1 (the
	// victim never participates).
	CrashRound int
	// DropProb is the per-delivery probability that a message vanishes in
	// transit (decided per sending port per round).
	DropProb float64
	// DupProb is the per-port per-round probability that, on a round with
	// no fresh message, the last message ever carried by the port is
	// redelivered stale (this includes messages that were dropped in
	// transit, modeling late delivery).
	DupProb float64
	// FromRound delays drop/duplication injection until the given step,
	// letting experiments exempt an algorithm's setup exchange. 0 or 1
	// means faults are live from the first step.
	FromRound int
}

// Active reports whether the plan injects anything at all.
func (p Plan) Active() bool {
	return len(p.Crash) > 0 || p.CrashFrac > 0 || p.DropProb > 0 || p.DupProb > 0
}

// String summarizes the plan for experiment tables.
func (p Plan) String() string {
	if !p.Active() {
		return "none"
	}
	var parts []string
	if len(p.Crash) > 0 {
		parts = append(parts, fmt.Sprintf("crash %v @ r%d", p.Crash, p.crashRound()))
	}
	if p.CrashFrac > 0 {
		parts = append(parts, fmt.Sprintf("crash %g%% @ r%d", 100*p.CrashFrac, p.crashRound()))
	}
	if p.DropProb > 0 {
		parts = append(parts, fmt.Sprintf("drop %g%%", 100*p.DropProb))
	}
	if p.DupProb > 0 {
		parts = append(parts, fmt.Sprintf("dup %g%%", 100*p.DupProb))
	}
	if p.FromRound > 1 {
		parts = append(parts, fmt.Sprintf("from r%d", p.FromRound))
	}
	return strings.Join(parts, ", ")
}

func (p Plan) crashRound() int {
	if p.CrashRound < 1 {
		return 1
	}
	return p.CrashRound
}

// chance draws the deterministic injection decision for a (salt, a, b)
// coordinate: true with probability prob.
func (p Plan) chance(prob float64, salt, a, b uint64) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	h := rng.Mix64(rng.Mix64(p.Seed^salt, a), b)
	return float64(h>>11)/(1<<53) < prob
}

// Crashed reports whether vertex v is a crash victim under the plan.
func (p Plan) Crashed(v int) bool {
	for _, c := range p.Crash {
		if c == v {
			return true
		}
	}
	return p.chance(p.CrashFrac, saltCrash, uint64(v), 0)
}

// drops reports whether the message sent by vertex u on its port q at the
// given step is lost in transit.
func (p Plan) drops(u, q, step int) bool {
	if step < p.FromRound {
		return false
	}
	return p.chance(p.DropProb, saltDrop, uint64(u), uint64(q)<<32|uint64(step))
}

// duplicates reports whether port q of vertex v redelivers its stale
// message at the given step.
func (p Plan) duplicates(v, q, step int) bool {
	if step < p.FromRound {
		return false
	}
	return p.chance(p.DupProb, saltDup, uint64(v), uint64(q)<<32|uint64(step))
}

// Wrap layers the plan over a factory running on topology g. The returned
// factory is what sim.Run should execute; the wrapped machines perturb
// receives (drops, stale redelivery) and halt crash victims, while the
// inner machines observe a perfectly ordinary — if lossy — LOCAL execution.
// Crashed machines still expose their partial Output, so validators can
// count the damage.
func (p Plan) Wrap(g sim.Topology, f sim.Factory) sim.Factory {
	if !p.Active() {
		return f
	}
	return func() sim.Machine {
		return &machine{plan: p, g: g, inner: f()}
	}
}

// machine is the per-node fault shim. It uses Env.Node — legitimately: the
// fault layer is instrumentation wrapped around the algorithm, not part of
// the LOCAL algorithm itself (the inner machine never sees the index).
type machine struct {
	plan    Plan
	g       sim.Topology
	inner   sim.Machine
	env     sim.Env
	crashed bool
	// sender[q] is the (vertex, port) pair that transmits into our port q.
	sender [][2]int
	// stale[q] is the last message ever carried by port q (delivered or
	// dropped), the candidate for stale redelivery.
	stale []sim.Message
	// eff reuses one buffer for the perturbed receive slice.
	eff []sim.Message
}

var _ sim.Machine = (*machine)(nil)

func (m *machine) Init(env sim.Env) {
	m.env = env
	m.crashed = m.plan.Crashed(env.Node)
	m.sender = make([][2]int, env.Degree)
	m.stale = make([]sim.Message, env.Degree)
	m.eff = make([]sim.Message, env.Degree)
	for q := 0; q < env.Degree; q++ {
		u, rev := m.g.NeighborPort(env.Node, q)
		m.sender[q] = [2]int{u, rev}
	}
	m.inner.Init(env)
}

func (m *machine) Step(round int, recv []sim.Message) ([]sim.Message, bool) {
	if m.crashed && round >= m.plan.crashRound() {
		return nil, true
	}
	for q := range recv {
		raw := recv[q]
		eff := raw
		if raw != nil {
			// Messages arriving at step s were sent at step s-1; drop
			// decisions key on the sender's coordinates at that step.
			u, rev := m.sender[q][0], m.sender[q][1]
			if m.plan.drops(u, rev, round-1) {
				eff = nil
			}
		}
		if eff == nil && m.stale[q] != nil && m.plan.duplicates(m.env.Node, q, round) {
			eff = m.stale[q]
		}
		if raw != nil {
			m.stale[q] = raw
		}
		m.eff[q] = eff
	}
	return m.inner.Step(round, m.eff)
}

func (m *machine) Output() any { return m.inner.Output() }
