package fault

import (
	"reflect"
	"testing"
)

func TestProcPlanDeterministic(t *testing.T) {
	p := ProcPlan{Seed: 42, Victims: 2}
	first := p.VictimIndices(5)
	if len(first) != 2 {
		t.Fatalf("victims = %v, want 2 of 5", first)
	}
	for i := 0; i < 10; i++ {
		if got := p.VictimIndices(5); !reflect.DeepEqual(got, first) {
			t.Fatalf("selection changed between calls: %v then %v", first, got)
		}
	}
	for _, v := range first {
		if !p.Victim(v, 5) {
			t.Errorf("Victim(%d, 5) = false for a selected index", v)
		}
	}
	survivors := 0
	for k := 0; k < 5; k++ {
		if !p.Victim(k, 5) {
			survivors++
		}
	}
	if survivors != 3 {
		t.Errorf("%d survivors of 5 with 2 victims", survivors)
	}
}

func TestProcPlanSeedsDiffer(t *testing.T) {
	// Across seeds the victim of a 3-shard cluster must vary — a constant
	// choice would mean the hash is not actually consulted.
	seen := map[int]bool{}
	for seed := uint64(0); seed < 32; seed++ {
		v := ProcPlan{Seed: seed, Victims: 1}.VictimIndices(3)
		if len(v) != 1 {
			t.Fatalf("seed %d: victims %v", seed, v)
		}
		seen[v[0]] = true
	}
	if len(seen) != 3 {
		t.Errorf("32 seeds only ever selected shards %v of 3", seen)
	}
}

func TestProcPlanBounds(t *testing.T) {
	if v := (ProcPlan{}).VictimIndices(3); v != nil {
		t.Errorf("inactive plan selected %v", v)
	}
	if v := (ProcPlan{Seed: 1, Victims: 1}).VictimIndices(1); v != nil {
		t.Errorf("single-shard cluster selected %v", v)
	}
	// Oversampling is capped at n-1: at least one survivor always remains.
	if v := (ProcPlan{Seed: 1, Victims: 99}).VictimIndices(4); len(v) != 3 {
		t.Errorf("capped selection = %v, want 3 victims of 4", v)
	}
	if got := (ProcPlan{Seed: 1, Victims: 1}).KillAfter(); got != 1 {
		t.Errorf("default KillAfter = %d", got)
	}
	if got := (ProcPlan{Seed: 1, Victims: 1, AfterBatches: 4}).KillAfter(); got != 4 {
		t.Errorf("KillAfter = %d, want 4", got)
	}
	if s := (ProcPlan{}).String(); s != "none" {
		t.Errorf("inactive String = %q", s)
	}
}
