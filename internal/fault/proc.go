package fault

import (
	"fmt"
	"sort"

	"locality/internal/rng"
)

// saltProc separates process-kill victim selection from the message-level
// decision streams.
const saltProc uint64 = 0x9C0C_0004

// ProcPlan is a deterministic process-level fault schedule for the cluster
// harness: which worker shards die, and how far into their sweep. Where
// Plan perturbs messages inside one simulation, ProcPlan kills whole
// localityd processes — the failure mode the coordinator's failover is
// built for. Like every plan in this package, the choices are pure
// functions of the seed, so a kill-a-shard e2e run is exactly as
// reproducible as a fault-free one.
//
// The zero value kills nothing.
type ProcPlan struct {
	// Seed drives victim selection.
	Seed uint64
	// Victims is how many shards die (capped at n-1: killing the whole
	// membership is a different experiment — the coordinator endgame — and
	// is requested explicitly, not by oversampling).
	Victims int
	// AfterBatches is how many row batches a victim commits before it is
	// killed (default 1): deaths land mid-sweep, after real work exists to
	// fail over, not before the sweep starts.
	AfterBatches int
}

// Active reports whether the plan kills anything.
func (p ProcPlan) Active() bool { return p.Victims > 0 }

// KillAfter is the batch count a victim commits before dying.
func (p ProcPlan) KillAfter() int {
	if p.AfterBatches > 0 {
		return p.AfterBatches
	}
	return 1
}

// VictimIndices selects the victims among n shards: the Victims shards
// with the smallest seeded hash, in ascending index order. Deterministic
// in (Seed, Victims, n); distinct seeds select distinct victim sets.
func (p ProcPlan) VictimIndices(n int) []int {
	if !p.Active() || n <= 1 {
		return nil
	}
	k := p.Victims
	if k > n-1 {
		k = n - 1
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ha := rng.Mix64(p.Seed^saltProc, uint64(idx[a]))
		hb := rng.Mix64(p.Seed^saltProc, uint64(idx[b]))
		if ha != hb {
			return ha < hb
		}
		return idx[a] < idx[b]
	})
	victims := append([]int(nil), idx[:k]...)
	sort.Ints(victims)
	return victims
}

// Victim reports whether shard k of n is a kill target.
func (p ProcPlan) Victim(k, n int) bool {
	for _, v := range p.VictimIndices(n) {
		if v == k {
			return true
		}
	}
	return false
}

// String summarizes the plan for logs and run reports.
func (p ProcPlan) String() string {
	if !p.Active() {
		return "none"
	}
	return fmt.Sprintf("kill %d shard(s) after %d batch(es), seed %d",
		p.Victims, p.KillAfter(), p.Seed)
}
