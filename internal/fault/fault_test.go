package fault_test

import (
	"reflect"
	"testing"

	"locality/internal/fault"
	"locality/internal/graph"
	"locality/internal/lcl"
	"locality/internal/mis"
	"locality/internal/rng"
	"locality/internal/sim"
)

// echoOnce sends a token at step 1 and records what arrives at every later
// step, halting at the given step. It makes drops and stale redelivery
// directly observable.
func echoOnce(haltStep int) sim.Factory {
	return func() sim.Machine {
		var env sim.Env
		var got [][]sim.Message
		return &sim.FuncMachine{
			OnInit: func(e sim.Env) { env = e },
			OnStep: func(round int, recv []sim.Message) ([]sim.Message, bool) {
				got = append(got, append([]sim.Message(nil), recv...))
				if round == 1 {
					return sim.Broadcast(env.Degree, "token"), false
				}
				return nil, round >= haltStep
			},
			OnOutput: func() any { return got },
		}
	}
}

func TestZeroPlanIsPassThrough(t *testing.T) {
	g := graph.Ring(8)
	var plan fault.Plan
	base := echoOnce(3)
	if reflect.ValueOf(plan.Wrap(g, base)).Pointer() != reflect.ValueOf(base).Pointer() {
		t.Error("inactive plan did not return the factory unchanged")
	}
}

func TestCrashStopHaltsSilently(t *testing.T) {
	// Path 0-1-2; node 1 crashes at round 2: its step-1 token is delivered,
	// then silence. Node 0 and 2 must see the token at step 2 and nil after.
	g := graph.Path(3)
	plan := fault.Plan{Crash: []int{1}, CrashRound: 2}
	res, err := sim.Run(g, sim.Config{MaxRounds: 8}, plan.Wrap(g, echoOnce(4)))
	if err != nil {
		t.Fatal(err)
	}
	got := res.Outputs[0].([][]sim.Message)
	if got[1][0] != "token" {
		t.Errorf("step 2 at node 0: %v, want token (sent before the crash)", got[1][0])
	}
	for s := 2; s < len(got); s++ {
		if got[s][0] != nil {
			t.Errorf("step %d at node 0: %v, want nil (crashed neighbor)", s+1, got[s][0])
		}
	}
	if res.HaltRound[1] != 1 {
		t.Errorf("crash victim halted after %d rounds, want 1", res.HaltRound[1])
	}
}

func TestCrashFracDeterministic(t *testing.T) {
	plan := fault.Plan{Seed: 7, CrashFrac: 0.3}
	n, crashed := 1000, 0
	for v := 0; v < n; v++ {
		if plan.Crashed(v) {
			crashed++
		}
		if plan.Crashed(v) != plan.Crashed(v) {
			t.Fatal("Crashed is not deterministic")
		}
	}
	if crashed < n/5 || crashed > n/2 {
		t.Errorf("crash sample %d/%d far from the 30%% rate", crashed, n)
	}
	other := fault.Plan{Seed: 8, CrashFrac: 0.3}
	same := 0
	for v := 0; v < n; v++ {
		if plan.Crashed(v) == other.Crashed(v) {
			same++
		}
	}
	if same == n {
		t.Error("different seeds selected identical crash sets")
	}
}

func TestDropAllSeversLinks(t *testing.T) {
	g := graph.Path(2)
	plan := fault.Plan{DropProb: 1}
	res, err := sim.Run(g, sim.Config{MaxRounds: 8}, plan.Wrap(g, echoOnce(3)))
	if err != nil {
		t.Fatal(err)
	}
	for v, o := range res.Outputs {
		for s, recv := range o.([][]sim.Message) {
			if recv[0] != nil {
				t.Errorf("node %d step %d received %v despite DropProb 1", v, s+1, recv[0])
			}
		}
	}
	// The kernel still counts the sends: drops happen in transit, not at
	// the sender.
	if res.MessagesSent != 2 {
		t.Errorf("MessagesSent = %d, want 2", res.MessagesSent)
	}
}

func TestStaleRedelivery(t *testing.T) {
	// With DupProb 1 and no drops, the step-1 token is redelivered on every
	// later round even though the sender went quiet.
	g := graph.Path(2)
	plan := fault.Plan{DupProb: 1}
	res, err := sim.Run(g, sim.Config{MaxRounds: 8}, plan.Wrap(g, echoOnce(4)))
	if err != nil {
		t.Fatal(err)
	}
	got := res.Outputs[0].([][]sim.Message)
	for s := 1; s < len(got); s++ {
		if got[s][0] != "token" {
			t.Errorf("step %d: %v, want the stale token redelivered", s+1, got[s][0])
		}
	}
}

func TestDropFromRoundExemptsSetup(t *testing.T) {
	g := graph.Path(2)
	plan := fault.Plan{DropProb: 1, FromRound: 2}
	res, err := sim.Run(g, sim.Config{MaxRounds: 8}, plan.Wrap(g, echoOnce(3)))
	if err != nil {
		t.Fatal(err)
	}
	got := res.Outputs[0].([][]sim.Message)
	if got[1][0] != "token" {
		t.Errorf("step-1 sends must be exempt with FromRound 2; got %v", got[1][0])
	}
}

// TestEngineEquivalenceUnderFaults is the faulty-run extension of the
// kernel's engine-equivalence guarantee: the same seeded Plan must produce
// identical Results on both engines.
func TestEngineEquivalenceUnderFaults(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 5; trial++ {
		g := graph.RandomTree(60, 6, r)
		plan := fault.Plan{
			Seed:       uint64(1000 + trial),
			CrashFrac:  0.08,
			CrashRound: 3,
			DropProb:   0.05,
			DupProb:    0.05,
		}
		factory := plan.Wrap(g, mis.NewLubyFactory(mis.LubyOptions{}))
		cfg := sim.Config{Randomized: true, Seed: uint64(trial), MaxRounds: 1 << 12}
		cfg.Engine = sim.EngineSequential
		seq, err := sim.Run(g, cfg, factory)
		if err != nil {
			t.Fatalf("trial %d sequential: %v", trial, err)
		}
		cfg.Engine = sim.EngineConcurrent
		conc, err := sim.Run(g, cfg, factory)
		if err != nil {
			t.Fatalf("trial %d concurrent: %v", trial, err)
		}
		if !reflect.DeepEqual(seq, conc) {
			t.Fatalf("trial %d: faulty runs diverge between engines:\nseq:  %+v\nconc: %+v", trial, seq, conc)
		}
	}
}

// TestFaultyRunsDegradeVisibly: a crashed quorum must show up as LCL
// violations, never as a silently-accepted wrong answer.
func TestFaultyRunsDegradeVisibly(t *testing.T) {
	r := rng.New(5)
	g := graph.RandomTree(200, 5, r)
	plan := fault.Plan{Seed: 3, CrashFrac: 0.2, CrashRound: 2}
	res, err := sim.Run(g, sim.Config{Randomized: true, Seed: 11, MaxRounds: 1 << 12},
		plan.Wrap(g, mis.NewLubyFactory(mis.LubyOptions{})))
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]any, g.N())
	for v, o := range res.Outputs {
		labels[v] = o
	}
	rep := lcl.MIS().Violations(lcl.Instance{G: g}, labels)
	if rep.Violated == 0 {
		t.Error("20% crashed nodes produced zero MIS violations — degradation invisible")
	}
	if frac := rep.SatisfiedFraction(); frac <= 0 || frac >= 1 {
		t.Errorf("satisfied fraction = %v, want strictly between 0 and 1", frac)
	}
}
