// Package forest implements the deterministic q-coloring of trees and
// forests that plays the role of Theorem 9 (Barenboim–Elkin [27]) in this
// library: for q >= 3, color a forest with q colors in O(log_A n · A +
// log* n) rounds, where A = min(q-1, 8) is the peeling threshold.
//
// The algorithm follows the H-partition framework of [27]:
//
//  1. Peel: repeatedly remove all vertices of remaining degree <= A. In a
//     forest each round removes at least a (1 - 2/(A+1)) fraction, so
//     L = O(log n / log((A+1)/2)) rounds suffice; layer(v) is the removal
//     round. Orient every edge from the earlier-peeled endpoint to the
//     later-peeled one (ties by ID): every vertex gets at most A parents
//     and every edge is oriented.
//  2. Arb-Linial: run Linial's cover-free reduction (package linial) where
//     each vertex's new color avoids only its parents' point sets. Because
//     every edge is a parent-child pair, the invariant "differ from all
//     parents" is a proper coloring of the whole forest; the palette drops
//     to the fixed point fp = O(A²) in O(log* n) rounds, independent of Δ.
//  3. H-sweep: one global class sweep on the intra-layer edges reduces the
//     fp-coloring to an (A+1)-coloring that is proper within every layer
//     (fp - A - 1 rounds, run once for all layers simultaneously since
//     layers are vertex-disjoint).
//  4. Final sweep: process (layer, h-color class) pairs from the top layer
//     down; a vertex choosing its final color is constrained only by
//     neighbors in its own or higher layers — at most A of them, all
//     already final — so a palette of q >= A+1 always has a free color.
//     L·(A+1) rounds.
//
// Differences from the paper's Theorem 9 are documented in DESIGN.md: the
// exact Barenboim–Elkin bound is O(log_q n + log* n) with constants
// independent of q; ours trades a capped peeling threshold (A <= 8) for a
// simple, mechanically verifiable implementation. For every q used by the
// paper's algorithms (q = 3, q = √Δ, q = Δ with moderate Δ) the measured
// growth in n keeps the O(log n) vs O(log log n) separation shapes intact.
//
// The machine supports restriction to an induced subgraph (Active hook) and
// an externally supplied size bound, which is exactly how Theorems 10 and
// 11 invoke it on the poly(log n)-size shattered components, and an
// IDOf hook so RandLOCAL callers can feed random-bit identifiers.
package forest

import (
	"fmt"

	"locality/internal/linial"
	"locality/internal/mathx"
	"locality/internal/sim"
)

// Options configures the forest coloring machine.
type Options struct {
	// Q is the palette size; the output colors are ColorOffset+1 ..
	// ColorOffset+Q. Q must be at least 3.
	Q int
	// A is the peeling threshold (1 < A <= Q-1). Zero selects
	// min(Q-1, 8); see the package comment.
	A int
	// SizeBound is the bound on the number of vertices of any connected
	// component of the (active) forest; it fixes the peeling budget. Zero
	// means "use Env.N".
	SizeBound int
	// IDSpace bounds the identifiers delivered by IDOf: IDs lie in
	// 1..IDSpace. Zero means "use Env.N" (the DetLOCAL convention).
	IDSpace int
	// IDOf extracts the vertex identifier; nil means Env.ID.
	IDOf func(env sim.Env) uint64
	// Active restricts the run to an induced subgraph; nil means all
	// vertices participate. Inactive vertices halt immediately with
	// output 0.
	Active func(env sim.Env) bool
	// ColorOffset shifts the output palette; Theorem 10 uses it to color
	// shattered components with the reserved colors Δ-√Δ+1..Δ.
	ColorOffset int
}

// Resolve returns a copy of o with zero values filled in against the graph
// size n, exactly as the machine does at Init; callers use it to compute
// plans (and thus round budgets) outside a run.
func (o Options) Resolve(n int) Options {
	if o.A == 0 {
		o.A = mathx.Min(o.Q-1, 8)
	}
	if o.SizeBound == 0 {
		o.SizeBound = n
	}
	if o.IDSpace == 0 {
		o.IDSpace = n
	}
	return o
}

// withDefaults resolves the zero values against an environment.
func (o Options) withDefaults(env sim.Env) Options {
	return o.Resolve(env.N)
}

// validate panics on caller errors (not data errors).
func (o Options) validate() {
	if o.Q < 3 {
		panic(fmt.Sprintf("forest: Q=%d < 3", o.Q))
	}
	if o.A != 0 && (o.A < 2 || o.A > o.Q-1) {
		panic(fmt.Sprintf("forest: A=%d outside [2, Q-1=%d]", o.A, o.Q-1))
	}
}

// PeelRounds returns the peeling budget for component size bound n and
// threshold a: the least L with n·(2/(a+1))^L < 1, plus one slack round.
func PeelRounds(n, a int) int {
	if n <= 1 {
		return 1
	}
	l := 0
	remaining := float64(n)
	for remaining >= 1 {
		remaining *= 2.0 / float64(a+1)
		l++
	}
	return l + 1
}

// Plan is the precomputed, globally shared round schedule of a run.
type Plan struct {
	Opt   Options
	Peel  int             // peeling rounds P
	Sched []linial.Family // arb-Linial schedule
	FP    int             // arb-Linial fixed point
	HSw   int             // H-sweep length: max(0, FP-(A+1))
	Final int             // final sweep length: Peel*(A+1)
}

// NewPlan computes the schedule for resolved options.
func NewPlan(opt Options) Plan {
	p := Plan{Opt: opt}
	p.Peel = PeelRounds(opt.SizeBound, opt.A)
	p.Sched = linial.Schedule(opt.IDSpace, opt.A)
	p.FP = linial.FixedPoint(opt.IDSpace, opt.A)
	p.HSw = mathx.Max(0, p.FP-(opt.A+1))
	p.Final = p.Peel * (opt.A + 1)
	return p
}

// Rounds returns the total communication rounds the machine uses:
// 1 (hello) + Peel + 1 (layer settle / first color broadcast) +
// len(Sched) + HSw + Final.
func (p Plan) Rounds() int {
	return 1 + p.Peel + 1 + len(p.Sched) + p.HSw + p.Final
}

// NewFactory returns the forest coloring machine factory.
// Output: final color in ColorOffset+1..ColorOffset+Q for active vertices,
// 0 for inactive ones.
func NewFactory(opt Options) sim.Factory {
	opt.validate()
	return func() sim.Machine { return &machine{opt: opt} }
}

// status is the single message type; every active vertex broadcasts its
// full status every step. The LOCAL model does not meter bandwidth, and a
// single self-describing message keeps the phase logic simple.
type status struct {
	ID     uint64
	Peeled bool
	Layer  int
	HColor int // current arb-Linial/H-sweep color (0-based), -1 before start
	Final  int // final color (1-based, incl. offset), 0 if not yet assigned
}

type machine struct {
	opt    Options
	plan   Plan
	env    sim.Env
	active bool
	id     uint64

	peeled bool
	layer  int

	nbr       []status // latest status per port (zero value until heard)
	heard     []bool   // whether port p has ever delivered a status
	fresh     []bool   // whether port p delivered a status this step
	parentOf  []bool   // valid after layers settle
	sameLayer []bool

	hcolor int
	final  int
	// failed is set when a *probabilistic* precondition breaks (a component
	// exceeds SizeBound so peeling does not finish, or externally supplied
	// IDs collide between neighbors). The vertex then halts with output 0,
	// which the caller's verifier reports as an algorithm failure — the
	// "stops and fails" behaviour Theorem 11's Phase 2 prescribes.
	// Internal invariant violations still panic.
	failed bool
}

var _ sim.Machine = (*machine)(nil)

func (m *machine) Init(env sim.Env) {
	m.env = env
	m.opt = m.opt.withDefaults(env)
	m.plan = NewPlan(m.opt)
	m.active = m.opt.Active == nil || m.opt.Active(env)
	if m.active {
		if m.opt.IDOf != nil {
			m.id = m.opt.IDOf(env)
		} else {
			if !env.HasID {
				panic("forest: DetLOCAL run without IDs and no IDOf hook")
			}
			m.id = env.ID
		}
		if m.id < 1 || m.id > uint64(m.opt.IDSpace) {
			panic(fmt.Sprintf("forest: ID %d outside 1..%d", m.id, m.opt.IDSpace))
		}
	}
	m.nbr = make([]status, env.Degree)
	m.heard = make([]bool, env.Degree)
	m.fresh = make([]bool, env.Degree)
	m.hcolor = -1
}

// Step phases (P = plan.Peel, S = len(plan.Sched)):
//
//	step 1:                 hello broadcast (inactive vertices halt)
//	steps 2..P+1:           peeling round r = step-1
//	step P+2:               layers settled; derive parents; hcolor = ID-1
//	steps P+3..P+2+S:       arb-Linial reduction step step-(P+2)
//	steps P+3+S..P+2+S+H:   H-sweep (classes FP-1 .. A+1 descending)
//	then Final steps:       final sweep over (layer desc, h-class asc)
//	last step + 1:          halt
func (m *machine) Step(step int, recv []sim.Message) ([]sim.Message, bool) {
	if !m.active || m.failed {
		return nil, true
	}
	m.absorb(recv)
	p, s := m.plan.Peel, len(m.plan.Sched)
	switch {
	case step == 1:
		// Nothing to do but say hello (the broadcast below).
	case step <= p+1:
		m.peelStep(step - 1)
	case step == p+2:
		m.settleLayers()
	case step <= p+2+s:
		m.linialStep(m.plan.Sched[step-p-3])
	case step <= p+2+s+m.plan.HSw:
		m.hSweepStep(step - p - 2 - s)
	case step <= p+2+s+m.plan.HSw+m.plan.Final:
		m.finalStep(step - p - 2 - s - m.plan.HSw)
	default:
		if m.final == 0 {
			panic("forest: schedule exhausted without a final color (internal bug)")
		}
		return nil, true
	}
	if m.failed {
		return nil, true
	}
	return sim.Broadcast(m.env.Degree, m.statusNow()), false
}

func (m *machine) statusNow() status {
	return status{ID: m.id, Peeled: m.peeled, Layer: m.layer, HColor: m.hcolor, Final: m.final}
}

func (m *machine) absorb(recv []sim.Message) {
	for p, msg := range recv {
		m.fresh[p] = false
		if msg == nil {
			continue
		}
		st, ok := msg.(status)
		if !ok {
			panic(fmt.Sprintf("forest: unexpected message %T", msg))
		}
		m.nbr[p] = st
		m.heard[p] = true
		m.fresh[p] = true
	}
}

// peelStep runs one synchronous peeling round: vertices whose active
// unpeeled degree is at most A remove themselves.
func (m *machine) peelStep(round int) {
	if m.peeled {
		return
	}
	unpeeled := 0
	for p := range m.nbr {
		if m.heard[p] && !m.nbr[p].Peeled {
			unpeeled++
		}
	}
	if unpeeled <= m.opt.A {
		m.peeled = true
		m.layer = round
	}
}

// settleLayers freezes the orientation: parents are active neighbors peeled
// strictly later, or in the same layer with a larger ID. It also seeds the
// arb-Linial color.
func (m *machine) settleLayers() {
	if !m.peeled {
		// Component larger than SizeBound (or not a forest): probabilistic
		// precondition failure — stop and fail.
		m.failed = true
		return
	}
	m.parentOf = make([]bool, m.env.Degree)
	m.sameLayer = make([]bool, m.env.Degree)
	parents := 0
	for p := range m.nbr {
		if !m.heard[p] {
			continue // inactive neighbor
		}
		st := m.nbr[p]
		if !st.Peeled {
			m.failed = true
			return
		}
		if st.ID == m.id {
			// Externally supplied IDs collided between neighbors.
			m.failed = true
			return
		}
		if st.Layer > m.layer || (st.Layer == m.layer && st.ID > m.id) {
			m.parentOf[p] = true
			parents++
		}
		if st.Layer == m.layer {
			m.sameLayer[p] = true
		}
	}
	if parents > m.opt.A {
		panic(fmt.Sprintf("forest: %d parents exceed threshold A=%d (internal bug)", parents, m.opt.A))
	}
	m.hcolor = int(m.id) - 1
}

// linialStep applies one cover-free reduction against parent colors only.
func (m *machine) linialStep(f linial.Family) {
	nbrs := make([]int, 0, m.opt.A)
	for p := range m.nbr {
		if m.parentOf[p] {
			if !m.fresh[p] || m.nbr[p].HColor == m.hcolor {
				// Parent halted (it failed) or an ID collision at distance
				// two made colors coincide: stop and fail.
				m.failed = true
				return
			}
			nbrs = append(nbrs, m.nbr[p].HColor)
		}
	}
	m.hcolor = f.Reduce(m.hcolor, nbrs)
}

// hSweepStep reduces the intra-layer coloring from FP to A+1 colors; sweep
// sub-step j (1-based) recolors class FP-j.
func (m *machine) hSweepStep(j int) {
	class := m.plan.FP - j
	if m.hcolor != class {
		return
	}
	used := make([]bool, m.opt.A+1)
	for p := range m.nbr {
		if !m.sameLayer[p] || !m.heard[p] {
			continue
		}
		if c := m.nbr[p].HColor; c >= 0 && c <= m.opt.A {
			used[c] = true
		}
	}
	for c := 0; c <= m.opt.A; c++ {
		if !used[c] {
			m.hcolor = c
			return
		}
	}
	panic("forest: H-sweep found no free color (degree within layer exceeds A?)")
}

// finalStep assigns final colors; sub-step k (1-based) serves layer
// Peel - (k-1)/(A+1) and h-class (k-1) mod (A+1).
func (m *machine) finalStep(k int) {
	if m.final != 0 {
		return
	}
	layer := m.plan.Peel - (k-1)/(m.opt.A+1)
	class := (k - 1) % (m.opt.A + 1)
	if m.layer != layer || m.hcolor != class {
		return
	}
	used := make([]bool, m.opt.Q)
	for p := range m.nbr {
		if !m.heard[p] {
			continue
		}
		if f := m.nbr[p].Final; f != 0 {
			idx := f - m.opt.ColorOffset - 1
			if idx >= 0 && idx < m.opt.Q {
				used[idx] = true
			}
		}
	}
	for c := 0; c < m.opt.Q; c++ {
		if !used[c] {
			m.final = m.opt.ColorOffset + c + 1
			return
		}
	}
	panic("forest: final sweep found no free color (constraints exceed Q-1?)")
}

func (m *machine) Output() any { return m.final }
