package forest_test

import (
	"testing"

	"locality/internal/forest"
	"locality/internal/graph"
	"locality/internal/ids"
	"locality/internal/lcl"
	"locality/internal/rng"
	"locality/internal/sim"
)

// runColoring executes the forest machine and returns per-vertex colors.
func runColoring(t *testing.T, g *graph.Graph, assignment ids.Assignment, opt forest.Options) ([]int, int) {
	t.Helper()
	res, err := sim.Run(g, sim.Config{IDs: assignment, MaxRounds: 100000}, forest.NewFactory(opt))
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	return sim.IntOutputs(res), res.Rounds
}

func TestColorsTreesWithSmallPalettes(t *testing.T) {
	r := rng.New(42)
	tests := []struct {
		name string
		g    *graph.Graph
		q    int
	}{
		{"path q=3", graph.Path(50), 3},
		{"random tree q=3", graph.RandomTree(300, 6, r), 3},
		{"random tree q=4", graph.RandomTree(300, 10, r), 4},
		{"uniform tree q=3", graph.UniformTree(200, r), 3},
		{"star q=3", graph.Star(64), 3},
		{"binary tree q=3", graph.CompleteKAry(2, 7), 3},
		{"wide tree q=5", graph.CompleteKAry(9, 3), 5},
		{"caterpillar q=3", graph.Caterpillar(30, 5), 3},
		{"single vertex", graph.Path(1), 3},
		{"two vertices", graph.Path(2), 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			assignment := ids.Shuffled(tt.g.N(), r)
			colors, _ := runColoring(t, tt.g, assignment, forest.Options{Q: tt.q})
			if err := lcl.Coloring(tt.q).Validate(lcl.Instance{G: tt.g}, lcl.IntLabels(colors)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestColorsForests(t *testing.T) {
	// Disconnected forest: two trees plus isolated vertices.
	r := rng.New(7)
	b := graph.NewBuilder(30)
	// Tree on 0..9 (path), tree on 10..19 (star at 10), 20..29 isolated.
	for i := 0; i < 9; i++ {
		b.AddEdge(i, i+1)
	}
	for i := 11; i < 20; i++ {
		b.AddEdge(10, i)
	}
	g := b.MustBuild()
	colors, _ := runColoring(t, g, ids.Shuffled(30, r), forest.Options{Q: 3})
	if err := lcl.Coloring(3).Validate(lcl.Instance{G: g}, lcl.IntLabels(colors)); err != nil {
		t.Fatal(err)
	}
}

func TestQEqualsDeltaColoring(t *testing.T) {
	// The E1 deterministic baseline: Δ-coloring a max-degree-Δ tree.
	r := rng.New(13)
	for _, delta := range []int{4, 8, 16} {
		g := graph.RandomTree(500, delta, r)
		colors, _ := runColoring(t, g, ids.Shuffled(500, r), forest.Options{Q: delta})
		if err := lcl.Coloring(delta).Validate(lcl.Instance{G: g}, lcl.IntLabels(colors)); err != nil {
			t.Fatalf("Δ=%d: %v", delta, err)
		}
	}
}

func TestRoundsMatchPlanAndGrowLogarithmically(t *testing.T) {
	r := rng.New(3)
	var measured []int
	for _, n := range []int{64, 512, 4096, 32768} {
		g := graph.RandomTree(n, 3, r)
		opt := forest.Options{Q: 3, A: 2, SizeBound: n, IDSpace: n}
		colors, rounds := runColoring(t, g, ids.Shuffled(n, r), opt)
		if err := lcl.Coloring(3).Validate(lcl.Instance{G: g}, lcl.IntLabels(colors)); err != nil {
			t.Fatal(err)
		}
		plan := forest.NewPlan(opt)
		if rounds != plan.Rounds() {
			t.Errorf("n=%d: rounds %d != plan %d", n, rounds, plan.Rounds())
		}
		measured = append(measured, rounds)
	}
	// Θ(log n): quadrupling n 3 times must grow rounds roughly linearly in
	// log n, not multiplicatively. rounds(32768)/rounds(64) should be
	// around log(32768)/log(64) = 2.5, certainly below 5.
	if measured[3] > 5*measured[0] {
		t.Errorf("round growth not logarithmic: %v", measured)
	}
	if measured[3] <= measured[0] {
		t.Errorf("rounds did not grow with n at all: %v", measured)
	}
}

func TestActiveSubgraphRestriction(t *testing.T) {
	// Color only the odd-index vertices of a path: the active subgraph is
	// an independent set plus nothing — every active vertex should get a
	// color, inactive stay 0.
	r := rng.New(5)
	g := graph.Path(20)
	active := func(env sim.Env) bool { return env.Node%2 == 1 }
	opt := forest.Options{Q: 3, Active: active}
	colors, _ := runColoring(t, g, ids.Shuffled(20, r), opt)
	for v, c := range colors {
		if v%2 == 0 && c != 0 {
			t.Errorf("inactive vertex %d colored %d", v, c)
		}
		if v%2 == 1 && (c < 1 || c > 3) {
			t.Errorf("active vertex %d has color %d", v, c)
		}
	}
}

func TestActiveSubgraphComponent(t *testing.T) {
	// Restrict to a sub-path of a tree and verify the coloring is proper on
	// the induced subgraph, using the component size bound.
	r := rng.New(9)
	g := graph.Path(100)
	isActive := make([]bool, 100)
	for v := 20; v < 40; v++ {
		isActive[v] = true
	}
	opt := forest.Options{
		Q:         3,
		SizeBound: 25,
		Active:    func(env sim.Env) bool { return isActive[env.Node] },
	}
	colors, _ := runColoring(t, g, ids.Shuffled(100, r), opt)
	sub, _, n2o := g.InducedSubgraph(isActive)
	subColors := make([]int, sub.N())
	for nv, ov := range n2o {
		subColors[nv] = colors[ov]
	}
	if err := lcl.Coloring(3).Validate(lcl.Instance{G: sub}, lcl.IntLabels(subColors)); err != nil {
		t.Fatal(err)
	}
}

func TestColorOffset(t *testing.T) {
	r := rng.New(11)
	g := graph.RandomTree(60, 4, r)
	opt := forest.Options{Q: 4, ColorOffset: 50}
	colors, _ := runColoring(t, g, ids.Shuffled(60, r), opt)
	for v, c := range colors {
		if c < 51 || c > 54 {
			t.Fatalf("vertex %d color %d outside 51..54", v, c)
		}
	}
	// Offset palette must still be proper.
	shifted := make([]int, len(colors))
	for v, c := range colors {
		shifted[v] = c - 50
	}
	if err := lcl.Coloring(4).Validate(lcl.Instance{G: g}, lcl.IntLabels(shifted)); err != nil {
		t.Fatal(err)
	}
}

func TestIDOfHookWithRandomIDs(t *testing.T) {
	// RandLOCAL-style usage: random 30-bit identifiers drawn from each
	// node's private stream (whp distinct), no real IDs.
	r := rng.New(17)
	g := graph.RandomTree(200, 5, r)
	opt := forest.Options{
		Q:       3,
		IDSpace: 1 << 30,
		IDOf: func(env sim.Env) uint64 {
			return env.Rand.Uint64()%(1<<30) + 1
		},
	}
	res, err := sim.Run(g, sim.Config{Randomized: true, Seed: 99, MaxRounds: 100000}, forest.NewFactory(opt))
	if err != nil {
		t.Fatal(err)
	}
	colors := sim.IntOutputs(res)
	if err := lcl.Coloring(3).Validate(lcl.Instance{G: g}, lcl.IntLabels(colors)); err != nil {
		t.Fatal(err)
	}
}

func TestSizeBoundTooSmallFailsGracefully(t *testing.T) {
	// A 100-vertex path with SizeBound 4 cannot finish peeling with A=2 in
	// the budgeted rounds... actually with A=2 a path peels in one round,
	// so use A=... paths always peel instantly. Use a complete binary tree
	// restricted budget: with SizeBound 2 the peel budget is tiny; deep
	// trees cannot finish. Expect failure outputs (0), not a panic or a
	// wrong coloring.
	r := rng.New(23)
	g := graph.CompleteKAry(2, 9) // 1023 vertices, peels layer by layer
	opt := forest.Options{Q: 3, A: 2, SizeBound: 2}
	res, err := sim.Run(g, sim.Config{IDs: ids.Shuffled(g.N(), r), MaxRounds: 100000}, forest.NewFactory(opt))
	if err != nil {
		t.Fatal(err)
	}
	colors := sim.IntOutputs(res)
	zero := 0
	for _, c := range colors {
		if c == 0 {
			zero++
		}
	}
	if zero == 0 {
		t.Error("expected some failure outputs with an impossible size bound")
	}
	_ = r
}

func TestNonForestFailsGracefully(t *testing.T) {
	// A ring cannot be peeled with A=1... with A=2 a ring CAN be peeled
	// (all degrees 2). Use A=2 on a ring: peeling works, orientation and
	// sweeps still function (a ring is 3-colorable), so instead force
	// non-forest behaviour with a clique on 5 vertices and Q=3, A=2: the
	// peel stalls (all degrees 4 > 2) and every vertex must fail.
	b := graph.NewBuilder(5)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(i, j)
		}
	}
	g := b.MustBuild()
	res, err := sim.Run(g, sim.Config{IDs: ids.Sequential(5), MaxRounds: 100000},
		forest.NewFactory(forest.Options{Q: 3, A: 2}))
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range sim.IntOutputs(res) {
		if c != 0 {
			t.Errorf("vertex %d got color %d on a clique; expected failure output 0", v, c)
		}
	}
}

func TestPlanRoundsFormula(t *testing.T) {
	opt := forest.Options{Q: 3, A: 2, SizeBound: 1000, IDSpace: 1000}
	plan := forest.NewPlan(opt)
	want := 1 + plan.Peel + 1 + len(plan.Sched) + plan.HSw + plan.Final
	if plan.Rounds() != want {
		t.Errorf("Rounds() = %d, want %d", plan.Rounds(), want)
	}
	if plan.Final != plan.Peel*3 {
		t.Errorf("Final = %d, want Peel*(A+1) = %d", plan.Final, plan.Peel*3)
	}
}

func TestPeelRounds(t *testing.T) {
	tests := []struct{ n, a, max int }{
		{1, 2, 1},
		{100, 2, 14},
		{1 << 20, 2, 37},
		{1 << 20, 8, 11},
	}
	for _, tt := range tests {
		if got := forest.PeelRounds(tt.n, tt.a); got > tt.max || got < 1 {
			t.Errorf("PeelRounds(%d,%d) = %d, want in [1,%d]", tt.n, tt.a, got, tt.max)
		}
	}
}
