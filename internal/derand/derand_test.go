package derand

import (
	"testing"

	"locality/internal/graph"
	"locality/internal/ids"
)

func TestEnumerateInstancesCounts(t *testing.T) {
	// n=2, Δ=1, idSpace=2: graphs = {empty, single edge} = 2; injections
	// 2·1 = 2 -> 4 instances.
	insts := EnumerateInstances(2, 1, 2)
	if len(insts) != 4 {
		t.Fatalf("got %d instances, want 4", len(insts))
	}
	// n=3, Δ=2, idSpace=3: graphs = all 8 edge subsets of a triangle (all
	// have Δ<=2); injections 3! = 6 -> 48.
	insts = EnumerateInstances(3, 2, 3)
	if len(insts) != 48 {
		t.Fatalf("got %d instances, want 48", len(insts))
	}
	// Degree bound excludes: n=3, Δ=1: subsets without two incident edges:
	// empty + 3 single edges = 4; × 6 = 24.
	insts = EnumerateInstances(3, 1, 3)
	if len(insts) != 24 {
		t.Fatalf("got %d instances, want 24", len(insts))
	}
	for _, inst := range insts {
		if !inst.IDs.Unique() {
			t.Fatal("instance with duplicate IDs")
		}
	}
}

func TestPriorityMISCorrectWithDistinctWords(t *testing.T) {
	alg := PriorityMIS(3)
	g := graph.Path(4)
	inst := Instance{G: g, IDs: ids.Sequential(4)}
	// Sorted, reverse-sorted, and mixed words: all distinct => must solve.
	for _, words := range [][]uint64{
		{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1},
	} {
		outputs, err := runWithBits(alg, inst, words)
		if err != nil {
			t.Fatal(err)
		}
		if err := alg.Validate(inst, outputs); err != nil {
			t.Errorf("words %v: %v", words, err)
		}
	}
	// A blocking adjacent tie must fail.
	outputs, err := runWithBits(alg, inst, []uint64{5, 5, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := alg.Validate(inst, outputs); err == nil {
		t.Error("blocking tie did not fail")
	}
	// A dominated tie resolves: 5,5 adjacent but one gets eliminated by a
	// joining third vertex (7 beats the right 5).
	outputs, err = runWithBits(alg, inst, []uint64{5, 5, 7, 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := alg.Validate(inst, outputs); err != nil {
		t.Errorf("dominated tie should succeed: %v", err)
	}
}

func TestExactFailureMonotoneInBits(t *testing.T) {
	// On a fixed instance, more bits => (weakly) smaller failure
	// probability.
	g := graph.Path(3)
	inst := Instance{G: g, IDs: ids.Sequential(3)}
	var prev float64 = 2
	for _, bits := range []int{1, 2, 4} {
		p := ExactFailure(PriorityMIS(bits), inst)
		if p > prev {
			t.Errorf("failure grew with bits: %v -> %v at %d bits", prev, p, bits)
		}
		prev = p
	}
	// Exact value for 1 bit on an edge: failure iff both words equal...
	// P(tie) = 1/2 per adjacent pair; on a single edge instance failure
	// prob must be exactly 1/2.
	edge := Instance{G: graph.Path(2), IDs: ids.Sequential(2)}
	if p := ExactFailure(PriorityMIS(1), edge); p != 0.5 {
		t.Errorf("single-edge 1-bit failure = %v, want 0.5", p)
	}
}

func TestSearchPhiFindsGoodPhiAndItDerandomizes(t *testing.T) {
	// The Theorem 3 demonstration: n=3, Δ=2, idSpace=3, 2-bit words.
	// φ space = (2²)³ = 64 — exhaustively scannable.
	alg := PriorityMIS(2)
	instances := EnumerateInstances(3, 2, 3)
	res := SearchPhi(alg, instances, 3, 1<<20)
	if !res.Exhausted {
		t.Fatal("expected exhaustive scan")
	}
	if res.Found == nil {
		t.Fatal("no good φ found; Theorem 3 demo broken")
	}
	if res.BadCount == 0 {
		t.Error("every φ good? the failure mode vanished")
	}
	// The found φ must be injective (blocking ties are otherwise possible).
	seen := map[uint64]bool{}
	for id := 1; id <= 3; id++ {
		if seen[res.Found[id]] {
			t.Errorf("good φ not injective: %v", res.Found)
		}
		seen[res.Found[id]] = true
	}
	// And A_Det[φ*] must err on zero instances — re-verified explicitly.
	if !IsGood(alg, instances, res.Found) {
		t.Error("reported good φ fails IsGood")
	}
	t.Logf("φ* = %v; %d/%d φ's bad", res.Found[1:], res.BadCount, res.Tried)
}

func TestSearchPhiUnionBoundConsistency(t *testing.T) {
	// The union bound: P(φ bad) <= Σ_instances P(A_Rand errs on instance).
	// With exhaustive enumeration both sides are exact numbers; check the
	// inequality the proof of Theorem 3 rests on.
	alg := PriorityMIS(2)
	instances := EnumerateInstances(2, 1, 2)
	res := SearchPhi(alg, instances, 2, 1<<20)
	if !res.Exhausted {
		t.Fatal("expected exhaustive scan")
	}
	badFrac := float64(res.BadCount) / float64(res.Tried)
	var unionBound float64
	for _, inst := range instances {
		unionBound += ExactFailure(alg, inst)
	}
	if badFrac > unionBound {
		t.Errorf("bad fraction %v exceeds union bound %v", badFrac, unionBound)
	}
	t.Logf("bad fraction %v, union bound %v", badFrac, unionBound)
}

func TestSearchPhiNonExhaustiveFindsFirst(t *testing.T) {
	// 4-bit words on idSpace 4: 2^16 space exceeds the scan budget 2000 —
	// the search stops at the first good φ.
	alg := PriorityMIS(4)
	instances := EnumerateInstances(2, 1, 4)
	res := SearchPhi(alg, instances, 4, 2000)
	if res.Exhausted {
		t.Fatal("scan should not be exhaustive")
	}
	if res.Found == nil {
		t.Fatal("no good φ within budget")
	}
	if !IsGood(alg, instances, res.Found) {
		t.Error("found φ not actually good")
	}
}

func TestEnumerateRejectsLargeN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EnumerateInstances(6) did not panic")
		}
	}()
	EnumerateInstances(6, 2, 6)
}

func TestCorollary1Overhead(t *testing.T) {
	// Derandomization at N = 2^(n²) costs at most +2 log* levels, for any n.
	for _, n := range []float64{2, 16, 1e6, 1e18, 1e300} {
		if d := Corollary1Overhead(n); d < 0 || d > 2 {
			t.Errorf("n=%g: overhead %d outside [0,2]", n, d)
		}
	}
}
